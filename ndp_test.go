package ndp

import (
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestExperimentsList(t *testing.T) {
	ids := Experiments()
	if len(ids) < 20 {
		t.Fatalf("only %d experiments registered", len(ids))
	}
	for _, want := range []string{"fig2", "fig14", "fig23", "t-phost"} {
		found := false
		for _, id := range ids {
			if id == want {
				found = true
			}
		}
		if !found {
			t.Errorf("experiment %q missing from %v", want, ids)
		}
	}
}

// TestExperimentsMatchDocumented pins the registry to the id set the Run
// comment in ndp.go documents: adding or renaming an experiment must update
// the public docs in the same change.
func TestExperimentsMatchDocumented(t *testing.T) {
	documented := []string{
		"fig2", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13",
		"fig14", "fig15", "fig16", "fig17", "fig19", "fig20", "fig21",
		"fig22", "fig23",
		"t-ablate", "t-limits", "t-phost", "t-scale", "t-trim",
	}
	sort.Strings(documented)
	got := Experiments()
	if !reflect.DeepEqual(got, documented) {
		t.Errorf("registered experiments diverge from the set documented in ndp.go's Run comment:\n got %v\nwant %v", got, documented)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if _, err := Run("fig999", Options{}); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestDescribe(t *testing.T) {
	if Describe("fig21") == "" {
		t.Error("fig21 has no description")
	}
	if Describe("nonsense") != "" {
		t.Error("unknown id should describe as empty")
	}
}

func TestRunTinyExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	res, err := Run("fig21", Options{Scale: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	out := res.String()
	if !strings.Contains(out, "F->E") {
		t.Errorf("fig21 output missing flows:\n%s", out)
	}
}

func TestDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	a, err := Run("fig21", Options{Scale: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig21", Options{Scale: 0.1, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different results; simulation is not deterministic")
	}
}

// TestParallelDeterminism is the headline guarantee of the sweep engine:
// the same seed must produce identical result tables whether the sweep
// jobs run serially or fanned out across 8 workers.
func TestParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("slow")
	}
	for _, id := range []string{"fig14", "fig17"} {
		serial, err := Run(id, Options{Scale: 0.1, Seed: 5, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		parallel, err := Run(id, Options{Scale: 0.1, Seed: 5, Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if serial.String() != parallel.String() {
			t.Errorf("%s differs between Workers=1 and Workers=8:\n--- serial ---\n%s\n--- parallel ---\n%s",
				id, serial, parallel)
		}
	}
}
