// Command simlint runs the determinism & shard-safety analyzer suite over
// the module. It is the mechanical form of the engine's review checklist:
// map order must not leak into event order, wall time stays out of the
// virtual clock, RNG streams are component-local, cross-shard deliveries
// are canonically keyed, packets come from the shard arenas, hot paths do
// not allocate, deferred commands are value-shaped, and endpoint state is
// only written from its owning shard.
//
// Usage:
//
//	simlint [-list] [-json] [-baseline file] [packages]
//
// Packages default to ./... relative to the enclosing module. Engine
// packages get the full suite — the per-package analyzers per package,
// plus the interprocedural hotalloc/defercmd/shardown pass over the whole
// engine program; CLIs and the daemon get wallclock + allowcheck (see
// lint.AnalyzersFor). Exit status: 0 clean, 1 findings, 2 usage or load
// failure. Suppress a finding with a justified directive:
//
//	//simlint:allow <analyzer> — <reason>
//
// -json emits machine-readable diagnostics (file, line, column, analyzer,
// message, call chain) for editor and CI-annotation integration; the same
// document works as a -baseline file, which suppresses the findings it
// lists and fails only on new ones.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ndp/internal/lint"
)

// jsonDiagnostic is the machine-readable form of one finding. The -json
// output is an array of these; a -baseline file is the same document, and
// findings are matched baseline-to-run by (file, analyzer, message) so
// unrelated line drift does not resurrect suppressed findings.
type jsonDiagnostic struct {
	File     string   `json:"file"`
	Line     int      `json:"line"`
	Col      int      `json:"col"`
	Analyzer string   `json:"analyzer"`
	Message  string   `json:"message"`
	Chain    []string `json:"chain,omitempty"`
}

func main() {
	list := flag.Bool("list", false, "print each analyzer's name and doc string, then exit")
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	baseline := flag.String("baseline", "", "suppress findings listed in this -json-format file; fail only on new ones")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [-json] [-baseline file] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		fmt.Printf("# load: the module and the GOROOT closure type-check from source in ~1s;\n")
		fmt.Printf("# GOROOT results are cached process-wide, so the nine-analyzer sweep —\n")
		fmt.Printf("# six per-package passes plus one interprocedural program pass — shares\n")
		fmt.Printf("# a single load and stays well under 3s end to end.\n")
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fatal(err)
	}
	pkgs, err := loader.Match(patterns)
	if err != nil {
		fatal(err)
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "simlint: no packages match %v\n", patterns)
		os.Exit(2)
	}

	known, err := loadBaseline(*baseline)
	if err != nil {
		fatal(err)
	}

	var out []jsonDiagnostic
	report := func(pkg *lint.Package, diags []lint.Diagnostic) {
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			rel, rerr := filepath.Rel(modRoot, pos.Filename)
			if rerr != nil {
				rel = pos.Filename
			}
			jd := jsonDiagnostic{
				File: rel, Line: pos.Line, Col: pos.Column,
				Analyzer: d.Analyzer, Message: d.Message, Chain: d.Chain,
			}
			if known[baselineKey(jd)] {
				continue
			}
			out = append(out, jd)
		}
	}

	// Per-package passes.
	var enginePkgs []*lint.Package
	for _, pkg := range pkgs {
		if lint.EnginePackage(pkg.Path) {
			enginePkgs = append(enginePkgs, pkg)
		}
		diags, err := lint.Run(pkg, lint.AnalyzersFor(pkg.Path))
		if err != nil {
			fatal(err)
		}
		report(pkg, diags)
	}

	// Interprocedural pass over the engine program.
	if len(enginePkgs) > 0 {
		prog := lint.BuildProgram(enginePkgs)
		diags, err := lint.RunProgram(prog, lint.ProgramAnalyzers())
		if err != nil {
			fatal(err)
		}
		report(enginePkgs[0], diags)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if out == nil {
			out = []jsonDiagnostic{}
		}
		if err := enc.Encode(out); err != nil {
			fatal(err)
		}
	} else {
		for _, d := range out {
			fmt.Printf("%s:%d:%d: %s (%s)\n", d.File, d.Line, d.Col, d.Message, d.Analyzer)
			if len(d.Chain) > 1 {
				fmt.Printf("\tcall chain:")
				for _, hop := range d.Chain {
					fmt.Printf(" -> %s", hop)
				}
				fmt.Printf("\n")
			}
		}
	}
	if len(out) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", len(out))
		os.Exit(1)
	}
}

// baselineKey identifies a finding across runs: position drift must not
// resurrect or hide findings, so the line is deliberately excluded.
func baselineKey(d jsonDiagnostic) string {
	return d.File + "\x00" + d.Analyzer + "\x00" + d.Message
}

// loadBaseline reads a -json-format findings file into a suppression set.
func loadBaseline(path string) (map[string]bool, error) {
	if path == "" {
		return nil, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("baseline: %v", err)
	}
	var diags []jsonDiagnostic
	if err := json.Unmarshal(data, &diags); err != nil {
		return nil, fmt.Errorf("baseline %s: %v", path, err)
	}
	known := make(map[string]bool, len(diags))
	for _, d := range diags {
		known[baselineKey(d)] = true
	}
	return known, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "simlint:", err)
	os.Exit(2)
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", mustGetwd())
		}
		dir = parent
	}
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}
