// Command simlint runs the determinism & shard-safety analyzer suite over
// the module. It is the mechanical form of the engine's review checklist:
// map order must not leak into event order, wall time stays out of the
// virtual clock, RNG streams are component-local, cross-shard deliveries
// are canonically keyed, and packets come from the shard arenas.
//
// Usage:
//
//	simlint [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. Engine
// packages get the full suite; CLIs and the daemon get wallclock +
// allowcheck (see lint.AnalyzersFor). Exit status: 0 clean, 1 findings,
// 2 usage or load failure. Suppress a finding with a justified directive:
//
//	//simlint:allow <analyzer> — <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"ndp/internal/lint"
)

func main() {
	list := flag.Bool("list", false, "print each analyzer's name and doc string, then exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: simlint [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	modRoot, err := findModuleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.Match(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		os.Exit(2)
	}
	if len(pkgs) == 0 {
		fmt.Fprintf(os.Stderr, "simlint: no packages match %v\n", patterns)
		os.Exit(2)
	}

	findings := 0
	for _, pkg := range pkgs {
		diags, err := lint.Run(pkg, lint.AnalyzersFor(pkg.Path))
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			os.Exit(2)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			rel, rerr := filepath.Rel(modRoot, pos.Filename)
			if rerr != nil {
				rel = pos.Filename
			}
			fmt.Printf("%s:%d:%d: %s (%s)\n", rel, pos.Line, pos.Column, d.Message, d.Analyzer)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", mustGetwd())
		}
		dir = parent
	}
}

func mustGetwd() string {
	wd, err := os.Getwd()
	if err != nil {
		return "."
	}
	return wd
}
