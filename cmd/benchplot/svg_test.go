package main

import (
	"strings"
	"testing"

	"ndp/internal/harness"
)

func report(label string, cases map[string]harness.BenchResult) *harness.BenchReport {
	rep := &harness.BenchReport{Label: label, CPUs: 4}
	for name, r := range cases {
		r.Name = name
		rep.Results = append(rep.Results, r)
	}
	return rep
}

// TestRenderTrajectory checks the SVG is well-formed and contains one
// series per case plus every report label — including a case missing from
// one report (gap, not a lie).
func TestRenderTrajectory(t *testing.T) {
	reps := []*harness.BenchReport{
		report("PR 3", map[string]harness.BenchResult{
			"rpc-tiny":    {EventsPerSec: 5e6, AllocsPerOp: 49116},
			"incast-tiny": {EventsPerSec: 7e6, AllocsPerOp: 3000},
		}),
		report("PR 4", map[string]harness.BenchResult{
			"rpc-tiny":    {EventsPerSec: 6e6, AllocsPerOp: 41545},
			"incast-tiny": {EventsPerSec: 8e6, AllocsPerOp: 2900},
			"tcp-large":   {EventsPerSec: 4e6, AllocsPerOp: 100000},
		}),
	}
	svg := RenderTrajectory(reps, []string{"PR 3 (4cpu)", "PR 4 (4cpu)"})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatalf("not an SVG document:\n%.200s", svg)
	}
	for _, want := range []string{"rpc-tiny", "incast-tiny", "tcp-large", "PR 3 (4cpu)", "PR 4 (4cpu)",
		"events/sec", "ns/event", "allocations per run"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// tcp-large exists only in PR 4: it must contribute a point but no line.
	if got := strings.Count(svg, "<polyline"); got != 6 { // 2 cases x 3 panels
		t.Errorf("expected 6 polylines (2 full series x 3 panels), got %d", got)
	}
	// Every point carries a tooltip naming its report: the SVG stays
	// self-describing when detached from the x-axis (zoom, crop, hover).
	if !strings.Contains(svg, "<title>PR 4 (4cpu) — rpc-tiny:") {
		t.Error("point tooltip with report label missing")
	}
	if got, want := strings.Count(svg, "<title>"), strings.Count(svg, "<circle"); got != want {
		t.Errorf("%d tooltips for %d points — every point must name its report", got, want)
	}
}

// TestRenderGapSplitsLine checks that a case absent from a middle report
// renders as two line segments with a visible gap — never an interpolated
// value the missing report did not measure.
func TestRenderGapSplitsLine(t *testing.T) {
	reps := []*harness.BenchReport{
		report("A", map[string]harness.BenchResult{"c": {EventsPerSec: 1e6, AllocsPerOp: 10}, "d": {EventsPerSec: 2e6, AllocsPerOp: 20}}),
		report("B", map[string]harness.BenchResult{"d": {EventsPerSec: 2e6, AllocsPerOp: 20}}),
		report("C", map[string]harness.BenchResult{"c": {EventsPerSec: 1e6, AllocsPerOp: 10}, "d": {EventsPerSec: 2e6, AllocsPerOp: 20}}),
	}
	svg := RenderTrajectory(reps, []string{"A", "B", "C"})
	// Case "c" has a gap at B: no segment spans it, so only case "d"
	// contributes polylines (one 3-point line per panel).
	if got := strings.Count(svg, "<polyline"); got != 3 {
		t.Errorf("expected 3 polylines (only the gapless series draws lines), got %d", got)
	}
}

// TestRenderScalingPanel checks the shard-scaling panel: it only appears
// when some report carries scaling-* cases, plots events/sec ratios
// against the family's shards1 point, and leaves gaps for reports
// predating `-bench -scaling`.
func TestRenderScalingPanel(t *testing.T) {
	plain := report("OLD", map[string]harness.BenchResult{
		"rpc-tiny": {EventsPerSec: 5e6, AllocsPerOp: 10},
	})
	withScaling := report("NEW", map[string]harness.BenchResult{
		"rpc-tiny":                 {EventsPerSec: 5e6, AllocsPerOp: 10},
		"scaling-incast-shards1":   {EventsPerSec: 2e6, AllocsPerOp: 10},
		"scaling-incast-shards2":   {EventsPerSec: 3e6, AllocsPerOp: 10},
		"scaling-incast-shards4":   {EventsPerSec: 5e6, AllocsPerOp: 10},
		"scaling-incast-shards8":   {EventsPerSec: 6e6, AllocsPerOp: 10},
		"scaling-lossless-shards1": {EventsPerSec: 1e6, AllocsPerOp: 10},
		"scaling-lossless-shards4": {EventsPerSec: 2e6, AllocsPerOp: 10},
	})

	svg := RenderTrajectory([]*harness.BenchReport{plain}, []string{"OLD"})
	if strings.Contains(svg, "shard-scaling speedup") {
		t.Error("scaling panel rendered with no scaling cases in any report")
	}

	svg = RenderTrajectory([]*harness.BenchReport{plain, withScaling}, []string{"OLD", "NEW"})
	if !strings.Contains(svg, "shard-scaling speedup") {
		t.Fatal("scaling panel missing")
	}
	// The ratio series are named by the non-baseline cases; shards1 is the
	// divisor, never a series of its own (it would be a flat 1.0 line).
	for _, want := range []string{"scaling-incast-shards2", "scaling-incast-shards8", "scaling-lossless-shards4"} {
		if !strings.Contains(svg, want) {
			t.Errorf("scaling panel missing series %q", want)
		}
	}
	// 2.5x speedup for scaling-incast-shards4 (5e6 / 2e6) shows up as a
	// tooltip value in the fourth panel.
	if !strings.Contains(svg, "<title>NEW — scaling-incast-shards4:") {
		t.Error("scaling point tooltip missing")
	}
}

// TestReportLabelPrefersBenchName pins the BENCH_<n> file naming as the
// point label for committed trajectory reports.
func TestReportLabelPrefersBenchName(t *testing.T) {
	rep := &harness.BenchReport{Label: "PR 5", CPUs: 8}
	if got := reportLabel("some/dir/BENCH_5.json", rep); got != "BENCH_5 (8cpu)" {
		t.Errorf("BENCH file label = %q, want BENCH_5 (8cpu)", got)
	}
	if got := reportLabel("bench-tiny.json", rep); got != "PR 5 (8cpu)" {
		t.Errorf("non-BENCH file label = %q, want PR 5 (8cpu)", got)
	}
	if got := reportLabel("bench-tiny.json", &harness.BenchReport{Label: "local", CPUs: 4}); got != "bench-tiny (4cpu)" {
		t.Errorf("local label = %q, want bench-tiny (4cpu)", got)
	}
}

// TestBenchNumOrdering pins the numeric BENCH_<n>.json ordering.
func TestBenchNumOrdering(t *testing.T) {
	if benchNum("BENCH_10.json") < benchNum("BENCH_3.json") {
		t.Error("BENCH_10 must sort after BENCH_3")
	}
}
