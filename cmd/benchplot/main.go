// Command benchplot renders the committed BENCH_*.json performance
// trajectory as a self-contained SVG: one line per benchmark case, one
// x-position per report, so a glance shows how events/sec (and allocation
// counts) moved across PRs. The nightly bench workflow attaches the
// rendered SVG as an artifact next to the fresh report.
//
// Usage:
//
//	benchplot                                # BENCH_*.json in ., to bench-trajectory.svg
//	benchplot -o out.svg BENCH_3.json BENCH_4.json bench-tiny.json
//
// Reports are plotted in argument order; with no arguments, BENCH_*.json
// files sort by their numeric suffix. Wall-clock derived series (events/sec)
// are only comparable across reports from the same hardware class — the
// labels carry each report's cpu count for exactly that caveat.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ndp/internal/harness"
)

func main() {
	out := flag.String("o", "bench-trajectory.svg", "output SVG path")
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		var err error
		paths, err = defaultReports(".")
		if err != nil {
			fatal(err)
		}
	}
	if len(paths) == 0 {
		fatal(fmt.Errorf("benchplot: no BENCH_*.json reports found (pass paths explicitly)"))
	}
	var reports []*harness.BenchReport
	var labels []string
	for _, p := range paths {
		rep, err := harness.LoadBenchReport(p)
		if err != nil {
			fatal(err)
		}
		reports = append(reports, rep)
		labels = append(labels, reportLabel(p, rep))
	}
	svg := RenderTrajectory(reports, labels)
	if err := os.WriteFile(*out, []byte(svg), 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchplot: %d reports, wrote %s\n", len(reports), *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

// defaultReports globs BENCH_*.json in dir, ordered by numeric suffix so
// the trajectory reads left-to-right in PR order.
func defaultReports(dir string) ([]string, error) {
	paths, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Slice(paths, func(i, j int) bool { return benchNum(paths[i]) < benchNum(paths[j]) })
	return paths, nil
}

// benchNum extracts the numeric suffix of BENCH_<n>.json (0 if unparsable).
func benchNum(path string) int {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	if i := strings.LastIndexByte(base, '_'); i >= 0 {
		if n, err := strconv.Atoi(base[i+1:]); err == nil {
			return n
		}
	}
	return 0
}

// reportLabel names one x-position. Committed trajectory files are named
// for the PR that produced them, so a BENCH_<n>.json is labeled BENCH_<n>
// — the stable PR-ordered name every point inherits — regardless of the
// free-form label recorded inside. Other reports fall back to their own
// label, then the file name. The cpu count rides along because
// wall-derived series are only comparable within a hardware class.
func reportLabel(path string, rep *harness.BenchReport) string {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	l := base
	if !strings.HasPrefix(base, "BENCH_") {
		if rep.Label != "" && rep.Label != "local" {
			l = rep.Label
		}
	}
	return fmt.Sprintf("%s (%dcpu)", l, rep.CPUs)
}
