package main

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ndp/internal/harness"
)

// This file renders the trajectory SVG with nothing but the standard
// library: stacked panels (events/sec, ns/event, allocs per run, and —
// when any report carries scaling-* cases — shard-scaling speedup)
// sharing one x-axis of report positions, one polyline per benchmark case,
// with a legend keyed by color. Every point carries a <title> tooltip with
// its BENCH_<n> PR label, case name and value, so the SVG is
// self-describing on hover. Cases missing from a report simply skip that x
// position, so adding a benchmark mid-trajectory leaves a gap instead of a
// lie.

const (
	plotW    = 960
	panelH   = 300
	marginL  = 90
	marginR  = 230
	marginT  = 40
	panelGap = 70
)

// palette cycles per case; chosen for contrast on white.
var palette = []string{
	"#1f77b4", "#ff7f0e", "#2ca02c", "#d62728", "#9467bd", "#8c564b",
	"#e377c2", "#7f7f7f", "#bcbd22", "#17becf", "#393b79", "#ad494a",
	"#637939", "#7b4173",
}

// series is one case's values across reports; NaN marks a missing report.
type series struct {
	name string
	vals []float64
}

// RenderTrajectory builds the full SVG document for the given reports.
func RenderTrajectory(reports []*harness.BenchReport, labels []string) string {
	events := collect(reports, func(r harness.BenchResult) float64 { return r.EventsPerSec })
	nsPerEv := collect(reports, func(r harness.BenchResult) float64 { return r.NsPerEvent })
	allocs := collect(reports, func(r harness.BenchResult) float64 { return float64(r.AllocsPerOp) })
	speedup := collectSpeedup(reports)

	panels := 3
	if len(speedup) > 0 {
		panels = 4
	}
	height := marginT + panels*(panelH+panelGap)
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif" font-size="12">`+"\n",
		plotW, height)
	b.WriteString(`<rect width="100%" height="100%" fill="white"/>` + "\n")
	renderPanel(&b, marginT, "events/sec (higher is better)", events, labels, false)
	renderPanel(&b, marginT+panelH+panelGap, "ns/event (lower is better)", nsPerEv, labels, false)
	renderPanel(&b, marginT+2*(panelH+panelGap), "allocations per run (lower is better)", allocs, labels, true)
	if len(speedup) > 0 {
		renderPanel(&b, marginT+3*(panelH+panelGap), "shard-scaling speedup vs 1 shard (higher is better)", speedup, labels, false)
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// collectSpeedup derives the shard-scaling panel from the -scaling curve
// cases: for every scaling-<family>-shards<n> case with n > 1 whose
// shards1 sibling is present in the same report, the series value is
// events/sec(n) / events/sec(1) — the engine speedup the extra shards
// bought on that report's machine. Reports without scaling cases (the
// trajectory predating `-bench -scaling`) contribute gaps, and when no
// report carries any the panel is omitted entirely.
func collectSpeedup(reports []*harness.BenchReport) []series {
	byName := map[string][]float64{}
	for ri, rep := range reports {
		base := map[string]float64{}
		for _, res := range rep.Results {
			if strings.HasPrefix(res.Name, "scaling-") && strings.HasSuffix(res.Name, "-shards1") {
				base[strings.TrimSuffix(res.Name, "-shards1")] = res.EventsPerSec
			}
		}
		for _, res := range rep.Results {
			if !strings.HasPrefix(res.Name, "scaling-") || strings.HasSuffix(res.Name, "-shards1") {
				continue
			}
			fam := res.Name[:strings.LastIndex(res.Name, "-shards")]
			if base[fam] <= 0 {
				continue
			}
			vals, ok := byName[res.Name]
			if !ok {
				vals = make([]float64, len(reports))
				for i := range vals {
					vals[i] = math.NaN()
				}
				byName[res.Name] = vals
			}
			vals[ri] = res.EventsPerSec / base[fam]
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]series, 0, len(names))
	for _, n := range names {
		out = append(out, series{name: n, vals: byName[n]})
	}
	return out
}

// collect extracts one metric into per-case series ordered by case name.
func collect(reports []*harness.BenchReport, metric func(harness.BenchResult) float64) []series {
	byName := map[string][]float64{}
	for ri, rep := range reports {
		for _, res := range rep.Results {
			vals, ok := byName[res.Name]
			if !ok {
				vals = make([]float64, len(reports))
				for i := range vals {
					vals[i] = math.NaN()
				}
				byName[res.Name] = vals
			}
			vals[ri] = metric(res)
		}
	}
	names := make([]string, 0, len(byName))
	for n := range byName {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]series, 0, len(names))
	for _, n := range names {
		out = append(out, series{name: n, vals: byName[n]})
	}
	return out
}

// renderPanel draws one metric panel at vertical offset top. logScale suits
// allocation counts, which span orders of magnitude across cases.
func renderPanel(b *strings.Builder, top int, title string, data []series, labels []string, logScale bool) {
	innerW := plotW - marginL - marginR
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, s := range data {
		for _, v := range s.vals {
			if math.IsNaN(v) {
				continue
			}
			if logScale && v < 1 {
				v = 1
			}
			if logScale {
				v = math.Log10(v)
			}
			lo, hi = math.Min(lo, v), math.Max(hi, v)
		}
	}
	if math.IsInf(lo, 1) { // no data at all
		lo, hi = 0, 1
	}
	if hi == lo {
		hi = lo + 1
	}
	pad := (hi - lo) * 0.08
	lo, hi = lo-pad, hi+pad

	x := func(i int) float64 {
		if len(labels) == 1 {
			return marginL + float64(innerW)/2
		}
		return marginL + float64(i)*float64(innerW)/float64(len(labels)-1)
	}
	y := func(v float64) float64 {
		if logScale {
			if v < 1 {
				v = 1
			}
			v = math.Log10(v)
		}
		return float64(top+panelH) - (v-lo)/(hi-lo)*float64(panelH)
	}

	fmt.Fprintf(b, `<text x="%d" y="%d" font-weight="bold">%s</text>`+"\n", marginL, top-12, title)
	// Axes and y grid.
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, top, marginL, top+panelH)
	fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="#333"/>`+"\n",
		marginL, top+panelH, plotW-marginR, top+panelH)
	for t := 0; t <= 4; t++ {
		v := lo + (hi-lo)*float64(t)/4
		yy := float64(top+panelH) - float64(t)/4*float64(panelH)
		label := v
		if logScale {
			label = math.Pow(10, v)
		}
		fmt.Fprintf(b, `<line x1="%d" y1="%.1f" x2="%d" y2="%.1f" stroke="#ddd"/>`+"\n",
			marginL, yy, plotW-marginR, yy)
		fmt.Fprintf(b, `<text x="%d" y="%.1f" text-anchor="end" fill="#555">%s</text>`+"\n",
			marginL-6, yy+4, compactNum(label))
	}
	// X labels.
	for i, l := range labels {
		fmt.Fprintf(b, `<text x="%.1f" y="%d" text-anchor="middle" fill="#555">%s</text>`+"\n",
			x(i), top+panelH+18, escape(l))
	}
	// Series. A missing report splits the line into separate segments — a
	// visible gap, never an interpolated value the report did not measure.
	for si, s := range data {
		color := palette[si%len(palette)]
		var seg []string
		flush := func() {
			if len(seg) > 1 {
				fmt.Fprintf(b, `<polyline points="%s" fill="none" stroke="%s" stroke-width="1.5"/>`+"\n",
					strings.Join(seg, " "), color)
			}
			seg = seg[:0]
		}
		for i, v := range s.vals {
			if math.IsNaN(v) {
				flush()
				continue
			}
			seg = append(seg, fmt.Sprintf("%.1f,%.1f", x(i), y(v)))
			// Each point names its own report: hovering a circle answers
			// "which PR is this" without consulting the x-axis.
			fmt.Fprintf(b, `<circle cx="%.1f" cy="%.1f" r="3" fill="%s"><title>%s — %s: %s</title></circle>`+"\n",
				x(i), y(v), color, escape(labels[i]), escape(s.name), compactNum(v))
		}
		flush()
		// Legend entry.
		ly := top + 14*si
		fmt.Fprintf(b, `<line x1="%d" y1="%d" x2="%d" y2="%d" stroke="%s" stroke-width="3"/>`+"\n",
			plotW-marginR+12, ly, plotW-marginR+30, ly, color)
		fmt.Fprintf(b, `<text x="%d" y="%d" fill="#333">%s</text>`+"\n",
			plotW-marginR+36, ly+4, escape(s.name))
	}
}

// compactNum renders 6742252 as "6.7M", 38698 as "38.7k".
func compactNum(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.1fG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1fM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1fk", v/1e3)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
