// Command ndpsimd runs the NDP simulator as a long-lived
// simulation-as-a-service daemon: scenario Specs are submitted as jobs
// over HTTP/JSON, validated up front, queued on a bounded worker pool,
// streamed back as Server-Sent Events, and memoized in a
// content-addressed result cache keyed by (canonical Spec hash, seed).
//
// Usage:
//
//	ndpsimd -addr :9464 -workers 4 -cache-entries 512
//
//	curl -s localhost:9464/api/catalog
//	curl -s -X POST localhost:9464/api/jobs \
//	     -d '{"scenario":"incast","params":{"hosts":16,"degree":8,"flowsize":45000}}'
//	curl -N localhost:9464/api/jobs/job-000001/events   # SSE progress + result
//	curl -s localhost:9464/api/workers
//
// SIGINT/SIGTERM drains gracefully: submissions are refused with 503,
// queued and running jobs finish, and the process exits 0.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ndp/internal/simd"
)

func main() {
	var (
		addr         = flag.String("addr", ":9464", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulation jobs (0 = all cores)")
		cacheEntries = flag.Int("cache-entries", 128, "result cache capacity in entries (0 disables caching)")
		drainTimeout = flag.Duration("drain-timeout", time.Minute, "how long to wait for in-flight jobs on shutdown")
	)
	flag.Parse()
	if *workers < 0 {
		fmt.Fprintf(os.Stderr, "ndpsimd: -workers must be >= 0, got %d\n", *workers)
		os.Exit(2)
	}
	if *cacheEntries < 0 {
		fmt.Fprintf(os.Stderr, "ndpsimd: -cache-entries must be >= 0, got %d\n", *cacheEntries)
		os.Exit(2)
	}

	cache := *cacheEntries
	if cache == 0 {
		cache = -1 // Config: negative disables, 0 means default
	}
	srv := simd.New(simd.Config{Workers: *workers, CacheEntries: cache})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errc := make(chan error, 1)
	go func() {
		log.Printf("ndpsimd: serving on %s", *addr)
		errc <- httpSrv.ListenAndServe()
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("ndpsimd: %v", err)
	case got := <-sig:
		log.Printf("ndpsimd: %v — draining (finishing queued and running jobs)", got)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		log.Printf("ndpsimd: drain incomplete: %v", err)
		httpSrv.Close()
		os.Exit(1)
	}
	// Jobs are done, so every SSE stream has delivered its result event;
	// Shutdown now only waits for response tails and idle keep-alives.
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("ndpsimd: shutdown: %v", err)
		os.Exit(1)
	}
	log.Printf("ndpsimd: drained cleanly")
}
