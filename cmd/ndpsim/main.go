// Command ndpsim regenerates the tables and figures of the NDP paper
// (Handley et al., SIGCOMM 2017) from the simulator in this repository,
// and runs custom scenarios composed from the public scenario API.
//
// Usage:
//
//	ndpsim -list                 # experiments + scenario catalog
//	ndpsim -list -json           # the same catalog, machine-readable
//	ndpsim -exp fig14            # one experiment at paper scale
//	ndpsim -exp all -scale 0.3   # everything, shrunk for a quick pass
//	ndpsim -exp fig20 -full      # unlock the 8192-host FatTree
//	ndpsim -exp all -parallel 1  # force the old serial execution
//
//	ndpsim -scenario incast -transport dcqcn -hosts 128 -degree 100 -flowsize 135000
//	ndpsim -scenario permutation -transport mptcp -json
//	ndpsim -scenario permutation -hosts 1024 -shards 8   # one sim, 8 cores
//	ndpsim -scenario rpc -transport tcp -shards 4        # baselines shard too
//
//	ndpsim -bench                                # pinned performance suite
//	ndpsim -bench -tiny -baseline BENCH_3.json   # CI regression gate
//	ndpsim -bench -scaling                       # + 1/2/4/8-shard scaling curves
//	ndpsim -bench -tiny -cpuprofile cpu.pprof -memprofile mem.pprof
//
// Experiments and scenario repeats decompose into independent seed-derived
// simulation jobs that run on a worker pool sized by -parallel (default:
// all cores). Results are bit-identical for any worker count with the same
// -seed. Invalid flag values are rejected with exit code 2 before anything
// runs.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ndp"
	"ndp/internal/harness"
	"ndp/scenario"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale    = flag.Float64("scale", 1.0, "scale knob in (0,1]: 1.0 = paper dimensions")
		seed     = flag.Uint64("seed", 1, "random seed")
		full     = flag.Bool("full", false, "unlock extreme sizes (8192-host FatTree)")
		list     = flag.Bool("list", false, "list experiments and scenarios, then exit")
		parallel = flag.Int("parallel", 0, "sweep-job workers: 0 = all cores, 1 = serial")
		jsonOut  = flag.Bool("json", false, "emit results as JSON instead of tables")

		scen      = flag.String("scenario", "", "named scenario to run (see -list)")
		transport = flag.String("transport", "ndp", "scenario transport: ndp|tcp|dctcp|mptcp|dcqcn|phost")
		hosts     = flag.Int("hosts", 0, "scenario topology size (hosts; 0 = scenario default)")
		degree    = flag.Int("degree", 0, "scenario incast fan-in / rpc conns per host (0 = default)")
		flowsize  = flag.Int64("flowsize", 0, "scenario flow size in bytes (0 = default)")
		repeats   = flag.Int("repeats", 1, "scenario repetitions aggregated into one result")
		shards    = flag.Int("shards", 1, "scenario: shard each simulation across this many cores (every transport, on fattree/twotier/jellyfish; results identical for any value)")

		bench      = flag.Bool("bench", false, "run the pinned benchmark suite, then exit")
		tiny       = flag.Bool("tiny", false, "bench: run only the seconds-fast -tiny cases (the CI subset)")
		scaling    = flag.Bool("scaling", false, "bench: additionally run the shard-scaling curves (1/2/4/8 shards at pinned GOMAXPROCS)")
		benchOut   = flag.String("benchout", "", "bench: also write the report JSON to this path (e.g. BENCH_3.json)")
		benchLabel = flag.String("benchlabel", "local", "bench: label recorded in the report")
		baseline   = flag.String("baseline", "", "bench: compare events/sec against this committed report; exit 1 on regression")
		maxRegress = flag.Float64("maxregress", 20, "bench: events/sec regression tolerance vs -baseline, in percent")
		cpuProfile = flag.String("cpuprofile", "", "bench: write a CPU profile of the measured runs to this path")
		memProfile = flag.String("memprofile", "", "bench: write a post-suite heap profile to this path")
	)
	flag.Parse()

	explicit := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	if *hosts < 0 || *degree < 0 || *flowsize < 0 {
		fatalUsage("-hosts/-degree/-flowsize must be >= 0 (0 = scenario default), got %d/%d/%d",
			*hosts, *degree, *flowsize)
	}
	if *hosts == 1 {
		fatalUsage("-hosts 1 cannot carry traffic; use 0 for the scenario default or >= 2")
	}
	if *shards < 1 {
		fatalUsage("-shards must be >= 1, got %d", *shards)
	}
	if explicit["shards"] && *scen == "" {
		fatalUsage("-shards only applies to -scenario mode (experiments parallelize across sweep jobs with -parallel; the bench suite pins its own sharded cases)")
	}
	validateFlags(*exp, *scen, *transport, *scale, *parallel, *repeats, *bench, explicit)

	if *bench {
		runBench(*tiny, *scaling, *benchOut, *benchLabel, *baseline, *maxRegress, *jsonOut,
			*cpuProfile, *memProfile)
		return
	}

	if *list || (*exp == "" && *scen == "") {
		printCatalog(*jsonOut)
		if *exp == "" && *scen == "" && !*list {
			os.Exit(2)
		}
		return
	}

	if *scen != "" {
		runScenario(*scen, *transport, *hosts, *degree, *flowsize, *seed, *parallel, *repeats, *shards, *jsonOut)
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ndp.Experiments()
	}
	opts := ndp.Options{Scale: *scale, Seed: *seed, Full: *full, Workers: *parallel}
	total := time.Now() //simlint:allow wallclock — CLI progress reporting: wall time is printed, never simulated
	var results []*ndp.Result
	for _, id := range ids {
		start := time.Now() //simlint:allow wallclock — CLI progress reporting: wall time is printed, never simulated //simlint:allow wallclock — CLI progress reporting: wall time is printed, never simulated
		res, err := ndp.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *jsonOut {
			results = append(results, res)
			continue
		}
		fmt.Print(res)
		//simlint:allow wallclock — CLI progress reporting: wall time is printed, never simulated
		fmt.Printf("(%s wall time: %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	switch {
	case *jsonOut && len(results) == 1:
		emitJSON(results[0])
	case *jsonOut:
		// One valid JSON document regardless of how many experiments ran.
		emitJSON(results)
	case *exp == "all":
		fmt.Printf("== %d experiments, total wall time: %v ==\n",
			//simlint:allow wallclock — CLI progress reporting: wall time is printed, never simulated
			len(ids), time.Since(total).Round(time.Millisecond))
	}
}

// validateFlags rejects invalid or inapplicable flag values loudly
// (exit 2) before any simulation runs, instead of silently clamping or
// ignoring them. explicit holds the flags the user actually set.
func validateFlags(exp, scen, transport string, scale float64, parallel, repeats int, bench bool, explicit map[string]bool) {
	if scale <= 0 || scale > 1 {
		fatalUsage("-scale must be in (0,1], got %g", scale)
	}
	if parallel < 0 {
		fatalUsage("-parallel must be >= 0, got %d", parallel)
	}
	if repeats < 1 {
		fatalUsage("-repeats must be >= 1, got %d", repeats)
	}
	ok := false
	for _, t := range scenario.Transports() {
		if string(t) == transport {
			ok = true
		}
	}
	if !ok {
		fatalUsage("unknown transport %q (known: %v)", transport, scenario.Transports())
	}
	if exp != "" && scen != "" {
		fatalUsage("-exp and -scenario are mutually exclusive")
	}
	if bench {
		if exp != "" || scen != "" {
			fatalUsage("-bench is mutually exclusive with -exp and -scenario")
		}
		if explicit["list"] {
			fatalUsage("-list does not apply to -bench mode")
		}
		if explicit["maxregress"] && !explicit["baseline"] {
			fatalUsage("-maxregress only gates against a -baseline report")
		}
		// The suite pins sizes, seeds and serial execution so reports stay
		// comparable; reject knobs that would silently not apply.
		for _, f := range []string{"scale", "full", "seed", "parallel", "transport",
			"hosts", "degree", "flowsize", "repeats"} {
			if explicit[f] {
				fatalUsage("-%s does not apply to -bench mode (the suite is pinned)", f)
			}
		}
	} else {
		for _, f := range []string{"tiny", "scaling", "benchout", "benchlabel", "baseline", "maxregress",
			"cpuprofile", "memprofile"} {
			if explicit[f] {
				fatalUsage("-%s only applies to -bench mode", f)
			}
		}
	}
	if exp != "" {
		if exp != "all" && ndp.Describe(exp) == "" {
			fatalUsage("unknown experiment %q (see -list)", exp)
		}
		for _, f := range []string{"transport", "hosts", "degree", "flowsize", "repeats"} {
			if explicit[f] {
				fatalUsage("-%s only applies to -scenario mode", f)
			}
		}
	}
	if scen != "" {
		n, ok := scenario.Lookup(scen)
		if !ok {
			fatalUsage("unknown scenario %q (see -list)", scen)
		}
		for _, f := range []string{"scale", "full"} {
			if explicit[f] {
				fatalUsage("-%s does not apply to -scenario mode", f)
			}
		}
		for _, f := range []string{"hosts", "degree", "flowsize"} {
			if explicit[f] && !n.UsesParam(f) {
				fatalUsage("scenario %q does not use -%s (accepted: %v)", scen, f, n.Uses)
			}
		}
	}
}

func fatalUsage(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "ndpsim: "+format+"\n", args...)
	os.Exit(2)
}

// experimentEntry is one experiment row in the -list -json document.
type experimentEntry struct {
	ID          string `json:"id"`
	Description string `json:"description"`
}

// printCatalog lists everything ndpsim can run. The JSON form is the same
// catalog the ndpsimd daemon serves at /api/catalog, plus the experiment
// registry; the text form adds each scenario's accepted params and the
// fully-defaulted Spec it builds from zero params.
func printCatalog(jsonOut bool) {
	entries := scenario.CatalogEntries()
	if jsonOut {
		exps := make([]experimentEntry, 0)
		for _, id := range ndp.Experiments() {
			exps = append(exps, experimentEntry{ID: id, Description: ndp.Describe(id)})
		}
		emitJSON(struct {
			Experiments []experimentEntry       `json:"experiments"`
			Scenarios   []scenario.CatalogEntry `json:"scenarios"`
		}{exps, entries})
		return
	}
	fmt.Println("experiments:")
	for _, id := range ndp.Experiments() {
		fmt.Printf("  %-8s  %s\n", id, ndp.Describe(id))
	}
	fmt.Println("scenarios (compose with -transport/-hosts/-degree/-flowsize):")
	for _, e := range entries {
		d := e.Defaults
		fmt.Printf("  %-12s  %s\n", e.Name, e.Description)
		fmt.Printf("  %-12s    params: %s\n", "", strings.Join(e.Params, ", "))
		fmt.Printf("  %-12s    defaults: %s, %s, transport %s, mtu %d\n",
			"", d.Topology, d.Workload, d.Transport, d.MTU)
	}
}

func runScenario(name, transport string, hosts, degree int, flowsize int64,
	seed uint64, workers, repeats, shards int, jsonOut bool) {
	spec, err := scenario.Build(name,
		scenario.Params{Hosts: hosts, Degree: degree, FlowSize: flowsize},
		scenario.WithTransport(scenario.Transport(transport)),
		scenario.WithSeed(seed),
		scenario.WithWorkers(workers),
		scenario.WithRepeats(repeats),
		scenario.WithShards(shards),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	// Spec-level validation failures (e.g. an incast degree larger than
	// the topology) are usage errors too: reject before running anything.
	// scenario.Validate is the same gate the ndpsimd daemon answers 400
	// with, so CLI and service refuse identical Specs with identical text.
	if err := scenario.Validate(spec); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	start := time.Now() //simlint:allow wallclock — CLI progress reporting: wall time is printed, never simulated
	m, err := scenario.Run(spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if jsonOut {
		emitJSON(m)
		return
	}
	fmt.Print(m)
	//simlint:allow wallclock — CLI progress reporting: wall time is printed, never simulated
	fmt.Printf("(wall time: %v)\n", time.Since(start).Round(time.Millisecond))
}

// runBench executes the pinned suite (or its -tiny subset), prints the
// report, optionally persists it, and optionally gates on a committed
// baseline: any case whose events/sec drops — or whose allocs/op grows —
// more than maxRegress percent fails the run with exit code 1. With
// -scaling the shard-scaling curves (1/2/4/8 shards at pinned GOMAXPROCS)
// are appended to the selected set. With -cpuprofile/-memprofile the
// suite runs under the profiler, so hot paths and allocation sites can be
// read straight off the pinned workloads.
func runBench(tiny, scaling bool, outPath, label, baselinePath string, maxRegress float64, jsonOut bool,
	cpuProfile, memProfile string) {
	cases := scenario.BenchSuite()
	if tiny {
		kept := cases[:0]
		for _, c := range cases {
			if c.Tiny {
				kept = append(kept, c)
			}
		}
		cases = kept
	}
	if scaling {
		cases = append(cases, scenario.BenchScalingSuite()...)
	}
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// Stopped explicitly after the suite: os.Exit on a baseline
		// regression would skip defers and lose the profile.
		defer f.Close()
	}
	rep := harness.RunBenchSuite(cases, label, func(format string, args ...any) {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	})
	if cpuProfile != "" {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "bench: CPU profile written to %s\n", cpuProfile)
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		runtime.GC() // flush dead objects so the profile shows live + cumulative allocs cleanly
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		f.Close()
		fmt.Fprintf(os.Stderr, "bench: heap profile written to %s\n", memProfile)
	}
	if jsonOut {
		emitJSON(rep)
	} else {
		fmt.Print(rep)
	}
	if outPath != "" {
		if err := rep.WriteFile(outPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: report written to %s\n", outPath)
	}
	if baselinePath != "" {
		base, err := harness.LoadBenchReport(baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if regressions := harness.CompareBench(base, rep, maxRegress); len(regressions) > 0 {
			for _, msg := range regressions {
				fmt.Fprintf(os.Stderr, "bench: REGRESSION: %s\n", msg)
			}
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "bench: no events/sec regression beyond %.0f%% vs %s\n",
			maxRegress, baselinePath)
	}
}

func emitJSON(v any) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
