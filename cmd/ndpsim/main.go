// Command ndpsim regenerates the tables and figures of the NDP paper
// (Handley et al., SIGCOMM 2017) from the simulator in this repository.
//
// Usage:
//
//	ndpsim -list
//	ndpsim -exp fig14            # one experiment at paper scale
//	ndpsim -exp all -scale 0.3   # everything, shrunk for a quick pass
//	ndpsim -exp fig20 -full      # unlock the 8192-host FatTree
//	ndpsim -exp all -parallel 1  # force the old serial execution
//
// Experiments decompose into independent seed-derived simulation jobs that
// run on a worker pool sized by -parallel (default: all cores). Results are
// bit-identical for any worker count with the same -seed.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"ndp"
)

func main() {
	var (
		exp      = flag.String("exp", "", "experiment id (see -list), or 'all'")
		scale    = flag.Float64("scale", 1.0, "scale knob in (0,1]: 1.0 = paper dimensions")
		seed     = flag.Uint64("seed", 1, "random seed")
		full     = flag.Bool("full", false, "unlock extreme sizes (8192-host FatTree)")
		list     = flag.Bool("list", false, "list experiments and exit")
		parallel = flag.Int("parallel", 0, "sweep-job workers: 0 = all cores, 1 = serial")
	)
	flag.Parse()

	if *list || *exp == "" {
		fmt.Println("experiments:")
		for _, id := range ndp.Experiments() {
			fmt.Printf("  %-8s  %s\n", id, ndp.Describe(id))
		}
		if *exp == "" && !*list {
			os.Exit(2)
		}
		return
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = ndp.Experiments()
	}
	opts := ndp.Options{Scale: *scale, Seed: *seed, Full: *full, Workers: *parallel}
	for _, id := range ids {
		start := time.Now()
		res, err := ndp.Run(id, opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(res)
		fmt.Printf("(%s wall time: %v)\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
