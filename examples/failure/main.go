// Failure: a core link silently negotiates down to 1Gb/s. NDP's per-packet
// spraying would normally keep hitting it; the path scoreboard (§3.2.3)
// notices the asymmetric NACK ratio and routes around it. Run with and
// without the penalty to see the difference (Figure 22).
//
//	go run ./examples/failure
package main

import (
	"fmt"
	"sort"

	"ndp/internal/core"
	"ndp/internal/sim"
	"ndp/internal/topo"
	"ndp/internal/workload"
)

func main() {
	for _, penalty := range []bool{true, false} {
		gbps, excluded := run(penalty)
		sort.Float64s(gbps)
		var sum float64
		for _, g := range gbps {
			sum += g
		}
		name := "with path penalty"
		if !penalty {
			name = "without path penalty"
		}
		slow := 0
		for _, g := range gbps {
			if g < 5 {
				slow++
			}
		}
		fmt.Printf("%-22s utilization %.1f%%  worst flow %.2f Gb/s  flows under 5G: %d  paths excluded: %d\n",
			name, 100*sum/(float64(len(gbps))*10), gbps[0], slow, excluded)
	}
	fmt.Println("\npaper shape: without the penalty a cluster of flows is stuck near 3 Gb/s;")
	fmt.Println("with it, senders exclude the degraded paths and throughput recovers.")
}

func run(penalty bool) ([]float64, int) {
	const k = 8
	base := topo.Config{Seed: 21}
	base.SwitchQueue = core.QueueFactory(core.DefaultSwitchConfig(9000), sim.NewRand(33))
	net := topo.NewFatTree(k, base)
	core.WireBounce(net.Switches)
	net.DegradeLink(0, 0, 1e9) // agg0's first core uplink: 10G -> 1G

	stacks := make([]*core.Stack, net.NumHosts())
	for i, h := range net.Hosts {
		h := h
		c := core.DefaultConfig()
		c.Seed = uint64(i + 1)
		c.DisablePathPenalty = !penalty
		stacks[i] = core.NewStack(h, func(dst int32) [][]int16 { return net.Paths(h.ID, dst) }, c)
		stacks[i].Listen(nil)
	}
	dst := workload.Permutation(net.NumHosts(), sim.NewRand(21))
	senders := make([]*core.Sender, len(dst))
	for src, d := range dst {
		senders[src] = stacks[src].Connect(stacks[d], -1, core.FlowOpts{})
	}
	const warm, window = 3 * sim.Millisecond, 10 * sim.Millisecond
	net.EL.RunUntil(warm)
	base0 := make([]int64, len(senders))
	for i, s := range senders {
		base0[i] = s.AckedBytes()
	}
	net.EL.RunUntil(warm + window)
	out := make([]float64, len(senders))
	excluded := 0
	for i, s := range senders {
		out[i] = float64(s.AckedBytes()-base0[i]) * 8 / window.Seconds() / 1e9
		excluded += s.ExcludedPaths()
	}
	return out, excluded
}
