// Failure: a core link silently negotiates down to 1Gb/s. NDP's per-packet
// spraying would normally keep hitting it; the path scoreboard (§3.2.3)
// notices the asymmetric NACK ratio and routes around it. Run with and
// without the penalty to see the difference (Figure 22) — composed from
// the public scenario API's link-failure injection.
//
//	go run ./examples/failure
package main

import (
	"flag"
	"fmt"
	"time"

	"ndp/scenario"
)

func main() {
	tiny := flag.Bool("tiny", false, "shrink to CI-smoke size")
	flag.Parse()

	// The scoreboard needs enough per-path NACK samples to spot the
	// asymmetry, so even the CI-smoke run keeps the 128-host FatTree and
	// shrinks the measurement window instead.
	window := 10 * time.Millisecond
	if *tiny {
		window = 4 * time.Millisecond
	}
	spec := scenario.New(
		scenario.WithTopology(scenario.FatTreeForHosts(128)),
		scenario.WithWorkload(scenario.Permutation()),
		scenario.WithLinkFailure(0, 0, 1e9), // agg0's first core uplink: 10G -> 1G
		scenario.WithSeed(21),
		scenario.WithWindow(window),
	)

	for _, penalty := range []bool{true, false} {
		m, err := scenario.Run(spec.With(scenario.WithPathPenalty(penalty)))
		if err != nil {
			panic(err)
		}
		name := "with path penalty"
		if !penalty {
			name = "without path penalty"
		}
		slow := 0
		for _, g := range m.GoodputGbps {
			if g < 5 {
				slow++
			}
		}
		fmt.Printf("%-22s utilization %.1f%%  worst flow %.2f Gb/s  flows under 5G: %d  paths excluded: %d\n",
			name, m.UtilizationPct, m.Goodput.Min, slow, m.PathsExcluded)
	}
	fmt.Println("\npaper shape (Figure 22): with the penalty the scoreboard excludes the degraded")
	fmt.Println("paths (nonzero count above) and lifts the worst flows; without it every sender")
	fmt.Println("keeps spraying onto the 1Gb/s link it should be routing around.")
}
