// Permutation: the paper's worst-case full-load traffic matrix — every host
// sends to one host and receives from one host — compared between NDP with
// 8-packet switch buffers and DCTCP with 200-packet ECN buffers (the
// Figure 14 headline).
//
//	go run ./examples/permutation
package main

import (
	"fmt"
	"sort"

	"ndp/internal/core"
	"ndp/internal/dctcp"
	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/stats"
	"ndp/internal/tcp"
	"ndp/internal/topo"
	"ndp/internal/workload"
)

const (
	k      = 8 // 128 hosts
	warm   = 3 * sim.Millisecond
	window = 10 * sim.Millisecond
)

func main() {
	ndpFlows := runNDP()
	dctcpFlows := runDCTCP()

	report := func(name string, gbps []float64) {
		sort.Float64s(gbps)
		var sum float64
		for _, g := range gbps {
			sum += g
		}
		util := sum / (float64(len(gbps)) * 10)
		fmt.Printf("%-6s utilization %.1f%%  worst flow %.2f Gb/s  median %.2f Gb/s  Jain %.3f\n",
			name, 100*util, gbps[0], gbps[len(gbps)/2], stats.JainIndex(gbps))
	}
	fmt.Printf("permutation matrix on a %d-host FatTree, %v measurement window\n",
		k*k*k/4, window)
	report("NDP", ndpFlows)
	report("DCTCP", dctcpFlows)
	fmt.Println("\npaper shape: NDP >=92% with every flow near 9 Gb/s;")
	fmt.Println("DCTCP ~40% because per-flow ECMP collides flows onto shared core links.")
}

func runNDP() []float64 {
	cfg := topo.Config{Seed: 5}
	cfg.SwitchQueue = core.QueueFactory(core.DefaultSwitchConfig(9000), sim.NewRand(9))
	net := topo.NewFatTree(k, cfg)
	core.WireBounce(net.Switches)
	stacks := make([]*core.Stack, net.NumHosts())
	for i, h := range net.Hosts {
		h := h
		c := core.DefaultConfig()
		c.Seed = uint64(i + 1)
		stacks[i] = core.NewStack(h, func(dst int32) [][]int16 { return net.Paths(h.ID, dst) }, c)
		stacks[i].Listen(nil)
	}
	dst := workload.Permutation(net.NumHosts(), sim.NewRand(5))
	senders := make([]*core.Sender, len(dst))
	for src, d := range dst {
		senders[src] = stacks[src].Connect(stacks[d], -1, core.FlowOpts{})
	}
	net.EL.RunUntil(warm)
	base := make([]int64, len(senders))
	for i, s := range senders {
		base[i] = s.AckedBytes()
	}
	net.EL.RunUntil(warm + window)
	out := make([]float64, len(senders))
	for i, s := range senders {
		out[i] = float64(s.AckedBytes()-base[i]) * 8 / window.Seconds() / 1e9
	}
	return out
}

// unboundedSource feeds a TCP sender forever (long-running flow).
type unboundedSource struct{ mss int }

func (u unboundedSource) Claim() int      { return u.mss }
func (u unboundedSource) Exhausted() bool { return false }

func runDCTCP() []float64 {
	cfg := topo.Config{Seed: 5}
	cfg.SwitchQueue = dctcp.QueueFactory(9000)
	net := topo.NewFatTree(k, cfg)
	demux := make([]*fabric.Demux, net.NumHosts())
	for i, h := range net.Hosts {
		demux[i] = fabric.NewDemux()
		h.Stack = demux[i]
	}
	rand := sim.NewRand(77)
	dst := workload.Permutation(net.NumHosts(), sim.NewRand(5))
	senders := make([]*tcp.Sender, 0, len(dst))
	for src, d := range dst {
		paths := net.Paths(int32(src), int32(d))
		rev := net.Paths(int32(d), int32(src))
		flow := uint64(src + 1)
		snd := tcp.NewSender(net.Hosts[src], int32(d), flow,
			paths[rand.Intn(len(paths))], unboundedSource{mss: 9000}, dctcp.SenderConfig(9000))
		rcv := dctcp.NewReceiver(net.Hosts[d], int32(src), flow, rev[rand.Intn(len(rev))])
		demux[src].Register(flow, snd)
		demux[d].Register(flow, rcv)
		snd.Start()
		senders = append(senders, snd)
	}
	net.EL.RunUntil(warm)
	base := make([]int64, len(senders))
	for i, s := range senders {
		base[i] = s.AckedBytes
	}
	net.EL.RunUntil(warm + window)
	out := make([]float64, len(senders))
	for i, s := range senders {
		out[i] = float64(s.AckedBytes-base[i]) * 8 / window.Seconds() / 1e9
	}
	return out
}
