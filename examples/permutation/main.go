// Permutation: the paper's worst-case full-load traffic matrix — every
// host sends to one host and receives from one host — compared between NDP
// with 8-packet switch buffers and DCTCP with 200-packet ECN buffers (the
// Figure 14 headline), via the public scenario API.
//
//	go run ./examples/permutation
package main

import (
	"flag"
	"fmt"
	"time"

	"ndp/scenario"
)

func main() {
	tiny := flag.Bool("tiny", false, "shrink to CI-smoke size")
	flag.Parse()

	hosts, window := 128, 10*time.Millisecond
	if *tiny {
		hosts, window = 16, 3*time.Millisecond
	}
	spec := scenario.New(
		scenario.WithTopology(scenario.FatTreeForHosts(hosts)),
		scenario.WithWorkload(scenario.Permutation()),
		scenario.WithSeed(5),
		scenario.WithWindow(window),
	)

	fmt.Printf("permutation matrix on a %d-host FatTree, %v measurement window\n",
		spec.Topology.Hosts(), window)
	for _, tr := range []scenario.Transport{scenario.NDP, scenario.DCTCP} {
		m, err := scenario.Run(spec.With(scenario.WithTransport(tr)))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-6s utilization %.1f%%  worst flow %.2f Gb/s  median %.2f Gb/s  Jain %.3f\n",
			tr, m.UtilizationPct, m.Goodput.Min, m.Goodput.P50, m.JainIndex)
	}
	fmt.Println("\npaper shape: NDP >=92% with every flow near 9 Gb/s;")
	fmt.Println("DCTCP ~40% because per-flow ECMP collides flows onto shared core links.")
}
