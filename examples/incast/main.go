// Incast: 100 workers answer a frontend simultaneously — the hardest
// pattern for a datacenter transport. One response is a straggler from an
// earlier request, so the receiver pulls it with strict priority (§5,
// "Benefits of prioritization").
//
//	go run ./examples/incast
package main

import (
	"fmt"

	"ndp/internal/core"
	"ndp/internal/sim"
	"ndp/internal/stats"
	"ndp/internal/topo"
	"ndp/internal/workload"
)

func main() {
	// 128-host FatTree (k=8), NDP switches with the paper's parameters.
	cfg := topo.Config{Seed: 11}
	cfg.SwitchQueue = core.QueueFactory(core.DefaultSwitchConfig(9000), sim.NewRand(3))
	net := topo.NewFatTree(8, cfg)
	core.WireBounce(net.Switches)

	stacks := make([]*core.Stack, net.NumHosts())
	for i, h := range net.Hosts {
		h := h
		c := core.DefaultConfig()
		c.Seed = uint64(i + 1)
		stacks[i] = core.NewStack(h, func(dst int32) [][]int16 { return net.Paths(h.ID, dst) }, c)
		stacks[i].Listen(nil)
	}

	const (
		frontend = 0
		workers  = 100
		respSize = 135_000
	)
	senders := workload.IncastSenders(frontend, workers, net.NumHosts())

	var fcts stats.Dist
	var last, straggler sim.Time
	for i, w := range senders {
		prio := i == len(senders)-1 // the straggler gets priority pulls
		stacks[w].Connect(stacks[frontend], respSize, core.FlowOpts{
			Priority: prio,
			OnReceiverDone: func(r *core.Receiver) {
				fcts.AddTime(r.CompletedAt)
				if r.CompletedAt > last {
					last = r.CompletedAt
				}
				if prio {
					straggler = r.CompletedAt
				}
			},
		})
	}
	net.EL.RunUntil(2 * sim.Second)

	optimal := sim.FromSeconds(float64(workers) * respSize * 8 / 10e9)
	fmt.Printf("%d-to-1 incast of %d KB responses\n", workers, respSize/1000)
	fmt.Printf("  optimal (receiver link saturated): %v\n", optimal)
	fmt.Printf("  last flow finished:                %v (+%.1f%%)\n",
		last, 100*(float64(last)/float64(optimal)-1))
	fmt.Printf("  prioritized straggler finished:    %v\n", straggler)
	fmt.Printf("  FCT spread: %s\n", fcts.Summary("us"))
	st := net.CollectStats()
	fmt.Printf("  trims=%d bounces=%d drops=%d (lossless for metadata)\n",
		st.Trims, st.Bounces, st.Drops)
}
