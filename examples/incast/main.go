// Incast: 100 workers answer a frontend simultaneously — the hardest
// pattern for a datacenter transport. NDP keeps the last flow within a few
// percent of the receiver-link optimum while TCP's drop-tail losses push
// it into retransmission timeouts (§5 of the paper).
//
//	go run ./examples/incast
package main

import (
	"flag"
	"fmt"

	"ndp/scenario"
)

func main() {
	tiny := flag.Bool("tiny", false, "shrink to CI-smoke size")
	flag.Parse()

	workers, size, hosts := 100, int64(135_000), 128
	if *tiny {
		workers, hosts = 8, 16
	}
	spec := scenario.New(
		scenario.WithTopology(scenario.FatTreeForHosts(hosts)),
		scenario.WithWorkload(scenario.Incast(workers, size)),
		scenario.WithSeed(11),
	)

	optimalMs := float64(workers) * float64(size) * 8 / 10e9 * 1e3
	fmt.Printf("%d-to-1 incast of %dKB responses (optimal %.3gms at a saturated receiver link)\n\n",
		workers, size/1000, optimalMs)
	for _, tr := range []scenario.Transport{scenario.NDP, scenario.TCP} {
		m, err := scenario.Run(spec.With(scenario.WithTransport(tr)))
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-5s last flow %.4gms (+%.1f%% over optimal), %d/%d done, %d trims %d drops\n",
			tr, m.LastCompletionMs, 100*(m.LastCompletionMs/optimalMs-1),
			m.FlowsCompleted, m.FlowsLaunched, m.Switch.Trims, m.Switch.Drops)
	}

	// One response is a straggler from an earlier request: the receiver
	// pulls it with strict priority (§5, "Benefits of prioritization") and
	// it finishes long before the rest of the incast.
	m, err := scenario.Run(spec.With(scenario.WithWorkload(scenario.IncastPrioritized(workers, size))))
	if err != nil {
		panic(err)
	}
	// FCTsUs lists completed flows in start order, so the prioritized
	// straggler is the last entry only when every flow finished.
	if m.FlowsCompleted == m.FlowsLaunched {
		straggler := m.FCTsUs[len(m.FCTsUs)-1]
		fmt.Printf("NDP + prioritized straggler: straggler done at %.4gms, incast still ends at %.4gms\n",
			straggler/1e3, m.LastCompletionMs)
	} else {
		fmt.Printf("NDP + prioritized straggler: only %d/%d flows finished before the deadline\n",
			m.FlowsCompleted, m.FlowsLaunched)
	}

	fmt.Println("\npaper shape: NDP within a few % of optimal with a tight FCT spread and the")
	fmt.Println("prioritized straggler served almost immediately; TCP is RTO-bound — its")
	fmt.Println("stragglers finish hundreds of ms late.")
}
