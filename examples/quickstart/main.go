// Quickstart: build a small FatTree with NDP switches, transfer 1MB between
// two hosts in different pods, and print what happened on the wire.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"ndp/internal/core"
	"ndp/internal/sim"
	"ndp/internal/topo"
)

func main() {
	// A k=4 FatTree: 16 hosts, 20 switches, 4 paths between pods.
	// Every switch egress runs the NDP service model: an 8-packet data
	// queue plus a priority header queue with 10:1 WRR and trimming.
	cfg := topo.Config{Seed: 42}
	cfg.SwitchQueue = core.QueueFactory(core.DefaultSwitchConfig(9000), sim.NewRand(7))
	net := topo.NewFatTree(4, cfg)
	core.WireBounce(net.Switches) // return-to-sender re-enters routing

	// One NDP stack per host; all listening.
	stacks := make([]*core.Stack, net.NumHosts())
	for i, h := range net.Hosts {
		h := h
		c := core.DefaultConfig()
		c.Seed = uint64(i + 1)
		stacks[i] = core.NewStack(h, func(dst int32) [][]int16 { return net.Paths(h.ID, dst) }, c)
		stacks[i].Listen(nil)
	}

	// Zero-RTT transfer: the first window leaves at line rate immediately,
	// SYN on every packet, sprayed across all four inter-pod paths.
	const size = 1_000_000
	src, dst := 0, 15
	fmt.Printf("sending %d bytes from host %d to host %d...\n", size, src, dst)

	var fct sim.Time
	snd := stacks[src].Connect(stacks[dst], size, core.FlowOpts{
		OnReceiverDone: func(r *core.Receiver) {
			fct = r.CompletedAt
			fmt.Printf("receiver got %d bytes at t=%v (first packet at %v)\n",
				r.Bytes(), r.CompletedAt, r.FirstArrival)
		},
	})
	net.EL.RunUntil(50 * sim.Millisecond)

	fmt.Printf("flow completed in %v (%.2f Gb/s)\n", fct, float64(size)*8/fct.Seconds()/1e9)
	fmt.Printf("sender: %d packets sent, %d retransmissions (%d NACK-driven, %d bounced, %d timeouts)\n",
		snd.PacketsSent, snd.Retransmissions(), snd.RtxFromNack, snd.RtxFromBounce, snd.RtxFromTimeout)
	st := net.CollectStats()
	fmt.Printf("network: %d trims, %d bounces, %d drops\n", st.Trims, st.Bounces, st.Drops)
}
