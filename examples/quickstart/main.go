// Quickstart: build a small FatTree with NDP switches, transfer 1MB
// between two hosts, and print what happened on the wire — all through the
// public scenario API.
//
//	go run ./examples/quickstart
package main

import (
	"flag"
	"fmt"

	"ndp/scenario"
)

func main() {
	flag.Bool("tiny", false, "no-op; the quickstart is already tiny (CI smoke flag)")
	flag.Parse()

	// A k=4 FatTree: 16 hosts, 20 switches, 4 paths between pods. Every
	// switch egress runs the NDP service model (8-packet data queue,
	// priority header queue, trimming); a single 1MB flow is pulled into
	// host 0 at line rate from the first RTT.
	spec := scenario.New(
		scenario.WithTopology(scenario.FatTree(4)),
		scenario.WithTransport(scenario.NDP),
		scenario.WithWorkload(scenario.Incast(1, 1_000_000)),
		scenario.WithSeed(42),
	)
	m, err := scenario.Run(spec)
	if err != nil {
		panic(err)
	}
	fmt.Print(m)
	fmt.Printf("\nflow completed in %.4g us (%.2f Gb/s goodput)\n",
		m.FCT.Max, 1_000_000*8/(m.LastCompletionMs/1e3)/1e9)
	fmt.Println("next: examples/incast overloads the receiver so the switches trim instead of drop")
}
