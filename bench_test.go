// Benchmarks: one per table/figure of the paper's evaluation. Each bench
// runs the corresponding harness experiment at a reduced scale (the same
// code paths as `ndpsim -exp <id>` at paper scale) and reports simulated
// packet work per wall second alongside the usual allocation counters.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package ndp

import (
	"fmt"
	"runtime"
	"testing"
)

func benchExperiment(b *testing.B, id string, scale float64) {
	b.Helper()
	benchExperimentWorkers(b, id, scale, 0)
}

func benchExperimentWorkers(b *testing.B, id string, scale float64, workers int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := Run(id, Options{Scale: scale, Seed: uint64(i + 1), Workers: workers})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Tables) == 0 {
			b.Fatalf("%s produced no tables", id)
		}
	}
}

// BenchmarkParallelSweep measures the wall-clock effect of the sweep-job
// worker pool on fig14 (four transport simulations per run) at small
// scale: workers=1 is the old serial harness, workers=GOMAXPROCS is the
// new default. The ratio of the two is the parallel speedup.
func BenchmarkParallelSweep(b *testing.B) {
	workers := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("fig14/workers=%d", w), func(b *testing.B) {
			benchExperimentWorkers(b, "fig14", 0.2, w)
		})
	}
}

// BenchmarkFig02 regenerates Figure 2 (CP collapse & phase effects vs the
// NDP switch service model).
func BenchmarkFig02(b *testing.B) { benchExperiment(b, "fig2", 0.2) }

// BenchmarkFig04 regenerates Figure 4 (delivery-latency CDFs under
// permutation, random and incast matrices).
func BenchmarkFig04(b *testing.B) { benchExperiment(b, "fig4", 0.2) }

// BenchmarkFig08 regenerates Figure 8 (1KB RPC latency: NDP vs TFO vs TCP).
func BenchmarkFig08(b *testing.B) { benchExperiment(b, "fig8", 0.2) }

// BenchmarkFig09 regenerates Figure 9 (7:1 incast on the two-tier testbed).
func BenchmarkFig09(b *testing.B) { benchExperiment(b, "fig9", 0.2) }

// BenchmarkFig10 regenerates Figure 10 (receiver prioritization).
func BenchmarkFig10(b *testing.B) { benchExperiment(b, "fig10", 0.2) }

// BenchmarkFig11 regenerates Figure 11 (throughput vs initial window).
func BenchmarkFig11(b *testing.B) { benchExperiment(b, "fig11", 0.2) }

// BenchmarkFig12 regenerates Figure 12 (PULL spacing distributions).
func BenchmarkFig12(b *testing.B) { benchExperiment(b, "fig12", 0.2) }

// BenchmarkFig13 regenerates Figure 13 (incast under imperfect pulls).
func BenchmarkFig13(b *testing.B) { benchExperiment(b, "fig13", 0.2) }

// BenchmarkFig14 regenerates Figure 14 (permutation throughput, four
// transports).
func BenchmarkFig14(b *testing.B) { benchExperiment(b, "fig14", 0.2) }

// BenchmarkFig15 regenerates Figure 15 (90KB FCTs under background load).
func BenchmarkFig15(b *testing.B) { benchExperiment(b, "fig15", 0.2) }

// BenchmarkFig16 regenerates Figure 16 (incast completion vs fan-in).
func BenchmarkFig16(b *testing.B) { benchExperiment(b, "fig16", 0.2) }

// BenchmarkFig17 regenerates Figure 17 (IW and buffer sensitivity).
func BenchmarkFig17(b *testing.B) { benchExperiment(b, "fig17", 0.2) }

// BenchmarkFig19 regenerates Figure 19 (incast collateral damage
// timeseries for DCTCP/DCQCN/NDP).
func BenchmarkFig19(b *testing.B) { benchExperiment(b, "fig19", 0.2) }

// BenchmarkFig20 regenerates Figure 20 (huge-incast overhead and the
// NACK/return-to-sender retransmission split).
func BenchmarkFig20(b *testing.B) { benchExperiment(b, "fig20", 0.2) }

// BenchmarkFig21 regenerates Figure 21 (sender-limited traffic and
// pull-queue fair queuing, plus the FIFO ablation).
func BenchmarkFig21(b *testing.B) { benchExperiment(b, "fig21", 0.2) }

// BenchmarkFig22 regenerates Figure 22 (degraded-link asymmetry and the
// path-penalty ablation).
func BenchmarkFig22(b *testing.B) { benchExperiment(b, "fig22", 0.2) }

// BenchmarkFig23 regenerates Figure 23 (oversubscribed Facebook web
// workload, NDP vs DCTCP).
func BenchmarkFig23(b *testing.B) { benchExperiment(b, "fig23", 0.2) }

// BenchmarkPHost regenerates the §6.2 in-text pHost comparison.
func BenchmarkPHost(b *testing.B) { benchExperiment(b, "t-phost", 0.2) }

// BenchmarkScale regenerates the §6.2 in-text utilization-vs-size study.
func BenchmarkScale(b *testing.B) { benchExperiment(b, "t-scale", 0.2) }

// BenchmarkTrimLocality regenerates the §3.2.4 in-text uplink-trimming
// comparison of source vs switch load balancing.
func BenchmarkTrimLocality(b *testing.B) { benchExperiment(b, "t-trim", 0.2) }

// BenchmarkAblate regenerates the §3.1 switch-design ablations (WRR,
// trim coin, return-to-sender).
func BenchmarkAblate(b *testing.B) { benchExperiment(b, "t-ablate", 0.2) }

// BenchmarkLimits regenerates the §3 Limitations comparison on an
// asymmetric Jellyfish topology.
func BenchmarkLimits(b *testing.B) { benchExperiment(b, "t-limits", 0.2) }
