package fabric

import "ndp/internal/sim"

// AttachArena returns the packet arena owned by el's scheduling domain,
// creating and attaching one on first use. Topology construction calls it
// once per shard; components cache the result at construction time (it is
// a map-free field read, but the hot path should not pay even that).
func AttachArena(el *sim.EventList) *Arena {
	if a, ok := el.Allocator().(*Arena); ok {
		return a
	}
	a := NewArena()
	el.SetAllocator(a)
	return a
}

// Arena is a shard-local packet allocator: a chunked slab feeding a plain
// free-list stack. Each shard's event list owns exactly one Arena
// (AttachArena), and every component scheduled on that list allocates from
// it, so packets are freed by the same goroutine that allocated them —
// after a cross-shard handoff, by the goroutine the ownership was
// transferred to at the window barrier. That single-owner discipline is
// what lets Get/Free run without locks, without sync.Pool's per-P caches,
// and without the GC draining the pool between runs.
//
// Unlike the old global pool, an Arena never re-zeroes a recycled struct on
// the generic Get path and then sets fields again: NewData/NewControl write
// the whole packet once. The InUse counter tracks outstanding packets; a
// simulation that ends with InUse() != 0 has leaked, and the golden suite
// asserts this for every registry scenario.
type Arena struct {
	free  []*Packet
	inUse int64
}

// arenaChunk is how many packets one slab growth adds. Chunks amortize both
// the allocation and the GC scan cost (one backing array per 256 packets).
const arenaChunk = 256

// NewArena returns an empty arena; the first Get grows the initial chunk.
//
//simlint:allow hotalloc — setup path: one arena per event list, constructed on first attach and cached by AttachArena thereafter
func NewArena() *Arena { return &Arena{} }

// take pops a recycled packet (growing a fresh slab when empty) without
// initializing it. Callers must overwrite every field before releasing the
// packet into the simulation.
func (a *Arena) take() *Packet {
	n := len(a.free)
	if n == 0 {
		chunk := make([]Packet, arenaChunk) //simlint:allow hotalloc — chunked slab refill: one allocation per arenaChunk packets, then reused via the free-list forever
		for i := range chunk {
			chunk[i].freed = true
			a.free = append(a.free, &chunk[i]) //simlint:allow hotalloc — free-list grows only during the per-chunk refill above, amortized over arenaChunk takes
		}
		n = len(a.free)
	}
	p := a.free[n-1]
	a.free[n-1] = nil
	a.free = a.free[:n-1]
	a.inUse++
	return p
}

// Get returns a zeroed packet owned by this arena.
func (a *Arena) Get() *Packet {
	p := a.take()
	*p = Packet{owner: a}
	return p
}

// NewControl builds a control packet (ACK/NACK/PULL/CNP) from this arena,
// sized at HeaderSize. One whole-struct store: no zero-then-set.
func (a *Arena) NewControl(t PacketType, flow uint64, src, dst int32) *Packet {
	p := a.take()
	*p = Packet{owner: a, Type: t, Flow: flow, Src: src, Dst: dst, Size: HeaderSize}
	return p
}

// NewData builds a payload packet of the given total wire size from this
// arena. One whole-struct store: no zero-then-set.
func (a *Arena) NewData(flow uint64, src, dst int32, seq int64, size int32) *Packet {
	p := a.take()
	*p = Packet{owner: a, Type: Data, Flow: flow, Src: src, Dst: dst, Seq: seq, Size: size, DataSize: size}
	return p
}

// put returns a packet to the free-list. Double frees corrupt a free-list
// silently (the same packet handed to two future allocations), so they
// panic here instead.
func (a *Arena) put(p *Packet) {
	if p.freed {
		panic("fabric: double free of packet " + p.String())
	}
	p.freed = true
	p.Path = nil
	a.inUse--
	a.free = append(a.free, p) //simlint:allow hotalloc — free-list capacity is bounded by the packets the arena ever handed out; put never exceeds what take released
}

// InUse reports the packets allocated from this arena and not yet freed.
// Zero after a completed run means no packet leaked.
func (a *Arena) InUse() int64 { return a.inUse }

// transferTo moves the packet's ownership to another arena: the packet will
// be freed into dst's free-list by dst's goroutine. Called only at window
// barriers (CrossBox.Drain), where the coordinator is the sole runner, so
// the counter updates need no atomics.
func (p *Packet) transferTo(dst *Arena) {
	if p.owner == dst || p.owner == nil || dst == nil {
		return
	}
	p.owner.inUse--
	dst.inUse++
	p.owner = dst
}
