package fabric

import (
	"testing"

	"ndp/internal/sim"
)

// BenchmarkPortForwarding measures the fabric's per-packet cost: enqueue,
// serialize, propagate, deliver, recycle — the end-to-end hot path every
// simulated packet pays per hop. The benchmark reports wall time per
// simulated packet-hop; allocations should be zero (pooled packets).
func BenchmarkPortForwarding(b *testing.B) {
	el := sim.NewEventList()
	sink := NewCountingSink(el)
	port := NewPort(el, "bench", NewFIFOQueue(0), 10e9, 500*sim.Nanosecond)
	port.Connect(sink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		port.Enqueue(NewData(1, 0, 1, int64(i), 9000))
		el.Run()
	}
	if sink.Packets != int64(b.N) {
		b.Fatalf("delivered %d, want %d", sink.Packets, b.N)
	}
}

// BenchmarkPacketPool measures Get/Free cycling.
func BenchmarkPacketPool(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p := NewData(1, 0, 1, 0, 9000)
		Free(p)
	}
}

// BenchmarkSwitchTraversal pushes packets through a routed switch with a
// bounded queue — the common mid-network hop.
func BenchmarkSwitchTraversal(b *testing.B) {
	el := sim.NewEventList()
	sw := NewSwitch(el, 0, "s")
	sw.Route = func(s *Switch, p *Packet) int { return 0 }
	sink := NewCountingSink(el)
	out := NewPort(el, "out", NewFIFOQueue(8*9000), 10e9, 500*sim.Nanosecond)
	out.Connect(sink)
	sw.AddPort(out)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sw.Receive(NewData(1, 0, 1, int64(i), 9000))
		el.Run()
	}
}
