package fabric

// Queue is the admission + scheduling discipline of one switch output port.
// Enqueue applies the discipline's overload policy (drop, ECN-mark, trim,
// bounce, block); Dequeue picks the next packet to serialize. A Queue is
// driven by exactly one Port and is not safe for concurrent use — the whole
// simulation is single-goroutine by design.
type Queue interface {
	// Enqueue offers a packet. The queue takes ownership: it may store,
	// transform (trim), redirect (bounce) or free the packet.
	Enqueue(p *Packet)
	// Dequeue removes and returns the next packet, or nil when empty.
	Dequeue() *Packet
	// Empty reports whether Dequeue would return nil.
	Empty() bool
	// Bytes is the total queued wire bytes (all internal queues).
	Bytes() int
	// Stats exposes the queue's drop/mark/trim counters.
	Stats() *QueueStats
}

// QueueStats counts the overload events a queue has taken. Every discipline
// embeds one; harness code aggregates them across the topology.
type QueueStats struct {
	EnqPackets int64 // packets offered
	EnqBytes   int64 // bytes offered
	Drops      int64 // packets discarded entirely
	Trims      int64 // payloads cut to headers (NDP/CP)
	Marks      int64 // ECN CE marks applied
	Bounces    int64 // headers returned to sender (NDP)
	MaxBytes   int64 // high-watermark of queued bytes
}

// Stats returns s so that embedding types satisfy Queue.Stats.
func (s *QueueStats) Stats() *QueueStats { return s }

func (s *QueueStats) NoteEnqueue(p *Packet) {
	s.EnqPackets++
	s.EnqBytes += int64(p.Size)
}

func (s *QueueStats) NoteDepth(bytes int) {
	if int64(bytes) > s.MaxBytes {
		s.MaxBytes = int64(bytes)
	}
}

// ring is a growable FIFO of packets. A power-of-two ring buffer avoids the
// per-operation allocation of a linked list and the head-copy cost of a
// slice-based queue; queues sit on the per-packet hot path.
type ring struct {
	buf        []*Packet
	head, tail int // tail is one past the last element
	n          int
}

func (r *ring) len() int { return r.n }

func (r *ring) push(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[r.tail] = p
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.n++
}

func (r *ring) pop() *Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

// popTail removes the most recently pushed packet (used by the NDP switch's
// 50% trim-the-tail policy).
func (r *ring) popTail() *Packet {
	if r.n == 0 {
		return nil
	}
	r.tail = (r.tail - 1) & (len(r.buf) - 1)
	p := r.buf[r.tail]
	r.buf[r.tail] = nil
	r.n--
	return p
}

// pushHead inserts at the front (used for strict-priority re-insertion).
func (r *ring) pushHead(p *Packet) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.head = (r.head - 1) & (len(r.buf) - 1)
	r.buf[r.head] = p
	r.n++
}

func (r *ring) peek() *Packet {
	if r.n == 0 {
		return nil
	}
	return r.buf[r.head]
}

//simlint:allow hotalloc — power-of-two ring doubling: amortized O(1) per push, the buffer is reused forever
func (r *ring) grow() {
	// The index masking throughout this type requires a power-of-two
	// buffer. Doubling preserves that invariant, but a buffer installed by
	// any other path (or a future refactor) would silently corrupt the
	// queue, so normalize the new capacity instead of assuming it.
	size := nextPow2(len(r.buf)*2, 64)
	nb := make([]*Packet, size)
	for i := 0; i < r.n; i++ {
		nb[i] = r.buf[(r.head+i)%len(r.buf)]
	}
	r.buf = nb
	r.head = 0
	r.tail = r.n
}

// nextPow2 returns the smallest power of two >= max(n, floor).
func nextPow2(n, floor int) int {
	size := floor
	for size < n {
		size *= 2
	}
	return size
}

// FIFOQueue is a byte-bounded drop-tail FIFO: the classic switch queue used
// by the TCP, MPTCP and pHost baselines.
type FIFOQueue struct {
	QueueStats
	q        ring
	bytes    int
	MaxQueue int // capacity in bytes; <=0 means unbounded (host NICs)
}

// NewFIFOQueue returns a drop-tail queue holding at most maxBytes.
func NewFIFOQueue(maxBytes int) *FIFOQueue {
	return &FIFOQueue{MaxQueue: maxBytes}
}

// Enqueue appends p, or drops it if the byte budget would be exceeded.
func (q *FIFOQueue) Enqueue(p *Packet) {
	q.NoteEnqueue(p)
	if q.MaxQueue > 0 && q.bytes+int(p.Size) > q.MaxQueue {
		q.Drops++
		Free(p)
		return
	}
	q.bytes += int(p.Size)
	q.q.push(p)
	q.NoteDepth(q.bytes)
}

// Dequeue removes the head packet.
func (q *FIFOQueue) Dequeue() *Packet {
	p := q.q.pop()
	if p != nil {
		q.bytes -= int(p.Size)
	}
	return p
}

// Empty reports whether the queue holds no packets.
func (q *FIFOQueue) Empty() bool { return q.q.len() == 0 }

// Bytes returns the queued wire bytes.
func (q *FIFOQueue) Bytes() int { return q.bytes }

// Packets returns the number of queued packets.
func (q *FIFOQueue) Packets() int { return q.q.len() }

// ECNQueue is a drop-tail FIFO that sets the ECN CE codepoint on packets
// that arrive to find the queue deeper than a marking threshold — the sharp
// single-threshold marking DCTCP and DCQCN assume.
type ECNQueue struct {
	FIFOQueue
	MarkThreshold int // bytes; arriving packet marked if queued bytes >= this
}

// NewECNQueue returns an ECN-marking drop-tail queue.
func NewECNQueue(maxBytes, markThresholdBytes int) *ECNQueue {
	q := &ECNQueue{MarkThreshold: markThresholdBytes}
	q.MaxQueue = maxBytes
	return q
}

// Enqueue marks then appends (or drops, against the same byte budget).
func (q *ECNQueue) Enqueue(p *Packet) {
	if q.bytes >= q.MarkThreshold {
		p.Flags |= FlagCE
		q.Marks++
	}
	p.QueueOcc = int32(q.bytes)
	q.FIFOQueue.Enqueue(p)
}

// CtrlPrioQueue gives strict priority to control packets over data, with no
// byte bound — the host NIC discipline for NDP endpoints (ACKs, NACKs and
// PULLs must not sit behind a window of jumbograms) and a building block for
// switch disciplines.
type CtrlPrioQueue struct {
	QueueStats
	ctrl, data ring
	bytes      int
}

// NewCtrlPrioQueue returns an unbounded two-band priority queue.
func NewCtrlPrioQueue() *CtrlPrioQueue { return &CtrlPrioQueue{} }

// Enqueue classifies p by IsControl.
func (q *CtrlPrioQueue) Enqueue(p *Packet) {
	q.NoteEnqueue(p)
	q.bytes += int(p.Size)
	if p.IsControl() {
		q.ctrl.push(p)
	} else {
		q.data.push(p)
	}
	q.NoteDepth(q.bytes)
}

// Dequeue serves control strictly first.
func (q *CtrlPrioQueue) Dequeue() *Packet {
	p := q.ctrl.pop()
	if p == nil {
		p = q.data.pop()
	}
	if p != nil {
		q.bytes -= int(p.Size)
	}
	return p
}

// Empty reports whether both bands are empty.
func (q *CtrlPrioQueue) Empty() bool { return q.ctrl.len() == 0 && q.data.len() == 0 }

// Bytes returns the queued wire bytes across both bands.
func (q *CtrlPrioQueue) Bytes() int { return q.bytes }
