package fabric

import "ndp/internal/sim"

// Lossless Ethernet (IEEE 802.1Qbb priority flow control) support.
//
// In lossless mode a switch gates admission from each input link through an
// ingress queue. A packet moves from ingress to its egress queue only while
// the egress holds fewer than the configured byte budget; otherwise it waits
// at the ingress, head-of-line blocking everything behind it — including
// packets bound for uncongested egresses. When an ingress backlog crosses
// Xoff, a PAUSE is signalled to the upstream transmitter (one link
// propagation delay later); it resumes below Xon. This reproduces exactly
// the collateral-damage and pause-cascade behaviour §2.3 and §6.1 of the
// paper attribute to PFC, which DCQCN rides on.

type heldEntry struct {
	p   *Packet
	out int
}

type losslessState struct {
	limit     int // egress byte budget before ingress must hold
	xoff, xon int
	ingresses []*IngressQueue
}

// EnableLossless puts the switch in PFC mode. limit is the per-egress byte
// budget; xoff/xon are the ingress backlog watermarks (bytes) for pausing
// and resuming the upstream transmitter.
func (s *Switch) EnableLossless(limit, xoff, xon int) {
	s.lossless = &losslessState{limit: limit, xoff: xoff, xon: xon}
	for _, p := range s.Ports {
		p.OnDequeue = s.drainHeld
	}
}

// Lossless reports whether PFC mode is enabled.
func (s *Switch) Lossless() bool { return s.lossless != nil }

// NewIngress creates the ingress queue for one input link and connects the
// upstream transmitter to it. Must be called after EnableLossless.
func (s *Switch) NewIngress(upstream *Port) *IngressQueue {
	iq := &IngressQueue{sw: s, upstream: upstream}
	s.lossless.ingresses = append(s.lossless.ingresses, iq)
	upstream.Connect(iq)
	return iq
}

func (s *Switch) canAccept(out int, p *Packet) bool {
	return s.Ports[out].Q.Bytes()+int(p.Size) <= s.lossless.limit
}

// drainHeld moves held ingress packets to egress queues as space appears.
// It loops until a full pass makes no progress, so one freed slot can unblock
// a chain of ingresses.
func (s *Switch) drainHeld() {
	ls := s.lossless
	for {
		progress := false
		for _, iq := range ls.ingresses {
			for {
				e, ok := iq.peek()
				if !ok || !s.canAccept(e.out, e.p) {
					break
				}
				iq.popForward()
				progress = true
			}
		}
		if !progress {
			return
		}
	}
}

// IngressQueue is the receiving end of one link at a PFC switch.
type IngressQueue struct {
	sw       *Switch
	upstream *Port

	// Cross, when non-nil, is the mailbox toward the upstream
	// transmitter's shard: the upstream port lives on the other side of a
	// shard cut, so pause/resume transitions travel as keyed cross-shard
	// entries instead of locally scheduled events. The topology layer
	// registers the reverse channel with noteCrossLink, so the link delay
	// the signal travels is itself part of the pair lookahead.
	Cross *CrossBox

	held  []heldEntry
	head  int
	bytes int

	pausedUpstream bool
	pfcSeq         uint64 // emission counter for canonical PFC ord keys
	PauseEvents    int64  // number of XOFF transitions signalled
}

// Receive routes the packet; if its egress is at budget, the packet is held
// and may trigger PAUSE.
func (iq *IngressQueue) Receive(p *Packet) {
	out := iq.sw.Route(iq.sw, p)
	if out < 0 || out >= len(iq.sw.Ports) {
		iq.sw.RouteDrops++
		Free(p)
		return
	}
	if iq.head == len(iq.held) && iq.sw.canAccept(out, p) {
		iq.sw.Ports[out].Enqueue(p)
		return
	}
	iq.held = append(iq.held, heldEntry{p: p, out: out}) //simlint:allow hotalloc — PFC hold queue: amortized doubling, capacity bounded by the pause window and reused after drains
	iq.bytes += int(p.Size)
	iq.updatePause()
}

func (iq *IngressQueue) peek() (heldEntry, bool) {
	if iq.head == len(iq.held) {
		return heldEntry{}, false
	}
	return iq.held[iq.head], true
}

func (iq *IngressQueue) popForward() {
	e := iq.held[iq.head]
	iq.held[iq.head] = heldEntry{}
	iq.head++
	if iq.head == len(iq.held) {
		iq.held = iq.held[:0]
		iq.head = 0
	}
	iq.bytes -= int(e.p.Size)
	iq.sw.Ports[e.out].Enqueue(e.p)
	iq.updatePause()
}

// Backlog returns the bytes currently held at this ingress.
func (iq *IngressQueue) Backlog() int { return iq.bytes }

// releasePackets frees the held backlog at teardown.
func (iq *IngressQueue) releasePackets() {
	for ; iq.head < len(iq.held); iq.head++ {
		Free(iq.held[iq.head].p)
		iq.held[iq.head] = heldEntry{}
	}
	iq.held = iq.held[:0]
	iq.head = 0
	iq.bytes = 0
}

// IngressQueue event kinds: a PAUSE/RESUME signal arriving at the upstream
// transmitter one link propagation delay after the watermark crossing.
const (
	pfcPause = iota
	pfcResume
)

// OnEvent applies a propagated PFC transition to the upstream port
// (sim.Handler). Signals apply in emission order: both travel the same
// fixed link delay, so a later XON can never overtake an earlier XOFF.
func (iq *IngressQueue) OnEvent(arg uint64) {
	iq.upstream.SetPaused(arg == pfcPause)
}

// signal emits one PFC transition toward the upstream transmitter, keyed
// on (upstream port uid, ingress emission seq) so pause application order
// at equal timestamps is canonical — independent of scheduling history and
// of which side of a shard boundary the transition crossed. Resume can
// never overtake pause: both travel the same fixed delay and the seq
// strictly increases.
func (iq *IngressQueue) signal(pause bool) {
	at := iq.sw.el.Now() + iq.upstream.Delay
	iq.pfcSeq++
	ord := sim.PFCOrd(iq.upstream.UID, iq.pfcSeq)
	if iq.Cross != nil {
		iq.Cross.AddPFC(at, ord, iq.upstream, pause)
		return
	}
	arg := uint64(pfcResume)
	if pause {
		arg = pfcPause
	}
	iq.sw.el.ScheduleKeyed(at, ord, iq, arg)
}

func (iq *IngressQueue) updatePause() {
	ls := iq.sw.lossless
	if !iq.pausedUpstream && iq.bytes > ls.xoff {
		iq.pausedUpstream = true
		iq.PauseEvents++
		iq.signal(true)
	} else if iq.pausedUpstream && iq.bytes <= ls.xon {
		iq.pausedUpstream = false
		iq.signal(false)
	}
}
