package fabric

import (
	"math/rand"
	"testing"
)

// TestArenaProperty drives random get/free interleavings against a
// reference map and checks the arena's invariants at every step:
// InUse() always equals the number of outstanding packets, a packet is
// never handed out twice while outstanding, and recycled packets come
// back fully reinitialized (no state bleed from their previous life).
func TestArenaProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewArena()
	live := map[*Packet]uint64{} // packet -> flow id stamped at allocation
	var order []*Packet          // iteration-stable view of the live set
	next := uint64(1)

	for step := 0; step < 20_000; step++ {
		if len(live) == 0 || rng.Intn(2) == 0 {
			var p *Packet
			switch rng.Intn(3) {
			case 0:
				p = a.Get()
				if p.Type != 0 || p.Flow != 0 || p.Seq != 0 || p.Size != 0 || p.Flags != 0 {
					t.Fatalf("step %d: Get returned dirty packet %+v", step, p)
				}
			case 1:
				p = a.NewControl(Ack, next, 1, 2)
				if p.Type != Ack || p.Flow != next || p.Size != HeaderSize || p.Seq != 0 {
					t.Fatalf("step %d: NewControl dirty or misbuilt: %+v", step, p)
				}
			default:
				p = a.NewData(next, 1, 2, 42, 1500)
				if p.Type != Data || p.Flow != next || p.Seq != 42 || p.Size != 1500 {
					t.Fatalf("step %d: NewData dirty or misbuilt: %+v", step, p)
				}
			}
			if _, dup := live[p]; dup {
				t.Fatalf("step %d: arena handed out a packet that is still outstanding", step)
			}
			p.Flow = next
			live[p] = next
			order = append(order, p)
			next++
		} else {
			i := rng.Intn(len(order))
			p := order[i]
			if p.Flow != live[p] {
				t.Fatalf("step %d: outstanding packet mutated: flow %d, want %d", step, p.Flow, live[p])
			}
			delete(live, p)
			order[i] = order[len(order)-1]
			order = order[:len(order)-1]
			Free(p)
		}
		if got, want := a.InUse(), int64(len(live)); got != want {
			t.Fatalf("step %d: InUse()=%d, reference says %d outstanding", step, got, want)
		}
	}
	for _, p := range order {
		Free(p)
	}
	if a.InUse() != 0 {
		t.Fatalf("after freeing everything InUse()=%d, want 0", a.InUse())
	}
}

// TestArenaDoubleFreePanics locks in the arena's defense against the
// silent free-list corruption a double free would cause.
func TestArenaDoubleFreePanics(t *testing.T) {
	a := NewArena()
	p := a.NewData(1, 0, 1, 0, 1500)
	Free(p)
	defer func() {
		if recover() == nil {
			t.Error("double free did not panic")
		}
	}()
	Free(p)
}

// TestArenaTransferMovesAccounting checks the cross-shard ownership move:
// the packet leaves the source arena's books, lands on the destination's,
// and is freed into the destination's free-list.
func TestArenaTransferMovesAccounting(t *testing.T) {
	src, dst := NewArena(), NewArena()
	p := src.Get()
	p.transferTo(dst)
	if src.InUse() != 0 || dst.InUse() != 1 {
		t.Fatalf("after transfer: src InUse=%d dst InUse=%d, want 0/1", src.InUse(), dst.InUse())
	}
	p.transferTo(dst) // self-transfer must be a no-op
	if dst.InUse() != 1 {
		t.Fatalf("self-transfer changed accounting: dst InUse=%d", dst.InUse())
	}
	Free(p)
	if dst.InUse() != 0 {
		t.Fatalf("after free: dst InUse=%d, want 0", dst.InUse())
	}
	if len(dst.free) == 0 || dst.free[len(dst.free)-1] != p {
		t.Error("transferred packet was not freed into the destination free-list")
	}
}

// FuzzArenaInterleaving replays fuzz-chosen byte strings as get/free
// programs: even bytes allocate, odd bytes free the (b/2 mod len)-th
// outstanding packet. The invariant under any program is exact InUse
// accounting and no aliasing among outstanding packets.
func FuzzArenaInterleaving(f *testing.F) {
	f.Add([]byte{0, 2, 1, 4, 3, 5})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 1, 1})
	f.Add([]byte{7})
	f.Fuzz(func(t *testing.T, program []byte) {
		a := NewArena()
		var out []*Packet
		for _, b := range program {
			if b%2 == 0 {
				p := a.NewData(uint64(b), 0, 1, int64(len(out)), 1500)
				for _, q := range out {
					if q == p {
						t.Fatal("arena aliased an outstanding packet")
					}
				}
				out = append(out, p)
			} else if len(out) > 0 {
				i := int(b/2) % len(out)
				Free(out[i])
				out[i] = out[len(out)-1]
				out = out[:len(out)-1]
			}
			if a.InUse() != int64(len(out)) {
				t.Fatalf("InUse()=%d with %d outstanding", a.InUse(), len(out))
			}
		}
	})
}
