package fabric

import (
	"ndp/internal/sim"
)

// Sink receives fully-arrived packets: the input side of a switch, a host
// stack, or an ingress queue in lossless mode.
type Sink interface {
	Receive(p *Packet)
}

// Port is a store-and-forward link transmitter: it drains its Queue one
// packet at a time at RateBps, then delivers each packet to the peer Sink
// after the link propagation Delay. Because delivery is scheduled at
// serialization-end + propagation, downstream nodes see packets only when
// fully received, which is the store-and-forward behaviour the paper's RTT
// arithmetic (7.2µs per 9KB hop at 10Gb/s) assumes.
type Port struct {
	Name    string
	Q       Queue
	RateBps int64
	Delay   sim.Time

	// UID is the port's canonical identity for equal-timestamp delivery
	// ordering (sim.DeliveryOrd). Topology builders assign UIDs in
	// construction order, which is identical no matter how the topology is
	// sharded — the keystone of shard-count-independent results. Ports
	// built outside a topology (unit tests) may leave it zero.
	UID uint32

	// Cross, when set, routes this port's deliveries through a cross-shard
	// mailbox instead of the local event list: the peer sink lives in
	// another shard, and the windowed runner injects the delivery at the
	// next window boundary.
	Cross *CrossBox

	// OnDequeue, when set, runs after each packet leaves the queue. The
	// lossless switch uses it to pull held ingress packets forward.
	OnDequeue func()

	el     *sim.EventList
	peer   Sink
	busy   bool
	paused bool

	// serializing is the packet currently on the wire; flight holds packets
	// in propagation toward the peer, in serialization-end order, each with
	// its due time and emission sequence. Only the head of flight has a
	// delivery event in the heap: the delivery handler re-arms for the next
	// entry when it fires, and drains consecutive entries due at the same
	// instant in one event (burst). Keyed order depends only on (time, ord)
	// and per-port ords are consecutive, so chaining is bit-identical to
	// scheduling every delivery up front — while keeping heap residency at
	// one event per busy port instead of one per in-flight packet.
	serializing *Packet
	flight      flightRing
	emitSeq     uint64

	// Telemetry.
	BytesSent   int64
	PacketsSent int64
	DataBytes   int64    // non-control wire bytes, for utilization
	BusyTime    sim.Time // cumulative serialization time
	PauseCount  int64    // times this port was paused (PFC)
}

// NewPort creates a transmitter with the given queue discipline, line rate
// in bits per second and one-way propagation delay.
func NewPort(el *sim.EventList, name string, q Queue, rateBps int64, delay sim.Time) *Port {
	return &Port{Name: name, Q: q, RateBps: rateBps, Delay: delay, el: el}
}

// Connect attaches the receiving end of the link.
func (p *Port) Connect(peer Sink) { p.peer = peer }

// Peer returns the receiving end of the link.
func (p *Port) Peer() Sink { return p.peer }

// Enqueue offers a packet to the port's queue and starts transmission if
// the line is idle.
func (p *Port) Enqueue(pkt *Packet) {
	p.Q.Enqueue(pkt)
	p.kick()
}

// SetPaused pauses or resumes the transmitter (PFC). Pausing takes effect
// at the next packet boundary; the in-flight packet always completes.
func (p *Port) SetPaused(paused bool) {
	if paused && !p.paused {
		p.PauseCount++
	}
	p.paused = paused
	if !paused {
		p.kick()
	}
}

// Paused reports whether the transmitter is PFC-paused.
func (p *Port) Paused() bool { return p.paused }

// Busy reports whether a packet is currently serializing.
func (p *Port) Busy() bool { return p.busy }

// Port event kinds (the arg of sim.Handler events).
const (
	portSerEnd  = iota // the serializing packet has fully left the NIC
	portDeliver        // the oldest in-flight packet reached the peer
)

func (p *Port) kick() {
	if p.busy || p.paused || p.Q.Empty() {
		return
	}
	pkt := p.Q.Dequeue()
	if pkt == nil {
		return
	}
	ser := sim.TransmissionTime(int(pkt.Size), p.RateBps)
	// Mark busy (and stash the packet) before invoking OnDequeue: the
	// lossless drain hook can re-enter Enqueue -> kick on this same port.
	p.busy = true
	p.serializing = pkt
	if p.OnDequeue != nil {
		p.OnDequeue()
	}
	p.BytesSent += int64(pkt.Size)
	p.PacketsSent++
	if !pkt.IsControl() {
		p.DataBytes += int64(pkt.Size)
	}
	p.BusyTime += ser
	p.el.ScheduleAfter(ser, p, portSerEnd)
}

// OnEvent advances the port's transmit pipeline (sim.Handler).
func (p *Port) OnEvent(arg uint64) {
	switch arg {
	case portSerEnd:
		p.busy = false
		pkt := p.serializing
		p.serializing = nil
		p.emitSeq++
		at := p.el.Now() + p.Delay
		if p.Cross != nil {
			p.Cross.AddDelivery(at, sim.DeliveryOrd(p.UID, p.emitSeq), pkt, p.peer)
		} else {
			// Only the flight head keeps a heap entry; later entries are
			// armed by the delivery handler as it pops.
			arm := p.flight.n == 0
			p.flight.push(flightEntry{pkt: pkt, due: at, seq: p.emitSeq})
			if arm {
				p.el.ScheduleKeyed(at, sim.DeliveryOrd(p.UID, p.emitSeq), p, portDeliver)
			}
		}
		p.kick()
	case portDeliver:
		now := p.el.Now()
		for {
			e := p.flight.pop()
			if p.peer != nil {
				p.peer.Receive(e.pkt)
			} else {
				Free(e.pkt)
			}
			next, ok := p.flight.peek()
			if !ok {
				return
			}
			if next.due != now {
				p.el.ScheduleKeyed(next.due, sim.DeliveryOrd(p.UID, next.seq), p, portDeliver)
				return
			}
			// Burst: the next delivery is due at this same instant with the
			// consecutive per-port ord — no other event can key between
			// (UID, seq) and (UID, seq+1) — so popping it here is exactly
			// the order the heap would have produced.
		}
	}
}

// ReleasePackets frees every packet the port still holds — the one on the
// wire, the propagation flight, and the queued backlog — so a run stopped
// mid-traffic still accounts for every arena packet. Teardown only.
func (p *Port) ReleasePackets() {
	if p.serializing != nil {
		Free(p.serializing)
		p.serializing = nil
		p.busy = false
	}
	for {
		e, ok := p.flight.peek()
		if !ok {
			break
		}
		p.flight.pop()
		Free(e.pkt)
	}
	if p.Q != nil {
		for pkt := p.Q.Dequeue(); pkt != nil; pkt = p.Q.Dequeue() {
			Free(pkt)
		}
	}
}

// flightEntry is one packet in propagation: what to deliver, when it
// arrives, and the emission sequence that keys its delivery order.
type flightEntry struct {
	pkt *Packet
	due sim.Time
	seq uint64
}

// flightRing is a growable power-of-two FIFO of flight entries, the
// propagation pipeline between serialization end and delivery.
type flightRing struct {
	buf        []flightEntry
	head, tail int
	n          int
}

func (r *flightRing) push(e flightEntry) {
	if r.n == len(r.buf) {
		size := nextPow2(len(r.buf)*2, 64)
		nb := make([]flightEntry, size) //simlint:allow hotalloc — power-of-two ring doubling: amortized O(1) per push, the buffer is reused forever
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head, r.tail = nb, 0, r.n
	}
	r.buf[r.tail] = e
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.n++
}

func (r *flightRing) pop() flightEntry {
	e := r.buf[r.head]
	r.buf[r.head] = flightEntry{}
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return e
}

func (r *flightRing) peek() (flightEntry, bool) {
	if r.n == 0 {
		return flightEntry{}, false
	}
	return r.buf[r.head], true
}

// Utilization returns the fraction of the interval [0, now] this port spent
// serializing data (non-control) bytes.
func (p *Port) Utilization(now sim.Time) float64 {
	if now <= 0 {
		return 0
	}
	return float64(p.DataBytes*8) / (float64(p.RateBps) * now.Seconds())
}
