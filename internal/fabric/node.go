package fabric

import (
	"fmt"

	"ndp/internal/sim"
)

// RouteFunc picks the egress port index for a packet at a switch, consuming
// one source-route hop when the packet carries one. Returning a negative
// index drops the packet.
type RouteFunc func(sw *Switch, p *Packet) int

// Switch is an output-queued switch: packets arriving on any link are routed
// and enqueued on an egress Port immediately (the input arbiter of the
// NetFPGA design runs at aggregate rate, so input contention is not the
// bottleneck the paper models). In lossless (PFC) mode, per-link ingress
// queues gate admission to egress queues instead; see lossless.go.
type Switch struct {
	ID    int
	Name  string
	Ports []*Port
	Route RouteFunc

	el *sim.EventList

	// Lossless (PFC) state; nil unless EnableLossless was called.
	lossless *losslessState

	// Drops counts packets discarded because routing failed.
	RouteDrops int64
}

// NewSwitch creates a switch with no ports; topology builders add ports via
// AddPort and wire them with Port.Connect.
func NewSwitch(el *sim.EventList, id int, name string) *Switch {
	return &Switch{ID: id, Name: name, el: el}
}

// AddPort appends an egress port and returns its index. On a lossless
// switch the port's dequeue hook drives the ingress drain, regardless of
// whether EnableLossless ran before or after the port was added.
func (s *Switch) AddPort(p *Port) int {
	s.Ports = append(s.Ports, p)
	if s.lossless != nil {
		p.OnDequeue = s.drainHeld
	}
	return len(s.Ports) - 1
}

// EventList returns the scheduler this switch runs on.
func (s *Switch) EventList() *sim.EventList { return s.el }

// Receive routes and forwards a packet (store-and-forward input side).
func (s *Switch) Receive(p *Packet) {
	out := s.Route(s, p)
	if out < 0 || out >= len(s.Ports) {
		s.RouteDrops++
		Free(p)
		return
	}
	s.Ports[out].Enqueue(p)
}

// ForwardBounced routes a header that a queue on this switch has just
// returned to its sender (NDP return-to-sender). The packet has already had
// Bounce applied, so it is destination-routed from here.
func (s *Switch) ForwardBounced(p *Packet) {
	s.Receive(p)
}

// ReleasePackets frees every packet the switch still holds at teardown:
// each egress port's pipeline and, in lossless mode, the held ingress
// backlog.
func (s *Switch) ReleasePackets() {
	for _, p := range s.Ports {
		p.ReleasePackets()
	}
	if s.lossless != nil {
		for _, iq := range s.lossless.ingresses {
			iq.releasePackets()
		}
	}
}

// String identifies the switch in traces.
func (s *Switch) String() string { return fmt.Sprintf("switch(%s)", s.Name) }

// Host is an end system: one NIC uplink and a protocol stack that consumes
// arriving packets. Transport packages install themselves as the Stack.
type Host struct {
	ID   int32
	Name string
	NIC  *Port

	// Stack receives every packet addressed to this host. Typically a
	// *Demux shared by all transport instances on the host.
	Stack Sink

	el *sim.EventList
}

// NewHost creates a host; the topology builder attaches the NIC port.
func NewHost(el *sim.EventList, id int32, name string) *Host {
	return &Host{ID: id, Name: name, el: el}
}

// Receive delivers an arriving packet to the protocol stack.
func (h *Host) Receive(p *Packet) {
	if h.Stack == nil {
		Free(p)
		return
	}
	h.Stack.Receive(p)
}

// Send queues a packet on the host NIC.
func (h *Host) Send(p *Packet) { h.NIC.Enqueue(p) }

// EventList returns the scheduler this host runs on.
func (h *Host) EventList() *sim.EventList { return h.el }

// LinkRate returns the NIC line rate in bits per second.
func (h *Host) LinkRate() int64 { return h.NIC.RateBps }

// Demux dispatches packets to per-flow handlers. Unknown flows go to the
// Listen hook, which may install a handler on the fly (NDP's zero-RTT
// connection establishment creates receiver state from whichever first-RTT
// packet arrives first).
type Demux struct {
	handlers map[uint64]Sink

	// Listen is consulted for packets whose flow has no handler. If it
	// returns a non-nil Sink, the sink is registered for the flow and
	// receives the packet; otherwise the packet is freed.
	Listen func(p *Packet) Sink

	// Unclaimed counts packets freed because no handler matched.
	Unclaimed int64
}

// NewDemux returns an empty demultiplexer.
func NewDemux() *Demux {
	d := &Demux{}
	d.Init()
	return d
}

// Init readies a zero Demux in place, for embedding by value.
func (d *Demux) Init() {
	// Presized for a typical working set of concurrent flows: the map
	// churns constantly under closed-loop workloads, and the hint skips
	// its first few incremental bucket doublings.
	d.handlers = make(map[uint64]Sink, 64)
}

// Register installs a handler for a flow.
func (d *Demux) Register(flow uint64, s Sink) { d.handlers[flow] = s }

// Unregister removes a flow handler.
func (d *Demux) Unregister(flow uint64) { delete(d.handlers, flow) }

// Handler returns the handler registered for a flow, or nil.
func (d *Demux) Handler(flow uint64) Sink { return d.handlers[flow] }

// Receive dispatches by flow id.
func (d *Demux) Receive(p *Packet) {
	if h, ok := d.handlers[p.Flow]; ok {
		h.Receive(p)
		return
	}
	if d.Listen != nil {
		if h := d.Listen(p); h != nil {
			d.handlers[p.Flow] = h
			h.Receive(p)
			return
		}
	}
	d.Unclaimed++
	Free(p)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(p *Packet)

// Receive invokes the function.
func (f SinkFunc) Receive(p *Packet) { f(p) }

// CountingSink counts and frees everything it receives; useful in tests and
// as a traffic sink for unresponsive-flow experiments.
type CountingSink struct {
	Packets   int64
	Bytes     int64
	DataBytes int64 // untrimmed payload bytes (goodput)
	Trimmed   int64
	LastAt    sim.Time

	el *sim.EventList

	// OnPacket, when set, observes each packet before it is freed.
	OnPacket func(p *Packet)
}

// NewCountingSink returns a sink that records arrival statistics.
func NewCountingSink(el *sim.EventList) *CountingSink { return &CountingSink{el: el} }

// Receive counts and frees the packet.
func (c *CountingSink) Receive(p *Packet) {
	c.Packets++
	c.Bytes += int64(p.Size)
	if p.Type == Data && !p.Trimmed() {
		c.DataBytes += int64(p.DataSize)
	}
	if p.Trimmed() {
		c.Trimmed++
	}
	if c.el != nil {
		c.LastAt = c.el.Now()
	}
	if c.OnPacket != nil {
		c.OnPacket(p)
	}
	Free(p)
}
