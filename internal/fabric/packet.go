// Package fabric models the data plane of a datacenter network: packets,
// output-queued store-and-forward switch ports, queue disciplines (drop-tail,
// ECN marking, lossless/PFC), switches and hosts. It is protocol-agnostic;
// transport protocols (internal/core, internal/tcp, ...) and the NDP switch
// service model (internal/core) plug in through the Queue and Sink
// interfaces.
//
// Packets are pooled (GetPacket/Free) so the per-packet hot path performs no
// allocation; this keeps the Go GC out of packet-rate timing, which matters
// when a single run forwards tens of millions of packets.
package fabric

import (
	"fmt"
	"sync"

	"ndp/internal/sim"
)

// PacketType identifies the protocol role of a packet.
type PacketType uint8

// Packet types used across all transports in this repository.
const (
	// Data is a payload-bearing packet (possibly trimmed to a header).
	Data PacketType = iota
	// Ack acknowledges received data (NDP per-packet ACK, TCP cumulative ACK).
	Ack
	// Nack reports a trimmed header's arrival to the sender (NDP).
	Nack
	// Pull is an NDP receiver-driven credit packet.
	Pull
	// CNP is a DCQCN congestion notification packet.
	CNP
)

// String returns a short human-readable name for tracing.
func (t PacketType) String() string {
	switch t {
	case Data:
		return "DATA"
	case Ack:
		return "ACK"
	case Nack:
		return "NACK"
	case Pull:
		return "PULL"
	case CNP:
		return "CNP"
	}
	return fmt.Sprintf("PacketType(%d)", uint8(t))
}

// Packet flags.
const (
	// FlagSYN marks first-window packets (NDP puts it on every packet of
	// the first RTT so connection state can be established by whichever
	// arrives first; TCP uses it conventionally).
	FlagSYN uint16 = 1 << iota
	// FlagFIN marks the sender's last packet ("when the sender runs out of
	// data to send, it marks the last packet").
	FlagFIN
	// FlagTrimmed marks a data packet whose payload was cut by a switch.
	FlagTrimmed
	// FlagBounced marks a header returned to its sender by a switch whose
	// header queue overflowed (NDP return-to-sender, §3.2.4).
	FlagBounced
	// FlagCE is the ECN congestion-experienced mark set by a queue.
	FlagCE
	// FlagECNEcho echoes FlagCE back to the sender in an ACK.
	FlagECNEcho
	// FlagPull on a Nack asks the sender to retransmit immediately
	// (the NACK "has the PULL bit set" in Figure 3).
	FlagPull
	// FlagRTX marks a retransmission, for accounting only.
	FlagRTX
)

// HeaderSize is the on-wire size in bytes of a trimmed header or a control
// packet (ACK/NACK/PULL/CNP), matching the paper's 64-byte accounting.
const HeaderSize = 64

// Packet is the single packet representation shared by every protocol in the
// repository. Fields are a union of what the protocols need; keeping one
// pooled struct avoids per-protocol allocation in the forwarding path.
//
// Path, when non-nil, is a source route: Path[i] is the egress port index to
// take at the i-th switch. It references a slice owned by the topology and
// must never be mutated through a Packet.
type Packet struct {
	Type  PacketType
	Flags uint16

	Flow uint64 // connection identifier, globally unique
	Src  int32  // source host id
	Dst  int32  // destination host id

	Seq      int64 // data sequence (packets for NDP, bytes for TCP-family)
	AckNo    int64 // cumulative ACK (TCP-family) or acked seq (NDP)
	PullSeq  int64 // NDP pull sequence number
	Size     int32 // current wire size in bytes (shrinks when trimmed)
	DataSize int32 // payload bytes this packet delivers when untrimmed

	Path   []int16 // source route (shared, read-only); nil = destination-routed
	Hop    int16   // next index into Path
	PathID int16   // sender's index for the path scoreboard

	Sent     sim.Time // when the packet (or its first incarnation) left the sender
	TSEcho   sim.Time // timestamp echoed for RTT measurement
	QueueOcc int32    // queue occupancy snapshot (DCQCN-style telemetry)

	// owner is the Arena the packet was allocated from (nil for packets
	// from the legacy global pool). Free routes through it, so the ~25
	// call sites that release packets never need to know which shard
	// allocated one. freed guards against double frees.
	owner *Arena
	freed bool
}

// IsControl reports whether the packet gets control-plane priority at NDP
// switches and host NICs: trimmed headers, ACKs, NACKs, PULLs and CNPs.
func (p *Packet) IsControl() bool {
	return p.Type != Data || p.Flags&FlagTrimmed != 0
}

// Trim cuts the payload, leaving a HeaderSize-byte header on the wire.
func (p *Packet) Trim() {
	p.Flags |= FlagTrimmed
	p.Size = HeaderSize
}

// Trimmed reports whether the payload has been cut.
func (p *Packet) Trimmed() bool { return p.Flags&FlagTrimmed != 0 }

// Bounce converts a header into a return-to-sender packet: source and
// destination swap and the packet loses its source route so that switches
// fall back to destination-based routing toward the original sender.
func (p *Packet) Bounce() {
	p.Flags |= FlagBounced
	p.Src, p.Dst = p.Dst, p.Src
	p.Path = nil
	p.Hop = 0
}

// String formats the packet for traces and test failures.
//
//simlint:allow hotalloc — diagnostic-only formatting: reached from the double-free panic path and test failures, never on the steady-state path
func (p *Packet) String() string {
	trim := ""
	if p.Trimmed() {
		trim = "/trim"
	}
	if p.Flags&FlagBounced != 0 {
		trim += "/bounce"
	}
	return fmt.Sprintf("%v%s flow=%d %d->%d seq=%d size=%d", p.Type, trim, p.Flow, p.Src, p.Dst, p.Seq, p.Size)
}

var packetPool = sync.Pool{New: func() any { return new(Packet) }}

// GetPacket returns a zeroed packet from the pool.
func GetPacket() *Packet {
	p := packetPool.Get().(*Packet)
	*p = Packet{}
	return p
}

// Free returns a packet to its owning arena (or, for packets from the
// legacy global pool, to that pool). The caller must not retain references.
func Free(p *Packet) {
	if p == nil {
		return
	}
	if p.owner != nil {
		p.owner.put(p)
		return
	}
	p.Path = nil
	packetPool.Put(p)
}

// NewControl builds a control packet (ACK/NACK/PULL/CNP) for the given flow
// from src to dst, sized at HeaderSize.
func NewControl(t PacketType, flow uint64, src, dst int32) *Packet {
	p := GetPacket()
	p.Type = t
	p.Flow = flow
	p.Src = src
	p.Dst = dst
	p.Size = HeaderSize
	return p
}

// NewData builds a payload packet of the given total wire size.
func NewData(flow uint64, src, dst int32, seq int64, size int32) *Packet {
	p := GetPacket()
	p.Type = Data
	p.Flow = flow
	p.Src = src
	p.Dst = dst
	p.Seq = seq
	p.Size = size
	p.DataSize = size
	return p
}
