package fabric

import (
	"testing"

	"ndp/internal/sim"
)

// Two senders converge on one egress through a lossless switch; nothing may
// be dropped, and the slower admission must pause the uplinks.
func TestLosslessNoDropsAndPause(t *testing.T) {
	el := sim.NewEventList()
	sw := NewSwitch(el, 0, "s0")
	sw.Route = func(s *Switch, p *Packet) int { return 0 } // everything to port 0

	sink := NewCountingSink(el)
	const mtu = 1500
	egress := NewPort(el, "sw->dst", NewFIFOQueue(0), 10e9, 0)
	egress.Connect(sink)
	sw.AddPort(egress)
	sw.EnableLossless(4*mtu, 2*mtu, mtu)

	// Two source ports feeding the switch at line rate.
	srcA := NewPort(el, "a->sw", NewFIFOQueue(0), 10e9, 500*sim.Nanosecond)
	srcB := NewPort(el, "b->sw", NewFIFOQueue(0), 10e9, 500*sim.Nanosecond)
	sw.NewIngress(srcA)
	sw.NewIngress(srcB)

	const n = 200
	for i := 0; i < n; i++ {
		srcA.Enqueue(NewData(1, 0, 9, int64(i), mtu))
		srcB.Enqueue(NewData(2, 1, 9, int64(i), mtu))
	}
	el.Run()

	if sink.Packets != 2*n {
		t.Fatalf("delivered %d packets, want %d (lossless must not drop)", sink.Packets, 2*n)
	}
	if egress.Q.Stats().Drops != 0 {
		t.Errorf("egress dropped %d packets", egress.Q.Stats().Drops)
	}
	if srcA.PauseCount == 0 && srcB.PauseCount == 0 {
		t.Error("2:1 overload should have generated PFC pauses")
	}
}

// A paused ingress must also hold packets destined for an uncongested
// egress: head-of-line blocking is the PFC collateral damage the paper
// describes.
func TestLosslessHeadOfLineBlocking(t *testing.T) {
	el := sim.NewEventList()
	sw := NewSwitch(el, 0, "s0")
	// Route by destination: host 0 -> port 0, host 1 -> port 1.
	sw.Route = func(s *Switch, p *Packet) int { return int(p.Dst) }

	const mtu = 1500
	congested := NewCountingSink(el)
	clear := NewCountingSink(el)
	// Congested egress is slow (1Gb/s), the other fast.
	p0 := NewPort(el, "sw->0", NewFIFOQueue(0), 1e9, 0)
	p0.Connect(congested)
	p1 := NewPort(el, "sw->1", NewFIFOQueue(0), 10e9, 0)
	p1.Connect(clear)
	sw.AddPort(p0)
	sw.AddPort(p1)
	sw.EnableLossless(2*mtu, 2*mtu, mtu)

	src := NewPort(el, "x->sw", NewFIFOQueue(0), 10e9, 500*sim.Nanosecond)
	ingress := sw.NewIngress(src)

	// Burst to the congested egress, then one packet for the clear egress.
	for i := 0; i < 20; i++ {
		src.Enqueue(NewData(1, 0, 0, int64(i), mtu))
	}
	victim := NewData(2, 0, 1, 0, mtu)
	src.Enqueue(victim)

	// If there were no HOL blocking, the victim would arrive after ~21
	// serializations at 10G plus its own: well under 40us. With blocking it
	// waits for the 1G egress to drain most of the burst.
	el.Run()
	if clear.Packets != 1 {
		t.Fatalf("victim not delivered")
	}
	if clear.LastAt < 100*sim.Microsecond {
		t.Errorf("victim arrived at %v; expected HOL blocking to delay it past 100us", clear.LastAt)
	}
	if ingress.PauseEvents == 0 {
		t.Error("expected pause events at the ingress")
	}
	if congested.Packets != 20 {
		t.Errorf("congested sink got %d, want 20", congested.Packets)
	}
}

// A port added after EnableLossless must still drain held ingress packets
// when its queue empties: the OnDequeue hook has to be installed at port
// attach, not only on the ports present when lossless mode was enabled.
// Without it, packets held for the late port strand forever — a silent
// deadlock only the arena leak accounting would catch.
func TestLosslessEnableThenAddPort(t *testing.T) {
	el := sim.NewEventList()
	sw := NewSwitch(el, 0, "s0")
	sw.Route = func(s *Switch, p *Packet) int { return 0 }

	const mtu = 1500
	// Lossless mode first, egress port second: the enable-then-add order
	// under test.
	sw.EnableLossless(2*mtu, 2*mtu, mtu)
	sink := NewCountingSink(el)
	egress := NewPort(el, "sw->dst", NewFIFOQueue(0), 1e9, 0)
	egress.Connect(sink)
	sw.AddPort(egress)

	src := NewPort(el, "src->sw", NewFIFOQueue(0), 10e9, 500*sim.Nanosecond)
	sw.NewIngress(src)

	// 10G in, 1G out: the tiny egress budget fills and the overflow is
	// held at the ingress; only the dequeue hook can release it.
	const n = 50
	for i := 0; i < n; i++ {
		src.Enqueue(NewData(1, 0, 0, int64(i), mtu))
	}
	el.Run()

	if sink.Packets != n {
		t.Fatalf("delivered %d packets, want %d (held packets stranded: no OnDequeue hook on late-added port)", sink.Packets, n)
	}
}

// Pause must propagate transitively: a long chain with a slow sink must not
// drop anything anywhere even with tiny egress budgets.
func TestLosslessCascade(t *testing.T) {
	el := sim.NewEventList()
	const mtu = 1500
	sink := NewCountingSink(el)

	// src -> sw1 -> sw2 -> sink(1G)
	sw1 := NewSwitch(el, 1, "sw1")
	sw2 := NewSwitch(el, 2, "sw2")
	sw1.Route = func(s *Switch, p *Packet) int { return 0 }
	sw2.Route = func(s *Switch, p *Packet) int { return 0 }

	sw2out := NewPort(el, "sw2->dst", NewFIFOQueue(0), 1e9, 0)
	sw2out.Connect(sink)
	sw2.AddPort(sw2out)
	sw2.EnableLossless(2*mtu, 2*mtu, mtu)

	sw1out := NewPort(el, "sw1->sw2", NewFIFOQueue(0), 10e9, 500*sim.Nanosecond)
	sw1.AddPort(sw1out)
	sw1.EnableLossless(2*mtu, 2*mtu, mtu)
	sw2.NewIngress(sw1out)

	src := NewPort(el, "src->sw1", NewFIFOQueue(0), 10e9, 500*sim.Nanosecond)
	sw1.NewIngress(src)

	const n = 100
	for i := 0; i < n; i++ {
		src.Enqueue(NewData(1, 0, 0, int64(i), mtu))
	}
	el.Run()

	if sink.Packets != n {
		t.Fatalf("delivered %d, want %d", sink.Packets, n)
	}
	if sw1out.PauseCount == 0 {
		t.Error("pause should have cascaded to sw1's uplink")
	}
	if src.PauseCount == 0 {
		t.Error("pause should have cascaded to the source")
	}
}
