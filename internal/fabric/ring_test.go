package fabric

import "testing"

// ringModel is the obviously-correct reference for the packet ring: a
// plain slice deque.
type ringModel struct{ s []*Packet }

func (m *ringModel) push(p *Packet)     { m.s = append(m.s, p) }
func (m *ringModel) pushHead(p *Packet) { m.s = append([]*Packet{p}, m.s...) }
func (m *ringModel) pop() *Packet {
	if len(m.s) == 0 {
		return nil
	}
	p := m.s[0]
	m.s = m.s[1:]
	return p
}
func (m *ringModel) popTail() *Packet {
	if len(m.s) == 0 {
		return nil
	}
	p := m.s[len(m.s)-1]
	m.s = m.s[:len(m.s)-1]
	return p
}

// TestRingWraparoundAndResize is the regression test for the ring's
// power-of-two masking: interleaved push/pop/popTail/pushHead sequences
// drive head and tail through many wraparounds and across several grow()
// boundaries, checked against the slice model at every step. A capacity
// normalization bug or a mask applied to a non-power-of-two buffer shows
// up as a reordered or lost packet.
func TestRingWraparoundAndResize(t *testing.T) {
	mk := func(i int) *Packet { return &Packet{Seq: int64(i)} }
	var r ring
	var m ringModel
	next := 0
	// A fixed op pattern with net growth: pushes outnumber pops so the
	// ring resizes mid-wraparound several times (16 -> 32 -> 64 -> 128).
	ops := []byte("ppppptppphpppptpphpppppptpppp")
	for round := 0; round < 40; round++ {
		for _, op := range ops {
			switch op {
			case 'p':
				p := mk(next)
				next++
				r.push(p)
				m.push(p)
			case 'h':
				p := mk(next)
				next++
				r.pushHead(p)
				m.pushHead(p)
			case 't':
				got, want := r.popTail(), m.popTail()
				if got != want {
					t.Fatalf("popTail: got %v, want %v (len %d)", got, want, r.len())
				}
			}
			if r.len() != len(m.s) {
				t.Fatalf("length diverged: ring %d, model %d", r.len(), len(m.s))
			}
			if got, want := r.peek(), func() *Packet {
				if len(m.s) == 0 {
					return nil
				}
				return m.s[0]
			}(); got != want {
				t.Fatalf("peek diverged: got %v, want %v", got, want)
			}
		}
		// Drain half FIFO so the head chases the tail through the buffer.
		for i := 0; i < len(ops)/2; i++ {
			got, want := r.pop(), m.pop()
			if got != want {
				t.Fatalf("pop: got %v, want %v", got, want)
			}
		}
		if len(r.buf)&(len(r.buf)-1) != 0 {
			t.Fatalf("ring capacity %d is not a power of two", len(r.buf))
		}
	}
	// Full drain must return every packet in order.
	for r.len() > 0 {
		got, want := r.pop(), m.pop()
		if got != want {
			t.Fatalf("drain: got %v, want %v", got, want)
		}
	}
	if r.pop() != nil || r.popTail() != nil || r.peek() != nil {
		t.Fatal("empty ring returned a packet")
	}
}
