package fabric

import (
	"ndp/internal/sim"
)

// CrossBox is a single-writer mailbox for one directed shard pair in a
// sharded simulation: ports (and the command layer) of the source shard
// append entries during a window, and the coordinator drains the box into
// the destination shard's event list at the window boundary. No locking is
// needed: exactly one shard goroutine writes between barriers, and the
// barrier's happens-before edge publishes the entries to the coordinator.
type CrossBox struct {
	entries []CrossEntry
}

// CrossEntry is one boundary crossing: a packet delivery into a Sink, a
// deferred command (Fn non-nil), or a PFC pause/resume transition for an
// upstream port living on the destination shard (PFC non-nil). At and Ord
// carry the exact timestamp and canonical equal-time key the event would
// have had on a single list.
type CrossEntry struct {
	At    sim.Time
	Ord   uint64
	Pkt   *Packet
	Sink  Sink
	Fn    func()
	PFC   *Port
	Pause bool
}

// AddDelivery appends a packet delivery crossing the shard boundary.
func (b *CrossBox) AddDelivery(at sim.Time, ord uint64, pkt *Packet, sink Sink) {
	b.entries = append(b.entries, CrossEntry{At: at, Ord: ord, Pkt: pkt, Sink: sink}) //simlint:allow hotalloc — cross-shard mailbox: amortized doubling, drained in place and reused every lookahead window
}

// AddCommand appends a deferred cross-shard command.
func (b *CrossBox) AddCommand(at sim.Time, ord uint64, fn func()) {
	b.entries = append(b.entries, CrossEntry{At: at, Ord: ord, Fn: fn})
}

// AddPFC appends a PFC pause/resume transition crossing the shard boundary
// toward the upstream transmitter port. The transition applies at exactly
// emission + link delay, the same instant it would on a single list — the
// link delay is at least the pair lookahead because the PFC reverse
// channel is itself registered as a cross link, so the conservative
// window never needs to be narrowed for pause state.
func (b *CrossBox) AddPFC(at sim.Time, ord uint64, upstream *Port, pause bool) {
	b.entries = append(b.entries, CrossEntry{At: at, Ord: ord, PFC: upstream, Pause: pause}) //simlint:allow hotalloc — cross-shard mailbox: amortized doubling, drained in place and reused every lookahead window
}

// Drain moves every pending entry into the destination shard's inbox and
// empties the box. Injection order is irrelevant — the heap orders by
// (At, Ord) — so no sort is needed. An entry timed before the destination
// clock means the emitter violated the conservative lookahead contract
// (delivery at least one lookahead after emission); the event-list clamp
// would silently turn that into shard-layout-dependent timing, so it
// panics instead.
func (b *CrossBox) Drain(dst *Inbox) {
	for i := range b.entries {
		e := b.entries[i]
		b.entries[i] = CrossEntry{}
		if e.At < dst.el.Now() {
			panic("fabric: cross-shard entry timed before the destination clock (lookahead contract violated)")
		}
		if e.Pkt != nil {
			// Ownership transfer: from here on the destination shard's
			// goroutine delivers and frees the packet, so it must free
			// into the destination arena. The barrier is single-threaded,
			// which is what makes the two counter updates safe.
			e.Pkt.transferTo(dst.arena)
		}
		dst.inject(e)
	}
	b.entries = b.entries[:0]
}

// Len reports pending entries (tests and telemetry).
func (b *CrossBox) Len() int { return len(b.entries) }

// ReleasePackets frees any packets still waiting in the box (a run stopped
// mid-traffic before the next barrier) and empties it.
func (b *CrossBox) ReleasePackets() {
	for i := range b.entries {
		Free(b.entries[i].Pkt)
		b.entries[i] = CrossEntry{}
	}
	b.entries = b.entries[:0]
}

// Inbox is one shard's receiving side of the cross-shard exchange: a slot
// arena plus a typed event per injected entry, so packet deliveries cross
// the boundary without allocating a closure each (the command variant
// still carries its one closure, created at emission). Slots recycle as
// entries fire, so steady-state crossings allocate nothing.
type Inbox struct {
	el      *sim.EventList
	arena   *Arena
	entries []CrossEntry
	free    []int32
}

// NewInbox builds the inbox feeding one shard's event list. It attaches the
// shard's packet arena, the destination of every ownership transfer drained
// into this inbox.
func NewInbox(el *sim.EventList) *Inbox { return &Inbox{el: el, arena: AttachArena(el)} }

// inject stores the entry in a slot and schedules its keyed firing.
func (ib *Inbox) inject(e CrossEntry) {
	var slot int32
	if n := len(ib.free); n > 0 {
		slot = ib.free[n-1]
		ib.free = ib.free[:n-1]
		ib.entries[slot] = e
	} else {
		slot = int32(len(ib.entries))
		ib.entries = append(ib.entries, e)
	}
	ib.el.ScheduleKeyed(e.At, e.Ord, ib, uint64(slot))
}

// OnEvent fires one injected entry (sim.Handler).
func (ib *Inbox) OnEvent(arg uint64) {
	e := ib.entries[arg]
	ib.entries[arg] = CrossEntry{}
	ib.free = append(ib.free, int32(arg)) //simlint:allow hotalloc — slot free-list: capacity bounded by peak in-flight cross entries, kept across reuse
	switch {
	case e.Fn != nil:
		e.Fn()
	case e.PFC != nil:
		e.PFC.SetPaused(e.Pause)
	case e.Sink != nil:
		e.Sink.Receive(e.Pkt)
	default:
		Free(e.Pkt)
	}
}

// ReleasePackets frees any injected packet deliveries that have not fired
// yet (a run stopped mid-traffic). Slots are zeroed, not recycled — the
// inbox is being torn down.
func (ib *Inbox) ReleasePackets() {
	for i := range ib.entries {
		if ib.entries[i].Sink != nil || ib.entries[i].Pkt != nil {
			Free(ib.entries[i].Pkt)
		}
		ib.entries[i] = CrossEntry{}
	}
}
