package fabric

import (
	"testing"

	"ndp/internal/sim"
)

func TestPortSerializationTiming(t *testing.T) {
	el := sim.NewEventList()
	sink := NewCountingSink(el)
	var arrivals []sim.Time
	sink.OnPacket = func(p *Packet) { arrivals = append(arrivals, el.Now()) }
	port := NewPort(el, "p", NewFIFOQueue(0), 10e9, 500*sim.Nanosecond)
	port.Connect(sink)

	// Two 9000B packets at 10Gb/s: 7.2us each, 500ns propagation.
	port.Enqueue(NewData(1, 0, 1, 0, 9000))
	port.Enqueue(NewData(1, 0, 1, 1, 9000))
	el.Run()

	want := []sim.Time{7700 * sim.Nanosecond, 14900 * sim.Nanosecond}
	if len(arrivals) != 2 {
		t.Fatalf("delivered %d packets, want 2", len(arrivals))
	}
	for i := range want {
		if arrivals[i] != want[i] {
			t.Errorf("arrival %d = %v, want %v", i, arrivals[i], want[i])
		}
	}
	if port.BytesSent != 18000 || port.PacketsSent != 2 {
		t.Errorf("telemetry: bytes=%d pkts=%d", port.BytesSent, port.PacketsSent)
	}
}

func TestPortPauseResumesAtBoundary(t *testing.T) {
	el := sim.NewEventList()
	sink := NewCountingSink(el)
	port := NewPort(el, "p", NewFIFOQueue(0), 10e9, 0)
	port.Connect(sink)

	port.Enqueue(NewData(1, 0, 1, 0, 9000))
	port.Enqueue(NewData(1, 0, 1, 1, 9000))
	// Pause mid-first-packet: first packet completes, second waits.
	el.At(sim.Microsecond, func() { port.SetPaused(true) })
	el.At(100*sim.Microsecond, func() { port.SetPaused(false) })
	el.Run()

	if sink.Packets != 2 {
		t.Fatalf("delivered %d, want 2", sink.Packets)
	}
	// Second packet starts at 100us, finishes 107.2us.
	if got, want := sink.LastAt, sim.Time(107200)*sim.Nanosecond; got != want {
		t.Errorf("last arrival %v, want %v", got, want)
	}
	if port.PauseCount != 1 {
		t.Errorf("PauseCount = %d, want 1", port.PauseCount)
	}
}

func TestPortUtilization(t *testing.T) {
	el := sim.NewEventList()
	sink := NewCountingSink(el)
	port := NewPort(el, "p", NewFIFOQueue(0), 10e9, 0)
	port.Connect(sink)
	for i := 0; i < 10; i++ {
		port.Enqueue(NewData(1, 0, 1, int64(i), 9000))
	}
	// Also a control packet, which should not count toward data utilization.
	port.Enqueue(NewControl(Ack, 1, 1, 0))
	el.Run()
	util := port.Utilization(el.Now())
	if util < 0.98 || util > 1.0 {
		t.Errorf("utilization = %v, want ~1.0 (back-to-back line rate)", util)
	}
}

func TestDemuxDispatchAndListen(t *testing.T) {
	d := NewDemux()
	var got []uint64
	d.Register(1, SinkFunc(func(p *Packet) { got = append(got, p.Flow); Free(p) }))
	listened := 0
	d.Listen = func(p *Packet) Sink {
		if p.Flags&FlagSYN == 0 {
			return nil // reject non-SYN unknown packets
		}
		listened++
		return SinkFunc(func(p *Packet) { got = append(got, 100+p.Flow); Free(p) })
	}

	p1 := NewData(1, 0, 1, 0, 100)
	d.Receive(p1)

	syn := NewData(2, 0, 1, 0, 100)
	syn.Flags |= FlagSYN
	d.Receive(syn)
	// Second packet for flow 2 must hit the now-registered handler without
	// invoking Listen again.
	d.Receive(NewData(2, 0, 1, 1, 100))

	// Unknown, non-SYN: freed and counted.
	d.Receive(NewData(3, 0, 1, 0, 100))

	if len(got) != 3 || got[0] != 1 || got[1] != 102 || got[2] != 102 {
		t.Errorf("dispatch order = %v", got)
	}
	if listened != 1 {
		t.Errorf("Listen invoked %d times, want 1", listened)
	}
	if d.Unclaimed != 1 {
		t.Errorf("Unclaimed = %d, want 1", d.Unclaimed)
	}
}

// Build a 3-node chain host0 -> switch -> host1 and verify end-to-end
// forwarding with a source route.
func TestSwitchSourceRouting(t *testing.T) {
	el := sim.NewEventList()
	sw := NewSwitch(el, 0, "s0")
	sw.Route = func(s *Switch, p *Packet) int {
		if p.Path == nil {
			return -1
		}
		out := int(p.Path[p.Hop])
		p.Hop++
		return out
	}

	h0 := NewHost(el, 0, "h0")
	h1 := NewHost(el, 1, "h1")
	sink := NewCountingSink(el)
	h1.Stack = sink

	// h0 NIC -> switch; switch port 0 -> h1, port 1 -> h0 (unused).
	h0.NIC = NewPort(el, "h0->sw", NewFIFOQueue(0), 10e9, 500*sim.Nanosecond)
	h0.NIC.Connect(sw)
	toH1 := NewPort(el, "sw->h1", NewFIFOQueue(8*9000), 10e9, 500*sim.Nanosecond)
	toH1.Connect(h1)
	toH0 := NewPort(el, "sw->h0", NewFIFOQueue(8*9000), 10e9, 500*sim.Nanosecond)
	toH0.Connect(h0)
	sw.AddPort(toH1)
	sw.AddPort(toH0)

	p := NewData(1, 0, 1, 0, 9000)
	p.Path = []int16{0}
	h0.Send(p)

	// Packet with no route: dropped at switch.
	bad := NewData(2, 0, 1, 0, 9000)
	h0.Send(bad)

	el.Run()
	if sink.Packets != 1 || sink.DataBytes != 9000 {
		t.Fatalf("delivered %d packets / %d bytes, want 1 / 9000", sink.Packets, sink.DataBytes)
	}
	if sw.RouteDrops != 1 {
		t.Errorf("RouteDrops = %d, want 1", sw.RouteDrops)
	}
	// Two store-and-forward hops: 2 * (7.2us + 500ns) = 15.4us.
	if want := sim.Time(15400) * sim.Nanosecond; sink.LastAt != want {
		t.Errorf("arrival at %v, want %v", sink.LastAt, want)
	}
}
