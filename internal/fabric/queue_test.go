package fabric

import (
	"testing"
	"testing/quick"
)

func TestRingFIFO(t *testing.T) {
	var r ring
	for i := 0; i < 100; i++ {
		p := GetPacket()
		p.Seq = int64(i)
		r.push(p)
	}
	for i := 0; i < 100; i++ {
		p := r.pop()
		if p == nil || p.Seq != int64(i) {
			t.Fatalf("pop %d returned %v", i, p)
		}
		Free(p)
	}
	if r.pop() != nil {
		t.Fatal("pop on empty ring should return nil")
	}
}

func TestRingTailOps(t *testing.T) {
	var r ring
	for i := 0; i < 5; i++ {
		p := GetPacket()
		p.Seq = int64(i)
		r.push(p)
	}
	if p := r.popTail(); p.Seq != 4 {
		t.Fatalf("popTail = %d, want 4", p.Seq)
	}
	front := GetPacket()
	front.Seq = -1
	r.pushHead(front)
	if p := r.pop(); p.Seq != -1 {
		t.Fatalf("after pushHead, pop = %d, want -1", p.Seq)
	}
	if p := r.peek(); p.Seq != 0 {
		t.Fatalf("peek = %d, want 0", p.Seq)
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order and
// count. ops: true = push, false = pop.
func TestRingProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		var r ring
		next, expect := int64(0), int64(0)
		for _, push := range ops {
			if push {
				p := GetPacket()
				p.Seq = next
				next++
				r.push(p)
			} else if p := r.pop(); p != nil {
				if p.Seq != expect {
					return false
				}
				expect++
				Free(p)
			}
		}
		return r.len() == int(next-expect)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFIFOQueueDropTail(t *testing.T) {
	q := NewFIFOQueue(3000)
	for i := 0; i < 4; i++ {
		p := NewData(1, 0, 1, int64(i), 1000)
		q.Enqueue(p)
	}
	if q.Packets() != 3 {
		t.Fatalf("queued %d packets, want 3 (drop-tail at 3000B)", q.Packets())
	}
	if q.Stats().Drops != 1 {
		t.Errorf("drops = %d, want 1", q.Stats().Drops)
	}
	if q.Bytes() != 3000 {
		t.Errorf("bytes = %d, want 3000", q.Bytes())
	}
	for want := int64(0); want < 3; want++ {
		p := q.Dequeue()
		if p.Seq != want {
			t.Fatalf("dequeue order broken: got %d want %d", p.Seq, want)
		}
		Free(p)
	}
	if !q.Empty() {
		t.Error("queue should be empty")
	}
}

func TestFIFOQueueUnbounded(t *testing.T) {
	q := NewFIFOQueue(0)
	for i := 0; i < 1000; i++ {
		q.Enqueue(NewData(1, 0, 1, int64(i), 9000))
	}
	if q.Stats().Drops != 0 {
		t.Errorf("unbounded queue dropped %d", q.Stats().Drops)
	}
	if q.Packets() != 1000 {
		t.Errorf("queued %d, want 1000", q.Packets())
	}
}

func TestECNQueueMarksAboveThreshold(t *testing.T) {
	// Threshold 2 packets worth of bytes: third and later arrivals marked.
	q := NewECNQueue(100*1500, 2*1500)
	var marked int
	for i := 0; i < 5; i++ {
		q.Enqueue(NewData(1, 0, 1, int64(i), 1500))
	}
	for !q.Empty() {
		p := q.Dequeue()
		if p.Flags&FlagCE != 0 {
			marked++
		}
		Free(p)
	}
	if marked != 3 {
		t.Errorf("marked %d packets, want 3 (arrivals seeing >=2 queued)", marked)
	}
	if q.Stats().Marks != 3 {
		t.Errorf("Marks stat = %d, want 3", q.Stats().Marks)
	}
}

func TestCtrlPrioQueueOrdering(t *testing.T) {
	q := NewCtrlPrioQueue()
	d1 := NewData(1, 0, 1, 0, 9000)
	d2 := NewData(1, 0, 1, 1, 9000)
	a := NewControl(Ack, 1, 1, 0)
	q.Enqueue(d1)
	q.Enqueue(d2)
	q.Enqueue(a)
	if p := q.Dequeue(); p.Type != Ack {
		t.Fatalf("first dequeue = %v, want control packet", p.Type)
	}
	if p := q.Dequeue(); p.Seq != 0 {
		t.Fatalf("data order broken")
	}
	if p := q.Dequeue(); p.Seq != 1 {
		t.Fatalf("data order broken")
	}
	if !q.Empty() {
		t.Error("should be empty")
	}
}

func TestCtrlPrioTrimmedIsControl(t *testing.T) {
	q := NewCtrlPrioQueue()
	d := NewData(1, 0, 1, 0, 9000)
	h := NewData(1, 0, 1, 1, 9000)
	h.Trim()
	q.Enqueue(d)
	q.Enqueue(h)
	if p := q.Dequeue(); !p.Trimmed() {
		t.Fatal("trimmed header should dequeue before full data packet")
	}
}

func TestPacketTrimAndBounce(t *testing.T) {
	p := NewData(7, 3, 9, 5, 9000)
	if p.IsControl() {
		t.Error("full data packet should not be control")
	}
	p.Trim()
	if p.Size != HeaderSize || !p.Trimmed() || !p.IsControl() {
		t.Errorf("after Trim: size=%d trimmed=%v", p.Size, p.Trimmed())
	}
	if p.DataSize != 9000 {
		t.Errorf("DataSize must survive trimming, got %d", p.DataSize)
	}
	p.Path = []int16{1, 2, 3}
	p.Hop = 2
	p.Bounce()
	if p.Src != 9 || p.Dst != 3 {
		t.Errorf("bounce should swap src/dst: %d->%d", p.Src, p.Dst)
	}
	if p.Path != nil || p.Hop != 0 {
		t.Error("bounce should clear the source route")
	}
	Free(p)
}

func TestPacketPoolReuseIsZeroed(t *testing.T) {
	p := GetPacket()
	p.Flow = 99
	p.Flags = FlagSYN | FlagCE
	p.Seq = 123
	Free(p)
	q := GetPacket()
	if q.Flow != 0 || q.Flags != 0 || q.Seq != 0 {
		t.Errorf("pooled packet not zeroed: %+v", q)
	}
	Free(q)
}

func TestQueueStatsHighWatermark(t *testing.T) {
	q := NewFIFOQueue(0)
	for i := 0; i < 4; i++ {
		q.Enqueue(NewData(1, 0, 1, 0, 1500))
	}
	Free(q.Dequeue())
	Free(q.Dequeue())
	q.Enqueue(NewData(1, 0, 1, 0, 1500))
	if q.Stats().MaxBytes != 6000 {
		t.Errorf("MaxBytes = %d, want 6000", q.Stats().MaxBytes)
	}
}
