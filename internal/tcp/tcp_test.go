package tcp

import (
	"testing"
	"testing/quick"

	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/topo"
)

// tcpNet builds a FatTree with drop-tail (or ECN) queues and a demux on
// every host.
func tcpNet(k int, queueBytes, markBytes int) (*topo.FatTree, []*fabric.Demux) {
	cfg := topo.Config{Seed: 7}
	if markBytes > 0 {
		cfg.SwitchQueue = func(string) fabric.Queue { return fabric.NewECNQueue(queueBytes, markBytes) }
	} else {
		cfg.SwitchQueue = func(string) fabric.Queue { return fabric.NewFIFOQueue(queueBytes) }
	}
	net := topo.NewFatTree(k, cfg)
	demux := make([]*fabric.Demux, net.NumHosts())
	for i, h := range net.Hosts {
		demux[i] = fabric.NewDemux()
		h.Stack = demux[i]
	}
	return net, demux
}

// startFlow wires one TCP flow between two hosts over fixed forward/reverse
// paths and starts it.
func startFlow(net *topo.FatTree, dm []*fabric.Demux, src, dst int32, flow uint64, size int64, cfg Config) (*Sender, *Receiver) {
	fwd := net.Paths(src, dst)[0]
	rev := net.Paths(dst, src)[0]
	snd := NewSender(net.Hosts[src], dst, flow, fwd, NewFixedSource(size, cfg.withDefaults().MSS), cfg)
	rcv := NewReceiver(net.Hosts[dst], src, flow, rev)
	dm[src].Register(flow, snd)
	dm[dst].Register(flow, rcv)
	snd.Start()
	return snd, rcv
}

func TestTCPSingleTransfer(t *testing.T) {
	net, dm := tcpNet(4, 200*9000, 0)
	cfg := DefaultConfig()
	snd, rcv := startFlow(net, dm, 0, 15, 1, 900_000, cfg)
	net.EL.RunUntil(100 * sim.Millisecond)
	if !snd.Complete() || !rcv.Complete() {
		t.Fatalf("transfer incomplete: snd=%v rcv=%v", snd.Complete(), rcv.Complete())
	}
	if rcv.Bytes != 900_000 {
		t.Errorf("received %d bytes, want 900000", rcv.Bytes)
	}
	if snd.Timeouts != 0 {
		t.Errorf("unexpected timeouts on an idle network: %d", snd.Timeouts)
	}
}

func TestTCPHandshakeCostsOneRTT(t *testing.T) {
	// With handshake, first data arrives ~1 RTT later than without.
	first := func(handshake bool) sim.Time {
		net, dm := tcpNet(4, 200*9000, 0)
		cfg := DefaultConfig()
		cfg.Handshake = handshake
		_, rcv := startFlow(net, dm, 0, 15, 1, 9000, cfg)
		net.EL.RunUntil(10 * sim.Millisecond)
		return rcv.FirstArrival
	}
	with := first(true)
	without := first(false)
	if with <= without {
		t.Fatalf("handshake arrival %v not later than TFO %v", with, without)
	}
	// SYN + SYN-ACK are 64B control packets: roughly 2x 6-hop control
	// latency ~ 6-8us extra.
	if with-without > 20*sim.Microsecond {
		t.Errorf("handshake penalty %v implausibly large", with-without)
	}
}

func TestTCPFastRetransmit(t *testing.T) {
	// Two senders bursting into one downlink overflow the 8-packet queue;
	// fast retransmit must recover without waiting for the 200ms RTO.
	net, dm := tcpNet(4, 8*9000, 0)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 30 // combined burst overflows the 8-packet queue
	s1, r1 := startFlow(net, dm, 1, 0, 1, 900_000, cfg)
	s2, r2 := startFlow(net, dm, 2, 0, 2, 900_000, cfg)
	net.EL.RunUntil(2 * sim.Second)
	if !r1.Complete() || !r2.Complete() {
		t.Fatal("transfers incomplete")
	}
	if s1.Rtx+s2.Rtx == 0 {
		t.Error("expected retransmissions with 60 packets bursting into an 8-packet queue")
	}
	// At least one flow must have recovered via fast retransmit (i.e.
	// finished before the 200ms MinRTO could fire); the other may be
	// RTO-bound — exactly the tail-loss pathology §2.3 describes.
	first := r1.CompletedAt
	if r2.CompletedAt < first {
		first = r2.CompletedAt
	}
	if first >= cfg.MinRTO {
		t.Errorf("fastest completion %v not before MinRTO %v: fast retransmit failed", first, cfg.MinRTO)
	}
}

func TestTCPRTORecoversTailLoss(t *testing.T) {
	// Lose the tail of a transfer: only the RTO can recover it.
	net, dm := tcpNet(4, 2*9000, 0) // 2-packet queues drop aggressively
	cfg := DefaultConfig()
	cfg.MinRTO = 2 * sim.Millisecond
	cfg.InitialCwnd = 20
	snd, rcv := startFlow(net, dm, 0, 15, 1, 180_000, cfg)
	net.EL.RunUntil(2 * sim.Second)
	if !rcv.Complete() {
		t.Fatalf("transfer incomplete; timeouts=%d rtx=%d", snd.Timeouts, snd.Rtx)
	}
}

func TestTCPCwndGrowth(t *testing.T) {
	net, dm := tcpNet(4, 200*9000, 0)
	cfg := DefaultConfig()
	cfg.InitialCwnd = 2
	snd, _ := startFlow(net, dm, 0, 15, 1, 4_500_000, cfg)
	net.EL.RunUntil(2 * sim.Millisecond)
	if snd.Cwnd() <= 2 {
		t.Errorf("cwnd did not grow from 2: %v", snd.Cwnd())
	}
	if snd.SRTT() == 0 {
		t.Error("no RTT samples taken")
	}
}

func TestDCTCPKeepsQueueShort(t *testing.T) {
	// Two DCTCP flows share one downlink with ECN marking at 3 packets.
	// DCTCP must hold the queue near the threshold: far below the 200pkt
	// plain-TCP operating point, with no drops.
	net, dm := tcpNet(4, 200*9000, 3*9000)
	cfg := DefaultConfig()
	cfg.DCTCP = true
	cfg.MinRTO = 10 * sim.Millisecond
	s1, _ := startFlow(net, dm, 1, 0, 1, 20_000_000, cfg)
	s2, _ := startFlow(net, dm, 2, 0, 2, 20_000_000, cfg)
	net.EL.RunUntil(20 * sim.Millisecond)
	if s1.Alpha() == 0 && s2.Alpha() == 0 {
		t.Error("DCTCP alpha never moved; marking not reaching senders")
	}
	// The ToR->host0 queue high watermark should be modest (DCTCP target
	// is K plus a small overshoot, not the full buffer).
	maxQ := net.TorDown[0][0].Q.Stats().MaxBytes
	if maxQ > 40*9000 {
		t.Errorf("queue high watermark %d bytes; DCTCP should keep it near 3-10 packets", maxQ)
	}
	drops := net.CollectStats().Drops
	if drops != 0 {
		t.Errorf("DCTCP with 200-packet buffers dropped %d packets", drops)
	}
	// Both flows should make comparable progress (rough fairness).
	b1, b2 := s1.AckedBytes, s2.AckedBytes
	if b1 == 0 || b2 == 0 {
		t.Fatalf("throughput: %d / %d", b1, b2)
	}
	ratio := float64(b1) / float64(b2)
	if ratio < 0.5 || ratio > 2.0 {
		t.Errorf("unfair DCTCP split: %d vs %d", b1, b2)
	}
}

func TestTCPNoHandshakeDupAckInflation(t *testing.T) {
	// Regression guard: dupacks during recovery must inflate, then cwnd
	// deflates to ssthresh on exit. We just assert completion correctness
	// under random drop pressure at several queue sizes.
	for _, qpkts := range []int{2, 4, 8} {
		net, dm := tcpNet(4, qpkts*9000, 0)
		cfg := DefaultConfig()
		cfg.MinRTO = 2 * sim.Millisecond
		cfg.InitialCwnd = 16
		_, rcv := startFlow(net, dm, 0, 14, 1, 450_000, cfg)
		net.EL.RunUntil(time2s())
		if !rcv.Complete() || rcv.Bytes != 450_000 {
			t.Errorf("q=%d pkts: incomplete or wrong bytes (%d)", qpkts, rcv.Bytes)
		}
	}
}

func time2s() sim.Time { return 2 * sim.Second }

// Property: any transfer size completes exactly, under loss pressure.
func TestTCPTransferSizeProperty(t *testing.T) {
	prop := func(raw uint32) bool {
		size := int64(raw%300_000) + 1
		net, dm := tcpNet(4, 8*9000, 0)
		cfg := DefaultConfig()
		cfg.MinRTO = 2 * sim.Millisecond
		_, rcv := startFlow(net, dm, 0, 15, 1, size, cfg)
		net.EL.RunUntil(2 * sim.Second)
		return rcv.Complete() && rcv.Bytes == size
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestFixedSource(t *testing.T) {
	src := NewFixedSource(25_000, 9000)
	var sizes []int
	for {
		n := src.Claim()
		if n == 0 {
			break
		}
		sizes = append(sizes, n)
	}
	if len(sizes) != 3 || sizes[0] != 9000 || sizes[1] != 9000 || sizes[2] != 7000 {
		t.Errorf("claims = %v, want [9000 9000 7000]", sizes)
	}
	if !src.Exhausted() {
		t.Error("source should be exhausted")
	}
}
