// Package tcp implements a packet-granularity TCP NewReno suitable for
// datacenter simulation: slow start, congestion avoidance, fast
// retransmit/recovery, RTO with exponential backoff and Karn's rule, an
// optional three-way handshake (disable it to model TCP Fast Open), and the
// DCTCP ECN extension (fractional window reduction driven by the marked
// fraction, Alizadeh et al.). MPTCP subflows (internal/mptcp) are built from
// the same Sender with a shared data source and a pluggable increase rule.
//
// Sequence numbers count MSS-sized packets rather than bytes — the standard
// simplification of packet-level simulators (htsim does the same) that
// preserves window dynamics exactly while keeping state small.
package tcp

import (
	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// Config parameterizes a TCP flow.
type Config struct {
	// MSS is the segment (and wire packet) size in bytes.
	MSS int
	// InitialCwnd in packets (RFC 6928-style 10 by default).
	InitialCwnd float64
	// MaxCwnd caps the window (receive window stand-in).
	MaxCwnd float64
	// MinRTO is the lower bound on the retransmission timeout. Linux
	// defaults to 200ms; datacenter-tuned stacks use far less.
	MinRTO sim.Time
	// Handshake, when true, runs SYN/SYN-ACK before data (one extra RTT).
	// False models TCP Fast Open / an already-open connection.
	Handshake bool
	// DCTCP enables ECN-fraction congestion control with gain G.
	DCTCP bool
	// G is the DCTCP alpha EWMA gain (default 1/16).
	G float64
}

// DefaultConfig returns a plain-TCP configuration with a Linux-like MinRTO.
func DefaultConfig() Config {
	return Config{
		MSS:         9000,
		InitialCwnd: 10,
		MaxCwnd:     1000,
		MinRTO:      200 * sim.Millisecond,
		Handshake:   true,
		G:           1.0 / 16,
	}
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 9000
	}
	if c.InitialCwnd == 0 {
		c.InitialCwnd = 10
	}
	if c.MaxCwnd == 0 {
		c.MaxCwnd = 1000
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * sim.Millisecond
	}
	if c.G == 0 {
		c.G = 1.0 / 16
	}
	return c
}

// DataSource hands out stream data one MSS at a time; shared sources let
// MPTCP subflows pull from one logical stream.
type DataSource interface {
	// Claim reserves one packet of stream data. It returns the payload
	// size in bytes, or 0 when the stream is exhausted.
	Claim() int
	// Exhausted reports whether no data remains to claim.
	Exhausted() bool
}

// FixedSource is a DataSource of a given total byte length.
type FixedSource struct {
	Remaining int64
	mss       int64
}

// NewFixedSource returns a source of size bytes cut into mss-sized claims.
func NewFixedSource(size int64, mss int) *FixedSource {
	return &FixedSource{Remaining: size, mss: int64(mss)}
}

// Claim implements DataSource.
func (f *FixedSource) Claim() int {
	if f.Remaining <= 0 {
		return 0
	}
	n := f.mss
	if f.Remaining < n {
		n = f.Remaining
	}
	f.Remaining -= n
	return int(n)
}

// Exhausted implements DataSource.
func (f *FixedSource) Exhausted() bool { return f.Remaining <= 0 }

// IncreaseFunc lets MPTCP replace the per-ACK congestion-avoidance growth;
// it receives the sender and must return the cwnd increment (in packets)
// for one newly-acked packet during congestion avoidance.
type IncreaseFunc func(s *Sender) float64

// Sender is one TCP connection's sending side.
type Sender struct {
	Flow  uint64
	cfg   Config
	el    *sim.EventList
	host  *fabric.Host
	dst   int32
	path  []int16 // fixed source route (per-flow "ECMP" path)
	arena *fabric.Arena

	// Pool plumbing (nil for unpooled senders): the pool the sender returns
	// to at completion, the demux it is registered on (unregistered when the
	// pool hands the state to a new flow), and whether retirement is
	// automatic or group-managed (MPTCP couples subflows via LIA, so no
	// subflow may be reused while a sibling still reads its window).
	pool       *Pool
	demux      *fabric.Demux
	groupOwned bool

	source DataSource

	// Sequence state, in packets.
	sndNxt, sndUna int64
	sizes          []int32    // payload size per claimed packet
	sentAt         []sim.Time // last transmission time per packet
	rtxed          []bool     // Karn: retransmitted at least once

	cwnd, ssthresh float64
	dupacks        int
	inRecovery     bool
	recover        int64

	srtt, rttvar sim.Time
	rto          sim.Time
	backoff      int
	timer        *sim.Timer

	// DCTCP state.
	alpha               float64
	ackedWin, markedWin int64
	obsEnd              int64
	increase            IncreaseFunc
	handshakeDone       bool
	complete            bool
	OnComplete          func(s *Sender)
	// Telemetry.
	PacketsSent, Rtx, Timeouts int64
	AckedPackets               int64
	AckedBytes                 int64
	CompletedAt                sim.Time
	SynSentAt                  sim.Time
}

// NewSender builds a TCP sender. path is the fixed source route to the
// destination (nil for destination-based ECMP routing); source supplies the
// stream.
//
//simlint:allow hotalloc — pool-miss constructor: runs once per pooled sender (recycle reuses the state and its bound timer), bounded by peak concurrent flows
func NewSender(host *fabric.Host, dst int32, flow uint64, path []int16, source DataSource, cfg Config) *Sender {
	cfg = cfg.withDefaults()
	s := &Sender{
		Flow:     flow,
		cfg:      cfg,
		el:       host.EventList(),
		host:     host,
		dst:      dst,
		path:     path,
		arena:    fabric.AttachArena(host.EventList()),
		source:   source,
		cwnd:     cfg.InitialCwnd,
		ssthresh: cfg.MaxCwnd,
		rto:      cfg.MinRTO,
	}
	s.timer = sim.NewTimer(s.el, s.onTimeout)
	return s
}

// recycle resets a retired sender for a new connection, keeping the
// identity-bound resources: the event list, the timer (its closure points at
// this object), the arena, and the truncated per-packet bookkeeping arrays.
func (s *Sender) recycle(host *fabric.Host, dst int32, flow uint64, path []int16, source DataSource, cfg Config) {
	cfg = cfg.withDefaults()
	el, timer, pool, arena := s.el, s.timer, s.pool, s.arena
	sizes, sentAt, rtxed := s.sizes[:0], s.sentAt[:0], s.rtxed[:0]
	*s = Sender{
		Flow: flow, cfg: cfg, el: el, host: host, dst: dst, path: path,
		arena: arena, pool: pool, source: source,
		cwnd: cfg.InitialCwnd, ssthresh: cfg.MaxCwnd, rto: cfg.MinRTO,
		timer: timer, sizes: sizes, sentAt: sentAt, rtxed: rtxed,
	}
}

// SetIncrease overrides congestion-avoidance growth (MPTCP's LIA).
func (s *Sender) SetIncrease(f IncreaseFunc) { s.increase = f }

// Host returns the host this sender transmits from.
func (s *Sender) Host() *fabric.Host { return s.host }

// Cwnd returns the current congestion window in packets.
func (s *Sender) Cwnd() float64 { return s.cwnd }

// SRTT returns the smoothed RTT estimate (0 before the first sample).
func (s *Sender) SRTT() sim.Time { return s.srtt }

// Start begins the connection: handshake if configured, else data at once.
func (s *Sender) Start() {
	if s.cfg.Handshake {
		s.sendSyn()
		return
	}
	s.handshakeDone = true
	s.trySend()
}

func (s *Sender) sendSyn() {

	s.SynSentAt = s.el.Now()
	p := s.arena.Get()
	p.Type = fabric.Data
	p.Flags = fabric.FlagSYN
	p.Flow = s.Flow
	p.Src = s.host.ID
	p.Dst = s.dst
	p.Seq = -1
	p.Size = fabric.HeaderSize
	p.Sent = s.el.Now()
	p.Path = s.path
	s.host.Send(p)
	s.timer.Reset(s.rto)
}

// trySend transmits new packets while the window allows.
func (s *Sender) trySend() {
	if !s.handshakeDone || s.complete {
		return
	}
	for float64(s.sndNxt-s.sndUna) < s.cwnd {
		if s.sndNxt < int64(len(s.sizes)) {
			s.transmit(s.sndNxt, false)
			s.sndNxt++
			continue
		}
		n := s.source.Claim()
		if n == 0 {
			break
		}
		s.sizes = append(s.sizes, int32(n)) //simlint:allow hotalloc — per-segment bookkeeping (sizes/sentAt grow in lockstep): amortized doubling, arrays kept across recycle
		s.sentAt = append(s.sentAt, 0)
		s.rtxed = append(s.rtxed, false) //simlint:allow hotalloc — grows in lockstep with sizes above: amortized doubling, kept across recycle
		s.transmit(s.sndNxt, false)
		s.sndNxt++
	}
}

func (s *Sender) transmit(seq int64, rtx bool) {
	p := s.arena.NewData(s.Flow, s.host.ID, s.dst, seq, s.sizes[seq])
	p.Path = s.path
	p.Sent = s.el.Now()
	if rtx {
		p.Flags |= fabric.FlagRTX
		s.rtxed[seq] = true
		s.Rtx++
	}
	if s.source.Exhausted() && seq == int64(len(s.sizes))-1 {
		p.Flags |= fabric.FlagFIN
	}
	s.sentAt[seq] = s.el.Now()
	s.PacketsSent++
	if !s.timer.Pending() {
		s.timer.Reset(s.rto)
	}
	s.host.Send(p)
}

// Receive handles ACKs (including the SYN-ACK).
func (s *Sender) Receive(p *fabric.Packet) {
	if p.Type != fabric.Ack {
		fabric.Free(p)
		return
	}
	if p.Flags&fabric.FlagSYN != 0 { // SYN-ACK
		if !s.handshakeDone {
			s.handshakeDone = true
			s.sampleRTT(s.el.Now() - s.SynSentAt)
			s.timer.Stop()
			s.trySend()
		}
		fabric.Free(p)
		return
	}
	s.onAck(p)
	fabric.Free(p)
}

func (s *Sender) sampleRTT(rtt sim.Time) {
	if s.srtt == 0 {
		s.srtt = rtt
		s.rttvar = rtt / 2
	} else {
		d := s.srtt - rtt
		if d < 0 {
			d = -d
		}
		s.rttvar = (3*s.rttvar + d) / 4
		s.srtt = (7*s.srtt + rtt) / 8
	}
	s.rto = s.srtt + 4*s.rttvar
	if s.rto < s.cfg.MinRTO {
		s.rto = s.cfg.MinRTO
	}
}

func (s *Sender) onAck(p *fabric.Packet) {
	ack := p.AckNo
	if s.cfg.DCTCP {
		s.ackedWin++
		if p.Flags&fabric.FlagECNEcho != 0 {
			s.markedWin++
		}
		if ack >= s.obsEnd {
			s.dctcpWindowEnd()
		}
	}
	switch {
	case ack > s.sndUna:
		s.onNewAck(p, ack)
	case ack == s.sndUna && s.sndNxt > s.sndUna:
		s.onDupAck()
	}
	s.trySend()
}

func (s *Sender) onNewAck(p *fabric.Packet, ack int64) {
	newly := ack - s.sndUna
	for seq := s.sndUna; seq < ack && seq < int64(len(s.sizes)); seq++ {
		s.AckedBytes += int64(s.sizes[seq])
	}
	s.AckedPackets += newly
	// Karn: only un-retransmitted segments yield RTT samples.
	if last := ack - 1; last >= 0 && last < int64(len(s.rtxed)) && !s.rtxed[last] && p.TSEcho > 0 {
		s.sampleRTT(s.el.Now() - p.TSEcho)
	}
	s.sndUna = ack
	s.backoff = 0
	if s.inRecovery {
		if ack >= s.recover {
			// Full acknowledgment: everything outstanding at loss time
			// has arrived; deflate and leave recovery.
			s.inRecovery = false
			s.cwnd = s.ssthresh
			s.dupacks = 0
		} else {
			// Partial ACK: next hole is lost too (NewReno).
			s.transmit(s.sndUna, true)
		}
	} else {
		s.dupacks = 0
		for i := int64(0); i < newly; i++ {
			s.growCwnd()
		}
	}
	if s.sndUna >= s.sndNxt {
		s.timer.Stop()
		if s.source.Exhausted() && s.sndUna == int64(len(s.sizes)) && !s.complete {
			s.complete = true
			s.CompletedAt = s.el.Now()
			if s.OnComplete != nil {
				s.OnComplete(s)
			}
			if s.pool != nil && !s.groupOwned {
				s.pool.retireSender(s)
			}
		}
	} else {
		s.timer.Reset(s.rto)
	}
}

func (s *Sender) growCwnd() {
	if s.cwnd >= s.cfg.MaxCwnd {
		return
	}
	if s.cwnd < s.ssthresh {
		s.cwnd++
	} else if s.increase != nil {
		s.cwnd += s.increase(s)
	} else {
		s.cwnd += 1 / s.cwnd
	}
	if s.cwnd > s.cfg.MaxCwnd {
		s.cwnd = s.cfg.MaxCwnd
	}
}

func (s *Sender) onDupAck() {
	s.dupacks++
	if s.inRecovery {
		s.cwnd++ // inflation
		return
	}
	if s.dupacks < 3 {
		// Limited transmit (RFC 3042): send one new segment per early
		// dupack so short flows generate enough dupacks to trigger fast
		// retransmit instead of stalling until the RTO.
		s.limitedTransmit()
		return
	}
	if s.dupacks == 3 {
		s.inRecovery = true
		s.recover = s.sndNxt
		s.ssthresh = s.cwnd / 2
		if s.ssthresh < 2 {
			s.ssthresh = 2
		}
		s.cwnd = s.ssthresh + 3
		s.transmit(s.sndUna, true)
	}
}

// limitedTransmit sends one new segment beyond the window, if data exists.
func (s *Sender) limitedTransmit() {
	if s.sndNxt < int64(len(s.sizes)) {
		s.transmit(s.sndNxt, false)
		s.sndNxt++
		return
	}
	if n := s.source.Claim(); n > 0 {
		s.sizes = append(s.sizes, int32(n)) //simlint:allow hotalloc — per-segment bookkeeping (sizes/sentAt grow in lockstep): amortized doubling, arrays kept across recycle
		s.sentAt = append(s.sentAt, 0)
		s.rtxed = append(s.rtxed, false) //simlint:allow hotalloc — grows in lockstep with sizes above: amortized doubling, kept across recycle
		s.transmit(s.sndNxt, false)
		s.sndNxt++
	}
}

// dctcpWindowEnd closes one observation window: update alpha from the
// marked fraction and apply the proportional reduction if anything was
// marked (DCTCP's once-per-RTT cut).
func (s *Sender) dctcpWindowEnd() {
	if s.ackedWin > 0 {
		f := float64(s.markedWin) / float64(s.ackedWin)
		s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G*f
		if s.markedWin > 0 && !s.inRecovery {
			s.cwnd = s.cwnd * (1 - s.alpha/2)
			if s.cwnd < 1 {
				s.cwnd = 1
			}
			s.ssthresh = s.cwnd
		}
	}
	s.ackedWin, s.markedWin = 0, 0
	s.obsEnd = s.sndNxt
}

// Alpha returns the DCTCP congestion estimate.
func (s *Sender) Alpha() float64 { return s.alpha }

func (s *Sender) onTimeout() {
	if s.complete {
		return
	}
	s.Timeouts++
	if !s.handshakeDone {
		s.backoffRTO()
		s.sendSyn()
		return
	}
	if s.sndUna >= s.sndNxt {
		return
	}
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.dupacks = 0
	s.inRecovery = false
	s.backoffRTO()
	// Go-back-N: everything past the hole is resent in slow start as the
	// window reopens (classic post-RTO behaviour; without this each hole
	// would cost its own RTO).
	s.sndNxt = s.sndUna
	s.transmit(s.sndNxt, true)
	s.sndNxt++
	s.timer.Reset(s.rto)
}

func (s *Sender) backoffRTO() {
	if s.backoff < 6 {
		s.backoff++
	}
	s.rto = s.cfg.MinRTO << uint(s.backoff)
	if base := s.srtt + 4*s.rttvar; base > s.cfg.MinRTO {
		s.rto = base << uint(s.backoff)
	}
}

// Complete reports whether the whole stream has been acked.
func (s *Sender) Complete() bool { return s.complete }

// Receiver is one TCP connection's receiving side: cumulative ACK per data
// packet, per-packet ECN echo, SYN-ACK generation.
type Receiver struct {
	Flow  uint64
	host  *fabric.Host
	peer  int32
	path  []int16 // fixed reverse route for ACKs
	arena *fabric.Arena

	// Pool plumbing (nil for unpooled receivers); see Sender.
	pool  *Pool
	demux *fabric.Demux

	got    []bool
	cumAck int64
	finSeq int64

	Bytes        int64
	complete     bool
	CompletedAt  sim.Time
	FirstArrival sim.Time
	seenAny      bool
	// OnData observes every newly received payload byte count (MPTCP
	// aggregates across subflows); OnComplete fires when the stream is
	// fully received (FIN seen and no holes).
	OnData     func(n int64)
	OnComplete func(r *Receiver)
}

// NewReceiver builds the receiving side; path routes ACKs back.
//
//simlint:allow hotalloc — pool-miss constructor: runs once per pooled receiver (recycle reuses the state), bounded by peak concurrent flows
func NewReceiver(host *fabric.Host, peer int32, flow uint64, path []int16) *Receiver {
	return &Receiver{
		Flow: flow, host: host, peer: peer, path: path, finSeq: -1,
		arena: fabric.AttachArena(host.EventList()),
	}
}

// recycle resets a retired receiver for a new connection, keeping the arena
// and the truncated arrival bitmap's backing array.
func (r *Receiver) recycle(host *fabric.Host, peer int32, flow uint64, path []int16) {
	pool, arena, got := r.pool, r.arena, r.got[:0]
	*r = Receiver{
		Flow: flow, host: host, peer: peer, path: path, finSeq: -1,
		arena: arena, pool: pool, got: got,
	}
}

// Receive handles data and SYN packets.
func (r *Receiver) Receive(p *fabric.Packet) {
	if p.Type != fabric.Data {
		fabric.Free(p)
		return
	}
	if !r.seenAny && p.Seq >= 0 {
		r.seenAny = true
		r.FirstArrival = r.host.EventList().Now()
	}
	if p.Flags&fabric.FlagSYN != 0 && p.Seq < 0 {
		// SYN: reply SYN-ACK.
		a := r.arena.NewControl(fabric.Ack, r.Flow, r.host.ID, r.peer)
		a.Flags |= fabric.FlagSYN
		a.AckNo = 0
		a.Path = r.path
		r.host.Send(a)
		fabric.Free(p)
		return
	}
	seq := p.Seq
	for int64(len(r.got)) <= seq {
		r.got = append(r.got, false) //simlint:allow hotalloc — arrival bitmap: amortized append doubling, O(log N) allocations per flow, backing array kept across recycle
	}
	if !r.got[seq] {
		r.got[seq] = true
		r.Bytes += int64(p.DataSize)
		if r.OnData != nil {
			r.OnData(int64(p.DataSize))
		}
	}
	if p.Flags&fabric.FlagFIN != 0 {
		r.finSeq = seq
	}
	for r.cumAck < int64(len(r.got)) && r.got[r.cumAck] {
		r.cumAck++
	}
	a := r.arena.NewControl(fabric.Ack, r.Flow, r.host.ID, r.peer)
	a.AckNo = r.cumAck
	a.TSEcho = p.Sent
	if p.Flags&fabric.FlagCE != 0 {
		a.Flags |= fabric.FlagECNEcho
	}
	a.Path = r.path
	r.host.Send(a)
	if r.finSeq >= 0 && r.cumAck == r.finSeq+1 && !r.complete {
		r.complete = true
		r.CompletedAt = r.host.EventList().Now()
		if r.OnComplete != nil {
			r.OnComplete(r)
		}
		if r.pool != nil {
			r.pool.retireReceiver(r)
		}
	}
	fabric.Free(p)
}

// Complete reports whether the stream is fully received.
func (r *Receiver) Complete() bool { return r.complete }
