package tcp

import (
	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// msl mirrors internal/core's maximum-segment-lifetime bound: a retired
// connection's state may be reused once 2*msl has elapsed since completion,
// by which point no packet of the old flow is still in flight.
const msl = sim.Millisecond

// Pool recycles completed Sender/Receiver state within one scheduling
// domain (all hosts sharing one event list). The dominant per-flow costs —
// the per-packet bookkeeping arrays, the arrival bitmap, and the timer —
// survive reuse, so a closed-loop workload's steady state allocates almost
// nothing per flow.
//
// Reuse is behavior-preserving, not just leak-safe:
//
//   - A completed sender emits nothing and ignores late duplicate ACKs, so
//     its demux slot is simply unregistered at reuse time (the demux frees
//     unclaimed packets, which is observationally identical).
//   - A completed receiver still re-ACKs late retransmissions — behavior a
//     stalled sender may depend on if the final ACK was dropped. At reuse
//     time its demux slot is therefore replaced with a tombstone that
//     replays exactly the ACK the live receiver would have sent. Tombstones
//     occupy the demux slot forever, just as the retired receiver itself
//     did before pooling existed.
//
// Pools are not safe for concurrent use: build one per shard and only touch
// it from that shard's scheduling domain.
type Pool struct {
	senders   []*Sender
	receivers []*Receiver
}

// NewPool returns an empty pool for one scheduling domain.
func NewPool() *Pool { return &Pool{} }

// NewSender builds (or recycles) a sender registered on demux, which must
// demux the source host's packets. The sender returns to the pool
// automatically when the stream completes.
func (pl *Pool) NewSender(host *fabric.Host, demux *fabric.Demux, dst int32, flow uint64,
	path []int16, source DataSource, cfg Config) *Sender {
	s := pl.newSender(host, demux, dst, flow, path, source, cfg)
	s.groupOwned = false
	return s
}

// NewGroupSender is NewSender without automatic retirement: the caller
// retires the whole group with RetireSender once its coupled state is dead
// (MPTCP's LIA reads sibling windows until every subflow has completed).
func (pl *Pool) NewGroupSender(host *fabric.Host, demux *fabric.Demux, dst int32, flow uint64,
	path []int16, source DataSource, cfg Config) *Sender {
	s := pl.newSender(host, demux, dst, flow, path, source, cfg)
	s.groupOwned = true
	return s
}

func (pl *Pool) newSender(host *fabric.Host, demux *fabric.Demux, dst int32, flow uint64,
	path []int16, source DataSource, cfg Config) *Sender {
	s := pl.takeSender(host.EventList())
	if s == nil {
		s = NewSender(host, dst, flow, path, source, cfg)
		s.pool = pl
	} else {
		s.recycle(host, dst, flow, path, source, cfg)
	}
	s.demux = demux
	demux.Register(flow, s)
	return s
}

// RetireSender hands a completed sender back to the pool. Senders built
// with NewSender retire themselves; only group-owned senders need this.
func (pl *Pool) RetireSender(s *Sender) { pl.retireSender(s) }

func (pl *Pool) retireSender(s *Sender) { pl.senders = append(pl.senders, s) } //simlint:allow hotalloc — free-list append: capacity bounded by peak concurrent flows and kept across reuse

// takeSender pops the oldest retired sender if it is quiescent: timer
// disarmed, 2*msl past completion (no old-flow packets in flight), and
// owned by the requesting scheduling domain. Its demux registration is
// removed here — late ACKs beyond this point are freed unclaimed, which a
// completed sender would have ignored anyway.
func (pl *Pool) takeSender(el *sim.EventList) *Sender {
	if len(pl.senders) == 0 {
		return nil
	}
	s := pl.senders[0]
	if s.el != el || s.timer.Pending() || el.Now() < s.CompletedAt+2*msl {
		return nil
	}
	pl.senders = pl.senders[1:]
	s.demux.Unregister(s.Flow)
	return s
}

// NewReceiver builds (or recycles) a receiver registered on demux, which
// must demux the receiving host's packets. The receiver returns to the pool
// automatically when the stream completes.
func (pl *Pool) NewReceiver(host *fabric.Host, demux *fabric.Demux, peer int32, flow uint64,
	path []int16) *Receiver {
	r := pl.takeReceiver(host.EventList())
	if r == nil {
		r = NewReceiver(host, peer, flow, path)
		r.pool = pl
	} else {
		r.recycle(host, peer, flow, path)
	}
	r.demux = demux
	demux.Register(flow, r)
	return r
}

func (pl *Pool) retireReceiver(r *Receiver) { pl.receivers = append(pl.receivers, r) } //simlint:allow hotalloc — free-list append: capacity bounded by peak concurrent flows and kept across reuse

// takeReceiver pops the oldest retired receiver if 2*msl has elapsed since
// completion and it belongs to the requesting domain, leaving a tombstone
// in its demux slot so late retransmissions keep eliciting the final ACK.
func (pl *Pool) takeReceiver(el *sim.EventList) *Receiver {
	if len(pl.receivers) == 0 {
		return nil
	}
	r := pl.receivers[0]
	if r.host.EventList() != el || el.Now() < r.CompletedAt+2*msl {
		return nil
	}
	pl.receivers = pl.receivers[1:]
	r.demux.Register(r.Flow, &tombstone{ //simlint:allow hotalloc — one small tombstone per recycled receiver, on the pool-take path, not per packet; it replaces keeping a whole Receiver alive
		host: r.host, arena: r.arena, flow: r.Flow, peer: r.peer,
		path: r.path, cumAck: r.cumAck,
	})
	return r
}

// tombstone stands in for a completed, recycled receiver: it answers late
// retransmissions with the same final cumulative ACK the live receiver
// would have produced, so a sender whose completion ACK was lost still
// recovers. It holds ~1/10th the state of a full Receiver.
type tombstone struct {
	host   *fabric.Host
	arena  *fabric.Arena
	flow   uint64
	peer   int32
	path   []int16
	cumAck int64
}

// Receive mirrors a completed Receiver.Receive exactly.
func (t *tombstone) Receive(p *fabric.Packet) {
	if p.Type != fabric.Data {
		fabric.Free(p)
		return
	}
	a := t.arena.NewControl(fabric.Ack, t.flow, t.host.ID, t.peer)
	a.AckNo = t.cumAck
	a.TSEcho = p.Sent
	if p.Flags&fabric.FlagCE != 0 {
		a.Flags |= fabric.FlagECNEcho
	}
	a.Path = t.path
	t.host.Send(a)
	fabric.Free(p)
}
