// Package mptcp implements Multipath TCP with the Linked-Increases
// Algorithm (LIA, RFC 6356 / Raiciu et al., the paper's high-throughput
// baseline). A Flow opens N subflows, each a TCP NewReno instance
// (internal/tcp) pinned to a distinct source route; congestion-avoidance
// growth is coupled across subflows so the aggregate is fair to single-path
// TCP while moving traffic off congested paths.
package mptcp

import (
	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/tcp"
)

// Config parameterizes an MPTCP connection.
type Config struct {
	// Subflows is the number of subflows (the paper's comparisons use 8).
	Subflows int
	// TCP is the per-subflow configuration; DCTCP must be off.
	TCP tcp.Config
}

// DefaultConfig matches the paper's MPTCP setup: 8 subflows, 9000B MSS,
// datacenter-tuned MinRTO.
func DefaultConfig() Config {
	return Config{
		Subflows: 8,
		TCP: tcp.Config{
			MSS:         9000,
			InitialCwnd: 10,
			MaxCwnd:     1000,
			MinRTO:      10 * sim.Millisecond,
			Handshake:   true,
		},
	}
}

// Flow is one MPTCP connection: a shared stream striped over subflows.
type Flow struct {
	Flow uint64
	Size int64 // bytes; <0 unbounded

	Senders   []*tcp.Sender
	Receivers []*tcp.Receiver

	subflows    int
	received    int64
	complete    bool
	CompletedAt sim.Time
	OnComplete  func(f *Flow)
}

// sharedSource stripes one stream across subflows: each subflow claims the
// next MSS when it wants to send a fresh packet.
type sharedSource struct{ inner *tcp.FixedSource }

func (s *sharedSource) Claim() int      { return s.inner.Claim() }
func (s *sharedSource) Exhausted() bool { return s.inner.Exhausted() }

// unboundedSource never runs out (permutation-style long flows).
type unboundedSource struct{ mss int }

func (s *unboundedSource) Claim() int      { return s.mss }
func (s *unboundedSource) Exhausted() bool { return false }

// New builds an MPTCP flow from srcHost to dstHost. paths must contain the
// forward source routes and revPaths the reverse ones; subflows are pinned
// to distinct paths chosen by rand (wrapping if there are fewer paths than
// subflows). Flows are registered on the given demuxes under ids
// flow..flow+Subflows-1.
//
// New touches both hosts' state, so it is a single-scheduling-domain
// convenience. Sharded engines use the split construction: NewSenderHalf
// on the source's domain, then AttachReceivers deferred onto the
// destination's.
func New(src, dst *fabric.Host, srcDemux, dstDemux *fabric.Demux, flow uint64,
	size int64, paths, revPaths [][]int16, rand *sim.Rand, cfg Config) *Flow {
	f := NewSenderHalf(src, dst.ID, srcDemux, flow, size, paths, rand, cfg, nil)
	f.AttachReceivers(dst, dstDemux, revPaths, rand, nil, nil)
	return f
}

// NewSenderHalf builds the source-side half of an MPTCP flow: the subflow
// senders on their permuted forward paths, registered on srcDemux and
// coupled by LIA, but not yet started. It touches only source-host state
// and draws only from rand (the forward permutation), so it is safe to run
// in the source's scheduling domain of a sharded engine; complete the flow
// with AttachReceivers in the destination's domain before the first data
// packet arrives.
//
// pool, when non-nil, recycles completed subflow sender state; it must
// belong to the source's scheduling domain. Subflows are group-retired only
// once every one of them has completed, because LIA reads sibling windows
// for as long as any subflow is still growing.
func NewSenderHalf(src *fabric.Host, dst int32, srcDemux *fabric.Demux, flow uint64,
	size int64, paths [][]int16, rand *sim.Rand, cfg Config, pool *tcp.Pool) *Flow {
	if cfg.Subflows <= 0 {
		cfg.Subflows = 8
	}
	f := &Flow{Flow: flow, Size: size, subflows: cfg.Subflows}

	var source tcp.DataSource
	if size < 0 {
		source = &unboundedSource{mss: cfg.TCP.MSS}
	} else {
		source = &sharedSource{inner: tcp.NewFixedSource(size, cfg.TCP.MSS)}
	}

	fwdPerm := rand.Perm(len(paths))
	for i := 0; i < cfg.Subflows; i++ {
		id := flow + uint64(i)
		fwd := paths[fwdPerm[i%len(fwdPerm)]]
		var snd *tcp.Sender
		if pool != nil {
			snd = pool.NewGroupSender(src, srcDemux, dst, id, fwd, source, cfg.TCP)
		} else {
			snd = tcp.NewSender(src, dst, id, fwd, source, cfg.TCP)
			srcDemux.Register(id, snd)
		}
		f.Senders = append(f.Senders, snd)
	}
	// Couple congestion avoidance across the subflows (LIA).
	for _, snd := range f.Senders {
		snd.SetIncrease(f.liaIncrease)
	}
	if pool != nil {
		remaining := len(f.Senders)
		for _, snd := range f.Senders {
			snd.OnComplete = func(*tcp.Sender) {
				remaining--
				if remaining == 0 {
					for _, sb := range f.Senders {
						pool.RetireSender(sb)
					}
				}
			}
		}
	}
	return f
}

// AttachReceivers builds the destination-side half: one receiver per
// subflow on reverse paths permuted by rand, registered on dstDemux, with
// the completion accounting chained to the optional onData observer. It
// touches only destination-host state (plus the Flow's receiver-owned
// fields), so a sharded engine defers it onto the destination's domain —
// with a rand seeded from a value drawn in the source's domain, which
// keeps the reverse-path choice deterministic without sharing a stream
// across shards.
// pool, when non-nil, recycles completed subflow receiver state; it must
// belong to the destination's scheduling domain.
func (f *Flow) AttachReceivers(dst *fabric.Host, dstDemux *fabric.Demux,
	revPaths [][]int16, rand *sim.Rand, onData func(n int64), pool *tcp.Pool) {
	revPerm := rand.Perm(len(revPaths))
	for i := 0; i < f.subflows; i++ {
		id := f.Flow + uint64(i)
		rev := revPaths[revPerm[i%len(revPerm)]]
		var rcv *tcp.Receiver
		if pool != nil {
			rcv = pool.NewReceiver(dst, dstDemux, f.Senders[i].Host().ID, id, rev)
		} else {
			rcv = tcp.NewReceiver(dst, f.Senders[i].Host().ID, id, rev)
		}
		rcv.OnData = func(n int64) {
			f.received += n
			if f.Size >= 0 && f.received >= f.Size && !f.complete {
				f.complete = true
				f.CompletedAt = dst.EventList().Now()
				if f.OnComplete != nil {
					f.OnComplete(f)
				}
			}
			if onData != nil {
				onData(n)
			}
		}
		dstDemux.Register(id, rcv)
		f.Receivers = append(f.Receivers, rcv)
	}
}

// Start launches every subflow.
func (f *Flow) Start() {
	for _, s := range f.Senders {
		s.Start()
	}
}

// liaIncrease is RFC 6356's coupled increase: for one acked packet on a
// subflow with window w, the increment is min(alpha/w_total, 1/w) where
//
//	alpha = w_total * max_i(w_i / rtt_i^2) / (sum_i w_i / rtt_i)^2
//
// computed over subflows with an RTT estimate.
func (f *Flow) liaIncrease(sub *tcp.Sender) float64 {
	var total, sumWR, maxWR2 float64
	for _, s := range f.Senders {
		w := s.Cwnd()
		total += w
		rtt := s.SRTT().Seconds()
		if rtt <= 0 {
			continue
		}
		sumWR += w / rtt
		if v := w / (rtt * rtt); v > maxWR2 {
			maxWR2 = v
		}
	}
	if total <= 0 || sumWR <= 0 {
		return 1 / sub.Cwnd()
	}
	alpha := total * maxWR2 / (sumWR * sumWR)
	inc := alpha / total
	if single := 1 / sub.Cwnd(); inc > single {
		inc = single
	}
	return inc
}

// ReceivedBytes returns distinct stream bytes received across subflows.
func (f *Flow) ReceivedBytes() int64 { return f.received }

// AckedBytes sums sender-side acknowledged bytes across subflows (the
// goodput measure for unbounded flows).
func (f *Flow) AckedBytes() int64 {
	var n int64
	for _, s := range f.Senders {
		n += s.AckedBytes
	}
	return n
}

// Complete reports whether the stream has been fully received.
func (f *Flow) Complete() bool { return f.complete }

// TotalRtx sums retransmissions across subflows.
func (f *Flow) TotalRtx() int64 {
	var n int64
	for _, s := range f.Senders {
		n += s.Rtx
	}
	return n
}
