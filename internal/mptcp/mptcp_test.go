package mptcp

import (
	"testing"

	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/topo"
)

func mptcpNet(k int) (*topo.FatTree, []*fabric.Demux) {
	cfg := topo.Config{
		Seed:        5,
		SwitchQueue: func(string) fabric.Queue { return fabric.NewFIFOQueue(200 * 9000) },
	}
	net := topo.NewFatTree(k, cfg)
	dm := make([]*fabric.Demux, net.NumHosts())
	for i, h := range net.Hosts {
		dm[i] = fabric.NewDemux()
		h.Stack = dm[i]
	}
	return net, dm
}

func newFlow(net *topo.FatTree, dm []*fabric.Demux, src, dst int32, flow uint64, size int64, subflows int) *Flow {
	cfg := DefaultConfig()
	cfg.Subflows = subflows
	f := New(net.Hosts[src], net.Hosts[dst], dm[src], dm[dst], flow, size,
		net.Paths(src, dst), net.Paths(dst, src), net.Rand, cfg)
	f.Start()
	return f
}

func TestMPTCPTransferCompletes(t *testing.T) {
	net, dm := mptcpNet(4)
	f := newFlow(net, dm, 0, 15, 100, 1_800_000, 4)
	net.EL.RunUntil(100 * sim.Millisecond)
	if !f.Complete() {
		t.Fatal("MPTCP transfer incomplete")
	}
	if f.ReceivedBytes() != 1_800_000 {
		t.Errorf("received %d, want 1800000", f.ReceivedBytes())
	}
}

func TestMPTCPUsesMultipleSubflows(t *testing.T) {
	net, dm := mptcpNet(4)
	f := newFlow(net, dm, 0, 15, 100, 9_000_000, 4)
	net.EL.RunUntil(100 * sim.Millisecond)
	if !f.Complete() {
		t.Fatal("incomplete")
	}
	active := 0
	for _, s := range f.Senders {
		if s.AckedBytes > 0 {
			active++
		}
	}
	if active < 2 {
		t.Errorf("only %d subflows carried data", active)
	}
}

func TestMPTCPLIAIsBounded(t *testing.T) {
	// LIA's per-ack increment must never exceed uncoupled NewReno's 1/w.
	net, dm := mptcpNet(4)
	f := newFlow(net, dm, 0, 15, 100, -1, 4)
	net.EL.RunUntil(5 * sim.Millisecond)
	for _, s := range f.Senders {
		if s.SRTT() == 0 {
			continue
		}
		inc := f.liaIncrease(s)
		if inc > 1/s.Cwnd()+1e-12 {
			t.Errorf("LIA increment %v exceeds NewReno bound %v", inc, 1/s.Cwnd())
		}
		if inc <= 0 {
			t.Errorf("LIA increment %v not positive", inc)
		}
	}
}

func TestMPTCPOutperformsSinglePathUnderCollision(t *testing.T) {
	// Two transfers cross the core simultaneously. With one subflow each,
	// colliding paths halve throughput; with 8 subflows MPTCP spreads load
	// and finishes faster in aggregate. Run both configurations on the
	// same traffic pattern and compare total completion time.
	run := func(subflows int) sim.Time {
		net, dm := mptcpNet(4)
		var last sim.Time
		n := 0
		for i := 0; i < 4; i++ {
			f := newFlow(net, dm, int32(i), int32(12+i), uint64(100*i+1), 9_000_000, subflows)
			f.OnComplete = func(f *Flow) {
				n++
				if f.CompletedAt > last {
					last = f.CompletedAt
				}
			}
		}
		net.EL.RunUntil(sim.Second)
		if n != 4 {
			t.Fatalf("subflows=%d: %d/4 flows completed", subflows, n)
		}
		return last
	}
	single := run(1)
	multi := run(8)
	if multi > single {
		t.Errorf("8-subflow MPTCP (%v) slower than single-path (%v)", multi, single)
	}
}

func TestSharedSourceStripesExactly(t *testing.T) {
	// The shared stream must be claimed exactly once: total received equals
	// the stream size even with many subflows and retransmissions.
	net, dm := mptcpNet(4)
	f := newFlow(net, dm, 0, 15, 100, 450_000, 8)
	net.EL.RunUntil(200 * sim.Millisecond)
	if !f.Complete() {
		t.Fatal("incomplete")
	}
	var rcvd int64
	for _, r := range f.Receivers {
		rcvd += r.Bytes
	}
	if rcvd != 450_000 {
		t.Errorf("subflow bytes sum to %d, want exactly 450000", rcvd)
	}
}
