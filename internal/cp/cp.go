// Package cp implements the Cut Payload switch of Cheng et al. (NSDI 2014),
// the baseline NDP's switch service model improves on (§2.3, Figure 2).
// A CP switch keeps a single FIFO: when a data packet does not fit, its
// payload is trimmed and the header is queued in the same FIFO (no priority
// queue, no WRR, no tail-trim coin). Under severe overload the FIFO fills
// with headers — the congestion-collapse failure mode — and its determinism
// produces the phase effects that make CP unfair.
package cp

import (
	"ndp/internal/fabric"
)

// Queue is the CP output-port discipline: one FIFO shared by data packets
// and trimmed headers. Data packets are trimmed once occupancy exceeds
// TrimThreshold; MaxBytes is the hard buffer limit beyond which even
// headers are dropped.
type Queue struct {
	fabric.QueueStats
	q     fifo
	bytes int
	// TrimThreshold is the occupancy above which payloads are cut.
	TrimThreshold int
	// MaxBytes is the hard capacity including header headroom.
	MaxBytes int
}

type fifo struct {
	buf        []*fabric.Packet
	head, tail int
	n          int
}

func (f *fifo) push(p *fabric.Packet) {
	if f.n == len(f.buf) {
		size := len(f.buf) * 2
		if size == 0 {
			size = 16
		}
		nb := make([]*fabric.Packet, size) //simlint:allow hotalloc — doubling FIFO growth: amortized O(1) per push, the buffer is reused forever
		for i := 0; i < f.n; i++ {
			nb[i] = f.buf[(f.head+i)&(len(f.buf)-1)]
		}
		f.buf, f.head, f.tail = nb, 0, f.n
	}
	f.buf[f.tail] = p
	f.tail = (f.tail + 1) & (len(f.buf) - 1)
	f.n++
}

func (f *fifo) pop() *fabric.Packet {
	if f.n == 0 {
		return nil
	}
	p := f.buf[f.head]
	f.buf[f.head] = nil
	f.head = (f.head + 1) & (len(f.buf) - 1)
	f.n--
	return p
}

// NewQueue returns a CP queue that trims above trimThreshold bytes and
// drops above maxBytes.
func NewQueue(trimThreshold, maxBytes int) *Queue {
	return &Queue{TrimThreshold: trimThreshold, MaxBytes: maxBytes}
}

// Enqueue stores the packet, trimming its payload above the threshold; if
// even the header does not fit under the hard limit, the packet is dropped.
func (q *Queue) Enqueue(p *fabric.Packet) {
	q.NoteEnqueue(p)
	if p.Type == fabric.Data && !p.Trimmed() {
		if q.bytes+int(p.Size) <= q.TrimThreshold {
			q.bytes += int(p.Size)
			q.q.push(p)
			q.NoteDepth(q.bytes)
			return
		}
		p.Trim()
		q.Trims++
	}
	if q.bytes+int(p.Size) <= q.MaxBytes {
		q.bytes += int(p.Size)
		q.q.push(p)
		q.NoteDepth(q.bytes)
		return
	}
	q.Drops++
	fabric.Free(p)
}

// Dequeue removes the head packet (strict FIFO: headers wait their turn,
// which is why CP's loss feedback is slower than NDP's).
func (q *Queue) Dequeue() *fabric.Packet {
	p := q.q.pop()
	if p != nil {
		q.bytes -= int(p.Size)
	}
	return p
}

// Empty reports whether the FIFO is empty.
func (q *Queue) Empty() bool { return q.q.n == 0 }

// Bytes returns queued wire bytes.
func (q *Queue) Bytes() int { return q.bytes }

// QueueFactory returns a topo.Config-compatible factory for CP queues:
// trimming above trimThreshold with header headroom up to maxBytes.
func QueueFactory(trimThreshold, maxBytes int) func(name string) fabric.Queue {
	return func(string) fabric.Queue { return NewQueue(trimThreshold, maxBytes) }
}
