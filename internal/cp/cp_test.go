package cp

import (
	"testing"

	"ndp/internal/fabric"
)

func TestCPQueueTrimsIntoSameFIFO(t *testing.T) {
	q := NewQueue(3*9000, 3*9000+64*fabric.HeaderSize)
	for i := int64(0); i < 5; i++ {
		q.Enqueue(fabric.NewData(1, 0, 1, i, 9000))
	}
	if q.Stats().Trims != 2 {
		t.Fatalf("trims = %d, want 2", q.Stats().Trims)
	}
	// FIFO order: 3 full packets then 2 headers — headers wait their turn.
	var order []bool
	for !q.Empty() {
		p := q.Dequeue()
		order = append(order, p.Trimmed())
		fabric.Free(p)
	}
	want := []bool{false, false, false, true, true}
	if len(order) != len(want) {
		t.Fatalf("dequeued %d packets, want %d", len(order), len(want))
	}
	for i := range want {
		if order[i] != want[i] {
			t.Errorf("position %d trimmed=%v, want %v (CP is strict FIFO)", i, order[i], want[i])
		}
	}
}

func TestCPQueueHeaderCollapse(t *testing.T) {
	// Sustained overload: the FIFO fills with headers. Offered 1000 packets
	// into a 3-packet queue drained slowly: most become headers, and the
	// data fraction of the queue is tiny — the collapse precursor.
	q := NewQueue(3*9000, 3*9000+64*fabric.HeaderSize)
	for i := int64(0); i < 1000; i++ {
		q.Enqueue(fabric.NewData(1, 0, 1, i, 9000))
		if i%9 == 8 { // drain one packet per 9 arrivals
			fabric.Free(q.Dequeue())
		}
	}
	if q.Stats().Trims < 800 {
		t.Errorf("trims = %d; sustained overload should trim most packets", q.Stats().Trims)
	}
}

func TestCPQueueDropsWhenHeaderDoesNotFit(t *testing.T) {
	q := NewQueue(64, 2*fabric.HeaderSize) // room for two headers only
	q.Enqueue(fabric.NewData(1, 0, 1, 0, 9000))
	q.Enqueue(fabric.NewData(1, 0, 1, 1, 9000))
	q.Enqueue(fabric.NewData(1, 0, 1, 2, 9000))
	if q.Stats().Trims != 3 {
		t.Errorf("trims = %d, want 3", q.Stats().Trims)
	}
	if q.Stats().Drops != 1 {
		t.Errorf("drops = %d, want 1 (third header does not fit)", q.Stats().Drops)
	}
}

func TestCPControlPacketsShareFIFO(t *testing.T) {
	q := NewQueue(2*9000, 2*9000+4096)
	q.Enqueue(fabric.NewData(1, 0, 1, 0, 9000))
	q.Enqueue(fabric.NewControl(fabric.Ack, 1, 1, 0))
	// No priority: data dequeues first because it arrived first.
	if p := q.Dequeue(); p.Type != fabric.Data {
		t.Error("CP has no priority queue; FIFO order must hold")
	}
}
