package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the interprocedural layer the hot-path analyzers run
// on: a CHA-style call graph over go/types plus per-function allocation
// summaries. Like the rest of simlint it is stdlib-only — no SSA, no
// x/tools — so the graph is an over-approximation by design:
//
//   - static calls resolve to their declared callee;
//   - interface method calls resolve, class-hierarchy style, to every
//     concrete type in the analyzed program that implements the interface
//     (this is what sees through the harness.Transport / sim.Handler /
//     fabric.Sink / fabric.Queue seams);
//   - a function literal gets an edge from the function that creates it
//     (a closure built on a hot path usually runs on it, and its creation
//     is itself an allocation);
//   - calls through plain func values (fields, parameters) are not
//     resolved — the dynamic-command and hook seams those represent are
//     covered by the defercmd analyzer and the summaries of the closures
//     themselves.

// EdgeKind classifies how a call edge was resolved.
type EdgeKind uint8

const (
	// EdgeStatic is a direct call to a declared function or method.
	EdgeStatic EdgeKind = iota
	// EdgeIface is an interface method call resolved by CHA to one
	// implementing concrete method.
	EdgeIface
	// EdgeClosure links a function to a literal it creates (the literal
	// may run wherever the value flows; on a hot path, assume it does).
	EdgeClosure
)

// CallEdge is one resolved call (or closure-creation) site.
type CallEdge struct {
	Pos    token.Pos
	Kind   EdgeKind
	Callee *FuncNode
}

// AllocKind classifies an allocation site in a function summary.
type AllocKind string

const (
	AllocMake      AllocKind = "make"
	AllocAppend    AllocKind = "append-grow"
	AllocClosure   AllocKind = "closure capture"
	AllocBound     AllocKind = "bound-method value"
	AllocNew       AllocKind = "new"
	AllocComposite AllocKind = "composite literal"
	AllocBox       AllocKind = "interface boxing"
)

// AllocSite is one classified allocation in a function body.
type AllocSite struct {
	Pos  token.Pos
	Kind AllocKind
	// Desc names what is allocated ("[]flightEntry", "captures pkt, now").
	Desc string
	// PanicOnly marks sites inside a panic argument or a block that ends
	// by panicking: dead in steady state, so hotalloc skips them.
	PanicOnly bool
}

// FuncNode is one function in the program: a declared function/method or a
// function literal nested inside one.
type FuncNode struct {
	Pkg  *Package
	Decl *ast.FuncDecl // nil for literals
	Lit  *ast.FuncLit  // nil for declarations
	Obj  *types.Func   // nil for literals
	// Name is the qualified display name used in diagnostics and chains:
	// "fabric.Port.OnEvent", "tcp.Sender.Receive$1".
	Name string

	Edges  []CallEdge
	Allocs []AllocSite
	// Captures lists the free variables of a literal (empty for decls and
	// for literals that compile to static functions).
	Captures []string
}

// CallGraph indexes every analyzed function and its resolved edges.
type CallGraph struct {
	Nodes []*FuncNode

	byObj map[*types.Func]*FuncNode
	byLit map[*ast.FuncLit]*FuncNode
}

// NodeOf returns the node for a declared function, or nil.
func (g *CallGraph) NodeOf(obj *types.Func) *FuncNode { return g.byObj[obj] }

// LitNode returns the node for a function literal, or nil.
func (g *CallGraph) LitNode(lit *ast.FuncLit) *FuncNode { return g.byLit[lit] }

// buildCallGraph constructs nodes, summaries and edges for every function
// declared in pkgs.
func buildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{byObj: map[*types.Func]*FuncNode{}, byLit: map[*ast.FuncLit]*FuncNode{}}
	b := &graphBuilder{g: g, pkgs: pkgs, ifaceCache: map[ifaceKey][]*FuncNode{}}

	// Pass 1: a node per declared function, so static edges resolve no
	// matter the package order.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{Pkg: pkg, Decl: fd, Obj: obj, Name: declName(pkg, fd, obj)}
				g.Nodes = append(g.Nodes, n)
				g.byObj[obj] = n
			}
		}
	}
	b.collectNamed()

	// Pass 2: walk each declared body, creating literal nodes as they are
	// encountered and attributing calls and allocation sites to the
	// innermost enclosing function.
	for _, n := range g.Nodes {
		if n.Decl != nil {
			b.walkBody(n, n.Decl.Body)
		}
	}
	return g
}

// declName renders "pkg.Func" or "pkg.Recv.Method".
func declName(pkg *Package, fd *ast.FuncDecl, obj *types.Func) string {
	short := pkg.Types.Name()
	if fd.Recv != nil && len(fd.Recv.List) > 0 {
		if sig, ok := obj.Type().(*types.Signature); ok && sig.Recv() != nil {
			t := sig.Recv().Type()
			if ptr, ok := t.(*types.Pointer); ok {
				t = ptr.Elem()
			}
			if named, ok := t.(*types.Named); ok {
				return short + "." + named.Obj().Name() + "." + fd.Name.Name
			}
		}
	}
	return short + "." + fd.Name.Name
}

// ifaceKey caches CHA resolutions per (interface, method name).
type ifaceKey struct {
	iface *types.Interface
	name  string
}

type graphBuilder struct {
	g          *CallGraph
	pkgs       []*Package
	named      []*types.Named
	ifaceCache map[ifaceKey][]*FuncNode
}

// collectNamed gathers every named type declared in the analyzed packages;
// CHA resolves interface calls against this set.
func (b *graphBuilder) collectNamed() {
	for _, pkg := range b.pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if named, ok := tn.Type().(*types.Named); ok {
				b.named = append(b.named, named)
			}
		}
	}
}

// ifaceTargets resolves an interface method call to every declared method
// in the program whose receiver type implements the interface.
func (b *graphBuilder) ifaceTargets(iface *types.Interface, name string) []*FuncNode {
	key := ifaceKey{iface, name}
	if out, ok := b.ifaceCache[key]; ok {
		return out
	}
	var out []*FuncNode
	for _, named := range b.named {
		if _, isIface := named.Underlying().(*types.Interface); isIface {
			continue
		}
		ptr := types.NewPointer(named)
		if !types.Implements(ptr, iface) && !types.Implements(named, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, named.Obj().Pkg(), name)
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if node := b.g.byObj[fn]; node != nil {
			out = append(out, node)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	b.ifaceCache[key] = out
	return out
}

// walkCtx carries the traversal state of one function body.
type walkCtx struct {
	node *FuncNode
	// panicDepth > 0 while inside an argument of panic(...); allocations
	// there never run in steady state.
	panicDepth int
	// lits numbers the literals created directly by this function.
	lits int
}

// walkBody attributes the calls and allocation sites of body to node. It
// does not descend into nested function literals itself — each literal
// becomes its own node, linked by an EdgeClosure, and is walked
// recursively.
func (b *graphBuilder) walkBody(node *FuncNode, body ast.Node) {
	ctx := &walkCtx{node: node}
	b.walk(ctx, body)
}

func (b *graphBuilder) walk(ctx *walkCtx, n ast.Node) {
	if n == nil {
		return
	}
	switch x := n.(type) {
	case *ast.FuncLit:
		b.addLit(ctx, x)
		return
	case *ast.CallExpr:
		b.visitCall(ctx, x)
		return
	case *ast.SelectorExpr:
		b.visitSelector(ctx, x)
		return
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			if cl, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
				b.addAlloc(ctx, x.Pos(), AllocNew, "&"+typeDesc(ctx.node.Pkg, cl))
				// Walk the literal's elements for nested sites.
				for _, e := range cl.Elts {
					b.walk(ctx, e)
				}
				return
			}
		}
	case *ast.CompositeLit:
		b.visitComposite(ctx, x)
		return
	case *ast.AssignStmt:
		b.visitAssign(ctx, x)
		return
	}
	// Generic descent.
	ast.Inspect(n, func(child ast.Node) bool {
		if child == n {
			return true
		}
		b.walk(ctx, child)
		return false
	})
}

// addLit creates the literal's node, the closure edge, and — when the
// literal captures variables — the closure-allocation site.
func (b *graphBuilder) addLit(ctx *walkCtx, lit *ast.FuncLit) {
	ctx.lits++
	child := &FuncNode{
		Pkg:      ctx.node.Pkg,
		Lit:      lit,
		Name:     fmt.Sprintf("%s$%d", ctx.node.Name, ctx.lits),
		Captures: freeVars(ctx.node.Pkg, lit),
	}
	b.g.Nodes = append(b.g.Nodes, child)
	b.g.byLit[lit] = child
	ctx.node.Edges = append(ctx.node.Edges, CallEdge{Pos: lit.Pos(), Kind: EdgeClosure, Callee: child})
	if len(child.Captures) > 0 {
		b.addAlloc(ctx, lit.Pos(), AllocClosure, "captures "+strings.Join(child.Captures, ", "))
	}
	b.walkBody(child, lit.Body)
}

// visitCall classifies builtin allocators, records call edges, and checks
// arguments for interface boxing.
func (b *graphBuilder) visitCall(ctx *walkCtx, call *ast.CallExpr) {
	info := ctx.node.Pkg.Info
	switch {
	case isBuiltin(info, call, "make"):
		b.addAlloc(ctx, call.Pos(), AllocMake, typeDesc(ctx.node.Pkg, call.Args[0]))
	case isBuiltin(info, call, "append"):
		b.addAlloc(ctx, call.Pos(), AllocAppend, typeDesc(ctx.node.Pkg, call.Args[0]))
	case isBuiltin(info, call, "new"):
		b.addAlloc(ctx, call.Pos(), AllocNew, "new("+typeDesc(ctx.node.Pkg, call.Args[0])+")")
	case isBuiltin(info, call, "panic"):
		ctx.panicDepth++
		for _, a := range call.Args {
			b.walk(ctx, a)
		}
		ctx.panicDepth--
		return
	case isConversion(info, call):
		// A conversion to interface type boxes a non-pointer operand.
		if len(call.Args) == 1 {
			b.checkBox(ctx, call.Args[0], info.TypeOf(call.Fun))
		}
	default:
		b.addCallEdges(ctx, call)
		b.checkArgBoxing(ctx, call)
	}
	// Walk the callee expression without re-classifying a method call as a
	// bound-method value: descend into the selector's receiver only.
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		b.walk(ctx, fun.X)
	case *ast.Ident:
		// nothing nested
	default:
		b.walk(ctx, fun)
	}
	for _, a := range call.Args {
		b.walk(ctx, a)
	}
}

// addCallEdges resolves one call expression to static or CHA edges.
func (b *graphBuilder) addCallEdges(ctx *walkCtx, call *ast.CallExpr) {
	info := ctx.node.Pkg.Info
	// Interface dispatch: a method value selected from an interface.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
			if iface, ok := s.Recv().Underlying().(*types.Interface); ok {
				for _, target := range b.ifaceTargets(iface, sel.Sel.Name) {
					ctx.node.Edges = append(ctx.node.Edges, CallEdge{Pos: call.Pos(), Kind: EdgeIface, Callee: target})
				}
				return
			}
		}
	}
	if fn := calleeFunc(info, call); fn != nil {
		if node := b.g.byObj[fn]; node != nil {
			ctx.node.Edges = append(ctx.node.Edges, CallEdge{Pos: call.Pos(), Kind: EdgeStatic, Callee: node})
		}
		return
	}
	// Direct invocation of a literal: func(){...}() — the closure edge
	// added when the literal is walked already covers it.
}

// visitSelector records bound-method values (x.M used as a value allocates
// a closure binding x) and otherwise descends.
func (b *graphBuilder) visitSelector(ctx *walkCtx, sel *ast.SelectorExpr) {
	if s := ctx.node.Pkg.Info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		// Only a *use as a value* allocates; calls go through visitCall and
		// never reach here (visitCall walks call.Fun via b.walk, so guard).
		b.addAlloc(ctx, sel.Pos(), AllocBound, sel.Sel.Name+" bound to "+typeDesc(ctx.node.Pkg, sel.X))
		// The bound method may run wherever the value flows; on a hot path
		// assume it does.
		if fn, ok := ctx.node.Pkg.Info.Uses[sel.Sel].(*types.Func); ok {
			if node := b.g.byObj[fn]; node != nil {
				ctx.node.Edges = append(ctx.node.Edges, CallEdge{Pos: sel.Pos(), Kind: EdgeClosure, Callee: node})
			}
		}
	}
	b.walk(ctx, sel.X)
}

// visitComposite flags slice and map composite literals (backing store
// allocation) and descends into elements.
func (b *graphBuilder) visitComposite(ctx *walkCtx, cl *ast.CompositeLit) {
	t := ctx.node.Pkg.Info.TypeOf(cl)
	if t != nil {
		switch t.Underlying().(type) {
		case *types.Slice, *types.Map:
			b.addAlloc(ctx, cl.Pos(), AllocComposite, typeDesc(ctx.node.Pkg, cl))
		}
	}
	for _, e := range cl.Elts {
		b.walk(ctx, e)
	}
}

// visitAssign checks RHS-to-LHS interface boxing, then descends.
func (b *graphBuilder) visitAssign(ctx *walkCtx, as *ast.AssignStmt) {
	if len(as.Lhs) == len(as.Rhs) {
		for i := range as.Rhs {
			lt := ctx.node.Pkg.Info.TypeOf(as.Lhs[i])
			b.checkBox(ctx, as.Rhs[i], lt)
		}
	}
	for _, e := range as.Rhs {
		b.walk(ctx, e)
	}
	for _, e := range as.Lhs {
		b.walk(ctx, e)
	}
}

// checkArgBoxing compares call arguments against parameter types: passing
// a non-pointer concrete value where an interface is expected boxes it.
func (b *graphBuilder) checkArgBoxing(ctx *walkCtx, call *ast.CallExpr) {
	sig, ok := ctx.node.Pkg.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || call.Ellipsis.IsValid() {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		b.checkBox(ctx, arg, pt)
	}
}

// checkBox reports expr as a boxing site when it is a non-pointer,
// non-interface concrete value and the target type is an interface.
func (b *graphBuilder) checkBox(ctx *walkCtx, expr ast.Expr, target types.Type) {
	if target == nil {
		return
	}
	if _, ok := target.Underlying().(*types.Interface); !ok {
		return
	}
	tv, ok := ctx.node.Pkg.Info.Types[expr]
	if !ok || tv.Type == nil {
		return
	}
	at := tv.Type
	if tv.IsNil() {
		return
	}
	switch at.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Signature, *types.Chan, *types.Map:
		// Interface-to-interface and pointer-shaped values don't allocate.
		return
	}
	b.addAlloc(ctx, expr.Pos(), AllocBox, typeDesc(ctx.node.Pkg, expr)+" boxed into "+target.String())
}

func (b *graphBuilder) addAlloc(ctx *walkCtx, pos token.Pos, kind AllocKind, desc string) {
	ctx.node.Allocs = append(ctx.node.Allocs, AllocSite{
		Pos: pos, Kind: kind, Desc: desc, PanicOnly: ctx.panicDepth > 0,
	})
}

// freeVars lists the variables a literal captures: identifiers resolving
// to non-package-level, non-field variables declared outside the literal.
func freeVars(pkg *Package, lit *ast.FuncLit) []string {
	seen := map[*types.Var]bool{}
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pkg.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == nil || v.Parent() == pkg.Types.Scope() || v.Parent() == types.Universe {
			return true // package-level or universe: no capture
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal (params, locals)
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	sort.Strings(out)
	return out
}

// typeDesc renders a short description of an expression's type for
// diagnostics.
func typeDesc(pkg *Package, expr ast.Expr) string {
	t := pkg.Info.TypeOf(expr)
	if t == nil {
		return "?"
	}
	s := t.String()
	// Strip the module path prefix for readability.
	s = strings.ReplaceAll(s, "ndp/internal/", "")
	s = strings.ReplaceAll(s, "ndp/", "")
	if len(s) > 48 {
		s = s[:45] + "..."
	}
	return s
}
