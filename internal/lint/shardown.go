package lint

import (
	"go/ast"
	"go/types"
)

// ShardOwn enforces the shared-nothing property the sharded runner (and
// the planned distributed-shard transport) depend on: a flow's sender
// endpoint lives on the source host's shard, its receiver endpoint on the
// destination host's shard, and neither side's state may be mutated from
// the other's methods. The ownership map is by construction: every
// transport package's Sender type is source-owned and its Receiver type
// destination-owned (the PR 5/8 shard-safety rebuilds made that the
// contract for the whole family).
//
// A method whose receiver is one side writing a field of the other side
// is therefore a cross-shard write — a data race under the parallel
// runner, and an ordering entanglement even when it happens to be safe.
// The legal idioms pass: sending a packet, deferring a command with
// Cluster.Defer, or mutating inside a function literal (closures run on
// the shard they are delivered to, and the defercmd analyzer audits the
// delivery). Same-side writes (a sender mutating sender-owned state)
// also pass — they stay inside one scheduling domain.
var ShardOwn = &Analyzer{
	Name: "shardown",
	Doc: "flags field writes that cross the shard-ownership map: a method on a " +
		"source-owned endpoint (core/tcp/dctcp/mptcp/phost/dcqcn Sender) writing fields " +
		"of a destination-owned one (Receiver) or vice versa; route the mutation " +
		"through Cluster.Defer onto the owner's shard instead",
	Run: runShardOwn,
}

// shardOwnedPkgs are the packages whose Sender/Receiver types the
// ownership map covers: the transport endpoint family.
var shardOwnedPkgs = map[string]bool{
	"ndp/internal/core":  true,
	"ndp/internal/tcp":   true,
	"ndp/internal/dctcp": true,
	"ndp/internal/mptcp": true,
	"ndp/internal/phost": true,
	"ndp/internal/dcqcn": true,
}

// ownerDomain returns which side of a flow owns values of type t:
// "source" for Sender endpoints, "destination" for Receiver endpoints,
// "" for everything else.
func ownerDomain(t types.Type) string {
	if t == nil {
		return ""
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil || !shardOwnedPkgs[obj.Pkg().Path()] {
		return ""
	}
	switch obj.Name() {
	case "Sender":
		return "source"
	case "Receiver":
		return "destination"
	}
	return ""
}

func runShardOwn(p *Pass) error {
	for _, f := range p.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || fd.Recv == nil {
				continue
			}
			obj, ok := p.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			sig := obj.Type().(*types.Signature)
			writer := ownerDomain(sig.Recv().Type())
			if writer == "" {
				continue
			}
			checkDomainWrites(p, fd.Body, writer)
		}
	}
	return nil
}

// checkDomainWrites scans one method body (not descending into function
// literals: a closure runs on whatever shard it is delivered to, which
// the defercmd analyzer audits) for field writes into the opposite
// ownership domain.
func checkDomainWrites(p *Pass, body ast.Node, writer string) {
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				checkWrite(p, lhs, writer)
			}
		case *ast.IncDecStmt:
			checkWrite(p, x.X, writer)
		}
		return true
	}
	ast.Inspect(body, walk)
}

// checkWrite reports lhs when it is a field selector whose base value
// belongs to the opposite ownership domain.
func checkWrite(p *Pass, lhs ast.Expr, writer string) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Only field writes: method selections can't be assigned to.
	if s := p.TypesInfo.Selections[sel]; s == nil || s.Kind() != types.FieldVal {
		return
	}
	written := ownerDomain(p.TypesInfo.TypeOf(sel.X))
	if written == "" || written == writer {
		return
	}
	p.Reportf(lhs.Pos(), "cross-shard write: field %s of a %s-owned endpoint written from a %s-owned method; the two sides of a flow live on different shards — route the mutation through Cluster.Defer (or a packet) onto the owner's shard", sel.Sel.Name, written, writer)
}
