package lint

// An analysistest-style fixture harness on the stdlib alone: each analyzer
// has a package under testdata/src/<name> whose `// want "regex"` comments
// state the expected diagnostics, line by line. Fixture imports of
// ndp/internal/{sim,fabric,topo} resolve to the stubs under
// testdata/src/ndp/... (ExtraSrc), so the analyzers' type matching is
// exercised against the real import paths without loading the engine.

import (
	"path/filepath"
	"regexp"
	"testing"
)

var wantRE = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// loadFixture loads the fixture package testdata/src/<name> with stub
// resolution enabled.
func loadFixture(t *testing.T, name string) *Package {
	t.Helper()
	modRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	extra, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	loader.ExtraSrc = extra
	pkg, err := loader.load(name)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	return pkg
}

// checkWants matches diagnostics against the fixture's want comments, line
// by line: every diagnostic needs a want, every want a diagnostic.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	type wantKey struct {
		file string
		line int
	}
	wants := map[wantKey][]*regexp.Regexp{}
	total := 0
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRE.FindAllStringSubmatch(c.Text, -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("bad want regexp %q: %v", m[1], err)
					}
					pos := pkg.Fset.Position(c.Pos())
					k := wantKey{filepath.Base(pos.Filename), pos.Line}
					wants[k] = append(wants[k], re)
					total++
				}
			}
		}
	}
	if total == 0 {
		t.Fatalf("fixture %s has no want comments", pkg.Path)
	}

	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := wantKey{filepath.Base(pos.Filename), pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s:%d: unexpected diagnostic: %s", k.file, k.line, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
		}
	}
}

// runFixture checks a per-package analyzer's diagnostics (after
// //simlint:allow filtering) against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg := loadFixture(t, name)
	diags, err := Run(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, name, err)
	}
	checkWants(t, pkg, diags)
}

// runProgramFixture is runFixture for interprocedural analyzers: the
// fixture package becomes a one-package program with its own call graph,
// entry points, and amortized-function registry.
func runProgramFixture(t *testing.T, a *Analyzer, name string) {
	t.Helper()
	pkg := loadFixture(t, name)
	prog := BuildProgram([]*Package{pkg})
	if len(prog.Entries) == 0 {
		t.Fatalf("fixture %s registered no hot-path entry points", name)
	}
	diags, err := RunProgram(prog, []*Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on fixture %s: %v", a.Name, name, err)
	}
	checkWants(t, pkg, diags)
}

func TestMapOrderFixture(t *testing.T)    { runFixture(t, MapOrder, "maporder") }
func TestWallClockFixture(t *testing.T)   { runFixture(t, WallClock, "wallclock") }
func TestSharedRandFixture(t *testing.T)  { runFixture(t, SharedRand, "sharedrand") }
func TestKeyedCutFixture(t *testing.T)    { runFixture(t, KeyedCut, "keyedcut") }
func TestArenaPacketFixture(t *testing.T) { runFixture(t, ArenaPacket, "arenapacket") }
func TestDeferCmdFixture(t *testing.T)    { runFixture(t, DeferCmd, "defercmd") }

// TestShardOwnFixture: the fixture carries the real ndp/internal/dctcp
// import path (ExtraSrc shadows the engine package) because the ownership
// map is keyed by package path.
func TestShardOwnFixture(t *testing.T) { runFixture(t, ShardOwn, "ndp/internal/dctcp") }

// TestHotAllocFixture: a fresh closure two calls below an OnEvent handler
// is flagged with its full call chain; a registered amortized-growth
// function is the negative case.
func TestHotAllocFixture(t *testing.T) { runProgramFixture(t, HotAlloc, "hotalloc") }

// TestAllowWithoutReason: a directive missing its justification (or citing
// an unknown analyzer) is itself a diagnostic.
func TestAllowWithoutReason(t *testing.T) { runFixture(t, AllowCheck, "allow") }
