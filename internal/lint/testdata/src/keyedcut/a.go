// Fixture for the keyedcut analyzer: cross-shard deliveries are
// canonically keyed and Defer delays derive from the topology.
package keyedcut

import (
	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/topo"
)

func literalDefer(c topo.Cluster) {
	c.Defer(0, 1, 500, func() {}) // want "compile-time constant"
}

func literalConstDefer(n *topo.Network) {
	const at = sim.Time(250)
	n.Defer(0, 1, at, func() {}) // want "compile-time constant"
}

// Delays computed from the topology's minimum path delay are the contract.
func derivedDefer(c topo.Cluster) {
	c.Defer(0, 1, c.EventList().Now()+c.MinPathDelay(0, 1), func() {})
}

func linkDefer(c topo.Cluster) {
	c.Defer(0, 1, c.EventList().Now()+3*c.LinkDelay(), func() {})
}

func plainMailbox(el *sim.EventList, ib *fabric.Inbox, bx *fabric.CrossBox) {
	el.Schedule(10, ib, 0)           // want "plain Schedule"
	el.ScheduleAfter(1, bx, 0)       // want "plain ScheduleAfter"
	el.ScheduleCancelable(10, ib, 0) // want "plain ScheduleCancelable"
}

// Keyed scheduling with a canonical ord is the sanctioned path.
func keyedMailbox(el *sim.EventList, ib *fabric.Inbox) {
	el.ScheduleKeyed(10, sim.DeliveryOrd(1, 2), ib, 0)
}

// Ordinary component handlers may use plain scheduling freely.
type pump struct{}

func (p *pump) OnEvent(arg uint64) {}

func plainComponent(el *sim.EventList, p *pump) {
	el.Schedule(10, p, 0)
}

func allowedDefer(c topo.Cluster) {
	c.Defer(0, 1, 500, func() {}) //simlint:allow keyedcut — fixture: bootstrap command before the clock starts
}
