// Package fabric is a fixture stub: the minimal surface of the real
// ndp/internal/fabric that the analyzers key on.
package fabric

import "ndp/internal/sim"

type Packet struct {
	Type int32
	Flow uint64
	Size int32
}

type Arena struct{ inUse int64 }

func (a *Arena) Get() *Packet                            { a.inUse++; return &Packet{} }
func (a *Arena) NewControl(t int32, flow uint64) *Packet { return a.Get() }
func (a *Arena) NewData(flow uint64, size int32) *Packet { return a.Get() }
func (a *Arena) InUse() int64                            { return a.inUse }
func AttachArena(el *sim.EventList) *Arena               { return &Arena{} }

type CrossBox struct{}

func (b *CrossBox) OnEvent(arg uint64) {}

type Inbox struct{ el *sim.EventList }

func (ib *Inbox) OnEvent(arg uint64) {}
