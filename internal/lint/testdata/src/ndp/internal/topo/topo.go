// Package topo is a fixture stub: the minimal Cluster surface of the real
// ndp/internal/topo that the keyedcut analyzer keys on.
package topo

import "ndp/internal/sim"

type Cluster interface {
	EventList() *sim.EventList
	Defer(from, to int, at sim.Time, fn func())
	MinPathDelay(src, dst int) sim.Time
	LinkDelay() sim.Time
}

type Network struct{ el sim.EventList }

func (n *Network) EventList() *sim.EventList                  { return &n.el }
func (n *Network) Defer(from, to int, at sim.Time, fn func()) {}
func (n *Network) MinPathDelay(src, dst int) sim.Time         { return 1 }
func (n *Network) LinkDelay() sim.Time                        { return 1 }
