// Package sim is a fixture stub: the minimal surface of the real
// ndp/internal/sim that the analyzers key on. The analyzers match types by
// full import path, so fixtures import these stubs under the real path.
package sim

type Time int64

type Rand struct{ s [4]uint64 }

func NewRand(seed uint64) *Rand { r := &Rand{}; r.Init(seed); return r }

func (r *Rand) Init(seed uint64)  { r.s[0] = seed }
func (r *Rand) Uint64() uint64    { return r.s[0] }
func (r *Rand) SplitSeed() uint64 { return r.Uint64() }

type Handler interface{ OnEvent(arg uint64) }

type EventID int32

type EventList struct{ now Time }

func (el *EventList) Now() Time                                   { return el.now }
func (el *EventList) Schedule(t Time, h Handler, arg uint64)      {}
func (el *EventList) ScheduleAfter(d Time, h Handler, arg uint64) {}
func (el *EventList) ScheduleKeyed(t Time, ord uint64, h Handler, arg uint64) {
}
func (el *EventList) ScheduleCancelable(t Time, h Handler, arg uint64) EventID { return 0 }
func (el *EventList) After(d Time, fn func())                                  {}

func DeliveryOrd(uid uint32, seq uint64) uint64 { return uint64(uid)<<40 | seq }
func CommandOrd(uid uint32, seq uint64) uint64  { return 1<<62 | uint64(uid)<<40 | seq }
