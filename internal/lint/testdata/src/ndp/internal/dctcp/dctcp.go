// Package dctcp is the shardown fixture. It deliberately carries a real
// transport import path (ExtraSrc shadows the engine package), because the
// ownership map is keyed by package path: this package's Sender is
// source-owned and its Receiver destination-owned.
package dctcp

type Sender struct {
	cwnd int
	peer *Receiver
}

type Receiver struct {
	cumAck int64
	peer   *Sender
}

// attach runs on the sender's (source) shard: writing its own fields is
// same-domain and legal; writing the receiver's fields crosses the shard
// boundary.
func (s *Sender) attach(r *Receiver) {
	s.peer = r // same-domain write: no finding
	r.peer = s // want "cross-shard write: field peer of a destination-owned endpoint written from a source-owned method"
	r.cumAck++ // want "cross-shard write: field cumAck of a destination-owned endpoint written from a source-owned method"
}

// reset shows the reverse direction and the same-shard negative case.
func (r *Receiver) reset() {
	r.cumAck = 0    // same-domain write: no finding
	r.peer.cwnd = 0 // want "cross-shard write: field cwnd of a source-owned endpoint written from a destination-owned method"
}

// handoff builds a closure: its body runs on whatever shard the command
// channel delivers it to, so writes inside are exempt here (the defercmd
// analyzer audits the delivery instead).
func (s *Sender) handoff(r *Receiver) func() {
	return func() {
		r.cumAck++ // closure body: no finding
	}
}
