// Fixture for the sharedrand analyzer: RNG streams are component-local,
// derived with SplitSeed, held by pointer.
package sharedrand

import "ndp/internal/sim"

var shared sim.Rand // want "package-level sim.Rand"

var sharedPtr = sim.NewRand(1) // want "package-level sim.Rand"

var pool []sim.Rand // want "package-level sim.Rand"

// Embedding a Rand by value and initializing it in place is the sanctioned
// pooling pattern: no stream is copied.
type component struct {
	r sim.Rand
}

func newComponent(parent *sim.Rand) *component {
	c := &component{}
	c.r.Init(parent.SplitSeed())
	return c
}

func forks(r *sim.Rand) uint64 {
	clone := *r // want "copied by value"
	return clone.Uint64()
}

func byValueParam(r sim.Rand) {} // want "parameter passes"

func callsByValue(r *sim.Rand) {
	byValueParam(*r) // want "passed by value"
}

func returnsByValue(r *sim.Rand) sim.Rand { // want "result returns"
	return *r // want "returned by value"
}

func intoLiteral(r *sim.Rand) component {
	return component{r: *r} // want "composite literal"
}

func ranged(rs []sim.Rand) {
	for _, r := range rs { // want "range copies each sim.Rand"
		r.Uint64()
	}
}

// Indexing draws from the real stream: order-safe and copy-free.
func indexed(rs []sim.Rand) {
	for i := range rs {
		rs[i].Uint64()
	}
}

//simlint:allow sharedrand — fixture: demonstrating a justified exemption
var exempt sim.Rand
