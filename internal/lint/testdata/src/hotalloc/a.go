// Package hotalloc is the interprocedural fixture: Port.OnEvent implements
// the sim.Handler stub, so it is a registered hot-path entry point, and the
// fresh capturing closure two calls below it is the seeded regression the
// analyzer must flag — with the full call chain. The registered grow
// barrier is the negative case: amortized growth is exempt, not forbidden.
package hotalloc

import "ndp/internal/sim"

// ring mirrors the engine's power-of-two rings.
type ring struct{ buf []int }

// grow is registered amortized growth: the hot-path traversal stops at the
// directive on the declaration, so the make below is not a finding.
//
//simlint:allow hotalloc — power-of-two doubling: amortized O(1) per push (fixture negative case)
func (r *ring) grow() {
	nb := make([]int, 2*len(r.buf)+64)
	copy(nb, r.buf)
	r.buf = nb
}

// Port mirrors a fabric port: OnEvent makes it a sim.Handler entry point.
type Port struct {
	el    *sim.EventList
	ring  ring
	count int
}

var _ sim.Handler = (*Port)(nil)

func (p *Port) OnEvent(arg uint64) { p.drain(int(arg)) }

func (p *Port) drain(n int) {
	for i := 0; i < n; i++ {
		p.deliver(i)
	}
	p.ring.grow()
}

// deliver allocates a fresh capturing closure per delivery, two calls below
// the entry point — invisible to any per-function check.
func (p *Port) deliver(i int) {
	fn := func() { // want "closure capture of captures i, p reachable from hotalloc\.Port\.OnEvent \(sim\.Handler event handler\) via hotalloc\.Port\.OnEvent -> hotalloc\.Port\.drain -> hotalloc\.Port\.deliver"
		p.count += i
	}
	fn()
}
