// Package callgraph exercises the graph construction itself: CHA interface
// dispatch, static edges, closure nodes, and panic-path suppression. The
// callgraph unit tests assert over this package's nodes and edges directly
// rather than through want comments.
package callgraph

import "fmt"

type Sink interface{ Handle(x int) }

type A struct{ n int }

type B struct{ buf []int }

func (a *A) Handle(x int) { a.n += x }

func (b *B) Handle(x int) { b.buf = append(b.buf, x) }

// Dispatch calls through the interface: CHA must edge to both A.Handle and
// B.Handle.
func Dispatch(s Sink) { s.Handle(1) }

// Chain is a static two-hop path to Dispatch.
func Chain(s Sink) { Dispatch(s) }

// MakeClosure captures y: a closure node, an EdgeClosure, and a
// closure-capture allocation site.
func MakeClosure(y int) func() int {
	return func() int { return y + 1 }
}

// PanicPath boxes its argument only inside a panic call: the site must be
// summarized as PanicOnly so hotalloc skips it.
func PanicPath(x int) {
	if x < 0 {
		panic(fmt.Sprintf("bad %d", x))
	}
}
