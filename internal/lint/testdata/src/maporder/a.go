// Fixture for the maporder analyzer: map iteration must be provably
// order-neutral in engine code.
package maporder

import (
	"sort"

	"ndp/internal/sim"
)

type sched struct{ el *sim.EventList }

// Scheduling an event per map entry leaks map order into event order.
func (s *sched) schedules(m map[int]uint64, h sim.Handler) {
	for k, v := range m { // want "map iteration calls Schedule inside the loop"
		s.el.Schedule(sim.Time(k), h, v)
	}
}

// Float accumulation in map order does not commute bit for bit.
func floatSum(m map[int64]float64) float64 {
	var total float64
	for _, p := range m { // want "accumulates floating point in map order"
		total += p
	}
	return total
}

// Appending in map order builds a randomly ordered slice.
func collect(m map[string]int) []string {
	var out []string
	for k := range m { // want "final value depends on visit order"
		out = append(out, k)
	}
	return out
}

// Writing a map under a key other than the range key resolves collisions in
// visit order.
func invert(m map[int]int) map[int]int {
	out := make(map[int]int, len(m))
	for k, v := range m { // want "key other than the range key"
		out[v] = k
	}
	return out
}

// Per-key map writes touch a distinct slot each iteration: order-neutral.
func snapshot(m map[uint64]int64) map[uint64]int64 {
	out := make(map[uint64]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Integer accumulation commutes exactly: order-neutral.
func total(m map[int]int64) (n int64) {
	for _, v := range m {
		n += v
	}
	return n
}

// Max tracking is order-neutral in fact but not provably so to the
// analyzer (a plain variable write inside the loop): conservative flag,
// resolved with a justified allow or sorted keys.
func maxVal(m map[int]int) int {
	best := 0
	for _, v := range m { // want "final value depends on visit order"
		if v > best {
			best = v
		}
	}
	return best
}

// The sorted-keys idiom needs a justified allow on the collection loop.
func sortedKeys(m map[string]int) []string {
	out := make([]string, 0, len(m))
	//simlint:allow maporder — keys are sorted immediately after collection
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
