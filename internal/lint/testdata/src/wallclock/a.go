// Fixture for the wallclock analyzer: real time stays out of simulation
// code unless each use carries a justified allow.
package wallclock

import (
	"math/rand" // want "global math/rand stream"
	"time"
)

func measures() time.Duration {
	start := time.Now() // want "wall clock time.Now"
	time.Sleep(1)       // want "wall clock time.Sleep"
	_ = rand.Int()
	return time.Since(start) // want "wall clock time.Since"
}

// Pure duration arithmetic is fine: no clock is read.
func arithmetic(d time.Duration) time.Duration {
	return d * 2
}

// Bench/daemon plumbing carries a per-line justification.
func allowed() time.Time {
	return time.Now() //simlint:allow wallclock — fixture: bench plumbing measures wall throughput
}
