// Fixture for the allowcheck analyzer: suppression directives must cite a
// known analyzer and carry a justification.
package allow

import "time"

func noReason() time.Time {
	return time.Now() //simlint:allow wallclock want "requires a justification"
}

func noSeparator() time.Time {
	return time.Now() //simlint:allow wallclock because reasons want "requires a justification"
}

func unknownAnalyzer() time.Time {
	return time.Now() //simlint:allow clockwork — justified thoroughly; want "unknown analyzer"
}

// A well-formed directive is not reported.
func wellFormed() time.Time {
	return time.Now() //simlint:allow wallclock — fixture: valid directive
}
