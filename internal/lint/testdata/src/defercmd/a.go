// Package defercmd exercises the deferred-command shape check: capturing
// closures and bound-method values handed to Cluster.Defer or PreRegister
// are findings; a closure cached once per slot at setup and a non-capturing
// literal are the value-shaped negative cases.
package defercmd

import (
	"ndp/internal/sim"
	"ndp/internal/topo"
)

type peer struct{ n int }

type slot struct {
	c    topo.Cluster
	flow uint64
	step func()
	p    peer
}

func (s *slot) bump() { s.p.n++ }

func (s *slot) consume(flow uint64) { s.flow = flow }

// setup caches the bound value once per slot: passing the field later is
// value-shaped, so it does not re-allocate per call.
func (s *slot) setup() { s.step = s.bump }

func (s *slot) start(at sim.Time) {
	flow := s.flow
	s.c.Defer(0, 1, at, func() { // want "Defer command is a capturing closure \(captures flow, s\)"
		s.consume(flow)
	})
	s.c.Defer(0, 1, at, s.bump) // want "Defer command is a bound-method value \(bump\)"
	s.c.Defer(0, 1, at, s.step) // cached field: value-shaped, no finding
	s.c.Defer(0, 1, at, func() {
		// Non-capturing literal: compiles to a static function, no finding.
	})
}

type stack struct{ n int }

func (st *stack) PreRegister(flow uint64, fn func()) { _ = fn }

func (s *slot) register(st *stack) {
	n := s.flow
	st.PreRegister(n, func() { s.consume(n) }) // want "PreRegister command is a capturing closure \(captures n, s\)"
}
