// Fixture for the arenapacket analyzer: packets come from the shard
// arenas, never from raw construction.
package arenapacket

import "ndp/internal/fabric"

func literal() *fabric.Packet {
	return &fabric.Packet{Flow: 1} // want "composite literal bypasses"
}

func viaNew() *fabric.Packet {
	return new(fabric.Packet) // want "new of fabric.Packet storage"
}

func slab() []fabric.Packet {
	return make([]fabric.Packet, 8) // want "make of fabric.Packet storage"
}

func valueDecl() int32 {
	var p fabric.Packet // want "value declaration bypasses"
	return p.Size
}

// Holding references to arena-owned packets mints no storage.
func holdRefs() []*fabric.Packet {
	return make([]*fabric.Packet, 8)
}

// Whole-struct resets reuse arena-owned storage (the arena's own recycle
// idiom when it escapes into other packages via helpers).
func reset(p *fabric.Packet) {
	*p = fabric.Packet{Flow: 2}
}

// The sanctioned path.
func fromArena(a *fabric.Arena) *fabric.Packet {
	return a.Get()
}

func allowed() *fabric.Packet {
	return &fabric.Packet{} //simlint:allow arenapacket — fixture: test scaffolding builds throwaway packets
}
