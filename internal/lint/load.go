package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// stdCache shares GOROOT type-check results across every Loader in the
// process. The standard library is immutable for the life of a run, and
// signature-only checking it from source costs about a second — paying
// that once per loader made the fixture tests and TestRepoClean re-check
// the same ~150 packages nine times over. All loaders therefore parse
// into one process-wide fileset (positions in a types.Package are only
// meaningful against the fileset that checked it) and consult this map
// before touching GOROOT.
var stdCache = struct {
	mu   sync.Mutex
	fset *token.FileSet
	pkgs map[string]*types.Package
}{
	fset: token.NewFileSet(),
	pkgs: map[string]*types.Package{},
}

// Package is one module package loaded for analysis: syntax plus full type
// information.
type Package struct {
	Path  string // import path ("ndp/internal/sim")
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks module packages from source. Standard
// library dependencies are type-checked from GOROOT source too —
// signatures only, bodies ignored — so the whole pipeline needs no
// compiled export data, no network, and no tools outside the stdlib.
type Loader struct {
	ModRoot string
	ModPath string
	// ExtraSrc, when set, is an analysistest-style source root: an import
	// path resolves to ExtraSrc/<path> when that directory exists, taking
	// priority over module and GOROOT packages. Fixture stubs live there.
	ExtraSrc string

	fset     *token.FileSet
	ctx      build.Context
	pkgs     map[string]*Package       // loaded module/fixture packages
	std      map[string]*types.Package // loaded stdlib packages
	checking map[string]bool           // import-cycle guard
}

// NewLoader returns a loader rooted at the module directory.
func NewLoader(modRoot string) (*Loader, error) {
	modPath, err := readModulePath(filepath.Join(modRoot, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// Pure-Go file selection: cgo variants of stdlib packages (net, ...)
	// need compiled C shims we neither have nor want; every cgo-using
	// package has a pure fallback under this setting.
	ctx.CgoEnabled = false
	return &Loader{
		ModRoot:  modRoot,
		ModPath:  modPath,
		fset:     stdCache.fset,
		ctx:      ctx,
		pkgs:     map[string]*Package{},
		std:      map[string]*types.Package{},
		checking: map[string]bool{},
	}, nil
}

// Fset returns the shared fileset positions of every loaded package.
func (l *Loader) Fset() *token.FileSet { return l.fset }

func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("no module line in %s", gomod)
}

// Match loads every module package matched by the go-style patterns
// ("./...", "./internal/...", "./cmd/simlint"), sorted by import path.
func (l *Loader) Match(patterns []string) ([]*Package, error) {
	dirs, err := l.moduleDirs()
	if err != nil {
		return nil, err
	}
	var paths []string
	for path := range dirs {
		for _, pat := range patterns {
			if matchPattern(l.ModPath, pat, path) {
				paths = append(paths, path)
				break
			}
		}
	}
	sort.Strings(paths)
	out := make([]*Package, 0, len(paths))
	for _, path := range paths {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// matchPattern implements the ./... subset of go's package patterns.
func matchPattern(modPath, pat, path string) bool {
	pat = strings.TrimPrefix(pat, "./")
	switch {
	case pat == "...", pat == "":
		return true
	case strings.HasSuffix(pat, "/..."):
		base := modPath + "/" + strings.TrimSuffix(pat, "/...")
		return path == base || strings.HasPrefix(path, base+"/")
	default:
		return path == modPath+"/"+pat || path == pat
	}
}

// moduleDirs maps every module import path to its directory: any directory
// under the module root holding at least one non-test .go file, skipping
// testdata and dot/underscore directories.
func (l *Loader) moduleDirs() (map[string]string, error) {
	dirs := map[string]string{}
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != l.ModRoot && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if len(l.sourceFiles(p)) == 0 {
			return nil
		}
		rel, err := filepath.Rel(l.ModRoot, p)
		if err != nil {
			return err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		dirs[path] = p
		return nil
	})
	return dirs, err
}

// sourceFiles lists the non-test .go files of dir, sorted.
func (l *Loader) sourceFiles(dir string) []string {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil
	}
	var out []string
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		out = append(out, filepath.Join(dir, name))
	}
	sort.Strings(out)
	return out
}

// load parses and fully type-checks one module/fixture package.
func (l *Loader) load(path string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.checking[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.checking[path] = true
	defer delete(l.checking, path)

	dir, err := l.dirFor(path)
	if err != nil {
		return nil, err
	}
	files := l.sourceFiles(dir)
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	var syntax []*ast.File
	for _, fname := range files {
		f, err := parser.ParseFile(l.fset, fname, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.fset, syntax, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: syntax, Types: tpkg, Info: info}
	l.pkgs[path] = pkg
	return pkg, nil
}

// dirFor resolves an import path to a directory: fixture root first, then
// the module tree.
func (l *Loader) dirFor(path string) (string, error) {
	if l.ExtraSrc != "" {
		if d := filepath.Join(l.ExtraSrc, filepath.FromSlash(path)); len(l.sourceFiles(d)) > 0 {
			return d, nil
		}
	}
	if path == l.ModPath {
		return l.ModRoot, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModPath+"/"); ok {
		return filepath.Join(l.ModRoot, filepath.FromSlash(rest)), nil
	}
	return "", fmt.Errorf("cannot resolve import %q (not in module %s)", path, l.ModPath)
}

// inModule reports whether the import path belongs to the module or the
// fixture root.
func (l *Loader) inModule(path string) bool {
	if l.ExtraSrc != "" {
		if d := filepath.Join(l.ExtraSrc, filepath.FromSlash(path)); len(l.sourceFiles(d)) > 0 {
			return true
		}
	}
	return path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")
}

// loaderImporter adapts the loader to go/types: module packages get the
// full treatment, the standard library is checked signatures-only.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, _ types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if l.inModule(path) {
		pkg, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	return l.loadStd(path, srcDir)
}

// loadStd type-checks a GOROOT package from source with function bodies
// ignored: consumers only need exported types, constants and signatures.
// srcDir seeds go/build's vendor resolution (net/http imports vendored
// golang.org/x/... packages relative to GOROOT/src).
func (l *Loader) loadStd(path, srcDir string) (*types.Package, error) {
	if pkg, ok := l.std[path]; ok {
		return pkg, nil
	}
	stdCache.mu.Lock()
	cached := stdCache.pkgs[path]
	stdCache.mu.Unlock()
	if cached != nil {
		l.std[path] = cached
		return cached, nil
	}
	key := path
	if l.checking["std:"+key] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.checking["std:"+key] = true
	defer delete(l.checking, "std:"+key)

	bp, err := l.ctx.Import(path, srcDir, 0)
	if err != nil {
		return nil, fmt.Errorf("resolving %q: %v", path, err)
	}
	var syntax []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(bp.Dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		syntax = append(syntax, f)
	}
	var typeErrs []error
	conf := types.Config{
		Importer:         &stdImporter{l: l, dir: bp.Dir},
		IgnoreFuncBodies: true,
		Error:            func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(bp.ImportPath, l.fset, syntax, nil)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("type-checking %s: %v", path, typeErrs[0])
	}
	tpkg.MarkComplete()
	// Cache under both the requested and the resolved path (vendored
	// packages answer to their short name), locally and process-wide.
	l.std[path] = tpkg
	l.std[bp.ImportPath] = tpkg
	stdCache.mu.Lock()
	stdCache.pkgs[path] = tpkg
	stdCache.pkgs[bp.ImportPath] = tpkg
	stdCache.mu.Unlock()
	return tpkg, nil
}

// stdImporter resolves a stdlib package's own imports relative to its
// directory, so GOROOT vendoring works.
type stdImporter struct {
	l   *Loader
	dir string
}

func (si *stdImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	return si.l.loadStd(path, si.dir)
}
