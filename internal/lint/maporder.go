package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// MapOrder flags `for range` over maps in engine code unless the loop body
// is provably order-neutral. Go randomizes map iteration order per run, so
// any map-ordered effect — an event scheduled per entry, a float summed in
// visit order, a slice appended to — forks goldens between runs and between
// shard layouts. The safe alternatives are iterating a sorted key slice or
// restricting the body to commutative updates.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags map iteration whose body is not provably order-neutral: anything that can " +
		"reach Schedule*/Defer, accumulate floats, append to a slice, or call out leaks the " +
		"randomized map order into event order or metric values; iterate sorted keys instead",
	Run: runMapOrder,
}

func runMapOrder(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := p.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, ok := t.Underlying().(*types.Map); !ok {
				return true
			}
			c := &mapBodyChecker{pass: p, key: rangeKeyObject(p, rs)}
			if reason := c.blockSafe(rs.Body); reason != "" {
				p.Reportf(rs.For, "map iteration %s; map order is randomized per run — iterate a sorted key slice, or justify with //simlint:allow maporder — <why order cannot leak>", reason)
			}
			return true
		})
	}
	return nil
}

// rangeKeyObject returns the object of the range key variable, when the
// statement declares or assigns one.
func rangeKeyObject(p *Pass, rs *ast.RangeStmt) types.Object {
	id, ok := rs.Key.(*ast.Ident)
	if !ok || id.Name == "_" {
		return nil
	}
	if obj := p.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return p.TypesInfo.Uses[id]
}

// mapBodyChecker decides whether a map-range body is order-neutral. The
// whitelist is deliberately small; anything it cannot prove commutative is
// unsafe and the returned reason says why.
type mapBodyChecker struct {
	pass *Pass
	key  types.Object // the range key variable; map writes must be keyed by it
}

func (c *mapBodyChecker) blockSafe(b *ast.BlockStmt) (reason string) {
	for _, s := range b.List {
		if r := c.stmtSafe(s); r != "" {
			return r
		}
	}
	return ""
}

func (c *mapBodyChecker) stmtSafe(s ast.Stmt) (reason string) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		return c.assignSafe(s)
	case *ast.IncDecStmt:
		if !isIntType(c.pass.TypesInfo.TypeOf(s.X)) {
			return "increments a non-integer in map order"
		}
		return c.exprsPure(s.X)
	case *ast.IfStmt:
		if s.Init != nil {
			if r := c.stmtSafe(s.Init); r != "" {
				return r
			}
		}
		if r := c.exprsPure(s.Cond); r != "" {
			return r
		}
		if r := c.blockSafe(s.Body); r != "" {
			return r
		}
		if s.Else != nil {
			switch e := s.Else.(type) {
			case *ast.BlockStmt:
				return c.blockSafe(e)
			case *ast.IfStmt:
				return c.stmtSafe(e)
			}
		}
		return ""
	case *ast.BlockStmt:
		return c.blockSafe(s)
	case *ast.ExprStmt:
		// Only delete(m, k) keyed by the range key is known commutative.
		if call, ok := s.X.(*ast.CallExpr); ok && isBuiltin(c.pass.TypesInfo, call, "delete") {
			if len(call.Args) == 2 && c.mentionsKey(call.Args[1]) {
				return c.exprsPure(call.Args...)
			}
			return "deletes under a key other than the range key"
		}
		if r := c.exprsPure(s.X); r != "" {
			return r
		}
		return "contains a statement the analyzer cannot prove order-neutral"
	case *ast.BranchStmt:
		if s.Tok == token.CONTINUE {
			return ""
		}
		return fmt.Sprintf("uses %v, so which entries run depends on visit order", s.Tok)
	case *ast.DeclStmt:
		// Local declarations with pure initializers are fine.
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return "declares in a way the analyzer cannot prove order-neutral"
		}
		for _, spec := range gd.Specs {
			if vs, ok := spec.(*ast.ValueSpec); ok {
				if r := c.exprsPure(vs.Values...); r != "" {
					return r
				}
			}
		}
		return ""
	default:
		return "contains a statement the analyzer cannot prove order-neutral"
	}
}

// assignSafe admits two commutative shapes: writes into a map slot keyed by
// the range key (each iteration touches a distinct slot), and integer
// accumulation with a commutative operator.
func (c *mapBodyChecker) assignSafe(s *ast.AssignStmt) (reason string) {
	switch s.Tok {
	case token.ASSIGN, token.DEFINE:
		for _, l := range s.Lhs {
			if id, ok := l.(*ast.Ident); ok && id.Name == "_" {
				continue
			}
			ix, ok := ast.Unparen(l).(*ast.IndexExpr)
			if !ok {
				return "writes a variable whose final value depends on visit order"
			}
			if bt := c.pass.TypesInfo.TypeOf(ix.X); bt == nil {
				return "writes a variable whose final value depends on visit order"
			} else if _, isMap := bt.Underlying().(*types.Map); !isMap {
				return "writes indexed storage the analyzer cannot prove per-key"
			}
			if !c.mentionsKey(ix.Index) {
				return "writes a map under a key other than the range key (collisions resolve in visit order)"
			}
			if r := c.exprsPure(ix.X, ix.Index); r != "" {
				return r
			}
		}
		return c.exprsPure(s.Rhs...)
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN, token.MUL_ASSIGN:
		if len(s.Lhs) != 1 {
			return "compound-assigns multiple values"
		}
		if !isIntType(c.pass.TypesInfo.TypeOf(s.Lhs[0])) {
			return "accumulates floating point in map order (float addition does not commute bit-for-bit)"
		}
		if r := c.exprsPure(s.Lhs[0]); r != "" {
			return r
		}
		return c.exprsPure(s.Rhs...)
	default:
		return fmt.Sprintf("uses %v, which is not order-neutral", s.Tok)
	}
}

// mentionsKey reports whether the range key variable appears in e.
func (c *mapBodyChecker) mentionsKey(e ast.Expr) bool {
	if c.key == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && c.pass.TypesInfo.Uses[id] == c.key {
			found = true
		}
		return !found
	})
	return found
}

// exprsPure rejects expressions with effects or order-sensitive calls: any
// call except len/cap/min/max and type conversions, channel receives, and
// closures are unsafe.
func (c *mapBodyChecker) exprsPure(exprs ...ast.Expr) (reason string) {
	for _, e := range exprs {
		if e == nil {
			continue
		}
		ast.Inspect(e, func(n ast.Node) bool {
			if reason != "" {
				return false
			}
			switch n := n.(type) {
			case *ast.CallExpr:
				if isBuiltin(c.pass.TypesInfo, n, "len", "cap", "min", "max") || isConversion(c.pass.TypesInfo, n) {
					return true
				}
				reason = "calls " + callName(n) + " inside the loop (effects may depend on visit order)"
				return false
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					reason = "receives from a channel inside the loop"
					return false
				}
			case *ast.FuncLit:
				reason = "builds a closure inside the loop"
				return false
			}
			return true
		})
		if reason != "" {
			return reason
		}
	}
	return ""
}

func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "a function"
}

func isIntType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
