package lint

import (
	"strings"
	"testing"
)

// graphOf builds the call graph over the callgraph fixture package.
func graphOf(t *testing.T) *CallGraph {
	t.Helper()
	pkg := loadFixture(t, "callgraph")
	return buildCallGraph([]*Package{pkg})
}

func nodeNamed(t *testing.T, g *CallGraph, name string) *FuncNode {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("call graph has no node %q; have %v", name, nodeNames(g))
	return nil
}

func nodeNames(g *CallGraph) []string {
	out := make([]string, len(g.Nodes))
	for i, n := range g.Nodes {
		out[i] = n.Name
	}
	return out
}

// TestCallGraphIfaceDispatch: a call through an interface resolves,
// CHA-style, to every concrete implementation in the program — in sorted
// (deterministic) order.
func TestCallGraphIfaceDispatch(t *testing.T) {
	g := graphOf(t)
	dispatch := nodeNamed(t, g, "callgraph.Dispatch")
	var targets []string
	for _, e := range dispatch.Edges {
		if e.Kind != EdgeIface {
			t.Errorf("Dispatch edge to %s has kind %d, want EdgeIface", e.Callee.Name, e.Kind)
		}
		targets = append(targets, e.Callee.Name)
	}
	want := "callgraph.A.Handle, callgraph.B.Handle"
	if got := strings.Join(targets, ", "); got != want {
		t.Errorf("Dispatch iface targets = %q, want %q", got, want)
	}
}

// TestCallGraphStaticEdge: a direct call resolves to its declared callee.
func TestCallGraphStaticEdge(t *testing.T) {
	g := graphOf(t)
	chain := nodeNamed(t, g, "callgraph.Chain")
	if len(chain.Edges) != 1 || chain.Edges[0].Kind != EdgeStatic ||
		chain.Edges[0].Callee.Name != "callgraph.Dispatch" {
		t.Errorf("Chain edges = %+v, want one static edge to callgraph.Dispatch", chain.Edges)
	}
}

// TestCallGraphClosure: a capturing literal becomes its own node, linked by
// an EdgeClosure, and its creation is a closure-capture allocation site
// naming the free variables.
func TestCallGraphClosure(t *testing.T) {
	g := graphOf(t)
	mk := nodeNamed(t, g, "callgraph.MakeClosure")
	if len(mk.Edges) != 1 || mk.Edges[0].Kind != EdgeClosure {
		t.Fatalf("MakeClosure edges = %+v, want one EdgeClosure", mk.Edges)
	}
	lit := mk.Edges[0].Callee
	if lit.Name != "callgraph.MakeClosure$1" {
		t.Errorf("literal node named %q, want callgraph.MakeClosure$1", lit.Name)
	}
	if len(lit.Captures) != 1 || lit.Captures[0] != "y" {
		t.Errorf("literal captures %v, want [y]", lit.Captures)
	}
	found := false
	for _, a := range mk.Allocs {
		if a.Kind == AllocClosure && strings.Contains(a.Desc, "y") {
			found = true
		}
	}
	if !found {
		t.Errorf("MakeClosure allocs = %+v, want a closure-capture site naming y", mk.Allocs)
	}
}

// TestCallGraphPanicOnly: allocation sites inside panic arguments are
// summarized as PanicOnly so hotalloc skips them.
func TestCallGraphPanicOnly(t *testing.T) {
	g := graphOf(t)
	pp := nodeNamed(t, g, "callgraph.PanicPath")
	if len(pp.Allocs) == 0 {
		t.Fatal("PanicPath has no summarized allocation sites; expected the Sprintf boxing")
	}
	for _, a := range pp.Allocs {
		if !a.PanicOnly {
			t.Errorf("PanicPath alloc %s of %s not marked PanicOnly", a.Kind, a.Desc)
		}
	}
}

// TestEntryPointRegistry: the hotalloc fixture's OnEvent method is detected
// as a sim.Handler entry point through the interface seam.
func TestEntryPointRegistry(t *testing.T) {
	pkg := loadFixture(t, "hotalloc")
	prog := BuildProgram([]*Package{pkg})
	var got []string
	for _, ep := range prog.Entries {
		got = append(got, ep.Node.Name+" ("+ep.Why+")")
	}
	want := "hotalloc.Port.OnEvent (sim.Handler event handler)"
	if len(got) != 1 || got[0] != want {
		t.Errorf("entry points = %v, want exactly [%s]", got, want)
	}
}
