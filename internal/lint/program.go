package lint

import (
	"fmt"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Program is the whole-program view the interprocedural analyzers run on:
// every analyzed package, the call graph over them, the hot-path entry
// points, and the per-package allow directives (which double as the
// amortized-function registry: a //simlint:allow hotalloc directive on a
// function declaration marks the whole function as an amortized-growth or
// setup barrier the hot-path traversal stops at).
type Program struct {
	Pkgs    []*Package
	Graph   *CallGraph
	Entries []EntryPoint

	allows map[*Package]*allowSet
	byFile map[string]*Package
}

// EntryPoint is one registered hot-path root: a function the engine runs
// per event, per packet, or per pooled flow object.
type EntryPoint struct {
	Node *FuncNode
	// Why names the registry rule that matched ("sim.Handler event
	// handler", "per-packet fabric.Sink", ...).
	Why string
}

// BuildProgram constructs the interprocedural view over the given
// packages. Callers choose the scope: the driver passes the engine
// packages, fixtures pass a single test package.
func BuildProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:   pkgs,
		Graph:  buildCallGraph(pkgs),
		allows: map[*Package]*allowSet{},
		byFile: map[string]*Package{},
	}
	for _, pkg := range pkgs {
		prog.allows[pkg] = parseAllowDirectives(pkg.Fset, pkg.Files)
		for _, f := range pkg.Files {
			prog.byFile[pkg.Fset.Position(f.Pos()).Filename] = pkg
		}
	}
	prog.Entries = findEntryPoints(prog)
	return prog
}

// pkgAt maps a diagnostic position back to its package (for allow
// filtering of program-level diagnostics).
func (prog *Program) pkgAt(fset *token.FileSet, pos token.Pos) *Package {
	return prog.byFile[fset.Position(pos).Filename]
}

// lookupIface finds a named interface type by import path and name,
// searching the analyzed packages and their transitive imports (fixture
// stubs resolve under the real import paths, so the same lookup serves
// both the engine and testdata).
func (prog *Program) lookupIface(path, name string) *types.Interface {
	seen := map[*types.Package]bool{}
	var find func(p *types.Package) *types.Interface
	find = func(p *types.Package) *types.Interface {
		if p == nil || seen[p] {
			return nil
		}
		seen[p] = true
		if p.Path() == path {
			if tn, ok := p.Scope().Lookup(name).(*types.TypeName); ok {
				if iface, ok := tn.Type().Underlying().(*types.Interface); ok {
					return iface
				}
			}
			return nil
		}
		for _, imp := range p.Imports() {
			if iface := find(imp); iface != nil {
				return iface
			}
		}
		return nil
	}
	for _, pkg := range prog.Pkgs {
		if iface := find(pkg.Types); iface != nil {
			return iface
		}
	}
	return nil
}

// findEntryPoints applies the hot-path registry to the call graph. The
// registry names the engine's steady-state surfaces:
//
//   - event handlers: OnEvent methods on types implementing sim.Handler —
//     everything the scheduler dispatches, including the port burst drain
//     (fabric.Port.OnEvent pops consecutive same-instant deliveries);
//   - per-packet paths: Receive methods implementing fabric.Sink, and the
//     Enqueue/Dequeue/Empty of fabric.Queue disciplines;
//   - the port transmit path: fabric.Port.Enqueue (and through it kick);
//   - pooled flow-state surfaces: Get/New*/Retire* on Arena and the
//     per-event-list pools, plus every recycle method — one flow's worth
//     of state must come from the pool, not the heap.
func findEntryPoints(prog *Program) []EntryPoint {
	handler := prog.lookupIface(simPkgPath, "Handler")
	sink := prog.lookupIface(fabricPkgPath, "Sink")
	queue := prog.lookupIface(fabricPkgPath, "Queue")

	var out []EntryPoint
	for _, n := range prog.Graph.Nodes {
		if n.Decl == nil || n.Obj == nil {
			continue
		}
		sig, ok := n.Obj.Type().(*types.Signature)
		if !ok || sig.Recv() == nil {
			continue
		}
		recv := sig.Recv().Type()
		name := n.Obj.Name()
		switch {
		case name == "OnEvent" && implementsIface(recv, handler):
			out = append(out, EntryPoint{n, "sim.Handler event handler"})
		case name == "Receive" && implementsIface(recv, sink):
			out = append(out, EntryPoint{n, "per-packet fabric.Sink"})
		case (name == "Enqueue" || name == "Dequeue") && implementsIface(recv, queue):
			out = append(out, EntryPoint{n, "fabric.Queue discipline"})
		case name == "Enqueue" && namedIn(recv, fabricPkgPath, "Port"):
			out = append(out, EntryPoint{n, "port transmit path"})
		case isPoolHotMethod(recv, name):
			out = append(out, EntryPoint{n, "flow-state pool surface"})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node.Name < out[j].Node.Name })
	return out
}

// implementsIface reports whether t (or *t) implements iface.
func implementsIface(t types.Type, iface *types.Interface) bool {
	if iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}

// isPoolHotMethod matches the pooled flow-state surfaces: methods on
// *Pool / *Arena types that hand out or take back state, and recycle
// methods anywhere (they re-initialize pooled objects in place).
func isPoolHotMethod(recv types.Type, name string) bool {
	if name == "recycle" {
		return true
	}
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	tn := named.Obj().Name()
	if tn != "Arena" && !strings.HasSuffix(tn, "Pool") {
		return false
	}
	switch {
	case name == "Get", name == "take", name == "put",
		strings.HasPrefix(name, "New"), strings.HasPrefix(name, "Retire"):
		return true
	}
	return false
}

// hotallocBarrier reports whether node is registered as an amortized-
// growth or setup function: its declaration (or the line above) carries a
// justified //simlint:allow hotalloc directive. The hot-path traversal
// stops at barriers and skips their allocation sites.
func (prog *Program) hotallocBarrier(node *FuncNode) bool {
	if node.Decl == nil {
		return false
	}
	allows := prog.allows[node.Pkg]
	if allows == nil {
		return false
	}
	m := allows.byAnalyzer["hotalloc"]
	if len(m) == 0 {
		return false
	}
	line := node.Pkg.Fset.Position(node.Decl.Pos()).Line
	if d, ok := m[line]; ok {
		d.used = true
		return true
	}
	return false
}

// ProgramPass carries one interprocedural analyzer's view of the program.
type ProgramPass struct {
	Analyzer *Analyzer
	Prog     *Program
	Fset     *token.FileSet

	diags []Diagnostic
}

// Reportf records a finding at pos, with an optional call chain.
func (p *ProgramPass) Reportf(pos token.Pos, chain []string, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// RunProgram applies the interprocedural analyzers to a built program,
// filters findings through each owning package's //simlint:allow
// directives, and returns the survivors sorted by position.
func RunProgram(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	if len(prog.Pkgs) == 0 {
		return nil, nil
	}
	fset := prog.Pkgs[0].Fset
	var out []Diagnostic
	for _, a := range analyzers {
		if a.RunProgram == nil {
			continue
		}
		pass := &ProgramPass{Analyzer: a, Prog: prog, Fset: fset}
		if err := a.RunProgram(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range pass.diags {
			pkg := prog.pkgAt(fset, d.Pos)
			if pkg != nil {
				if m := prog.allows[pkg].byAnalyzer[a.Name]; m != nil {
					if dir, ok := m[fset.Position(d.Pos).Line]; ok {
						dir.used = true
						continue
					}
				}
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}
