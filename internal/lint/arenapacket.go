package lint

import (
	"go/ast"
	"go/types"
)

// ArenaPacket keeps every packet inside the shard arenas. A packet built
// with &fabric.Packet{}, new(fabric.Packet), or value storage has no owner
// arena: freeing it corrupts nothing visibly, but the InUse leak counters
// the golden suite asserts on stop meaning anything, and a cross-shard
// handoff of an unowned packet breaks the transfer accounting. Only package
// fabric itself (the arena implementation) may touch raw Packet storage.
var ArenaPacket = &Analyzer{
	Name: "arenapacket",
	Doc: "flags fabric.Packet construction outside the arena — &fabric.Packet{}, " +
		"new(fabric.Packet), value declarations, or make of Packet slices — which bypasses " +
		"InUse leak accounting; allocate with arena.NewData/NewControl/Get",
	Run: runArenaPacket,
}

func runArenaPacket(p *Pass) error {
	if p.Pkg != nil && p.Pkg.Path() == fabricPkgPath {
		// The arena implementation owns raw Packet storage: slabs are carved
		// with make([]Packet, n) and recycled structs reset with *p =
		// Packet{...} stores.
		return nil
	}
	for _, f := range p.Files {
		// Whole-struct resets through a pointer (*p = fabric.Packet{...})
		// reuse arena-owned storage; collect those literals so the walk
		// below skips them.
		resets := map[*ast.CompositeLit]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, l := range as.Lhs {
				if _, ok := ast.Unparen(l).(*ast.StarExpr); !ok {
					continue
				}
				if cl, ok := ast.Unparen(as.Rhs[i]).(*ast.CompositeLit); ok {
					resets[cl] = true
				}
			}
			return true
		})

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if resets[n] {
					return true
				}
				if t := p.TypesInfo.TypeOf(n); t != nil && bareNamed(t, fabricPkgPath, "Packet") {
					p.Reportf(n.Pos(), "fabric.Packet composite literal bypasses the shard arena's InUse leak accounting; allocate with arena.NewData/NewControl/Get")
				}
			case *ast.CallExpr:
				if isBuiltin(p.TypesInfo, n, "new", "make") && len(n.Args) >= 1 {
					if t := p.TypesInfo.TypeOf(n.Args[0]); t != nil && packetValueStorage(t) {
						p.Reportf(n.Pos(), "%s of fabric.Packet storage bypasses the shard arena's InUse leak accounting; allocate with arena.NewData/NewControl/Get", callName(n))
					}
				}
			case *ast.ValueSpec:
				if n.Type != nil {
					if t := p.TypesInfo.TypeOf(n.Type); t != nil && bareNamed(t, fabricPkgPath, "Packet") {
						p.Reportf(n.Type.Pos(), "fabric.Packet value declaration bypasses the shard arena's InUse leak accounting; hold *fabric.Packet from arena.NewData/NewControl/Get")
					}
				}
			}
			return true
		})
	}
	return nil
}

// packetValueStorage reports whether t stores fabric.Packet values —
// Packet itself or slices/arrays of it. Slices of *Packet are fine: those
// hold references to arena-owned packets, they do not mint storage.
func packetValueStorage(t types.Type) bool {
	for {
		if bareNamed(t, fabricPkgPath, "Packet") {
			return true
		}
		switch u := t.Underlying().(type) {
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		default:
			return false
		}
	}
}
