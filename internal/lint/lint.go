// Package lint implements simlint, a suite of static analyzers that
// mechanically enforce the determinism and shard-safety invariants the
// simulation engine is built on:
//
//   - event order at equal timestamps is a pure function of (emitter uid,
//     emission seq), never of who scheduled first (keyedcut);
//   - randomness is component-local, derived via SplitSeed, never shared
//     or copied by value (sharedrand);
//   - virtual time is the only clock inside the engine; wall time lives in
//     the bench/daemon layers under annotated exemptions (wallclock);
//   - map iteration order never leaks into event order or floating-point
//     accumulation order (maporder);
//   - every packet comes from a shard arena so InUse leak accounting holds
//     (arenapacket).
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic — but is built on the standard library alone so that
// `go run ./cmd/simlint ./...` is reproducible from a fresh clone with no
// network and no module downloads.
//
// A finding can be suppressed with a justified directive on the flagged
// line or the line above:
//
//	//simlint:allow <analyzer> — <reason>
//
// The reason is mandatory; a directive without one is itself a diagnostic
// (allowcheck), so exemptions stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Per-package analyzers set Run and
// inspect one type-checked package at a time; interprocedural analyzers
// set RunProgram and see the whole program — packages, call graph, hot
// entry points — at once. Exactly one of the two is set.
type Analyzer struct {
	// Name identifies the analyzer in output and in //simlint:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is the human-readable description printed by `simlint -list`.
	// The first sentence is the summary.
	Doc string
	// Run performs the analysis over one package.
	Run func(*Pass) error
	// RunProgram performs the analysis over the whole program.
	RunProgram func(*ProgramPass) error
}

// Diagnostic is one finding, positioned in the analyzed package's fileset.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
	// Chain is the hot-path call chain from an entry point to the finding,
	// outermost first (interprocedural analyzers only).
	Chain []string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full catalog in stable order. allowcheck is part of
// the catalog so the suppression grammar is itself enforced. The first six
// are per-package; hotalloc, defercmd and shardown are the interprocedural
// v2 suite built on the call graph.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, WallClock, SharedRand, KeyedCut, ArenaPacket, AllowCheck, HotAlloc, DeferCmd, ShardOwn}
}

// ProgramAnalyzers returns the interprocedural subset of the catalog:
// analyzers that run once over the whole engine program rather than per
// package.
func ProgramAnalyzers() []*Analyzer {
	var out []*Analyzer
	for _, a := range Analyzers() {
		if a.RunProgram != nil {
			out = append(out, a)
		}
	}
	return out
}

// knownAnalyzers is the set of names a //simlint:allow directive may cite,
// knownAnalyzerList the same names in catalog order. Filled by init (not a
// var initializer) because AllowCheck consults them.
var (
	knownAnalyzers    = map[string]bool{}
	knownAnalyzerList []string
)

func init() {
	for _, a := range Analyzers() {
		knownAnalyzers[a.Name] = true
		knownAnalyzerList = append(knownAnalyzerList, a.Name)
	}
}

// enginePrefixes are the import paths whose code runs inside the virtual
// clock: every analyzer applies. Everything else (CLIs, the daemon, this
// package) is wall-clock land and gets only wallclock + allowcheck, with
// annotated exemptions where real time is the point.
var enginePrefixes = []string{
	"ndp",
	"ndp/scenario",
	"ndp/internal/sim",
	"ndp/internal/fabric",
	"ndp/internal/core",
	"ndp/internal/cp",
	"ndp/internal/tcp",
	"ndp/internal/dctcp",
	"ndp/internal/mptcp",
	"ndp/internal/phost",
	"ndp/internal/dcqcn",
	"ndp/internal/p4",
	"ndp/internal/hostmodel",
	"ndp/internal/topo",
	"ndp/internal/workload",
	"ndp/internal/harness",
	"ndp/internal/stats",
}

// EnginePackage reports whether importPath is simulation-engine code, where
// the full suite applies.
func EnginePackage(importPath string) bool {
	for _, p := range enginePrefixes {
		if importPath == p {
			return true
		}
	}
	return false
}

// AnalyzersFor returns the per-package analyzers that apply to a package:
// the whole per-package suite for engine packages, wallclock + allowcheck
// elsewhere. The interprocedural analyzers (ProgramAnalyzers) run once
// over the engine program, not per package.
func AnalyzersFor(importPath string) []*Analyzer {
	if EnginePackage(importPath) {
		var out []*Analyzer
		for _, a := range Analyzers() {
			if a.Run != nil {
				out = append(out, a)
			}
		}
		return out
	}
	return []*Analyzer{WallClock, AllowCheck}
}

// Run applies the given analyzers to one loaded package, filters findings
// through the package's //simlint:allow directives, and returns the
// survivors sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := parseAllowDirectives(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue // interprocedural; see RunProgram
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
		}
		out = append(out, allows.filter(pkg.Fset, a.Name, pass.diags)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ---------------------------------------------------------- type helpers ----

// namedIn reports whether t (after stripping one pointer) is the named type
// pkgPath.name, returning also whether a pointer was stripped.
func namedIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// bareNamed reports whether t is exactly the named (non-pointer) type
// pkgPath.name.
func bareNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeFunc resolves a call's callee to its types.Func, or nil (builtin,
// conversion, func-typed variable).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, names ...string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	for _, n := range names {
		if id.Name == n {
			return true
		}
	}
	return false
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
