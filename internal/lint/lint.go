// Package lint implements simlint, a suite of static analyzers that
// mechanically enforce the determinism and shard-safety invariants the
// simulation engine is built on:
//
//   - event order at equal timestamps is a pure function of (emitter uid,
//     emission seq), never of who scheduled first (keyedcut);
//   - randomness is component-local, derived via SplitSeed, never shared
//     or copied by value (sharedrand);
//   - virtual time is the only clock inside the engine; wall time lives in
//     the bench/daemon layers under annotated exemptions (wallclock);
//   - map iteration order never leaks into event order or floating-point
//     accumulation order (maporder);
//   - every packet comes from a shard arena so InUse leak accounting holds
//     (arenapacket).
//
// The framework mirrors golang.org/x/tools/go/analysis — Analyzer, Pass,
// Diagnostic — but is built on the standard library alone so that
// `go run ./cmd/simlint ./...` is reproducible from a fresh clone with no
// network and no module downloads.
//
// A finding can be suppressed with a justified directive on the flagged
// line or the line above:
//
//	//simlint:allow <analyzer> — <reason>
//
// The reason is mandatory; a directive without one is itself a diagnostic
// (allowcheck), so exemptions stay auditable.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Analyzer is one named invariant check. Run inspects a single type-checked
// package and reports findings through the Pass.
type Analyzer struct {
	// Name identifies the analyzer in output and in //simlint:allow
	// directives. Lowercase, no spaces.
	Name string
	// Doc is the human-readable description printed by `simlint -list`.
	// The first sentence is the summary.
	Doc string
	// Run performs the analysis over one package.
	Run func(*Pass) error
}

// Diagnostic is one finding, positioned in the analyzed package's fileset.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Analyzers returns the full catalog in stable order. allowcheck is part of
// the catalog so the suppression grammar is itself enforced.
func Analyzers() []*Analyzer {
	return []*Analyzer{MapOrder, WallClock, SharedRand, KeyedCut, ArenaPacket, AllowCheck}
}

// knownAnalyzers is the set of names a //simlint:allow directive may cite.
// Filled by init (not a var initializer) because AllowCheck consults it.
var knownAnalyzers = map[string]bool{}

func init() {
	for _, a := range Analyzers() {
		knownAnalyzers[a.Name] = true
	}
}

// enginePrefixes are the import paths whose code runs inside the virtual
// clock: every analyzer applies. Everything else (CLIs, the daemon, this
// package) is wall-clock land and gets only wallclock + allowcheck, with
// annotated exemptions where real time is the point.
var enginePrefixes = []string{
	"ndp",
	"ndp/scenario",
	"ndp/internal/sim",
	"ndp/internal/fabric",
	"ndp/internal/core",
	"ndp/internal/cp",
	"ndp/internal/tcp",
	"ndp/internal/dctcp",
	"ndp/internal/mptcp",
	"ndp/internal/phost",
	"ndp/internal/dcqcn",
	"ndp/internal/p4",
	"ndp/internal/hostmodel",
	"ndp/internal/topo",
	"ndp/internal/workload",
	"ndp/internal/harness",
	"ndp/internal/stats",
}

// EnginePackage reports whether importPath is simulation-engine code, where
// the full suite applies.
func EnginePackage(importPath string) bool {
	for _, p := range enginePrefixes {
		if importPath == p {
			return true
		}
	}
	return false
}

// AnalyzersFor returns the analyzers that apply to a package: the whole
// suite for engine packages, wallclock + allowcheck elsewhere.
func AnalyzersFor(importPath string) []*Analyzer {
	if EnginePackage(importPath) {
		return Analyzers()
	}
	return []*Analyzer{WallClock, AllowCheck}
}

// Run applies the given analyzers to one loaded package, filters findings
// through the package's //simlint:allow directives, and returns the
// survivors sorted by position.
func Run(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	allows := parseAllowDirectives(pkg.Fset, pkg.Files)
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", pkg.Path, a.Name, err)
		}
		out = append(out, allows.filter(pkg.Fset, a.Name, pass.diags)...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos != out[j].Pos {
			return out[i].Pos < out[j].Pos
		}
		return out[i].Analyzer < out[j].Analyzer
	})
	return out, nil
}

// ---------------------------------------------------------- type helpers ----

// namedIn reports whether t (after stripping one pointer) is the named type
// pkgPath.name, returning also whether a pointer was stripped.
func namedIn(t types.Type, pkgPath, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// bareNamed reports whether t is exactly the named (non-pointer) type
// pkgPath.name.
func bareNamed(t types.Type, pkgPath, name string) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// calleeFunc resolves a call's callee to its types.Func, or nil (builtin,
// conversion, func-typed variable).
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(info *types.Info, call *ast.CallExpr, names ...string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	if _, ok := info.Uses[id].(*types.Builtin); !ok {
		return false
	}
	for _, n := range names {
		if id.Name == n {
			return true
		}
	}
	return false
}

// isConversion reports whether the call is a type conversion.
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}
