package lint

import (
	"go/ast"
	"go/types"
)

const fabricPkgPath = "ndp/internal/fabric"

// KeyedCut guards the two places where equal-timestamp ordering and
// cross-shard lookahead are decided:
//
//   - Cross-shard mailbox deliveries (fabric.Inbox / fabric.CrossBox as the
//     event handler) must be scheduled with ScheduleKeyed and a canonical
//     DeliveryOrd/CommandOrd, never with plain Schedule* — FIFO tie-breaks
//     depend on who scheduled first, which differs between shard layouts.
//
//   - Cluster.Defer's delay must be derived from the topology
//     (MinPathDelay, LinkDelay), never a compile-time constant: a literal
//     below the shard pair's lookahead window silently delivers commands
//     into a window the conservative runner has already committed.
var KeyedCut = &Analyzer{
	Name: "keyedcut",
	Doc: "flags plain Schedule/ScheduleAfter/ScheduleCancelable calls that deliver to a " +
		"cross-shard mailbox (use ScheduleKeyed with DeliveryOrd/CommandOrd), and Defer " +
		"calls whose delay is a compile-time constant instead of deriving from " +
		"MinPathDelay/LinkDelay",
	Run: runKeyedCut,
}

func runKeyedCut(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn == nil {
				return true
			}
			switch fn.Name() {
			case "Defer":
				checkDefer(p, call, fn)
			case "Schedule", "ScheduleAfter", "ScheduleCancelable":
				checkPlainSchedule(p, call, fn)
			}
			return true
		})
	}
	return nil
}

// checkDefer matches the Cluster command channel's Defer(from, to int, at
// sim.Time, fn func()) shape and requires the delivery time to be computed,
// not constant.
func checkDefer(p *Pass, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 4 || len(call.Args) != 4 {
		return
	}
	if !namedIn(sig.Params().At(2).Type(), simPkgPath, "Time") {
		return
	}
	if _, isFunc := sig.Params().At(3).Type().Underlying().(*types.Signature); !isFunc {
		return
	}
	if tv, ok := p.TypesInfo.Types[call.Args[2]]; ok && tv.Value != nil {
		p.Reportf(call.Args[2].Pos(), "Defer delay is the compile-time constant %s: a literal can undercut the shard pair's lookahead window; derive it from Now() + MinPathDelay/LinkDelay", tv.Value)
	}
}

// checkPlainSchedule flags un-keyed scheduling of cross-shard mailbox
// handlers on the EventList.
func checkPlainSchedule(p *Pass, call *ast.CallExpr, fn *types.Func) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !namedIn(sig.Recv().Type(), simPkgPath, "EventList") {
		return
	}
	// Schedule(t, h, arg) / ScheduleAfter(d, h, arg) / ScheduleCancelable(t,
	// h, arg): the handler is the second argument.
	if len(call.Args) < 2 {
		return
	}
	h := call.Args[1]
	t := p.TypesInfo.TypeOf(h)
	if t == nil {
		return
	}
	if namedIn(t, fabricPkgPath, "Inbox") || namedIn(t, fabricPkgPath, "CrossBox") {
		p.Reportf(h.Pos(), "cross-shard mailbox scheduled with plain %s: equal-timestamp FIFO order depends on who scheduled first, which differs between shard layouts; use ScheduleKeyed with DeliveryOrd/CommandOrd", fn.Name())
	}
}
