package lint

import (
	"go/ast"
	"go/types"
)

const simPkgPath = "ndp/internal/sim"

// SharedRand enforces component-local randomness. A sim.Rand shared through
// package-level state is consumed in whatever order components happen to
// run — under sharding that order changes with the layout, forking goldens.
// A sim.Rand copied by value silently forks the stream instead: both copies
// replay the same numbers, correlating decisions that must be independent.
// The sanctioned pattern is one parent stream per domain, children derived
// with SplitSeed, held by pointer (or embedded and initialized in place
// with Init — embedding is fine; copying an initialized value is not).
var SharedRand = &Analyzer{
	Name: "sharedrand",
	Doc: "flags sim.Rand held in package-level state or copied by value (assignment, call " +
		"argument, return, composite literal, range value): shared streams make draw order " +
		"depend on the shard layout and value copies replay the stream; derive per-component " +
		"generators with SplitSeed and hold them by pointer",
	Run: runSharedRand,
}

func runSharedRand(p *Pass) error {
	info := p.TypesInfo
	for _, f := range p.Files {
		// Package-level state: any var whose type reaches a sim.Rand (by
		// value or pointer) is a stream shared across components.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj := info.Defs[name]
					if obj == nil {
						continue
					}
					if _, isVar := obj.(*types.Var); isVar && reachesRand(obj.Type(), map[types.Type]bool{}) {
						p.Reportf(name.Pos(), "package-level sim.Rand %s shares one stream across components, so draw order depends on the shard layout; derive per-component generators with SplitSeed", name.Name)
					}
				}
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					if len(n.Lhs) == len(n.Rhs) {
						if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
							continue
						}
					}
					if isRandValueCopy(info, rhs) {
						p.Reportf(rhs.Pos(), "sim.Rand copied by value: both copies replay the same stream; keep a pointer, or Init a fresh generator from SplitSeed")
					}
				}
			case *ast.CallExpr:
				for _, arg := range n.Args {
					if isRandValueCopy(info, arg) {
						p.Reportf(arg.Pos(), "sim.Rand passed by value forks the stream at the call boundary; pass *sim.Rand")
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if isRandValueCopy(info, res) {
						p.Reportf(res.Pos(), "sim.Rand returned by value forks the stream; return *sim.Rand")
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if isRandValueCopy(info, v) {
						p.Reportf(v.Pos(), "sim.Rand copied by value into a composite literal; store *sim.Rand or Init the field in place")
					}
				}
			case *ast.RangeStmt:
				if n.Value != nil {
					if t := info.TypeOf(n.Value); t != nil && bareNamed(t, simPkgPath, "Rand") {
						p.Reportf(n.Value.Pos(), "range copies each sim.Rand by value, so draws go to a throwaway replay of the stream; index the slice instead")
					}
				}
			case *ast.FuncDecl:
				checkRandSignature(p, n.Type)
			case *ast.FuncLit:
				checkRandSignature(p, n.Type)
			}
			return true
		})
	}
	return nil
}

// checkRandSignature flags bare sim.Rand parameters and results.
func checkRandSignature(p *Pass, ft *ast.FuncType) {
	flag := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			if t := p.TypesInfo.TypeOf(field.Type); t != nil && bareNamed(t, simPkgPath, "Rand") {
				p.Reportf(field.Type.Pos(), "sim.Rand %s by value forks the stream at every call; declare *sim.Rand", what)
			}
		}
	}
	flag(ft.Params, "parameter passes")
	if ft.Results != nil {
		flag(ft.Results, "result returns")
	}
}

// isRandValueCopy reports whether e evaluates to a bare sim.Rand value that
// copies existing generator state. A sim.Rand{} composite literal is fine:
// it is fresh zero state, not a forked stream (Init overwrites it anyway).
func isRandValueCopy(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || !tv.IsValue() {
		return false
	}
	if !bareNamed(tv.Type, simPkgPath, "Rand") {
		return false
	}
	_, isLit := ast.Unparen(e).(*ast.CompositeLit)
	return !isLit
}

// reachesRand reports whether t contains a sim.Rand (or pointer to one)
// anywhere in its structure.
func reachesRand(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if namedIn(t, simPkgPath, "Rand") {
		return true
	}
	switch u := t.Underlying().(type) {
	case *types.Pointer:
		return reachesRand(u.Elem(), seen)
	case *types.Slice:
		return reachesRand(u.Elem(), seen)
	case *types.Array:
		return reachesRand(u.Elem(), seen)
	case *types.Map:
		return reachesRand(u.Key(), seen) || reachesRand(u.Elem(), seen)
	case *types.Chan:
		return reachesRand(u.Elem(), seen)
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if reachesRand(u.Field(i).Type(), seen) {
				return true
			}
		}
	}
	return false
}
