package lint

import "strings"

// HotAlloc walks the call graph from every registered hot-path entry
// point — event handlers, per-packet sinks, queue disciplines, the port
// transmit path, pooled flow-state surfaces — and reports every
// allocation site reachable without passing through a registered
// amortized-growth or setup function. PR 6 bought the engine's 5×
// allocs/op reduction by hand; this analyzer is the gate that keeps it
// from eroding one innocent append at a time, and unlike the per-function
// checks it sees an allocation three calls below the handler.
//
// Amortized growth (chunked arena refills, power-of-two ring doubling,
// pool misses bounded by peak concurrency) is registered, not forbidden:
// a justified //simlint:allow hotalloc on the allocation line exempts the
// site, and the same directive on a function declaration registers the
// whole function as a barrier the traversal stops at.
var HotAlloc = &Analyzer{
	Name: "hotalloc",
	Doc: "flags allocation sites (make, append, closure capture, bound-method values, " +
		"interface boxing, new/&T{}) reachable from a hot-path entry point — OnEvent " +
		"handlers, fabric.Sink/Queue per-packet paths, pool surfaces — without passing " +
		"through a function registered as amortized growth or setup via a " +
		"//simlint:allow hotalloc directive on its declaration; diagnostics carry the " +
		"full call chain from the entry point",
	RunProgram: runHotAlloc,
}

func runHotAlloc(p *ProgramPass) error {
	prog := p.Prog
	type visit struct {
		node  *FuncNode
		chain []string
	}
	// One report per allocation site: the first (shortest, BFS) chain wins.
	reported := map[*FuncNode]bool{}

	for _, ep := range prog.Entries {
		if reported[ep.Node] || prog.hotallocBarrier(ep.Node) {
			continue
		}
		seen := map[*FuncNode]bool{ep.Node: true}
		queue := []visit{{ep.Node, []string{ep.Node.Name}}}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			if !reported[v.node] {
				reported[v.node] = true
				for _, site := range v.node.Allocs {
					if site.PanicOnly {
						continue
					}
					p.Reportf(site.Pos, v.chain,
						"hot-path allocation: %s of %s reachable from %s (%s) via %s; make it amortized and register the function or line with //simlint:allow hotalloc — <amortization argument>",
						site.Kind, site.Desc, ep.Node.Name, ep.Why, strings.Join(v.chain, " -> "))
				}
			}
			for _, e := range v.node.Edges {
				callee := e.Callee
				if seen[callee] || prog.hotallocBarrier(callee) {
					continue
				}
				seen[callee] = true
				chain := make([]string, len(v.chain), len(v.chain)+1)
				copy(chain, v.chain)
				queue = append(queue, visit{callee, append(chain, callee.Name)})
			}
		}
	}
	return nil
}
