package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// allowDirective is one parsed //simlint:allow comment.
type allowDirective struct {
	pos      token.Pos
	line     int    // line the comment sits on
	analyzer string // cited analyzer name ("" when malformed beyond repair)
	reason   string // justification after the separator ("" when missing)
	used     bool   // a diagnostic was suppressed by this directive
}

// allowSet indexes the well-formed directives of a package by analyzer and
// line, and keeps the malformed ones for AllowCheck to report.
type allowSet struct {
	// byAnalyzer[name] lists the lines covered by a justified directive: the
	// directive's own line and the line below it (so a directive may trail
	// the flagged statement or sit on its own line directly above).
	byAnalyzer map[string]map[int]*allowDirective
	malformed  []*allowDirective
	all        []*allowDirective
}

const allowPrefix = "simlint:allow"

// parseAllowDirectives scans every comment of the package for
// //simlint:allow directives. Grammar:
//
//	//simlint:allow <analyzer> — <reason>
//
// The separator may be an em-dash or "--". Directives missing the analyzer
// name, the separator, or a non-empty reason are collected as malformed and
// suppress nothing.
func parseAllowDirectives(fset *token.FileSet, files []*ast.File) *allowSet {
	s := &allowSet{byAnalyzer: map[string]map[int]*allowDirective{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//")
				if !ok {
					continue // /* */ comments cannot carry directives
				}
				text, ok = strings.CutPrefix(text, allowPrefix)
				if !ok {
					continue
				}
				d := &allowDirective{pos: c.Pos(), line: fset.Position(c.Pos()).Line}
				s.all = append(s.all, d)
				rest := strings.TrimSpace(text)
				name, reason, ok := cutSeparator(rest)
				if !ok {
					// No separator: the whole rest is at best a name.
					d.analyzer = firstField(rest)
					s.malformed = append(s.malformed, d)
					continue
				}
				d.analyzer = strings.TrimSpace(name)
				d.reason = strings.TrimSpace(reason)
				if d.analyzer == "" || strings.ContainsAny(d.analyzer, " \t") || d.reason == "" {
					s.malformed = append(s.malformed, d)
					continue
				}
				m := s.byAnalyzer[d.analyzer]
				if m == nil {
					m = map[int]*allowDirective{}
					s.byAnalyzer[d.analyzer] = m
				}
				// Later directives on the same line win; irrelevant in practice.
				m[d.line] = d
				if _, taken := m[d.line+1]; !taken {
					m[d.line+1] = d
				}
			}
		}
	}
	return s
}

// cutSeparator splits "name — reason" on the first em-dash or " -- ".
func cutSeparator(s string) (name, reason string, ok bool) {
	if i := strings.Index(s, "—"); i >= 0 {
		return s[:i], s[i+len("—"):], true
	}
	if i := strings.Index(s, " -- "); i >= 0 {
		return s[:i], s[i+4:], true
	}
	return "", "", false
}

// knownAnalyzerNames renders the catalog names in stable order for the
// unknown-analyzer diagnostic.
func knownAnalyzerNames() string { return strings.Join(knownAnalyzerList, ", ") }

func firstField(s string) string {
	if f := strings.Fields(s); len(f) > 0 {
		return f[0]
	}
	return ""
}

// filter drops diagnostics covered by a justified directive for the given
// analyzer and marks those directives used.
func (s *allowSet) filter(fset *token.FileSet, analyzer string, diags []Diagnostic) []Diagnostic {
	m := s.byAnalyzer[analyzer]
	if len(m) == 0 {
		return diags
	}
	var out []Diagnostic
	for _, d := range diags {
		if dir, ok := m[fset.Position(d.Pos).Line]; ok {
			dir.used = true
			continue
		}
		out = append(out, d)
	}
	return out
}

// AllowCheck enforces the suppression grammar itself: every directive must
// cite a known analyzer and give a justification. Without this, allows rot
// into unaudited blanket exemptions.
var AllowCheck = &Analyzer{
	Name: "allowcheck",
	Doc: "reports //simlint:allow directives that are missing the mandatory justification " +
		"(`//simlint:allow <analyzer> — <reason>`) or that cite an unknown analyzer; " +
		"malformed directives suppress nothing",
	Run: runAllowCheck,
}

func runAllowCheck(p *Pass) error {
	s := parseAllowDirectives(p.Fset, p.Files)
	for _, d := range s.malformed {
		p.Reportf(d.pos, "simlint:allow directive requires a justification: //simlint:allow <analyzer> — <reason>")
	}
	for _, d := range s.all {
		if d.reason != "" && d.analyzer != "" && !knownAnalyzers[d.analyzer] {
			p.Reportf(d.pos, "simlint:allow cites unknown analyzer %q (known: %s)", d.analyzer, knownAnalyzerNames())
		}
	}
	return nil
}
