package lint

import (
	"go/ast"
	"strconv"
)

// WallClock keeps real time out of the simulation. Inside the engine the
// only clock is the EventList's virtual now; a time.Now comparison, a
// wall-clock-derived seed, or the global math/rand stream makes results
// depend on the machine and the moment instead of (spec, seed). The bench
// harness, the daemon's job accounting, and the CLIs legitimately measure
// wall time — each such site carries an annotated allow, so the exemption
// is per-line and auditable, never per-package.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc: "flags time.Now/time.Since/time.Sleep calls and math/rand imports: wall time and " +
		"global RNG state have no place under the virtual clock; bench/daemon plumbing " +
		"annotates each use with //simlint:allow wallclock — <reason>",
	Run: runWallClock,
}

func runWallClock(p *Pass) error {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == "math/rand" || path == "math/rand/v2" {
				p.Reportf(imp.Pos(), "import of %s: the global math/rand stream is shared mutable state seeded off wall time; use a component-local sim.Rand derived via SplitSeed", path)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			switch fn.Name() {
			case "Now", "Since", "Sleep":
				p.Reportf(call.Pos(), "wall clock time.%s in simulation code: virtual time comes from the EventList; if this is bench/daemon plumbing, justify with //simlint:allow wallclock — <reason>", fn.Name())
			}
			return true
		})
	}
	return nil
}
