package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeferCmd flags func-valued closures handed to the cross-shard command
// channel: a capturing function literal (or a bound-method value, which
// allocates the same way) passed to Cluster.Defer or Stack.PreRegister.
//
// Every such closure is (a) one heap allocation per flow start — the last
// per-flow allocation PR 6 left standing — and (b) an opaque code pointer
// the planned distributed-shard wire encoding cannot serialize: a command
// that crosses a process boundary must be value-shaped (op code plus
// arguments), not a captured environment. The ROADMAP makes the encoding
// a prerequisite of running shards as separate processes; this analyzer
// keeps the inventory of sites that must convert, so the wire format
// lands against a known, justified set instead of an unbounded one.
var DeferCmd = &Analyzer{
	Name: "defercmd",
	Doc: "flags capturing function literals and bound-method values passed to " +
		"Cluster.Defer or Stack.PreRegister: deferred commands must become value-shaped " +
		"(op + arguments) before they can cross a process boundary, and each capturing " +
		"closure is a per-flow heap allocation; pass a cached field or a value command, " +
		"or justify with //simlint:allow defercmd",
	Run: runDeferCmd,
}

func runDeferCmd(p *Pass) error {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(p.TypesInfo, call)
			if fn == nil {
				return true
			}
			switch fn.Name() {
			case "Defer":
				if isDeferShape(fn) && len(call.Args) == 4 {
					checkCmdArg(p, "Defer", call.Args[3])
				}
			case "PreRegister":
				for _, arg := range call.Args {
					if t := p.TypesInfo.TypeOf(arg); t != nil {
						if _, isFunc := t.Underlying().(*types.Signature); isFunc {
							checkCmdArg(p, "PreRegister", arg)
						}
					}
				}
			}
			return true
		})
	}
	return nil
}

// isDeferShape matches the command channel's Defer(from, to int, at
// sim.Time, fn func()) signature (the same shape keyedcut keys on).
func isDeferShape(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() != 4 {
		return false
	}
	if !namedIn(sig.Params().At(2).Type(), simPkgPath, "Time") {
		return false
	}
	_, isFunc := sig.Params().At(3).Type().Underlying().(*types.Signature)
	return isFunc
}

// checkCmdArg reports a capturing literal or bound-method value used as a
// deferred command. Non-capturing literals compile to static functions
// and cached fields/variables are value-shaped already — both pass.
func checkCmdArg(p *Pass, what string, arg ast.Expr) {
	switch x := ast.Unparen(arg).(type) {
	case *ast.FuncLit:
		caps := freeVarsOf(p, x)
		if len(caps) == 0 {
			return
		}
		p.Reportf(arg.Pos(), "%s command is a capturing closure (captures %s): deferred commands must be value-shaped — an op code plus arguments, or a closure cached once per slot — before they can cross a process boundary, and each capture is a per-call heap allocation", what, strings.Join(caps, ", "))
	case *ast.SelectorExpr:
		if s := p.TypesInfo.Selections[x]; s != nil && s.Kind() == types.MethodVal {
			p.Reportf(arg.Pos(), "%s command is a bound-method value (%s): it allocates a closure per call; cache the bound value in a field at setup, or encode a value-shaped command", what, x.Sel.Name)
		}
	}
}

// freeVarsOf adapts the call-graph capture scan to a per-package pass.
func freeVarsOf(p *Pass, lit *ast.FuncLit) []string {
	pkg := &Package{Path: p.Pkg.Path(), Fset: p.Fset, Files: p.Files, Types: p.Pkg, Info: p.TypesInfo}
	return freeVars(pkg, lit)
}
