package lint

import (
	"path/filepath"
	"strings"
	"testing"
)

// TestCatalog pins the analyzer catalog: names, docs, uniqueness, and the
// allow-directive known-set staying in lockstep with it.
func TestCatalog(t *testing.T) {
	as := Analyzers()
	if len(as) != 9 {
		t.Fatalf("catalog has %d analyzers, want exactly 9", len(as))
	}
	seen := map[string]bool{}
	for _, a := range as {
		if a.Name == "" || a.Doc == "" {
			t.Errorf("analyzer %+v missing name or doc", a)
		}
		if (a.Run == nil) == (a.RunProgram == nil) {
			t.Errorf("analyzer %q must have exactly one of Run or RunProgram", a.Name)
		}
		if a.Name != strings.ToLower(a.Name) || strings.ContainsAny(a.Name, " \t") {
			t.Errorf("analyzer name %q must be lowercase with no spaces", a.Name)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if !knownAnalyzers[a.Name] {
			t.Errorf("analyzer %q missing from the allow-directive known-set", a.Name)
		}
	}
	for name := range knownAnalyzers {
		if !seen[name] {
			t.Errorf("known-set entry %q has no analyzer", name)
		}
	}
	for _, want := range []string{"maporder", "wallclock", "sharedrand", "keyedcut", "arenapacket", "allowcheck", "hotalloc", "defercmd", "shardown"} {
		if !seen[want] {
			t.Errorf("catalog is missing %q", want)
		}
	}
	progs := ProgramAnalyzers()
	if len(progs) != 1 || progs[0].Name != "hotalloc" {
		t.Errorf("program analyzers = %v, want exactly [hotalloc]", progs)
	}
}

// TestPolicy pins which packages get the full suite.
func TestPolicy(t *testing.T) {
	for _, p := range []string{"ndp", "ndp/scenario", "ndp/internal/sim", "ndp/internal/harness", "ndp/internal/dcqcn"} {
		if !EnginePackage(p) {
			t.Errorf("%s should be an engine package", p)
		}
		// Engine packages get every per-package analyzer; hotalloc is
		// whole-program and runs separately via RunProgram.
		if len(AnalyzersFor(p)) != len(Analyzers())-len(ProgramAnalyzers()) {
			t.Errorf("%s should get the full per-package suite", p)
		}
		for _, a := range AnalyzersFor(p) {
			if a.Run == nil {
				t.Errorf("AnalyzersFor(%s) returned program analyzer %q", p, a.Name)
			}
		}
	}
	for _, p := range []string{"ndp/cmd/ndpsim", "ndp/internal/simd", "ndp/internal/lint", "ndp/examples/quickstart"} {
		if EnginePackage(p) {
			t.Errorf("%s should not be an engine package", p)
		}
		names := map[string]bool{}
		for _, a := range AnalyzersFor(p) {
			names[a.Name] = true
		}
		if !names["wallclock"] || !names["allowcheck"] {
			t.Errorf("%s should still get wallclock+allowcheck, got %v", p, names)
		}
		if names["maporder"] {
			t.Errorf("%s should not get maporder", p)
		}
	}
}

// TestDirectiveParsing pins the suppression grammar.
func TestDirectiveParsing(t *testing.T) {
	cases := []struct {
		in           string
		name, reason string
		ok           bool
	}{
		{"maporder — keys sorted below", "maporder", "keys sorted below", true},
		{"maporder -- keys sorted below", "maporder", "keys sorted below", true},
		{"maporder", "", "", false},
		{"maporder —", "", "", false},
		{"— reason only", "", "", false},
		{"two words — reason", "", "", false},
	}
	for _, c := range cases {
		name, reason, ok := cutSeparator(c.in)
		name, reason = strings.TrimSpace(name), strings.TrimSpace(reason)
		wellFormed := ok && name != "" && !strings.ContainsAny(name, " \t") && reason != ""
		if wellFormed != c.ok {
			t.Errorf("directive %q: well-formed = %v, want %v", c.in, wellFormed, c.ok)
			continue
		}
		if c.ok && (name != c.name || reason != c.reason) {
			t.Errorf("directive %q: parsed (%q, %q), want (%q, %q)", c.in, name, reason, c.name, c.reason)
		}
	}
}

// TestMatchPattern pins the driver's package pattern subset.
func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pat, path string
		want      bool
	}{
		{"./...", "ndp", true},
		{"./...", "ndp/internal/sim", true},
		{"./internal/...", "ndp/internal/sim", true},
		{"./internal/...", "ndp/scenario", false},
		{"./scenario", "ndp/scenario", true},
		{"./scenario", "ndp/scenario/sub", false},
	}
	for _, c := range cases {
		if got := matchPattern("ndp", c.pat, c.path); got != c.want {
			t.Errorf("matchPattern(%q, %q) = %v, want %v", c.pat, c.path, got, c.want)
		}
	}
}

// TestRepoClean runs the full policy over the real module: the tree must
// stay free of determinism findings, so a violation fails `go test` even
// before the CI simlint step sees it.
func TestRepoClean(t *testing.T) {
	modRoot, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	loader, err := NewLoader(modRoot)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := loader.Match([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages, expected the whole module", len(pkgs))
	}
	var enginePkgs []*Package
	for _, pkg := range pkgs {
		diags, err := Run(pkg, AnalyzersFor(pkg.Path))
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			t.Errorf("%s:%d: %s (%s)", pos.Filename, pos.Line, d.Message, d.Analyzer)
		}
		if EnginePackage(pkg.Path) {
			enginePkgs = append(enginePkgs, pkg)
		}
	}
	// The interprocedural pass: the engine's hot paths must stay
	// allocation-free (or carry a justified //simlint:allow).
	prog := BuildProgram(enginePkgs)
	if len(prog.Entries) == 0 {
		t.Fatal("no hot-path entry points found in the engine")
	}
	diags, err := RunProgram(prog, ProgramAnalyzers())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		pos := enginePkgs[0].Fset.Position(d.Pos)
		t.Errorf("%s:%d: %s (%s)", pos.Filename, pos.Line, d.Message, d.Analyzer)
	}
}
