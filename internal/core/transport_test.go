package core

import (
	"testing"
	"testing/quick"

	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/topo"
)

// ndpNet builds a FatTree with NDP switch queues and an NDP stack on every
// host, all listening.
func ndpNet(k int, scfg SwitchConfig, ccfg Config) (*topo.FatTree, []*Stack) {
	cfg := topo.Config{Seed: 42}
	cfg.SwitchQueue = QueueFactory(scfg, 4242)
	net := topo.NewFatTree(k, cfg)
	WireBounce(net.Switches)
	stacks := make([]*Stack, net.NumHosts())
	for i, h := range net.Hosts {
		ccfg := ccfg
		ccfg.Seed = uint64(i) + 1
		stacks[i] = NewStack(h, func(dst int32) [][]int16 { return net.Paths(h.ID, dst) }, ccfg)
		stacks[i].Listen(nil)
	}
	return net, stacks
}

func TestSingleTransferCompletes(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	var fct sim.Time
	done := false
	st[0].Connect(st[15], 90_000, FlowOpts{OnReceiverDone: func(r *Receiver) {
		done = true
		fct = r.CompletedAt
		if r.Bytes() != 90_000 {
			t.Errorf("received %d bytes, want 90000", r.Bytes())
		}
	}})
	net.EL.RunUntil(50 * sim.Millisecond)
	if !done {
		t.Fatal("transfer did not complete")
	}
	// 10 packets of 9KB over 6 store-and-forward hops: first packet needs
	// ~46us, the rest pipeline behind it. Anything under ~200us is sane.
	if fct > 200*sim.Microsecond {
		t.Errorf("FCT = %v, too slow for an idle network", fct)
	}
}

func TestZeroRTTFirstPacket(t *testing.T) {
	// NDP has no handshake: data must arrive after exactly the one-way
	// path latency (6 hops x (7.2us + 500ns) for the first 9KB packet).
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	var firstArrival sim.Time
	st[0].Connect(st[15], 9000, FlowOpts{OnReceiverDone: func(r *Receiver) {
		firstArrival = r.FirstArrival
	}})
	net.EL.RunUntil(10 * sim.Millisecond)
	want := 6 * (7200*sim.Nanosecond + 500*sim.Nanosecond)
	if firstArrival != want {
		t.Errorf("first data arrived at %v, want %v (zero-RTT)", firstArrival, want)
	}
}

func TestConnectionFromAnyFirstWindowPacket(t *testing.T) {
	// Deliver packet seq=5 (SYN set, as all first-window packets) before
	// seq=0: receiver state must be created and the packet NACK/ACKed.
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	_ = net
	p := fabric.NewData(777, 15, 0, 5, 9000)
	p.Flags |= fabric.FlagSYN
	p.Sent = net.EL.Now()
	st[0].Host.Receive(p)
	net.EL.RunUntil(sim.Millisecond)
	r := st[0].Receiver(777)
	if r == nil {
		t.Fatal("no receiver created from out-of-order first-window packet")
	}
	if r.Bytes() != 9000 {
		t.Errorf("receiver bytes = %d, want 9000", r.Bytes())
	}
}

func TestNonSYNUnknownPacketRejected(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	p := fabric.NewData(888, 15, 0, 40, 9000) // beyond IW: no SYN
	st[0].Host.Receive(p)
	net.EL.RunUntil(sim.Millisecond)
	if st[0].Receiver(888) != nil {
		t.Fatal("receiver created from packet without SYN")
	}
}

func TestTimeWaitRejectsDuplicateConnection(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	st[0].Connect(st[15], 9000, FlowOpts{Flow: 555})
	net.EL.RunUntil(200 * sim.Microsecond) // transfer done, still within MSL
	if got := st[15].DupRejected; got != 0 {
		t.Fatalf("unexpected rejections before duplicate: %d", got)
	}
	// Simulate a duplicate connection attempt with the same id arriving
	// within the MSL. The receiver side must reject it (at-most-once).
	st[15].demux.Unregister(555) // original receiver state closed
	dup := fabric.NewData(555, 0, 15, 0, 9000)
	dup.Flags |= fabric.FlagSYN
	st[15].Host.Receive(dup)
	net.EL.RunUntil(300 * sim.Microsecond)
	if st[15].DupRejected != 1 {
		t.Errorf("duplicate connection not rejected (DupRejected=%d)", st[15].DupRejected)
	}
}

// Figure 3: nine senders push their first windows simultaneously through a
// ToR with an 8-packet queue. Overflow packets are trimmed; each NACK must
// elicit a retransmission that arrives long before an RTO would fire, so
// the receiver's link stays busy and the incast completes near the
// lossless-equivalent time.
func TestFig3TrimNackRetransmitBeforeDrain(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	// Receiver host 0; senders 1..9 (mix of racks/pods), 3 packets each so
	// the converging burst exceeds the 8-packet queue.
	dones := 0
	var last sim.Time
	for i := 1; i <= 9; i++ {
		st[i].Connect(st[0], 27_000, FlowOpts{OnReceiverDone: func(r *Receiver) {
			dones++
			if r.CompletedAt > last {
				last = r.CompletedAt
			}
		}})
	}
	net.EL.RunUntil(20 * sim.Millisecond)
	if dones != 9 {
		t.Fatalf("only %d/9 transfers completed", dones)
	}
	// Lossless-equivalent bound: the last-hop link must serialize 27 x 9KB
	// = 194us; allow modest slack for the staggered start and the
	// retransmissions' fresh traversals, but far less than an RTO (1ms).
	if last > 500*sim.Microsecond {
		t.Errorf("last arrival %v: retransmissions did not happen promptly", last)
	}
	stats := net.CollectStats()
	if stats.Trims == 0 {
		t.Error("expected at least one trim in a 9-into-8-queue incast")
	}
	if stats.Drops != 0 {
		t.Errorf("NDP should be lossless for metadata here; %d drops", stats.Drops)
	}
}

func TestIncast50to1(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	// 15 senders (all other hosts) x 90KB to host 0, plus repeat senders to
	// stress: use 45 flows total, 3 per sender.
	const flowSize = 90_000
	total := 0
	var last sim.Time
	for rep := 0; rep < 3; rep++ {
		for i := 1; i < 16; i++ {
			st[i].Connect(st[0], flowSize, FlowOpts{OnReceiverDone: func(r *Receiver) {
				total++
				if r.CompletedAt > last {
					last = r.CompletedAt
				}
			}})
		}
	}
	net.EL.RunUntil(100 * sim.Millisecond)
	if total != 45 {
		t.Fatalf("%d/45 incast flows completed", total)
	}
	// Optimal: 45 x 90KB = 4.05MB at 10Gb/s = 3.24ms. Allow 25% overhead.
	optimal := sim.FromSeconds(45 * flowSize * 8 / 10e9)
	if last > optimal*5/4 {
		t.Errorf("incast completion %v, optimal %v: overhead too high", last, optimal)
	}
	if net.CollectStats().Drops != 0 {
		t.Errorf("drops = %d, want 0 (metadata lossless)", net.CollectStats().Drops)
	}
}

func TestReceiverPrioritization(t *testing.T) {
	run := func(prio bool) sim.Time {
		net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
		var fct sim.Time
		// Six long flows to host 0.
		for i := 1; i <= 6; i++ {
			st[i].Connect(st[0], 1_800_000, FlowOpts{})
		}
		// One short flow, possibly prioritized.
		st[7].Connect(st[0], 200_000, FlowOpts{
			Priority:       prio,
			OnReceiverDone: func(r *Receiver) { fct = r.CompletedAt },
		})
		net.EL.RunUntil(50 * sim.Millisecond)
		if fct == 0 {
			t.Fatalf("short flow (prio=%v) did not complete", prio)
		}
		return fct
	}
	with := run(true)
	without := run(false)
	if with >= without {
		t.Errorf("prioritized FCT %v not better than unprioritized %v", with, without)
	}
	// Paper: priority brings the short flow within ~50us of idle; without
	// priority it is hundreds of microseconds slower.
	if without-with < 100*sim.Microsecond {
		t.Errorf("prioritization gain only %v", without-with)
	}
}

func TestFairSharingTwoSenders(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	const size = 1_800_000 // 200 packets each
	var fcts []sim.Time
	for _, src := range []int{1, 2} {
		st[src].Connect(st[0], size, FlowOpts{OnReceiverDone: func(r *Receiver) {
			fcts = append(fcts, r.CompletedAt)
		}})
	}
	net.EL.RunUntil(50 * sim.Millisecond)
	if len(fcts) != 2 {
		t.Fatalf("%d/2 flows completed", len(fcts))
	}
	// Fair sharing: both finish within ~10% of each other.
	a, b := fcts[0], fcts[1]
	if a > b {
		a, b = b, a
	}
	if float64(b-a) > 0.1*float64(b) {
		t.Errorf("unfair completion: %v vs %v", fcts[0], fcts[1])
	}
}

func TestPullPacingMatchesLinkRate(t *testing.T) {
	// A single large flow: after the first window, data packets must
	// arrive at the receiver roughly one per MTU serialization time.
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	var arrivals []sim.Time
	r0 := st[0]
	orig := r0.Host.Stack
	r0.Host.Stack = fabric.SinkFunc(func(p *fabric.Packet) {
		if p.Type == fabric.Data && !p.Trimmed() {
			arrivals = append(arrivals, net.EL.Now())
		}
		orig.Receive(p)
	})
	st[15].Connect(st[0], 1_800_000, FlowOpts{})
	net.EL.RunUntil(50 * sim.Millisecond)
	if len(arrivals) < 100 {
		t.Fatalf("only %d data arrivals", len(arrivals))
	}
	// Steady state (skip the pushed first window): inter-arrival close to
	// 7.2us (the 9064B pull spacing gives ~7.25us).
	var sum sim.Time
	n := 0
	for i := 50; i < len(arrivals); i++ {
		sum += arrivals[i] - arrivals[i-1]
		n++
	}
	mean := sum / sim.Time(n)
	if mean < 7*sim.Microsecond || mean > 8*sim.Microsecond {
		t.Errorf("mean inter-arrival %v, want ~7.2-7.3us", mean)
	}
}

func TestBounceRecoveryUnderExtremeIncast(t *testing.T) {
	// Tiny header queues force return-to-sender; the transfer must still
	// complete without waiting for RTOs in the common case.
	scfg := DefaultSwitchConfig(9000)
	scfg.HeaderCapBytes = 8 * fabric.HeaderSize
	net, st := ndpNet(4, scfg, DefaultConfig())
	done := 0
	for i := 1; i < 16; i++ {
		st[i].Connect(st[0], 270_000, FlowOpts{OnReceiverDone: func(r *Receiver) { done++ }})
	}
	net.EL.RunUntil(200 * sim.Millisecond)
	if done != 15 {
		t.Fatalf("%d/15 flows completed under bounce pressure", done)
	}
	var bounces int64
	for i := 1; i < 16; i++ {
		for _, s := range st[i].senders {
			bounces += s.BouncesSeen
		}
	}
	if bounces == 0 {
		t.Error("expected return-to-sender events with 8-header queues")
	}
}

func TestRTOBackstopWhenBounceDisabled(t *testing.T) {
	scfg := DefaultSwitchConfig(9000)
	scfg.HeaderCapBytes = 4 * fabric.HeaderSize
	scfg.DisableBounce = true // headers beyond 4 are silently lost
	net, st := ndpNet(4, scfg, DefaultConfig())
	done := 0
	for i := 1; i < 16; i++ {
		st[i].Connect(st[0], 90_000, FlowOpts{OnReceiverDone: func(r *Receiver) { done++ }})
	}
	net.EL.RunUntil(500 * sim.Millisecond)
	if done != 15 {
		t.Fatalf("%d/15 flows completed; RTO backstop failed", done)
	}
	var timeouts int64
	for i := 1; i < 16; i++ {
		for _, s := range st[i].senders {
			timeouts += s.RtxFromTimeout
		}
	}
	if timeouts == 0 {
		t.Error("expected RTO retransmissions with bounce disabled and tiny header queues")
	}
}

func TestZeroByteTransfer(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	done := false
	st[0].Connect(st[15], 0, FlowOpts{OnReceiverDone: func(r *Receiver) { done = true }})
	net.EL.RunUntil(10 * sim.Millisecond)
	if !done {
		t.Fatal("zero-byte transfer (bare FIN) did not complete")
	}
}

// Property: transfers of arbitrary sizes deliver exactly the right number of
// bytes, for single flows and small incasts.
func TestTransferSizesProperty(t *testing.T) {
	prop := func(sizeRaw uint32, senders uint8) bool {
		size := int64(sizeRaw%500_000) + 1
		n := int(senders%5) + 1
		net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
		done := 0
		ok := true
		for i := 1; i <= n; i++ {
			st[i].Connect(st[0], size, FlowOpts{OnReceiverDone: func(r *Receiver) {
				done++
				if r.Bytes() != size {
					ok = false
				}
			}})
		}
		net.EL.RunUntil(500 * sim.Millisecond)
		return ok && done == n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestSenderCompletionAndTelemetry(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	var snd *Sender
	sDone := false
	snd = st[0].Connect(st[15], 45_000, FlowOpts{OnSenderDone: func(s *Sender) { sDone = true }})
	net.EL.RunUntil(10 * sim.Millisecond)
	if !sDone || !snd.Complete() {
		t.Fatal("sender did not complete")
	}
	if snd.AckedBytes() != 45_000 {
		t.Errorf("acked bytes = %d, want 45000", snd.AckedBytes())
	}
	if snd.TotalPackets() != 5 {
		t.Errorf("total packets = %d, want 5", snd.TotalPackets())
	}
	if snd.PacketsSent < 5 {
		t.Errorf("packets sent = %d, want >= 5", snd.PacketsSent)
	}
}

func TestUnboundedFlowKeepsStreaming(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	s := st[0].Connect(st[15], -1, FlowOpts{})
	net.EL.RunUntil(10 * sim.Millisecond)
	// 10ms at ~10Gb/s is ~12.5MB; require at least 80% of line rate.
	if s.AckedBytes() < 10_000_000 {
		t.Errorf("unbounded flow acked only %d bytes in 10ms", s.AckedBytes())
	}
	if s.Complete() {
		t.Error("unbounded flow must never complete")
	}
}
