package core

import (
	"fmt"
	"sync/atomic"

	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// Config parameterizes the NDP endpoint protocol. The zero value plus
// DefaultConfig's fill-ins match the paper's defaults.
type Config struct {
	// MTU is the maximum data packet size in bytes (paper default 9000).
	MTU int
	// IW is the initial window in packets: the amount pushed at line rate
	// in the first RTT before the protocol becomes receiver-driven
	// (paper default 30).
	IW int
	// RTO is the retransmission timeout, the backstop for corrupted or
	// doubly-bounced packets. With small queues the worst-case RTT is
	// ~400us, so 1ms is safe (§3.2.4).
	RTO sim.Time
	// PullSpacing is the interval between PULL packets from one receiver.
	// Zero derives it from the NIC rate so that pulled data arrives just
	// under line rate (MTU+header serialization time).
	PullSpacing sim.Time
	// PullJitter, when set, adds a sample to each pull gap — the empirical
	// imperfect-pacing model of Figures 12/13.
	PullJitter func(r *sim.Rand) sim.Time
	// RxDelay is a per-packet host processing delay applied before the
	// stack handles an arrival, modeling the endpoint costs the paper
	// measures on its DPDK testbed (Figure 11).
	RxDelay sim.Time
	// DisablePathPenalty turns off the path scoreboard of §3.2.3
	// (the "NDP without path penalty" line of Figure 22).
	DisablePathPenalty bool
	// SwitchLB makes senders emit destination-routed packets so switches
	// perform per-packet random ECMP instead of sender-chosen paths — the
	// source-vs-switch load-balancing ablation of §3.1.1 and §3.2.4.
	SwitchLB bool
	// PullFIFO serves the pull queue in strict arrival order instead of
	// round-robin fair queuing across connections — the ablation for the
	// receiver-fairness claims (§3.2's fair pull queue, Figure 21).
	PullFIFO bool
	// Seed perturbs the per-stack RNG (path permutations, control routing).
	Seed uint64
}

// DefaultConfig returns the paper's endpoint parameters.
func DefaultConfig() Config {
	return Config{MTU: 9000, IW: 30, RTO: sim.Millisecond}
}

func (c Config) withDefaults() Config {
	if c.MTU == 0 {
		c.MTU = 9000
	}
	if c.IW == 0 {
		c.IW = 30
	}
	if c.RTO == 0 {
		c.RTO = sim.Millisecond
	}
	return c
}

// PathsFunc enumerates source routes from this stack's host to a
// destination host; topologies provide it (e.g. (*topo.FatTree).Paths).
type PathsFunc func(dst int32) [][]int16

// Stack is the per-host NDP endpoint: it owns the host's flow demultiplexer,
// the single shared pull pacer ("a receiver only has one pull queue, shared
// by all connections for which it is the receiver"), time-wait state for
// at-most-once connection semantics, and the listen hook that instantiates
// receiver state from whichever first-window packet arrives first.
type Stack struct {
	Host *fabric.Host

	cfg     Config
	el      *sim.EventList
	arena   *fabric.Arena
	pathsTo PathsFunc
	// rand, demux and pacer live inside the stack (one allocation for all
	// four objects); code passes &st.rand etc. where a pointer is needed.
	rand  sim.Rand
	demux fabric.Demux
	pacer pullPacer

	// rxq holds packets inside the RxDelay processing window, in arrival
	// order (the delay is constant, so release order is FIFO). Consumed via
	// rxqHead, reset when drained, so the buffer's capacity is reusable.
	rxq     []*fabric.Packet
	rxqHead int

	listening  bool
	onComplete func(*Receiver)
	prioFlows  map[uint64]bool
	// flowObs holds per-flow observers installed by PreRegister — one map
	// (and so one insert, lookup and delete per flow) for all three hooks.
	flowObs map[uint64]flowObs

	// timeWait records recently-closed/seen flow ids with their expiry so
	// duplicate connections are rejected (at-most-once, §3.2.2). The
	// maximum segment lifetime in a datacenter is under 1ms, so entries
	// are short-lived.
	timeWait    map[uint64]sim.Time
	msl         sim.Time
	DupRejected int64

	senders   map[uint64]*Sender
	receivers map[uint64]*Receiver

	// retiredS/retiredR are FIFO free-lists of completed flow state whose
	// slice-backed per-packet arrays (and pull-queue entries) later flows
	// reuse. A retired object is only taken once quiescent: at least two
	// maximum segment lifetimes past its completion — by the same
	// datacenter-MSL argument that bounds time-wait (§3.2.2), no packet
	// for the flow can still exist in the network — with its timer
	// disarmed and its pull entry drained. Until then the old flow stays
	// registered, so late duplicates and stale headers are handled
	// exactly as before pooling existed. Closed-loop workloads (the rpc
	// scenario starts thousands of short flows per host) were allocating
	// a full Sender/Receiver pair plus packet-state arrays per StartFlow.
	// Consumed via head indexes (reset when drained) so popping never
	// strands buffer capacity.
	retiredS     []*Sender
	retiredSHead int
	retiredR     []*Receiver
	retiredRHead int
}

// NewStack installs an NDP endpoint on a host. pathsTo must enumerate source
// routes toward any peer the host will talk to.
func NewStack(host *fabric.Host, pathsTo PathsFunc, cfg Config) *Stack {
	cfg = cfg.withDefaults()
	st := &Stack{
		Host:      host,
		cfg:       cfg,
		el:        host.EventList(),
		arena:     fabric.AttachArena(host.EventList()),
		pathsTo:   pathsTo,
		prioFlows: make(map[uint64]bool),
		flowObs:   make(map[uint64]flowObs),
		// Reclaimed flow ids park in timeWait forever, so the map only
		// ever grows; presizing skips its incremental bucket doublings.
		timeWait:  make(map[uint64]sim.Time, 64),
		retiredS:  make([]*Sender, 0, 64),
		retiredR:  make([]*Receiver, 0, 64),
		msl:       sim.Millisecond,
		senders:   make(map[uint64]*Sender),
		receivers: make(map[uint64]*Receiver),
	}
	spacing := cfg.PullSpacing
	if spacing == 0 {
		// Pace pulls so the elicited data arrives marginally below line
		// rate (~1.5% slack). Exactly line rate would leave the last-hop
		// queue wherever the first-RTT burst put it — often full — and
		// then path-length jitter re-trims pulled retransmissions; a
		// little slack drains the queue between pulls.
		spacing = sim.TransmissionTime(cfg.MTU+2*fabric.HeaderSize, host.LinkRate())
	}
	st.rand.Init(cfg.Seed ^ (uint64(host.ID)+1)*0x9e3779b97f4a7c15)
	st.demux.Init()
	st.pacer.init(st, spacing)
	if cfg.RxDelay > 0 {
		host.Stack = fabric.SinkFunc(st.delayRx)
	} else {
		host.Stack = &st.demux
	}
	st.demux.Listen = st.listen
	return st
}

// delayRx defers an arriving packet by the configured host processing delay
// (the Figure 11 endpoint model). The delay is constant, so deferred
// packets release in arrival order: a FIFO of the in-delay packets plus one
// typed event per arrival replaces a closure per packet.
func (st *Stack) delayRx(p *fabric.Packet) {
	st.rxq = append(st.rxq, p)
	st.el.ScheduleAfter(st.cfg.RxDelay, st, 0)
}

// OnEvent releases the oldest delayed arrival into the demux (sim.Handler).
func (st *Stack) OnEvent(uint64) {
	p := st.rxq[st.rxqHead]
	st.rxq[st.rxqHead] = nil
	st.rxqHead++
	if st.rxqHead == len(st.rxq) {
		st.rxq, st.rxqHead = st.rxq[:0], 0
	}
	st.demux.Receive(p)
}

// Close frees packets the stack still holds — arrivals parked inside the
// RxDelay processing window. Teardown only; idempotent.
func (st *Stack) Close() {
	for i := st.rxqHead; i < len(st.rxq); i++ {
		fabric.Free(st.rxq[i])
		st.rxq[i] = nil
	}
	st.rxq, st.rxqHead = st.rxq[:0], 0
}

// Config returns the stack's effective configuration.
func (st *Stack) Config() Config { return st.cfg }

// Listen accepts incoming connections; onComplete (may be nil) fires when a
// receiver has all its data.
func (st *Stack) Listen(onComplete func(*Receiver)) {
	st.listening = true
	st.onComplete = onComplete
}

// SetPriority marks a flow for strict-priority pulling at this receiver
// ("the receiver knows its own priorities, and can pull high priority
// traffic more often than low priority traffic").
func (st *Stack) SetPriority(flow uint64) { st.prioFlows[flow] = true }

// listen is the demux hook: it creates receiver state for an unknown flow,
// but only from packets that carry the SYN flag (every packet of the first
// window does) and only if the flow id is not in time-wait.
func (st *Stack) listen(p *fabric.Packet) fabric.Sink {
	if !st.listening || p.Flags&fabric.FlagSYN == 0 {
		return nil
	}
	if p.Type != fabric.Data {
		return nil
	}
	if exp, ok := st.timeWait[p.Flow]; ok && st.el.Now() < exp {
		st.DupRejected++
		return nil
	}
	r := newReceiver(st, p.Flow, p.Src)
	obs := st.flowObs[p.Flow]
	if obs.done != nil {
		r.OnComplete = obs.done
	} else {
		r.OnComplete = st.onComplete
	}
	r.OnCompleteAt = obs.doneAt
	r.OnData = obs.data
	st.receivers[p.Flow] = r
	return r
}

// Receiver returns the receiver state for a flow, if any.
func (st *Stack) Receiver(flow uint64) *Receiver { return st.receivers[flow] }

// Sender returns the sender state for a flow, if any.
func (st *Stack) Sender(flow uint64) *Sender { return st.senders[flow] }

// enterTimeWait records a flow id for MSL so a duplicate connection attempt
// with the same id is rejected.
func (st *Stack) enterTimeWait(flow uint64) {
	st.timeWait[flow] = st.el.Now() + st.msl
}

// retireSender parks a completed sender on the free-list; takeRetiredSender
// may hand its state to a later flow once it is quiescent.
func (st *Stack) retireSender(s *Sender) { st.retiredS = append(st.retiredS, s) } //simlint:allow hotalloc — free-list append: capacity bounded by peak concurrent flows and kept across reuse

// retireReceiver parks a completed receiver on the free-list.
func (st *Stack) retireReceiver(r *Receiver) { st.retiredR = append(st.retiredR, r) } //simlint:allow hotalloc — free-list append: capacity bounded by peak concurrent flows and kept across reuse

// takeRetiredSender pops the oldest retired sender if it is safely
// reusable: complete, timer disarmed, and at least 2*MSL past completion
// (no packet for the old flow can still exist). The old flow is
// unregistered at that point — any later arrival for it would have been a
// no-op on the completed sender anyway. Returns nil when the head is not
// yet quiescent; the list is FIFO, so the head is always the oldest.
func (st *Stack) takeRetiredSender() *Sender {
	if st.retiredSHead == len(st.retiredS) {
		return nil
	}
	s := st.retiredS[st.retiredSHead]
	if s.timer.Pending() || st.el.Now() < s.CompletedAt+2*st.msl {
		return nil
	}
	st.retiredS[st.retiredSHead] = nil
	st.retiredSHead++
	if st.retiredSHead == len(st.retiredS) {
		st.retiredS, st.retiredSHead = st.retiredS[:0], 0
	}
	st.reclaimFlow(s.Flow)
	delete(st.senders, s.Flow)
	return s
}

// reclaimFlow removes a reused flow's demux registration and pins its id
// in time-wait forever. Flow ids are never legitimately reused (NextFlowID
// and the per-source-host counters are monotone), so a packet for the id
// arriving after reclamation can only be a pathologically late duplicate —
// the permanent time-wait entry makes listen() reject it instead of
// resurrecting a ghost receiver that would re-fire the flow's completion
// callbacks. The per-flow observer hooks are dropped for the same reason.
func (st *Stack) reclaimFlow(flow uint64) {
	st.demux.Unregister(flow)
	st.timeWait[flow] = sim.Infinity
	delete(st.flowObs, flow)
	delete(st.prioFlows, flow)
}

// takeRetiredReceiver pops the oldest retired receiver if quiescent: 2*MSL
// past completion and its pull-queue entry fully drained (a stale queued
// entry still holds the pointer, and reusing it would release phantom pull
// credit for the new flow).
func (st *Stack) takeRetiredReceiver() *Receiver {
	if st.retiredRHead == len(st.retiredR) {
		return nil
	}
	r := st.retiredR[st.retiredRHead]
	if r.fp.queued || st.el.Now() < r.CompletedAt+2*st.msl {
		return nil
	}
	st.retiredR[st.retiredRHead] = nil
	st.retiredRHead++
	if st.retiredRHead == len(st.retiredR) {
		st.retiredR, st.retiredRHead = st.retiredR[:0], 0
	}
	st.reclaimFlow(r.Flow)
	delete(st.receivers, r.Flow)
	return r
}

// sendControl emits an ACK/NACK/PULL toward peer on a random source route
// (or destination-routed in the switch-LB ablation), through the host NIC's
// control-priority band.
func (st *Stack) sendControl(p *fabric.Packet) {
	if !st.cfg.SwitchLB {
		paths := st.pathsTo(p.Dst)
		if len(paths) > 0 {
			p.Path = paths[st.rand.Intn(len(paths))]
			p.Hop = 0
		}
	}
	st.Host.Send(p)
}

// OnPullGap installs an observer of the actual gaps between transmitted
// PULL packets at this receiver (the Figure 12 measurement).
func (st *Stack) OnPullGap(fn func(gap sim.Time)) { st.pacer.OnGap = fn }

// FlowOpts tunes a single NDP transfer.
type FlowOpts struct {
	// Flow forces a connection id; zero allocates one.
	Flow uint64
	// Priority asks the receiver to pull this flow strictly first.
	Priority bool
	// OnSenderDone fires when every packet has been cumulatively acked.
	OnSenderDone func(s *Sender)
	// OnReceiverDone fires when the receiver holds all data (the FCT
	// event used throughout the evaluation).
	OnReceiverDone func(r *Receiver)
	// OnReceiverDoneAt is a narrower completion hook: it receives only the
	// completion time. Callers that need nothing else use it so the
	// harness never has to wrap their callback in a per-flow adapter
	// closure. Both hooks fire if both are set.
	OnReceiverDoneAt func(at sim.Time)
	// OnReceiverData observes every newly received payload byte count
	// (goodput time series).
	OnReceiverData func(bytes int64)
	// IW overrides the stack's initial window for this flow.
	IW int
}

var flowCounter atomic.Uint64

// NextFlowID allocates a process-unique connection id. It is safe to call
// from concurrent simulations (the parallel sweep harness runs several
// event lists at once). The harness treats flow ids as identity only, so
// sharing one process-wide counter does not perturb determinism — with
// one caveat: topo.Config.ECMPPerFlow hashes p.Flow for path selection,
// so an experiment that enables it must pass explicit per-simulation ids
// (FlowOpts.Flow) instead of relying on this counter, whose values depend
// on goroutine interleaving under Workers > 1.
func NextFlowID() uint64 {
	return flowCounter.Add(1)
}

// Connect starts an NDP transfer of size bytes from this stack to the dst
// stack. size < 0 means an unbounded flow (permutation-style long flows).
// Transfer begins immediately: NDP is a zero-RTT protocol, so the first
// window leaves at line rate with SYN set on every packet.
func (st *Stack) Connect(dst *Stack, size int64, opts FlowOpts) *Sender {
	if opts.Flow == 0 {
		opts.Flow = NextFlowID()
	}
	dst.PreRegister(opts.Flow, opts.Priority, opts.OnReceiverDone, opts.OnReceiverDoneAt, opts.OnReceiverData)
	return st.ConnectLocal(dst.Host.ID, size, opts)
}

// flowObs bundles the receiver-side observers a caller installs for one
// flow ahead of its first packet.
type flowObs struct {
	done   func(*Receiver)
	doneAt func(sim.Time)
	data   func(int64)
}

// PreRegister installs receiver-side flow state ahead of the first packet:
// pull priority and completion/goodput observers. In a sharded run the
// source host defers this call onto the destination's shard (it must land
// before the first SYN arrives — one link delay is plenty, the first data
// packet is at least a serialization plus two propagations away); in a
// single-list run it is simply called inline.
func (st *Stack) PreRegister(flow uint64, priority bool, onDone func(*Receiver), onDoneAt func(sim.Time), onData func(int64)) {
	if priority {
		st.SetPriority(flow)
	}
	if onDone != nil || onDoneAt != nil || onData != nil {
		st.flowObs[flow] = flowObs{done: onDone, doneAt: onDoneAt, data: onData}
	}
}

// ConnectLocal starts the sender half of an NDP transfer toward host dst,
// touching only this stack's state. opts.Flow must be set. Receiver-side
// observers must be delivered separately via the destination stack's
// PreRegister (Connect does both for the single-shard convenience path).
func (st *Stack) ConnectLocal(dst int32, size int64, opts FlowOpts) *Sender {
	if opts.Flow == 0 {
		panic("core: ConnectLocal needs an explicit flow id")
	}
	paths := st.pathsTo(dst)
	if len(paths) == 0 {
		panic(fmt.Sprintf("core: no paths from host %d to host %d", st.Host.ID, dst))
	}
	s := newSender(st, opts, dst, size, paths)
	st.senders[opts.Flow] = s
	st.demux.Register(opts.Flow, s)
	s.start()
	return s
}
