package core

import (
	"testing"
	"testing/quick"

	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// Property: under any interleaving of enqueues (data/control) and dequeues,
// the NDP switch queue conserves packets — every packet offered is either
// still queued, was dequeued, was bounced, or was counted as a drop — and
// byte accounting never goes negative, data depth never exceeds the cap.
func TestSwitchQueueConservationProperty(t *testing.T) {
	type op struct {
		Enq  bool
		Ctrl bool
	}
	prop := func(ops []op, seed uint64) bool {
		cfg := DefaultSwitchConfig(9000)
		cfg.HeaderCapBytes = 4 * fabric.HeaderSize // tiny: force bounces
		q := NewSwitchQueue(cfg, sim.NewRand(seed))
		bounced := 0
		q.BounceSink = func(p *fabric.Packet) { bounced++; fabric.Free(p) }
		offered, dequeued := 0, 0
		for _, o := range ops {
			if o.Enq {
				offered++
				if o.Ctrl {
					q.Enqueue(fabric.NewControl(fabric.Ack, 1, 0, 1))
				} else {
					q.Enqueue(fabric.NewData(1, 0, 1, 0, 9000))
				}
			} else if p := q.Dequeue(); p != nil {
				dequeued++
				fabric.Free(p)
			}
		}
		if q.Bytes() < 0 || q.DataPackets() < 0 || q.HeaderPackets() < 0 {
			return false
		}
		if q.DataPackets() > cfg.DataCapPackets {
			return false
		}
		queued := q.DataPackets() + q.HeaderPackets()
		return offered == dequeued+queued+bounced+int(q.Stats().Drops)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the WRR scheduler never serves more than HeaderWRR consecutive
// control packets while data is waiting.
func TestSwitchQueueWRRBoundProperty(t *testing.T) {
	prop := func(nCtrlRaw, nDataRaw uint8) bool {
		cfg := DefaultSwitchConfig(9000)
		q := NewSwitchQueue(cfg, sim.NewRand(1))
		nCtrl := int(nCtrlRaw)%200 + 1
		nData := int(nDataRaw)%8 + 1
		for i := 0; i < nData; i++ {
			q.Enqueue(fabric.NewData(1, 0, 1, int64(i), 9000))
		}
		for i := 0; i < nCtrl; i++ {
			q.Enqueue(fabric.NewControl(fabric.Pull, 1, 1, 0))
		}
		consec := 0
		for !q.Empty() {
			p := q.Dequeue()
			if p.IsControl() {
				consec++
				// Data is waiting whenever DataPackets() > 0.
				if consec > cfg.HeaderWRR && q.DataPackets() > 0 {
					return false
				}
			} else {
				consec = 0
			}
			fabric.Free(p)
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: a single NDP transfer of any size through a clean FatTree
// delivers exactly once per sequence number: the receiver counts no
// duplicates and the byte count is exact.
func TestNoDuplicateDeliveryProperty(t *testing.T) {
	prop := func(sizeRaw uint32) bool {
		size := int64(sizeRaw%200_000) + 1
		net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
		var rcv *Receiver
		st[1].Connect(st[14], size, FlowOpts{OnReceiverDone: func(r *Receiver) { rcv = r }})
		net.EL.RunUntil(time500ms())
		return rcv != nil && rcv.Bytes() == size && rcv.Dups == 0
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func time500ms() sim.Time { return 500 * sim.Millisecond }

// The effective RTO must scale with the initial window so that a large
// line-rate burst does not trigger spurious timeouts of packets still
// waiting in the local NIC queue (regression test for the IW=256 cliff).
func TestLargeIWNoSpuriousRTO(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IW = 256
	net, st := ndpNet(4, DefaultSwitchConfig(9000), cfg)
	s := st[0].Connect(st[15], 9_000_000, FlowOpts{})
	net.EL.RunUntil(sim.Second)
	if !s.Complete() {
		t.Fatal("transfer incomplete")
	}
	if s.RtxFromTimeout != 0 {
		t.Errorf("%d spurious timeout retransmissions with IW=256 on an idle path", s.RtxFromTimeout)
	}
}

// One bounce probe at a time: an extreme incast with tiny header queues
// must not retransmit-on-bounce more than a small multiple of the flow's
// packet count (the incast-echo regression).
func TestBounceProbeBoundsEcho(t *testing.T) {
	scfg := DefaultSwitchConfig(9000)
	scfg.HeaderCapBytes = 6 * fabric.HeaderSize
	net, st := ndpNet(4, scfg, DefaultConfig())
	done := 0
	var snds []*Sender
	for i := 1; i < 16; i++ {
		snds = append(snds, st[i].Connect(st[0], 270_000, FlowOpts{
			OnReceiverDone: func(r *Receiver) { done++ },
		}))
	}
	net.EL.RunUntil(2 * sim.Second)
	if done != 15 {
		t.Fatalf("%d/15 completed", done)
	}
	var bounceRtx, pkts int64
	for _, s := range snds {
		bounceRtx += s.RtxFromBounce
		pkts += s.TotalPackets()
	}
	if ratio := float64(bounceRtx) / float64(pkts); ratio > 3 {
		t.Errorf("bounce retransmissions per packet = %.2f; echo suppression failed", ratio)
	}
}
