package core

import (
	"testing"

	"ndp/internal/fabric"
)

// TestQueueRingWraparoundAndResize is the regression test for queueRing's
// power-of-two masking (the local mirror of fabric's ring): push/pop/
// popTail interleavings drive head and tail through wraparounds and across
// several growth boundaries, checked against a plain slice deque. The
// growth path must normalize capacity to a power of two — the masked
// indexing silently corrupts the queue otherwise.
func TestQueueRingWraparoundAndResize(t *testing.T) {
	var r queueRing
	var model []*fabric.Packet
	next := int64(0)
	mk := func() *fabric.Packet {
		next++
		return &fabric.Packet{Seq: next}
	}
	ops := []byte("pppppptpppptppppppptppppp")
	for round := 0; round < 50; round++ {
		for _, op := range ops {
			switch op {
			case 'p':
				p := mk()
				r.push(p)
				model = append(model, p)
			case 't':
				got := r.popTail()
				var want *fabric.Packet
				if len(model) > 0 {
					want = model[len(model)-1]
					model = model[:len(model)-1]
				}
				if got != want {
					t.Fatalf("popTail: got %v, want %v", got, want)
				}
			}
			if r.n != len(model) {
				t.Fatalf("length diverged: ring %d, model %d", r.n, len(model))
			}
		}
		for i := 0; i < len(ops)/2; i++ {
			got := r.pop()
			var want *fabric.Packet
			if len(model) > 0 {
				want = model[0]
				model = model[1:]
			}
			if got != want {
				t.Fatalf("pop: got %v, want %v", got, want)
			}
		}
		if len(r.buf)&(len(r.buf)-1) != 0 {
			t.Fatalf("queueRing capacity %d is not a power of two", len(r.buf))
		}
	}
	for r.n > 0 {
		got := r.pop()
		want := model[0]
		model = model[1:]
		if got != want {
			t.Fatalf("drain: got %v, want %v", got, want)
		}
	}
	if r.pop() != nil || r.popTail() != nil {
		t.Fatal("empty queueRing returned a packet")
	}
}
