package core

import (
	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// Per-packet sender-side state.
type pktState uint8

const (
	psUnsent    pktState = iota
	psInflight           // sent, no terminal feedback yet
	psRtxQueued          // NACKed or bounced, waiting for pull credit
	psAcked
)

// pkt is one packet's scoreboard entry.
type pkt struct {
	sentAt   sim.Time // last transmission
	firstTx  sim.Time // first transmission; -1 = never sent
	lastPath int16
	state    pktState
}

// pathStat is one path's feedback scoreboard (§3.2.3).
type pathStat struct {
	acks, naks, loss int64
}

// Sender is the sending half of one NDP connection. It pushes the first
// window at line rate with SYN on every packet, then becomes purely
// receiver-driven: each PULL increment releases one packet, retransmissions
// (NACKed or bounced) before new data. It sprays packets across all paths in
// sender-permuted order and maintains the per-path ACK/NACK/loss scoreboard
// that lets it avoid broken paths (§3.2.3).
type Sender struct {
	Flow uint64
	Dst  int32

	st   *Stack
	size int64 // bytes; <0 means unbounded

	total    int64 // packets; <0 means unbounded
	lastSize int32 // size of the final packet
	iw       int64

	// pkts is the per-packet scoreboard, one struct per sequence number —
	// a single array so growing a fresh sender costs one allocation, not
	// one per field.
	pkts []pkt

	paths   [][]int16
	perm    []int
	permPos int
	// pstats is the per-path scoreboard (acks, nacks, timeouts), again one
	// array for all three counters.
	pstats []pathStat
	// permScratch is the reusable backing array repermute rebuilds perm
	// into; hoisted here because repermute used to allocate a fresh slice
	// on every permutation cycle of every flow (about half the remaining
	// steady-state allocations after the scheduler rewrite).
	permScratch []int

	nextNew int64
	// rtxq is a FIFO of sequence numbers awaiting retransmission credit,
	// consumed via rtxHead: popping by re-slicing (rtxq = rtxq[1:]) strands
	// the front capacity and forces an allocation on nearly every later
	// push. The buffer resets to its full capacity whenever it drains.
	rtxq        []int64
	rtxHead     int
	lastPullSeq int64

	inflight       int64
	ackedCount     int64
	ackedBytes     int64
	ackedOrNacked  int64
	recentAcks     int64
	recentNacks    int64
	recentEvents   int64
	fwSent         int64 // first-window packets sent
	fwBounced      int64 // distinct first-window packets seen bounced
	rxEvents       int64 // every ACK/NACK/PULL/bounce received
	lastEventSnap  int64 // liveness marker for the RTO safety valve
	valveSilent    int   // consecutive silent RTO windows
	valveThreshold int   // silent windows required before the valve fires
	probeSeq       int64 // seq of the outstanding bounce probe (-1 none)
	rto            sim.Time
	timer          sim.Timer
	complete       bool
	started        sim.Time
	onDone         func(*Sender)
	excludedActive int

	// Telemetry used by the evaluation harness.
	PacketsSent     int64
	RtxFromNack     int64
	RtxFromBounce   int64
	RtxFromTimeout  int64
	BouncesSeen     int64
	NacksSeen       int64
	CompletedAt     sim.Time
	OnPacketLatency func(d sim.Time) // first-send -> ACK, per packet (Fig 4)
}

func newSender(st *Stack, opts FlowOpts, dst int32, size int64, paths [][]int16) *Sender {
	s := st.takeRetiredSender()
	if s == nil {
		s = &Sender{st: st}
		s.timer.InitHandler(st.el, s)
	} else {
		s.recycle()
	}
	s.Flow = opts.Flow
	s.Dst = dst
	s.size = size
	s.paths = paths
	s.pstats = growZeroPathStats(s.pstats, len(paths))
	s.onDone = opts.OnSenderDone
	s.started = st.el.Now()
	s.probeSeq = -1
	mtu := int64(st.cfg.MTU)
	if size >= 0 {
		s.total = (size + mtu - 1) / mtu
		if s.total == 0 {
			s.total = 1 // zero-byte transfer still needs a FIN packet
		}
		s.lastSize = int32(size - (s.total-1)*mtu)
		if s.lastSize == 0 {
			s.lastSize = int32(mtu)
		}
		if size == 0 {
			s.lastSize = fabric.HeaderSize
		}
	} else {
		s.total = -1
	}
	s.iw = int64(st.cfg.IW)
	if opts.IW > 0 {
		s.iw = int64(opts.IW)
	}
	// The configured RTO assumes the first window leaves within one RTT;
	// a very large IW takes IW serialization times just to exit the NIC,
	// so scale the timeout with the sender's own burst duration to avoid
	// spurious retransmissions of packets still queued locally.
	s.rto = st.cfg.RTO
	if burst := 2 * s.iw * int64(sim.TransmissionTime(st.cfg.MTU, st.Host.LinkRate())); sim.Time(burst) > s.rto {
		s.rto = sim.Time(burst)
	}
	s.repermute()
	return s
}

// recycle resets a retired sender to the zero state while keeping its
// identity-bound resources (stack, embedded timer — whose expiry handler
// already points at this object) and the backing arrays of its per-packet
// and per-path state, truncated to length zero for the next flow to regrow.
func (s *Sender) recycle() {
	st, timer := s.st, s.timer
	pkts, rtxq, permScratch := s.pkts[:0], s.rtxq[:0], s.permScratch
	pstats := s.pstats
	*s = Sender{st: st, timer: timer,
		pkts: pkts, rtxq: rtxq, permScratch: permScratch, pstats: pstats}
}

// growZeroPathStats returns s resized to n zeroed entries, reusing its
// backing array when capacity allows (one exact-size allocation otherwise).
func growZeroPathStats(s []pathStat, n int) []pathStat {
	if cap(s) < n {
		return make([]pathStat, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = pathStat{}
	}
	return s
}

// start pushes the first window at line rate (zero-RTT fast start).
func (s *Sender) start() {
	burst := s.iw
	if s.total >= 0 && s.total < burst {
		burst = s.total
	}
	for i := int64(0); i < burst; i++ {
		s.sendData(s.nextNew, false)
		s.nextNew++
	}
}

// grow ensures per-packet state exists through seq, regrowing the
// scoreboard in one step (one allocation, doubling from a 64-packet floor)
// instead of per-packet appends: a fresh sender for an N-packet flow pays
// one allocation, not log2(N).
//
//simlint:allow hotalloc — amortized scoreboard regrowth: one doubling allocation per capacity step, not per packet
func (s *Sender) grow(seq int64) {
	need := int(seq) + 1
	if len(s.pkts) >= need {
		return
	}
	if cap(s.pkts) < need {
		c := 2 * cap(s.pkts)
		if c < 64 {
			c = 64
		}
		for c < need {
			c *= 2
		}
		pkts := make([]pkt, len(s.pkts), c)
		copy(pkts, s.pkts)
		s.pkts = pkts
	}
	for len(s.pkts) < need {
		// firstTx -1 = never sent (0 is a valid time).
		s.pkts = append(s.pkts, pkt{state: psUnsent, firstTx: -1, lastPath: -1})
	}
}

// nextPathID walks the permuted path list, re-permuting (and re-evaluating
// the scoreboard) after each full cycle.
func (s *Sender) nextPathID() int16 {
	if s.permPos >= len(s.perm) {
		s.repermute()
	}
	id := s.perm[s.permPos]
	s.permPos++
	return int16(id)
}

// repermute rebuilds the randomized path order, temporarily excluding
// scoreboard outliers: paths whose NACK fraction or loss count is far above
// the mean indicate asymmetry (a failed or degraded link), and spraying onto
// them would stall the whole transfer.
//
//simlint:allow hotalloc — runs once per full path cycle, not per packet, and the scratch array is reused across cycles once grown
func (s *Sender) repermute() {
	n := len(s.paths)
	if cap(s.permScratch) < n {
		s.permScratch = make([]int, 0, n)
	}
	// perm aliases the scratch array; that is safe because perm is fully
	// rebuilt here before it is read again (nextPathID only consults it
	// between repermute calls).
	include := s.permScratch[:0]
	s.excludedActive = 0
	if !s.st.cfg.DisablePathPenalty && n > 1 {
		var fracSum float64
		var lossSum, qualified int64
		for i := 0; i < n; i++ {
			if t := s.pstats[i].acks + s.pstats[i].naks; t >= 4 {
				fracSum += float64(s.pstats[i].naks) / float64(t)
				qualified++
			}
			lossSum += s.pstats[i].loss
		}
		meanFrac, meanLoss := 0.0, float64(lossSum)/float64(n)
		if qualified > 0 {
			meanFrac = fracSum / float64(qualified)
		}
		for i := 0; i < n; i++ {
			t := s.pstats[i].acks + s.pstats[i].naks
			if t >= 4 && qualified > 1 {
				frac := float64(s.pstats[i].naks) / float64(t)
				if frac > 2*meanFrac+0.05 {
					s.excludedActive++
					continue
				}
			}
			if float64(s.pstats[i].loss) > 2*meanLoss+2 {
				s.excludedActive++
				continue
			}
			include = append(include, i)
		}
	}
	if len(include) == 0 {
		include = include[:0]
		for i := 0; i < n; i++ {
			include = append(include, i)
		}
		s.excludedActive = 0
	}
	// Exponential decay keeps exclusions temporary: a path's bad history
	// fades, so it is re-probed after a few cycles.
	for i := 0; i < n; i++ {
		s.pstats[i].acks -= s.pstats[i].acks / 4
		s.pstats[i].naks -= s.pstats[i].naks / 4
		s.pstats[i].loss -= s.pstats[i].loss / 4
	}
	s.st.rand.ShuffleInts(include)
	s.perm = include
	s.permPos = 0
}

// ExcludedPaths reports how many paths the scoreboard is currently avoiding.
func (s *Sender) ExcludedPaths() int { return s.excludedActive }

// sendData transmits packet seq (fresh or retransmission).
func (s *Sender) sendData(seq int64, rtx bool) {
	s.sendDataAvoiding(seq, rtx, -1)
}

// sendDataAvoiding transmits seq, avoiding path `avoid` when an alternative
// exists ("an NDP sender that retransmits a lost packet always resends it on
// a different path").
func (s *Sender) sendDataAvoiding(seq int64, rtx bool, avoid int16) {
	s.grow(seq)
	size := int32(s.st.cfg.MTU)
	if s.total >= 0 && seq == s.total-1 {
		size = s.lastSize
	}
	pid := s.nextPathID()
	if avoid >= 0 && pid == avoid && len(s.paths) > 1 {
		pid = s.nextPathID()
	}
	p := s.st.arena.NewData(s.Flow, s.st.Host.ID, s.Dst, seq, size)
	if s.st.cfg.SwitchLB {
		pid = -1 // destination-routed: switches spray per packet
	} else {
		p.Path = s.paths[pid]
	}
	p.PathID = pid
	p.Sent = s.st.el.Now()
	if seq < s.iw {
		p.Flags |= fabric.FlagSYN
	}
	if s.total >= 0 && seq == s.total-1 {
		p.Flags |= fabric.FlagFIN
	}
	if rtx {
		p.Flags |= fabric.FlagRTX
	}
	if s.pkts[seq].state != psInflight {
		s.inflight++
	}
	s.pkts[seq].state = psInflight
	s.pkts[seq].sentAt = s.st.el.Now()
	if s.pkts[seq].firstTx < 0 {
		s.pkts[seq].firstTx = s.st.el.Now()
	}
	s.pkts[seq].lastPath = pid
	s.PacketsSent++
	if seq < s.iw && !rtx {
		s.fwSent++
	}
	if !s.timer.Pending() {
		s.timer.Reset(s.rto)
	}
	s.st.Host.Send(p)
}

// sendNext releases one packet of pull credit: queued retransmissions first,
// then new data.
func (s *Sender) sendNext() {
	for s.rtxHead < len(s.rtxq) {
		seq := s.rtxq[s.rtxHead]
		s.rtxHead++
		if s.rtxHead == len(s.rtxq) {
			s.rtxq, s.rtxHead = s.rtxq[:0], 0
		}
		if s.pkts[seq].state != psRtxQueued {
			continue // ACKed while queued
		}
		s.sendData(seq, true)
		return
	}
	if s.total < 0 || s.nextNew < s.total {
		s.sendData(s.nextNew, false)
		s.nextNew++
	}
}

// Receive handles control traffic addressed to this sender: ACKs, NACKs,
// PULLs and bounced (return-to-sender) headers.
func (s *Sender) Receive(p *fabric.Packet) {
	switch {
	case p.Type == fabric.Ack:
		s.onAck(p)
	case p.Type == fabric.Nack:
		s.onNack(p)
	case p.Type == fabric.Pull:
		s.onPull(p)
	case p.Type == fabric.Data && p.Flags&fabric.FlagBounced != 0:
		s.onBounce(p)
	}
	fabric.Free(p)
}

func (s *Sender) noteEvent(ack bool) {
	if ack {
		s.recentAcks++
	} else {
		s.recentNacks++
	}
	s.recentEvents++
	if s.recentEvents >= 64 {
		s.recentAcks /= 2
		s.recentNacks /= 2
		s.recentEvents = 0
	}
}

func (s *Sender) onAck(p *fabric.Packet) {
	s.rxEvents++
	if p.Seq == s.probeSeq {
		s.probeSeq = -1 // the bounce probe resolved
	}
	seq := p.Seq
	if seq < 0 || int64(len(s.pkts)) <= seq || s.pkts[seq].state == psAcked {
		return
	}
	if p.PathID >= 0 && int(p.PathID) < len(s.pstats) {
		s.pstats[p.PathID].acks++
	}
	if s.pkts[seq].state == psInflight {
		s.inflight--
	}
	s.pkts[seq].state = psAcked
	s.ackedCount++
	s.ackedOrNacked++
	s.noteEvent(true)
	sz := int64(s.st.cfg.MTU)
	if s.total >= 0 && seq == s.total-1 {
		sz = int64(s.lastSize)
	}
	s.ackedBytes += sz
	if s.OnPacketLatency != nil && s.pkts[seq].firstTx >= 0 {
		s.OnPacketLatency(s.st.el.Now() - s.pkts[seq].firstTx)
	}
	if s.total >= 0 && s.ackedCount == s.total && !s.complete {
		s.complete = true
		s.CompletedAt = s.st.el.Now()
		s.timer.Stop()
		s.st.enterTimeWait(s.Flow)
		if s.onDone != nil {
			s.onDone(s)
		}
		s.st.retireSender(s)
	}
}

func (s *Sender) onNack(p *fabric.Packet) {
	s.rxEvents++
	if p.Seq == s.probeSeq {
		s.probeSeq = -1 // the bounce probe resolved
	}
	seq := p.Seq
	if seq < 0 || int64(len(s.pkts)) <= seq {
		return
	}
	s.NacksSeen++
	if p.PathID >= 0 && int(p.PathID) < len(s.pstats) {
		s.pstats[p.PathID].naks++
	}
	s.noteEvent(false)
	if s.pkts[seq].state != psInflight {
		return // already ACKed or already queued for rtx
	}
	s.inflight--
	s.pkts[seq].state = psRtxQueued
	s.ackedOrNacked++
	s.rtxq = append(s.rtxq, seq) //simlint:allow hotalloc — rtx queue: capacity bounded by the window and kept across drains, amortized doubling
	s.RtxFromNack++
}

func (s *Sender) onPull(p *fabric.Packet) {
	s.rxEvents++
	delta := p.PullSeq - s.lastPullSeq
	if delta <= 0 {
		return // reordered pull: a later one already released this credit
	}
	s.lastPullSeq = p.PullSeq
	for i := int64(0); i < delta; i++ {
		s.sendNext()
	}
}

// onBounce implements return-to-sender (§3.2.4): the switch sent this
// header back because its header queue overflowed. Resending everything
// immediately would echo the incast; never resending would stall flows
// whose entire window bounced (no pull clock). The paper's compromise:
// resend only when not expecting more pulls, or when every first-window
// packet also bounced, or when recent feedback is mostly ACKs (asymmetric
// network). We additionally keep at most one bounce-triggered probe in
// flight per connection — enough to restart the pull clock, bounded enough
// that a thousand-flow incast does not re-detonate itself.
func (s *Sender) onBounce(p *fabric.Packet) {
	seq := p.Seq
	if seq < 0 || int64(len(s.pkts)) <= seq || s.pkts[seq].state != psInflight {
		return
	}
	s.rxEvents++
	s.BouncesSeen++
	if seq < s.iw {
		s.fwBounced++
	}
	if seq == s.probeSeq {
		s.probeSeq = -1 // the probe itself bounced again
	}
	s.inflight--
	s.pkts[seq].state = psRtxQueued
	s.RtxFromBounce++

	expectMorePulls := s.lastPullSeq < s.ackedOrNacked
	allFirstWindowBounced := s.fwBounced >= s.fwSent
	mostlyAcked := s.recentAcks > s.recentNacks && s.recentAcks >= 4
	resendNow := mostlyAcked || (!expectMorePulls || allFirstWindowBounced) && s.probeSeq < 0
	if resendNow {
		s.probeSeq = seq
		s.sendDataAvoiding(seq, true, p.PathID) // flips state back to inflight
		return
	}
	s.rtxq = append(s.rtxq, seq) //simlint:allow hotalloc — rtx queue: capacity bounded by the window and kept across drains, amortized doubling
}

// onTimeout is the RTO backstop: it directly retransmits packets that have
// been in flight for a full RTO (corruption, double bounce, or lost control
// packets), charging a loss to the path they used.
//
// It also runs the self-clock safety valve for the case where the pull
// clock died entirely (e.g. PULLs lost to header-queue overflow): after
// several RTO windows with no feedback of any kind, it releases one queued
// retransmission. Any ACK, NACK, PULL or bounce counts as liveness — in a
// huge incast a flow may legitimately hear from the receiver only every
// few milliseconds while the shared pull queue drains, and firing the
// valve then would re-detonate the incast. The silence threshold doubles
// on every firing (capped) and halves on progress, so a genuinely dead
// flow recovers within a few RTOs while a patient one stays quiet.
// OnEvent is the RTO expiry dispatch (the sender's embedded timer fires
// through the Handler interface, which costs no per-flow allocation).
func (s *Sender) OnEvent(uint64) { s.onTimeout() }

func (s *Sender) onTimeout() {
	if s.complete {
		return
	}
	now := s.st.el.Now()
	resent := 0
	for seq := int64(0); seq < int64(len(s.pkts)); seq++ {
		if s.pkts[seq].state == psInflight && s.pkts[seq].sentAt+s.rto <= now {
			if pid := s.pkts[seq].lastPath; pid >= 0 {
				s.pstats[pid].loss++
			}
			s.inflight-- // sendDataAvoiding re-increments
			s.pkts[seq].state = psRtxQueued
			s.RtxFromTimeout++
			s.sendDataAvoiding(seq, true, s.pkts[seq].lastPath)
			resent++
		}
	}
	if s.valveThreshold == 0 {
		s.valveThreshold = 1
	}
	if resent == 0 && s.rxEvents == s.lastEventSnap && s.rtxHead < len(s.rtxq) {
		s.valveSilent++
		if s.valveSilent >= s.valveThreshold {
			s.valveSilent = 0
			if s.valveThreshold < 64 {
				s.valveThreshold *= 2
			}
			s.RtxFromTimeout++
			s.sendNext()
		}
	} else if s.rxEvents != s.lastEventSnap {
		s.valveSilent = 0
		if s.valveThreshold > 1 {
			s.valveThreshold /= 2
		}
	}
	s.lastEventSnap = s.rxEvents
	s.timer.Reset(s.rto)
}

// Complete reports whether every packet has been ACKed.
func (s *Sender) Complete() bool { return s.complete }

// AckedBytes returns cumulatively acknowledged payload bytes (the sender-
// side goodput measure used for unbounded flows).
func (s *Sender) AckedBytes() int64 { return s.ackedBytes }

// TotalPackets returns the transfer length in packets (-1 if unbounded).
func (s *Sender) TotalPackets() int64 { return s.total }

// Retransmissions returns the total number of retransmitted sends.
func (s *Sender) Retransmissions() int64 {
	return s.RtxFromNack + s.RtxFromBounce + s.RtxFromTimeout
}
