package core

import (
	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// Receiver is the receiving half of one NDP connection. For every arriving
// data packet it returns an ACK immediately; for every trimmed header a
// NACK (so the sender queues the retransmission); and for either kind it
// adds one PULL to the host's shared pull queue, whose pacing makes the
// aggregate arrival rate from all senders match the link rate.
type Receiver struct {
	Flow uint64
	Peer int32 // sender host id

	st *Stack
	// fp always points at fpv: the pull-queue entry lives inside the
	// receiver (same lifetime, one fewer allocation per fresh receiver).
	fp  *flowPull
	fpv flowPull

	got      []bool
	nGot     int64
	total    int64 // packets; -1 until a FIN (or FIN-marked header) is seen
	bytes    int64
	complete bool

	FirstArrival sim.Time
	CompletedAt  sim.Time
	OnComplete   func(*Receiver)
	// OnCompleteAt is the narrow completion hook (see
	// FlowOpts.OnReceiverDoneAt); it fires after OnComplete.
	OnCompleteAt func(sim.Time)
	// OnData observes each newly received payload byte count (goodput
	// time-series probes).
	OnData func(bytes int64)

	// Telemetry.
	Trims, Dups, Arrivals int64
}

func newReceiver(st *Stack, flow uint64, peer int32) *Receiver {
	r := st.takeRetiredReceiver()
	if r == nil {
		r = &Receiver{st: st}
		r.fp = &r.fpv
		r.fpv = flowPull{r: r}
	} else {
		r.recycle()
	}
	r.Flow = flow
	r.Peer = peer
	r.total = -1
	r.fp.prio = st.prioFlows[flow]
	return r
}

// recycle resets a retired receiver to the zero state, keeping its stack,
// its pull-queue entry (already drained — takeRetiredReceiver checked) and
// the backing array of its arrival bitmap.
func (r *Receiver) recycle() {
	st, fp, got := r.st, r.fp, r.got[:0]
	*r = Receiver{st: st, fp: fp, got: got}
	*fp = flowPull{r: r}
}

// Receive handles data packets and trimmed headers from the sender.
func (r *Receiver) Receive(p *fabric.Packet) {
	if p.Type != fabric.Data || p.Flags&fabric.FlagBounced != 0 {
		fabric.Free(p)
		return
	}
	if r.Arrivals == 0 {
		r.FirstArrival = r.st.el.Now()
	}
	r.Arrivals++
	seq := p.Seq
	// Batch-grow the arrival bitmap (doubling from a 64-packet floor): the
	// per-packet append paid log2(N) allocations per fresh receiver.
	if int64(cap(r.got)) <= seq {
		c := 2 * cap(r.got)
		if c < 64 {
			c = 64
		}
		for int64(c) <= seq {
			c *= 2
		}
		got := make([]bool, len(r.got), c) //simlint:allow hotalloc — arrival-bitmap regrow: one doubling allocation per capacity step, O(log N) per flow, not per packet
		copy(got, r.got)
		r.got = got
	}
	for int64(len(r.got)) <= seq {
		r.got = append(r.got, false) //simlint:allow hotalloc — extends within the capacity reserved by the doubling regrow above; never reallocates
	}
	if p.Flags&fabric.FlagFIN != 0 && r.total < 0 {
		r.total = seq + 1
		defer r.clampPulls()
	}
	if p.Trimmed() {
		r.Trims++
		if r.got[seq] {
			// Stale header for data already held: ACK so the sender can
			// release the buffer instead of retransmitting uselessly.
			r.sendAckLike(fabric.Ack, p)
		} else {
			r.sendAckLike(fabric.Nack, p)
			r.addPull()
		}
		fabric.Free(p)
		return
	}
	if r.got[seq] {
		r.Dups++
		r.sendAckLike(fabric.Ack, p)
		fabric.Free(p)
		return
	}
	r.got[seq] = true
	r.nGot++
	r.bytes += int64(p.DataSize)
	if r.OnData != nil {
		r.OnData(int64(p.DataSize))
	}
	r.sendAckLike(fabric.Ack, p)
	if r.total >= 0 && r.nGot == r.total {
		r.finish()
	} else {
		r.addPull()
	}
	fabric.Free(p)
}

// sendAckLike returns an ACK or NACK for p immediately, echoing the data
// packet's path id so the sender's scoreboard attributes the feedback to the
// right path.
func (r *Receiver) sendAckLike(t fabric.PacketType, p *fabric.Packet) {
	c := r.st.arena.NewControl(t, r.Flow, r.st.Host.ID, r.Peer)
	c.Seq = p.Seq
	c.PathID = p.PathID
	c.TSEcho = p.Sent
	r.st.sendControl(c)
}

// addPull queues one pull for this flow unless the transfer is finished or
// enough pulls are already pending to cover every missing packet.
func (r *Receiver) addPull() {
	if r.complete {
		return
	}
	if r.total >= 0 {
		missing := r.total - r.nGot
		if int64(r.fp.pending) >= missing {
			return
		}
	}
	r.st.pacer.addPull(r.fp)
}

// clampPulls implements "when the last packet arrives, the receiver removes
// any pull packets for that sender from its pull queue to avoid sending
// unnecessary pull packets": once the transfer length is known, pending
// pulls in excess of the missing packet count are cancelled.
func (r *Receiver) clampPulls() {
	if r.total < 0 {
		return
	}
	if missing := r.total - r.nGot; int64(r.fp.pending) > missing {
		r.fp.pending = int(missing)
	}
}

// finish completes the transfer: pending pulls for this sender are removed
// from the pull queue ("to avoid sending unnecessary pull packets") and the
// flow id enters time-wait.
func (r *Receiver) finish() {
	r.complete = true
	r.CompletedAt = r.st.el.Now()
	r.st.pacer.removeFlow(r.fp)
	r.st.enterTimeWait(r.Flow)
	if r.OnComplete != nil {
		r.OnComplete(r)
	}
	if r.OnCompleteAt != nil {
		r.OnCompleteAt(r.CompletedAt)
	}
	r.st.retireReceiver(r)
}

// Complete reports whether all data has been received.
func (r *Receiver) Complete() bool { return r.complete }

// Bytes returns distinct payload bytes received so far (receiver goodput).
func (r *Receiver) Bytes() int64 { return r.bytes }

// Missing returns how many packets are still outstanding (-1 if the
// transfer length is not yet known).
func (r *Receiver) Missing() int64 {
	if r.total < 0 {
		return -1
	}
	return r.total - r.nGot
}

// flowPull is one connection's entry in the shared pull queue: a count of
// owed pulls plus round-robin bookkeeping. Pull sequence numbers are
// assigned at transmission time so that reordered pulls still release the
// right amount of credit at the sender.
type flowPull struct {
	r       *Receiver
	pending int
	prio    bool
	queued  bool
	nextSeq int64
}

// pullPacer is the per-host pull queue (§3.2): one queue shared by all
// receivers on the host, drained at a fixed spacing so the data packets the
// pulls elicit arrive at the receiver's line rate. Connections are served
// fair round-robin by default; flows marked priority are served strictly
// first.
type pullPacer struct {
	st      *Stack
	spacing sim.Time
	fifo    bool // serve pulls in arrival order (fairness ablation)

	high, norm pullRing
	lastSent   sim.Time
	scheduled  bool
	everSent   bool

	// PullsSent counts transmitted pulls; Gaps records actual send gaps
	// when a recorder is installed (Figure 12).
	PullsSent int64
	OnGap     func(gap sim.Time)
}

func (pp *pullPacer) init(st *Stack, spacing sim.Time) {
	pp.st = st
	pp.spacing = spacing
	pp.fifo = st.cfg.PullFIFO
}

func (pp *pullPacer) addPull(fp *flowPull) {
	fp.pending++
	if pp.fifo {
		// FIFO ablation: every pull occupies its own queue slot, so one
		// connection's burst of arrivals monopolizes the pacer.
		if fp.prio {
			pp.high.push(fp)
		} else {
			pp.norm.push(fp)
		}
	} else if !fp.queued {
		fp.queued = true
		if fp.prio {
			pp.high.push(fp)
		} else {
			pp.norm.push(fp)
		}
	}
	pp.schedule()
}

// removeFlow cancels all pending pulls for a connection; the entry is
// dropped lazily when the round-robin reaches it.
func (pp *pullPacer) removeFlow(fp *flowPull) { fp.pending = 0 }

func (pp *pullPacer) schedule() {
	if pp.scheduled || (pp.high.n == 0 && pp.norm.n == 0) {
		return
	}
	gap := pp.spacing
	if pp.st.cfg.PullJitter != nil {
		gap += pp.st.cfg.PullJitter(&pp.st.rand)
	}
	at := pp.st.el.Now()
	if pp.everSent && pp.lastSent+gap > at {
		at = pp.lastSent + gap
	}
	pp.scheduled = true
	pp.st.el.Schedule(at, pp, 0)
}

// OnEvent fires the pacer (sim.Handler) — scheduled per transmitted pull,
// so the typed path keeps the pull clock allocation-free.
func (pp *pullPacer) OnEvent(uint64) { pp.fire() }

// next pops the next flow owed a pull: strict priority first, round-robin
// within a band, skipping entries whose pulls were cancelled.
func (pp *pullPacer) next() *flowPull {
	// Array (not slice) literal: stays off the heap in the per-pull path.
	for _, band := range [...]*pullRing{&pp.high, &pp.norm} {
		for band.n > 0 {
			fp := band.pop()
			if fp.pending <= 0 {
				fp.queued = false
				continue
			}
			fp.pending--
			if pp.fifo {
				return fp // occurrence-queued: no re-append
			}
			if fp.pending > 0 {
				band.push(fp)
			} else {
				fp.queued = false
			}
			return fp
		}
	}
	return nil
}

// pullRing is the pull queue's FIFO: a power-of-two ring mirroring
// queueRing. The pacer pops the head and re-pushes round-robin survivors
// on every transmitted pull, a pattern that makes an advance-the-slice
// queue reallocate on nearly every push (the freed front capacity is never
// reused) — in an incast it was the simulator's single largest allocation
// site. The ring reuses its buffer forever.
type pullRing struct {
	buf        []*flowPull
	head, tail int
	n          int
}

func (r *pullRing) push(fp *flowPull) {
	if r.n == len(r.buf) {
		size := 64
		for size < len(r.buf)*2 {
			size *= 2
		}
		nb := make([]*flowPull, size) //simlint:allow hotalloc — power-of-two ring doubling: amortized O(1) per push, the buffer is reused forever
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head, r.tail = nb, 0, r.n
	}
	r.buf[r.tail] = fp
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.n++
}

func (r *pullRing) pop() *flowPull {
	if r.n == 0 {
		return nil
	}
	fp := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return fp
}

func (pp *pullPacer) fire() {
	pp.scheduled = false
	fp := pp.next()
	if fp == nil {
		return
	}
	now := pp.st.el.Now()
	if pp.everSent && pp.OnGap != nil {
		pp.OnGap(now - pp.lastSent)
	}
	pp.lastSent = now
	pp.everSent = true
	pp.PullsSent++

	fp.nextSeq++
	r := fp.r
	p := pp.st.arena.NewControl(fabric.Pull, r.Flow, pp.st.Host.ID, r.Peer)
	p.PullSeq = fp.nextSeq
	pp.st.sendControl(p)
	pp.schedule()
}
