// Package core implements the paper's primary contribution: the NDP switch
// service model (§3.1) and the NDP receiver-driven transport protocol
// (§3.2), including per-packet multipath spraying with sender-permuted path
// lists, packet trimming, priority forwarding of headers and control
// packets, pull pacing with per-connection fair queuing and strict
// prioritization, the path scoreboard for asymmetric networks (§3.2.3), and
// return-to-sender (§3.2.4).
package core

import (
	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// SwitchConfig parameterizes the NDP switch queue. The zero value is not
// usable; call DefaultSwitchConfig.
type SwitchConfig struct {
	// DataCapPackets is the low-priority data queue capacity in packets
	// (the paper's famous 8).
	DataCapPackets int
	// HeaderCapBytes is the high-priority queue capacity in bytes. The
	// paper sizes it as the same memory as the data queue: 8 x 9KB holds
	// 1125 64-byte headers.
	HeaderCapBytes int
	// HeaderWRR is the weighted-round-robin ratio: at most this many
	// consecutive header/control packets are served before one data packet
	// when both queues are occupied (10:1 in the paper). Zero means strict
	// priority — the congestion-collapse ablation.
	HeaderWRR int
	// TrimArrivingOnly disables the 50% coin and always trims the arriving
	// packet — the CP-style behaviour that exhibits phase effects; ablation
	// for Figure 2.
	TrimArrivingOnly bool
	// DisableBounce drops headers on header-queue overflow instead of
	// returning them to the sender — ablation for Figure 20.
	DisableBounce bool
}

// DefaultSwitchConfig returns the paper's switch parameters for the given
// MTU: 8-packet data queue, equal-memory header queue, 10:1 WRR.
func DefaultSwitchConfig(mtu int) SwitchConfig {
	return SwitchConfig{
		DataCapPackets: 8,
		HeaderCapBytes: 8 * mtu,
		HeaderWRR:      10,
	}
}

// SwitchQueue is the NDP switch output-port discipline:
//
//   - two queues per port: low-priority data, high-priority for trimmed
//     headers, ACKs, NACKs and PULLs;
//   - when the data queue is full, an arriving data packet is trimmed to a
//     header — with probability 1/2 the packet at the tail of the data
//     queue is trimmed instead and the arrival takes its place, which
//     breaks up the phase effects that make CP unfair;
//   - the scheduler runs weighted round-robin between the queues (10
//     headers : 1 data packet) so header floods cannot collapse goodput;
//   - if the header queue overflows, the header is returned to its sender
//     (return-to-sender) rather than dropped; a header that has already
//     been bounced once is dropped.
type SwitchQueue struct {
	fabric.QueueStats
	cfg  SwitchConfig
	rand *sim.Rand

	data, hdr       queueRing
	hdrServed       int // consecutive header packets served since last data
	dataBytesQueued int
	hdrBytesQueued  int

	// BounceSink receives headers being returned to their sender; wire it
	// to the owning switch's ForwardBounced. If nil, overflow headers are
	// dropped.
	BounceSink func(p *fabric.Packet)
}

// queueRing is a tiny FIFO with tail access (mirrors fabric's ring; kept
// local so the hot path stays inlineable and free of interface calls).
type queueRing struct {
	buf        []*fabric.Packet
	head, tail int
	n          int
}

func (r *queueRing) push(p *fabric.Packet) {
	if r.n == len(r.buf) {
		// The masked indexing below requires a power-of-two buffer;
		// normalize the new capacity on growth instead of assuming the
		// doubling always started from one (mirrors fabric's ring guard).
		// The 64-entry floor costs no extra allocations (the buffer is
		// lazy) and spares deep queues two doubling steps.
		size := 64
		for size < len(r.buf)*2 {
			size *= 2
		}
		nb := make([]*fabric.Packet, size) //simlint:allow hotalloc — power-of-two ring doubling: amortized O(1) per push, the buffer is reused forever
		for i := 0; i < r.n; i++ {
			nb[i] = r.buf[(r.head+i)%len(r.buf)]
		}
		r.buf, r.head, r.tail = nb, 0, r.n
	}
	r.buf[r.tail] = p
	r.tail = (r.tail + 1) & (len(r.buf) - 1)
	r.n++
}

func (r *queueRing) pop() *fabric.Packet {
	if r.n == 0 {
		return nil
	}
	p := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return p
}

func (r *queueRing) popTail() *fabric.Packet {
	if r.n == 0 {
		return nil
	}
	r.tail = (r.tail - 1) & (len(r.buf) - 1)
	p := r.buf[r.tail]
	r.buf[r.tail] = nil
	r.n--
	return p
}

// NewSwitchQueue builds an NDP port queue. rand drives the 50% trim coin;
// it must be deterministic and must belong to this queue alone. A generator
// shared across queues would make coin values depend on the global order in
// which queues trim — an order a sharded run cannot reproduce — so each
// queue draws from its own stream (see QueueFactory).
func NewSwitchQueue(cfg SwitchConfig, rand *sim.Rand) *SwitchQueue {
	return &SwitchQueue{cfg: cfg, rand: rand}
}

// Enqueue applies the NDP admission policy.
func (q *SwitchQueue) Enqueue(p *fabric.Packet) {
	q.NoteEnqueue(p)
	if p.IsControl() {
		q.enqueueControl(p)
		return
	}
	if q.data.n < q.cfg.DataCapPackets {
		q.dataBytesQueued += int(p.Size)
		q.data.push(p)
		q.NoteDepth(q.dataBytesQueued + q.hdrBytesQueued)
		return
	}
	// Data queue full: trim. With probability 1/2 the tail of the data
	// queue is the victim and the arrival takes its place.
	victim := p
	if !q.cfg.TrimArrivingOnly && q.data.n > 0 && q.rand.Bool() {
		victim = q.data.popTail()
		q.dataBytesQueued -= int(victim.Size)
		q.dataBytesQueued += int(p.Size)
		q.data.push(p)
	}
	victim.Trim()
	q.Trims++
	q.enqueueControl(victim)
}

func (q *SwitchQueue) enqueueControl(p *fabric.Packet) {
	if q.hdrBytesQueued+int(p.Size) <= q.cfg.HeaderCapBytes {
		q.hdrBytesQueued += int(p.Size)
		q.hdr.push(p)
		q.NoteDepth(q.dataBytesQueued + q.hdrBytesQueued)
		return
	}
	// Header queue overflow: return-to-sender, unless the packet has
	// already been bounced once (or bouncing is disabled), in which case
	// it is lost and the sender's RTO is the backstop.
	if !q.cfg.DisableBounce && q.BounceSink != nil &&
		p.Trimmed() && p.Flags&fabric.FlagBounced == 0 {
		q.Bounces++
		p.Bounce()
		q.BounceSink(p)
		return
	}
	q.Drops++
	fabric.Free(p)
}

// Dequeue serves the header queue with priority, but after HeaderWRR
// consecutive header packets it serves one data packet so that trimmed
// headers cannot starve payloads (the anti-collapse measure of §3.1).
func (q *SwitchQueue) Dequeue() *fabric.Packet {
	serveData := q.hdr.n == 0 ||
		(q.cfg.HeaderWRR > 0 && q.hdrServed >= q.cfg.HeaderWRR && q.data.n > 0)
	if serveData && q.data.n > 0 {
		p := q.data.pop()
		q.dataBytesQueued -= int(p.Size)
		q.hdrServed = 0
		return p
	}
	if p := q.hdr.pop(); p != nil {
		q.hdrBytesQueued -= int(p.Size)
		q.hdrServed++
		return p
	}
	return nil
}

// Empty reports whether both queues are empty.
func (q *SwitchQueue) Empty() bool { return q.data.n == 0 && q.hdr.n == 0 }

// Bytes returns total queued bytes across both queues.
func (q *SwitchQueue) Bytes() int { return q.dataBytesQueued + q.hdrBytesQueued }

// DataPackets returns the data-queue depth in packets.
func (q *SwitchQueue) DataPackets() int { return q.data.n }

// HeaderPackets returns the header-queue depth in packets.
func (q *SwitchQueue) HeaderPackets() int { return q.hdr.n }

// QueueFactory returns a topo.Config-compatible queue factory producing NDP
// switch queues with the given configuration. Each queue's trim coin draws
// from its own RNG stream, derived from the seed and the queue's stable
// name: coin values then depend only on the sequence of trims at that one
// port, never on the global interleaving of trims across the fabric, which
// keeps results identical for any shard count. Call WireBounce on the built
// topology's switches afterwards so return-to-sender headers re-enter the
// routing pipeline.
func QueueFactory(cfg SwitchConfig, seed uint64) func(name string) fabric.Queue {
	return func(name string) fabric.Queue {
		return NewSwitchQueue(cfg, sim.NewRand(seed^hashName(name)))
	}
}

// hashName is FNV-1a over the queue's name — a stable, construction-order-
// independent identity for deriving per-queue RNG streams.
func hashName(name string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	return h
}

// WireBounce connects every NDP SwitchQueue on the given switches to its
// switch's ForwardBounced so return-to-sender headers re-enter the routing
// pipeline. Call after the topology is built.
func WireBounce(switches []*fabric.Switch) {
	for _, sw := range switches {
		sw := sw
		for _, port := range sw.Ports {
			if q, ok := port.Q.(*SwitchQueue); ok {
				q.BounceSink = sw.ForwardBounced
			}
		}
	}
}
