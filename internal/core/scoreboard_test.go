package core

import (
	"ndp/internal/fabric"
	"testing"

	"ndp/internal/sim"
	"ndp/internal/topo"
)

func TestPathScoreboardExcludesNackOutliers(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	s := st[0].Connect(st[15], -1, FlowOpts{})
	// Poison path 0's statistics: heavy NACKs vs clean ACKs elsewhere.
	for i := 0; i < 40; i++ {
		s.pstats[0].naks++
		for p := 1; p < len(s.paths); p++ {
			s.pstats[p].acks++
		}
	}
	s.repermute()
	if s.ExcludedPaths() == 0 {
		t.Fatal("outlier path not excluded")
	}
	for _, pid := range s.perm {
		if pid == 0 {
			t.Fatal("excluded path still in permutation")
		}
	}
	_ = net
}

func TestPathScoreboardExclusionIsTemporary(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	_ = net
	s := st[0].Connect(st[15], -1, FlowOpts{})
	for i := 0; i < 40; i++ {
		s.pstats[0].naks++
		for p := 1; p < len(s.paths); p++ {
			s.pstats[p].acks++
		}
	}
	s.repermute()
	if s.ExcludedPaths() == 0 {
		t.Fatal("setup: path should be excluded")
	}
	// Counters decay by 1/4 per cycle; after enough cycles with no new
	// NACKs the path's history fades below the sample threshold and it is
	// re-probed ("temporarily removes outliers").
	for i := 0; i < 20; i++ {
		s.repermute()
	}
	if s.ExcludedPaths() != 0 {
		t.Error("exclusion never expired after decay")
	}
}

func TestPathScoreboardSymmetricNacksNotExcluded(t *testing.T) {
	// Under incast every path sees the same NACK fraction; nothing should
	// be excluded (the mean tracks the congestion level).
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	_ = net
	s := st[0].Connect(st[15], -1, FlowOpts{})
	for i := 0; i < 40; i++ {
		for p := 0; p < len(s.paths); p++ {
			s.pstats[p].naks++
			if i%3 == 0 {
				s.pstats[p].acks++
			}
		}
	}
	s.repermute()
	if s.ExcludedPaths() != 0 {
		t.Errorf("%d paths excluded despite symmetric congestion", s.ExcludedPaths())
	}
}

func TestDisablePathPenalty(t *testing.T) {
	cfg := DefaultConfig()
	cfg.DisablePathPenalty = true
	net, st := ndpNet(4, DefaultSwitchConfig(9000), cfg)
	_ = net
	s := st[0].Connect(st[15], -1, FlowOpts{})
	for i := 0; i < 40; i++ {
		s.pstats[0].naks++
		for p := 1; p < len(s.paths); p++ {
			s.pstats[p].acks++
		}
	}
	s.repermute()
	if s.ExcludedPaths() != 0 {
		t.Error("penalty disabled but paths excluded")
	}
}

func TestPathPermutationCoversAllPaths(t *testing.T) {
	// Each permutation cycle must use every (non-excluded) path exactly
	// once — the paper's "sends one packet on each path, then re-permutes".
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	_ = net
	s := st[0].Connect(st[15], -1, FlowOpts{})
	n := len(s.paths)
	seen := make(map[int16]int)
	// Fresh cycle boundary: drain the current permutation first.
	for s.permPos < len(s.perm) {
		s.nextPathID()
	}
	for i := 0; i < n; i++ {
		seen[s.nextPathID()]++
	}
	if len(seen) != n {
		t.Fatalf("one cycle used %d distinct paths, want %d", len(seen), n)
	}
	for pid, c := range seen {
		if c != 1 {
			t.Errorf("path %d used %d times in one cycle", pid, c)
		}
	}
}

func TestSwitchLBModeSpraysWithoutSourceRoutes(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SwitchLB = true
	net, st := ndpNet(4, DefaultSwitchConfig(9000), cfg)
	done := false
	st[0].Connect(st[15], 90_000, FlowOpts{OnReceiverDone: func(r *Receiver) {
		done = true
		if r.Bytes() != 90_000 {
			t.Errorf("bytes = %d", r.Bytes())
		}
	}})
	net.EL.RunUntil(50 * sim.Millisecond)
	if !done {
		t.Fatal("switch-LB transfer incomplete")
	}
}

func TestPullFIFOAblationIsUnfair(t *testing.T) {
	// With FIFO pulls, an incast burst that arrives first monopolizes the
	// pull queue; with fair queuing a late-starting flow catches up. We
	// check the mechanism coarsely: both modes still complete everything.
	for _, fifo := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.PullFIFO = fifo
		net, st := ndpNet(4, DefaultSwitchConfig(9000), cfg)
		done := 0
		for i := 1; i <= 8; i++ {
			st[i].Connect(st[0], 450_000, FlowOpts{OnReceiverDone: func(r *Receiver) { done++ }})
		}
		net.EL.RunUntil(200 * sim.Millisecond)
		if done != 8 {
			t.Fatalf("fifo=%v: %d/8 flows completed", fifo, done)
		}
	}
}

// Reordered pulls must release exactly the right amount of credit: a pull
// with a higher sequence arriving first releases the delta; the stale pull
// then releases nothing.
func TestPullSequenceDeltaOnReorder(t *testing.T) {
	net, st := ndpNet(4, DefaultSwitchConfig(9000), DefaultConfig())
	_ = net
	s := st[0].Connect(st[15], 9_000_000, FlowOpts{})
	net.EL.RunUntil(200 * sim.Microsecond)
	sent0 := s.PacketsSent

	// Deliver pull seq = lastPullSeq+2 first, then +1 (stale).
	base := s.lastPullSeq
	p2 := newPull(s.Flow, 15, 0, base+2)
	s.Receive(p2)
	if s.PacketsSent != sent0+2 {
		t.Fatalf("out-of-order pull released %d packets, want 2", s.PacketsSent-sent0)
	}
	p1 := newPull(s.Flow, 15, 0, base+1)
	s.Receive(p1)
	if s.PacketsSent != sent0+2 {
		t.Fatalf("stale pull released extra credit")
	}
}

func newPull(flow uint64, src, dst int32, seq int64) *fabric.Packet {
	p := fabric.NewControl(fabric.Pull, flow, src, dst)
	p.PullSeq = seq
	return p
}

func TestRxDelaySlowsDelivery(t *testing.T) {
	fct := func(d sim.Time) sim.Time {
		cfg := DefaultConfig()
		cfg.RxDelay = d
		net, st := ndpNet(4, DefaultSwitchConfig(9000), cfg)
		var done sim.Time
		st[0].Connect(st[15], 900_000, FlowOpts{OnReceiverDone: func(r *Receiver) {
			done = r.CompletedAt
		}})
		net.EL.RunUntil(sim.Second)
		return done
	}
	fast := fct(0)
	slow := fct(50 * sim.Microsecond)
	if fast == 0 || slow == 0 {
		t.Fatal("transfers incomplete")
	}
	if slow <= fast {
		t.Errorf("RxDelay had no effect: %v vs %v", fast, slow)
	}
}

func TestTopoClusterInterfaces(t *testing.T) {
	var _ topo.Cluster = topo.NewFatTree(4, topo.Config{})
	var _ topo.Cluster = topo.NewTwoTier(2, 2, 2, topo.Config{})
	var _ topo.Cluster = topo.NewBackToBack(topo.Config{})
}
