package core

import (
	"testing"

	"ndp/internal/fabric"
	"ndp/internal/sim"
)

func testQueue(cfg SwitchConfig) *SwitchQueue {
	return NewSwitchQueue(cfg, sim.NewRand(1))
}

func data(seq int64) *fabric.Packet { return fabric.NewData(1, 0, 1, seq, 9000) }

func TestSwitchQueueTrimsWhenFull(t *testing.T) {
	q := testQueue(DefaultSwitchConfig(9000))
	for i := int64(0); i < 12; i++ {
		q.Enqueue(data(i))
	}
	if q.DataPackets() != 8 {
		t.Fatalf("data queue depth = %d, want 8", q.DataPackets())
	}
	if q.HeaderPackets() != 4 {
		t.Fatalf("header queue depth = %d, want 4 trimmed", q.HeaderPackets())
	}
	if q.Stats().Trims != 4 {
		t.Errorf("trims = %d, want 4", q.Stats().Trims)
	}
	// Headers are served with priority.
	p := q.Dequeue()
	if !p.Trimmed() || p.Size != fabric.HeaderSize {
		t.Errorf("first dequeue should be a trimmed header, got %v", p)
	}
	if p.DataSize != 9000 {
		t.Errorf("trimmed header must keep DataSize, got %d", p.DataSize)
	}
}

func TestSwitchQueueTrimCoinPicksTailSometimes(t *testing.T) {
	// With the coin enabled, across many overflows both the arriving packet
	// and the queue tail must get trimmed sometimes.
	q := testQueue(DefaultSwitchConfig(9000))
	arrivingTrimmed, tailTrimmed := 0, 0
	for i := int64(0); i < 8; i++ {
		q.Enqueue(data(i))
	}
	for i := int64(100); i < 300; i++ {
		q.Enqueue(data(i))
		// Inspect the header queue's newest entry: if it carries the
		// arriving seq, the arrival was trimmed; otherwise the tail was.
		h := q.hdr.popTail()
		if h.Seq == i {
			arrivingTrimmed++
		} else {
			tailTrimmed++
		}
		fabric.Free(h)
	}
	if arrivingTrimmed == 0 || tailTrimmed == 0 {
		t.Errorf("coin never flipped: arriving=%d tail=%d", arrivingTrimmed, tailTrimmed)
	}
	// Roughly balanced.
	if arrivingTrimmed < 60 || tailTrimmed < 60 {
		t.Errorf("coin biased: arriving=%d tail=%d (want ~100 each)", arrivingTrimmed, tailTrimmed)
	}
}

func TestSwitchQueueTrimArrivingOnlyAblation(t *testing.T) {
	cfg := DefaultSwitchConfig(9000)
	cfg.TrimArrivingOnly = true
	q := testQueue(cfg)
	for i := int64(0); i < 8; i++ {
		q.Enqueue(data(i))
	}
	for i := int64(100); i < 120; i++ {
		q.Enqueue(data(i))
		h := q.hdr.popTail()
		if h.Seq != i {
			t.Fatalf("TrimArrivingOnly trimmed the tail (seq %d)", h.Seq)
		}
		fabric.Free(h)
	}
}

func TestSwitchQueueWRRPreventsDataStarvation(t *testing.T) {
	cfg := DefaultSwitchConfig(9000)
	q := testQueue(cfg)
	// Fill data queue, then flood control packets.
	for i := int64(0); i < 8; i++ {
		q.Enqueue(data(i))
	}
	for i := 0; i < 100; i++ {
		q.Enqueue(fabric.NewControl(fabric.Ack, 2, 1, 0))
	}
	// Serve 33 packets: with 10:1 WRR we must see 3 data packets.
	dataServed := 0
	for i := 0; i < 33; i++ {
		p := q.Dequeue()
		if p.Type == fabric.Data && !p.Trimmed() {
			dataServed++
		}
		fabric.Free(p)
	}
	if dataServed != 3 {
		t.Errorf("served %d data packets in 33, want 3 (10:1 WRR)", dataServed)
	}
}

func TestSwitchQueueStrictPriorityAblation(t *testing.T) {
	cfg := DefaultSwitchConfig(9000)
	cfg.HeaderWRR = 0 // strict priority: headers can starve data
	q := testQueue(cfg)
	q.Enqueue(data(0))
	for i := 0; i < 50; i++ {
		q.Enqueue(fabric.NewControl(fabric.Ack, 2, 1, 0))
	}
	for i := 0; i < 50; i++ {
		p := q.Dequeue()
		if p.Type == fabric.Data {
			t.Fatalf("strict priority served data at position %d", i)
		}
		fabric.Free(p)
	}
}

func TestSwitchQueueBounceOnHeaderOverflow(t *testing.T) {
	cfg := DefaultSwitchConfig(9000)
	cfg.HeaderCapBytes = 2 * fabric.HeaderSize // room for only two headers
	q := testQueue(cfg)
	var bounced []*fabric.Packet
	q.BounceSink = func(p *fabric.Packet) { bounced = append(bounced, p) }
	for i := int64(0); i < 8; i++ {
		q.Enqueue(data(i))
	}
	for i := int64(100); i < 105; i++ {
		q.Enqueue(data(i)) // all trimmed; only 2 headers fit
	}
	if len(bounced) != 3 {
		t.Fatalf("bounced %d, want 3", len(bounced))
	}
	for _, p := range bounced {
		if p.Flags&fabric.FlagBounced == 0 || p.Src != 1 || p.Dst != 0 {
			t.Errorf("bounced packet not return-to-sender: %v", p)
		}
		fabric.Free(p)
	}
	if q.Stats().Bounces != 3 {
		t.Errorf("Bounces stat = %d, want 3", q.Stats().Bounces)
	}
}

func TestSwitchQueueDropsTwiceBounced(t *testing.T) {
	cfg := DefaultSwitchConfig(9000)
	cfg.HeaderCapBytes = fabric.HeaderSize
	q := testQueue(cfg)
	q.BounceSink = func(p *fabric.Packet) { t.Fatal("re-bounced an already-bounced header") }
	q.Enqueue(fabric.NewControl(fabric.Ack, 9, 0, 1)) // fills the header queue
	p := data(0)
	p.Trim()
	p.Bounce() // already on its way back
	q.Enqueue(p)
	if q.Stats().Drops != 1 {
		t.Errorf("drops = %d, want 1", q.Stats().Drops)
	}
}

func TestSwitchQueueDisableBounceAblation(t *testing.T) {
	cfg := DefaultSwitchConfig(9000)
	cfg.HeaderCapBytes = fabric.HeaderSize
	cfg.DisableBounce = true
	q := testQueue(cfg)
	q.BounceSink = func(p *fabric.Packet) { t.Fatal("bounce disabled but BounceSink called") }
	q.Enqueue(fabric.NewControl(fabric.Ack, 9, 0, 1))
	p := data(0)
	p.Trim()
	q.Enqueue(p)
	if q.Stats().Drops != 1 {
		t.Errorf("drops = %d, want 1", q.Stats().Drops)
	}
}

func TestSwitchQueueBytesAccounting(t *testing.T) {
	q := testQueue(DefaultSwitchConfig(9000))
	q.Enqueue(data(0))
	q.Enqueue(fabric.NewControl(fabric.Nack, 1, 1, 0))
	if q.Bytes() != 9000+fabric.HeaderSize {
		t.Errorf("Bytes = %d", q.Bytes())
	}
	fabric.Free(q.Dequeue())
	fabric.Free(q.Dequeue())
	if q.Bytes() != 0 || !q.Empty() {
		t.Errorf("after draining: bytes=%d empty=%v", q.Bytes(), q.Empty())
	}
}
