// Package dctcp configures the DCTCP baseline (Alizadeh et al., SIGCOMM
// 2010) the paper compares against: TCP NewReno with sharp-threshold ECN
// marking at switches and a once-per-window fractional cut driven by the
// EWMA of the marked fraction. The congestion-control machinery itself
// lives in internal/tcp (Config.DCTCP); this package pins the paper's
// recommended parameters — 200-packet switch buffers with a 30-packet
// marking threshold — and provides the switch queue factory.
package dctcp

import (
	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/tcp"
)

// MarkThresholdPackets is the paper's recommended DCTCP marking threshold.
const MarkThresholdPackets = 30

// BufferPackets is the switch buffer the paper grants DCTCP (vs NDP's 8).
const BufferPackets = 200

// QueueFactory returns ECN-marking switch queues with the paper's DCTCP
// sizing for the given MTU.
func QueueFactory(mtu int) func(name string) fabric.Queue {
	return func(string) fabric.Queue {
		return fabric.NewECNQueue(BufferPackets*mtu, MarkThresholdPackets*mtu)
	}
}

// SenderConfig returns the DCTCP endpoint configuration: ECN-driven control
// with gain 1/16 and a datacenter-tuned MinRTO.
func SenderConfig(mtu int) tcp.Config {
	return tcp.Config{
		MSS:         mtu,
		InitialCwnd: 10,
		MaxCwnd:     1000,
		MinRTO:      10 * sim.Millisecond,
		Handshake:   true,
		DCTCP:       true,
		G:           1.0 / 16,
	}
}

// NewSender builds a DCTCP sender over a fixed path.
func NewSender(host *fabric.Host, dst int32, flow uint64, path []int16, size int64, mtu int) *tcp.Sender {
	cfg := SenderConfig(mtu)
	return tcp.NewSender(host, dst, flow, path, tcp.NewFixedSource(size, mtu), cfg)
}

// NewReceiver builds the matching receiver; DCTCP receivers are plain TCP
// receivers with per-packet ECN echo, which internal/tcp always does.
func NewReceiver(host *fabric.Host, peer int32, flow uint64, revPath []int16) *tcp.Receiver {
	return tcp.NewReceiver(host, peer, flow, revPath)
}
