package dctcp

import (
	"testing"

	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/tcp"
	"ndp/internal/topo"
)

func dctcpNet(k int) (*topo.FatTree, []*fabric.Demux) {
	cfg := topo.Config{Seed: 13, SwitchQueue: QueueFactory(9000)}
	net := topo.NewFatTree(k, cfg)
	dm := make([]*fabric.Demux, net.NumHosts())
	for i, h := range net.Hosts {
		dm[i] = fabric.NewDemux()
		h.Stack = dm[i]
	}
	return net, dm
}

func TestQueueFactorySizing(t *testing.T) {
	q := QueueFactory(9000)("x")
	eq, ok := q.(*fabric.ECNQueue)
	if !ok {
		t.Fatalf("factory returned %T, want *fabric.ECNQueue", q)
	}
	if eq.MaxQueue != BufferPackets*9000 {
		t.Errorf("buffer = %d bytes, want %d", eq.MaxQueue, BufferPackets*9000)
	}
	if eq.MarkThreshold != MarkThresholdPackets*9000 {
		t.Errorf("mark threshold = %d, want %d", eq.MarkThreshold, MarkThresholdPackets*9000)
	}
}

func TestSenderConfigIsDCTCP(t *testing.T) {
	cfg := SenderConfig(1500)
	if !cfg.DCTCP || cfg.MSS != 1500 || cfg.G != 1.0/16 {
		t.Errorf("config = %+v", cfg)
	}
}

// Incast with DCTCP: ECN keeps queues shallow enough that 200-packet
// buffers absorb the burst with no drops — the reason the paper says DCTCP
// is only ~5% off optimal on incast.
func TestDCTCPIncastNoDrops(t *testing.T) {
	net, dm := dctcpNet(4)
	done := 0
	for i := int32(1); i < 16; i++ {
		snd := NewSender(net.Hosts[i], 0, uint64(i), net.Paths(i, 0)[0], 450_000, 9000)
		rcv := NewReceiver(net.Hosts[0], i, uint64(i), net.Paths(0, i)[0])
		rcv.OnComplete = func(r *tcp.Receiver) { done++ }
		dm[i].Register(uint64(i), snd)
		dm[0].Register(uint64(i), rcv)
		snd.Start()
	}
	net.EL.RunUntil(200 * sim.Millisecond)
	if done != 15 {
		t.Fatalf("%d/15 incast flows completed", done)
	}
	if drops := net.CollectStats().Drops; drops != 0 {
		t.Errorf("DCTCP incast dropped %d packets with 200-packet buffers", drops)
	}
	if marks := net.CollectStats().Marks; marks == 0 {
		t.Error("no ECN marks during a 15:1 incast")
	}
}
