// Package hostmodel captures the end-host artifacts the paper measures on
// its DPDK/NetFPGA testbed and then feeds back into simulation (§5, §6):
// per-packet protocol processing cost, interrupt wake latency, deep CPU
// sleep-state wake latency (the dominant term in Figure 8), and the
// empirical imperfect PULL pacing distribution of Figure 12 that Figures
// 11/13 replay in the simulator.
//
// We have no testbed, so the constants here are the paper's reported
// numbers: ~20us per-side DPDK processing for a 1KB RPC (62us NDP RPC vs
// 22us raw ping, split across send/receive), ~50us of interrupt+copy
// overhead for kernel TCP, and ~160us deep-sleep wake-up.
package hostmodel

import (
	"ndp/internal/sim"
)

// Delays models fixed end-host costs added to packet handling.
type Delays struct {
	// Processing is the per-packet stack cost (applies to every arrival).
	Processing sim.Time
	// InterruptWake is added to interrupt-driven stacks (kernel TCP) on
	// each burst arrival after idle.
	InterruptWake sim.Time
	// SleepWake is added when the CPU wakes from a deep sleep state
	// (C-states below C1); the paper measured ~160us.
	SleepWake sim.Time
}

// NDPHost returns the polled-DPDK cost model: protocol plus application
// processing of roughly 20us per side and no interrupt or sleep penalty
// (the core spins).
func NDPHost() Delays {
	return Delays{Processing: 20 * sim.Microsecond}
}

// TCPHostNoSleep returns the kernel-TCP cost model with deep sleep states
// disabled (the "no sleep" curves of Figure 8): interrupt handling and
// copies add ~25us per side on top of similar protocol processing.
func TCPHostNoSleep() Delays {
	return Delays{Processing: 20 * sim.Microsecond, InterruptWake: 25 * sim.Microsecond}
}

// TCPHostDeepSleep adds the ~160us deep-sleep wake-up the paper found
// dominating TCP and TFO latency.
func TCPHostDeepSleep() Delays {
	d := TCPHostNoSleep()
	d.SleepWake = 160 * sim.Microsecond
	return d
}

// RoundCost returns the host-side latency added to one network round trip:
// processing plus interrupt handling on each of the two hosts.
func (d Delays) RoundCost() sim.Time {
	return 2 * (d.Processing + d.InterruptWake)
}

// PerRPC returns the total host-side latency added to a one-round RPC,
// including the single deep-sleep wake-up (the CPU only sleeps once per
// exchange; subsequent packets find it warm).
func (d Delays) PerRPC() sim.Time {
	return d.RoundCost() + d.SleepWake
}

// PullJitter models the measured PULL spacing of the Linux prototype
// (Figure 12): the median matches the target spacing, with variance that
// is substantial for 1500B packets and small for 9000B. The returned
// function samples the extra gap beyond the target (can be negative but is
// clamped at -spacing/4 so the pacer never runs ahead of line rate by
// much).
//
// The shape is a two-sided geometric-ish distribution: most samples within
// a few hundred nanoseconds, occasional multi-microsecond stragglers —
// matching the long right tail of the measured CDF.
func PullJitter(mtu int) func(r *sim.Rand) sim.Time {
	// Scale jitter with packet size: the 1500B distribution is relatively
	// much wider than the 9000B one.
	var scale sim.Time
	if mtu <= 1500 {
		scale = 600 * sim.Nanosecond
	} else {
		scale = 300 * sim.Nanosecond
	}
	return func(r *sim.Rand) sim.Time {
		u := r.Float64()
		var j sim.Time
		switch {
		case u < 0.70: // tight around target
			j = r.Duration(scale/2) - scale/4
		case u < 0.95: // moderate lateness
			j = r.Duration(scale * 2)
		default: // long tail: the OS scheduler got in the way
			j = scale*2 + r.Duration(scale*20)
		}
		return j
	}
}

// RPCLatency composes a simulated on-the-wire round-trip time with a host
// cost model — used to regenerate Figure 8's comparison without a testbed.
// rounds is the number of network round trips the exchange needs (1 for
// NDP/TFO, 2 for TCP's handshake-then-data); each round pays the wire RTT
// plus per-round host costs, and a deep-sleep wake is paid once per RPC.
func RPCLatency(netRTT sim.Time, rounds int, d Delays) sim.Time {
	return sim.Time(rounds)*(netRTT+d.RoundCost()) + d.SleepWake
}
