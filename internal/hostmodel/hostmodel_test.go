package hostmodel

import (
	"testing"

	"ndp/internal/sim"
)

func TestCostModelsOrdering(t *testing.T) {
	ndp := NDPHost()
	tfoNoSleep := TCPHostNoSleep()
	deep := TCPHostDeepSleep()
	if !(ndp.PerRPC() < tfoNoSleep.PerRPC() && tfoNoSleep.PerRPC() < deep.PerRPC()) {
		t.Errorf("cost ordering broken: ndp=%v tcpNoSleep=%v tcpSleep=%v",
			ndp.PerRPC(), tfoNoSleep.PerRPC(), deep.PerRPC())
	}
	// The paper's headline: one deep-sleep wake (~160us) dominates.
	if deep.PerRPC()-tfoNoSleep.PerRPC() != 160*sim.Microsecond {
		t.Errorf("deep sleep delta = %v, want 160us (one wake per RPC)", deep.PerRPC()-tfoNoSleep.PerRPC())
	}
}

func TestRPCLatencyComposition(t *testing.T) {
	net := 3 * sim.Microsecond // 1KB request+response back-to-back
	ndp := RPCLatency(net, 1, NDPHost())
	tfo := RPCLatency(net, 1, TCPHostDeepSleep())
	tcp := RPCLatency(net, 2, TCPHostDeepSleep())
	if !(ndp < tfo && tfo < tcp) {
		t.Errorf("latency ordering: ndp=%v tfo=%v tcp=%v", ndp, tfo, tcp)
	}
	// Figure 8 shape: TFO ~4x NDP (paper: 62us vs ~250us), TCP ~5x.
	if ratio := float64(tfo) / float64(ndp); ratio < 3 || ratio > 9 {
		t.Errorf("TFO/NDP ratio %.2f outside Figure 8's ballpark", ratio)
	}
	if ratio := float64(tcp) / float64(ndp); ratio < 4 || ratio > 12 {
		t.Errorf("TCP/NDP ratio %.2f outside Figure 8's ballpark", ratio)
	}
	// Without sleep states the gap narrows to ~2x/~4x.
	tfoNS := RPCLatency(net, 1, TCPHostNoSleep())
	if ratio := float64(tfoNS) / float64(ndp); ratio < 1.5 || ratio > 4 {
		t.Errorf("no-sleep TFO/NDP ratio %.2f outside ballpark", ratio)
	}
}

func TestPullJitterDistribution(t *testing.T) {
	r := sim.NewRand(5)
	for _, mtu := range []int{1500, 9000} {
		j := PullJitter(mtu)
		var sum sim.Time
		var max sim.Time
		const n = 100000
		for i := 0; i < n; i++ {
			v := j(r)
			if v > max {
				max = v
			}
			sum += v
		}
		mean := sum / n
		if mean < 0 {
			t.Errorf("mtu=%d: mean jitter %v negative; pacer would run early", mtu, mean)
		}
		if mean > 2*sim.Microsecond {
			t.Errorf("mtu=%d: mean jitter %v too large", mtu, mean)
		}
		if max < sim.Microsecond {
			t.Errorf("mtu=%d: no tail stragglers observed (max %v)", mtu, max)
		}
	}
	// 1500B jitter must be wider than 9000B (Figure 12).
	wide := PullJitter(1500)
	narrow := PullJitter(9000)
	var sw, sn sim.Time
	for i := 0; i < 50000; i++ {
		sw += wide(r)
		sn += narrow(r)
	}
	if sw <= sn {
		t.Errorf("1500B jitter (%v total) not wider than 9000B (%v)", sw, sn)
	}
}
