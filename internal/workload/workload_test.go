package workload

import (
	"testing"
	"testing/quick"

	"ndp/internal/sim"
)

// Property: Permutation is a derangement — a bijection with no fixed point.
func TestPermutationProperty(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%60) + 2
		p := Permutation(n, sim.NewRand(seed))
		seen := make([]bool, n)
		for i, d := range p {
			if d == i || d < 0 || d >= n || seen[d] {
				return false
			}
			seen[d] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRandomMatrixNoSelf(t *testing.T) {
	r := sim.NewRand(1)
	for trial := 0; trial < 50; trial++ {
		m := RandomMatrix(16, r)
		for i, d := range m {
			if d == i || d < 0 || d >= 16 {
				t.Fatalf("invalid destination %d for host %d", d, i)
			}
		}
	}
}

func TestIncastSenders(t *testing.T) {
	s := IncastSenders(5, 3, 16)
	want := []int{6, 7, 8}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("senders = %v, want %v", s, want)
		}
	}
	// Wraps around and excludes the receiver.
	s = IncastSenders(14, 4, 16)
	for _, v := range s {
		if v == 14 {
			t.Fatal("receiver included as sender")
		}
	}
	// Capped at hosts-1.
	if got := IncastSenders(0, 100, 16); len(got) != 15 {
		t.Errorf("senders = %d, want capped at 15", len(got))
	}
}

func TestSizeDistSampling(t *testing.T) {
	d := NewSizeDist(map[int64]float64{100: 0.5, 1000: 0.5})
	r := sim.NewRand(7)
	counts := map[int64]int{}
	for i := 0; i < 10000; i++ {
		counts[d.Sample(r)]++
	}
	if len(counts) != 2 {
		t.Fatalf("sampled values: %v", counts)
	}
	if counts[100] < 4500 || counts[100] > 5500 {
		t.Errorf("100B sampled %d/10000, want ~5000", counts[100])
	}
}

func TestFacebookWebShape(t *testing.T) {
	d := FacebookWeb()
	r := sim.NewRand(3)
	small, large := 0, 0
	for i := 0; i < 10000; i++ {
		s := d.Sample(r)
		if s <= 2000 {
			small++
		}
		if s >= 200_000 {
			large++
		}
	}
	if small < 5500 {
		t.Errorf("small flows %d/10000; distribution should be dominated by small packets", small)
	}
	if large == 0 {
		t.Error("no large flows sampled; tail missing")
	}
	if m := d.Mean(); m < 5_000 || m > 50_000 {
		t.Errorf("mean flow size %v bytes implausible", m)
	}
}

func TestClosedLoopKeepsConnsRunning(t *testing.T) {
	el := sim.NewEventList()
	active := 0
	cl := &ClosedLoop{
		Hosts:         4,
		Conns:         2,
		Gap:           sim.Millisecond,
		Sizes:         NewSizeDist(map[int64]float64{1000: 1}),
		Seed:          11,
		NotifyLatency: func(int, int) sim.Time { return 500 * sim.Nanosecond },
		Defer:         func(from, to int, at sim.Time, fn func()) { el.At(at, fn) },
	}
	completions := 0
	cl.Start = func(_, src, dst int, size int64, done func(at sim.Time)) {
		if src == dst {
			t.Fatal("closed loop generated self-flow")
		}
		active++
		// Flows complete after 100us.
		el.After(100*sim.Microsecond, func() {
			active--
			completions++
			done(el.Now())
		})
	}
	cl.Run()
	el.RunUntil(20 * sim.Millisecond)
	if cl.Launched() < 20 {
		t.Errorf("launched %d flows in 20ms; closed loop not cycling", cl.Launched())
	}
	if completions < 16 {
		t.Errorf("completions = %d", completions)
	}
}
