// Package workload generates the traffic patterns of the paper's
// evaluation: permutation and random traffic matrices, N-to-1 incasts,
// and the Facebook web-server flow-size distribution used for the
// oversubscribed-core experiment (§6.3, after Roy et al., SIGCOMM 2015).
package workload

import (
	"maps"
	"slices"

	"ndp/internal/sim"
)

// Permutation returns a derangement-style traffic matrix: dst[i] is the
// destination of host i, every host sends to exactly one host and receives
// from exactly one host, and no host sends to itself. This is the paper's
// worst-case full-load matrix.
func Permutation(n int, r *sim.Rand) []int {
	for {
		p := r.Perm(n)
		ok := true
		for i, d := range p {
			if d == i {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
}

// RandomMatrix returns dst[i] = a uniformly random host other than i
// (hosts may receive from many senders — the "Random" curve of Figure 4).
func RandomMatrix(n int, r *sim.Rand) []int {
	dst := make([]int, n)
	for i := range dst {
		d := r.Intn(n - 1)
		if d >= i {
			d++
		}
		dst[i] = d
	}
	return dst
}

// IncastSenders picks n distinct senders for a single receiver, nearest
// racks first (the paper's incasts fan in from across the topology; taking
// hosts in index order after the receiver reproduces the mixed-distance
// composition).
func IncastSenders(receiver, n, hosts int) []int {
	if n > hosts-1 {
		n = hosts - 1
	}
	out := make([]int, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, (receiver+i)%hosts)
	}
	return out
}

// SizeDist is a discrete flow-size distribution sampled by inverse CDF.
type SizeDist struct {
	sizes []int64   // ascending
	cdf   []float64 // cumulative probability aligned with sizes
}

// NewSizeDist builds a distribution from (size, probability) pairs; the
// probabilities are normalized.
func NewSizeDist(pairs map[int64]float64) *SizeDist {
	// Sorted-key iteration throughout: float sums do not commute bit for
	// bit, so accumulating total or cum in map order would make the CDF —
	// and every golden downstream of it — differ between runs.
	d := &SizeDist{sizes: slices.Sorted(maps.Keys(pairs))}
	var total float64
	for _, s := range d.sizes {
		total += pairs[s]
	}
	var cum float64
	for _, s := range d.sizes {
		cum += pairs[s] / total
		d.cdf = append(d.cdf, cum)
	}
	return d
}

// Sample draws one flow size.
func (d *SizeDist) Sample(r *sim.Rand) int64 {
	u := r.Float64()
	for i, c := range d.cdf {
		if u <= c {
			return d.sizes[i]
		}
	}
	return d.sizes[len(d.sizes)-1]
}

// Mean returns the distribution mean in bytes.
func (d *SizeDist) Mean() float64 {
	var m, prev float64
	for i, s := range d.sizes {
		m += float64(s) * (d.cdf[i] - prev)
		prev = d.cdf[i]
	}
	return m
}

// FacebookWeb approximates the web-server flow-size distribution of Roy et
// al. (Figure 6a): dominated by very small flows (single small packets —
// the "really small packets, poor compression" case the paper calls least
// favourable to NDP), with a heavy tail of multi-hundred-KB responses.
func FacebookWeb() *SizeDist {
	return NewSizeDist(map[int64]float64{
		300:     0.30,
		700:     0.20,
		2_000:   0.15,
		5_000:   0.10,
		10_000:  0.08,
		30_000:  0.07,
		80_000:  0.05,
		200_000: 0.03,
		600_000: 0.02,
	})
}

// ClosedLoop drives a closed-loop flow generator: each host keeps Conns
// simultaneous connections to random destinations; when a flow finishes, a
// new one starts after a gap (the paper uses a 1ms median inter-flow gap).
// The caller supplies Start, which must launch one flow and invoke done
// (with the completion time) when it completes.
//
// All state is per-source: each source host draws destinations, sizes and
// gaps from its own RNG stream, and re-launches are routed back to the
// source's scheduling domain through Defer. A flow's completion fires
// wherever the receiver lives; the restart is deferred onto the source
// NotifyLatency later. This decomposition is what lets the generator run
// unchanged — and bit-identically — on a sharded engine, where source and
// receiver may live on different event lists: a single shared RNG would
// make draw values depend on the global completion interleaving.
type ClosedLoop struct {
	Hosts int
	Conns int
	Gap   sim.Time
	Sizes *SizeDist
	// Seed derives the per-source RNG streams.
	Seed uint64
	// NotifyLatency is the delay between a flow completing at host from
	// (where done runs) and source host to learning about it. It models
	// the returning notice and must be at least the engine's cross-shard
	// lookahead for the pair, which depends on where the two hosts landed
	// — wire it to the cluster's MinPathDelay (the minimum physical path
	// is never shorter than the shard cut it crosses). Unsharded callers
	// may return any constant.
	NotifyLatency func(from, to int) sim.Time

	// Start launches a flow of size bytes from src to dst; it must call
	// the provided completion callback with the completion time. It runs
	// in the source host's scheduling domain. slot identifies the
	// connection slot (0..Hosts*Conns-1) launching the flow: a slot's
	// flows are strictly sequential (the next starts only after done has
	// run), so a caller may keep per-slot rather than per-flow state —
	// including the callbacks it wires up — without allocating per flow.
	Start func(slot, src, dst int, size int64, done func(at sim.Time))
	// Defer schedules fn at absolute time at in host to's scheduling
	// domain, emitted by host from (wire it to topo's Cluster.Defer).
	Defer func(from, to int, at sim.Time, fn func())
	// DoneHost reports the host in whose scheduling domain Start's done
	// callback is invoked for a src->dst flow. Most transports complete at
	// the receiver (the default, nil = dst), but sender-driven ones (pHost
	// counts acks at the source) complete at the source — and the Defer
	// hop back to the source must name the emitting domain correctly, or a
	// sharded engine would mutate another shard's emission counters.
	DoneHost func(src, dst int) int

	rands    []sim.Rand
	launched []int64
	slots    []connSlot
}

// Run primes Conns flows per host; completions keep the loop going until
// the caller's deadline bounds the simulation.
func (c *ClosedLoop) Run() {
	c.rands = make([]sim.Rand, c.Hosts)
	c.launched = make([]int64, c.Hosts)
	for h := 0; h < c.Hosts; h++ {
		c.rands[h].Init(c.Seed ^ (uint64(h)+1)*0x9e3779b97f4a7c15)
	}
	c.slots = make([]connSlot, c.Hosts*c.Conns)
	i := 0
	for h := 0; h < c.Hosts; h++ {
		for k := 0; k < c.Conns; k++ {
			s := &c.slots[i]
			i++
			s.init(c, i-1, h)
			s.launch()
		}
	}
}

// Launched returns the total flows started across all sources.
func (c *ClosedLoop) Launched() int64 {
	var n int64
	for _, v := range c.launched {
		n += v
	}
	return n
}

// connSlot is one of a source's Conns connection slots. A slot's flows are
// strictly sequential — launch, complete, hop back, gap, relaunch — so the
// per-flight fields (doneHost, notify) are single-occupancy, and the three
// callbacks in the completion chain can be built once per slot instead of
// once per flow (per-flow closures were a top allocation site of a whole
// closed-loop benchmark run).
type connSlot struct {
	c        *ClosedLoop
	idx      int
	src      int
	doneHost int
	notify   sim.Time

	// relaunching reports which half of the completion chain step runs
	// next: false = hop back just fired (draw the gap), true = gap elapsed
	// (launch the next flow). One stepping callback covers both, since
	// both halves run in the source's domain.
	relaunching bool

	done func(at sim.Time)
	step func()
}

func (s *connSlot) init(c *ClosedLoop, idx, src int) {
	s.c = c
	s.idx = idx
	s.src = src
	s.done = s.onDone
	s.step = s.onStep
}

func (s *connSlot) launch() {
	c := s.c
	r := &c.rands[s.src]
	dst := r.Intn(c.Hosts - 1)
	if dst >= s.src {
		dst++
	}
	size := c.Sizes.Sample(r)
	c.launched[s.src]++
	s.doneHost = dst
	if c.DoneHost != nil {
		s.doneHost = c.DoneHost(s.src, dst)
	}
	c.Start(s.idx, s.src, dst, size, s.done)
}

// onDone runs in doneHost's domain: hop back to the source's domain, then
// draw the gap there (so the source's RNG is only ever touched in its own
// domain, in its own deterministic order).
func (s *connSlot) onDone(at sim.Time) {
	s.notify = at + s.c.NotifyLatency(s.doneHost, s.src)
	s.relaunching = false
	s.c.Defer(s.doneHost, s.src, s.notify, s.step)
}

func (s *connSlot) onStep() {
	c := s.c
	if !s.relaunching {
		s.relaunching = true
		gap := c.Gap/2 + c.rands[s.src].Duration(c.Gap) // median ~= Gap
		c.Defer(s.src, s.src, s.notify+gap, s.step)
		return
	}
	s.launch()
}
