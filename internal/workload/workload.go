// Package workload generates the traffic patterns of the paper's
// evaluation: permutation and random traffic matrices, N-to-1 incasts,
// and the Facebook web-server flow-size distribution used for the
// oversubscribed-core experiment (§6.3, after Roy et al., SIGCOMM 2015).
package workload

import (
	"sort"

	"ndp/internal/sim"
)

// Permutation returns a derangement-style traffic matrix: dst[i] is the
// destination of host i, every host sends to exactly one host and receives
// from exactly one host, and no host sends to itself. This is the paper's
// worst-case full-load matrix.
func Permutation(n int, r *sim.Rand) []int {
	for {
		p := r.Perm(n)
		ok := true
		for i, d := range p {
			if d == i {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
}

// RandomMatrix returns dst[i] = a uniformly random host other than i
// (hosts may receive from many senders — the "Random" curve of Figure 4).
func RandomMatrix(n int, r *sim.Rand) []int {
	dst := make([]int, n)
	for i := range dst {
		d := r.Intn(n - 1)
		if d >= i {
			d++
		}
		dst[i] = d
	}
	return dst
}

// IncastSenders picks n distinct senders for a single receiver, nearest
// racks first (the paper's incasts fan in from across the topology; taking
// hosts in index order after the receiver reproduces the mixed-distance
// composition).
func IncastSenders(receiver, n, hosts int) []int {
	if n > hosts-1 {
		n = hosts - 1
	}
	out := make([]int, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, (receiver+i)%hosts)
	}
	return out
}

// SizeDist is a discrete flow-size distribution sampled by inverse CDF.
type SizeDist struct {
	sizes []int64   // ascending
	cdf   []float64 // cumulative probability aligned with sizes
}

// NewSizeDist builds a distribution from (size, probability) pairs; the
// probabilities are normalized.
func NewSizeDist(pairs map[int64]float64) *SizeDist {
	d := &SizeDist{}
	var total float64
	for _, p := range pairs {
		total += p
	}
	for s := range pairs {
		d.sizes = append(d.sizes, s)
	}
	sort.Slice(d.sizes, func(i, j int) bool { return d.sizes[i] < d.sizes[j] })
	var cum float64
	for _, s := range d.sizes {
		cum += pairs[s] / total
		d.cdf = append(d.cdf, cum)
	}
	return d
}

// Sample draws one flow size.
func (d *SizeDist) Sample(r *sim.Rand) int64 {
	u := r.Float64()
	for i, c := range d.cdf {
		if u <= c {
			return d.sizes[i]
		}
	}
	return d.sizes[len(d.sizes)-1]
}

// Mean returns the distribution mean in bytes.
func (d *SizeDist) Mean() float64 {
	var m, prev float64
	for i, s := range d.sizes {
		m += float64(s) * (d.cdf[i] - prev)
		prev = d.cdf[i]
	}
	return m
}

// FacebookWeb approximates the web-server flow-size distribution of Roy et
// al. (Figure 6a): dominated by very small flows (single small packets —
// the "really small packets, poor compression" case the paper calls least
// favourable to NDP), with a heavy tail of multi-hundred-KB responses.
func FacebookWeb() *SizeDist {
	return NewSizeDist(map[int64]float64{
		300:     0.30,
		700:     0.20,
		2_000:   0.15,
		5_000:   0.10,
		10_000:  0.08,
		30_000:  0.07,
		80_000:  0.05,
		200_000: 0.03,
		600_000: 0.02,
	})
}

// ClosedLoop drives a closed-loop flow generator: each host keeps conns
// simultaneous connections to random destinations; when a flow finishes, a
// new one starts after gap (the paper uses a 1ms median inter-flow gap).
// The caller supplies start, which must launch one flow and invoke done
// when it completes.
type ClosedLoop struct {
	EL    *sim.EventList
	Rand  *sim.Rand
	Hosts int
	Conns int
	Gap   sim.Time
	Sizes *SizeDist

	// Start launches a flow of size bytes from src to dst; it must call
	// the provided completion callback when the flow finishes.
	Start func(src, dst int, size int64, done func())

	Launched int64
}

// Run primes Conns flows per host and keeps the loop going until the event
// list deadline is reached (the caller bounds the simulation).
func (c *ClosedLoop) Run() {
	for h := 0; h < c.Hosts; h++ {
		for i := 0; i < c.Conns; i++ {
			c.launch(h)
		}
	}
}

func (c *ClosedLoop) launch(src int) {
	dst := c.Rand.Intn(c.Hosts - 1)
	if dst >= src {
		dst++
	}
	size := c.Sizes.Sample(c.Rand)
	c.Launched++
	c.Start(src, dst, size, func() {
		gap := c.Gap/2 + c.Rand.Duration(c.Gap) // median ~= Gap
		c.EL.After(gap, func() { c.launch(src) })
	})
}
