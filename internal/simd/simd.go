// Package simd turns the NDP simulator into a long-running
// simulation-as-a-service daemon: an HTTP/JSON job server that validates
// scenario.Spec submissions up front, queues them on a bounded worker
// pool, streams per-job progress and final Metrics over Server-Sent
// Events, and answers repeated what-if queries from a content-addressed
// result cache keyed by (canonical Spec hash, seed).
//
// The API surface (see the README "Running as a service" section):
//
//	POST /api/jobs             submit a JobRequest; 202 queued, 200 cache hit
//	GET  /api/jobs             list jobs (compact, no Metrics)
//	GET  /api/jobs/{id}        one job, Metrics included once done
//	GET  /api/jobs/{id}/events SSE: progress events, then one result event
//	GET  /api/workers          pool, queue and cache introspection
//	GET  /api/catalog          the named-scenario registry
//
// Determinism extends across the API boundary: a job's Metrics are
// bit-identical to a direct scenario.Run of the same Spec+seed, no matter
// how many daemon workers run concurrently or whether the answer came
// from the cache (pinned by TestDaemonEndToEnd).
package simd

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"ndp/scenario"
)

// Config sizes the daemon. The zero value is runnable: one worker per
// core, a 256-deep queue, and a 128-entry result cache.
type Config struct {
	// Workers is the number of simulations run concurrently. 0 means
	// runtime.GOMAXPROCS(0). (Each job may additionally parallelize
	// inside itself via Spec.Workers/Shards; the two compose.)
	Workers int
	// QueueDepth bounds the accepted-but-not-started backlog; a full
	// queue rejects submissions with 503 rather than buffering without
	// bound. 0 means 256.
	QueueDepth int
	// CacheEntries bounds the LRU result cache. 0 means 128; negative
	// disables caching.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	switch {
	case c.CacheEntries == 0:
		c.CacheEntries = 128
	case c.CacheEntries < 0:
		c.CacheEntries = 0
	}
	return c
}

// Server is the daemon: an http.Handler plus the worker pool behind it.
// Create with New, serve with net/http, stop with Drain.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	cache *resultCache
	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []*Job // submission order, for listing
	nextID   int
	draining bool

	workers     []workerState
	jobsDone    atomic.Int64
	jobsFailed  atomic.Int64
	totalEvents atomic.Int64 // simulation events executed by this daemon
}

// workerState is one pool worker's introspection record.
type workerState struct {
	mu       sync.Mutex
	job      string // current job id, "" when idle
	jobsDone int64
	events   int64
}

// New builds the daemon and starts its worker pool.
func New(cfg Config) *Server {
	s := &Server{
		cfg:   cfg.withDefaults(),
		cache: newResultCache(cfg.withDefaults().CacheEntries),
		jobs:  map[string]*Job{},
	}
	s.queue = make(chan *Job, s.cfg.QueueDepth)
	s.workers = make([]workerState, s.cfg.Workers)
	for i := range s.workers {
		s.wg.Add(1)
		go s.worker(i)
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// ServeHTTP makes the Server an http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// Submit validates and accepts one job. The returned HTTP status is 202
// for a queued job, 200 for a cache hit (the job is born done), 400 for a
// Spec the shared scenario.Validate gate refuses, and 503 when draining
// or when the bounded queue is full.
func (s *Server) Submit(req JobRequest) (*Job, int, error) {
	spec, err := req.buildSpec()
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	if err := scenario.Validate(spec); err != nil {
		return nil, http.StatusBadRequest, err
	}
	job := newJob(spec)
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable, errors.New("simd: draining, not accepting jobs")
	}
	if m, ok := s.cache.get(job.Key); ok {
		s.register(job)
		s.mu.Unlock()
		job.completeFromCache(m)
		return job, http.StatusOK, nil
	}
	// Register (assigning the id) before enqueueing: a worker may dequeue
	// the instant the send lands, and it must see a fully-formed job. The
	// rollback below still holds s.mu, so nothing observed the id.
	s.register(job)
	select {
	case s.queue <- job:
		s.mu.Unlock()
		return job, http.StatusAccepted, nil
	default:
		delete(s.jobs, job.ID)
		s.order = s.order[:len(s.order)-1]
		s.nextID--
		s.mu.Unlock()
		return nil, http.StatusServiceUnavailable,
			fmt.Errorf("simd: job queue full (%d jobs waiting)", s.cfg.QueueDepth)
	}
}

// register assigns the job its id and adds it to the lookup structures;
// caller holds s.mu. Rejected submissions (queue full) never get here, so
// ids stay dense and JobsSubmitted counts accepted jobs only.
func (s *Server) register(job *Job) {
	s.nextID++
	job.ID = fmt.Sprintf("job-%06d", s.nextID)
	s.jobs[job.ID] = job
	s.order = append(s.order, job)
}

// lookup returns a job by id, or nil.
func (s *Server) lookup(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

// worker is one pool goroutine: it drains the queue until Drain closes it.
func (s *Server) worker(i int) {
	defer s.wg.Done()
	ws := &s.workers[i]
	for job := range s.queue {
		ws.mu.Lock()
		ws.job = job.ID
		ws.mu.Unlock()
		s.runJob(ws, job)
		ws.mu.Lock()
		ws.job = ""
		ws.mu.Unlock()
	}
}

// runJob executes one simulation with the job's observe hook installed,
// publishes the result, and feeds the cache. RunWithStats already converts
// simulation panics into errors, so a poisoned Spec fails one job, never
// the worker.
func (s *Server) runJob(ws *workerState, job *Job) {
	job.start()
	spec := job.Spec.With(scenario.WithProgress(job.observe))
	m, stats, err := scenario.RunWithStats(spec)
	if err != nil {
		job.fail(err)
		s.jobsFailed.Add(1)
		return
	}
	s.cache.put(job.Key, m)
	job.finish(m, stats.Events)
	s.jobsDone.Add(1)
	s.totalEvents.Add(stats.Events)
	ws.mu.Lock()
	ws.jobsDone++
	ws.events += stats.Events
	ws.mu.Unlock()
}

// Drain stops accepting submissions, lets every queued and running job
// finish, and returns when the pool is idle — or with ctx's error if the
// deadline passes first. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()
	idle := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(idle)
	}()
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// WorkerStatus is one pool worker's row in the /api/workers report.
type WorkerStatus struct {
	ID       int    `json:"id"`
	State    string `json:"state"` // "idle" | "busy"
	Job      string `json:"job,omitempty"`
	JobsDone int64  `json:"jobs_done"`
	Events   int64  `json:"events"`
}

// PoolStatus is the /api/workers report: per-worker load, queue fill, and
// cache effectiveness — the capacity-planning view of the daemon itself.
type PoolStatus struct {
	Workers       []WorkerStatus `json:"workers"`
	QueueDepth    int            `json:"queue_depth"`
	QueueCap      int            `json:"queue_cap"`
	Draining      bool           `json:"draining"`
	JobsSubmitted int64          `json:"jobs_submitted"`
	JobsDone      int64          `json:"jobs_done"`
	JobsFailed    int64          `json:"jobs_failed"`
	TotalEvents   int64          `json:"total_events"`
	Cache         CacheStats     `json:"cache"`
}

func (s *Server) poolStatus() PoolStatus {
	s.mu.Lock()
	submitted := int64(s.nextID)
	draining := s.draining
	s.mu.Unlock()
	st := PoolStatus{
		QueueDepth:    len(s.queue),
		QueueCap:      s.cfg.QueueDepth,
		Draining:      draining,
		JobsSubmitted: submitted,
		JobsDone:      s.jobsDone.Load(),
		JobsFailed:    s.jobsFailed.Load(),
		TotalEvents:   s.totalEvents.Load(),
		Cache:         s.cache.stats(),
	}
	for i := range s.workers {
		ws := &s.workers[i]
		ws.mu.Lock()
		row := WorkerStatus{ID: i, State: "idle", Job: ws.job, JobsDone: ws.jobsDone, Events: ws.events}
		ws.mu.Unlock()
		if row.Job != "" {
			row.State = "busy"
		}
		st.Workers = append(st.Workers, row)
	}
	return st
}
