package simd

import (
	"container/list"
	"fmt"
	"sync"

	"ndp/scenario"
)

// cacheKey is the content address of one job's result. Spec.Hash covers
// the normalized Spec minus the execution knobs (seed, workers, shards);
// the seed then picks the point in the scenario's seed space, and the
// registry name rides along because it flows into Metrics.Scenario —
// differently-named twins must not share an entry. Because workers and
// shards are outside the key, a result computed with `"shards": 4` serves
// a later `"shards": 1` query verbatim: that is the determinism guarantee
// (Metrics bit-identical for any execution configuration) turned into
// cache capacity.
func cacheKey(spec scenario.Spec) string {
	return fmt.Sprintf("%s:%d:%s", spec.Hash(), spec.Seed, spec.Name())
}

// resultCache is a bounded LRU over finished Metrics with hit/miss
// counters. Entries are immutable once inserted — a Metrics is never
// mutated after its run merges — so get hands out the shared pointer and
// every reader marshals the same bytes.
type resultCache struct {
	mu      sync.Mutex
	cap     int
	ll      *list.List // front = most recently used
	entries map[string]*list.Element
	hits    int64
	misses  int64
}

type cacheEntry struct {
	key string
	m   *scenario.Metrics
}

// newResultCache builds a cache bounded to capEntries results; capEntries
// <= 0 disables caching (every get misses, put is a no-op).
func newResultCache(capEntries int) *resultCache {
	return &resultCache{cap: capEntries, ll: list.New(), entries: map[string]*list.Element{}}
}

func (c *resultCache) get(key string) (*scenario.Metrics, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.entries[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).m, true
}

func (c *resultCache) put(key string, m *scenario.Metrics) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e, ok := c.entries[key]; ok {
		// Concurrent identical jobs race to insert; results are
		// bit-identical, so first-writer-wins and refresh recency.
		c.ll.MoveToFront(e)
		return
	}
	c.entries[key] = c.ll.PushFront(&cacheEntry{key: key, m: m})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
	}
}

// CacheStats is the /api/workers view of the result cache.
type CacheStats struct {
	Entries int   `json:"entries"`
	Cap     int   `json:"cap"`
	Hits    int64 `json:"hits"`
	Misses  int64 `json:"misses"`
}

func (c *resultCache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{Entries: c.ll.Len(), Cap: c.cap, Hits: c.hits, Misses: c.misses}
}
