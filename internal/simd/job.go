package simd

import (
	"errors"
	"sync"
	"time"

	"ndp/scenario"
)

// JobRequest is the POST /api/jobs body. Either name a registry scenario
// (scenario + params + the option fields, mirroring the ndpsim CLI flags)
// or carry a complete Spec under "spec" — the same JSON encoding
// scenario.Spec marshals to. The two forms are mutually exclusive.
type JobRequest struct {
	// Scenario is a registry name (see GET /api/catalog).
	Scenario string `json:"scenario,omitempty"`
	// Params tune the named scenario; zero values take its defaults.
	Params scenario.Params `json:"params,omitempty"`
	// Option fields layered onto the registry template. Zero means
	// "scenario default", exactly like the corresponding CLI flag.
	Transport string `json:"transport,omitempty"`
	Seed      uint64 `json:"seed,omitempty"`
	Repeats   int    `json:"repeats,omitempty"`
	Shards    int    `json:"shards,omitempty"`
	Workers   int    `json:"workers,omitempty"`

	// Spec is a complete hand-assembled Spec; unset fields fill with the
	// scenario package defaults, and Seed 0 is honoured as a real seed.
	Spec *scenario.Spec `json:"spec,omitempty"`
}

// buildSpec resolves the request into a runnable Spec. Validation proper
// happens in Submit through scenario.Validate, the same gate the CLI uses.
func (r JobRequest) buildSpec() (scenario.Spec, error) {
	if r.Spec != nil {
		if r.Scenario != "" {
			return scenario.Spec{}, errors.New(`simd: "scenario" and "spec" are mutually exclusive`)
		}
		return *r.Spec, nil
	}
	if r.Scenario == "" {
		return scenario.Spec{}, errors.New(`simd: request needs a "scenario" name or an explicit "spec"`)
	}
	var opts []scenario.Option
	if r.Transport != "" {
		opts = append(opts, scenario.WithTransport(scenario.Transport(r.Transport)))
	}
	if r.Seed != 0 {
		opts = append(opts, scenario.WithSeed(r.Seed))
	}
	if r.Repeats != 0 {
		opts = append(opts, scenario.WithRepeats(r.Repeats))
	}
	if r.Shards != 0 {
		opts = append(opts, scenario.WithShards(r.Shards))
	}
	if r.Workers != 0 {
		opts = append(opts, scenario.WithWorkers(r.Workers))
	}
	return scenario.Build(r.Scenario, r.Params, opts...)
}

// State is a job's lifecycle position. Jobs move strictly queued ->
// running -> done|failed; a cache hit jumps straight to done.
type State string

const (
	StateQueued  State = "queued"
	StateRunning State = "running"
	StateDone    State = "done"
	StateFailed  State = "failed"
)

// Job is one accepted submission. All mutable state sits behind mu; SSE
// subscribers never read it directly — they are nudged through their
// notify channels and pull an immutable Status snapshot, so a slow client
// coalesces updates instead of back-pressuring the simulation worker.
type Job struct {
	ID   string
	Spec scenario.Spec
	Key  string

	mu        sync.Mutex
	seq       uint64 // bumped on every externally visible change
	state     State
	cached    bool
	overall   float64 // monotonic overall progress in [0,1]
	done      int     // repetitions fully completed
	repeats   int
	metrics   *scenario.Metrics
	events    int64
	errMsg    string
	submitted time.Time
	started   time.Time
	finished  time.Time
	subs      map[chan struct{}]struct{}
}

func newJob(spec scenario.Spec) *Job {
	repeats := spec.Repeats
	if repeats <= 0 {
		repeats = 1
	}
	return &Job{
		Spec:      spec,
		Key:       cacheKey(spec),
		state:     StateQueued,
		repeats:   repeats,
		submitted: time.Now(), //simlint:allow wallclock — daemon job accounting: queue timestamps for the HTTP API, outside the virtual clock
		subs:      map[chan struct{}]struct{}{},
	}
}

// Status is the JSON snapshot of a Job served by the handlers and carried
// in SSE result events.
type Status struct {
	ID          string            `json:"id"`
	State       State             `json:"state"`
	Scenario    string            `json:"scenario,omitempty"`
	SpecHash    string            `json:"spec_hash"`
	Seed        uint64            `json:"seed"`
	Cached      bool              `json:"cached"`
	Progress    float64           `json:"progress"`
	RepeatsDone int               `json:"repeats_done"`
	Repeats     int               `json:"repeats"`
	Events      int64             `json:"events"`
	Error       string            `json:"error,omitempty"`
	SubmittedAt time.Time         `json:"submitted_at"`
	StartedAt   *time.Time        `json:"started_at,omitempty"`
	FinishedAt  *time.Time        `json:"finished_at,omitempty"`
	Metrics     *scenario.Metrics `json:"metrics,omitempty"`

	// seq lets the SSE loop detect changes without diffing snapshots.
	seq uint64
}

// status snapshots the job. withMetrics controls whether the (potentially
// large) Metrics payload rides along — job listings leave it out.
func (j *Job) status(withMetrics bool) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := Status{
		ID:          j.ID,
		State:       j.state,
		Scenario:    j.Spec.Name(),
		SpecHash:    j.Spec.Hash(),
		Seed:        j.Spec.Seed,
		Cached:      j.cached,
		Progress:    j.overall,
		RepeatsDone: j.done,
		Repeats:     j.repeats,
		Events:      j.events,
		Error:       j.errMsg,
		SubmittedAt: j.submitted,
		seq:         j.seq,
	}
	if !j.started.IsZero() {
		t := j.started
		st.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.FinishedAt = &t
	}
	if withMetrics {
		st.Metrics = j.metrics
	}
	return st
}

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == StateDone || s == StateFailed }

// subscribe registers an SSE listener: a cap-1 nudge channel plus its
// deregistration func. Sends never block — a pending nudge already means
// "re-snapshot", so further ones coalesce.
func (j *Job) subscribe() (<-chan struct{}, func()) {
	ch := make(chan struct{}, 1)
	j.mu.Lock()
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

func (j *Job) notifyLocked() {
	j.seq++
	for ch := range j.subs {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
}

// observe is the scenario progress hook: it runs on the simulation's
// sweep-job workers, so it only folds the observation into the gauges and
// nudges subscribers. Overall progress is kept monotonic — concurrent
// repetitions report out of order.
func (j *Job) observe(p scenario.Progress) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if p.Repeat < 0 && p.Done > j.done {
		j.done = p.Done
	}
	if o := p.Overall(); o > j.overall {
		j.overall = o
	}
	j.notifyLocked()
}

func (j *Job) start() {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.started = time.Now() //simlint:allow wallclock — daemon job accounting: run timestamps for the HTTP API, outside the virtual clock
	j.notifyLocked()
}

func (j *Job) finish(m *scenario.Metrics, events int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.metrics = m
	j.events = events
	j.overall = 1
	j.done = j.repeats
	j.finished = time.Now() //simlint:allow wallclock — daemon job accounting: completion timestamps for the HTTP API, outside the virtual clock
	j.notifyLocked()
}

func (j *Job) fail(err error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateFailed
	j.errMsg = err.Error()
	j.finished = time.Now() //simlint:allow wallclock — daemon job accounting: completion timestamps for the HTTP API, outside the virtual clock
	j.notifyLocked()
}

// completeFromCache finishes the job without ever queueing it: the
// Metrics come from the content-addressed cache and zero simulation
// events run on its behalf.
func (j *Job) completeFromCache(m *scenario.Metrics) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.cached = true
	j.metrics = m
	j.overall = 1
	j.done = j.repeats
	j.started = j.submitted
	j.finished = time.Now() //simlint:allow wallclock — daemon job accounting: completion timestamps for the HTTP API, outside the virtual clock
	j.notifyLocked()
}
