package simd

import (
	"encoding/json"
	"fmt"
	"net/http"

	"ndp/scenario"
)

// routes wires the API onto the mux. Method-qualified patterns (Go 1.22
// ServeMux) give us 405s for free.
func (s *Server) routes() {
	s.mux.HandleFunc("POST /api/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /api/jobs", s.handleJobs)
	s.mux.HandleFunc("GET /api/jobs/{id}", s.handleJob)
	s.mux.HandleFunc("GET /api/jobs/{id}/events", s.handleJobEvents)
	s.mux.HandleFunc("GET /api/workers", s.handleWorkers)
	s.mux.HandleFunc("GET /api/catalog", s.handleCatalog)
}

// apiError is the JSON error envelope every non-2xx response carries.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // the client hung up; nothing to do
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// handleSubmit accepts a JobRequest. Unknown fields are rejected so a
// misspelled knob fails loudly instead of silently running the default —
// the HTTP twin of the CLI's strict flag validation.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("simd: bad request body: %w", err))
		return
	}
	job, code, err := s.Submit(req)
	if err != nil {
		writeError(w, code, err)
		return
	}
	writeJSON(w, code, job.status(false))
}

// handleJobs lists every job in submission order, compact (no Metrics).
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, len(s.order))
	copy(jobs, s.order)
	s.mu.Unlock()
	out := make([]Status, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.status(false))
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("simd: no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, job.status(true))
}

// progressEvent is the compact SSE progress payload — enough to drive a
// gauge without shipping Metrics on every tick.
type progressEvent struct {
	ID          string  `json:"id"`
	State       State   `json:"state"`
	Cached      bool    `json:"cached"`
	Progress    float64 `json:"progress"`
	RepeatsDone int     `json:"repeats_done"`
	Repeats     int     `json:"repeats"`
}

// handleJobEvents streams the job over Server-Sent Events: one or more
// `progress` events followed by exactly one terminal `result` event
// carrying the full Status (Metrics or error). The first progress event is
// written unconditionally on attach, so every stream — even one opened
// after the job finished, or for a cache-born job — delivers at least one
// progress event before the result. Updates coalesce through the cap-1
// nudge channel: a slow client skips intermediate snapshots instead of
// back-pressuring the simulation.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job := s.lookup(r.PathValue("id"))
	if job == nil {
		writeError(w, http.StatusNotFound, fmt.Errorf("simd: no job %q", r.PathValue("id")))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, fmt.Errorf("simd: response writer cannot stream"))
		return
	}
	notify, cancel := job.subscribe()
	defer cancel()
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	var lastSeq uint64
	first := true
	for {
		st := job.status(true)
		if first || st.seq != lastSeq {
			first = false
			lastSeq = st.seq
			writeSSE(w, "progress", progressEvent{
				ID: st.ID, State: st.State, Cached: st.Cached,
				Progress: st.Progress, RepeatsDone: st.RepeatsDone, Repeats: st.Repeats,
			})
			if st.State.Terminal() {
				writeSSE(w, "result", st)
				fl.Flush()
				return
			}
			fl.Flush()
		}
		select {
		case <-r.Context().Done():
			return
		case <-notify:
		}
	}
}

// writeSSE emits one named event. The payload is a single JSON document,
// which never contains a raw newline, so one data: line suffices.
func writeSSE(w http.ResponseWriter, event string, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		b = []byte(fmt.Sprintf(`{"error":%q}`, err.Error()))
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, b)
}

func (s *Server) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.poolStatus())
}

func (s *Server) handleCatalog(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, scenario.CatalogEntries())
}
