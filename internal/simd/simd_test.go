package simd

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ndp/scenario"
)

// tinyReq is the registry job every daemon test runs: the CI smoke incast
// (16 hosts, 8:1, 45KB), small enough for seconds-fast race-mode runs.
func tinyReq() JobRequest {
	return JobRequest{
		Scenario: "incast",
		Params:   scenario.Params{Hosts: 16, Degree: 8, FlowSize: 45_000},
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	name string
	data []byte
}

// followSSE reads the job's event stream until the terminal result event
// (or the deadline) and returns every event in order.
func followSSE(t *testing.T, baseURL, id string) []sseEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", baseURL+"/api/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "":
			if cur.name != "" {
				events = append(events, cur)
				if cur.name == "result" {
					return events
				}
				cur = sseEvent{}
			}
		}
	}
	t.Fatalf("stream ended without a result event (%d events, scan err %v)", len(events), sc.Err())
	return nil
}

func postJob(t *testing.T, baseURL string, req JobRequest) (Status, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/api/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st Status
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	}
	return st, resp.StatusCode
}

func getJSON(t *testing.T, url string, v any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil && resp.StatusCode < 300 {
		t.Fatal(err)
	}
	return resp.StatusCode
}

// TestDaemonEndToEnd is the acceptance test of the daemon: N concurrent
// jobs for the same Spec+seed return Metrics bit-identical to a direct
// scenario.Run; every SSE stream delivers at least one progress event
// before the terminal result; and a repeated submission afterwards is a
// cache hit that executes zero new simulation events.
func TestDaemonEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	// The concurrency phase runs on a cache-disabled daemon: every one of
	// the N same-Spec submissions must execute a full simulation on the
	// pool (no single-flight dedup, no cache short-circuit — the tiny
	// incast finishes in milliseconds, so with a cache the later POSTs
	// would legitimately be hits and prove nothing about concurrency).
	srv := New(Config{Workers: 2, CacheEntries: -1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The ground truth: the same Spec run directly, no daemon involved.
	spec, err := tinyReq().buildSpec()
	if err != nil {
		t.Fatal(err)
	}
	direct, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	directJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}

	const n = 4
	ids := make([]string, n)
	for i := 0; i < n; i++ {
		st, code := postJob(t, ts.URL, tinyReq())
		if code != http.StatusAccepted {
			t.Fatalf("job %d: status %d, want 202", i, code)
		}
		if st.ID == "" || st.SpecHash != spec.Hash() || st.Seed != spec.Seed {
			t.Fatalf("job %d: bad status %+v", i, st)
		}
		ids[i] = st.ID
	}

	for i, id := range ids {
		events := followSSE(t, ts.URL, id)
		if len(events) < 2 {
			t.Fatalf("job %s: only %d SSE events", id, len(events))
		}
		if last := events[len(events)-1]; last.name != "result" {
			t.Fatalf("job %s: stream did not end with result: %q", id, last.name)
		}
		sawProgress := false
		for _, ev := range events[:len(events)-1] {
			if ev.name != "progress" {
				t.Fatalf("job %s: unexpected event %q before result", id, ev.name)
			}
			var pe progressEvent
			if err := json.Unmarshal(ev.data, &pe); err != nil {
				t.Fatalf("job %s: bad progress payload: %v", id, err)
			}
			if pe.Progress < 0 || pe.Progress > 1.0000001 {
				t.Fatalf("job %s: progress out of range: %+v", id, pe)
			}
			sawProgress = true
		}
		if !sawProgress {
			t.Fatalf("job %s: no progress event before the result", id)
		}
		var final Status
		if err := json.Unmarshal(events[len(events)-1].data, &final); err != nil {
			t.Fatal(err)
		}
		if final.State != StateDone || final.Metrics == nil {
			t.Fatalf("job %s: terminal status %+v", id, final)
		}
		if final.Cached {
			t.Fatalf("job %s: first wave must not be served from cache", id)
		}
		if final.Events <= 0 {
			t.Fatalf("job %s: executed %d events, expected > 0", id, final.Events)
		}
		got, err := json.Marshal(final.Metrics)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, directJSON) {
			t.Errorf("job %d (%s): daemon Metrics diverge from direct scenario.Run:\ndaemon %s\ndirect %s",
				i, id, got, directJSON)
		}
	}

	// Every one of the n submissions ran for real on the cache-less pool.
	var pool PoolStatus
	getJSON(t, ts.URL+"/api/workers", &pool)
	if pool.JobsDone != n {
		t.Errorf("pool reports %d jobs done, want %d", pool.JobsDone, n)
	}
	if pool.Cache.Cap != 0 || pool.Cache.Entries != 0 {
		t.Errorf("cache should be disabled on this daemon: %+v", pool.Cache)
	}

	// The cache phase runs on a second daemon with the cache on: the first
	// submission executes, the repeat is a hit — born done, zero new events.
	csrv := New(Config{Workers: 2})
	cts := httptest.NewServer(csrv)
	defer cts.Close()

	first, code := postJob(t, cts.URL, tinyReq())
	if code != http.StatusAccepted {
		t.Fatalf("cache-phase submit: status %d, want 202", code)
	}
	fevents := followSSE(t, cts.URL, first.ID)
	var ffinal Status
	if err := json.Unmarshal(fevents[len(fevents)-1].data, &ffinal); err != nil {
		t.Fatal(err)
	}
	if ffinal.State != StateDone || ffinal.Cached || ffinal.Events <= 0 {
		t.Fatalf("cache-phase first run: %+v", ffinal)
	}

	var before PoolStatus
	getJSON(t, cts.URL+"/api/workers", &before)
	st, code := postJob(t, cts.URL, tinyReq())
	if code != http.StatusOK {
		t.Fatalf("cache hit should answer 200, got %d", code)
	}
	if !st.Cached || st.State != StateDone || st.Events != 0 {
		t.Fatalf("repeat submission not served from cache: %+v", st)
	}
	events := followSSE(t, cts.URL, st.ID)
	if len(events) < 2 || events[0].name != "progress" || events[len(events)-1].name != "result" {
		t.Fatalf("cached job stream malformed: %d events", len(events))
	}
	var cachedFinal Status
	if err := json.Unmarshal(events[len(events)-1].data, &cachedFinal); err != nil {
		t.Fatal(err)
	}
	gotCached, err := json.Marshal(cachedFinal.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotCached, directJSON) {
		t.Errorf("cached Metrics diverge from direct run")
	}
	var after PoolStatus
	getJSON(t, cts.URL+"/api/workers", &after)
	if after.TotalEvents != before.TotalEvents {
		t.Errorf("cache hit executed events: total %d -> %d", before.TotalEvents, after.TotalEvents)
	}
	if after.Cache.Hits < 1 {
		t.Errorf("cache counters did not record the hit: %+v", after.Cache)
	}
	if after.Cache.Misses < 1 {
		t.Errorf("first submission should have missed: %+v", after.Cache)
	}
	if after.JobsDone != 1 {
		t.Errorf("cache daemon reports %d jobs done, want 1 (cache hits run nowhere)", after.JobsDone)
	}
}

// TestDaemonValidation pins the HTTP 400 path onto the shared
// scenario.Validate gate: the refusals carry the same supported-matrix
// messages the CLI prints.
func TestDaemonValidation(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	post := func(body string) (int, string) {
		resp, err := http.Post(ts.URL+"/api/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e apiError
		json.NewDecoder(resp.Body).Decode(&e) //nolint:errcheck
		return resp.StatusCode, e.Error
	}

	cases := []struct {
		label, body, wantSub string
	}{
		{"backtoback+shards", `{"spec":{"topology":{"kind":"backtoback"},"shards":2}}`, "backtoback"},
		{"hosts<2", `{"spec":{"topology":{"kind":"twotier","tors":1,"hosts_per_tor":1,"spines":1}}}`, "at least 2 hosts"},
		{"shards<1", `{"spec":{"shards":-1}}`, "shards must be >= 0"},
		{"unknown scenario", `{"scenario":"nope"}`, "unknown scenario"},
		{"no scenario or spec", `{}`, "scenario"},
		{"both forms", `{"scenario":"incast","spec":{}}`, "mutually exclusive"},
		{"unknown field", `{"scenario":"incast","prams":{}}`, "unknown field"},
		{"bad json", `{`, "bad request"},
	}
	for _, c := range cases {
		code, msg := post(c.body)
		if code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.label, code, msg)
		}
		if !strings.Contains(msg, c.wantSub) {
			t.Errorf("%s: error %q does not mention %q", c.label, msg, c.wantSub)
		}
	}

	if code := func() int {
		resp, err := http.Get(ts.URL + "/api/jobs/job-424242")
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}(); code != http.StatusNotFound {
		t.Errorf("unknown job id: status %d, want 404", code)
	}
}

// TestDaemonCatalog checks /api/catalog serves the registry in sorted
// order with runnable defaults.
func TestDaemonCatalog(t *testing.T) {
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	var entries []scenario.CatalogEntry
	if code := getJSON(t, ts.URL+"/api/catalog", &entries); code != http.StatusOK {
		t.Fatalf("catalog: status %d", code)
	}
	want := []string{"failure", "incast", "permutation", "random", "rpc"}
	if len(entries) != len(want) {
		t.Fatalf("catalog has %d entries, want %d", len(entries), len(want))
	}
	for i, e := range entries {
		if e.Name != want[i] {
			t.Errorf("catalog[%d] = %q, want %q", i, e.Name, want[i])
		}
		if err := scenario.Validate(e.Defaults); err != nil {
			t.Errorf("%s: defaults invalid: %v", e.Name, err)
		}
	}
}

// TestDaemonDrain checks the graceful-shutdown contract: Drain finishes
// accepted jobs, further submissions bounce with 503, and Drain is
// idempotent.
func TestDaemonDrain(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	srv := New(Config{Workers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	st, code := postJob(t, ts.URL, tinyReq())
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	var final Status
	if code := getJSON(t, ts.URL+"/api/jobs/"+st.ID, &final); code != http.StatusOK {
		t.Fatalf("job after drain: status %d", code)
	}
	if final.State != StateDone {
		t.Fatalf("drain returned before the job finished: %+v", final)
	}
	if _, code := postJob(t, ts.URL, tinyReq()); code != http.StatusServiceUnavailable {
		t.Errorf("submission while drained: status %d, want 503", code)
	}
	if err := srv.Drain(ctx); err != nil {
		t.Errorf("second drain: %v", err)
	}
}

// TestQueueFull checks the bounded-queue contract: a queue at capacity
// answers 503 without registering the job.
func TestQueueFull(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	// One worker, one queue slot: the first job occupies the worker, the
	// second sits in the queue, the third must bounce.
	srv := New(Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Distinct seeds so none of this is served from cache; permutation is
	// slow enough (~hundreds of ms) that the worker is still busy with the
	// first job while the later submissions arrive.
	for i := uint64(0); ; i++ {
		req := JobRequest{Scenario: "permutation", Params: scenario.Params{Hosts: 16}, Seed: 100 + i}
		_, code := postJob(t, ts.URL, req)
		if code == http.StatusServiceUnavailable {
			break
		}
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: status %d", i, code)
		}
		if i > 8 {
			t.Fatal("queue never filled")
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	var jobs []Status
	getJSON(t, ts.URL+"/api/jobs", &jobs)
	for _, j := range jobs {
		if !j.State.Terminal() {
			t.Errorf("job %s left in state %s after drain", j.ID, j.State)
		}
	}
}
