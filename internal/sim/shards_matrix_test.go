package sim

import "testing"

// This file twins shards_ref_test.go for the per-pair lookahead matrix:
// the same randomized actor workload, but cross-shard messages respect an
// asymmetric per-pair minimum latency L[i][j] instead of one scalar, and
// the sharded runner windows from SetLookaheadMatrix. It also carries the
// regression test for the windowLimits deadline-overflow bug.

// buildPairLookaheads derives a deterministic asymmetric per-pair
// cut-delay matrix from the seed and metric-closes it with Floyd-Warshall,
// mirroring what topo.finishShards does over the shard quotient graph.
// Entries range over 1..4 lookaheads, so pairs are genuinely asymmetric
// (L[i][j] != L[j][i]) and far pairs allow wider windows than the scalar.
func buildPairLookaheads(seed uint64, shards int) [][]Time {
	rng := NewRand(seed*0x9e3779b97f4a7c15 + 1)
	L := make([][]Time, shards)
	for i := range L {
		L[i] = make([]Time, shards)
		for j := range L[i] {
			if i != j {
				L[i][j] = Time(1+rng.Intn(4)) * refLookahead
			}
		}
	}
	for k := 0; k < shards; k++ {
		for i := 0; i < shards; i++ {
			if i == k {
				continue
			}
			for j := 0; j < shards; j++ {
				if j == i || j == k {
					continue
				}
				if via := L[i][k] + L[k][j]; via < L[i][j] {
					L[i][j] = via
				}
			}
		}
	}
	return L
}

// runMatrixSingle executes the matrix-latency workload on one shared list.
func runMatrixSingle(seed uint64, shards int, until Time, L [][]Time) *refWorld {
	el := NewEventList()
	w := buildRefWorld(seed, shards, []*EventList{el})
	w.lat = L
	w.send = func(src, dst *refActor, at Time, ord uint64, arg uint64) {
		el.ScheduleKeyed(at, ord, refMsg{dst}, arg)
	}
	seedStimuli(w)
	el.RunUntil(until)
	return w
}

// runMatrixSharded executes the same workload across shard lists under a
// MultiRunner windowed by the pair matrix.
func runMatrixSharded(seed uint64, shards int, until Time, serial bool, L [][]Time) *refWorld {
	lists := make([]*EventList, shards)
	for i := range lists {
		lists[i] = NewEventList()
	}
	w := buildRefWorld(seed, shards, lists)
	w.lat = L
	type boxEntry struct {
		at  Time
		ord uint64
		dst *refActor
		arg uint64
	}
	boxes := make([][]boxEntry, shards*shards)
	w.send = func(src, dst *refActor, at Time, ord uint64, arg uint64) {
		if src.shard == dst.shard {
			lists[dst.shard].ScheduleKeyed(at, ord, refMsg{dst}, arg)
			return
		}
		b := &boxes[src.shard*shards+dst.shard]
		*b = append(*b, boxEntry{at: at, ord: ord, dst: dst, arg: arg})
	}
	mr := NewMultiRunner(lists, refLookahead, func() {
		for i := range boxes {
			for _, e := range boxes[i] {
				lists[e.dst.shard].ScheduleKeyed(e.at, e.ord, refMsg{e.dst}, e.arg)
			}
			boxes[i] = boxes[i][:0]
		}
	})
	mr.SetLookaheadMatrix(L)
	mr.Parallel = !serial
	seedStimuli(w)
	mr.RunUntil(until)
	mr.Close()
	return w
}

// TestMultiRunnerMatrixVsSingleList drives many seeds through both engines
// under asymmetric per-pair lookaheads — the always-on property test
// behind FuzzMultiRunnerMatrix.
func TestMultiRunnerMatrixVsSingleList(t *testing.T) {
	const until = 200 * Microsecond
	for seed := uint64(1); seed <= 15; seed++ {
		for _, shards := range []int{2, 3, 5} {
			L := buildPairLookaheads(seed, shards)
			ref := runMatrixSingle(seed, shards, until, L)
			par := runMatrixSharded(seed, shards, until, false, L)
			compareRefWorlds(t, "matrix-parallel", ref, par)
			ser := runMatrixSharded(seed, shards, until, true, L)
			compareRefWorlds(t, "matrix-serial", ref, ser)
		}
	}
}

// FuzzMultiRunnerMatrix lets the fuzzer vary the seed and shard count:
// go test -fuzz=FuzzMultiRunnerMatrix ./internal/sim
func FuzzMultiRunnerMatrix(f *testing.F) {
	f.Add(uint64(1), uint8(2))
	f.Add(uint64(42), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, shards uint8) {
		s := int(shards%7) + 2
		L := buildPairLookaheads(seed, s)
		ref := runMatrixSingle(seed, s, 100*Microsecond, L)
		got := runMatrixSharded(seed, s, 100*Microsecond, false, L)
		compareRefWorlds(t, "fuzz-matrix", ref, got)
	})
}

// countHandler counts firings; the minimal Handler for livelock probes.
type countHandler struct{ n int }

func (c *countHandler) OnEvent(uint64) { c.n++ }

// TestRunUntilInfinityDeadline is the regression test for the
// windowLimits horizon overflow: `bound := deadline + 1` wrapped negative
// for a deadline at Infinity, collapsing every horizon below the pending
// events and livelocking RunUntil. With satAdd (and the Infinity guard in
// the drive loop) the run must terminate having fired everything.
func TestRunUntilInfinityDeadline(t *testing.T) {
	for _, deadline := range []Time{Infinity, Infinity - 1} {
		for _, matrix := range []bool{false, true} {
			lists := []*EventList{NewEventList(), NewEventList()}
			var c0, c1 countHandler
			lists[0].Schedule(10*Nanosecond, &c0, 0)
			lists[1].Schedule(20*Nanosecond, &c1, 0)
			mr := NewMultiRunner(lists, refLookahead, nil)
			if matrix {
				mr.SetLookaheadMatrix([][]Time{
					{0, refLookahead},
					{2 * refLookahead, 0},
				})
			}
			mr.Parallel = false
			mr.RunUntil(deadline)
			if c0.n != 1 || c1.n != 1 {
				t.Fatalf("deadline=%v matrix=%v: fired %d/%d events, want 1/1",
					deadline, matrix, c0.n, c1.n)
			}
			if got := mr.Now(); got != deadline {
				t.Fatalf("deadline=%v matrix=%v: Now() = %v", deadline, matrix, got)
			}
		}
	}
}
