package sim

import "testing"

// BenchmarkEventListChurn measures raw scheduler throughput: schedule one
// event per step at a random-ish future offset, pop the earliest. This is
// the per-packet overhead floor of every simulation in the repository.
func BenchmarkEventListChurn(b *testing.B) {
	el := NewEventList()
	r := NewRand(1)
	// Keep a standing population of events, as real simulations do.
	for i := 0; i < 1024; i++ {
		el.At(Time(r.Intn(1_000_000)), func() {})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el.After(Time(r.Intn(10_000))*Nanosecond, func() {})
		el.Step()
	}
}

type nopHandler struct{ n uint64 }

func (h *nopHandler) OnEvent(arg uint64) { h.n += arg }

// BenchmarkEventListChurnTyped is the same churn on the typed Handler path
// the hot call-sites use — no closure per event.
func BenchmarkEventListChurnTyped(b *testing.B) {
	el := NewEventList()
	r := NewRand(1)
	h := &nopHandler{}
	for i := 0; i < 1024; i++ {
		el.Schedule(Time(r.Intn(1_000_000)), h, uint64(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		el.ScheduleAfter(Time(r.Intn(10_000))*Nanosecond, h, uint64(i))
		el.Step()
	}
}

// BenchmarkTimerReset measures the restartable-timer path (every data
// packet sent by every transport resets an RTO timer).
func BenchmarkTimerReset(b *testing.B) {
	el := NewEventList()
	tm := NewTimer(el, func() {})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tm.Reset(Millisecond)
		if i%64 == 0 {
			el.RunUntil(el.Now() + Microsecond)
		}
	}
}

// BenchmarkRand measures the RNG used for every ECMP/path/coin decision.
func BenchmarkRand(b *testing.B) {
	r := NewRand(7)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}
