package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEventListOrdering(t *testing.T) {
	el := NewEventList()
	var got []Time
	times := []Time{50, 10, 30, 10, 20, 40, 10}
	for _, at := range times {
		at := at
		el.At(at, func() { got = append(got, at) })
	}
	el.Run()
	want := append([]Time(nil), times...)
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v (order %v)", i, got[i], want[i], got)
		}
	}
	if el.Now() != 50 {
		t.Errorf("clock = %v, want 50", el.Now())
	}
}

func TestEventListFIFOTieBreak(t *testing.T) {
	el := NewEventList()
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		el.At(7*Microsecond, func() { order = append(order, i) })
	}
	el.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of order at %d: got %d", i, v)
		}
	}
}

// Property: for any set of (bounded) timestamps, Run executes every event
// exactly once, in non-decreasing time order, and Now() never goes backwards.
func TestEventListOrderingProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		el := NewEventList()
		var fired []Time
		for _, o := range offsets {
			at := Time(o) * Nanosecond
			el.At(at, func() { fired = append(fired, el.Now()) })
		}
		el.Run()
		if len(fired) != len(offsets) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEventListPastClamps(t *testing.T) {
	el := NewEventList()
	var at Time = -1
	el.At(10*Microsecond, func() {
		// Scheduling in the past must clamp to now, not fire before now.
		el.At(5*Microsecond, func() { at = el.Now() })
	})
	el.Run()
	if at != 10*Microsecond {
		t.Errorf("past event fired at %v, want clamp to 10us", at)
	}
}

func TestRunUntil(t *testing.T) {
	el := NewEventList()
	fired := 0
	for _, at := range []Time{Microsecond, 2 * Microsecond, 3 * Microsecond} {
		el.At(at, func() { fired++ })
	}
	el.RunUntil(2 * Microsecond)
	if fired != 2 {
		t.Errorf("fired %d events by 2us, want 2", fired)
	}
	if el.Now() != 2*Microsecond {
		t.Errorf("clock = %v, want 2us", el.Now())
	}
	if el.Len() != 1 {
		t.Errorf("pending = %d, want 1", el.Len())
	}
	el.RunUntil(Millisecond)
	if fired != 3 {
		t.Errorf("fired %d events total, want 3", fired)
	}
}

func TestHaltStopsRun(t *testing.T) {
	el := NewEventList()
	fired := 0
	el.At(1, func() { fired++; el.Halt() })
	el.At(2, func() { fired++ })
	el.Run()
	if fired != 1 {
		t.Fatalf("fired %d, want 1 (halt should stop the loop)", fired)
	}
	el.Resume()
	el.Run()
	if fired != 2 {
		t.Fatalf("fired %d after resume, want 2", fired)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	el := NewEventList()
	var seq []int
	el.At(Microsecond, func() {
		seq = append(seq, 1)
		el.After(Microsecond, func() { seq = append(seq, 3) })
		el.After(Nanosecond, func() { seq = append(seq, 2) })
	})
	el.Run()
	if len(seq) != 3 || seq[0] != 1 || seq[1] != 2 || seq[2] != 3 {
		t.Fatalf("nested scheduling order = %v, want [1 2 3]", seq)
	}
}

func TestTimerResetSupersedes(t *testing.T) {
	el := NewEventList()
	fired := 0
	tm := NewTimer(el, func() { fired++ })
	tm.Reset(10 * Microsecond)
	el.At(5*Microsecond, func() { tm.Reset(20 * Microsecond) })
	el.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times, want 1", fired)
	}
	if el.Now() != 25*Microsecond {
		t.Errorf("timer fired at %v, want 25us (reset from t=5us)", el.Now())
	}
}

func TestTimerStop(t *testing.T) {
	el := NewEventList()
	fired := false
	tm := NewTimer(el, func() { fired = true })
	tm.Reset(10 * Microsecond)
	if !tm.Pending() {
		t.Fatal("timer should be pending after Reset")
	}
	el.At(Microsecond, func() { tm.Stop() })
	el.Run()
	if fired {
		t.Error("stopped timer fired")
	}
	if tm.Pending() {
		t.Error("stopped timer still pending")
	}
	if tm.Expires() != Infinity {
		t.Errorf("stopped timer expires = %v, want Infinity", tm.Expires())
	}
}

func TestTimerRestartAfterFire(t *testing.T) {
	el := NewEventList()
	fired := 0
	var tm *Timer
	tm = NewTimer(el, func() {
		fired++
		if fired < 3 {
			tm.Reset(Microsecond)
		}
	})
	tm.Reset(Microsecond)
	el.Run()
	if fired != 3 {
		t.Fatalf("periodic-style timer fired %d times, want 3", fired)
	}
}

func TestNextAt(t *testing.T) {
	el := NewEventList()
	if el.NextAt() != Infinity {
		t.Errorf("empty NextAt = %v, want Infinity", el.NextAt())
	}
	el.At(42*Nanosecond, func() {})
	if el.NextAt() != 42*Nanosecond {
		t.Errorf("NextAt = %v, want 42ns", el.NextAt())
	}
}
