package sim

import "math"

// Rand is a small, fast, deterministic pseudo-random number generator
// (xoshiro256**). Every simulation owns its own Rand seeded from the
// experiment configuration so runs are exactly reproducible; nothing in this
// module touches math/rand global state.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed internal state even for small seeds.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	r.Init(seed)
	return r
}

// Init seeds a generator in place: the allocation-free NewRand, for a Rand
// embedded by value in a larger struct or slice.
func (r *Rand) Init(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
}

// Uint64 returns a uniformly distributed 64-bit value.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n)) // modulo bias is negligible for n << 2^64
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n called with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability 1/2.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Duration returns a uniform Time in [0, d).
func (r *Rand) Duration(d Time) Time {
	if d <= 0 {
		return 0
	}
	return Time(r.Int63n(int64(d)))
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts permutes p in place (Fisher–Yates).
func (r *Rand) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle permutes n elements using the provided swap function.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SplitSeed draws a fresh well-mixed seed from the generator's stream.
// Successive calls yield independent seeds, so a parent Rand can hand each
// of N children its own deterministic seed: the i-th child's seed depends
// only on the parent's seed and i, never on who consumes the child first.
// This is how the experiment harness derives per-job RNGs for parallel
// sweeps without sharing generator state across goroutines.
func (r *Rand) SplitSeed() uint64 { return r.Uint64() }

// ExpFloat64 returns an exponentially distributed value with mean 1.
func (r *Rand) ExpFloat64() float64 {
	// Inverse transform sampling; guard against log(0).
	u := r.Float64()
	if u <= 0 {
		u = 1.0 / (1 << 53)
	}
	return -math.Log(1 - u)
}
