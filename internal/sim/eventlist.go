package sim

// EventList is the simulation scheduler: a binary min-heap of timestamped
// callbacks. All components of a simulation share one EventList; Run drains
// it in timestamp order, advancing the virtual clock as it goes.
//
// Events with equal timestamps fire in the order they were scheduled
// (FIFO tie-break via a sequence counter), which keeps simulations
// deterministic regardless of heap internals.
type EventList struct {
	now    Time
	seq    uint64
	heap   []event
	halted bool
}

type event struct {
	at  Time
	seq uint64
	fn  func()
}

// NewEventList returns an empty scheduler with the clock at zero.
func NewEventList() *EventList { return &EventList{} }

// Now returns the current simulated time.
func (el *EventList) Now() Time { return el.now }

// Len returns the number of pending events.
func (el *EventList) Len() int { return len(el.heap) }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error; it is clamped to "now" so the event still fires, which
// is the least surprising recovery during development.
func (el *EventList) At(t Time, fn func()) {
	if t < el.now {
		t = el.now
	}
	el.seq++
	el.heap = append(el.heap, event{at: t, seq: el.seq, fn: fn})
	el.up(len(el.heap) - 1)
}

// After schedules fn to run d after the current time.
func (el *EventList) After(d Time, fn func()) { el.At(el.now+d, fn) }

// Step runs the earliest pending event and returns true, or returns false if
// the list is empty or the simulation was halted.
func (el *EventList) Step() bool {
	if el.halted || len(el.heap) == 0 {
		return false
	}
	ev := el.heap[0]
	last := len(el.heap) - 1
	el.heap[0] = el.heap[last]
	el.heap = el.heap[:last]
	if last > 0 {
		el.down(0)
	}
	el.now = ev.at
	ev.fn()
	return true
}

// Run drains the event list until it is empty or Halt is called.
func (el *EventList) Run() {
	for el.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline, then sets the clock
// to the deadline. Events scheduled beyond the deadline remain pending.
func (el *EventList) RunUntil(deadline Time) {
	for !el.halted && len(el.heap) > 0 && el.heap[0].at <= deadline {
		el.Step()
	}
	if el.now < deadline {
		el.now = deadline
	}
}

// Halt stops Run/RunUntil after the current event returns. Pending events
// are retained; Resume allows stepping again.
func (el *EventList) Halt() { el.halted = true }

// Resume clears a previous Halt.
func (el *EventList) Resume() { el.halted = false }

// Halted reports whether Halt has been called without a matching Resume.
func (el *EventList) Halted() bool { return el.halted }

// NextAt returns the timestamp of the earliest pending event, or Infinity if
// none is pending.
func (el *EventList) NextAt() Time {
	if len(el.heap) == 0 {
		return Infinity
	}
	return el.heap[0].at
}

func (el *EventList) less(i, j int) bool {
	if el.heap[i].at != el.heap[j].at {
		return el.heap[i].at < el.heap[j].at
	}
	return el.heap[i].seq < el.heap[j].seq
}

func (el *EventList) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !el.less(i, parent) {
			break
		}
		el.heap[i], el.heap[parent] = el.heap[parent], el.heap[i]
		i = parent
	}
}

func (el *EventList) down(i int) {
	n := len(el.heap)
	for {
		left := 2*i + 1
		if left >= n {
			return
		}
		smallest := left
		if right := left + 1; right < n && el.less(right, left) {
			smallest = right
		}
		if !el.less(smallest, i) {
			return
		}
		el.heap[i], el.heap[smallest] = el.heap[smallest], el.heap[i]
		i = smallest
	}
}

// Timer is a restartable one-shot timer bound to an EventList, used for
// retransmission timeouts. A Timer may be rescheduled or stopped at any
// time; a stale expiry (from before the most recent Reset/Stop) is ignored.
type Timer struct {
	el      *EventList
	fn      func()
	expires Time
	version uint64
	pending bool
}

// NewTimer returns a stopped timer that will invoke fn on expiry.
func NewTimer(el *EventList, fn func()) *Timer {
	return &Timer{el: el, fn: fn, expires: Infinity}
}

// Reset (re)arms the timer to fire d from now.
func (t *Timer) Reset(d Time) { t.ResetAt(t.el.Now() + d) }

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.version++
	t.expires = at
	t.pending = true
	v := t.version
	t.el.At(at, func() {
		if t.version != v || !t.pending {
			return // superseded by a later Reset or Stop
		}
		t.pending = false
		t.expires = Infinity
		t.fn()
	})
}

// Stop disarms the timer. It is safe to call on a stopped timer.
func (t *Timer) Stop() {
	t.version++
	t.pending = false
	t.expires = Infinity
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.pending }

// Expires returns the absolute expiry time, or Infinity when stopped.
func (t *Timer) Expires() Time { return t.expires }
