package sim

// EventList is the simulation scheduler: a 4-ary indexed min-heap of
// timestamped event records. All components of a simulation share one
// EventList; Run drains it in timestamp order, advancing the virtual clock
// as it goes.
//
// Events with equal timestamps fire in the order they were scheduled
// (FIFO tie-break via a sequence counter), which keeps simulations
// deterministic regardless of heap internals. Rescheduling an event counts
// as scheduling it anew: it moves behind everything already queued at the
// same instant.
//
// The scheduler is allocation-free on its hot paths. Components that
// schedule per packet implement Handler and pass a uint64 argument, so an
// event is two interface words plus plain integers — no closure is created.
// The func()-based At/After remain for cold call-sites where a closure per
// event is irrelevant.
//
// Equal-timestamp ordering is a 64-bit ord word, not the raw sequence
// counter: plainly-scheduled events carry ordNormal|seq (FIFO, as before),
// while ScheduleKeyed events carry a caller-chosen canonical key built with
// DeliveryOrd or CommandOrd. Canonical keys make the firing order of
// same-instant link deliveries a pure function of (emitter identity,
// emission index) instead of of who happened to schedule first — the
// property that lets the sharded multi-list runner (shards.go) reproduce
// the single-list engine bit for bit.
//
// Layout notes, because this is the innermost loop of every simulation:
// the heap is split into parallel key/value arrays so that sift comparisons
// touch only 16-byte (time, seq) keys — the four children examined per
// 4-ary sift-down level share one cache line — and the 4-ary shape halves
// the levels per pop versus a binary heap. Sifts move a hole instead of
// swapping, writing each displaced record once. Events removed or
// rescheduled in place (Cancel, Reschedule) never leave ghost entries.
type EventList struct {
	now      Time
	seq      uint64
	keys     []eventKey
	vals     []eventVal
	slots    []int32 // EventID -> heap index, -1 when the id is free
	free     []int32 // recycled EventIDs
	executed uint64
	halted   bool

	// allocator is an opaque slot for the resource allocator owned by this
	// list's scheduling domain (the per-shard packet arena in practice).
	// sim stays allocator-agnostic: fabric attaches and retrieves it.
	allocator any
}

// SetAllocator attaches the domain allocator owned by this list.
func (el *EventList) SetAllocator(a any) { el.allocator = a }

// Allocator returns the attached domain allocator, or nil.
func (el *EventList) Allocator() any { return el.allocator }

// Handler is the typed, allocation-free way to receive events: components
// implement OnEvent once and schedule themselves with Schedule or
// ScheduleAfter, using arg to distinguish event kinds or carry a payload.
type Handler interface {
	OnEvent(arg uint64)
}

// EventID names a cancellable event in the heap. The sentinel NoEvent means
// "none"; ids are recycled after the event fires or is cancelled, so holding
// a stale id is a programming error.
type EventID int32

// NoEvent is the null EventID.
const NoEvent EventID = -1

// eventKey is the heap ordering key: fire time, then the 64-bit ord word
// (ordNormal|seq for plain events, a canonical class/uid/seq key for keyed
// ones).
type eventKey struct {
	at  Time
	ord uint64
}

func (a *eventKey) less(b *eventKey) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.ord < b.ord
}

// Ord classes, highest bits of the ord word. Lower ord fires first at equal
// timestamps: link deliveries, then cross-shard commands, then everything
// scheduled plainly (whose FIFO order the sequence counter preserves), then
// PFC pause/resume transitions.
const (
	ordDeliveryClass uint64 = 0
	ordCommandClass  uint64 = 1 << 62
	ordNormal        uint64 = 1 << 63
	ordPFCClass      uint64 = 3 << 62

	ordSeqBits = 40
	ordUIDMax  = 1 << 22 // uid field width above the 40-bit sequence
)

// DeliveryOrd builds the canonical ord for a link delivery: at equal
// timestamps deliveries fire before all other events, ordered by the
// emitting port's uid and then its emission sequence. uid must be unique
// per emitter and stable across engine modes; seq must increase per
// emitter.
func DeliveryOrd(uid uint32, seq uint64) uint64 {
	if uint64(uid) >= ordUIDMax {
		panic("sim: DeliveryOrd uid out of range")
	}
	return ordDeliveryClass | uint64(uid)<<ordSeqBits | seq&(1<<ordSeqBits-1)
}

// CommandOrd builds the canonical ord for a cross-host command (deferred
// registration, closed-loop restarts): after same-instant deliveries,
// before plainly-scheduled events, ordered by emitting host uid then its
// emission sequence.
func CommandOrd(uid uint32, seq uint64) uint64 {
	if uint64(uid) >= ordUIDMax {
		panic("sim: CommandOrd uid out of range")
	}
	return ordCommandClass | uint64(uid)<<ordSeqBits | seq&(1<<ordSeqBits-1)
}

// PFCOrd builds the canonical ord for a PFC pause/resume transition: at
// equal timestamps PFC state changes apply after every other event class,
// ordered by the paused port's uid and then the ingress's emission
// sequence. Keying the transition on the (port, seq) pair makes pause
// application order independent of scheduling history — and of which side
// of a shard boundary the transition crossed.
func PFCOrd(uid uint32, seq uint64) uint64 {
	if uint64(uid) >= ordUIDMax {
		panic("sim: PFCOrd uid out of range")
	}
	return ordPFCClass | uint64(uid)<<ordSeqBits | seq&(1<<ordSeqBits-1)
}

// eventVal is the heap payload: what to call and, for cancellable events,
// which slot tracks the record's position.
type eventVal struct {
	arg uint64
	h   Handler
	id  int32 // slot index for cancellable events, -1 otherwise
}

// funcEvent adapts the closure fallback path onto Handler. A func value is
// pointer-shaped, so the interface conversion in At does not allocate; the
// only allocation on that path is the caller's own closure.
type funcEvent func()

func (f funcEvent) OnEvent(uint64) { f() }

// NewEventList returns an empty scheduler with the clock at zero.
func NewEventList() *EventList { return &EventList{} }

// Now returns the current simulated time.
func (el *EventList) Now() Time { return el.now }

// Len returns the number of pending events.
func (el *EventList) Len() int { return len(el.keys) }

// Executed returns how many events have fired since creation — the
// event-throughput numerator of the bench harness.
func (el *EventList) Executed() uint64 { return el.executed }

// At schedules fn to run at absolute time t. Scheduling in the past is a
// programming error; it is clamped to "now" so the event still fires, which
// is the least surprising recovery during development. This is the closure
// fallback path: use Schedule from per-packet call-sites.
func (el *EventList) At(t Time, fn func()) {
	el.push(t, eventVal{h: funcEvent(fn), id: -1})
}

// After schedules fn to run d after the current time.
func (el *EventList) After(d Time, fn func()) { el.At(el.now+d, fn) }

// Schedule arranges for h.OnEvent(arg) to run at absolute time t without
// allocating. Past times clamp to now, as with At.
func (el *EventList) Schedule(t Time, h Handler, arg uint64) {
	el.push(t, eventVal{h: h, arg: arg, id: -1})
}

// ScheduleKeyed schedules h.OnEvent(arg) at t with an explicit equal-time
// ordering key (build it with DeliveryOrd or CommandOrd). Keyed events at
// one timestamp fire in ord order regardless of when they were scheduled,
// which is what keeps sharded and single-list execution identical.
func (el *EventList) ScheduleKeyed(t Time, ord uint64, h Handler, arg uint64) {
	el.pushKeyed(t, ord, eventVal{h: h, arg: arg, id: -1})
}

// AtKeyed is ScheduleKeyed's closure-fallback twin.
func (el *EventList) AtKeyed(t Time, ord uint64, fn func()) {
	el.pushKeyed(t, ord, eventVal{h: funcEvent(fn), id: -1})
}

// ScheduleAfter arranges for h.OnEvent(arg) to run d after the current time.
func (el *EventList) ScheduleAfter(d Time, h Handler, arg uint64) {
	el.push(el.now+d, eventVal{h: h, arg: arg, id: -1})
}

// ScheduleCancelable schedules h.OnEvent(arg) at t and returns an id that
// Cancel or Reschedule accept. The id is valid until the event fires or is
// cancelled.
func (el *EventList) ScheduleCancelable(t Time, h Handler, arg uint64) EventID {
	id := el.allocSlot()
	el.push(t, eventVal{h: h, arg: arg, id: int32(id)})
	return id
}

// Cancel removes a pending event from the heap. It reports whether the id
// named a live event; cancelling an already-fired or already-cancelled id
// returns false. The id is recycled either way.
func (el *EventList) Cancel(id EventID) bool {
	if !el.live(id) {
		return false
	}
	el.remove(int(el.slots[id]))
	el.freeSlot(id)
	return true
}

// Reschedule moves a pending event to absolute time t (clamped to now) and
// gives it a fresh FIFO sequence number, exactly as if it had been cancelled
// and scheduled anew — but in place, with no heap garbage. It reports
// whether the id named a live event.
func (el *EventList) Reschedule(id EventID, t Time) bool {
	if !el.live(id) {
		return false
	}
	if t < el.now {
		t = el.now
	}
	i := int(el.slots[id])
	el.seq++
	el.keys[i] = eventKey{at: t, ord: ordNormal | el.seq}
	if !el.down(i) {
		el.up(i)
	}
	return true
}

// Pending reports whether id names a live (scheduled, not yet fired or
// cancelled) event.
func (el *EventList) Pending(id EventID) bool { return el.live(id) }

// EventTime returns the scheduled time of a live event, or Infinity.
func (el *EventList) EventTime(id EventID) Time {
	if !el.live(id) {
		return Infinity
	}
	return el.keys[el.slots[id]].at
}

func (el *EventList) live(id EventID) bool {
	return id >= 0 && int(id) < len(el.slots) && el.slots[id] >= 0
}

// Step runs the earliest pending event and returns true, or returns false if
// the list is empty or the simulation was halted.
func (el *EventList) Step() bool {
	if el.halted || len(el.keys) == 0 {
		return false
	}
	at := el.keys[0].at
	v := el.vals[0]
	el.popMin()
	if v.id >= 0 {
		el.freeSlot(EventID(v.id))
	}
	el.now = at
	el.executed++
	v.h.OnEvent(v.arg)
	return true
}

// Run drains the event list until it is empty or Halt is called.
func (el *EventList) Run() {
	for el.Step() {
	}
}

// RunUntil processes events with timestamps <= deadline, then sets the clock
// to the deadline. Events scheduled beyond the deadline remain pending.
func (el *EventList) RunUntil(deadline Time) {
	for !el.halted && len(el.keys) > 0 && el.keys[0].at <= deadline {
		el.Step()
	}
	if el.now < deadline {
		el.now = deadline
	}
}

// RunBefore processes events with timestamps strictly < limit and leaves the
// clock at the last event executed — the window body of the sharded runner,
// which must not advance an idle shard's clock past events another shard
// may still inject at the window boundary.
func (el *EventList) RunBefore(limit Time) {
	for !el.halted && len(el.keys) > 0 && el.keys[0].at < limit {
		el.Step()
	}
}

// AdvanceTo moves an idle clock forward to t (never backward); pending
// events earlier than t make this a programming error, so it panics rather
// than silently running time backwards through them.
func (el *EventList) AdvanceTo(t Time) {
	if len(el.keys) > 0 && el.keys[0].at < t {
		panic("sim: AdvanceTo past a pending event")
	}
	if el.now < t {
		el.now = t
	}
}

// Halt stops Run/RunUntil after the current event returns. Pending events
// are retained; Resume allows stepping again.
func (el *EventList) Halt() { el.halted = true }

// Resume clears a previous Halt.
func (el *EventList) Resume() { el.halted = false }

// Halted reports whether Halt has been called without a matching Resume.
func (el *EventList) Halted() bool { return el.halted }

// NextAt returns the timestamp of the earliest pending event, or Infinity if
// none is pending.
func (el *EventList) NextAt() Time {
	if len(el.keys) == 0 {
		return Infinity
	}
	return el.keys[0].at
}

// push clamps, stamps the FIFO sequence number, and sifts the record in.
func (el *EventList) push(at Time, v eventVal) {
	el.seq++
	el.pushKeyed(at, ordNormal|el.seq, v)
}

// pushKeyed clamps and sifts a record in under an explicit ord word.
func (el *EventList) pushKeyed(at Time, ord uint64, v eventVal) {
	if at < el.now {
		at = el.now
	}
	el.keys = append(el.keys, eventKey{at: at, ord: ord}) //simlint:allow hotalloc — heap storage (keys and vals grow in lockstep): amortized doubling, capacity bounded by peak pending events and reused across pops
	el.vals = append(el.vals, v)
	i := len(el.keys) - 1
	if v.id >= 0 {
		el.slots[v.id] = int32(i)
	}
	el.up(i)
}

// popMin deletes the root — the pop half of every simulation step, so it
// uses the bottom-up deletion of Wegener's heapsort analysis: the root hole
// sinks to a leaf along minimal children (no comparisons against the
// relocated tail record), the tail record drops into the hole, and a sift-up
// fixes the rare case where it did not belong that deep. The relocated
// record is almost always a recent leaf, so the sift-up typically costs one
// comparison and zero moves — saving a comparison per level versus the
// classic move-tail-to-root-and-sink pop.
func (el *EventList) popMin() {
	keys, vals := el.keys, el.vals
	last := len(keys) - 1
	if last > 0 {
		// Sink the root hole to a leaf, excluding index `last` (the record
		// being relocated) from the scans.
		i := 0
		for {
			first := 4*i + 1
			if first >= last {
				break
			}
			smallest := first
			sk := keys[first]
			end := first + 4
			if end > last {
				end = last
			}
			for c := first + 1; c < end; c++ {
				if keys[c].at < sk.at || (keys[c].at == sk.at && keys[c].ord < sk.ord) {
					smallest, sk = c, keys[c]
				}
			}
			el.set(i, sk, vals[smallest])
			i = smallest
		}
		el.set(i, keys[last], vals[last])
		vals[last] = eventVal{}
		el.keys = keys[:last]
		el.vals = vals[:last]
		el.up(i)
		return
	}
	vals[0] = eventVal{}
	el.keys = keys[:0]
	el.vals = vals[:0]
}

// remove deletes the record at heap index i, keeping slot indices current.
// The vacated tail value is zeroed so the heap never retains a Handler or
// closure beyond the event's life.
func (el *EventList) remove(i int) {
	last := len(el.keys) - 1
	if i != last {
		el.set(i, el.keys[last], el.vals[last])
	}
	el.vals[last] = eventVal{}
	el.keys = el.keys[:last]
	el.vals = el.vals[:last]
	if i < last {
		// At most one direction applies: the replacement either sinks or
		// (when removing mid-heap) may need to rise past its new parent.
		if !el.down(i) {
			el.up(i)
		}
	}
}

// set writes a record into position i and updates its slot if cancellable.
func (el *EventList) set(i int, k eventKey, v eventVal) {
	el.keys[i] = k
	el.vals[i] = v
	if v.id >= 0 {
		el.slots[v.id] = int32(i)
	}
}

func (el *EventList) allocSlot() EventID {
	if n := len(el.free); n > 0 {
		id := el.free[n-1]
		el.free = el.free[:n-1]
		return EventID(id)
	}
	el.slots = append(el.slots, -1) //simlint:allow hotalloc — slot table: grows to peak concurrent cancelable events once, then the free-list recycles ids
	return EventID(len(el.slots) - 1)
}

func (el *EventList) freeSlot(id EventID) {
	el.slots[id] = -1
	el.free = append(el.free, int32(id)) //simlint:allow hotalloc — slot free-list: capacity bounded by the slot table, kept across reuse
}

// up sifts index i toward the root (parent of i is (i-1)/4). It moves a
// hole rather than swapping: parents shift down one copy each, and the
// moving record is written exactly once at its final position. The fast
// path (already in place, the common case for pushes into a deep heap)
// performs one comparison and zero writes.
func (el *EventList) up(i int) {
	keys := el.keys
	if i == 0 {
		return
	}
	parent := (i - 1) >> 2 // i > 0, so the shift is an exact /4
	if !keys[i].less(&keys[parent]) {
		return
	}
	k, v := keys[i], el.vals[i]
	for {
		el.set(i, keys[parent], el.vals[parent])
		i = parent
		if i == 0 {
			break
		}
		parent = (i - 1) >> 2
		if !k.less(&keys[parent]) {
			break
		}
	}
	el.set(i, k, v)
}

// down sifts index i toward the leaves (children of i are 4i+1 .. 4i+4),
// with the same single-write hole technique as up, and reports whether the
// record moved. Only 16-byte keys are read while scanning children — the
// four children of one node share a cache line — and the running minimum is
// kept in registers.
func (el *EventList) down(i int) bool {
	keys := el.keys
	n := len(keys)
	k, v := keys[i], el.vals[i]
	moved := false
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		smallest := first
		sk := keys[first]
		end := first + 4
		if end > n {
			end = n
		}
		for c := first + 1; c < end; c++ {
			if keys[c].at < sk.at || (keys[c].at == sk.at && keys[c].ord < sk.ord) {
				smallest, sk = c, keys[c]
			}
		}
		if !sk.less(&k) {
			break
		}
		el.set(i, sk, el.vals[smallest])
		i = smallest
		moved = true
	}
	if moved {
		el.set(i, k, v)
	}
	return moved
}

// Timer is a restartable one-shot timer bound to an EventList, used for
// retransmission timeouts. A Timer may be rescheduled or stopped at any
// time. Reset and Stop operate on the timer's single in-heap entry —
// rescheduling moves it, stopping removes it — so a timer contributes at
// most one pending event no matter how often it is re-armed. (The previous
// implementation abandoned a dead closure in the heap on every Reset, which
// made RTO-heavy incasts accumulate thousands of ghost events.)
type Timer struct {
	el      *EventList
	fn      func()
	h       Handler
	id      EventID
	expires Time
}

// NewTimer returns a stopped timer that will invoke fn on expiry.
//
//simlint:allow hotalloc — pool-miss constructor: one Timer per pooled endpoint, reused via Reset/Stop in steady state (embed by value and Init to avoid even that)
func NewTimer(el *EventList, fn func()) *Timer {
	t := &Timer{}
	t.Init(el, fn)
	return t
}

// Init readies a timer in place: the allocation-free NewTimer, for a Timer
// embedded by value in a larger struct.
func (t *Timer) Init(el *EventList, fn func()) {
	*t = Timer{el: el, fn: fn, id: NoEvent, expires: Infinity}
}

// InitHandler is Init with a Handler expiry instead of a closure — storing
// a pointer in an interface field does not allocate, where binding a
// method value does.
func (t *Timer) InitHandler(el *EventList, h Handler) {
	*t = Timer{el: el, h: h, id: NoEvent, expires: Infinity}
}

// OnEvent is the timer's expiry; it is public only to satisfy Handler.
func (t *Timer) OnEvent(uint64) {
	t.id = NoEvent
	t.expires = Infinity
	if t.h != nil {
		t.h.OnEvent(0)
		return
	}
	t.fn()
}

// Reset (re)arms the timer to fire d from now.
func (t *Timer) Reset(d Time) { t.ResetAt(t.el.Now() + d) }

// ResetAt (re)arms the timer to fire at absolute time at.
func (t *Timer) ResetAt(at Time) {
	t.expires = at
	if t.id != NoEvent {
		t.el.Reschedule(t.id, at)
		return
	}
	t.id = t.el.ScheduleCancelable(at, t, 0)
}

// Stop disarms the timer. It is safe to call on a stopped timer.
func (t *Timer) Stop() {
	if t.id != NoEvent {
		t.el.Cancel(t.id)
		t.id = NoEvent
	}
	t.expires = Infinity
}

// Pending reports whether the timer is armed.
func (t *Timer) Pending() bool { return t.id != NoEvent }

// Expires returns the absolute expiry time, or Infinity when stopped.
func (t *Timer) Expires() Time { return t.expires }
