package sim

import (
	"testing"
	"testing/quick"
)

func TestTransmissionTime(t *testing.T) {
	tests := []struct {
		name string
		size int
		rate int64
		want Time
	}{
		{"9KB at 10G is 7.2us", 9000, 10e9, 7200 * Nanosecond},
		{"1500B at 10G is 1.2us", 1500, 10e9, 1200 * Nanosecond},
		{"64B at 10G is 51.2ns", 64, 10e9, Time(51200)},
		{"zero rate", 100, 0, 0},
		{"1B at 1G", 1, 1e9, 8 * Nanosecond},
	}
	for _, tt := range tests {
		if got := TransmissionTime(tt.size, tt.rate); got != tt.want {
			t.Errorf("%s: TransmissionTime(%d, %d) = %v, want %v",
				tt.name, tt.size, tt.rate, got, tt.want)
		}
	}
}

// Property: transmission time is monotone in size and rounds up, so N
// packets take at least N times the exact wire time.
func TestTransmissionTimeMonotone(t *testing.T) {
	prop := func(a, b uint16) bool {
		small, big := int(a), int(b)
		if small > big {
			small, big = big, small
		}
		return TransmissionTime(small, 10e9) <= TransmissionTime(big, 10e9)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestTimeString(t *testing.T) {
	tests := []struct {
		in   Time
		want string
	}{
		{500 * Picosecond, "500ps"},
		{7200 * Nanosecond, "7.2us"},
		{100 * Microsecond, "100us"},
		{3 * Millisecond, "3ms"},
		{2 * Second, "2s"},
		{Infinity, "inf"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("(%d).String() = %q, want %q", int64(tt.in), got, tt.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	if got := (1500 * Microsecond).Millis(); got != 1.5 {
		t.Errorf("Millis = %v, want 1.5", got)
	}
	if got := (2500 * Nanosecond).Micros(); got != 2.5 {
		t.Errorf("Micros = %v, want 2.5", got)
	}
	if got := FromSeconds(0.001); got != Millisecond {
		t.Errorf("FromSeconds(0.001) = %v, want 1ms", got)
	}
	if got := (3 * Millisecond).Std().Milliseconds(); got != 3 {
		t.Errorf("Std = %v ms, want 3", got)
	}
}
