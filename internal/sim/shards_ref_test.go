package sim

import (
	"testing"
)

// This file checks the conservative windowed multi-list runner against the
// single-list engine, mirroring eventlist_ref_test.go's reference-model
// approach one level up: the same randomized actor workload runs once on
// one EventList and once partitioned across shards under MultiRunner, and
// every actor must observe the identical event sequence. The workload
// exercises exactly the properties the real fabric relies on: per-actor
// RNG streams, canonical (uid, seq) keys on cross-actor messages, and a
// minimum cross-shard latency equal to the runner's lookahead.

const (
	refLookahead = 500 * Nanosecond
	refActors    = 8 // actors per shard
)

// refActor is one stateful component: it logs everything it sees and
// reacts by scheduling local work and sending messages to random actors.
type refActor struct {
	w      *refWorld
	id     int
	shard  int
	el     *EventList
	rng    *Rand
	seq    uint64 // emission counter for canonical message keys
	budget int    // reactions left, bounds the cascade
	log    []refLogEntry
}

type refLogEntry struct {
	at  Time
	arg uint64
}

// refWorld wires actors together in one of the two modes. send delivers a
// keyed message to actor dst at time at (directly onto the destination
// list in single mode, via the src->dst shard mailbox in sharded mode).
type refWorld struct {
	actors []*refActor
	send   func(src, dst *refActor, at Time, ord uint64, arg uint64)
	// lat, when non-nil, is the per-shard-pair minimum cross latency the
	// actors must respect (the lookahead-matrix twin); nil means the
	// uniform refLookahead.
	lat [][]Time
}

// minLat is the smallest latency a message from src to dst may carry.
func (w *refWorld) minLat(src, dst *refActor) Time {
	if w.lat == nil || src.shard == dst.shard {
		return refLookahead
	}
	return w.lat[src.shard][dst.shard]
}

// OnEvent logs the stimulus and reacts deterministically from the actor's
// own RNG: a few local events at arbitrary offsets (intra-shard causality
// has no lookahead bound) and cross-actor messages at >= lookahead.
func (a *refActor) OnEvent(arg uint64) {
	a.log = append(a.log, refLogEntry{at: a.el.Now(), arg: arg})
	if a.budget <= 0 {
		return
	}
	a.budget--
	n := a.rng.Intn(3)
	for i := 0; i < n; i++ {
		switch a.rng.Intn(3) {
		case 0: // local event, any offset (same-instant allowed)
			off := Time(a.rng.Intn(700)) * Nanosecond
			a.el.Schedule(a.el.Now()+off, a, a.rng.Uint64()%1000)
		case 1: // message to a random actor in this shard
			peers := a.w.actors
			dst := peers[a.rng.Intn(len(peers))]
			if dst.shard != a.shard {
				dst = a // fall back to self
			}
			off := Time(a.rng.Intn(900)) * Nanosecond
			a.seq++
			a.w.send(a, dst, a.el.Now()+off, DeliveryOrd(uint32(a.id+1), a.seq), 1000+a.rng.Uint64()%1000)
		default: // message to any actor, respecting the (pair) lookahead
			dst := a.w.actors[a.rng.Intn(len(a.w.actors))]
			off := a.w.minLat(a, dst) + Time(a.rng.Intn(900))*Nanosecond
			a.seq++
			a.w.send(a, dst, a.el.Now()+off, DeliveryOrd(uint32(a.id+1), a.seq), 2000+a.rng.Uint64()%1000)
		}
	}
}

// refMsg adapts a pending message delivery onto Handler for the single
// list; the arg routes to the right actor.
type refMsg struct{ dst *refActor }

func (m refMsg) OnEvent(arg uint64) { m.dst.OnEvent(arg) }

// buildRefWorld creates the actor set for one mode. lists has one entry in
// single-list mode or one per shard in sharded mode.
func buildRefWorld(seed uint64, shards int, lists []*EventList) *refWorld {
	w := &refWorld{}
	for s := 0; s < shards; s++ {
		el := lists[0]
		if len(lists) > 1 {
			el = lists[s]
		}
		for i := 0; i < refActors; i++ {
			id := s*refActors + i
			w.actors = append(w.actors, &refActor{
				w:     w,
				id:    id,
				shard: s,
				el:    el,
				rng:   NewRand(seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15),
				// The budget bounds total events; stimulus events below
				// re-seed every actor's cascade.
				budget: 40,
			})
		}
	}
	return w
}

// runRefSingle executes the workload on one shared list.
func runRefSingle(seed uint64, shards int, until Time) *refWorld {
	el := NewEventList()
	w := buildRefWorld(seed, shards, []*EventList{el})
	w.send = func(src, dst *refActor, at Time, ord uint64, arg uint64) {
		el.ScheduleKeyed(at, ord, refMsg{dst}, arg)
	}
	seedStimuli(w)
	el.RunUntil(until)
	return w
}

// runRefSharded executes the workload across shard lists under the
// windowed runner, with test-local mailboxes standing in for the fabric's
// cross-shard boxes.
func runRefSharded(seed uint64, shards int, until Time, serial bool) *refWorld {
	lists := make([]*EventList, shards)
	for i := range lists {
		lists[i] = NewEventList()
	}
	w := buildRefWorld(seed, shards, lists)
	type boxEntry struct {
		at  Time
		ord uint64
		dst *refActor
		arg uint64
	}
	boxes := make([][]boxEntry, shards*shards)
	w.send = func(src, dst *refActor, at Time, ord uint64, arg uint64) {
		if src.shard == dst.shard {
			lists[dst.shard].ScheduleKeyed(at, ord, refMsg{dst}, arg)
			return
		}
		b := &boxes[src.shard*shards+dst.shard]
		*b = append(*b, boxEntry{at: at, ord: ord, dst: dst, arg: arg})
	}
	mr := NewMultiRunner(lists, refLookahead, func() {
		for i := range boxes {
			for _, e := range boxes[i] {
				lists[e.dst.shard].ScheduleKeyed(e.at, e.ord, refMsg{e.dst}, e.arg)
			}
			boxes[i] = boxes[i][:0]
		}
	})
	mr.Parallel = !serial
	seedStimuli(w)
	mr.RunUntil(until)
	mr.Close()
	return w
}

// seedStimuli schedules the initial kick events: several per actor, with
// deliberate timestamp collisions across actors and shards.
func seedStimuli(w *refWorld) {
	for _, a := range w.actors {
		for k := 0; k < 3; k++ {
			at := Time((a.id%4)*250+k*777) * Nanosecond
			a.el.Schedule(at, a, uint64(k))
		}
	}
}

func compareRefWorlds(t *testing.T, name string, ref, got *refWorld) {
	t.Helper()
	for i, a := range ref.actors {
		b := got.actors[i]
		if len(a.log) != len(b.log) {
			t.Fatalf("%s: actor %d saw %d events single-list, %d sharded", name, i, len(a.log), len(b.log))
		}
		for j := range a.log {
			if a.log[j] != b.log[j] {
				t.Fatalf("%s: actor %d event %d diverged: single %+v, sharded %+v",
					name, i, j, a.log[j], b.log[j])
			}
		}
		if a.el.Now() != b.el.Now() {
			t.Fatalf("%s: actor %d clock diverged: %v vs %v", name, i, a.el.Now(), b.el.Now())
		}
	}
}

// TestMultiRunnerVsSingleList drives many seeds through both engines at
// several shard widths — the always-on property test behind
// FuzzMultiRunner.
func TestMultiRunnerVsSingleList(t *testing.T) {
	const until = 200 * Microsecond
	for seed := uint64(1); seed <= 25; seed++ {
		for _, shards := range []int{2, 3, 5} {
			ref := runRefSingle(seed, shards, until)
			par := runRefSharded(seed, shards, until, false)
			compareRefWorlds(t, "parallel", ref, par)
			ser := runRefSharded(seed, shards, until, true)
			compareRefWorlds(t, "serial", ref, ser)
		}
	}
}

// FuzzMultiRunner lets the fuzzer vary the seed and shard count:
// go test -fuzz=FuzzMultiRunner ./internal/sim
func FuzzMultiRunner(f *testing.F) {
	f.Add(uint64(1), uint8(2))
	f.Add(uint64(42), uint8(7))
	f.Fuzz(func(t *testing.T, seed uint64, shards uint8) {
		s := int(shards%7) + 2
		ref := runRefSingle(seed, s, 100*Microsecond)
		got := runRefSharded(seed, s, 100*Microsecond, false)
		compareRefWorlds(t, "fuzz", ref, got)
	})
}
