package sim

import (
	"runtime"
	"sync"
)

// This file is the conservative parallel-discrete-event runner behind
// sharded simulations: several EventLists (one per topology shard) advance
// in lockstep time windows bounded by the minimum latency of any
// cross-shard link (the lookahead, in the Chandy–Misra sense). Within a
// window shards share nothing and may run on separate goroutines; at each
// window boundary an exchange callback drains the cross-shard mailboxes
// into the destination lists as keyed events.
//
// Correctness rests on two invariants the wiring layer must uphold:
//
//  1. every cross-shard interaction is emitted as a message whose delivery
//     time is at least Lookahead after the emitting event, so a message
//     produced by an event at time t is always delivered at or after
//     t + Lookahead and the boundary exchange never injects into the past;
//  2. cross-shard messages are scheduled with canonical ord keys
//     (DeliveryOrd/CommandOrd), so their firing order at equal timestamps
//     does not depend on which side of a shard boundary they crossed —
//     which is what makes an N-shard run bit-identical to a 1-shard run.
//
// Windows are adaptive: each shard gets its own per-window horizon derived
// from every shard's next pending event time (see windowLimits), so the
// fixed-lookahead window is only the worst case. When the mailboxes stay
// empty because peer shards have nothing pending soon, horizons widen
// automatically — an idle-peer phase costs one barrier per stretch instead
// of one barrier per lookahead of virtual time.

// Runner is the engine surface a driver needs: both *EventList (the
// single-list engine) and *MultiRunner (the sharded one) implement it.
type Runner interface {
	// Now returns the current simulated time.
	Now() Time
	// RunUntil processes events with timestamps <= deadline and advances
	// the clock (all shard clocks) to exactly the deadline.
	RunUntil(deadline Time)
	// Executed returns the total events fired since creation.
	Executed() uint64
}

// MultiRunner advances a set of shard EventLists in conservative windows
// bounded by the cross-shard lookahead.
type MultiRunner struct {
	// Lists are the per-shard schedulers, index = shard id.
	Lists []*EventList
	// Lookahead bounds each window; it must not exceed the minimum
	// latency of any cross-shard interaction. When a lookahead matrix is
	// installed (SetLookaheadMatrix) the matrix governs the windows and
	// this scalar is only a lower-bound summary for callers.
	Lookahead Time
	// Exchange drains all cross-shard mailboxes into the destination
	// lists. It runs single-threaded between windows.
	Exchange func()
	// Parallel runs each window's shards on separate goroutines. Serial
	// execution is bit-identical (behavior is fixed by event keys, not by
	// the execution schedule); parallel is the point of sharding.
	Parallel bool

	// matrix is the optional per-pair lookahead: matrix[j][i] is the
	// minimum latency of any interaction emitted by shard j that reaches
	// shard i (Infinity when nothing j does can ever reach i). nil means
	// the scalar Lookahead governs every pair.
	matrix [][]Time
	// react[i] is the minimum round-trip lookahead out of and back into
	// shard i: min over j != i of matrix[i][j] + matrix[j][i]. It bounds
	// how soon a *reaction* to shard i's own emissions can return, the
	// per-pair generalization of the scalar engine's 2L widening.
	react []Time

	// limits is the per-shard window horizon scratch, recomputed each
	// window by windowLimits.
	limits []Time
	// work feeds each persistent shard worker its next window horizon.
	// Workers are started lazily on the first parallel window and live
	// until Close, so the steady state spawns no goroutines — PR 4 paid a
	// goroutine spawn per busy shard per window, which showed up as
	// allocation and scheduler churn on short windows.
	work []chan Time
	wg   sync.WaitGroup
}

// NewMultiRunner builds a runner over the given shard lists. Parallel
// defaults to off on a single-CPU process, where per-window goroutine
// handoff is pure overhead; behavior is identical either way.
func NewMultiRunner(lists []*EventList, lookahead Time, exchange func()) *MultiRunner {
	if lookahead <= 0 {
		panic("sim: MultiRunner needs positive lookahead")
	}
	return &MultiRunner{Lists: lists, Lookahead: lookahead, Exchange: exchange,
		Parallel: runtime.GOMAXPROCS(0) > 1}
}

// SetLookaheadMatrix installs the per-pair lookahead: L[j][i] is the
// minimum latency of any interaction shard j can emit toward shard i —
// the minimum total path delay across the actual cut edges from j to i,
// Infinity when no path crosses. Off-diagonal entries must be positive
// and at least the scalar Lookahead; diagonal entries are ignored. The
// matrix must be the metric closure of the shard quotient graph (L[j][i]
// <= L[j][k] + L[k][i] for all k), which the topology layer guarantees by
// computing it as an all-pairs shortest path; windowLimits relies on the
// triangle inequality to bound multi-hop reaction chains by round trips.
func (mr *MultiRunner) SetLookaheadMatrix(L [][]Time) {
	n := len(mr.Lists)
	if len(L) != n {
		panic("sim: lookahead matrix must be shards x shards")
	}
	react := make([]Time, n)
	for i := range L {
		if len(L[i]) != n {
			panic("sim: lookahead matrix must be shards x shards")
		}
		react[i] = Infinity
		for j, l := range L[i] {
			if i == j {
				continue
			}
			if l < mr.Lookahead {
				panic("sim: lookahead matrix entry below the scalar lookahead")
			}
			if rt := satAdd(l, L[j][i]); rt < react[i] {
				react[i] = rt
			}
		}
	}
	mr.matrix, mr.react = L, react
}

// Close stops the persistent shard workers (if any were started). The
// runner remains usable afterwards — the next parallel window simply
// restarts them — so Close is a resource release, not a terminal state.
// It is safe to call on a runner that never went parallel.
func (mr *MultiRunner) Close() {
	for _, ch := range mr.work {
		close(ch)
	}
	mr.work = nil
}

// Now returns the farthest-behind shard clock (all clocks are equal after
// RunUntil returns).
func (mr *MultiRunner) Now() Time {
	now := mr.Lists[0].Now()
	for _, el := range mr.Lists[1:] {
		if t := el.Now(); t < now {
			now = t
		}
	}
	return now
}

// Executed sums events fired across all shards.
func (mr *MultiRunner) Executed() uint64 {
	var n uint64
	for _, el := range mr.Lists {
		n += el.Executed()
	}
	return n
}

// nextAt returns the earliest pending event time across shards.
func (mr *MultiRunner) nextAt() Time {
	at := Infinity
	for _, el := range mr.Lists {
		if t := el.NextAt(); t < at {
			at = t
		}
	}
	return at
}

// satAdd adds a latency to a timestamp without overflowing Infinity.
func satAdd(t, d Time) Time {
	if t >= Infinity-d {
		return Infinity
	}
	return t + d
}

// windowLimits computes each shard's horizon for the next window from the
// snapshot of next-event times. Shard i may safely run every event with a
// timestamp strictly below
//
//	limit_i = min( min_{j != i}(N_j + L[j][i]),  N_i + R_i )
//
// where N_j is shard j's earliest pending event, L[j][i] the pair
// lookahead from j to i (the scalar Lookahead for every pair when no
// matrix is installed, making R_i = 2L):
//   - any message another shard j emits this window comes from an event at
//     time >= N_j and needs at least L[j][i] to reach i, so it arrives at
//     >= N_j + L[j][i] >= limit_i;
//   - any *future* message toward i is a reaction to something i itself
//     emitted this window — a chain i -> j -> ... -> i costs at least the
//     round trip R_i = min_j(L[i][j] + L[j][i]), because the matrix is a
//     metric closure and longer chains only add hops — so it arrives at
//     >= N_i + R_i >= limit_i.
//
// Nothing injected at this or any later barrier can therefore land in
// shard i's past. When peer shards are idle (N_j far ahead or Infinity),
// limit_i widens well beyond the fixed lookahead — this is the adaptive
// widening that makes empty-mailbox phases cheap — and when every shard is
// equally busy with a uniform matrix it degrades exactly to the classic
// min(N)+L window. With a real matrix, distant shard pairs (multi-hop
// cuts, or no connecting path at all: L = Infinity) stop constraining
// each other, so non-adjacent shards run far ahead of the global minimum.
func (mr *MultiRunner) windowLimits(deadline Time) {
	if mr.limits == nil {
		mr.limits = make([]Time, len(mr.Lists))
	}
	// The +1 makes the exclusive window bound inclusive of events at
	// exactly the deadline, still within the conservative limit. Saturate:
	// a deadline at or near Infinity must clamp, not wrap every horizon
	// to 0 and livelock RunUntil.
	bound := satAdd(deadline, 1)
	if mr.matrix != nil {
		mr.matrixLimits(bound)
		return
	}
	// Scalar fast path: min and second-min of N_j + L give min_{j != i}
	// in O(shards).
	min1, min2 := Infinity, Infinity
	argmin := -1
	for i, el := range mr.Lists {
		h := satAdd(el.NextAt(), mr.Lookahead)
		if h < min1 {
			min1, min2, argmin = h, min1, i
		} else if h < min2 {
			min2 = h
		}
	}
	for i, el := range mr.Lists {
		peers := min1
		if i == argmin {
			peers = min2
		}
		limit := satAdd(satAdd(el.NextAt(), mr.Lookahead), mr.Lookahead)
		if peers < limit {
			limit = peers
		}
		if bound < limit {
			limit = bound
		}
		mr.limits[i] = limit
	}
}

// matrixLimits is the per-pair O(shards^2) horizon computation used when a
// lookahead matrix is installed; see windowLimits for the bound it
// implements. Progress is guaranteed: the globally-earliest shard's
// horizon exceeds its own next event (every N_j + L[j][i] term is at
// least N_i plus a positive lookahead), so every window fires at least
// one event.
func (mr *MultiRunner) matrixLimits(bound Time) {
	for i := range mr.Lists {
		limit := satAdd(mr.Lists[i].NextAt(), mr.react[i])
		for j, el := range mr.Lists {
			if j == i {
				continue
			}
			if h := satAdd(el.NextAt(), mr.matrix[j][i]); h < limit {
				limit = h
			}
		}
		if bound < limit {
			limit = bound
		}
		mr.limits[i] = limit
	}
}

// RunUntil drives windows until every event with a timestamp <= deadline
// has fired, then sets all shard clocks to the deadline. Empty stretches of
// virtual time are skipped: per-shard horizons derive from the earliest
// pending events, so idle phases (closed-loop gaps) cost no barriers.
func (mr *MultiRunner) RunUntil(deadline Time) {
	// Drain the mailboxes before choosing the first window: setup code
	// (flow priming on the coordinator goroutine, between runs) may have
	// emitted cross-shard entries that no event list knows about yet, and
	// the window-start jump below must not skip past their times.
	if mr.Exchange != nil {
		mr.Exchange()
	}
	for {
		// An empty schedule reports Infinity; treat it as done even when
		// the deadline itself is Infinity, or the loop never exits.
		if at := mr.nextAt(); at > deadline || at == Infinity {
			break
		}
		mr.windowLimits(deadline)
		mr.runWindow()
		if mr.Exchange != nil {
			mr.Exchange()
		}
	}
	for _, el := range mr.Lists {
		el.AdvanceTo(deadline)
	}
}

// runWindow executes one window: every shard runs its pending events up to
// its own precomputed horizon.
func (mr *MultiRunner) runWindow() {
	// Run single-shard windows inline: worker handoff costs more than it
	// buys when only one shard is busy.
	nBusy := 0
	for i, el := range mr.Lists {
		if el.NextAt() < mr.limits[i] {
			nBusy++
		}
	}
	if nBusy == 0 {
		return
	}
	if nBusy == 1 || !mr.Parallel {
		for i, el := range mr.Lists {
			el.RunBefore(mr.limits[i])
		}
		return
	}
	if mr.work == nil {
		mr.startWorkers()
	}
	for i, el := range mr.Lists {
		if el.NextAt() >= mr.limits[i] {
			continue
		}
		mr.wg.Add(1)
		mr.work[i] <- mr.limits[i]
	}
	mr.wg.Wait()
}

// startWorkers spawns one persistent goroutine per shard, parked on a
// channel between windows. The WaitGroup barrier at the end of each window
// publishes every shard's writes to the coordinator (and, through the next
// window's sends, to every other worker), which is the happens-before edge
// the single-writer mailboxes rely on.
func (mr *MultiRunner) startWorkers() {
	mr.work = make([]chan Time, len(mr.Lists))
	for i := range mr.Lists {
		ch := make(chan Time, 1)
		mr.work[i] = ch
		el := mr.Lists[i]
		go func() {
			for limit := range ch {
				el.RunBefore(limit)
				mr.wg.Done()
			}
		}()
	}
}
