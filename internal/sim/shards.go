package sim

import (
	"runtime"
	"sync"
)

// This file is the conservative parallel-discrete-event runner behind
// sharded simulations: several EventLists (one per topology shard) advance
// in lockstep time windows bounded by the minimum latency of any
// cross-shard link (the lookahead, in the Chandy–Misra sense). Within a
// window shards share nothing and may run on separate goroutines; at each
// window boundary an exchange callback drains the cross-shard mailboxes
// into the destination lists as keyed events.
//
// Correctness rests on two invariants the wiring layer must uphold:
//
//  1. every cross-shard interaction is emitted as a message whose delivery
//     time is at least Lookahead after the emitting event, so a message
//     produced inside window [T, T+L) is always delivered at or after T+L
//     and the boundary exchange never injects into the past;
//  2. cross-shard messages are scheduled with canonical ord keys
//     (DeliveryOrd/CommandOrd), so their firing order at equal timestamps
//     does not depend on which side of a shard boundary they crossed —
//     which is what makes an N-shard run bit-identical to a 1-shard run.

// Runner is the engine surface a driver needs: both *EventList (the
// single-list engine) and *MultiRunner (the sharded one) implement it.
type Runner interface {
	// Now returns the current simulated time.
	Now() Time
	// RunUntil processes events with timestamps <= deadline and advances
	// the clock (all shard clocks) to exactly the deadline.
	RunUntil(deadline Time)
	// Executed returns the total events fired since creation.
	Executed() uint64
}

// MultiRunner advances a set of shard EventLists in conservative lockstep
// windows of Lookahead simulated time.
type MultiRunner struct {
	// Lists are the per-shard schedulers, index = shard id.
	Lists []*EventList
	// Lookahead bounds each window; it must not exceed the minimum
	// latency of any cross-shard interaction.
	Lookahead Time
	// Exchange drains all cross-shard mailboxes into the destination
	// lists. It runs single-threaded between windows.
	Exchange func()
	// Parallel runs each window's shards on separate goroutines. Serial
	// execution is bit-identical (behavior is fixed by event keys, not by
	// the execution schedule); parallel is the point of sharding.
	Parallel bool
}

// NewMultiRunner builds a runner over the given shard lists. Parallel
// defaults to off on a single-CPU process, where per-window goroutine
// handoff is pure overhead; behavior is identical either way.
func NewMultiRunner(lists []*EventList, lookahead Time, exchange func()) *MultiRunner {
	if lookahead <= 0 {
		panic("sim: MultiRunner needs positive lookahead")
	}
	return &MultiRunner{Lists: lists, Lookahead: lookahead, Exchange: exchange,
		Parallel: runtime.GOMAXPROCS(0) > 1}
}

// Now returns the farthest-behind shard clock (all clocks are equal after
// RunUntil returns).
func (mr *MultiRunner) Now() Time {
	now := mr.Lists[0].Now()
	for _, el := range mr.Lists[1:] {
		if t := el.Now(); t < now {
			now = t
		}
	}
	return now
}

// Executed sums events fired across all shards.
func (mr *MultiRunner) Executed() uint64 {
	var n uint64
	for _, el := range mr.Lists {
		n += el.Executed()
	}
	return n
}

// nextAt returns the earliest pending event time across shards.
func (mr *MultiRunner) nextAt() Time {
	at := Infinity
	for _, el := range mr.Lists {
		if t := el.NextAt(); t < at {
			at = t
		}
	}
	return at
}

// RunUntil drives windows until every event with a timestamp <= deadline
// has fired, then sets all shard clocks to the deadline. Empty stretches of
// virtual time are skipped: each window starts at the earliest pending
// event, so idle phases (closed-loop gaps) cost no barriers.
func (mr *MultiRunner) RunUntil(deadline Time) {
	// Drain the mailboxes before choosing the first window: setup code
	// (flow priming on the coordinator goroutine, between runs) may have
	// emitted cross-shard entries that no event list knows about yet, and
	// the window-start jump below must not skip past their times.
	if mr.Exchange != nil {
		mr.Exchange()
	}
	for {
		start := mr.nextAt()
		if start > deadline {
			break
		}
		limit := start + mr.Lookahead
		// The +1 makes the exclusive window bound inclusive of events at
		// exactly the deadline, still within the conservative limit.
		if d := deadline + 1; d < limit {
			limit = d
		}
		mr.runWindow(limit)
		if mr.Exchange != nil {
			mr.Exchange()
		}
	}
	for _, el := range mr.Lists {
		el.AdvanceTo(deadline)
	}
}

// runWindow executes one window on every shard with pending work.
func (mr *MultiRunner) runWindow(limit Time) {
	// Run single-shard windows inline: goroutine handoff costs more than
	// it buys when only one shard is busy.
	nBusy := 0
	for _, el := range mr.Lists {
		if el.NextAt() < limit {
			nBusy++
		}
	}
	if nBusy == 0 {
		return
	}
	if nBusy == 1 || !mr.Parallel {
		for _, el := range mr.Lists {
			el.RunBefore(limit)
		}
		return
	}
	var wg sync.WaitGroup
	for _, el := range mr.Lists {
		if el.NextAt() >= limit {
			continue
		}
		wg.Add(1)
		go func(el *EventList) {
			defer wg.Done()
			el.RunBefore(limit)
		}(el)
	}
	wg.Wait()
}
