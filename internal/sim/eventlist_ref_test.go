package sim

import (
	"testing"
)

// This file checks the indexed-heap scheduler against a naive reference
// model: a flat slice popped by linear minimum scan over (time, seq). The
// model is obviously correct — the heap must match it operation for
// operation, including equal-timestamp FIFO ties, interleaved cancels and
// in-place reschedules.

type refEvent struct {
	at  Time
	seq uint64
	tag uint64
}

type refModel struct {
	now    Time
	seq    uint64
	events []refEvent
}

func (m *refModel) schedule(t Time, tag uint64) {
	if t < m.now {
		t = m.now
	}
	m.seq++
	m.events = append(m.events, refEvent{at: t, seq: m.seq, tag: tag})
}

func (m *refModel) minIndex() int {
	best := -1
	for i, e := range m.events {
		if best < 0 || e.at < m.events[best].at ||
			(e.at == m.events[best].at && e.seq < m.events[best].seq) {
			best = i
		}
	}
	return best
}

// pop fires the earliest event, returning its tag, or false when empty.
func (m *refModel) pop() (uint64, bool) {
	i := m.minIndex()
	if i < 0 {
		return 0, false
	}
	e := m.events[i]
	m.events = append(m.events[:i], m.events[i+1:]...)
	m.now = e.at
	return e.tag, true
}

func (m *refModel) cancel(tag uint64) bool {
	for i, e := range m.events {
		if e.tag == tag {
			m.events = append(m.events[:i], m.events[i+1:]...)
			return true
		}
	}
	return false
}

func (m *refModel) reschedule(tag uint64, t Time) bool {
	for i := range m.events {
		if m.events[i].tag == tag {
			if t < m.now {
				t = m.now
			}
			m.seq++
			m.events[i].at = t
			m.events[i].seq = m.seq
			return true
		}
	}
	return false
}

// tagRecorder logs fired tags from the EventList side.
type tagRecorder struct{ log []uint64 }

func (r *tagRecorder) OnEvent(arg uint64) { r.log = append(r.log, arg) }

// runSchedulerOps drives an EventList and the reference model through the
// same operation stream and fails the test on any divergence. Each byte
// pair of ops selects an operation and a time offset, so the corpus is
// trivially minimizable by the fuzzer.
func runSchedulerOps(t *testing.T, ops []byte) {
	t.Helper()
	el := NewEventList()
	model := &refModel{}
	rec := &tagRecorder{}
	var modelLog []uint64
	var nextTag uint64

	// Live cancellable events, in creation order so picks are deterministic.
	// EventIDs recycle once an event fires or is cancelled, so entries must
	// be pruned (fired) or removed (cancelled) before the id can be reused —
	// otherwise a stale entry would alias a newer event's id.
	type liveEv struct {
		tag uint64
		id  EventID
	}
	var live []liveEv
	fired := make(map[uint64]bool)
	pruneLive := func() {
		kept := live[:0]
		for _, le := range live {
			if !fired[le.tag] {
				kept = append(kept, le)
			}
		}
		live = kept
	}

	step := func() {
		stepped := el.Step()
		tag, ok := model.pop()
		if stepped != ok {
			t.Fatalf("step mismatch: heap stepped=%v, model had event=%v", stepped, ok)
		}
		if !ok {
			return
		}
		modelLog = append(modelLog, tag)
		fired[tag] = true
		if el.Now() != model.now {
			t.Fatalf("clock mismatch after firing tag %d: heap %v, model %v", tag, el.Now(), model.now)
		}
	}

	for i := 0; i+1 < len(ops); i += 2 {
		op, off := ops[i], Time(ops[i+1])
		at := el.Now() + (off-16)*Nanosecond // occasionally in the past: clamp path
		switch op % 8 {
		case 0, 1: // typed handler event
			nextTag++
			el.Schedule(at, rec, nextTag)
			model.schedule(at, nextTag)
		case 2: // closure fallback event
			nextTag++
			tag := nextTag
			el.At(at, func() { rec.log = append(rec.log, tag) })
			model.schedule(at, tag)
		case 3, 4: // cancellable event
			pruneLive()
			nextTag++
			id := el.ScheduleCancelable(at, rec, nextTag)
			model.schedule(at, nextTag)
			live = append(live, liveEv{tag: nextTag, id: id})
		case 5: // cancel a live event
			pruneLive()
			if len(live) > 0 {
				pick := int(off) % len(live)
				le := live[pick]
				got := el.Cancel(le.id)
				want := model.cancel(le.tag)
				if got != want {
					t.Fatalf("cancel(tag %d) mismatch: heap %v, model %v", le.tag, got, want)
				}
				live = append(live[:pick], live[pick+1:]...)
			}
		case 6: // reschedule a live event
			pruneLive()
			if len(live) > 0 {
				le := live[int(off/2)%len(live)]
				got := el.Reschedule(le.id, at)
				want := model.reschedule(le.tag, at)
				if got != want {
					t.Fatalf("reschedule(tag %d) mismatch: heap %v, model %v", le.tag, got, want)
				}
			}
		case 7: // pop
			step()
		}
		if el.Len() != len(model.events) {
			t.Fatalf("pending count mismatch after op %d: heap %d, model %d", i, el.Len(), len(model.events))
		}
	}
	// Drain both completely; the full pop order must match.
	for el.Len() > 0 || len(model.events) > 0 {
		step()
	}
	if len(rec.log) != len(modelLog) {
		t.Fatalf("fired %d events, model fired %d", len(rec.log), len(modelLog))
	}
	for i := range rec.log {
		if rec.log[i] != modelLog[i] {
			t.Fatalf("pop order diverged at %d: heap fired tag %d, model tag %d\nheap  %v\nmodel %v",
				i, rec.log[i], modelLog[i], rec.log, modelLog)
		}
	}
}

// TestSchedulerVsReference drives long random op streams from fixed seeds —
// the always-on property test behind FuzzEventList.
func TestSchedulerVsReference(t *testing.T) {
	for seed := uint64(1); seed <= 50; seed++ {
		r := NewRand(seed)
		ops := make([]byte, 2000)
		for i := range ops {
			ops[i] = byte(r.Intn(256))
		}
		runSchedulerOps(t, ops)
	}
}

// FuzzEventList lets the fuzzer hunt for op interleavings the random
// streams miss: go test -fuzz=FuzzEventList ./internal/sim
func FuzzEventList(f *testing.F) {
	f.Add([]byte{0, 20, 3, 10, 7, 0, 5, 0, 7, 0})
	f.Add([]byte{3, 5, 3, 5, 6, 1, 6, 200, 7, 0, 7, 0})
	f.Add([]byte{2, 30, 0, 30, 3, 30, 5, 1, 7, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 4096 {
			ops = ops[:4096]
		}
		runSchedulerOps(t, ops)
	})
}

// TestTimerResetBoundedHeap is the regression test for the ghost-entry leak:
// Reset/Stop used to abandon a dead closure in the heap until its old expiry
// time, so an RTO-heavy sender grew the heap by one entry per reset. A timer
// must contribute at most one pending event no matter how often it is
// re-armed.
func TestTimerResetBoundedHeap(t *testing.T) {
	el := NewEventList()
	fired := 0
	tm := NewTimer(el, func() { fired++ })
	const resets = 10_000
	for i := 0; i < resets; i++ {
		tm.Reset(Millisecond)
		if i%64 == 0 {
			el.RunUntil(el.Now() + Microsecond)
		}
		if n := el.Len(); n > 1 {
			t.Fatalf("heap holds %d events after %d resets, want <= 1 (ghost-entry leak)", n, i+1)
		}
	}
	// Stop must remove the in-heap entry entirely, not leave a tombstone.
	tm.Stop()
	if n := el.Len(); n != 0 {
		t.Fatalf("heap holds %d events after Stop, want 0", n)
	}
	if fired != 0 {
		t.Fatalf("timer fired %d times while being continually reset", fired)
	}
	// And a final arm still works.
	tm.Reset(Microsecond)
	el.Run()
	if fired != 1 {
		t.Fatalf("timer fired %d times after final arm, want 1", fired)
	}
}

// TestCancelReschedulePublicAPI covers the id lifecycle edges: double
// cancel, cancel after fire, EventTime/Pending on dead ids, and id reuse.
func TestCancelReschedulePublicAPI(t *testing.T) {
	el := NewEventList()
	rec := &tagRecorder{}
	id := el.ScheduleCancelable(5*Microsecond, rec, 1)
	if !el.Pending(id) || el.EventTime(id) != 5*Microsecond {
		t.Fatalf("live event not visible: pending=%v at=%v", el.Pending(id), el.EventTime(id))
	}
	if !el.Reschedule(id, 2*Microsecond) {
		t.Fatal("reschedule of live event failed")
	}
	if el.EventTime(id) != 2*Microsecond {
		t.Fatalf("EventTime after reschedule = %v, want 2us", el.EventTime(id))
	}
	if !el.Cancel(id) {
		t.Fatal("cancel of live event failed")
	}
	if el.Cancel(id) {
		t.Fatal("double cancel succeeded")
	}
	if el.Reschedule(id, Microsecond) {
		t.Fatal("reschedule of cancelled event succeeded")
	}
	if el.Pending(id) || el.EventTime(id) != Infinity {
		t.Fatal("cancelled event still visible")
	}
	if el.Pending(NoEvent) || el.Cancel(NoEvent) {
		t.Fatal("NoEvent behaved like a live id")
	}

	id2 := el.ScheduleCancelable(Microsecond, rec, 2)
	el.Run()
	if len(rec.log) != 1 || rec.log[0] != 2 {
		t.Fatalf("fired %v, want [2] (cancelled event must not fire)", rec.log)
	}
	if el.Cancel(id2) {
		t.Fatal("cancel after fire succeeded")
	}
}
