package sim

import (
	"testing"
	"testing/quick"
)

func TestRandDeterministic(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 1 {
		t.Errorf("different seeds produced %d identical draws out of 1000", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRand(7)
	seen := make(map[int]bool)
	for i := 0; i < 10000; i++ {
		v := r.Intn(8)
		if v < 0 || v >= 8 {
			t.Fatalf("Intn(8) = %d out of range", v)
		}
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Errorf("Intn(8) only produced %d distinct values in 10k draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

// Property: Perm always returns a permutation of [0, n).
func TestPermIsPermutation(t *testing.T) {
	prop := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := NewRand(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRand(99)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 0.49 || mean > 0.51 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRand(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if mean < 0.98 || mean > 1.02 {
		t.Errorf("ExpFloat64 mean = %v, want ~1.0", mean)
	}
}

func TestDuration(t *testing.T) {
	r := NewRand(3)
	for i := 0; i < 1000; i++ {
		d := r.Duration(Millisecond)
		if d < 0 || d >= Millisecond {
			t.Fatalf("Duration out of range: %v", d)
		}
	}
	if r.Duration(0) != 0 {
		t.Error("Duration(0) should be 0")
	}
}

func TestShuffleCoverage(t *testing.T) {
	// A shuffle of [0,1,2] should reach all 6 permutations over many trials.
	r := NewRand(11)
	perms := make(map[[3]int]int)
	for i := 0; i < 6000; i++ {
		p := [3]int{0, 1, 2}
		r.Shuffle(3, func(i, j int) { p[i], p[j] = p[j], p[i] })
		perms[p]++
	}
	if len(perms) != 6 {
		t.Fatalf("shuffle reached %d/6 permutations", len(perms))
	}
	for p, c := range perms {
		if c < 700 {
			t.Errorf("permutation %v seen only %d/6000 times", p, c)
		}
	}
}
