// Package sim provides the discrete-event simulation engine that underpins
// the NDP reproduction: a picosecond-resolution virtual clock, an indexed
// 4-ary-heap event list with allocation-free typed events, a deterministic
// pseudo-random number generator, and a conservative parallel runner.
//
// Each event list is strictly single-threaded: datacenter packet
// simulations are dominated by tiny events (a packet finishing
// serialization, a timer firing) whose ordering must be exactly
// reproducible for experiments to be comparable. A simulation either
// shares one EventList on one goroutine, or is partitioned into shards —
// one list and one goroutine each — advanced in lockstep lookahead
// windows by MultiRunner; canonical equal-timestamp event keys make the
// two modes bit-identical.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in simulated time, measured in integer picoseconds from
// the start of the simulation. Integer picoseconds are exact for every
// quantity this simulator cares about (a 64-byte frame at 400Gb/s is 1280ps)
// while still spanning over 100 simulated days in an int64.
type Time int64

// Duration constants expressed in simulated picoseconds.
const (
	Picosecond  Time = 1
	Nanosecond       = 1000 * Picosecond
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// Infinity is a time later than any event a simulation will schedule.
const Infinity = Time(1<<63 - 1)

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns t as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns t as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Std converts t to a time.Duration (nanosecond resolution, rounding down).
func (t Time) Std() time.Duration { return time.Duration(t / Nanosecond) }

// String formats t with an adaptive unit, e.g. "12.3us" or "4.56ms".
func (t Time) String() string {
	switch {
	case t == Infinity:
		return "inf"
	case t < 0:
		return "-" + (-t).String()
	case t < Nanosecond:
		return fmt.Sprintf("%dps", int64(t))
	case t < Microsecond:
		return fmt.Sprintf("%.3gns", float64(t)/float64(Nanosecond))
	case t < Millisecond:
		return fmt.Sprintf("%.4gus", t.Micros())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Millis())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}

// FromSeconds converts a floating-point number of seconds to a Time.
func FromSeconds(s float64) Time { return Time(s * float64(Second)) }

// TransmissionTime returns how long size bytes take to serialize onto a link
// of the given rate in bits per second. It rounds up so that back-to-back
// packets never overlap.
func TransmissionTime(sizeBytes int, rateBps int64) Time {
	if rateBps <= 0 {
		return 0
	}
	bits := int64(sizeBytes) * 8
	// bits * Second may overflow only for absurd sizes (>10^6 TB); the
	// workloads here top out at jumbograms.
	return Time((bits*int64(Second) + rateBps - 1) / rateBps)
}
