package dcqcn

import (
	"testing"

	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/topo"
)

// dcqcnNet builds a lossless FatTree with ECN queues and a demux per host.
func dcqcnNet(k int) (*topo.FatTree, []*fabric.Demux) {
	cfg := topo.Config{
		Seed:          3,
		Lossless:      true,
		LosslessLimit: 200 * 9000,
		PFCXoff:       2 * 9000,
		PFCXon:        9000,
		SwitchQueue:   QueueFactory(9000),
	}
	net := topo.NewFatTree(k, cfg)
	dm := make([]*fabric.Demux, net.NumHosts())
	for i, h := range net.Hosts {
		dm[i] = fabric.NewDemux()
		h.Stack = dm[i]
	}
	return net, dm
}

func start(net *topo.FatTree, dm []*fabric.Demux, src, dst int32, flow uint64, size int64) (*Sender, *Receiver) {
	cfg := DefaultConfig()
	fwd := net.Paths(src, dst)[0]
	rev := net.Paths(dst, src)[0]
	s := NewSender(net.Hosts[src], dst, flow, fwd, size, cfg)
	r := NewReceiver(net.Hosts[dst], src, flow, rev, cfg)
	dm[src].Register(flow, s)
	dm[dst].Register(flow, r)
	s.Start()
	return s, r
}

func TestDCQCNSingleTransferLineRate(t *testing.T) {
	net, dm := dcqcnNet(4)
	s, r := start(net, dm, 0, 15, 1, 9_000_000)
	net.EL.RunUntil(20 * sim.Millisecond)
	s.Stop()
	if !r.Complete() {
		t.Fatal("transfer incomplete")
	}
	if r.Bytes != 9_000_000 {
		t.Errorf("bytes = %d, want 9000000", r.Bytes)
	}
	// Uncontended: ~7.25ms at line rate; allow small startup slack.
	if r.CompletedAt > 9*sim.Millisecond {
		t.Errorf("completion %v; should be near line rate (7.25ms)", r.CompletedAt)
	}
	if s.CNPs != 0 {
		t.Errorf("uncontended flow saw %d CNPs", s.CNPs)
	}
}

func TestDCQCNConvergesUnderContention(t *testing.T) {
	net, dm := dcqcnNet(4)
	s1, r1 := start(net, dm, 1, 0, 1, -1)
	s2, r2 := start(net, dm, 2, 0, 2, -1)
	net.EL.RunUntil(30 * sim.Millisecond)
	s1.Stop()
	s2.Stop()
	if s1.CNPs == 0 && s2.CNPs == 0 {
		t.Fatal("no CNPs under 2:1 contention; marking/feedback broken")
	}
	// Rates should have backed off from line rate toward a fair share.
	if s1.Rate() > 9e9 && s2.Rate() > 9e9 {
		t.Errorf("rates did not decrease: %.2g / %.2g", s1.Rate(), s2.Rate())
	}
	// Both make progress; rough fairness (within 3x).
	b1, b2 := r1.Bytes, r2.Bytes
	if b1 == 0 || b2 == 0 {
		t.Fatalf("throughput: %d / %d", b1, b2)
	}
	ratio := float64(b1) / float64(b2)
	if ratio < 1.0/3 || ratio > 3 {
		t.Errorf("unfair DCQCN split: %d vs %d", b1, b2)
	}
	// Lossless: nothing dropped anywhere.
	if d := net.CollectStats().Drops; d != 0 {
		t.Errorf("drops = %d on a lossless fabric", d)
	}
}

func TestDCQCNIncastNoLoss(t *testing.T) {
	net, dm := dcqcnNet(4)
	done := 0
	var rs []*Receiver
	var ss []*Sender
	for i := int32(1); i < 16; i++ {
		s, r := start(net, dm, i, 0, uint64(i), 450_000)
		r.OnComplete = func(*Receiver) { done++ }
		rs = append(rs, r)
		ss = append(ss, s)
	}
	// DCQCN converges rate-based (40Mb/s additive steps), so a 15:1 incast
	// takes tens of ms to rebuild fair-share rates after the initial cuts.
	net.EL.RunUntil(500 * sim.Millisecond)
	for _, s := range ss {
		s.Stop()
	}
	if done != 15 {
		t.Fatalf("%d/15 incast flows completed", done)
	}
	if d := net.CollectStats().Drops; d != 0 {
		t.Errorf("drops = %d, want 0 (PFC must prevent loss)", d)
	}
	// Incast through PFC must have generated pauses somewhere (typically
	// the agg->ToR downlinks feeding the receiver's ToR, and cascading).
	var pauses int64
	for _, p := range net.HostNIC {
		pauses += p.PauseCount
	}
	for _, sw := range net.Switches {
		for _, p := range sw.Ports {
			pauses += p.PauseCount
		}
	}
	if pauses == 0 {
		t.Error("15:1 incast on PFC fabric generated no pause events")
	}
}

func TestRateMachineDecreaseAndRecovery(t *testing.T) {
	el := sim.NewEventList()
	h := fabric.NewHost(el, 0, "h")
	h.NIC = fabric.NewPort(el, "nic", fabric.NewFIFOQueue(0), 10e9, 0)
	h.NIC.Connect(fabric.SinkFunc(func(p *fabric.Packet) { fabric.Free(p) }))
	cfg := DefaultConfig()
	s := NewSender(h, 1, 1, nil, -1, cfg)
	s.Start()
	el.RunUntil(sim.Microsecond)
	if s.Rate() != 10e9 {
		t.Fatalf("initial rate %v, want line rate", s.Rate())
	}
	s.onCNP()
	afterCut := s.Rate()
	if afterCut >= 10e9*0.6 {
		t.Errorf("rate after first CNP (alpha=1) = %.3g, want ~half line rate", afterCut)
	}
	// Fast recovery: within F timer periods the rate approaches the target
	// (the pre-cut rate) again.
	el.RunUntil(el.Now() + 6*cfg.IncTimer)
	if s.Rate() < 0.9*10e9 {
		t.Errorf("fast recovery did not approach target: %.3g", s.Rate())
	}
	s.Stop()
	el.Run()
}
