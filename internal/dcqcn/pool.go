package dcqcn

import (
	"ndp/internal/fabric"
)

// Pool recycles completed DCQCN flow state. Lossless fabrics shard like
// any other (PFC pause crosses the cut as a keyed mailbox entry), so the
// network layer keeps one pool per scheduling domain and each shard only
// touches its own. Retirement is explicit: the fabric is lossless and paths are
// fixed, so once a receiver sees the FIN nothing more can arrive for the
// flow and the network layer retires both endpoints — after stopping the
// sender's rate-machine timers, which otherwise tick forever.
type Pool struct {
	senders   []*Sender
	receivers []*Receiver
}

// NewPool returns an empty pool.
func NewPool() *Pool { return &Pool{} }

// NewSender builds or recycles a sender; call Start to begin transmitting.
func (pl *Pool) NewSender(host *fabric.Host, dst int32, flow uint64, path []int16, size int64, cfg Config) *Sender {
	if s := pl.takeSender(host); s != nil {
		s.recycle(host, dst, flow, path, size, cfg)
		return s
	}
	return NewSender(host, dst, flow, path, size, cfg)
}

// takeSender pops the oldest retired sender once it is fully quiescent:
// rate timers stopped and no pacing event outstanding (sending is true
// exactly while one is scheduled; after Stop the event fires once more as a
// no-op and clears it).
func (pl *Pool) takeSender(host *fabric.Host) *Sender {
	if len(pl.senders) == 0 {
		return nil
	}
	s := pl.senders[0]
	if s.el != host.EventList() || s.sending ||
		s.alphaTimer.Pending() || s.incTimer.Pending() {
		return nil
	}
	pl.senders = pl.senders[1:]
	return s
}

// RetireSender hands a stopped sender back to the pool. The caller must
// have called Stop and unregistered the flow from its demux.
func (pl *Pool) RetireSender(s *Sender) { pl.senders = append(pl.senders, s) } //simlint:allow hotalloc — free-list append: capacity bounded by peak concurrent flows and kept across reuse

// NewReceiver builds or recycles a receiver.
func (pl *Pool) NewReceiver(host *fabric.Host, peer int32, flow uint64, revPath []int16, cfg Config) *Receiver {
	if len(pl.receivers) > 0 {
		r := pl.receivers[0]
		if r.host.EventList() == host.EventList() {
			pl.receivers = pl.receivers[1:]
			arena := r.arena
			*r = Receiver{
				Flow: flow, host: host, peer: peer, path: revPath, cfg: cfg,
				arena: arena,
			}
			return r
		}
	}
	return NewReceiver(host, peer, flow, revPath, cfg)
}

// RetireReceiver hands a completed receiver back to the pool. The caller
// must have unregistered the flow from its demux; on a lossless fixed path
// nothing arrives after the FIN, so the state is immediately reusable.
func (pl *Pool) RetireReceiver(r *Receiver) { pl.receivers = append(pl.receivers, r) } //simlint:allow hotalloc — free-list append: capacity bounded by peak concurrent flows and kept across reuse
