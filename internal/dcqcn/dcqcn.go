// Package dcqcn implements the DCQCN baseline (Zhu et al., SIGCOMM 2015):
// rate-based congestion control for RoCEv2 over lossless (PFC) Ethernet.
// Switches run ECN marking on top of PFC ingress gating (fabric's lossless
// mode); receivers return CNPs for marked traffic at most once per interval;
// senders apply multiplicative decrease on CNP and recover through the
// fast-recovery / additive-increase stages of the DCQCN rate machine.
//
// Because PFC makes the fabric lossless, there are no retransmissions: a
// transfer completes when all bytes arrive. What DCQCN pays instead is
// pause-frame collateral damage, which Figure 19 measures.
package dcqcn

import (
	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// Config carries the DCQCN rate-machine parameters (defaults follow the
// DCQCN paper's recommended values).
type Config struct {
	MTU      int
	LineRate int64 // bps; also the starting rate
	MinRate  int64 // floor for the sending rate (default 10Mb/s)

	Rai         int64    // additive increase step (default 40Mb/s)
	G           float64  // alpha gain (default 1/256)
	AlphaTimer  sim.Time // alpha decay interval without CNPs (55us)
	IncTimer    sim.Time // rate-increase timer period (55us)
	IncBytes    int64    // rate-increase byte counter period (10MB)
	F           int      // fast-recovery stages before additive increase (5)
	CNPInterval sim.Time // min gap between CNPs per flow (50us)
}

// DefaultConfig returns the paper-recommended parameters for a 10Gb/s
// fabric.
func DefaultConfig() Config {
	return Config{
		MTU:         9000,
		LineRate:    10e9,
		MinRate:     10e6,
		Rai:         40e6,
		G:           1.0 / 256,
		AlphaTimer:  55 * sim.Microsecond,
		IncTimer:    55 * sim.Microsecond,
		IncBytes:    10 << 20,
		F:           5,
		CNPInterval: 50 * sim.Microsecond,
	}
}

// MarkThresholdPackets is the ECN threshold the paper recommends for DCQCN.
const MarkThresholdPackets = 20

// QueueFactory returns the DCQCN switch egress queue: ECN marking with no
// drop bound (PFC ingress gating prevents overflow).
func QueueFactory(mtu int) func(name string) fabric.Queue {
	return func(string) fabric.Queue {
		return fabric.NewECNQueue(0 /* lossless: never drop */, MarkThresholdPackets*mtu)
	}
}

// Sender transmits a stream at a paced rate governed by the DCQCN rate
// machine over a fixed path.
type Sender struct {
	Flow uint64

	cfg   Config
	el    *sim.EventList
	host  *fabric.Host
	arena *fabric.Arena
	dst   int32
	path  []int16

	size int64 // bytes; <0 unbounded
	sent int64 // bytes handed to the NIC
	seq  int64

	rc, rt    float64 // current / target rate (bps)
	alpha     float64
	timerSt   int // rate-increase stages since last CNP
	byteSt    int
	bytesCntr int64

	sending    bool
	stopped    bool
	alphaTimer *sim.Timer
	incTimer   *sim.Timer

	// Telemetry.
	CNPs        int64
	PacketsSent int64
}

// NewSender builds a DCQCN sender; call Start to begin transmitting.
//
//simlint:allow hotalloc — pool-miss constructor: runs once per pooled sender (recycle reuses the state and its bound timers), bounded by peak concurrent flows
func NewSender(host *fabric.Host, dst int32, flow uint64, path []int16, size int64, cfg Config) *Sender {
	s := &Sender{
		Flow: flow, cfg: cfg, el: host.EventList(), host: host, dst: dst,
		arena: fabric.AttachArena(host.EventList()),
		path:  path, size: size,
		rc: float64(cfg.LineRate), rt: float64(cfg.LineRate), alpha: 1,
	}
	s.alphaTimer = sim.NewTimer(s.el, s.onAlphaTimer)
	s.incTimer = sim.NewTimer(s.el, s.onIncTimer)
	return s
}

// recycle resets a retired sender for a new transfer, keeping the event
// list, the two rate-machine timers (their closures point at this object)
// and the arena.
func (s *Sender) recycle(host *fabric.Host, dst int32, flow uint64, path []int16, size int64, cfg Config) {
	el, arena, at, it := s.el, s.arena, s.alphaTimer, s.incTimer
	*s = Sender{
		Flow: flow, cfg: cfg, el: el, host: host, dst: dst, arena: arena,
		path: path, size: size,
		rc: float64(cfg.LineRate), rt: float64(cfg.LineRate), alpha: 1,
		alphaTimer: at, incTimer: it,
	}
}

// Start begins paced transmission at line rate (RoCE does not probe).
func (s *Sender) Start() {
	s.alphaTimer.Reset(s.cfg.AlphaTimer)
	s.incTimer.Reset(s.cfg.IncTimer)
	s.sendLoop()
}

func (s *Sender) sendLoop() {
	if s.sending || s.stopped {
		return
	}
	if s.size >= 0 && s.sent >= s.size {
		return
	}
	s.sending = true
	n := int64(s.cfg.MTU)
	if s.size >= 0 && s.size-s.sent < n {
		n = s.size - s.sent
	}
	p := s.arena.NewData(s.Flow, s.host.ID, s.dst, s.seq, int32(n))
	p.Path = s.path
	p.Sent = s.el.Now()
	s.seq++
	s.sent += n
	if s.size >= 0 && s.sent >= s.size {
		p.Flags |= fabric.FlagFIN
	}
	s.PacketsSent++
	s.bytesCntr += n
	s.host.Send(p)

	rate := s.rc
	if rate < float64(s.cfg.MinRate) {
		rate = float64(s.cfg.MinRate)
	}
	gap := sim.TransmissionTime(int(n), int64(rate))
	s.el.ScheduleAfter(gap, s, 0)
}

// OnEvent is the inter-packet pacing gap elapsing (sim.Handler): scheduled
// once per transmitted packet, so the typed path keeps DCQCN's rate pacing
// allocation-free.
func (s *Sender) OnEvent(uint64) {
	s.sending = false
	if s.bytesCntr >= s.cfg.IncBytes {
		s.bytesCntr = 0
		s.byteSt++
		s.raiseRate()
	}
	s.sendLoop()
}

// Receive handles CNPs from the receiver.
func (s *Sender) Receive(p *fabric.Packet) {
	if p.Type == fabric.CNP {
		s.onCNP()
	}
	fabric.Free(p)
}

// onCNP applies DCQCN's multiplicative decrease and resets the recovery
// stages.
func (s *Sender) onCNP() {
	s.CNPs++
	s.rt = s.rc
	s.rc = s.rc * (1 - s.alpha/2)
	if s.rc < float64(s.cfg.MinRate) {
		s.rc = float64(s.cfg.MinRate)
	}
	s.alpha = (1-s.cfg.G)*s.alpha + s.cfg.G
	s.timerSt, s.byteSt = 0, 0
	s.bytesCntr = 0
	s.alphaTimer.Reset(s.cfg.AlphaTimer)
	s.incTimer.Reset(s.cfg.IncTimer)
}

func (s *Sender) onAlphaTimer() {
	s.alpha = (1 - s.cfg.G) * s.alpha
	s.alphaTimer.Reset(s.cfg.AlphaTimer)
}

func (s *Sender) onIncTimer() {
	s.timerSt++
	s.raiseRate()
	s.incTimer.Reset(s.cfg.IncTimer)
}

// raiseRate runs one step of the DCQCN increase machine: fast recovery
// halves the gap to the target rate; past F stages, additive increase also
// raises the target.
func (s *Sender) raiseRate() {
	st := s.timerSt
	if s.byteSt > st {
		st = s.byteSt
	}
	if st > s.cfg.F {
		s.rt += float64(s.cfg.Rai)
		if s.rt > float64(s.cfg.LineRate) {
			s.rt = float64(s.cfg.LineRate)
		}
	}
	s.rc = (s.rt + s.rc) / 2
	if s.rc > float64(s.cfg.LineRate) {
		s.rc = float64(s.cfg.LineRate)
	}
}

// Rate returns the current sending rate in bits per second.
func (s *Sender) Rate() float64 { return s.rc }

// SentBytes returns bytes handed to the NIC so far.
func (s *Sender) SentBytes() int64 { return s.sent }

// Done reports whether the whole stream has been transmitted (the fabric is
// lossless, so transmitted means delivered).
func (s *Sender) Done() bool { return s.size >= 0 && s.sent >= s.size }

// Stop halts transmission and the rate-machine timers (end-of-simulation
// cleanup for unbounded flows, which otherwise schedule events forever).
func (s *Sender) Stop() {
	s.stopped = true
	s.alphaTimer.Stop()
	s.incTimer.Stop()
}

// Receiver counts arriving bytes and returns CNPs for ECN-marked packets,
// rate-limited to one per CNPInterval.
type Receiver struct {
	Flow uint64

	host  *fabric.Host
	arena *fabric.Arena
	peer  int32
	path  []int16
	cfg   Config

	lastCNP  sim.Time
	everCNP  bool
	Bytes    int64
	complete bool

	CompletedAt  sim.Time
	FirstArrival sim.Time
	seen         bool
	OnComplete   func(r *Receiver)

	// Goodput sampling for time-series plots.
	OnData func(bytes int64)
}

// NewReceiver builds the receiving side; path carries CNPs back.
//
//simlint:allow hotalloc — pool-miss constructor: runs once per pooled receiver (recycle reuses the state), bounded by peak concurrent flows
func NewReceiver(host *fabric.Host, peer int32, flow uint64, revPath []int16, cfg Config) *Receiver {
	return &Receiver{
		Flow: flow, host: host, peer: peer, path: revPath, cfg: cfg,
		arena: fabric.AttachArena(host.EventList()),
	}
}

// Receive handles data packets.
func (r *Receiver) Receive(p *fabric.Packet) {
	if p.Type != fabric.Data {
		fabric.Free(p)
		return
	}
	if !r.seen {
		r.seen = true
		r.FirstArrival = r.host.EventList().Now()
	}
	r.Bytes += int64(p.DataSize)
	if r.OnData != nil {
		r.OnData(int64(p.DataSize))
	}
	if p.Flags&fabric.FlagCE != 0 {
		now := r.host.EventList().Now()
		if !r.everCNP || now-r.lastCNP >= r.cfg.CNPInterval {
			r.everCNP = true
			r.lastCNP = now
			c := r.arena.NewControl(fabric.CNP, r.Flow, r.host.ID, r.peer)
			c.Path = r.path
			r.host.Send(c)
		}
	}
	if p.Flags&fabric.FlagFIN != 0 && !r.complete {
		r.complete = true
		r.CompletedAt = r.host.EventList().Now()
		if r.OnComplete != nil {
			r.OnComplete(r)
		}
	}
	fabric.Free(p)
}

// Complete reports whether the FIN has arrived (lossless fabric: FIN
// arrival implies everything before it arrived too, on the fixed path).
func (r *Receiver) Complete() bool { return r.complete }
