package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"ndp/internal/sim"
)

func TestDistQuantiles(t *testing.T) {
	var d Dist
	for i := 1; i <= 100; i++ {
		d.Add(float64(i))
	}
	if got := d.Median(); got != 50 {
		t.Errorf("median = %v, want 50", got)
	}
	if got := d.Quantile(0.9); got != 90 {
		t.Errorf("p90 = %v, want 90", got)
	}
	if got := d.Quantile(0.99); got != 99 {
		t.Errorf("p99 = %v, want 99", got)
	}
	if got := d.Min(); got != 1 {
		t.Errorf("min = %v, want 1", got)
	}
	if got := d.Max(); got != 100 {
		t.Errorf("max = %v, want 100", got)
	}
	if got := d.Mean(); got != 50.5 {
		t.Errorf("mean = %v, want 50.5", got)
	}
}

func TestDistEmpty(t *testing.T) {
	var d Dist
	if d.Median() != 0 || d.Mean() != 0 || d.Min() != 0 || d.Max() != 0 {
		t.Error("empty dist should return zeros")
	}
	if d.CDF(10) != nil {
		t.Error("empty CDF should be nil")
	}
}

func TestMeanOfBottom(t *testing.T) {
	var d Dist
	for _, v := range []float64{10, 1, 9, 2, 8, 3, 7, 4, 6, 5} {
		d.Add(v)
	}
	if got := d.MeanOfBottom(0.1); got != 1 {
		t.Errorf("bottom 10%% mean = %v, want 1", got)
	}
	if got := d.MeanOfBottom(0.2); got != 1.5 {
		t.Errorf("bottom 20%% mean = %v, want 1.5", got)
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var d Dist
		for _, v := range raw {
			d.Add(float64(v))
		}
		prev := math.Inf(-1)
		for _, q := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			v := d.Quantile(q)
			if v < prev || v < d.Min() || v > d.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCDFShape(t *testing.T) {
	var d Dist
	for i := 1; i <= 1000; i++ {
		d.Add(float64(i))
	}
	rows := d.CDF(10)
	if len(rows) != 10 {
		t.Fatalf("CDF rows = %d", len(rows))
	}
	if rows[4].Frac != 0.5 || rows[4].Value != 500 {
		t.Errorf("CDF midpoint = %+v, want {500 0.5}", rows[4])
	}
	if rows[9].Frac != 1 || rows[9].Value != 1000 {
		t.Errorf("CDF endpoint = %+v", rows[9])
	}
}

func TestTimeSeries(t *testing.T) {
	ts := NewTimeSeries(sim.Millisecond)
	ts.Record(100*sim.Microsecond, 1_250_000) // bin 0: 10Gb/s
	ts.Record(500*sim.Microsecond, 0)
	ts.Record(2500*sim.Microsecond, 625_000) // bin 2: 5Gb/s
	rates := ts.RateGbps()
	if len(rates) != 3 {
		t.Fatalf("bins = %d, want 3", len(rates))
	}
	if math.Abs(rates[0]-10) > 1e-9 || rates[1] != 0 || math.Abs(rates[2]-5) > 1e-9 {
		t.Errorf("rates = %v, want [10 0 5]", rates)
	}
}

func TestJainIndex(t *testing.T) {
	if got := JainIndex([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Errorf("equal shares: %v, want 1", got)
	}
	got := JainIndex([]float64{10, 0, 0, 0})
	if math.Abs(got-0.25) > 1e-12 {
		t.Errorf("one hog of four: %v, want 0.25", got)
	}
	if JainIndex(nil) != 0 {
		t.Error("empty index should be 0")
	}
}

func TestGbps(t *testing.T) {
	if got := Gbps(1_250_000_000, sim.Second); got != 10 {
		t.Errorf("Gbps = %v, want 10", got)
	}
	if Gbps(100, 0) != 0 {
		t.Error("zero interval should yield 0")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"flows", "mean", "worst10"}}
	tb.AddFloats("8", 99.5, 97.25)
	tb.AddRow("128", "88.1", "61")
	out := tb.String()
	if !strings.Contains(out, "flows") || !strings.Contains(out, "99.5") {
		t.Errorf("table missing content:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Errorf("table has %d lines, want 4:\n%s", len(lines), out)
	}
}

func TestDistSummary(t *testing.T) {
	var d Dist
	d.AddTime(100 * sim.Microsecond)
	d.AddTime(200 * sim.Microsecond)
	s := d.Summary("us")
	if !strings.Contains(s, "n=2") || !strings.Contains(s, "us") {
		t.Errorf("summary = %q", s)
	}
}

// TestTableJSONRoundTrip checks tables survive marshal/unmarshal intact —
// the machine-readable contract of ndpsim -json.
func TestTableJSONRoundTrip(t *testing.T) {
	tb := &Table{Header: []string{"flows", "util%"}}
	tb.AddFloats("64", 99.5)
	tb.AddRow("128", "88.1")
	blob, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*tb, back) {
		t.Errorf("table changed over JSON round-trip:\nbefore %+v\nafter  %+v", *tb, back)
	}
	if back.String() != tb.String() {
		t.Errorf("rendered table differs after round-trip")
	}
}
