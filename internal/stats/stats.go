// Package stats provides the measurement primitives the evaluation harness
// uses to regenerate the paper's tables and figures: sample distributions
// with exact quantiles (FCT CDFs), goodput time series (Figure 19), and
// small helpers for utilization and fairness summaries.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ndp/internal/sim"
)

// Dist collects float64 samples and answers quantile/mean queries exactly
// (sorting on demand). It is the workhorse for FCT and latency CDFs.
type Dist struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (d *Dist) Add(v float64) {
	d.samples = append(d.samples, v)
	d.sorted = false
}

// AddTime appends a sim.Time sample in microseconds (the paper's usual
// axis unit).
func (d *Dist) AddTime(t sim.Time) { d.Add(t.Micros()) }

// N returns the sample count.
func (d *Dist) N() int { return len(d.samples) }

func (d *Dist) sort() {
	if !d.sorted {
		sort.Float64s(d.samples)
		d.sorted = true
	}
}

// Quantile returns the q-th quantile (0 <= q <= 1) by nearest-rank on the
// sorted samples; 0 if empty.
func (d *Dist) Quantile(q float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	idx := int(math.Ceil(q*float64(len(d.samples)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(d.samples) {
		idx = len(d.samples) - 1
	}
	return d.samples[idx]
}

// Median returns the 50th percentile.
func (d *Dist) Median() float64 { return d.Quantile(0.5) }

// Mean returns the arithmetic mean; 0 if empty.
func (d *Dist) Mean() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range d.samples {
		s += v
	}
	return s / float64(len(d.samples))
}

// Min returns the smallest sample; 0 if empty.
func (d *Dist) Min() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	return d.samples[0]
}

// Max returns the largest sample; 0 if empty.
func (d *Dist) Max() float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	return d.samples[len(d.samples)-1]
}

// MeanOfBottom returns the mean of the lowest fraction frac of samples —
// the "worst 10% of flows" statistic of Figure 2 (for goodput, lower is
// worse).
func (d *Dist) MeanOfBottom(frac float64) float64 {
	if len(d.samples) == 0 {
		return 0
	}
	d.sort()
	n := int(math.Ceil(frac * float64(len(d.samples))))
	if n < 1 {
		n = 1
	}
	var s float64
	for _, v := range d.samples[:n] {
		s += v
	}
	return s / float64(n)
}

// CDFRow is one (value, cumulative fraction) point.
type CDFRow struct {
	Value float64
	Frac  float64
}

// CDF returns up to points evenly-spaced rows of the empirical CDF.
func (d *Dist) CDF(points int) []CDFRow {
	if len(d.samples) == 0 || points < 2 {
		return nil
	}
	d.sort()
	rows := make([]CDFRow, 0, points)
	for i := 0; i < points; i++ {
		f := float64(i+1) / float64(points)
		idx := int(math.Ceil(f*float64(len(d.samples)))) - 1
		rows = append(rows, CDFRow{Value: d.samples[idx], Frac: f})
	}
	return rows
}

// Summary formats the headline quantiles on one line.
func (d *Dist) Summary(unit string) string {
	return fmt.Sprintf("n=%d min=%.4g p50=%.4g p90=%.4g p99=%.4g max=%.4g mean=%.4g %s",
		d.N(), d.Min(), d.Median(), d.Quantile(0.9), d.Quantile(0.99), d.Max(), d.Mean(), unit)
}

// TimeSeries accumulates byte counts into fixed-width bins and reports each
// bin as a rate — the goodput-over-time plots of Figure 19.
type TimeSeries struct {
	Bin  sim.Time
	bins []int64
}

// NewTimeSeries creates a series with the given bin width.
func NewTimeSeries(bin sim.Time) *TimeSeries { return &TimeSeries{Bin: bin} }

// Record adds bytes at time t.
func (ts *TimeSeries) Record(t sim.Time, bytes int64) {
	idx := int(t / ts.Bin)
	for len(ts.bins) <= idx {
		ts.bins = append(ts.bins, 0)
	}
	ts.bins[idx] += bytes
}

// RateGbps returns the per-bin goodput in Gb/s.
func (ts *TimeSeries) RateGbps() []float64 {
	out := make([]float64, len(ts.bins))
	sec := ts.Bin.Seconds()
	for i, b := range ts.bins {
		out[i] = float64(b) * 8 / sec / 1e9
	}
	return out
}

// Bins returns the raw per-bin byte counts.
func (ts *TimeSeries) Bins() []int64 { return append([]int64(nil), ts.bins...) }

// JainIndex computes Jain's fairness index over per-flow throughputs:
// (sum x)^2 / (n * sum x^2); 1.0 is perfectly fair.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s, s2 float64
	for _, x := range xs {
		s += x
		s2 += x * x
	}
	if s2 == 0 {
		return 0
	}
	return s * s / (float64(len(xs)) * s2)
}

// Gbps converts bytes transferred in an interval to Gb/s.
func Gbps(bytes int64, interval sim.Time) float64 {
	if interval <= 0 {
		return 0
	}
	return float64(bytes) * 8 / interval.Seconds() / 1e9
}

// Table is a minimal fixed-width text table used by every experiment to
// print the rows/series the paper's figures plot. It marshals to JSON for
// machine-readable output (ndpsim -json).
type Table struct {
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
}

// AddRow appends formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddFloats appends a row of %.4g-formatted values after a label.
func (t *Table) AddFloats(label string, vals ...float64) {
	cells := []string{label}
	for _, v := range vals {
		cells = append(cells, fmt.Sprintf("%.4g", v))
	}
	t.Rows = append(t.Rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	all := append([][]string{t.Header}, t.Rows...)
	width := make([]int, 0)
	for _, row := range all {
		for i, c := range row {
			if i >= len(width) {
				width = append(width, 0)
			}
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	for ri, row := range all {
		if ri == 1 {
			for i, w := range width {
				if i > 0 {
					b.WriteString("  ")
				}
				b.WriteString(strings.Repeat("-", w))
			}
			b.WriteByte('\n')
		}
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := width[i] - len(c); pad > 0 && i < len(row)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
