package p4

import (
	"testing"
	"testing/quick"

	"ndp/internal/fabric"
)

func data(seq int64, size int32) *fabric.Packet {
	return fabric.NewData(1, 0, 1, seq, size)
}

func TestDataFillsNormalQueueThenTruncates(t *testing.T) {
	sw := NewPipeline()
	// 12KB buffer holds 8 x 1500B.
	for i := int64(0); i < 8; i++ {
		md := sw.Submit(data(i, 1500))
		if md.Prio != 0 || md.Truncated {
			t.Fatalf("packet %d: md=%+v, want normal queue untruncated", i, md)
		}
	}
	if sw.QS() != 12000 {
		t.Fatalf("qs = %d, want 12000", sw.QS())
	}
	md := sw.Submit(data(8, 1500))
	if !md.Truncated || md.Prio != 1 {
		t.Fatalf("overflow packet md=%+v, want truncated into priority queue", md)
	}
	if sw.Truncs != 1 {
		t.Errorf("truncs = %d", sw.Truncs)
	}
}

func TestControlPacketsGoDirectPrio(t *testing.T) {
	sw := NewPipeline()
	for _, typ := range []fabric.PacketType{fabric.Ack, fabric.Nack, fabric.Pull} {
		md := sw.Submit(fabric.NewControl(typ, 1, 1, 0))
		if md.Prio != 1 || md.Truncated {
			t.Errorf("%v: md=%+v, want direct priority", typ, md)
		}
	}
	// Directprio must not touch the qs register.
	if sw.QS() != 0 {
		t.Errorf("control packets changed qs: %d", sw.QS())
	}
}

func TestEgressDecrementsRegister(t *testing.T) {
	sw := NewPipeline()
	sw.Submit(data(0, 9000))
	sw.Submit(fabric.NewControl(fabric.Ack, 1, 1, 0))
	if sw.QS() != 9000 {
		t.Fatalf("qs = %d", sw.QS())
	}
	// Priority first; qs must not change for priority-queue packets.
	p, md := sw.Transmit()
	if p.Type != fabric.Ack || md.Prio != 1 || sw.QS() != 9000 {
		t.Fatalf("first transmit: %v md=%+v qs=%d", p, md, sw.QS())
	}
	fabric.Free(p)
	p, md = sw.Transmit()
	if p.Type != fabric.Data || md.Prio != 0 {
		t.Fatalf("second transmit: %v md=%+v", p, md)
	}
	if sw.QS() != 0 {
		t.Errorf("qs = %d after normal-queue egress, want 0", sw.QS())
	}
	fabric.Free(p)
	if p, _ := sw.Transmit(); p != nil {
		t.Error("empty pipeline transmitted a packet")
	}
}

func TestPriorityQueueOverflowDrops(t *testing.T) {
	sw := NewPipeline()
	sw.PrioCapBytes = 2 * fabric.HeaderSize
	sw.Submit(fabric.NewControl(fabric.Ack, 1, 1, 0))
	sw.Submit(fabric.NewControl(fabric.Ack, 1, 1, 0))
	md := sw.Submit(fabric.NewControl(fabric.Ack, 1, 1, 0))
	if !md.Dropped || sw.Drops != 1 {
		t.Errorf("md=%+v drops=%d, want overflow drop", md, sw.Drops)
	}
}

func TestTableHitCounters(t *testing.T) {
	sw := NewPipeline()
	sw.Submit(data(0, 9000))
	sw.Submit(fabric.NewControl(fabric.Pull, 1, 1, 0))
	byName := map[string]int64{}
	for _, tb := range sw.Ingress {
		byName[tb.Name] = tb.Hits
	}
	if byName["Readregister"] != 2 {
		t.Errorf("Readregister hits = %d, want 2 (every packet)", byName["Readregister"])
	}
	if byName["Directprio"] != 1 || byName["Setprio"] != 1 {
		t.Errorf("Directprio=%d Setprio=%d, want 1 each", byName["Directprio"], byName["Setprio"])
	}
}

// Property: the P4 pipeline and the behavioural SwitchQueue make the same
// trim-vs-enqueue decision for pure arrival sequences (no interleaved
// dequeues, no tail coin — the deterministic subset Figure 7 implements).
func TestPipelineMatchesBehaviouralModel(t *testing.T) {
	prop := func(ctrlMask uint16) bool {
		sw := NewPipeline()
		// The behavioural model counts packets (8 x 1500B = 12KB budget).
		normalSlots := sw.BufferBytes / 1500
		used := 0
		for i := 0; i < 16; i++ {
			ctrl := ctrlMask&(1<<i) != 0
			if ctrl {
				md := sw.Submit(fabric.NewControl(fabric.Ack, 1, 1, 0))
				if md.Prio != 1 || md.Truncated {
					return false
				}
				continue
			}
			md := sw.Submit(data(int64(i), 1500))
			wantTrim := used >= normalSlots
			if md.Truncated != wantTrim {
				return false
			}
			if !wantTrim {
				used++
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Register conservation: after any submit/transmit interleaving, qs equals
// the bytes of data packets still waiting in the normal queue.
func TestRegisterConservationProperty(t *testing.T) {
	prop := func(ops []bool) bool {
		sw := NewPipeline()
		seq := int64(0)
		for _, submit := range ops {
			if submit {
				sw.Submit(data(seq, 1500))
				seq++
			} else if p, _ := sw.Transmit(); p != nil {
				fabric.Free(p)
			}
		}
		want := 0
		for _, p := range sw.Normal {
			want += int(p.Size)
		}
		return sw.QS() == want
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
