// Package p4 reproduces the paper's P4 switch implementation (§4, Figure
// 7): the NDP service model expressed as a match-action pipeline for a
// programmable switch with two queues between ingress and egress.
//
// The paper's point is that NDP needs nothing exotic from a switch: a
// register holding the normal-queue occupancy, three ingress tables
// (Readregister, Setprio, Directprio), a truncate primitive, and one egress
// table (Decrement) for book-keeping. This package implements a tiny
// match-action interpreter and the NDP program on top of it, and the tests
// verify the pipeline is semantically equivalent to the behavioural model
// in internal/core for the decisions both make (trim vs enqueue vs
// priority).
//
// Like the paper's Figure 7, the pipeline models a single output interface;
// internal/core.SwitchQueue remains the multi-port behavioural model used
// in simulation (it adds the tail-trim coin and return-to-sender, which the
// paper notes a "full implementation should" add to the P4 version).
package p4

import (
	"fmt"

	"ndp/internal/fabric"
)

// Metadata carried with a packet through the pipeline.
type Metadata struct {
	// Prio is the egress queue selector: 0 = normal, 1 = priority.
	Prio int
	// QS is the normal-queue occupancy snapshot read from the register.
	QS int
	// Truncated records that the truncate primitive ran.
	Truncated bool
	// Dropped records that no queue could accept the packet.
	Dropped bool
}

// Action mutates a packet and its metadata; primitives compose into table
// actions.
type Action func(sw *Pipeline, p *fabric.Packet, md *Metadata)

// Table is one match-action stage. Match inspects the packet and metadata
// and selects an action (nil = no-op / miss).
type Table struct {
	Name  string
	Match func(sw *Pipeline, p *fabric.Packet, md *Metadata) Action
	// Hits counts matched packets, for the tests and for parity with P4
	// counters.
	Hits int64
}

// Apply runs the table on a packet.
func (t *Table) Apply(sw *Pipeline, p *fabric.Packet, md *Metadata) {
	if a := t.Match(sw, p, md); a != nil {
		t.Hits++
		a(sw, p, md)
	}
}

// Pipeline is the Figure 7 device: an ingress pipeline, two queues, and an
// egress pipeline around a single output interface.
type Pipeline struct {
	// qs is the register tracking normal-queue bytes ("not all P4
	// platforms have a queue-size register, so we count packets that go
	// into the normal buffer and packets that enter the egress pipeline").
	qs int

	// BufferBytes is the normal-queue budget (12KB in the NetFPGA/P4
	// design).
	BufferBytes int
	// PrioCapBytes bounds the priority queue; overflow drops.
	PrioCapBytes int

	Ingress []*Table
	Egress  []*Table

	Normal, Priority []*fabric.Packet
	prioBytes        int

	Drops, Truncs int64
}

// NewPipeline builds the NDP P4 program with the paper's 12KB buffer.
func NewPipeline() *Pipeline {
	sw := &Pipeline{BufferBytes: 12 << 10, PrioCapBytes: 12 << 10}
	sw.Ingress = []*Table{
		{
			// Readregister: copy the qs register into metadata so later
			// tables (which can only match on packet data + metadata) can
			// use it.
			Name: "Readregister",
			Match: func(sw *Pipeline, p *fabric.Packet, md *Metadata) Action {
				return func(sw *Pipeline, p *fabric.Packet, md *Metadata) { md.QS = sw.qs }
			},
		},
		{
			// Directprio: NDP packets without a data payload (ACK, NACK,
			// PULL, already-trimmed headers) go straight to the priority
			// queue.
			Name: "Directprio",
			Match: func(sw *Pipeline, p *fabric.Packet, md *Metadata) Action {
				if !p.IsControl() {
					return nil
				}
				return func(sw *Pipeline, p *fabric.Packet, md *Metadata) { md.Prio = 1 }
			},
		},
		{
			// Setprio: data packets fit in the normal queue while qs is
			// under the buffer size; beyond it they are truncated and fed
			// to the priority queue.
			Name: "Setprio",
			Match: func(sw *Pipeline, p *fabric.Packet, md *Metadata) Action {
				if p.IsControl() {
					return nil
				}
				if md.QS+int(p.Size) <= sw.BufferBytes {
					return func(sw *Pipeline, p *fabric.Packet, md *Metadata) {
						md.Prio = 0
						sw.qs += int(p.Size) // qs += pkt.size
					}
				}
				return func(sw *Pipeline, p *fabric.Packet, md *Metadata) {
					md.Prio = 1
					truncate(sw, p, md) // P4 primitive action
				}
			},
		},
	}
	sw.Egress = []*Table{
		{
			// Decrement: qs book-keeping — decrease when a packet that came
			// from the normal queue enters the egress pipeline.
			Name: "Decrement",
			Match: func(sw *Pipeline, p *fabric.Packet, md *Metadata) Action {
				if md.Prio != 0 {
					return nil
				}
				return func(sw *Pipeline, p *fabric.Packet, md *Metadata) { sw.qs -= int(p.Size) }
			},
		},
	}
	return sw
}

// truncate is the P4 primitive: cut the payload, mark the NDP header flag.
func truncate(sw *Pipeline, p *fabric.Packet, md *Metadata) {
	p.Trim()
	md.Truncated = true
	sw.Truncs++
}

// Submit runs a packet through the ingress pipeline and enqueues it.
func (sw *Pipeline) Submit(p *fabric.Packet) Metadata {
	var md Metadata
	for _, t := range sw.Ingress {
		t.Apply(sw, p, &md)
	}
	if md.Prio == 1 {
		if sw.prioBytes+int(p.Size) > sw.PrioCapBytes {
			md.Dropped = true
			sw.Drops++
			fabric.Free(p)
			return md
		}
		sw.prioBytes += int(p.Size)
		sw.Priority = append(sw.Priority, p)
		return md
	}
	sw.Normal = append(sw.Normal, p)
	return md
}

// Transmit dequeues the next packet (priority queue first, matching the
// paper's two-queue assumption) and runs the egress pipeline.
func (sw *Pipeline) Transmit() (*fabric.Packet, Metadata) {
	var p *fabric.Packet
	var md Metadata
	switch {
	case len(sw.Priority) > 0:
		p = sw.Priority[0]
		sw.Priority = sw.Priority[1:]
		sw.prioBytes -= int(p.Size)
		md.Prio = 1
	case len(sw.Normal) > 0:
		p = sw.Normal[0]
		sw.Normal = sw.Normal[1:]
		md.Prio = 0
	default:
		return nil, md
	}
	for _, t := range sw.Egress {
		t.Apply(sw, p, &md)
	}
	return p, md
}

// QS exposes the register value for tests.
func (sw *Pipeline) QS() int { return sw.qs }

// String summarizes pipeline state.
func (sw *Pipeline) String() string {
	return fmt.Sprintf("p4: qs=%d normal=%d prio=%d truncs=%d drops=%d",
		sw.qs, len(sw.Normal), len(sw.Priority), sw.Truncs, sw.Drops)
}
