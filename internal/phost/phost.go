// Package phost implements pHost (Gao et al., CoNEXT 2015), the
// receiver-driven transport the paper compares against in §6.2 ("Who needs
// packet trimming?"). Like NDP, pHost bursts the first RTT at line rate and
// then paces token (pull) grants from the receiver; unlike NDP it runs over
// plain drop-tail switches with per-packet ECMP spraying, so losses are
// silent: the receiver cannot distinguish "not yet arrived" from "dropped",
// and recovery falls back on sender timeouts. That difference is exactly
// what the comparison isolates.
package phost

import (
	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// Config parameterizes pHost endpoints.
type Config struct {
	MTU          int
	IW           int      // first-RTT burst, packets
	RTO          sim.Time // loss-recovery timeout
	TokenSpacing sim.Time // 0: derive from link rate
}

// DefaultConfig mirrors the NDP comparison settings.
func DefaultConfig() Config {
	return Config{MTU: 9000, IW: 30, RTO: sim.Millisecond}
}

// Host is the per-host pHost agent: demux plus the shared token pacer.
type Host struct {
	host    *fabric.Host
	el      *sim.EventList
	arena   *fabric.Arena
	demux   *fabric.Demux
	spacing sim.Time
	cfg     Config

	queue     recvRing // round-robin token queue
	scheduled bool
	lastSent  sim.Time
	everSent  bool

	// Free lists of completed flow state (see internal/tcp.Pool for the
	// reuse rules); msl mirrors internal/core's segment-lifetime bound.
	retiredS []*Sender
	retiredR []*Receiver
}

// msl bounds how long a completed flow's packets can stay in flight;
// retired state is reusable 2*msl after completion.
const msl = sim.Millisecond

// NewHost installs a pHost agent on a host.
func NewHost(h *fabric.Host, cfg Config) *Host {
	if cfg.MTU == 0 {
		cfg.MTU = 9000
	}
	if cfg.IW == 0 {
		cfg.IW = 30
	}
	if cfg.RTO == 0 {
		cfg.RTO = sim.Millisecond
	}
	spacing := cfg.TokenSpacing
	if spacing == 0 {
		spacing = sim.TransmissionTime(cfg.MTU+fabric.HeaderSize, h.LinkRate())
	}
	ph := &Host{
		host: h, el: h.EventList(), arena: fabric.AttachArena(h.EventList()),
		demux: fabric.NewDemux(), spacing: spacing, cfg: cfg,
	}
	h.Stack = ph.demux
	return ph
}

// Listen accepts incoming pHost transfers.
func (ph *Host) Listen(onComplete func(r *Receiver)) {
	ph.demux.Listen = func(p *fabric.Packet) fabric.Sink {
		if p.Type != fabric.Data {
			return nil
		}
		r := ph.takeReceiver()
		if r == nil {
			r = &Receiver{ph: ph}
		} else {
			got := r.got[:0]
			*r = Receiver{ph: ph, got: got}
		}
		r.Flow, r.Peer, r.total, r.OnComplete = p.Flow, p.Src, -1, onComplete
		return r
	}
}

// takeReceiver pops the oldest retired receiver if it is quiescent: out of
// the token round-robin and 2*msl past completion. Its demux slot (the
// registration Listen created) is replaced with a tombstone that keeps
// re-ACKing late retransmissions exactly as the live completed receiver
// would, so a sender whose ACKs were dropped still recovers.
func (ph *Host) takeReceiver() *Receiver {
	if len(ph.retiredR) == 0 {
		return nil
	}
	r := ph.retiredR[0]
	if r.queued || ph.el.Now() < r.CompletedAt+2*msl {
		return nil
	}
	ph.retiredR = ph.retiredR[1:]
	ph.demux.Register(r.Flow, &tombstone{ph: ph, flow: r.Flow, peer: r.Peer})
	return r
}

// takeSender pops the oldest retired sender if its RTO timer is disarmed
// and 2*msl has passed since completion; late ACKs or tokens for the old
// flow are freed unclaimed after the demux slot is released here, which a
// completed sender would have ignored anyway.
func (ph *Host) takeSender() *Sender {
	if len(ph.retiredS) == 0 {
		return nil
	}
	s := ph.retiredS[0]
	if s.timer.Pending() || ph.el.Now() < s.CompletedAt+2*msl {
		return nil
	}
	ph.retiredS = ph.retiredS[1:]
	ph.demux.Unregister(s.Flow)
	return s
}

// tombstone answers late retransmissions for a completed, recycled receiver
// with the per-packet ACK the live receiver would have sent.
type tombstone struct {
	ph   *Host
	flow uint64
	peer int32
}

// Receive mirrors a completed Receiver.Receive exactly.
func (t *tombstone) Receive(p *fabric.Packet) {
	if p.Type != fabric.Data {
		fabric.Free(p)
		return
	}
	a := t.ph.arena.NewControl(fabric.Ack, t.flow, t.ph.host.ID, t.peer)
	a.Seq = p.Seq
	t.ph.host.Send(a)
	fabric.Free(p)
}

// Connect starts a transfer of size bytes toward the destination host.
// Packets are destination-routed (per-packet ECMP spraying by switches).
func (ph *Host) Connect(dst int32, flow uint64, size int64, onDone func(s *Sender)) *Sender {
	s := ph.takeSender()
	if s == nil {
		s = &Sender{ph: ph, Flow: flow, Dst: dst, size: size, onDone: onDone}
		s.timer = sim.NewTimer(ph.el, s.onTimeout)
	} else {
		timer, acked, sentAt := s.timer, s.acked[:0], s.sentAt[:0]
		*s = Sender{
			ph: ph, Flow: flow, Dst: dst, size: size, onDone: onDone,
			timer: timer, acked: acked, sentAt: sentAt,
		}
	}
	mtu := int64(ph.cfg.MTU)
	s.total = (size + mtu - 1) / mtu
	if s.total == 0 {
		s.total = 1
	}
	s.lastSize = int32(size - (s.total-1)*mtu)
	if s.lastSize <= 0 {
		s.lastSize = int32(mtu)
	}
	ph.demux.Register(flow, s)
	burst := int64(ph.cfg.IW)
	if s.total < burst {
		burst = s.total
	}
	for i := int64(0); i < burst; i++ {
		s.send(s.next, false)
		s.next++
	}
	return s
}

// Sender is the sending half of a pHost transfer.
type Sender struct {
	Flow uint64
	Dst  int32

	ph       *Host
	size     int64
	total    int64
	lastSize int32
	next     int64

	acked  []bool
	nAck   int64
	sentAt []sim.Time

	lastToken int64
	timer     *sim.Timer
	complete  bool
	onDone    func(s *Sender)

	PacketsSent, Rtx int64
	CompletedAt      sim.Time
}

//simlint:allow hotalloc — per-packet bookkeeping: amortized append doubling, O(log N) allocations per flow, arrays kept across recycle
func (s *Sender) grow(seq int64) {
	for int64(len(s.acked)) <= seq {
		s.acked = append(s.acked, false)
		s.sentAt = append(s.sentAt, -1) // -1 = never sent (0 is a valid send time)
	}
}

func (s *Sender) send(seq int64, rtx bool) {
	s.grow(seq)
	size := int32(s.ph.cfg.MTU)
	if seq == s.total-1 {
		size = s.lastSize
	}
	p := s.ph.arena.NewData(s.Flow, s.ph.host.ID, s.Dst, seq, size)
	p.Sent = s.ph.el.Now()
	if seq == s.total-1 {
		p.Flags |= fabric.FlagFIN
	}
	if rtx {
		p.Flags |= fabric.FlagRTX
		s.Rtx++
	}
	s.sentAt[seq] = s.ph.el.Now()
	s.PacketsSent++
	if !s.timer.Pending() {
		s.timer.Reset(s.ph.cfg.RTO)
	}
	s.ph.host.Send(p)
}

// sendNext releases one token of credit: the oldest unacked timed-out
// packet is preferred; otherwise new data.
func (s *Sender) sendNext() {
	if s.next < s.total {
		s.send(s.next, false)
		s.next++
	}
	// If all data has been pushed, tokens carry no information for us:
	// losses are recovered by the RTO below.
}

// Receive handles ACKs and tokens.
func (s *Sender) Receive(p *fabric.Packet) {
	switch p.Type {
	case fabric.Ack:
		seq := p.Seq
		if seq >= 0 {
			s.grow(seq)
			if !s.acked[seq] {
				s.acked[seq] = true
				s.nAck++
			}
		}
		if s.nAck == s.total && !s.complete {
			s.complete = true
			s.CompletedAt = s.ph.el.Now()
			s.timer.Stop()
			if s.onDone != nil {
				s.onDone(s)
			}
			s.ph.retiredS = append(s.ph.retiredS, s) //simlint:allow hotalloc — free-list append: capacity bounded by peak concurrent flows and kept across reuse
		}
	case fabric.Pull: // token
		delta := p.PullSeq - s.lastToken
		if delta > 0 {
			s.lastToken = p.PullSeq
			for i := int64(0); i < delta; i++ {
				s.sendNext()
			}
		}
	}
	fabric.Free(p)
}

// onTimeout retransmits every packet unacked for a full RTO — pHost's only
// loss-recovery mechanism.
func (s *Sender) onTimeout() {
	if s.complete {
		return
	}
	now := s.ph.el.Now()
	for seq := int64(0); seq < int64(len(s.acked)); seq++ {
		if !s.acked[seq] && s.sentAt[seq] >= 0 && s.sentAt[seq]+s.ph.cfg.RTO <= now {
			s.send(seq, true)
		}
	}
	s.timer.Reset(s.ph.cfg.RTO)
}

// Complete reports whether every packet was acked.
func (s *Sender) Complete() bool { return s.complete }

// AckedBytes approximates acknowledged payload bytes (acked packets times
// MTU) — the goodput meter for long flows.
func (s *Sender) AckedBytes() int64 { return s.nAck * int64(s.ph.cfg.MTU) }

// Receiver is the receiving half: per-packet ACKs plus paced tokens.
type Receiver struct {
	Flow uint64
	Peer int32

	ph     *Host
	got    []bool
	nGot   int64
	total  int64
	bytes  int64
	tokens int64 // pending token count
	tokSeq int64

	complete    bool
	queued      bool // present in the host's token round-robin queue
	CompletedAt sim.Time
	OnComplete  func(r *Receiver)
}

// Receive handles data packets.
func (r *Receiver) Receive(p *fabric.Packet) {
	if p.Type != fabric.Data {
		fabric.Free(p)
		return
	}
	seq := p.Seq
	for int64(len(r.got)) <= seq {
		r.got = append(r.got, false) //simlint:allow hotalloc — arrival bitmap: amortized append doubling, O(log N) allocations per flow, backing array kept across recycle
	}
	if p.Flags&fabric.FlagFIN != 0 && r.total < 0 {
		r.total = seq + 1
	}
	dup := r.got[seq]
	if !dup {
		r.got[seq] = true
		r.nGot++
		r.bytes += int64(p.DataSize)
	}
	a := r.ph.arena.NewControl(fabric.Ack, r.Flow, r.ph.host.ID, r.Peer)
	a.Seq = seq
	r.ph.host.Send(a)
	if r.total >= 0 && r.nGot == r.total && !r.complete {
		r.complete = true
		r.CompletedAt = r.ph.el.Now()
		if r.OnComplete != nil {
			r.OnComplete(r)
		}
		r.ph.retiredR = append(r.ph.retiredR, r) //simlint:allow hotalloc — free-list append: capacity bounded by peak concurrent flows and kept across reuse
	} else if !dup && !r.complete {
		r.addToken()
	}
	fabric.Free(p)
}

// Bytes returns distinct payload bytes received.
func (r *Receiver) Bytes() int64 { return r.bytes }

// Complete reports whether all data arrived.
func (r *Receiver) Complete() bool { return r.complete }

func (r *Receiver) addToken() {
	if r.total >= 0 && int64(r.tokens) >= r.total-r.nGot {
		return
	}
	r.tokens++
	if r.tokens == 1 {
		r.queued = true
		r.ph.queue.push(r)
	}
	r.ph.schedule()
}

func (ph *Host) schedule() {
	if ph.scheduled || ph.queue.n == 0 {
		return
	}
	at := ph.el.Now()
	if ph.everSent && ph.lastSent+ph.spacing > at {
		at = ph.lastSent + ph.spacing
	}
	ph.scheduled = true
	ph.el.Schedule(at, ph, 0)
}

// OnEvent fires the token pacer (sim.Handler) — one typed event per
// transmitted token keeps the per-packet pacing allocation-free.
func (ph *Host) OnEvent(uint64) { ph.fire() }

func (ph *Host) fire() {
	ph.scheduled = false
	for ph.queue.n > 0 {
		r := ph.queue.pop()
		if r.tokens <= 0 || r.complete {
			r.tokens = 0
			r.queued = false
			continue
		}
		r.tokens--
		if r.tokens > 0 {
			ph.queue.push(r)
		} else {
			r.queued = false
		}
		r.tokSeq++
		p := ph.arena.NewControl(fabric.Pull, r.Flow, ph.host.ID, r.Peer)
		p.PullSeq = r.tokSeq
		ph.lastSent = ph.el.Now()
		ph.everSent = true
		ph.host.Send(p)
		break
	}
	ph.schedule()
}

// recvRing is the token queue's FIFO: a power-of-two ring mirroring core's
// pullRing. The pacer pops the head and re-pushes the round-robin survivor
// on every transmitted token, a pattern that makes an advance-the-slice
// queue reallocate on nearly every push (the freed front capacity is never
// reused) — the same pathology that was once core's single largest
// allocation site, resurfaced here by simlint's hotalloc pass. The ring
// reuses its buffer forever.
type recvRing struct {
	buf        []*Receiver
	head, tail int
	n          int
}

func (q *recvRing) push(r *Receiver) {
	if q.n == len(q.buf) {
		size := 64
		for size < len(q.buf)*2 {
			size *= 2
		}
		nb := make([]*Receiver, size) //simlint:allow hotalloc — power-of-two ring doubling: amortized O(1) per push, the buffer is reused forever
		for i := 0; i < q.n; i++ {
			nb[i] = q.buf[(q.head+i)%len(q.buf)]
		}
		q.buf, q.head, q.tail = nb, 0, q.n
	}
	q.buf[q.tail] = r
	q.tail = (q.tail + 1) & (len(q.buf) - 1)
	q.n++
}

func (q *recvRing) pop() *Receiver {
	r := q.buf[q.head]
	q.buf[q.head] = nil
	q.head = (q.head + 1) & (len(q.buf) - 1)
	q.n--
	return r
}
