package phost

import (
	"testing"

	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/topo"
)

// phostNet builds a FatTree with 8-packet drop-tail queues and per-packet
// ECMP spraying — the §6.2 comparison configuration.
func phostNet(k int) (*topo.FatTree, []*Host) {
	cfg := topo.Config{
		Seed:        9,
		SwitchQueue: func(string) fabric.Queue { return fabric.NewFIFOQueue(8 * 9000) },
	}
	net := topo.NewFatTree(k, cfg)
	hosts := make([]*Host, net.NumHosts())
	for i, h := range net.Hosts {
		hosts[i] = NewHost(h, DefaultConfig())
		hosts[i].Listen(nil)
	}
	return net, hosts
}

func TestPHostSingleTransfer(t *testing.T) {
	net, ph := phostNet(4)
	s := ph[0].Connect(15, 1, 900_000, nil)
	net.EL.RunUntil(100 * sim.Millisecond)
	if !s.Complete() {
		t.Fatal("transfer incomplete")
	}
}

func TestPHostRecoversSilentLossViaRTO(t *testing.T) {
	// An incast overflows the 8-packet drop-tail queues: losses are silent
	// and only the RTO recovers them. All transfers must still complete.
	net, ph := phostNet(4)
	done := 0
	var ss []*Sender
	for i := 1; i < 16; i++ {
		s := ph[i].Connect(0, uint64(i), 270_000, func(*Sender) { done++ })
		ss = append(ss, s)
	}
	net.EL.RunUntil(2 * sim.Second)
	if done != 15 {
		t.Fatalf("%d/15 flows completed", done)
	}
	var rtx int64
	for _, s := range ss {
		rtx += s.Rtx
	}
	if rtx == 0 {
		t.Error("expected RTO retransmissions after drop-tail incast losses")
	}
	if d := net.CollectStats().Drops; d == 0 {
		t.Error("expected drops at 8-packet drop-tail queues during incast")
	}
}

func TestPHostTokensPaceSteadyState(t *testing.T) {
	net, ph := phostNet(4)
	var arrivals []sim.Time
	h0 := net.Hosts[0]
	inner := h0.Stack
	h0.Stack = fabric.SinkFunc(func(p *fabric.Packet) {
		if p.Type == fabric.Data {
			arrivals = append(arrivals, net.EL.Now())
		}
		inner.Receive(p)
	})
	ph[15].Connect(0, 1, 2_700_000, nil)
	net.EL.RunUntil(100 * sim.Millisecond)
	if len(arrivals) < 100 {
		t.Fatalf("only %d arrivals", len(arrivals))
	}
	var sum sim.Time
	n := 0
	for i := 60; i < len(arrivals); i++ {
		sum += arrivals[i] - arrivals[i-1]
		n++
	}
	mean := sum / sim.Time(n)
	if mean < 7*sim.Microsecond || mean > 9*sim.Microsecond {
		t.Errorf("token-paced inter-arrival %v, want ~7.3us", mean)
	}
}

func TestPHostListenCreatesReceiverLazily(t *testing.T) {
	net, ph := phostNet(4)
	done := false
	ph[0].Listen(func(r *Receiver) { done = true })
	ph[15].Connect(0, 7, 90_000, nil)
	net.EL.RunUntil(50 * sim.Millisecond)
	if !done {
		t.Fatal("receiver completion callback not invoked")
	}
	_ = net
}
