package harness

import (
	"fmt"
	"strings"
	"testing"
)

// TestRunJobsOrdering checks that results come back in job order for any
// worker count, including pools larger than the job list.
func TestRunJobsOrdering(t *testing.T) {
	const n = 37
	jobs := make([]Job[int], n)
	for i := range jobs {
		i := i
		jobs[i] = NewJob(fmt.Sprintf("job%d", i), uint64(i), func(seed uint64) int {
			return int(seed) * 10
		})
	}
	for _, workers := range []int{0, 1, 2, 7, 64} {
		res := RunJobs(Options{Workers: workers}, jobs)
		if len(res) != n {
			t.Fatalf("workers=%d: got %d results, want %d", workers, len(res), n)
		}
		for i, v := range res {
			if v != i*10 {
				t.Errorf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*10)
			}
		}
	}
}

// TestRunJobsEmpty must not deadlock or panic on an empty sweep.
func TestRunJobsEmpty(t *testing.T) {
	if res := RunJobs(Options{Workers: 4}, []Job[int]{}); len(res) != 0 {
		t.Fatalf("empty sweep returned %d results", len(res))
	}
}

// TestRunJobsPanicAttribution checks that a panicking job surfaces on the
// calling goroutine with its label attached, for both serial and parallel
// pools.
func TestRunJobsPanicAttribution(t *testing.T) {
	jobs := []Job[int]{
		NewJob("ok", 1, func(seed uint64) int { return 0 }),
		NewJob("exploding-point", 2, func(seed uint64) int { panic("boom") }),
		NewJob("ok2", 3, func(seed uint64) int { return 0 }),
	}
	for _, workers := range []int{1, 3} {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Errorf("workers=%d: expected panic", workers)
					return
				}
				msg := fmt.Sprint(p)
				if !strings.Contains(msg, "exploding-point") || !strings.Contains(msg, "boom") {
					t.Errorf("workers=%d: panic lacks attribution: %q", workers, msg)
				}
			}()
			RunJobs(Options{Workers: workers}, jobs)
		}()
	}
}

// TestRunJobsAggregatesFailures checks that when several jobs panic in one
// sweep, the re-raised panic names every failed job (label and seed), not
// just the first, for both serial and parallel pools.
func TestRunJobsAggregatesFailures(t *testing.T) {
	jobs := []Job[int]{
		NewJob("first-bad", 11, func(seed uint64) int { panic("first boom") }),
		NewJob("fine", 12, func(seed uint64) int { return 1 }),
		NewJob("second-bad", 13, func(seed uint64) int { panic("second boom") }),
	}
	for _, workers := range []int{1, 3} {
		func() {
			defer func() {
				p := recover()
				if p == nil {
					t.Errorf("workers=%d: expected panic", workers)
					return
				}
				msg := fmt.Sprint(p)
				for _, want := range []string{
					"2 jobs failed",
					`"first-bad"`, "seed 11", "first boom",
					`"second-bad"`, "seed 13", "second boom",
				} {
					if !strings.Contains(msg, want) {
						t.Errorf("workers=%d: aggregated panic missing %q:\n%s", workers, want, msg)
					}
				}
				if strings.Contains(msg, "fine") {
					t.Errorf("workers=%d: panic mentions the successful job:\n%s", workers, msg)
				}
			}()
			RunJobs(Options{Workers: workers}, jobs)
		}()
	}
}

// TestSweepSeeds checks seeds are reproducible, position-stable and
// pairwise distinct.
func TestSweepSeeds(t *testing.T) {
	a := SweepSeeds(42, 8)
	b := SweepSeeds(42, 8)
	longer := SweepSeeds(42, 16)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seed %d not reproducible: %d vs %d", i, a[i], b[i])
		}
		if a[i] != longer[i] {
			t.Fatalf("seed %d depends on sweep length: %d vs %d", i, a[i], longer[i])
		}
	}
	seen := map[uint64]bool{}
	for _, s := range longer {
		if seen[s] {
			t.Fatalf("duplicate derived seed %d", s)
		}
		seen[s] = true
	}
	if SweepSeeds(43, 1)[0] == a[0] {
		t.Error("different bases produced the same first seed")
	}
}

// TestJobWorkersDeterminism runs a real (tiny) experiment serially and on
// a large pool and requires bit-identical rendered results — the core
// guarantee of the parallel sweep engine.
func TestJobWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations; skipped in -short mode")
	}
	e := Get("fig2")
	if e == nil {
		t.Fatal("fig2 not registered")
	}
	serial := e.Run(Options{Scale: 0.1, Seed: 11, Workers: 1}).String()
	parallel := e.Run(Options{Scale: 0.1, Seed: 11, Workers: 8}).String()
	if serial != parallel {
		t.Errorf("fig2 differs between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", serial, parallel)
	}
}
