package harness

import (
	"fmt"

	"ndp/internal/core"
	"ndp/internal/dcqcn"
	"ndp/internal/dctcp"
	"ndp/internal/fabric"
	"ndp/internal/mptcp"
	"ndp/internal/sim"
	"ndp/internal/stats"
	"ndp/internal/tcp"
	"ndp/internal/topo"
	"ndp/internal/workload"
)

func init() {
	run("fig14", "Per-flow throughput under a permutation traffic matrix", fig14)
	run("fig15", "90KB FCTs with random background load", fig15)
	run("fig16", "Incast completion time vs number of senders", fig16)
	run("fig17", "Permutation utilization vs IW and switch buffer size", fig17)
	run("fig19", "Collateral damage of a 64:1 incast on a neighbouring long flow", fig19)
	run("fig20", "Huge-incast overhead and retransmission mechanisms", fig20)
	run("fig21", "Sender-limited traffic and pull-queue fair queuing", fig21)
	run("fig22", "Permutation with a degraded 1Gb/s core link", fig22)
}

func dropTail(maxBytes int) topo.QueueFactory {
	return func(string) fabric.Queue { return fabric.NewFIFOQueue(maxBytes) }
}

// permProtocols runs the permutation matrix under the four transports and
// returns per-flow goodput in Gb/s keyed by protocol name.
func permProtocols(o Options, k int, warm, window sim.Time) map[string][]float64 {
	out := make(map[string][]float64)
	seed := o.Seed

	{ // NDP: 8-packet NDP switch queues.
		n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: seed},
			core.DefaultSwitchConfig(9000), core.DefaultConfig())
		dst := workload.Permutation(n.C.NumHosts(), sim.NewRand(seed))
		senders := n.Permutation(dst)
		meters := make([]*meter, len(senders))
		for i, s := range senders {
			s := s
			meters[i] = newMeter(func() int64 { return s.AckedBytes() })
		}
		out["NDP"] = runWarmMeasure(n.EL(), warm, window, meters)
	}
	{ // MPTCP: 200-packet drop-tail, 8 subflows on distinct paths.
		tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: seed}, dropTail(200*9000))
		dst := workload.Permutation(tn.C.NumHosts(), sim.NewRand(seed))
		cfg := mptcp.DefaultConfig()
		meters := make([]*meter, 0, len(dst))
		for src, d := range dst {
			f := tn.MPTCPFlow(src, d, -1, cfg, nil)
			meters = append(meters, newMeter(f.AckedBytes))
		}
		out["MPTCP"] = runWarmMeasure(tn.EL(), warm, window, meters)
	}
	{ // DCTCP: ECN queues, one fixed path per flow (ECMP stand-in).
		tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: seed}, dctcp.QueueFactory(9000))
		dst := workload.Permutation(tn.C.NumHosts(), sim.NewRand(seed))
		meters := make([]*meter, 0, len(dst))
		for src, d := range dst {
			snd, _ := tn.Flow(src, d, -1, dctcp.SenderConfig(9000), nil)
			meters = append(meters, newMeter(func() int64 { return snd.AckedBytes }))
		}
		out["DCTCP"] = runWarmMeasure(tn.EL(), warm, window, meters)
	}
	{ // DCQCN: lossless fabric, rate-based control, single path.
		dn := BuildDCQCN(FatTreeBuilder(k), topo.Config{Seed: seed}, 9000)
		dst := workload.Permutation(dn.C.NumHosts(), sim.NewRand(seed))
		meters := make([]*meter, 0, len(dst))
		for src, d := range dst {
			_, rcv := dn.Flow(src, d, -1, nil)
			meters = append(meters, newMeter(func() int64 { return rcv.Bytes }))
		}
		out["DCQCN"] = runWarmMeasure(dn.EL(), warm, window, meters)
		dn.StopAll()
	}
	return out
}

// fig14 reports per-flow throughput statistics for the permutation matrix.
func fig14(o Options, r *Result) {
	k := o.pick(4, 8, 12)
	warm := 3 * sim.Millisecond
	window := sim.Time(o.pick(6, 10, 20)) * sim.Millisecond
	res := permProtocols(o, k, warm, window)

	t := &stats.Table{Header: []string{"protocol", "util%", "min_gbps", "p10_gbps", "p50_gbps", "mean_gbps", "jain"}}
	for _, proto := range []string{"NDP", "MPTCP", "DCTCP", "DCQCN"} {
		g := res[proto]
		var d stats.Dist
		for _, v := range g {
			d.Add(v)
		}
		t.AddFloats(proto, 100*utilization(g, 10e9),
			d.Min(), d.Quantile(0.1), d.Median(), d.Mean(), stats.JainIndex(g))
	}
	r.AddTable(fmt.Sprintf("permutation on %d-host FatTree", (k*k*k)/4), t)
	r.Notef("paper shape: NDP >=92%% with worst flow ~9G; MPTCP ~89%%; DCTCP/DCQCN ~40%% with <1G stragglers from ECMP collisions")
}

// fig15 measures FCTs of repeated 90KB transfers between two otherwise-idle
// hosts while every other host sources four long-running background flows.
func fig15(o Options, r *Result) {
	k := o.pick(4, 8, 12)
	deadline := sim.Time(o.pick(15, 30, 60)) * sim.Millisecond
	probeSrc, probeDst := 0, 0 // filled per topology: different pods
	t := &stats.Table{Header: []string{"protocol", "p50_ms", "p90_ms", "p99_ms", "n"}}

	bgDst := func(numHosts int, rand *sim.Rand, src int) int {
		for {
			d := rand.Intn(numHosts)
			if d != src && d != probeSrc && d != probeDst {
				return d
			}
		}
	}

	{ // NDP
		n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: o.Seed},
			core.DefaultSwitchConfig(9000), core.DefaultConfig())
		hosts := n.C.NumHosts()
		probeDst = hosts / 2
		rand := sim.NewRand(o.Seed + 3)
		for h := 0; h < hosts; h++ {
			if h == probeSrc || h == probeDst {
				continue
			}
			for c := 0; c < 4; c++ {
				n.Transfer(h, bgDst(hosts, rand, h), -1, core.FlowOpts{})
			}
		}
		var fcts stats.Dist
		var probe func()
		probe = func() {
			start := n.EL().Now()
			n.Transfer(probeSrc, probeDst, 90_000, core.FlowOpts{OnReceiverDone: func(rcv *core.Receiver) {
				fcts.Add((rcv.CompletedAt - start).Millis())
				probe()
			}})
		}
		probe()
		n.EL().RunUntil(deadline)
		t.AddRow("NDP", f4(fcts.Median()), f4(fcts.Quantile(0.9)), f4(fcts.Quantile(0.99)), fmt.Sprint(fcts.N()))
	}
	{ // DCTCP
		tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: o.Seed}, dctcp.QueueFactory(9000))
		hosts := tn.C.NumHosts()
		probeDst = hosts / 2
		rand := sim.NewRand(o.Seed + 3)
		for h := 0; h < hosts; h++ {
			if h == probeSrc || h == probeDst {
				continue
			}
			for c := 0; c < 4; c++ {
				tn.Flow(h, bgDst(hosts, rand, h), -1, dctcp.SenderConfig(9000), nil)
			}
		}
		var fcts stats.Dist
		var probe func()
		probe = func() {
			start := tn.EL().Now()
			tn.Flow(probeSrc, probeDst, 90_000, dctcp.SenderConfig(9000), func(rcv *tcp.Receiver) {
				fcts.Add((rcv.CompletedAt - start).Millis())
				probe()
			})
		}
		probe()
		tn.EL().RunUntil(deadline)
		t.AddRow("DCTCP", f4(fcts.Median()), f4(fcts.Quantile(0.9)), f4(fcts.Quantile(0.99)), fmt.Sprint(fcts.N()))
	}
	{ // DCQCN
		dn := BuildDCQCN(FatTreeBuilder(k), topo.Config{Seed: o.Seed}, 9000)
		hosts := dn.C.NumHosts()
		probeDst = hosts / 2
		rand := sim.NewRand(o.Seed + 3)
		for h := 0; h < hosts; h++ {
			if h == probeSrc || h == probeDst {
				continue
			}
			for c := 0; c < 4; c++ {
				dn.Flow(h, bgDst(hosts, rand, h), -1, nil)
			}
		}
		var fcts stats.Dist
		var probe func()
		probe = func() {
			start := dn.EL().Now()
			dn.Flow(probeSrc, probeDst, 90_000, func(rcv *dcqcn.Receiver) {
				fcts.Add((rcv.CompletedAt - start).Millis())
				probe()
			})
		}
		probe()
		dn.EL().RunUntil(deadline)
		dn.StopAll()
		t.AddRow("DCQCN", f4(fcts.Median()), f4(fcts.Quantile(0.9)), f4(fcts.Quantile(0.99)), fmt.Sprint(fcts.N()))
	}
	{ // MPTCP
		tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: o.Seed}, dropTail(200*9000))
		hosts := tn.C.NumHosts()
		probeDst = hosts / 2
		rand := sim.NewRand(o.Seed + 3)
		cfg := mptcp.DefaultConfig()
		for h := 0; h < hosts; h++ {
			if h == probeSrc || h == probeDst {
				continue
			}
			for c := 0; c < 4; c++ {
				tn.MPTCPFlow(h, bgDst(hosts, rand, h), -1, cfg, nil)
			}
		}
		var fcts stats.Dist
		var probe func()
		probe = func() {
			start := tn.EL().Now()
			tn.MPTCPFlow(probeSrc, probeDst, 90_000, cfg, func(f *mptcp.Flow) {
				fcts.Add((f.CompletedAt - start).Millis())
				probe()
			})
		}
		probe()
		tn.EL().RunUntil(deadline)
		t.AddRow("MPTCP", f4(fcts.Median()), f4(fcts.Quantile(0.9)), f4(fcts.Quantile(0.99)), fmt.Sprint(fcts.N()))
	}
	r.AddTable("90KB probe FCTs under background load", t)
	r.Notef("paper shape: NDP ~3x better than DCTCP at the median, ~4x at p99; DCQCN slightly worse than DCTCP; MPTCP ~10x worse")
}

// fig16 sweeps incast fan-in with 450KB responses across the transports,
// reporting first- and last-flow completion times.
func fig16(o Options, r *Result) {
	k := o.pick(4, 8, 12)
	hosts := k * k * k / 4
	var fanins []int
	for _, n := range []int{8, 16, 64, 128, 256, 431} {
		if n <= hosts-1 {
			fanins = append(fanins, n)
		}
	}
	if o.Scale < 0.4 && len(fanins) > 3 {
		fanins = fanins[:3]
	}
	const size = 450_000
	t := &stats.Table{Header: []string{"senders", "optimal_ms", "protocol", "first_ms", "last_ms"}}

	for _, nsend := range fanins {
		optimal := sim.FromSeconds(float64(nsend) * size * 8 / 10e9)
		senders := workload.IncastSenders(0, nsend, hosts)
		deadline := optimal*20 + 500*sim.Millisecond

		{ // NDP
			n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: o.Seed}, core.DefaultSwitchConfig(9000), core.DefaultConfig())
			var fcts stats.Dist
			n.Incast(0, senders, size, &fcts)
			n.EL().RunUntil(deadline)
			t.AddRow(fmt.Sprint(nsend), f4(optimal.Millis()), "NDP", f4(fcts.Min()/1000), f4(fcts.Max()/1000))
		}
		{ // DCTCP
			tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: o.Seed}, dctcp.QueueFactory(9000))
			var fcts stats.Dist
			for _, s := range senders {
				start := tn.EL().Now()
				tn.Flow(s, 0, size, dctcp.SenderConfig(9000), func(rcv *tcp.Receiver) {
					fcts.Add((rcv.CompletedAt - start).Millis())
				})
			}
			tn.EL().RunUntil(deadline)
			t.AddRow(fmt.Sprint(nsend), f4(optimal.Millis()), "DCTCP", f4(fcts.Min()), f4(fcts.Max()))
		}
		{ // MPTCP (fine-grained RTO per Vasudevan et al.)
			tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: o.Seed}, dropTail(200*9000))
			cfg := mptcp.DefaultConfig()
			cfg.TCP.MinRTO = 2 * sim.Millisecond
			var fcts stats.Dist
			for _, s := range senders {
				start := tn.EL().Now()
				tn.MPTCPFlow(s, 0, size, cfg, func(f *mptcp.Flow) {
					fcts.Add((f.CompletedAt - start).Millis())
				})
			}
			tn.EL().RunUntil(deadline)
			t.AddRow(fmt.Sprint(nsend), f4(optimal.Millis()), "MPTCP", f4(fcts.Min()), f4(fcts.Max()))
		}
		{ // DCQCN
			dn := BuildDCQCN(FatTreeBuilder(k), topo.Config{Seed: o.Seed}, 9000)
			var fcts stats.Dist
			for _, s := range senders {
				start := dn.EL().Now()
				dn.Flow(s, 0, size, func(rcv *dcqcn.Receiver) {
					fcts.Add((rcv.CompletedAt - start).Millis())
				})
			}
			dn.EL().RunUntil(deadline)
			dn.StopAll()
			t.AddRow(fmt.Sprint(nsend), f4(optimal.Millis()), "DCQCN", f4(fcts.Min()), f4(fcts.Max()))
		}
	}
	r.AddTable("450KB incast completion", t)
	r.Notef("paper shape: NDP/DCQCN ~1%% over optimal and tight (last <= 1.2x first); DCTCP ~5%% with up to 7x spread; MPTCP erratic")
}

func f4(v float64) string { return fmt.Sprintf("%.4g", v) }

// fig17 sweeps initial window against switch buffer configurations on the
// permutation matrix.
func fig17(o Options, r *Result) {
	k := o.pick(4, 8, 8)
	warm := 3 * sim.Millisecond
	window := sim.Time(o.pick(5, 8, 15)) * sim.Millisecond
	iws := []int{5, 10, 15, 20, 25, 30, 40}
	if o.Scale < 0.4 {
		iws = []int{10, 20, 30}
	}
	type bufCfg struct {
		name    string
		mtu     int
		packets int
	}
	bufs := []bufCfg{
		{"6pkt_9K", 9000, 6},
		{"8pkt_9K", 9000, 8},
		{"10pkt_9K", 9000, 10},
		{"8pkt_1.5K", 1500, 8},
	}
	t := &stats.Table{Header: []string{"IW", "6pkt_9K%", "8pkt_9K%", "10pkt_9K%", "8pkt_1.5K%"}}
	for _, iw := range iws {
		row := []string{fmt.Sprint(iw)}
		for _, b := range bufs {
			scfg := core.SwitchConfig{DataCapPackets: b.packets, HeaderCapBytes: b.packets * b.mtu, HeaderWRR: 10}
			hcfg := core.DefaultConfig()
			hcfg.MTU = b.mtu
			hcfg.IW = iw
			n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: o.Seed}, scfg, hcfg)
			dst := workload.Permutation(n.C.NumHosts(), sim.NewRand(o.Seed))
			senders := n.Permutation(dst)
			meters := make([]*meter, len(senders))
			for i, s := range senders {
				s := s
				meters[i] = newMeter(func() int64 { return s.AckedBytes() })
			}
			g := runWarmMeasure(n.EL(), warm, window, meters)
			row = append(row, f4(100*utilization(g, 10e9)))
		}
		t.AddRow(row...)
	}
	r.AddTable("permutation utilization (%)", t)
	r.Notef("paper shape: IW~20 needed to fill the network; 8pkt buffers >=95%%, 6pkt ~90%%; very large IW slightly hurts; 1.5K MTU needs IW~30")
}

// fig19 runs a long flow to one host while a 64:1 incast hits its ToR
// neighbour, and reports goodput over time for both.
func fig19(o Options, r *Result) {
	const (
		bin        = sim.Millisecond
		incastAt   = 10 * sim.Millisecond
		endAt      = 45 * sim.Millisecond
		incastSize = 900_000
	)
	nIncast := o.pick(16, 32, 64)

	type result struct{ long, in *stats.TimeSeries }
	runProto := func(proto string) result {
		res := result{long: stats.NewTimeSeries(bin), in: stats.NewTimeSeries(bin)}
		switch proto {
		case "NDP":
			n := BuildNDP(FatTreeBuilder(4), topo.Config{Seed: o.Seed},
				core.DefaultSwitchConfig(9000), core.DefaultConfig())
			n.Transfer(12, 0, -1, core.FlowOpts{
				OnReceiverData: func(b int64) { res.long.Record(n.EL().Now(), b) },
			})
			n.EL().At(incastAt, func() {
				hosts := n.C.NumHosts()
				for i := 0; i < nIncast; i++ {
					src := 2 + (i % (hosts - 2))
					n.Transfer(src, 1, incastSize, core.FlowOpts{
						OnReceiverData: func(b int64) { res.in.Record(n.EL().Now(), b) },
					})
				}
			})
			n.EL().RunUntil(endAt)
		case "DCTCP":
			tn := BuildTCPFamily(FatTreeBuilder(4), topo.Config{Seed: o.Seed}, dctcp.QueueFactory(9000))
			_, lr := tn.Flow(12, 0, -1, dctcp.SenderConfig(9000), nil)
			lr.OnData = func(b int64) { res.long.Record(tn.EL().Now(), b) }
			tn.EL().At(incastAt, func() {
				hosts := tn.C.NumHosts()
				for i := 0; i < nIncast; i++ {
					src := 2 + (i % (hosts - 2))
					_, ir := tn.Flow(src, 1, incastSize, dctcp.SenderConfig(9000), nil)
					ir.OnData = func(b int64) { res.in.Record(tn.EL().Now(), b) }
				}
			})
			tn.EL().RunUntil(endAt)
		case "DCQCN":
			dn := BuildDCQCN(FatTreeBuilder(4), topo.Config{Seed: o.Seed}, 9000)
			_, lr := dn.Flow(12, 0, -1, nil)
			lr.OnData = func(b int64) { res.long.Record(dn.EL().Now(), b) }
			dn.EL().At(incastAt, func() {
				hosts := dn.C.NumHosts()
				for i := 0; i < nIncast; i++ {
					src := 2 + (i % (hosts - 2))
					_, ir := dn.Flow(src, 1, incastSize, nil)
					ir.OnData = func(b int64) { res.in.Record(dn.EL().Now(), b) }
				}
			})
			dn.EL().RunUntil(endAt)
			dn.StopAll()
		}
		return res
	}

	for _, proto := range []string{"DCTCP", "DCQCN", "NDP"} {
		res := runProto(proto)
		t := &stats.Table{Header: []string{"t_ms", "long_gbps", "incast_gbps"}}
		long := res.long.RateGbps()
		in := res.in.RateGbps()
		nbins := len(long)
		if len(in) > nbins {
			nbins = len(in)
		}
		at := func(xs []float64, i int) float64 {
			if i < len(xs) {
				return xs[i]
			}
			return 0
		}
		for i := 0; i < nbins; i++ {
			t.AddFloats(fmt.Sprint(i), at(long, i), at(in, i))
		}
		r.AddTable(proto+fmt.Sprintf(" (incast of %d x 900KB at t=%dms)", nIncast, incastAt/sim.Millisecond), t)
	}
	r.Notef("paper shape: DCTCP: both dip and recover slowly; DCQCN: incast finishes fast but PFC pauses batter the long flow; NDP: <1ms dip then full recovery")
}

// fig20 measures huge-incast overhead versus the best possible completion
// time, and the retransmission mechanisms (NACK vs return-to-sender).
func fig20(o Options, r *Result) {
	k := o.pick(8, 16, 16)
	if o.Full {
		k = 32
	}
	hosts := k * k * k / 4
	var fanins []int
	for _, n := range []int{1, 10, 50, 100, 400, 1000, 4000, 8000} {
		if n <= hosts-1 {
			fanins = append(fanins, n)
		}
	}
	if o.Scale < 0.4 && len(fanins) > 4 {
		fanins = fanins[:4]
	}
	const size = 270_000 // 30 packets
	iws := []int{23, 10, 1}

	over := &stats.Table{Header: []string{"senders", "iw23_over%", "iw10_over%", "iw1_over%"}}
	rtx := &stats.Table{Header: []string{"senders", "iw23_nack", "iw23_bounce", "iw10_nack", "iw10_bounce", "iw1_nack", "iw1_bounce"}}
	for _, nsend := range fanins {
		overRow := []string{fmt.Sprint(nsend)}
		rtxRow := []string{fmt.Sprint(nsend)}
		for _, iw := range iws {
			hcfg := core.DefaultConfig()
			hcfg.IW = iw
			n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: o.Seed}, core.DefaultSwitchConfig(9000), hcfg)
			senders := workload.IncastSenders(0, nsend, hosts)
			var snds []*core.Sender
			var last sim.Time
			done := 0
			for _, s := range senders {
				snd := n.Transfer(s, 0, size, core.FlowOpts{OnReceiverDone: func(rcv *core.Receiver) {
					done++
					if rcv.CompletedAt > last {
						last = rcv.CompletedAt
					}
				}})
				snds = append(snds, snd)
			}
			optimal := sim.FromSeconds(float64(nsend) * size * 8 / 10e9)
			n.EL().RunUntil(optimal*3 + sim.Second)
			var nacks, bounces, packets int64
			for _, s := range snds {
				nacks += s.RtxFromNack
				bounces += s.RtxFromBounce
				packets += s.TotalPackets()
			}
			overRow = append(overRow, f4(pct(float64(last-optimal), float64(optimal))))
			if done != len(senders) {
				overRow[len(overRow)-1] += "(!)"
			}
			rtxRow = append(rtxRow,
				f4(float64(nacks)/float64(packets)),
				f4(float64(bounces)/float64(packets)))
		}
		over.AddRow(overRow...)
		rtx.AddRow(rtxRow...)
	}
	r.AddTable("last-flow completion overhead over optimal", over)
	r.AddTable("retransmissions per packet, by mechanism", rtx)
	r.Notef("paper shape: overhead within a few %%; NACKs dominate small incasts, return-to-sender takes over above ~100 senders; mean rtx/packet ~<=1")
	if !o.Full {
		r.Notef("run with -full for the paper's 8192-host (k=32) FatTree")
	}
}

// fig21 checks receiver pull-queue fair queuing with a sender-limited
// source: A sends to B,C,D,E while F also sends to E.
func fig21(o Options, r *Result) {
	runOne := func(fifo bool) (flows []float64, fromA, toE float64) {
		hcfg := core.DefaultConfig()
		hcfg.PullFIFO = fifo
		n := BuildNDP(TwoTierBuilder(1, 6, 0), topo.Config{Seed: o.Seed},
			core.DefaultSwitchConfig(9000), hcfg)
		// A=0 -> B,C,D(1,2,3) and E(4); F=5 -> E(4).
		var senders []*core.Sender
		for _, dst := range []int{1, 2, 3, 4} {
			senders = append(senders, n.Transfer(0, dst, -1, core.FlowOpts{}))
		}
		senders = append(senders, n.Transfer(5, 4, -1, core.FlowOpts{}))
		meters := make([]*meter, len(senders))
		for i, s := range senders {
			s := s
			meters[i] = newMeter(func() int64 { return s.AckedBytes() })
		}
		g := runWarmMeasure(n.EL(), 3*sim.Millisecond, sim.Time(o.pick(5, 10, 20))*sim.Millisecond, meters)
		return g, g[0] + g[1] + g[2] + g[3], g[3] + g[4]
	}
	g, fromA, toE := runOne(false)
	t := &stats.Table{Header: []string{"flow", "gbps"}}
	names := []string{"A->B", "A->C", "A->D", "A->E", "F->E"}
	for i, name := range names {
		t.AddFloats(name, g[i])
	}
	t.AddFloats("total from A", fromA)
	t.AddFloats("total to E", toE)
	r.AddTable("fair pull queue (paper behaviour)", t)

	gf, fromAf, toEf := runOne(true)
	tf := &stats.Table{Header: []string{"flow", "gbps"}}
	for i, name := range names {
		tf.AddFloats(name, gf[i])
	}
	tf.AddFloats("total from A", fromAf)
	tf.AddFloats("total to E", toEf)
	r.AddTable("ablation: FIFO pull queue", tf)
	r.Notef("paper shape: A's four flows split A's link ~2.5G each; F fills the rest of E's link (~7.5G); both bottleneck links ~saturated")
}

// fig22 degrades one core<->agg link to 1Gb/s and compares per-flow
// throughput for NDP (with and without the path penalty), MPTCP and DCTCP.
func fig22(o Options, r *Result) {
	k := o.pick(4, 8, 8)
	warm := 3 * sim.Millisecond
	window := sim.Time(o.pick(6, 10, 20)) * sim.Millisecond
	t := &stats.Table{Header: []string{"variant", "util%", "min_gbps", "p5_gbps", "p10_gbps", "p50_gbps"}}

	addRow := func(name string, g []float64) {
		var d stats.Dist
		for _, v := range g {
			d.Add(v)
		}
		t.AddFloats(name, 100*utilization(g, 10e9), d.Min(), d.Quantile(0.05), d.Quantile(0.1), d.Median())
	}

	ndpRun := func(noPenalty bool) []float64 {
		hcfg := core.DefaultConfig()
		hcfg.DisablePathPenalty = noPenalty
		base := topo.Config{Seed: o.Seed}
		base.SwitchQueue = core.QueueFactory(core.DefaultSwitchConfig(9000), sim.NewRand(o.Seed+41))
		ft := topo.NewFatTree(k, base)
		core.WireBounce(ft.Switches)
		ft.DegradeLink(0, 0, 1e9)
		n := &NDPNet{C: ft}
		for i, h := range ft.Hosts {
			h := h
			cfg := hcfg
			cfg.Seed = o.Seed + uint64(i)*7919
			st := core.NewStack(h, func(dst int32) [][]int16 { return ft.Paths(h.ID, dst) }, cfg)
			st.Listen(nil)
			n.Stacks = append(n.Stacks, st)
		}
		dst := workload.Permutation(ft.NumHosts(), sim.NewRand(o.Seed))
		senders := n.Permutation(dst)
		meters := make([]*meter, len(senders))
		for i, s := range senders {
			s := s
			meters[i] = newMeter(func() int64 { return s.AckedBytes() })
		}
		return runWarmMeasure(n.EL(), warm, window, meters)
	}
	addRow("NDP", ndpRun(false))
	addRow("NDP no path penalty", ndpRun(true))

	{ // MPTCP
		base := topo.Config{Seed: o.Seed}
		base.SwitchQueue = dropTail(200 * 9000)
		ft := topo.NewFatTree(k, base)
		ft.DegradeLink(0, 0, 1e9)
		tn := &TCPNet{C: ft, Rand: sim.NewRand(o.Seed*48271 + 5), nextFlow: 1}
		for _, h := range ft.Hosts {
			d := fabric.NewDemux()
			h.Stack = d
			tn.Demux = append(tn.Demux, d)
		}
		dst := workload.Permutation(ft.NumHosts(), sim.NewRand(o.Seed))
		cfg := mptcp.DefaultConfig()
		meters := make([]*meter, 0, len(dst))
		for src, d := range dst {
			f := tn.MPTCPFlow(src, d, -1, cfg, nil)
			meters = append(meters, newMeter(f.AckedBytes))
		}
		addRow("MPTCP", runWarmMeasure(tn.EL(), warm, window, meters))
	}
	{ // DCTCP
		base := topo.Config{Seed: o.Seed}
		base.SwitchQueue = dctcp.QueueFactory(9000)
		ft := topo.NewFatTree(k, base)
		ft.DegradeLink(0, 0, 1e9)
		tn := &TCPNet{C: ft, Rand: sim.NewRand(o.Seed*48271 + 5), nextFlow: 1}
		for _, h := range ft.Hosts {
			d := fabric.NewDemux()
			h.Stack = d
			tn.Demux = append(tn.Demux, d)
		}
		dst := workload.Permutation(ft.NumHosts(), sim.NewRand(o.Seed))
		meters := make([]*meter, 0, len(dst))
		for src, d := range dst {
			snd, _ := tn.Flow(src, d, -1, dctcp.SenderConfig(9000), nil)
			meters = append(meters, newMeter(func() int64 { return snd.AckedBytes }))
		}
		addRow("DCTCP", runWarmMeasure(tn.EL(), warm, window, meters))
	}
	r.AddTable("permutation with one agg->core link at 1Gb/s", t)
	r.Notef("paper shape: NDP and MPTCP route around the failure; NDP without the path penalty leaves ~15 flows near 3G; DCTCP's worst flow ~0.4G")
}
