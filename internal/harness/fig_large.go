package harness

import (
	"fmt"

	"ndp/internal/core"
	"ndp/internal/dcqcn"
	"ndp/internal/dctcp"
	"ndp/internal/mptcp"
	"ndp/internal/sim"
	"ndp/internal/stats"
	"ndp/internal/tcp"
	"ndp/internal/topo"
	"ndp/internal/workload"
)

func init() {
	run("fig14", "Per-flow throughput under a permutation traffic matrix", fig14)
	run("fig15", "90KB FCTs with random background load", fig15)
	run("fig16", "Incast completion time vs number of senders", fig16)
	run("fig17", "Permutation utilization vs IW and switch buffer size", fig17)
	run("fig19", "Collateral damage of a 64:1 incast on a neighbouring long flow", fig19)
	run("fig20", "Huge-incast overhead and retransmission mechanisms", fig20)
	run("fig21", "Sender-limited traffic and pull-queue fair queuing", fig21)
	run("fig22", "Permutation with a degraded 1Gb/s core link", fig22)
}

// The four permGoodput helpers each run the permutation matrix under one
// transport on a k-ary FatTree and return per-flow goodput in Gb/s. Each is
// a complete simulation derived from seed alone, so fig14/fig17/t-limits
// can schedule them as independent sweep jobs.

// permGoodputNDP: 8-packet NDP switch queues.
func permGoodputNDP(k int, seed uint64, warm, window sim.Time) []float64 {
	n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: seed},
		core.DefaultSwitchConfig(9000), core.DefaultConfig())
	dst := workload.Permutation(n.C.NumHosts(), sim.NewRand(seed))
	return runWarmMeasure(n.EL(), warm, window, senderMeters(n.Permutation(dst)))
}

// permGoodputMPTCP: 200-packet drop-tail, 8 subflows on distinct paths.
func permGoodputMPTCP(k int, seed uint64, warm, window sim.Time) []float64 {
	tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: seed}, dropTail(200*9000), mptcp.DefaultConfig().TCP)
	dst := workload.Permutation(tn.C.NumHosts(), sim.NewRand(seed))
	cfg := mptcp.DefaultConfig()
	meters := make([]*meter, 0, len(dst))
	for src, d := range dst {
		f := tn.MPTCPFlow(src, d, -1, cfg, nil)
		meters = append(meters, newMeter(f.AckedBytes))
	}
	return runWarmMeasure(tn.EL(), warm, window, meters)
}

// permGoodputDCTCP: ECN queues, one fixed path per flow (ECMP stand-in).
func permGoodputDCTCP(k int, seed uint64, warm, window sim.Time) []float64 {
	tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: seed}, dctcp.QueueFactory(9000), dctcp.SenderConfig(9000))
	dst := workload.Permutation(tn.C.NumHosts(), sim.NewRand(seed))
	meters := make([]*meter, 0, len(dst))
	for src, d := range dst {
		snd, _ := tn.Flow(src, d, -1, dctcp.SenderConfig(9000), nil)
		meters = append(meters, newMeter(func() int64 { return snd.AckedBytes }))
	}
	return runWarmMeasure(tn.EL(), warm, window, meters)
}

// permGoodputDCQCN: lossless fabric, rate-based control, single path.
func permGoodputDCQCN(k int, seed uint64, warm, window sim.Time) []float64 {
	dn := BuildDCQCN(FatTreeBuilder(k), topo.Config{Seed: seed}, 9000)
	dst := workload.Permutation(dn.C.NumHosts(), sim.NewRand(seed))
	meters := make([]*meter, 0, len(dst))
	for src, d := range dst {
		_, rcv := dn.Flow(src, d, -1, nil)
		meters = append(meters, newMeter(func() int64 { return rcv.Bytes }))
	}
	g := runWarmMeasure(dn.EL(), warm, window, meters)
	dn.StopAll()
	return g
}

// fig14 reports per-flow throughput statistics for the permutation matrix.
// One job per transport; all four share one seed so they race on the same
// permutation.
func fig14(o Options, r *Result) {
	k := o.pick(4, 8, 12)
	warm := 3 * sim.Millisecond
	window := sim.Time(o.pick(6, 10, 20)) * sim.Millisecond

	protos := []struct {
		name string
		run  func(k int, seed uint64, warm, window sim.Time) []float64
	}{
		{"NDP", permGoodputNDP},
		{"MPTCP", permGoodputMPTCP},
		{"DCTCP", permGoodputDCTCP},
		{"DCQCN", permGoodputDCQCN},
	}
	jobs := make([]Job[[]float64], len(protos))
	for i, p := range protos {
		jobs[i] = NewJob("fig14/"+p.name, o.Seed, func(seed uint64) []float64 {
			return p.run(k, seed, warm, window)
		})
	}
	res := RunJobs(o, jobs)

	t := &stats.Table{Header: []string{"protocol", "util%", "min_gbps", "p10_gbps", "p50_gbps", "mean_gbps", "jain"}}
	for i, p := range protos {
		g := res[i]
		var d stats.Dist
		for _, v := range g {
			d.Add(v)
		}
		t.AddFloats(p.name, 100*utilization(g, 10e9),
			d.Min(), d.Quantile(0.1), d.Median(), d.Mean(), stats.JainIndex(g))
	}
	r.AddTable(fmt.Sprintf("permutation on %d-host FatTree", (k*k*k)/4), t)
	r.Notef("paper shape: NDP >=92%% with worst flow ~9G; MPTCP ~89%%; DCTCP/DCQCN ~40%% with <1G stragglers from ECMP collisions")
}

// fig15 measures FCTs of repeated 90KB transfers between two otherwise-idle
// hosts while every other host sources four long-running background flows.
// One job per transport.
func fig15(o Options, r *Result) {
	k := o.pick(4, 8, 12)
	deadline := sim.Time(o.pick(15, 30, 60)) * sim.Millisecond
	const probeSrc = 0

	bgDst := func(numHosts int, rand *sim.Rand, src, probeDst int) int {
		for {
			d := rand.Intn(numHosts)
			if d != src && d != probeSrc && d != probeDst {
				return d
			}
		}
	}
	fctRow := func(name string, fcts *stats.Dist) Row {
		return Row{name, f4(fcts.Median()), f4(fcts.Quantile(0.9)), f4(fcts.Quantile(0.99)), fmt.Sprint(fcts.N())}
	}

	jobs := []Job[Row]{
		NewJob("fig15/NDP", o.Seed, func(seed uint64) Row {
			n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: seed},
				core.DefaultSwitchConfig(9000), core.DefaultConfig())
			hosts := n.C.NumHosts()
			probeDst := hosts / 2
			rand := sim.NewRand(seed + 3)
			for h := 0; h < hosts; h++ {
				if h == probeSrc || h == probeDst {
					continue
				}
				for c := 0; c < 4; c++ {
					n.Transfer(h, bgDst(hosts, rand, h, probeDst), -1, core.FlowOpts{})
				}
			}
			var fcts stats.Dist
			var probe func()
			probe = func() {
				start := n.EL().Now()
				n.Transfer(probeSrc, probeDst, 90_000, core.FlowOpts{OnReceiverDone: func(rcv *core.Receiver) {
					fcts.Add((rcv.CompletedAt - start).Millis())
					probe()
				}})
			}
			probe()
			n.EL().RunUntil(deadline)
			return fctRow("NDP", &fcts)
		}),
		NewJob("fig15/DCTCP", o.Seed, func(seed uint64) Row {
			tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: seed}, dctcp.QueueFactory(9000), dctcp.SenderConfig(9000))
			hosts := tn.C.NumHosts()
			probeDst := hosts / 2
			rand := sim.NewRand(seed + 3)
			for h := 0; h < hosts; h++ {
				if h == probeSrc || h == probeDst {
					continue
				}
				for c := 0; c < 4; c++ {
					tn.Flow(h, bgDst(hosts, rand, h, probeDst), -1, dctcp.SenderConfig(9000), nil)
				}
			}
			var fcts stats.Dist
			var probe func()
			probe = func() {
				start := tn.EL().Now()
				tn.Flow(probeSrc, probeDst, 90_000, dctcp.SenderConfig(9000), func(rcv *tcp.Receiver) {
					fcts.Add((rcv.CompletedAt - start).Millis())
					probe()
				})
			}
			probe()
			tn.EL().RunUntil(deadline)
			return fctRow("DCTCP", &fcts)
		}),
		NewJob("fig15/DCQCN", o.Seed, func(seed uint64) Row {
			dn := BuildDCQCN(FatTreeBuilder(k), topo.Config{Seed: seed}, 9000)
			hosts := dn.C.NumHosts()
			probeDst := hosts / 2
			rand := sim.NewRand(seed + 3)
			for h := 0; h < hosts; h++ {
				if h == probeSrc || h == probeDst {
					continue
				}
				for c := 0; c < 4; c++ {
					dn.Flow(h, bgDst(hosts, rand, h, probeDst), -1, nil)
				}
			}
			var fcts stats.Dist
			var probe func()
			probe = func() {
				start := dn.EL().Now()
				dn.Flow(probeSrc, probeDst, 90_000, func(rcv *dcqcn.Receiver) {
					fcts.Add((rcv.CompletedAt - start).Millis())
					probe()
				})
			}
			probe()
			dn.EL().RunUntil(deadline)
			dn.StopAll()
			return fctRow("DCQCN", &fcts)
		}),
		NewJob("fig15/MPTCP", o.Seed, func(seed uint64) Row {
			tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: seed}, dropTail(200*9000), mptcp.DefaultConfig().TCP)
			hosts := tn.C.NumHosts()
			probeDst := hosts / 2
			rand := sim.NewRand(seed + 3)
			cfg := mptcp.DefaultConfig()
			for h := 0; h < hosts; h++ {
				if h == probeSrc || h == probeDst {
					continue
				}
				for c := 0; c < 4; c++ {
					tn.MPTCPFlow(h, bgDst(hosts, rand, h, probeDst), -1, cfg, nil)
				}
			}
			var fcts stats.Dist
			var probe func()
			probe = func() {
				start := tn.EL().Now()
				tn.MPTCPFlow(probeSrc, probeDst, 90_000, cfg, func(f *mptcp.Flow) {
					fcts.Add((f.CompletedAt - start).Millis())
					probe()
				})
			}
			probe()
			tn.EL().RunUntil(deadline)
			return fctRow("MPTCP", &fcts)
		}),
	}

	t := &stats.Table{Header: []string{"protocol", "p50_ms", "p90_ms", "p99_ms", "n"}}
	for _, row := range RunJobs(o, jobs) {
		t.AddRow(row...)
	}
	r.AddTable("90KB probe FCTs under background load", t)
	r.Notef("paper shape: NDP ~3x better than DCTCP at the median, ~4x at p99; DCQCN slightly worse than DCTCP; MPTCP ~10x worse")
}

// fig16 sweeps incast fan-in with 450KB responses across the transports,
// reporting first- and last-flow completion times. One job per (fan-in,
// transport) pair; the four transports of a fan-in share that fan-in's
// derived seed.
func fig16(o Options, r *Result) {
	k := o.pick(4, 8, 12)
	hosts := k * k * k / 4
	var fanins []int
	for _, n := range []int{8, 16, 64, 128, 256, 431} {
		if n <= hosts-1 {
			fanins = append(fanins, n)
		}
	}
	if o.Scale < 0.4 && len(fanins) > 3 {
		fanins = fanins[:3]
	}
	const size = 450_000

	var jobs []Job[Row]
	seeds := SweepSeeds(o.Seed, len(fanins))
	for fi, nsend := range fanins {
		nsend := nsend
		optimal := sim.FromSeconds(float64(nsend) * size * 8 / 10e9)
		senders := workload.IncastSenders(0, nsend, hosts)
		deadline := optimal*20 + 500*sim.Millisecond
		pre := []string{fmt.Sprint(nsend), f4(optimal.Millis())}

		jobs = append(jobs,
			NewJob(fmt.Sprintf("fig16/%d/NDP", nsend), seeds[fi], func(seed uint64) Row {
				n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: seed}, core.DefaultSwitchConfig(9000), core.DefaultConfig())
				var fcts stats.Dist
				n.Incast(0, senders, size, &fcts)
				n.EL().RunUntil(deadline)
				return append(append(Row{}, pre...), "NDP", f4(fcts.Min()/1000), f4(fcts.Max()/1000))
			}),
			NewJob(fmt.Sprintf("fig16/%d/DCTCP", nsend), seeds[fi], func(seed uint64) Row {
				tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: seed}, dctcp.QueueFactory(9000), dctcp.SenderConfig(9000))
				var fcts stats.Dist
				for _, s := range senders {
					start := tn.EL().Now()
					tn.Flow(s, 0, size, dctcp.SenderConfig(9000), func(rcv *tcp.Receiver) {
						fcts.Add((rcv.CompletedAt - start).Millis())
					})
				}
				tn.EL().RunUntil(deadline)
				return append(append(Row{}, pre...), "DCTCP", f4(fcts.Min()), f4(fcts.Max()))
			}),
			NewJob(fmt.Sprintf("fig16/%d/MPTCP", nsend), seeds[fi], func(seed uint64) Row {
				// Fine-grained RTO per Vasudevan et al.
				tn := BuildTCPFamily(FatTreeBuilder(k), topo.Config{Seed: seed}, dropTail(200*9000), mptcp.DefaultConfig().TCP)
				cfg := mptcp.DefaultConfig()
				cfg.TCP.MinRTO = 2 * sim.Millisecond
				var fcts stats.Dist
				for _, s := range senders {
					start := tn.EL().Now()
					tn.MPTCPFlow(s, 0, size, cfg, func(f *mptcp.Flow) {
						fcts.Add((f.CompletedAt - start).Millis())
					})
				}
				tn.EL().RunUntil(deadline)
				return append(append(Row{}, pre...), "MPTCP", f4(fcts.Min()), f4(fcts.Max()))
			}),
			NewJob(fmt.Sprintf("fig16/%d/DCQCN", nsend), seeds[fi], func(seed uint64) Row {
				dn := BuildDCQCN(FatTreeBuilder(k), topo.Config{Seed: seed}, 9000)
				var fcts stats.Dist
				for _, s := range senders {
					start := dn.EL().Now()
					dn.Flow(s, 0, size, func(rcv *dcqcn.Receiver) {
						fcts.Add((rcv.CompletedAt - start).Millis())
					})
				}
				dn.EL().RunUntil(deadline)
				dn.StopAll()
				return append(append(Row{}, pre...), "DCQCN", f4(fcts.Min()), f4(fcts.Max()))
			}),
		)
	}

	t := &stats.Table{Header: []string{"senders", "optimal_ms", "protocol", "first_ms", "last_ms"}}
	for _, row := range RunJobs(o, jobs) {
		t.AddRow(row...)
	}
	r.AddTable("450KB incast completion", t)
	r.Notef("paper shape: NDP/DCQCN ~1%% over optimal and tight (last <= 1.2x first); DCTCP ~5%% with up to 7x spread; MPTCP erratic")
}

func f4(v float64) string { return fmt.Sprintf("%.4g", v) }

// fig17 sweeps initial window against switch buffer configurations on the
// permutation matrix. One job per (IW, buffer) cell; every cell shares the
// experiment seed so all cells race on the same permutation.
func fig17(o Options, r *Result) {
	k := o.pick(4, 8, 8)
	warm := 3 * sim.Millisecond
	window := sim.Time(o.pick(5, 8, 15)) * sim.Millisecond
	iws := []int{5, 10, 15, 20, 25, 30, 40}
	if o.Scale < 0.4 {
		iws = []int{10, 20, 30}
	}
	type bufCfg struct {
		name    string
		mtu     int
		packets int
	}
	bufs := []bufCfg{
		{"6pkt_9K", 9000, 6},
		{"8pkt_9K", 9000, 8},
		{"10pkt_9K", 9000, 10},
		{"8pkt_1.5K", 1500, 8},
	}

	var jobs []Job[float64]
	for _, iw := range iws {
		for _, b := range bufs {
			iw, b := iw, b
			jobs = append(jobs, NewJob(fmt.Sprintf("fig17/iw%d/%s", iw, b.name), o.Seed,
				func(seed uint64) float64 {
					scfg := core.SwitchConfig{DataCapPackets: b.packets, HeaderCapBytes: b.packets * b.mtu, HeaderWRR: 10}
					hcfg := core.DefaultConfig()
					hcfg.MTU = b.mtu
					hcfg.IW = iw
					n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: seed}, scfg, hcfg)
					dst := workload.Permutation(n.C.NumHosts(), sim.NewRand(seed))
					g := runWarmMeasure(n.EL(), warm, window, senderMeters(n.Permutation(dst)))
					return 100 * utilization(g, 10e9)
				}))
		}
	}
	utils := RunJobs(o, jobs)

	t := &stats.Table{Header: []string{"IW", "6pkt_9K%", "8pkt_9K%", "10pkt_9K%", "8pkt_1.5K%"}}
	for i, iw := range iws {
		row := Row{fmt.Sprint(iw)}
		for j := range bufs {
			row = append(row, f4(utils[i*len(bufs)+j]))
		}
		t.AddRow(row...)
	}
	r.AddTable("permutation utilization (%)", t)
	r.Notef("paper shape: IW~20 needed to fill the network; 8pkt buffers >=95%%, 6pkt ~90%%; very large IW slightly hurts; 1.5K MTU needs IW~30")
}

// fig19 runs a long flow to one host while a 64:1 incast hits its ToR
// neighbour, and reports goodput over time for both. One job per transport.
func fig19(o Options, r *Result) {
	const (
		bin        = sim.Millisecond
		incastAt   = 10 * sim.Millisecond
		endAt      = 45 * sim.Millisecond
		incastSize = 900_000
	)
	nIncast := o.pick(16, 32, 64)

	type series struct{ long, in *stats.TimeSeries }
	protos := []string{"DCTCP", "DCQCN", "NDP"}
	jobs := make([]Job[series], len(protos))
	for i, proto := range protos {
		proto := proto
		jobs[i] = NewJob("fig19/"+proto, o.Seed, func(seed uint64) series {
			res := series{long: stats.NewTimeSeries(bin), in: stats.NewTimeSeries(bin)}
			switch proto {
			case "NDP":
				n := BuildNDP(FatTreeBuilder(4), topo.Config{Seed: seed},
					core.DefaultSwitchConfig(9000), core.DefaultConfig())
				n.Transfer(12, 0, -1, core.FlowOpts{
					OnReceiverData: func(b int64) { res.long.Record(n.EL().Now(), b) },
				})
				n.EL().At(incastAt, func() {
					hosts := n.C.NumHosts()
					for i := 0; i < nIncast; i++ {
						src := 2 + (i % (hosts - 2))
						n.Transfer(src, 1, incastSize, core.FlowOpts{
							OnReceiverData: func(b int64) { res.in.Record(n.EL().Now(), b) },
						})
					}
				})
				n.EL().RunUntil(endAt)
			case "DCTCP":
				tn := BuildTCPFamily(FatTreeBuilder(4), topo.Config{Seed: seed}, dctcp.QueueFactory(9000), dctcp.SenderConfig(9000))
				_, lr := tn.Flow(12, 0, -1, dctcp.SenderConfig(9000), nil)
				lr.OnData = func(b int64) { res.long.Record(tn.EL().Now(), b) }
				tn.EL().At(incastAt, func() {
					hosts := tn.C.NumHosts()
					for i := 0; i < nIncast; i++ {
						src := 2 + (i % (hosts - 2))
						_, ir := tn.Flow(src, 1, incastSize, dctcp.SenderConfig(9000), nil)
						ir.OnData = func(b int64) { res.in.Record(tn.EL().Now(), b) }
					}
				})
				tn.EL().RunUntil(endAt)
			case "DCQCN":
				dn := BuildDCQCN(FatTreeBuilder(4), topo.Config{Seed: seed}, 9000)
				_, lr := dn.Flow(12, 0, -1, nil)
				lr.OnData = func(b int64) { res.long.Record(dn.EL().Now(), b) }
				dn.EL().At(incastAt, func() {
					hosts := dn.C.NumHosts()
					for i := 0; i < nIncast; i++ {
						src := 2 + (i % (hosts - 2))
						_, ir := dn.Flow(src, 1, incastSize, nil)
						ir.OnData = func(b int64) { res.in.Record(dn.EL().Now(), b) }
					}
				})
				dn.EL().RunUntil(endAt)
				dn.StopAll()
			}
			return res
		})
	}

	for i, res := range RunJobs(o, jobs) {
		t := &stats.Table{Header: []string{"t_ms", "long_gbps", "incast_gbps"}}
		long := res.long.RateGbps()
		in := res.in.RateGbps()
		nbins := len(long)
		if len(in) > nbins {
			nbins = len(in)
		}
		at := func(xs []float64, i int) float64 {
			if i < len(xs) {
				return xs[i]
			}
			return 0
		}
		for bi := 0; bi < nbins; bi++ {
			t.AddFloats(fmt.Sprint(bi), at(long, bi), at(in, bi))
		}
		r.AddTable(protos[i]+fmt.Sprintf(" (incast of %d x 900KB at t=%dms)", nIncast, incastAt/sim.Millisecond), t)
	}
	r.Notef("paper shape: DCTCP: both dip and recover slowly; DCQCN: incast finishes fast but PFC pauses batter the long flow; NDP: <1ms dip then full recovery")
}

// fig20 measures huge-incast overhead versus the best possible completion
// time, and the retransmission mechanisms (NACK vs return-to-sender). One
// job per (fan-in, IW) point; the three IWs of a fan-in share its seed.
func fig20(o Options, r *Result) {
	k := o.pick(8, 16, 16)
	if o.Full {
		k = 32
	}
	hosts := k * k * k / 4
	var fanins []int
	for _, n := range []int{1, 10, 50, 100, 400, 1000, 4000, 8000} {
		if n <= hosts-1 {
			fanins = append(fanins, n)
		}
	}
	if o.Scale < 0.4 && len(fanins) > 4 {
		fanins = fanins[:4]
	}
	const size = 270_000 // 30 packets
	iws := []int{23, 10, 1}

	type point struct {
		overPct      float64
		incomplete   bool
		nackPerPkt   float64
		bouncePerPkt float64
	}
	var jobs []Job[point]
	seeds := SweepSeeds(o.Seed, len(fanins))
	for fi, nsend := range fanins {
		for _, iw := range iws {
			nsend, iw := nsend, iw
			jobs = append(jobs, NewJob(fmt.Sprintf("fig20/%d/iw%d", nsend, iw), seeds[fi],
				func(seed uint64) point {
					hcfg := core.DefaultConfig()
					hcfg.IW = iw
					n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: seed}, core.DefaultSwitchConfig(9000), hcfg)
					senders := workload.IncastSenders(0, nsend, hosts)
					var snds []*core.Sender
					var last sim.Time
					done := 0
					for _, s := range senders {
						snd := n.Transfer(s, 0, size, core.FlowOpts{OnReceiverDone: func(rcv *core.Receiver) {
							done++
							if rcv.CompletedAt > last {
								last = rcv.CompletedAt
							}
						}})
						snds = append(snds, snd)
					}
					optimal := sim.FromSeconds(float64(nsend) * size * 8 / 10e9)
					n.EL().RunUntil(optimal*3 + sim.Second)
					var nacks, bounces, packets int64
					for _, s := range snds {
						nacks += s.RtxFromNack
						bounces += s.RtxFromBounce
						packets += s.TotalPackets()
					}
					return point{
						overPct:      pct(float64(last-optimal), float64(optimal)),
						incomplete:   done != len(senders),
						nackPerPkt:   float64(nacks) / float64(packets),
						bouncePerPkt: float64(bounces) / float64(packets),
					}
				}))
		}
	}
	points := RunJobs(o, jobs)

	over := &stats.Table{Header: []string{"senders", "iw23_over%", "iw10_over%", "iw1_over%"}}
	rtx := &stats.Table{Header: []string{"senders", "iw23_nack", "iw23_bounce", "iw10_nack", "iw10_bounce", "iw1_nack", "iw1_bounce"}}
	for fi, nsend := range fanins {
		overRow := Row{fmt.Sprint(nsend)}
		rtxRow := Row{fmt.Sprint(nsend)}
		for ii := range iws {
			p := points[fi*len(iws)+ii]
			cell := f4(p.overPct)
			if p.incomplete {
				cell += "(!)"
			}
			overRow = append(overRow, cell)
			rtxRow = append(rtxRow, f4(p.nackPerPkt), f4(p.bouncePerPkt))
		}
		over.AddRow(overRow...)
		rtx.AddRow(rtxRow...)
	}
	r.AddTable("last-flow completion overhead over optimal", over)
	r.AddTable("retransmissions per packet, by mechanism", rtx)
	r.Notef("paper shape: overhead within a few %%; NACKs dominate small incasts, return-to-sender takes over above ~100 senders; mean rtx/packet ~<=1")
	if !o.Full {
		r.Notef("run with -full for the paper's 8192-host (k=32) FatTree")
	}
}

// fig21 checks receiver pull-queue fair queuing with a sender-limited
// source: A sends to B,C,D,E while F also sends to E. Two jobs: the paper
// behaviour and the FIFO ablation.
func fig21(o Options, r *Result) {
	type result struct {
		flows      []float64
		fromA, toE float64
	}
	runOne := func(seed uint64, fifo bool) result {
		hcfg := core.DefaultConfig()
		hcfg.PullFIFO = fifo
		n := BuildNDP(TwoTierBuilder(1, 6, 0), topo.Config{Seed: seed},
			core.DefaultSwitchConfig(9000), hcfg)
		// A=0 -> B,C,D(1,2,3) and E(4); F=5 -> E(4).
		var senders []*core.Sender
		for _, dst := range []int{1, 2, 3, 4} {
			senders = append(senders, n.Transfer(0, dst, -1, core.FlowOpts{}))
		}
		senders = append(senders, n.Transfer(5, 4, -1, core.FlowOpts{}))
		g := runWarmMeasure(n.EL(), 3*sim.Millisecond, sim.Time(o.pick(5, 10, 20))*sim.Millisecond,
			senderMeters(senders))
		return result{flows: g, fromA: g[0] + g[1] + g[2] + g[3], toE: g[3] + g[4]}
	}
	res := RunJobs(o, []Job[result]{
		NewJob("fig21/fair", o.Seed, func(seed uint64) result { return runOne(seed, false) }),
		NewJob("fig21/fifo", o.Seed, func(seed uint64) result { return runOne(seed, true) }),
	})

	names := []string{"A->B", "A->C", "A->D", "A->E", "F->E"}
	labels := []string{"fair pull queue (paper behaviour)", "ablation: FIFO pull queue"}
	for i, g := range res {
		t := &stats.Table{Header: []string{"flow", "gbps"}}
		for fi, name := range names {
			t.AddFloats(name, g.flows[fi])
		}
		t.AddFloats("total from A", g.fromA)
		t.AddFloats("total to E", g.toE)
		r.AddTable(labels[i], t)
	}
	r.Notef("paper shape: A's four flows split A's link ~2.5G each; F fills the rest of E's link (~7.5G); both bottleneck links ~saturated")
}

// fig22 degrades one core<->agg link to 1Gb/s and compares per-flow
// throughput for NDP (with and without the path penalty), MPTCP and DCTCP.
// One job per variant.
func fig22(o Options, r *Result) {
	k := o.pick(4, 8, 8)
	warm := 3 * sim.Millisecond
	window := sim.Time(o.pick(6, 10, 20)) * sim.Millisecond

	ndpRun := func(seed uint64, noPenalty bool) []float64 {
		hcfg := core.DefaultConfig()
		hcfg.DisablePathPenalty = noPenalty
		base := topo.Config{Seed: seed}
		base.SwitchQueue = core.QueueFactory(core.DefaultSwitchConfig(9000), seed+41)
		ft := topo.NewFatTree(k, base)
		core.WireBounce(ft.Switches)
		ft.DegradeLink(0, 0, 1e9)
		n := &NDPNet{C: ft}
		for i, h := range ft.Hosts {
			h := h
			cfg := hcfg
			cfg.Seed = seed + uint64(i)*7919
			st := core.NewStack(h, func(dst int32) [][]int16 { return ft.Paths(h.ID, dst) }, cfg)
			st.Listen(nil)
			n.Stacks = append(n.Stacks, st)
		}
		dst := workload.Permutation(ft.NumHosts(), sim.NewRand(seed))
		return runWarmMeasure(n.EL(), warm, window, senderMeters(n.Permutation(dst)))
	}

	jobs := []Job[[]float64]{
		NewJob("fig22/NDP", o.Seed, func(seed uint64) []float64 { return ndpRun(seed, false) }),
		NewJob("fig22/NDP-no-penalty", o.Seed, func(seed uint64) []float64 { return ndpRun(seed, true) }),
		NewJob("fig22/MPTCP", o.Seed, func(seed uint64) []float64 {
			base := topo.Config{Seed: seed}
			base.SwitchQueue = dropTail(200 * 9000)
			ft := topo.NewFatTree(k, base)
			ft.DegradeLink(0, 0, 1e9)
			tn := newTCPNet(ft, tcp.Config{}, seed)
			dst := workload.Permutation(ft.NumHosts(), sim.NewRand(seed))
			cfg := mptcp.DefaultConfig()
			meters := make([]*meter, 0, len(dst))
			for src, d := range dst {
				f := tn.MPTCPFlow(src, d, -1, cfg, nil)
				meters = append(meters, newMeter(f.AckedBytes))
			}
			return runWarmMeasure(tn.EL(), warm, window, meters)
		}),
		NewJob("fig22/DCTCP", o.Seed, func(seed uint64) []float64 {
			base := topo.Config{Seed: seed}
			base.SwitchQueue = dctcp.QueueFactory(9000)
			ft := topo.NewFatTree(k, base)
			ft.DegradeLink(0, 0, 1e9)
			tn := newTCPNet(ft, tcp.Config{}, seed)
			dst := workload.Permutation(ft.NumHosts(), sim.NewRand(seed))
			meters := make([]*meter, 0, len(dst))
			for src, d := range dst {
				snd, _ := tn.Flow(src, d, -1, dctcp.SenderConfig(9000), nil)
				meters = append(meters, newMeter(func() int64 { return snd.AckedBytes }))
			}
			return runWarmMeasure(tn.EL(), warm, window, meters)
		}),
	}
	res := RunJobs(o, jobs)

	t := &stats.Table{Header: []string{"variant", "util%", "min_gbps", "p5_gbps", "p10_gbps", "p50_gbps"}}
	names := []string{"NDP", "NDP no path penalty", "MPTCP", "DCTCP"}
	for i, g := range res {
		var d stats.Dist
		for _, v := range g {
			d.Add(v)
		}
		t.AddFloats(names[i], 100*utilization(g, 10e9), d.Min(), d.Quantile(0.05), d.Quantile(0.1), d.Median())
	}
	r.AddTable("permutation with one agg->core link at 1Gb/s", t)
	r.Notef("paper shape: NDP and MPTCP route around the failure; NDP without the path penalty leaves ~15 flows near 3G; DCTCP's worst flow ~0.4G")
}
