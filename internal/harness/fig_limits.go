package harness

import (
	"fmt"

	"ndp/internal/core"
	"ndp/internal/mptcp"
	"ndp/internal/sim"
	"ndp/internal/stats"
	"ndp/internal/topo"
	"ndp/internal/workload"
)

func init() {
	run("t-limits", "Limitations (section 3): NDP on an asymmetric Jellyfish vs MPTCP", tLimits)
}

// tLimits reproduces the paper's "Limitations of NDP" discussion: on an
// asymmetric random topology (Jellyfish), NDP sprays packets onto unequal-
// length paths that are costly under load, while MPTCP's per-path
// congestion control shifts traffic onto the good paths. We run the same
// permutation on a Jellyfish and on a fully-provisioned FatTree and report
// utilization side by side. One job per (topology, protocol) scenario.
func tLimits(o Options, r *Result) {
	nSwitches := o.pick(12, 16, 24)
	hostsPer := 2 // modest oversubscription: path choice, not raw bisection,
	degree := 5   // dominates the outcome
	warm := 3 * sim.Millisecond
	window := sim.Time(o.pick(5, 8, 15)) * sim.Millisecond

	jfBuilder := func(c topo.Config) topo.Cluster {
		return topo.NewJellyfish(nSwitches, hostsPer, degree, 8, c)
	}
	ftK := 4
	if nSwitches*hostsPer > 16 {
		ftK = 8
	}

	type scen struct {
		topoName, proto string
		g               []float64
	}
	jobs := []Job[scen]{
		// NDP on Jellyfish: sprays across the asymmetric path set.
		NewJob("t-limits/jellyfish/NDP", o.Seed, func(seed uint64) scen {
			n := BuildNDP(jfBuilder, topo.Config{Seed: seed},
				core.DefaultSwitchConfig(9000), core.DefaultConfig())
			dst := workload.Permutation(n.C.NumHosts(), sim.NewRand(seed))
			g := runWarmMeasure(n.EL(), warm, window, senderMeters(n.Permutation(dst)))
			return scen{"jellyfish", "NDP", g}
		}),
		// MPTCP on the same Jellyfish: per-path congestion control.
		NewJob("t-limits/jellyfish/MPTCP", o.Seed, func(seed uint64) scen {
			tn := BuildTCPFamily(jfBuilder, topo.Config{Seed: seed}, dropTail(200*9000), mptcp.DefaultConfig().TCP)
			dst := workload.Permutation(tn.C.NumHosts(), sim.NewRand(seed))
			cfg := mptcp.DefaultConfig()
			meters := make([]*meter, 0, len(dst))
			for src, d := range dst {
				f := tn.MPTCPFlow(src, d, -1, cfg, nil)
				meters = append(meters, newMeter(f.AckedBytes))
			}
			return scen{"jellyfish", "MPTCP", runWarmMeasure(tn.EL(), warm, window, meters)}
		}),
		// Reference: NDP on a FatTree of comparable size (symmetric paths).
		NewJob("t-limits/fattree/NDP", o.Seed, func(seed uint64) scen {
			return scen{"fattree", "NDP", permGoodputNDP(ftK, seed, warm, window)}
		}),
	}

	t := &stats.Table{Header: []string{"topology", "protocol", "util%", "min_gbps", "p50_gbps"}}
	for _, s := range RunJobs(o, jobs) {
		var d stats.Dist
		for _, v := range s.g {
			d.Add(v)
		}
		t.AddRow(s.topoName, s.proto, f4(100*utilization(s.g, 10e9)), f4(d.Min()), f4(d.Median()))
	}

	jf := topo.NewJellyfish(nSwitches, hostsPer, degree, 8, topo.Config{Seed: o.Seed})
	min, max := jf.PathLengthSpread(200, sim.NewRand(o.Seed))
	r.AddTable(fmt.Sprintf("permutation on jellyfish (%d switches x deg %d, path lengths %d-%d hops)",
		nSwitches, degree, min, max), t)
	r.Notef("paper claim (section 3, Limitations): NDP 'will behave poorly' on asymmetric topologies. Compare each protocol against its own Clos number (fig14): NDP loses far more moving to Jellyfish than MPTCP does, because uniform spraying keeps paying for the long paths while per-path congestion control walks away from them")
}
