package harness

import (
	"fmt"

	"ndp/internal/core"
	"ndp/internal/dctcp"
	"ndp/internal/phost"
	"ndp/internal/sim"
	"ndp/internal/stats"
	"ndp/internal/tcp"
	"ndp/internal/topo"
	"ndp/internal/workload"
)

func init() {
	run("fig23", "Facebook web workload on a 4:1 oversubscribed FatTree", fig23)
	run("t-phost", "pHost vs NDP: who needs packet trimming? (section 6.2)", tPhost)
	run("t-scale", "Permutation utilization vs topology size (section 6.2)", tScale)
	run("t-trim", "Uplink trim locality: source vs switch load balancing (section 3.2.4)", tTrim)
}

// fig23 runs the closed-loop Facebook web workload on an oversubscribed
// FatTree for NDP and DCTCP at moderate and high load. One job per (load,
// protocol) cell; both protocols of a load level share its seed.
func fig23(o Options, r *Result) {
	k := o.pick(4, 4, 8)
	oversub := 4
	mtu := 1500 // the web workload is dominated by small packets
	deadline := sim.Time(o.pick(20, 40, 60)) * sim.Millisecond
	loads := []int{5, 10} // simultaneous connections per host

	type cell struct {
		row   Row
		notes []string
	}
	var jobs []Job[cell]
	for _, conns := range loads {
		conns := conns
		jobs = append(jobs,
			NewJob(fmt.Sprintf("fig23/conns%d/NDP", conns), o.Seed, func(seed uint64) cell {
				scfg := core.DefaultSwitchConfig(mtu)
				hcfg := core.DefaultConfig()
				hcfg.MTU = mtu
				n := BuildNDP(OversubFatTreeBuilder(k, oversub), topo.Config{Seed: seed}, scfg, hcfg)
				var fcts stats.Dist
				cl := &workload.ClosedLoop{
					Hosts:         n.C.NumHosts(),
					Conns:         conns,
					Gap:           sim.Millisecond,
					Sizes:         workload.FacebookWeb(),
					Seed:          seed + 7,
					NotifyLatency: func(int, int) sim.Time { return n.C.LinkDelay() },
					Defer:         n.C.Defer,
					Start: func(_, src, dst int, size int64, done func(at sim.Time)) {
						start := n.EL().Now()
						n.Transfer(src, dst, size, core.FlowOpts{OnReceiverDone: func(rcv *core.Receiver) {
							fcts.Add((rcv.CompletedAt - start).Millis())
							done(rcv.CompletedAt)
						}})
					},
				}
				cl.Run()
				n.EL().RunUntil(deadline)
				st := n.C.CollectStats()
				return cell{
					row: Row{fmt.Sprint(conns), "NDP", f4(fcts.Median()), f4(fcts.Quantile(0.9)),
						f4(fcts.Quantile(0.99)), fmt.Sprint(fcts.N())},
					notes: []string{fmt.Sprintf("NDP conns=%d: %d trims, %d bounces, %d drops",
						conns, st.Trims, st.Bounces, st.Drops)},
				}
			}),
			NewJob(fmt.Sprintf("fig23/conns%d/DCTCP", conns), o.Seed, func(seed uint64) cell {
				tn := BuildTCPFamily(OversubFatTreeBuilder(k, oversub), topo.Config{Seed: seed}, dctcp.QueueFactory(mtu), dctcp.SenderConfig(mtu))
				var fcts stats.Dist
				cfg := dctcp.SenderConfig(mtu)
				cl := &workload.ClosedLoop{
					Hosts:         tn.C.NumHosts(),
					Conns:         conns,
					Gap:           sim.Millisecond,
					Sizes:         workload.FacebookWeb(),
					Seed:          seed + 7,
					NotifyLatency: func(int, int) sim.Time { return tn.C.LinkDelay() },
					Defer:         tn.C.Defer,
					Start: func(_, src, dst int, size int64, done func(at sim.Time)) {
						start := tn.EL().Now()
						tn.Flow(src, dst, size, cfg, func(rcv *tcp.Receiver) {
							fcts.Add((rcv.CompletedAt - start).Millis())
							done(rcv.CompletedAt)
						})
					},
				}
				cl.Run()
				tn.EL().RunUntil(deadline)
				return cell{row: Row{fmt.Sprint(conns), "DCTCP", f4(fcts.Median()),
					f4(fcts.Quantile(0.9)), f4(fcts.Quantile(0.99)), fmt.Sprint(fcts.N())}}
			}))
	}

	t := &stats.Table{Header: []string{"conns/host", "protocol", "p50_ms", "p90_ms", "p99_ms", "flows"}}
	for _, c := range RunJobs(o, jobs) {
		t.AddRow(c.row...)
		for _, n := range c.notes {
			r.Notef("%s", n)
		}
	}
	r.AddTable("closed-loop web-workload FCTs (4:1 oversubscribed core)", t)
	r.Notef("paper shape: moderate load: NDP median ~half of DCTCP, p99 ~a third; high load: NDP still at least matches DCTCP, no collapse")
}

// tPhost reproduces the section 6.2 comparison: pHost (no trimming,
// per-packet ECMP, drop-tail) against NDP on the big incast and the
// permutation matrix. Four jobs: (incast, permutation) x (pHost, NDP).
func tPhost(o Options, r *Result) {
	k := o.pick(4, 8, 8)
	hosts := k * k * k / 4
	nsend := hosts - 1
	const size = 450_000
	warm := 3 * sim.Millisecond
	window := sim.Time(o.pick(5, 10, 15)) * sim.Millisecond

	jobs := []Job[float64]{
		// Incast: last-flow completion in ms.
		NewJob("t-phost/incast/pHost", o.Seed, func(seed uint64) float64 {
			pn := BuildPHost(FatTreeBuilder(k), topo.Config{Seed: seed}, phost.DefaultConfig())
			var last sim.Time
			for _, s := range workload.IncastSenders(0, nsend, hosts) {
				pn.Hosts[s].Connect(0, core.NextFlowID(), size, func(snd *phost.Sender) {
					if snd.CompletedAt > last {
						last = snd.CompletedAt
					}
				})
			}
			pn.EL().RunUntil(10 * sim.Second)
			return last.Millis()
		}),
		NewJob("t-phost/incast/NDP", o.Seed, func(seed uint64) float64 {
			n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: seed}, core.DefaultSwitchConfig(9000), core.DefaultConfig())
			last := n.Incast(0, workload.IncastSenders(0, nsend, hosts), size, nil)
			n.EL().RunUntil(10 * sim.Second)
			return last.Millis()
		}),
		// Permutation: utilization fraction.
		NewJob("t-phost/perm/pHost", o.Seed, func(seed uint64) float64 {
			pn := BuildPHost(FatTreeBuilder(k), topo.Config{Seed: seed}, phost.DefaultConfig())
			dst := workload.Permutation(hosts, sim.NewRand(seed))
			meters := make([]*meter, 0, hosts)
			for src, d := range dst {
				s := pn.Hosts[src].Connect(int32(d), core.NextFlowID(), 1<<40, nil)
				meters = append(meters, newMeter(s.AckedBytes))
			}
			g := runWarmMeasure(pn.EL(), warm, window, meters)
			return utilization(g, 10e9)
		}),
		NewJob("t-phost/perm/NDP", o.Seed, func(seed uint64) float64 {
			g := permGoodputNDP(k, seed, warm, window)
			return utilization(g, 10e9)
		}),
	}
	res := RunJobs(o, jobs)

	t := &stats.Table{Header: []string{"metric", "pHost", "NDP"}}
	t.AddRow(fmt.Sprintf("%d:1 incast last FCT (ms)", nsend), f4(res[0]), f4(res[1]))
	t.AddRow("permutation utilization (%)", f4(100*res[2]), f4(100*res[3]))
	r.AddTable("pHost vs NDP", t)
	r.Notef("paper shape: pHost's incast ~10x slower than NDP; permutation ~70%% vs NDP ~95%%")
}

// tScale measures permutation utilization as the FatTree grows. One job
// per topology size.
func tScale(o Options, r *Result) {
	ks := []int{4, 8}
	if o.Scale >= 0.4 {
		ks = []int{8, 12}
	}
	if o.Scale >= 0.99 {
		ks = []int{8, 12, 16}
	}
	if o.Full {
		ks = append(ks, 32)
	}
	warm := 3 * sim.Millisecond
	window := sim.Time(o.pick(5, 8, 10)) * sim.Millisecond

	jobs := make([]Job[float64], len(ks))
	for i, k := range ks {
		k := k
		jobs[i] = NewJob(fmt.Sprintf("t-scale/k%d", k), o.Seed, func(seed uint64) float64 {
			g := permGoodputNDP(k, seed, warm, window)
			return 100 * utilization(g, 10e9)
		})
	}
	res := RunJobs(o, jobs)

	t := &stats.Table{Header: []string{"hosts", "utilization%"}}
	for i, k := range ks {
		t.AddFloats(fmt.Sprint(k*k*k/4), res[i])
	}
	r.AddTable("permutation utilization vs size (8pkt buffers, IW 30)", t)
	r.Notef("paper shape: gentle decline from ~98%% (128 hosts) to ~90%% (8192 hosts); pass -full for k=32")
}

// tTrim compares where packets get trimmed when the sender chooses paths
// (permuted lists) versus per-packet random ECMP at switches. One job per
// load-balancing mode.
func tTrim(o Options, r *Result) {
	k := o.pick(4, 8, 8)
	warm := 3 * sim.Millisecond
	window := sim.Time(o.pick(5, 10, 15)) * sim.Millisecond

	type trims struct{ uplinkPct, totalPct, util float64 }
	modes := []bool{false, true}
	jobs := make([]Job[trims], len(modes))
	for i, switchLB := range modes {
		switchLB := switchLB
		name := "senderLB"
		if switchLB {
			name = "switchLB"
		}
		jobs[i] = NewJob("t-trim/"+name, o.Seed, func(seed uint64) trims {
			hcfg := core.DefaultConfig()
			hcfg.SwitchLB = switchLB
			base := topo.Config{Seed: seed}
			base.SwitchQueue = core.QueueFactory(core.DefaultSwitchConfig(9000), seed+41)
			ft := topo.NewFatTree(k, base)
			core.WireBounce(ft.Switches)
			n := &NDPNet{C: ft}
			for i, h := range ft.Hosts {
				h := h
				cfg := hcfg
				cfg.Seed = seed + uint64(i)*7919
				st := core.NewStack(h, func(dst int32) [][]int16 { return ft.Paths(h.ID, dst) }, cfg)
				st.Listen(nil)
				n.Stacks = append(n.Stacks, st)
			}
			dst := workload.Permutation(ft.NumHosts(), sim.NewRand(seed))
			senders := n.Permutation(dst)
			g := runWarmMeasure(n.EL(), warm, window, senderMeters(senders))

			var packets int64
			for _, s := range senders {
				packets += s.PacketsSent
			}
			return trims{
				uplinkPct: pct(float64(ft.UplinkTrims()), float64(packets)),
				totalPct:  pct(float64(ft.TotalTrims()), float64(packets)),
				util:      100 * utilization(g, 10e9),
			}
		})
	}
	res := RunJobs(o, jobs)

	t := &stats.Table{Header: []string{"load balancing", "uplink_trim%", "total_trim%", "util%"}}
	rowNames := []string{"sender-permuted paths", "switch per-packet ECMP"}
	for i, tr := range res {
		t.AddFloats(rowNames[i], tr.uplinkPct, tr.totalPct, tr.util)
	}
	r.AddTable("trim locality under permutation", t)
	r.Notef("paper shape: uplink trims ~0.01%% with source LB vs ~2.4%% with switch LB; source LB also buys a few %% utilization")
}
