// Package harness contains one runner per table and figure of the paper's
// evaluation (§5–§6). Each experiment builds its topology and transports,
// drives the workload, and returns the same rows/series the paper plots, so
// the whole evaluation can be regenerated with `ndpsim -exp all` or via the
// root package's benchmarks.
//
// Experiments accept a Scale knob: 1.0 reproduces the paper's dimensions
// (432-host FatTrees and so on); smaller values shrink topology sizes and
// durations proportionally so the same code paths run in CI-friendly time.
//
// Every experiment decomposes into declarative sweep jobs (jobs.go): each
// sweep point is a self-contained simulation derived from a per-job seed,
// executed on a Workers-sized pool with deterministic result ordering, so
// `ndpsim -exp all` scales across cores without perturbing results.
package harness

import (
	"fmt"
	"maps"
	"slices"
	"strings"

	"ndp/internal/stats"
)

// Options configures one experiment run.
type Options struct {
	// Scale in (0, 1]: 1.0 is paper scale. Experiments quantize it.
	Scale float64
	// Seed makes runs reproducible; experiments derive all RNGs from it.
	Seed uint64
	// Full unlocks extreme sizes (the 8192-host FatTree of Figure 20).
	Full bool
	// Workers sizes the sweep-job pool: each experiment decomposes into
	// independent seed-derived simulation jobs (see jobs.go) executed on
	// this many goroutines. 0 means runtime.GOMAXPROCS; 1 runs serially.
	// Results are bit-identical for every value with the same Seed.
	Workers int
	// Progress, when set, is called by RunJobs after each sweep job
	// completes with the count of jobs finished so far and the total.
	// Calls are serialized (done is strictly increasing) but arrive from
	// worker goroutines; the callback must be fast and must not touch the
	// pool. Purely observational: results are identical with or without.
	Progress func(done, total int)
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 || o.Scale > 1 {
		o.Scale = 1
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// pick quantizes the scale knob into one of three experiment sizes.
func (o Options) pick(small, medium, full int) int {
	switch {
	case o.Scale >= 0.99:
		return full
	case o.Scale >= 0.4:
		return medium
	default:
		return small
	}
}

// Result is an experiment's output: one or more labelled tables plus notes
// comparing the measured shape against the paper's claims. It marshals to
// JSON for machine-readable output (ndpsim -json).
type Result struct {
	ID     string         `json:"id"`
	Title  string         `json:"title"`
	Tables []*stats.Table `json:"tables"`
	Labels []string       `json:"labels"` // one per table
	Notes  []string       `json:"notes,omitempty"`
}

// AddTable appends a labelled table.
func (r *Result) AddTable(label string, t *stats.Table) {
	r.Tables = append(r.Tables, t)
	r.Labels = append(r.Labels, label)
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// String renders the result for the CLI.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for i, t := range r.Tables {
		if r.Labels[i] != "" {
			fmt.Fprintf(&b, "-- %s --\n", r.Labels[i])
		}
		b.WriteString(t.String())
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) *Result
}

var registry = map[string]*Experiment{}

// Register adds an experiment; it panics on duplicate ids (programmer
// error at init time).
func Register(e *Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment id " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns an experiment by id, or nil.
func Get(id string) *Experiment { return registry[id] }

// All returns every experiment sorted by id. Sorted-key iteration keeps the
// traversal deterministic (maporder): callers run experiments in this
// order, so map order must not pick it.
func All() []*Experiment {
	out := make([]*Experiment, 0, len(registry))
	for _, id := range slices.Sorted(maps.Keys(registry)) {
		out = append(out, registry[id])
	}
	return out
}

// run is the internal helper experiments use at registration time.
func run(id, title string, fn func(o Options, r *Result)) {
	Register(&Experiment{ID: id, Title: title, Run: func(o Options) *Result {
		o = o.withDefaults()
		r := &Result{ID: id, Title: title}
		fn(o, r)
		return r
	}})
}

func pct(x, base float64) float64 {
	if base == 0 {
		return 0
	}
	return 100 * x / base
}
