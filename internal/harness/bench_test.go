package harness

import (
	"path/filepath"
	"strings"
	"testing"
)

func report(results ...BenchResult) *BenchReport {
	return &BenchReport{Schema: benchSchema, Results: results}
}

func TestCompareBench(t *testing.T) {
	base := report(
		BenchResult{Name: "a", EventsPerSec: 1000},
		BenchResult{Name: "b", EventsPerSec: 2000},
		BenchResult{Name: "gone", EventsPerSec: 500},
	)
	// Within tolerance: 15% drop on a, improvement on b.
	ok := report(
		BenchResult{Name: "a", EventsPerSec: 850},
		BenchResult{Name: "b", EventsPerSec: 2500},
	)
	if msgs := CompareBench(base, ok, 20); len(msgs) != 0 {
		t.Errorf("within-tolerance run flagged: %v", msgs)
	}
	// Beyond tolerance on one case.
	bad := report(
		BenchResult{Name: "a", EventsPerSec: 700},
		BenchResult{Name: "b", EventsPerSec: 2000},
	)
	msgs := CompareBench(base, bad, 20)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "a:") {
		t.Errorf("30%% regression on a not flagged correctly: %v", msgs)
	}
	// New cases absent from the baseline are not compared.
	fresh := report(BenchResult{Name: "new-case", EventsPerSec: 1})
	fresh.Results = append(fresh.Results, BenchResult{Name: "a", EventsPerSec: 1000})
	if msgs := CompareBench(base, fresh, 20); len(msgs) != 0 {
		t.Errorf("baseline-absent case compared: %v", msgs)
	}
	// Zero common cases must fail loudly, not pass silently.
	disjoint := report(BenchResult{Name: "other", EventsPerSec: 9})
	if msgs := CompareBench(base, disjoint, 20); len(msgs) != 1 || !strings.Contains(msgs[0], "compared nothing") {
		t.Errorf("empty comparison not flagged: %v", msgs)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := RunBenchSuite([]BenchCase{
		{Name: "unit", Run: func() BenchCounts { return BenchCounts{Events: 42, PacketHops: 7} }},
	}, "test", nil)
	if len(rep.Results) != 1 || rep.Results[0].Events != 42 || rep.Results[0].PacketHops != 7 {
		t.Fatalf("suite result mangled: %+v", rep.Results)
	}
	if rep.Results[0].Name != "unit" || rep.Schema != benchSchema || rep.GoVersion == "" {
		t.Fatalf("report metadata missing: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Results[0] != rep.Results[0] || back.Label != "test" {
		t.Errorf("report changed over file round-trip:\nbefore %+v\nafter  %+v", rep, back)
	}
	if _, err := LoadBenchReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing report should error")
	}
}
