package harness

import (
	"path/filepath"
	"strings"
	"testing"
)

func report(results ...BenchResult) *BenchReport {
	return &BenchReport{Schema: benchSchema, Results: results}
}

func TestCompareBench(t *testing.T) {
	base := report(
		BenchResult{Name: "a", EventsPerSec: 1000},
		BenchResult{Name: "b", EventsPerSec: 2000},
		BenchResult{Name: "gone", EventsPerSec: 500},
	)
	// Within tolerance: 15% drop on a, improvement on b.
	ok := report(
		BenchResult{Name: "a", EventsPerSec: 850},
		BenchResult{Name: "b", EventsPerSec: 2500},
	)
	if msgs := CompareBench(base, ok, 20); len(msgs) != 0 {
		t.Errorf("within-tolerance run flagged: %v", msgs)
	}
	// Beyond tolerance on one case.
	bad := report(
		BenchResult{Name: "a", EventsPerSec: 700},
		BenchResult{Name: "b", EventsPerSec: 2000},
	)
	msgs := CompareBench(base, bad, 20)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "a:") {
		t.Errorf("30%% regression on a not flagged correctly: %v", msgs)
	}
	// Allocation growth beyond tolerance is flagged even when throughput
	// held; baselines without alloc counts (zero) are skipped.
	allocBase := report(
		BenchResult{Name: "a", EventsPerSec: 1000, AllocsPerOp: 1000},
		BenchResult{Name: "b", EventsPerSec: 2000},
	)
	allocBad := report(
		BenchResult{Name: "a", EventsPerSec: 1000, AllocsPerOp: 1500},
		BenchResult{Name: "b", EventsPerSec: 2000, AllocsPerOp: 999999},
	)
	msgs = CompareBench(allocBase, allocBad, 20)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "allocs/op") || !strings.Contains(msgs[0], "a:") {
		t.Errorf("50%% alloc regression on a not flagged correctly: %v", msgs)
	}
	allocOK := report(
		BenchResult{Name: "a", EventsPerSec: 1000, AllocsPerOp: 1100},
	)
	if msgs := CompareBench(allocBase, allocOK, 20); len(msgs) != 0 {
		t.Errorf("within-tolerance alloc growth flagged: %v", msgs)
	}
	// When the event count changes, events/sec compares different work per
	// run; the gate must fall back to wall time. Here events/sec collapsed
	// 4x but the run got faster — no regression.
	elideBase := report(
		BenchResult{Name: "a", Events: 8000, EventsPerSec: 20_000_000, WallMs: 0.40},
	)
	elideFast := report(
		BenchResult{Name: "a", Events: 2000, EventsPerSec: 5_000_000, WallMs: 0.30},
	)
	if msgs := CompareBench(elideBase, elideFast, 20); len(msgs) != 0 {
		t.Errorf("faster run with elided events flagged: %v", msgs)
	}
	// Same elision, but wall time genuinely regressed beyond tolerance.
	elideSlow := report(
		BenchResult{Name: "a", Events: 2000, EventsPerSec: 3_000_000, WallMs: 0.60},
	)
	msgs = CompareBench(elideBase, elideSlow, 20)
	if len(msgs) != 1 || !strings.Contains(msgs[0], "wall time") {
		t.Errorf("wall-time regression under event elision not flagged: %v", msgs)
	}
	// New cases absent from the baseline are not compared.
	fresh := report(BenchResult{Name: "new-case", EventsPerSec: 1})
	fresh.Results = append(fresh.Results, BenchResult{Name: "a", EventsPerSec: 1000})
	if msgs := CompareBench(base, fresh, 20); len(msgs) != 0 {
		t.Errorf("baseline-absent case compared: %v", msgs)
	}
	// Zero common cases must fail loudly, not pass silently.
	disjoint := report(BenchResult{Name: "other", EventsPerSec: 9})
	if msgs := CompareBench(base, disjoint, 20); len(msgs) != 1 || !strings.Contains(msgs[0], "compared nothing") {
		t.Errorf("empty comparison not flagged: %v", msgs)
	}
}

func TestBenchReportRoundTrip(t *testing.T) {
	rep := RunBenchSuite([]BenchCase{
		{Name: "unit", Run: func() BenchCounts { return BenchCounts{Events: 42, PacketHops: 7} }},
	}, "test", nil)
	if len(rep.Results) != 1 || rep.Results[0].Events != 42 || rep.Results[0].PacketHops != 7 {
		t.Fatalf("suite result mangled: %+v", rep.Results)
	}
	if rep.Results[0].Name != "unit" || rep.Schema != benchSchema || rep.GoVersion == "" {
		t.Fatalf("report metadata missing: %+v", rep)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadBenchReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.Results[0] != rep.Results[0] || back.Label != "test" {
		t.Errorf("report changed over file round-trip:\nbefore %+v\nafter  %+v", rep, back)
	}
	if _, err := LoadBenchReport(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("loading a missing report should error")
	}
}
