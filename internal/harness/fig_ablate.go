package harness

import (
	"fmt"

	"ndp/internal/core"
	"ndp/internal/fabric"
	"ndp/internal/sim"
	"ndp/internal/stats"
	"ndp/internal/topo"
)

func init() {
	run("t-ablate", "Switch service-model ablations: WRR, trim coin, bounce", tAblate)
}

// overloadRun drives n unresponsive line-rate flows into one egress with
// the given NDP switch configuration and returns (mean%, worst10%) of fair
// goodput plus total drops. Fully determined by its arguments, so each
// ablation variant runs as an independent sweep job.
func overloadRun(o Options, seed uint64, n int, scfg core.SwitchConfig) (mean, worst float64, drops int64) {
	const mtu = 9000
	base := topo.Config{Seed: seed}
	base.SwitchQueue = core.QueueFactory(scfg, seed+99)
	tt := topo.NewTwoTier(1, n+1, 0, base)
	core.WireBounce(tt.Switches)

	perFlow := make(map[uint64]int64)
	tt.Hosts[0].Stack = fabric.SinkFunc(func(p *fabric.Packet) {
		if p.Type == fabric.Data && !p.Trimmed() {
			perFlow[p.Flow] += int64(p.DataSize)
		}
		fabric.Free(p)
	})
	offs := sim.NewRand(seed + uint64(n)*31)
	gap := sim.TransmissionTime(mtu, tt.LinkRate())
	for i := 1; i <= n; i++ {
		StartBlast(tt, i, 0, uint64(i), mtu, offs.Duration(gap))
	}
	warm := 2 * sim.Millisecond
	window := sim.Time(o.pick(4, 8, 16)) * sim.Millisecond
	tt.EL.RunUntil(warm)
	snap := make(map[uint64]int64, len(perFlow))
	for f, b := range perFlow {
		snap[f] = b
	}
	tt.EL.RunUntil(warm + window)

	fair := float64(tt.LinkRate()) / float64(n) / 1e9
	var d stats.Dist
	for i := 1; i <= n; i++ {
		g := stats.Gbps(perFlow[uint64(i)]-snap[uint64(i)], window)
		d.Add(pct(g, fair))
	}
	return d.Mean(), d.MeanOfBottom(0.10), tt.CollectStats().Drops
}

// tAblate isolates each NDP switch design decision on the Figure 2 overload
// workload: the 10:1 WRR (vs strict priority), the 50% trim coin (vs
// CP-style trim-arriving), and return-to-sender (vs dropping overflow
// headers). One job per variant, all sharing one seed so each ablation
// faces the identical offered load.
func tAblate(o Options, r *Result) {
	n := o.pick(20, 60, 120)

	variants := []struct {
		name string
		mut  func(*core.SwitchConfig)
	}{
		{"NDP (paper)", func(*core.SwitchConfig) {}},
		{"strict priority (no WRR)", func(c *core.SwitchConfig) { c.HeaderWRR = 0 }},
		{"trim arriving only (no coin)", func(c *core.SwitchConfig) { c.TrimArrivingOnly = true }},
		{"no return-to-sender", func(c *core.SwitchConfig) { c.DisableBounce = true }},
	}
	jobs := make([]Job[Row], len(variants))
	for i, v := range variants {
		v := v
		jobs[i] = NewJob("t-ablate/"+v.name, o.Seed, func(seed uint64) Row {
			scfg := core.DefaultSwitchConfig(9000)
			v.mut(&scfg)
			mean, worst, drops := overloadRun(o, seed, n, scfg)
			return Row{v.name, f4(mean), f4(worst), fmt.Sprint(drops)}
		})
	}

	t := &stats.Table{Header: []string{"variant", "mean%", "worst10%", "drops"}}
	for _, row := range RunJobs(o, jobs) {
		t.AddRow(row...)
	}
	r.AddTable(fmt.Sprintf("%d unresponsive flows into one 10G egress", n), t)
	r.Notef("expected: strict priority lets the header flood crowd out data (CP-style goodput collapse); removing the coin collapses worst-10%% fairness (phase effects); disabling bounce turns overflow headers into silent drops")
}
