package harness

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"
)

// This file is the benchmark harness behind `ndpsim -bench`: it runs a
// pinned suite of named simulation cases, measures wall time, simulation
// events, packet-hops and allocations, and reads/writes the BENCH_*.json
// trajectory files so every PR's performance is comparable with the last.
// The case definitions live in the scenario package (they are built from
// public Specs); this package provides the measurement, report and
// baseline-comparison machinery.

// BenchCounts are the engine-level observables one benchmark run returns.
type BenchCounts struct {
	// Events is the number of scheduler events executed.
	Events int64
	// PacketHops is the number of packet wire-traversals simulated.
	PacketHops int64
}

// BenchCase is one pinned benchmark: a stable name (the unit of comparison
// across BENCH_*.json files — never rename without a migration note), a
// Tiny marker for the CI subset, and a Run function executing one full
// deterministic simulation. Procs, when non-zero, pins GOMAXPROCS around
// every run of the case (warmup included) so parallel-engine curves keep
// a comparable shape across recording machines; zero leaves the runtime
// default untouched.
type BenchCase struct {
	Name  string
	Tiny  bool
	Procs int
	Run   func() BenchCounts
}

// BenchResult is one case's measurement.
type BenchResult struct {
	Name          string  `json:"name"`
	WallMs        float64 `json:"wall_ms"`
	Events        int64   `json:"events"`
	PacketHops    int64   `json:"packet_hops"`
	EventsPerSec  float64 `json:"events_per_sec"`
	PacketsPerSec float64 `json:"packets_per_sec"`
	NsPerEvent    float64 `json:"ns_per_event"`
	AllocsPerOp   int64   `json:"allocs_per_op"`
	BytesPerOp    int64   `json:"bytes_per_op"`
}

// BenchReport is a full suite run: what was measured, and on what.
type BenchReport struct {
	Schema    int           `json:"schema"`
	Label     string        `json:"label,omitempty"`
	GoVersion string        `json:"go_version"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	CPUs      int           `json:"cpus"`
	Date      string        `json:"date"`
	Results   []BenchResult `json:"results"`
}

// benchSchema versions the report layout for future readers.
const benchSchema = 1

// benchIters is how many measured runs each case gets; the fastest wall
// time is reported. Simulations are deterministic, so event and allocation
// counts are identical across iterations — only wall time carries machine
// noise, and best-of-N is the standard estimator for it.
const benchIters = 3

// RunBenchSuite executes the cases in order and returns the report. Each
// case gets one untimed warmup run (pool and heap growth, code paging) and
// benchIters measured runs, reporting the fastest. Allocation counts come
// from runtime.MemStats deltas around a measured run with a GC fence, so
// they are exact for the single-goroutine runs the suite pins (Workers=1).
func RunBenchSuite(cases []BenchCase, label string, logf func(format string, args ...any)) *BenchReport {
	rep := &BenchReport{
		Schema:    benchSchema,
		Label:     label,
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		CPUs:      runtime.NumCPU(),
		Date:      time.Now().UTC().Format(time.RFC3339), //simlint:allow wallclock — report metadata: records when the bench ran, never feeds a simulation
	}
	for _, c := range cases {
		restoreProcs := func() {}
		if c.Procs > 0 {
			old := runtime.GOMAXPROCS(c.Procs)
			restoreProcs = func() { runtime.GOMAXPROCS(old) }
		}
		if logf != nil {
			logf("bench: %s (warmup)", c.Name)
		}
		c.Run()
		if logf != nil {
			logf("bench: %s", c.Name)
		}
		var counts BenchCounts
		var wall time.Duration
		var allocs, bytes int64
		for iter := 0; iter < benchIters; iter++ {
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			start := time.Now() //simlint:allow wallclock — wall-time throughput is the quantity this bench measures
			counts = c.Run()
			w := time.Since(start) //simlint:allow wallclock — wall-time throughput is the quantity this bench measures
			runtime.ReadMemStats(&after)
			if iter == 0 || w < wall {
				wall = w
				allocs = int64(after.Mallocs - before.Mallocs)
				bytes = int64(after.TotalAlloc - before.TotalAlloc)
			}
		}
		restoreProcs()

		r := BenchResult{
			Name:        c.Name,
			WallMs:      float64(wall.Nanoseconds()) / 1e6,
			Events:      counts.Events,
			PacketHops:  counts.PacketHops,
			AllocsPerOp: allocs,
			BytesPerOp:  bytes,
		}
		if secs := wall.Seconds(); secs > 0 {
			r.EventsPerSec = float64(counts.Events) / secs
			r.PacketsPerSec = float64(counts.PacketHops) / secs
		}
		if counts.Events > 0 {
			r.NsPerEvent = float64(wall.Nanoseconds()) / float64(counts.Events)
		}
		rep.Results = append(rep.Results, r)
	}
	return rep
}

// WriteFile writes the report as indented JSON.
func (r *BenchReport) WriteFile(path string) error {
	blob, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(blob, '\n'), 0o644)
}

// LoadBenchReport reads a report written by WriteFile.
func LoadBenchReport(path string) (*BenchReport, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r BenchReport
	if err := json.Unmarshal(blob, &r); err != nil {
		return nil, fmt.Errorf("harness: parsing bench report %s: %w", path, err)
	}
	return &r, nil
}

// String renders the report as an aligned table for terminals.
func (r *BenchReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== bench %s: go %s %s/%s cpus=%d ==\n",
		r.Label, r.GoVersion, r.GOOS, r.GOARCH, r.CPUs)
	fmt.Fprintf(&b, "%-16s %10s %12s %12s %14s %12s %10s\n",
		"case", "wall_ms", "events", "pkt_hops", "events/sec", "allocs", "ns/event")
	for _, res := range r.Results {
		fmt.Fprintf(&b, "%-16s %10.1f %12d %12d %14.0f %12d %10.1f\n",
			res.Name, res.WallMs, res.Events, res.PacketHops,
			res.EventsPerSec, res.AllocsPerOp, res.NsPerEvent)
	}
	return b.String()
}

// CompareBench checks current against baseline and returns one message per
// case whose events/sec dropped — or whose allocs/op grew — by more than
// maxRegressPct. When the two reports disagree on a case's event count the
// simulations did different amounts of bookkeeping per run, so the gate
// falls back to comparing wall time. Cases present in only one report are
// ignored (the tiny CI
// subset compares against the full committed trajectory), but comparing
// zero common cases is reported as a failure — a silently-empty gate is
// worse than none.
func CompareBench(baseline, current *BenchReport, maxRegressPct float64) []string {
	base := make(map[string]BenchResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	var msgs []string
	compared := 0
	for _, cur := range current.Results {
		b, ok := base[cur.Name]
		if !ok || b.EventsPerSec <= 0 {
			continue
		}
		compared++
		if cur.Events == b.Events {
			drop := 100 * (b.EventsPerSec - cur.EventsPerSec) / b.EventsPerSec
			if drop > maxRegressPct {
				msgs = append(msgs, fmt.Sprintf(
					"%s: events/sec regressed %.1f%% (baseline %.0f -> current %.0f, limit %.0f%%)",
					cur.Name, drop, b.EventsPerSec, cur.EventsPerSec, maxRegressPct))
			}
		} else if b.WallMs > 0 {
			// The event count changed, so events/sec compares different units
			// of work: a change that elides bookkeeping events (timer
			// coalescing, batched wakeups) shrinks the denominator and makes
			// events/sec collapse even when the run got faster. Wall time per
			// run is the quantity the user actually waits for, so gate on
			// that instead.
			drop := 100 * (cur.WallMs - b.WallMs) / b.WallMs
			if drop > maxRegressPct {
				msgs = append(msgs, fmt.Sprintf(
					"%s: wall time regressed %.1f%% (baseline %.2fms -> current %.2fms, limit %.0f%%; event count changed %d -> %d so events/sec is not comparable)",
					cur.Name, drop, b.WallMs, cur.WallMs, maxRegressPct, b.Events, cur.Events))
			}
		}
		// Allocation discipline is a separate budget: an alloc-heavy change
		// can hide inside run-to-run throughput noise, then surface as GC
		// pressure only at scale. Baselines predating the allocs_per_op
		// field carry zero and are skipped.
		if b.AllocsPerOp > 0 {
			grow := 100 * float64(cur.AllocsPerOp-b.AllocsPerOp) / float64(b.AllocsPerOp)
			if grow > maxRegressPct {
				msgs = append(msgs, fmt.Sprintf(
					"%s: allocs/op regressed %.1f%% (baseline %d -> current %d, limit %.0f%%)",
					cur.Name, grow, b.AllocsPerOp, cur.AllocsPerOp, maxRegressPct))
			}
		}
	}
	if compared == 0 {
		msgs = append(msgs, fmt.Sprintf(
			"no common cases between baseline (%d cases) and current (%d cases): the gate compared nothing",
			len(baseline.Results), len(current.Results)))
	}
	sort.Strings(msgs)
	return msgs
}
