package harness

import (
	"fmt"

	"ndp/internal/core"
	"ndp/internal/cp"
	"ndp/internal/fabric"
	"ndp/internal/hostmodel"
	"ndp/internal/sim"
	"ndp/internal/stats"
	"ndp/internal/tcp"
	"ndp/internal/topo"
	"ndp/internal/workload"
)

func init() {
	run("fig2", "Collapse and phase problems with CP vs the NDP switch", fig2)
	run("fig4", "Delivery latency CDF under permutation/random/incast", fig4)
	run("fig8", "1KB RPC latency: NDP vs TCP Fast Open vs TCP", fig8)
	run("fig9", "7:1 incast on the 8-server two-tier testbed", fig9)
	run("fig10", "Receiver prioritization of a short flow over six long flows", fig10)
	run("fig11", "Throughput vs initial window, perfect vs experimental host", fig11)
	run("fig12", "PULL spacing distribution for 1500B and 9000B packets", fig12)
	run("fig13", "Incast FCT: perfect vs experimentally-jittered pulls", fig13)
}

// fig2 drives N unresponsive line-rate flows into one 10Gb/s egress through
// a single switch running either the NDP service model or vanilla CP, and
// reports percent of ideal fair goodput (mean and worst-10%). One job per
// (switch mode, flow count) cell.
func fig2(o Options, r *Result) {
	const mtu = 9000
	flowCounts := []int{1, 2, 5, 10, 20, 50, 100, 150, 200}
	if o.Scale < 0.99 {
		flowCounts = []int{1, 5, 20, 60}
	}
	warm := 2 * sim.Millisecond
	window := sim.Time(o.pick(4, 8, 16)) * sim.Millisecond

	type cell struct{ mean, worst float64 }
	var jobs []Job[cell]
	seeds := SweepSeeds(o.Seed, len(flowCounts))
	for mode := 0; mode < 2; mode++ { // 0 = NDP switch, 1 = CP switch
		modeName := "ndp"
		if mode == 1 {
			modeName = "cp"
		}
		for fi, n := range flowCounts {
			mode, n := mode, n
			jobs = append(jobs, NewJob(fmt.Sprintf("fig2/%s/%d", modeName, n), seeds[fi],
				func(seed uint64) cell {
					base := topo.Config{Seed: seed}
					if mode == 0 {
						base.SwitchQueue = core.QueueFactory(core.DefaultSwitchConfig(mtu), seed+99)
					} else {
						base.SwitchQueue = cp.QueueFactory(8*mtu, 8*mtu+64*fabric.HeaderSize)
					}
					tt := topo.NewTwoTier(1, n+1, 0, base)
					core.WireBounce(tt.Switches)

					// Count per-flow goodput at the receiver.
					perFlow := make(map[uint64]int64)
					tt.Hosts[0].Stack = fabric.SinkFunc(func(p *fabric.Packet) {
						if p.Type == fabric.Data && !p.Trimmed() {
							perFlow[p.Flow] += int64(p.DataSize)
						}
						fabric.Free(p)
					})
					offs := sim.NewRand(seed + uint64(n)*31)
					gap := sim.TransmissionTime(mtu, tt.LinkRate())
					for i := 1; i <= n; i++ {
						StartBlast(tt, i, 0, uint64(i), mtu, offs.Duration(gap))
					}
					tt.EL.RunUntil(warm)
					snapshot := make(map[uint64]int64, len(perFlow))
					for f, b := range perFlow {
						snapshot[f] = b
					}
					tt.EL.RunUntil(warm + window)

					fair := float64(tt.LinkRate()) / float64(n) / 1e9
					var d stats.Dist
					for i := 1; i <= n; i++ {
						g := stats.Gbps(perFlow[uint64(i)]-snapshot[uint64(i)], window)
						d.Add(pct(g, fair))
					}
					return cell{mean: d.Mean(), worst: d.MeanOfBottom(0.10)}
				}))
		}
	}
	cells := RunJobs(o, jobs)

	t := &stats.Table{Header: []string{"flows", "ndp_mean%", "ndp_worst10%", "cp_mean%", "cp_worst10%"}}
	for fi, n := range flowCounts {
		ndp, cpCell := cells[fi], cells[len(flowCounts)+fi]
		t.AddFloats(fmt.Sprint(n), ndp.mean, ndp.worst, cpCell.mean, cpCell.worst)
	}
	r.AddTable("percent of ideal fair goodput", t)
	r.Notef("paper shape: CP mean decays with flow count and its worst-10%% collapses (phase effects); NDP stays high and fair")
}

// fig4 reproduces the delivery-latency CDF (first send to ACK at sender)
// for permutation, random, and 100:1 incasts of 135KB and 1350KB. One job
// per traffic scenario.
func fig4(o Options, r *Result) {
	k := o.pick(4, 8, 12)
	runDur := sim.Time(o.pick(5, 10, 20)) * sim.Millisecond

	hook := func(lat *stats.Dist) func(sim.Time) {
		return func(d sim.Time) { lat.AddTime(d) }
	}
	// Each scenario builds its own network, installs per-sender latency
	// hooks, and returns the deadline to run until.
	scenario := func(label string, fn func(n *NDPNet, lat *stats.Dist, seed uint64) sim.Time) Job[Row] {
		return NewJob("fig4/"+label, o.Seed, func(seed uint64) Row {
			n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: seed},
				core.DefaultSwitchConfig(9000), core.DefaultConfig())
			var lat stats.Dist
			deadline := fn(n, &lat, seed)
			n.EL().RunUntil(deadline)
			return Row{label, f4(lat.Quantile(0.1)), f4(lat.Median()), f4(lat.Quantile(0.9)),
				f4(lat.Quantile(0.99)), f4(lat.Max())}
		})
	}

	jobs := []Job[Row]{
		scenario("permutation", func(n *NDPNet, lat *stats.Dist, seed uint64) sim.Time {
			dst := workload.Permutation(n.C.NumHosts(), sim.NewRand(seed))
			for _, s := range n.Permutation(dst) {
				s.OnPacketLatency = hook(lat)
			}
			return runDur
		}),
		scenario("random", func(n *NDPNet, lat *stats.Dist, seed uint64) sim.Time {
			dst := workload.RandomMatrix(n.C.NumHosts(), sim.NewRand(seed))
			for _, s := range n.Permutation(dst) {
				s.OnPacketLatency = hook(lat)
			}
			return runDur
		}),
	}
	for _, size := range []int64{135_000, 1_350_000} {
		size := size
		jobs = append(jobs, scenario(fmt.Sprintf("incast %dKB", size/1000),
			func(n *NDPNet, lat *stats.Dist, seed uint64) sim.Time {
				nsend := 100
				if nsend > n.C.NumHosts()-1 {
					nsend = n.C.NumHosts() - 1
				}
				senders := workload.IncastSenders(0, nsend, n.C.NumHosts())
				for _, s := range senders {
					snd := n.Transfer(s, 0, size, core.FlowOpts{})
					snd.OnPacketLatency = hook(lat)
				}
				return sim.FromSeconds(float64(nsend) * float64(size) * 8 / 10e9 * 3)
			}))
	}

	t := &stats.Table{Header: []string{"scenario", "p10_us", "p50_us", "p90_us", "p99_us", "max_us"}}
	for _, row := range RunJobs(o, jobs) {
		t.AddRow(row...)
	}
	r.AddTable("per-packet delivery latency (first send -> ACK)", t)
	r.Notef("paper shape: permutation/random medians ~100us at full load; incast tails bounded (no RTO cliffs)")
}

// fig8 measures the 1KB RPC latency of NDP against TCP Fast Open and TCP,
// with and without deep CPU sleep states. The wire part is simulated; the
// host costs come from internal/hostmodel (the paper's measured numbers),
// as documented in DESIGN.md. A single back-to-back simulation — no sweep.
func fig8(o Options, r *Result) {
	// Simulate the raw network request/response time over back-to-back
	// hosts using the NDP stack with no host delays.
	n := BuildNDP(BackToBackBuilder(), topo.Config{Seed: o.Seed},
		core.DefaultSwitchConfig(9000), core.DefaultConfig())
	var netRTT sim.Time
	start := n.EL().Now()
	n.Stacks[1].Listen(func(rcv *core.Receiver) {})
	n.Transfer(0, 1, 1000, core.FlowOpts{OnReceiverDone: func(rcv *core.Receiver) {
		n.Transfer(1, 0, 1000, core.FlowOpts{OnReceiverDone: func(rcv2 *core.Receiver) {
			netRTT = rcv2.CompletedAt - start
		}})
	}})
	n.EL().RunUntil(10 * sim.Millisecond)

	t := &stats.Table{Header: []string{"stack", "latency_us", "vs_ndp"}}
	ndp := hostmodel.RPCLatency(netRTT, 1, hostmodel.NDPHost())
	variants := []struct {
		name   string
		rounds int
		d      hostmodel.Delays
	}{
		{"NDP", 1, hostmodel.NDPHost()},
		{"TFO (no sleep)", 1, hostmodel.TCPHostNoSleep()},
		{"TCP (no sleep)", 2, hostmodel.TCPHostNoSleep()},
		{"TFO", 1, hostmodel.TCPHostDeepSleep()},
		{"TCP", 2, hostmodel.TCPHostDeepSleep()},
	}
	for _, v := range variants {
		l := hostmodel.RPCLatency(netRTT, v.rounds, v.d)
		t.AddFloats(v.name, l.Micros(), float64(l)/float64(ndp))
	}
	r.AddTable("1KB RPC latency", t)
	r.Notef("raw wire request+response: %v; paper shape: TFO ~4x and TCP ~5x NDP with sleep states, ~2x/~3x without", netRTT)
}

// fig9 runs the 7:1 incast of the NetFPGA testbed (4 ToRs x 2 hosts, 2
// spines) for NDP and TCP across response sizes, reporting median and p90
// last-flow completion over repeated runs. One job per (size, repetition,
// protocol); both protocols of a repetition share its seed.
func fig9(o Options, r *Result) {
	sizes := []int64{10_000, 100_000, 250_000, 500_000, 1_000_000}
	if o.Scale < 0.4 {
		sizes = []int64{10_000, 250_000, 1_000_000}
	}
	reps := o.pick(3, 5, 9)

	type fct struct {
		ms float64
		ok bool
	}
	var jobs []Job[fct]
	for _, size := range sizes {
		for rep := 0; rep < reps; rep++ {
			size := size
			seed := o.Seed + uint64(rep)*101
			jobs = append(jobs,
				NewJob(fmt.Sprintf("fig9/%dKB/rep%d/NDP", size/1000, rep), seed, func(seed uint64) fct {
					n := BuildNDP(TwoTierBuilder(4, 2, 2), topo.Config{Seed: seed},
						core.DefaultSwitchConfig(9000), core.DefaultConfig())
					var fcts stats.Dist
					last := n.Incast(0, workload.IncastSenders(0, 7, 8), size, &fcts)
					n.EL().RunUntil(5 * sim.Second)
					return fct{ms: last.Millis(), ok: true}
				}),
				// TCP run (Linux-like MinRTO 200ms, handshake per request).
				NewJob(fmt.Sprintf("fig9/%dKB/rep%d/TCP", size/1000, rep), seed, func(seed uint64) fct {
					cfg := tcp.DefaultConfig()
					tn := BuildTCPFamily(TwoTierBuilder(4, 2, 2), topo.Config{Seed: seed},
						func(string) fabric.Queue { return fabric.NewFIFOQueue(8 * 9000) }, cfg)
					var last sim.Time
					done := 0
					for _, s := range workload.IncastSenders(0, 7, 8) {
						tn.Flow(s, 0, size, cfg, func(rcv *tcp.Receiver) {
							done++
							if rcv.CompletedAt > last {
								last = rcv.CompletedAt
							}
						})
					}
					tn.EL().RunUntil(5 * sim.Second)
					return fct{ms: last.Millis(), ok: done == 7}
				}))
		}
	}
	res := RunJobs(o, jobs)

	t := &stats.Table{Header: []string{"size_KB", "optimal_ms", "ndp_med_ms", "ndp_p90_ms", "tcp_med_ms", "tcp_p90_ms"}}
	for si, size := range sizes {
		var ndpD, tcpD stats.Dist
		for rep := 0; rep < reps; rep++ {
			ndp := res[(si*reps+rep)*2]
			tcp := res[(si*reps+rep)*2+1]
			ndpD.Add(ndp.ms)
			if tcp.ok {
				tcpD.Add(tcp.ms)
			}
		}
		optimal := sim.FromSeconds(7 * float64(size) * 8 / 10e9).Millis()
		t.AddFloats(fmt.Sprintf("%d", size/1000), optimal,
			ndpD.Median(), ndpD.Quantile(0.9), tcpD.Median(), tcpD.Quantile(0.9))
	}
	r.AddTable("7:1 incast completion time", t)
	r.Notef("paper shape: NDP within ~5%% of optimal with p90~median; TCP ~4x slower, p90 RTO-dominated")
}

// fig10 measures the FCT of a 200KB flow to a host also receiving six long
// flows: idle vs receiver-prioritized vs unprioritized. One job per
// scenario.
func fig10(o Options, r *Result) {
	const short = 200_000
	runOne := func(seed uint64, background, prio bool) sim.Time {
		n := BuildNDP(FatTreeBuilder(4), topo.Config{Seed: seed},
			core.DefaultSwitchConfig(9000), core.DefaultConfig())
		if background {
			for i := 1; i <= 6; i++ {
				n.Transfer(i, 0, 3_600_000, core.FlowOpts{})
			}
		}
		var fct sim.Time
		start := n.EL().Now()
		n.Transfer(7, 0, short, core.FlowOpts{
			Priority:       prio,
			OnReceiverDone: func(rcv *core.Receiver) { fct = rcv.CompletedAt - start },
		})
		n.EL().RunUntil(100 * sim.Millisecond)
		return fct
	}
	res := RunJobs(o, []Job[sim.Time]{
		NewJob("fig10/idle", o.Seed, func(seed uint64) sim.Time { return runOne(seed, false, false) }),
		NewJob("fig10/prio", o.Seed, func(seed uint64) sim.Time { return runOne(seed, true, true) }),
		NewJob("fig10/noprio", o.Seed, func(seed uint64) sim.Time { return runOne(seed, true, false) }),
	})
	idle, with, without := res[0], res[1], res[2]
	t := &stats.Table{Header: []string{"scenario", "fct_us", "delta_vs_idle_us"}}
	t.AddFloats("idle", idle.Micros(), 0)
	t.AddFloats("with prioritization", with.Micros(), (with - idle).Micros())
	t.AddFloats("without prioritization", without.Micros(), (without - idle).Micros())
	r.AddTable("200KB flow vs six long flows", t)
	r.Notef("paper shape: prioritized FCT within ~50us of idle; unprioritized ~500us worse (1/7 share in the pull queue)")
}

// fig11 sweeps the initial window on back-to-back hosts and reports
// throughput for the perfect host model vs the experimentally-measured one
// (extra processing delay and pull jitter). One job per (IW, host model).
func fig11(o Options, r *Result) {
	iws := []int{1, 2, 4, 8, 16, 32, 64, 128, 256}
	if o.Scale < 0.4 {
		iws = []int{1, 4, 16, 64}
	}
	const size = 9_000_000
	runOne := func(seed uint64, iw int, rxDelay sim.Time, jitter bool) float64 {
		hcfg := core.DefaultConfig()
		hcfg.IW = iw
		hcfg.RxDelay = rxDelay
		if jitter {
			hcfg.PullJitter = hostmodel.PullJitter(9000)
		}
		// 25us link delay emulates the testbed's effective path+stack
		// latency so the saturation knee lands near the paper's IW~15.
		n := BuildNDP(BackToBackBuilder(), topo.Config{Seed: seed, LinkDelay: 25 * sim.Microsecond},
			core.DefaultSwitchConfig(9000), hcfg)
		var fct sim.Time
		start := n.EL().Now()
		n.Transfer(0, 1, size, core.FlowOpts{OnReceiverDone: func(rcv *core.Receiver) {
			fct = rcv.CompletedAt - start
		}})
		n.EL().RunUntil(5 * sim.Second)
		if fct == 0 {
			return 0
		}
		return stats.Gbps(size, fct)
	}

	var jobs []Job[float64]
	for _, iw := range iws {
		iw := iw
		jobs = append(jobs,
			NewJob(fmt.Sprintf("fig11/iw%d/perfect", iw), o.Seed, func(seed uint64) float64 {
				return runOne(seed, iw, 20*sim.Microsecond, false)
			}),
			NewJob(fmt.Sprintf("fig11/iw%d/experimental", iw), o.Seed, func(seed uint64) float64 {
				return runOne(seed, iw, 56*sim.Microsecond, true)
			}))
	}
	res := RunJobs(o, jobs)

	t := &stats.Table{Header: []string{"IW_pkts", "perfect_gbps", "experimental_gbps"}}
	for i, iw := range iws {
		t.AddFloats(fmt.Sprint(iw), res[2*i], res[2*i+1])
	}
	r.AddTable("throughput vs initial window", t)
	r.Notef("paper shape: simulation saturates near IW=15; the prototype's host delays push the knee to ~25")
}

// fig12 measures actual PULL spacing under the empirical jitter model for
// 1500B and 9000B packets. One job per MTU.
func fig12(o Options, r *Result) {
	mtus := []int{1500, 9000}
	jobs := make([]Job[Row], len(mtus))
	for i, mtu := range mtus {
		mtu := mtu
		jobs[i] = NewJob(fmt.Sprintf("fig12/mtu%d", mtu), o.Seed, func(seed uint64) Row {
			hcfg := core.DefaultConfig()
			hcfg.MTU = mtu
			hcfg.IW = 30
			hcfg.PullJitter = hostmodel.PullJitter(mtu)
			n := BuildNDP(BackToBackBuilder(), topo.Config{Seed: seed},
				core.DefaultSwitchConfig(mtu), hcfg)
			var gaps stats.Dist
			n.Stacks[1].OnPullGap(func(g sim.Time) { gaps.AddTime(g) })
			n.Transfer(0, 1, int64(mtu)*2000, core.FlowOpts{})
			n.EL().RunUntil(sim.Second)
			target := sim.TransmissionTime(mtu+fabric.HeaderSize, 10e9)
			return Row{fmt.Sprint(mtu), f4(target.Micros()),
				f4(gaps.Quantile(0.1)), f4(gaps.Median()), f4(gaps.Quantile(0.9)), f4(gaps.Quantile(0.99))}
		})
	}

	t := &stats.Table{Header: []string{"mtu", "target_us", "p10_us", "p50_us", "p90_us", "p99_us"}}
	for _, row := range RunJobs(o, jobs) {
		t.AddRow(row...)
	}
	r.AddTable("measured PULL spacing", t)
	r.Notef("paper shape: medians at the 1.2us/7.2us targets, visibly more variance at 1500B")
}

// fig13 compares incast FCTs with perfect versus experimentally-jittered
// pull spacing: the difference should be negligible. One job per (size,
// jitter mode) cell.
func fig13(o Options, r *Result) {
	k := o.pick(4, 8, 12)
	sizes := []int64{9_000, 27_000, 45_000, 90_000, 117_000}
	if o.Scale < 0.4 {
		sizes = []int64{9_000, 45_000, 117_000}
	}

	var jobs []Job[float64]
	for _, size := range sizes {
		for mode := 0; mode < 2; mode++ {
			size, mode := size, mode
			name := "perfect"
			if mode == 1 {
				name = "jittered"
			}
			jobs = append(jobs, NewJob(fmt.Sprintf("fig13/%dKB/%s", size/1000, name), o.Seed,
				func(seed uint64) float64 {
					hcfg := core.DefaultConfig()
					if mode == 1 {
						hcfg.PullJitter = hostmodel.PullJitter(9000)
					}
					n := BuildNDP(FatTreeBuilder(k), topo.Config{Seed: seed},
						core.DefaultSwitchConfig(9000), hcfg)
					nsend := 200
					if nsend > n.C.NumHosts()-1 {
						nsend = n.C.NumHosts() - 1
					}
					last := n.Incast(0, workload.IncastSenders(0, nsend, n.C.NumHosts()), size, nil)
					n.EL().RunUntil(2 * sim.Second)
					return last.Millis()
				}))
		}
	}
	res := RunJobs(o, jobs)

	t := &stats.Table{Header: []string{"flow_KB", "perfect_ms", "jittered_ms"}}
	for i, size := range sizes {
		t.AddFloats(fmt.Sprint(size/1000), res[2*i], res[2*i+1])
	}
	r.AddTable("200:1 incast, last-flow completion", t)
	r.Notef("paper shape: no discernible difference between perfect and measured pull spacing")
}
