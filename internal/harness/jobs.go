package harness

import (
	"fmt"
	"runtime"
	"strings"
	"sync"

	"ndp/internal/sim"
)

// This file is the declarative sweep-job layer of the harness. The paper's
// evaluation is sweep-shaped: every figure runs the same simulation at many
// independent points (four transports x buffer sizes x incast degrees x
// topology scales). Each point becomes a Job — a self-contained simulation
// with its own topology, EventList and seed-derived RNGs — and RunJobs fans
// the jobs out across a pool of workers, so `ndpsim -exp all` scales with
// the number of cores instead of being bound by one.

// Row is one formatted table row, in the column order of the table the
// experiment is assembling.
type Row = []string

// Job is one self-contained point of an experiment sweep: a label for
// attribution, the seed every RNG in the simulation must derive from, and
// a Run function that builds its own topology and EventList, drives the
// workload, and returns the point's contribution to the final Result
// (formatted rows, raw per-flow goodputs, a completion time — whatever the
// experiment assembles from).
//
// Run must not touch state shared with other jobs: the scheduler, the
// topology, stats accumulators and RNGs all have to be created inside Run
// from the given seed. That property is what lets RunJobs execute jobs on
// any number of workers while keeping results bit-identical to a serial
// run.
type Job[T any] struct {
	Label string
	Seed  uint64
	Run   func(seed uint64) T
}

// NewJob couples a label and seed with a run function.
func NewJob[T any](label string, seed uint64, run func(seed uint64) T) Job[T] {
	return Job[T]{Label: label, Seed: seed, Run: run}
}

// SweepSeeds derives n independent seeds from base via sim.Rand splitting.
// The i-th seed depends only on (base, i) — never on worker count or job
// completion order — so a sweep can hand each point a private seed and
// stay exactly reproducible. Points that must observe the very same
// workload (e.g. the four transports racing on one permutation matrix)
// share one derived seed instead.
func SweepSeeds(base uint64, n int) []uint64 {
	root := sim.NewRand(base)
	out := make([]uint64, n)
	for i := range out {
		out[i] = root.SplitSeed()
	}
	return out
}

// RunJobs executes jobs on a pool of o.Workers goroutines — 0 means
// runtime.GOMAXPROCS(0), 1 preserves strictly serial execution — and
// returns the results in job order regardless of which worker finished
// which job when. Panicking jobs are re-raised on the caller's goroutine
// after the remaining jobs drain, as a single panic that aggregates every
// failure (label and seed each) in job order — a parallel sweep must not
// hide the second failure behind the first.
func RunJobs[T any](o Options, jobs []Job[T]) []T {
	workers := o.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}
	out := make([]T, len(jobs))
	failures := make([]error, len(jobs))
	// progress serializes the o.Progress callback across workers so its
	// done argument is strictly increasing even when jobs finish
	// concurrently.
	var progressMu sync.Mutex
	var progressDone int
	progress := func() {
		if o.Progress == nil {
			return
		}
		progressMu.Lock()
		progressDone++
		o.Progress(progressDone, len(jobs))
		progressMu.Unlock()
	}
	if workers <= 1 {
		for i, j := range jobs {
			capture(j, &out[i], &failures[i])
			progress()
		}
	} else {
		idx := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					capture(jobs[i], &out[i], &failures[i])
					progress()
				}
			}()
		}
		for i := range jobs {
			idx <- i
		}
		close(idx)
		wg.Wait()
	}
	var failed []string
	for _, err := range failures {
		if err != nil {
			failed = append(failed, err.Error())
		}
	}
	switch len(failed) {
	case 0:
		return out
	case 1:
		panic(failed[0])
	default:
		panic(fmt.Sprintf("harness: %d jobs failed:\n  %s",
			len(failed), strings.Join(failed, "\n  ")))
	}
}

// capture runs one job, converting a panic into an error so the pool can
// surface it on the calling goroutine with the job identified.
func capture[T any](j Job[T], slot *T, failure *error) {
	defer func() {
		if p := recover(); p != nil {
			*failure = fmt.Errorf("harness: job %q (seed %d) panicked: %v", j.Label, j.Seed, p)
		}
	}()
	*slot = j.Run(j.Seed)
}
