package harness

import (
	"encoding/json"
	"ndp/internal/stats"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// TestAllExperimentsSmoke runs every registered experiment at the smallest
// scale and checks it produces non-empty tables. This is the integration
// test that keeps the whole evaluation pipeline runnable.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments are slow; skipped in -short mode")
	}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res := e.Run(Options{Scale: 0.1, Seed: 2})
			if len(res.Tables) == 0 {
				t.Fatal("no tables produced")
			}
			for i, tab := range res.Tables {
				if len(tab.Rows) == 0 {
					t.Errorf("table %d (%s) has no rows", i, res.Labels[i])
				}
			}
			out := res.String()
			if !strings.Contains(out, e.ID) {
				t.Errorf("rendered result missing id:\n%s", out)
			}
		})
	}
}

func TestRegistry(t *testing.T) {
	ids := []string{"fig2", "fig4", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig19", "fig20",
		"fig21", "fig22", "fig23", "t-ablate", "t-limits", "t-phost", "t-scale", "t-trim"}
	for _, id := range ids {
		if Get(id) == nil {
			t.Errorf("experiment %q not registered", id)
		}
	}
	if len(All()) != len(ids) {
		t.Errorf("registry has %d experiments, want %d", len(All()), len(ids))
	}
}

func TestOptionsPick(t *testing.T) {
	o := Options{Scale: 1}.withDefaults()
	if o.pick(1, 2, 3) != 3 {
		t.Error("scale 1 should pick full")
	}
	o = Options{Scale: 0.5}.withDefaults()
	if o.pick(1, 2, 3) != 2 {
		t.Error("scale 0.5 should pick medium")
	}
	o = Options{Scale: 0.1}.withDefaults()
	if o.pick(1, 2, 3) != 1 {
		t.Error("scale 0.1 should pick small")
	}
	o = Options{}.withDefaults()
	if o.Scale != 1 || o.Seed == 0 {
		t.Errorf("defaults: %+v", o)
	}
}

func TestResultRendering(t *testing.T) {
	r := &Result{ID: "x", Title: "demo"}
	r.Notef("answer is %d", 42)
	if len(r.Notes) != 1 || !strings.Contains(r.Notes[0], "42") {
		t.Errorf("notes: %v", r.Notes)
	}
	out := r.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, strconv.Itoa(42)) {
		t.Errorf("render: %s", out)
	}
}

// TestResultJSONRoundTrip checks experiment results survive
// marshal/unmarshal intact — the machine-readable contract of ndpsim -json.
func TestResultJSONRoundTrip(t *testing.T) {
	r := &Result{ID: "figX", Title: "round-trip fixture"}
	tb := &stats.Table{Header: []string{"a", "b"}}
	tb.AddRow("1", "2")
	r.AddTable("label", tb)
	r.Notef("note %d", 7)
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*r, back) {
		t.Errorf("result changed over JSON round-trip:\nbefore %+v\nafter  %+v", *r, back)
	}
	if back.String() != r.String() {
		t.Errorf("rendered result differs after round-trip")
	}
}
