package harness

import (
	"ndp/internal/core"
	"ndp/internal/dcqcn"
	"ndp/internal/dctcp"
	"ndp/internal/fabric"
	"ndp/internal/mptcp"
	"ndp/internal/phost"
	"ndp/internal/sim"
	"ndp/internal/tcp"
	"ndp/internal/topo"
)

// This file defines the uniform transport abstraction the harness and the
// public scenario package build on. Each of the simulator's transports —
// NDP and its baselines — is a Transport: a named recipe that wires its
// switch queue discipline and per-host endpoints onto any topology and
// returns a Net, a uniform handle that can start flows and report their
// progress. The per-figure runners and the scenario engine both construct
// networks exclusively through Transports (the Build* functions in
// builders.go are thin compatibility wrappers), so every transport x
// topology x workload combination is reachable from one surface.

// Flow is the uniform handle for one transfer started via Net.StartFlow.
type Flow interface {
	// AckedBytes reports payload bytes delivered so far (sender-acked or
	// receiver-counted, whichever the transport measures goodput by).
	AckedBytes() int64
}

// StartOpts tunes one StartFlow call. All fields are optional; transports
// ignore the ones they cannot honour (only NDP implements Priority, and
// pHost has no per-byte goodput observer).
type StartOpts struct {
	// Priority asks the receiver to serve this flow strictly first
	// (NDP's pull-queue prioritization; ignored elsewhere).
	Priority bool
	// OnDone fires once when the flow completes, with the simulation
	// time of completion. Never fires for unbounded flows.
	OnDone func(at sim.Time)
	// OnData observes every newly delivered payload byte count.
	OnData func(bytes int64)
}

// Net is the uniform surface of a built network: a topology with one
// transport's endpoints installed on every host. It is what workloads
// drive, regardless of protocol.
type Net interface {
	// EL returns the simulation scheduler (shard 0's list when sharded;
	// drivers of sharded networks must use Runner instead).
	EL() *sim.EventList
	// Runner returns the engine driver: the event list itself for
	// single-list networks, the windowed multi-list runner when sharded.
	Runner() sim.Runner
	// Cluster returns the underlying topology.
	Cluster() topo.Cluster
	// StartFlow begins a transfer of size bytes from host src to host
	// dst; size < 0 runs an unbounded (permutation-style) flow.
	StartFlow(src, dst int, size int64, opts StartOpts) Flow
	// Close releases transport timers (needed after unbounded DCQCN
	// flows; a no-op elsewhere).
	Close()
}

// Transport builds a Net from a topology recipe. Implementations carry the
// per-protocol configuration (switch queues, endpoint parameters) so that
// the same Transport value can be applied to any topology.
type Transport interface {
	// Name is the stable lower-case identifier ("ndp", "dctcp", ...).
	Name() string
	// Build constructs the topology with this transport's switch queues
	// and installs endpoints on every host.
	Build(build BuildFunc, base topo.Config) Net
}

// ------------------------------------------------------------------ NDP ----

// NDPTransport builds NDP networks: trimming switch queues, return-to-
// sender wiring, and a listening NDP stack per host.
type NDPTransport struct {
	Switch core.SwitchConfig
	Host   core.Config
}

// Name implements Transport.
func (t NDPTransport) Name() string { return "ndp" }

// Build implements Transport.
func (t NDPTransport) Build(build BuildFunc, base topo.Config) Net {
	base.SwitchQueue = core.QueueFactory(t.Switch, base.Seed*2654435761+17)
	c := build(base)
	core.WireBounce(c.SwitchList())
	n := &NDPNet{C: c}
	for i, h := range c.HostList() {
		h := h
		cfg := t.Host
		cfg.Seed = base.Seed + uint64(i)*7919
		st := core.NewStack(h, func(dst int32) [][]int16 { return c.Paths(h.ID, dst) }, cfg)
		st.Listen(nil)
		n.Stacks = append(n.Stacks, st)
	}
	return n
}

// Cluster implements Net.
func (n *NDPNet) Cluster() topo.Cluster { return n.C }

// Close implements Net (no transport timers to stop).
func (n *NDPNet) Close() {}

// StartFlow implements Net. The sender half starts immediately on the
// source host; the receiver-side observers (pull priority, completion and
// goodput hooks) are delivered to the destination stack one link delay
// later via the cluster's command channel. That deferral is what lets a
// mid-run flow start (closed-loop RPC) work when source and destination
// live on different shards — and it runs identically when they don't, so
// results never depend on the shard layout. The registration always lands
// before the first SYN, which is at least a serialization plus two
// propagation delays behind it.
func (n *NDPNet) StartFlow(src, dst int, size int64, opts StartOpts) Flow {
	fo := core.FlowOpts{Flow: core.NextFlowID(), Priority: opts.Priority, OnReceiverData: opts.OnData}
	if opts.OnDone != nil {
		done := opts.OnDone
		fo.OnReceiverDone = func(r *core.Receiver) { done(r.CompletedAt) }
	}
	c := n.C
	dstStack := n.Stacks[dst]
	flow, prio, onDone, onData := fo.Flow, fo.Priority, fo.OnReceiverDone, fo.OnReceiverData
	at := n.Stacks[src].Host.EventList().Now() + c.LinkDelay()
	c.Defer(src, dst, at, func() {
		dstStack.PreRegister(flow, prio, onDone, onData)
	})
	return n.Stacks[src].ConnectLocal(dstStack.Host.ID, size, fo)
}

// ----------------------------------------------------------- TCP / DCTCP ----

// TCPTransport builds single-path TCP-family networks: the given switch
// queue discipline, a demux per host, and Cfg applied to every flow started
// through the Net surface. With Cfg.DCTCP set it is the DCTCP baseline.
type TCPTransport struct {
	Cfg   tcp.Config
	Queue topo.QueueFactory
}

// Name implements Transport.
func (t TCPTransport) Name() string {
	if t.Cfg.DCTCP {
		return "dctcp"
	}
	return "tcp"
}

// Build implements Transport.
func (t TCPTransport) Build(build BuildFunc, base topo.Config) Net {
	base.SwitchQueue = t.Queue
	c := build(base)
	n := &TCPNet{C: c, Cfg: t.Cfg, Rand: sim.NewRand(base.Seed*48271 + 5), nextFlow: 1}
	for _, h := range c.HostList() {
		d := fabric.NewDemux()
		h.Stack = d
		n.Demux = append(n.Demux, d)
	}
	return n
}

// DCTCPTransport returns the paper's DCTCP baseline for the given MTU:
// ECN-marking queues with the recommended 200-packet buffers and the
// ECN-fraction sender.
func DCTCPTransport(mtu int) TCPTransport {
	return TCPTransport{Cfg: dctcp.SenderConfig(mtu), Queue: dctcp.QueueFactory(mtu)}
}

// PlainTCPTransport returns the Linux-like TCP baseline for the given MTU:
// small drop-tail buffers and a 200ms MinRTO.
func PlainTCPTransport(mtu int) TCPTransport {
	cfg := tcp.DefaultConfig()
	cfg.MSS = mtu
	return TCPTransport{Cfg: cfg, Queue: dropTail(8 * mtu)}
}

// Cluster implements Net.
func (t *TCPNet) Cluster() topo.Cluster { return t.C }

// Close implements Net.
func (t *TCPNet) Close() {}

// StartFlow implements Net.
func (t *TCPNet) StartFlow(src, dst int, size int64, opts StartOpts) Flow {
	var onDone func(*tcp.Receiver)
	if opts.OnDone != nil {
		done := opts.OnDone
		onDone = func(r *tcp.Receiver) { done(r.CompletedAt) }
	}
	snd, rcv := t.Flow(src, dst, size, t.Cfg, onDone)
	if opts.OnData != nil {
		rcv.OnData = opts.OnData
	}
	return tcpFlow{snd}
}

// tcpFlow adapts a TCP sender to the Flow interface.
type tcpFlow struct{ snd *tcp.Sender }

func (f tcpFlow) AckedBytes() int64 { return f.snd.AckedBytes }

// ---------------------------------------------------------------- MPTCP ----

// MPTCPTransport builds multipath-TCP networks: drop-tail queues and
// Cfg.Subflows subflows per flow, pinned to distinct source routes.
type MPTCPTransport struct {
	Cfg   mptcp.Config
	Queue topo.QueueFactory
}

// DefaultMPTCPTransport returns the paper's MPTCP setup: 8 subflows over
// 200-packet drop-tail buffers.
func DefaultMPTCPTransport(mtu int) MPTCPTransport {
	cfg := mptcp.DefaultConfig()
	cfg.TCP.MSS = mtu
	return MPTCPTransport{Cfg: cfg, Queue: dropTail(200 * mtu)}
}

// Name implements Transport.
func (t MPTCPTransport) Name() string { return "mptcp" }

// Build implements Transport.
func (t MPTCPTransport) Build(build BuildFunc, base topo.Config) Net {
	tn := TCPTransport{Cfg: t.Cfg.TCP, Queue: t.Queue}.Build(build, base).(*TCPNet)
	return &MPTCPNet{TCPNet: tn, Cfg: t.Cfg}
}

// MPTCPNet is a TCP-family network whose uniform flow surface opens MPTCP
// connections instead of single-path flows.
type MPTCPNet struct {
	*TCPNet
	Cfg mptcp.Config
}

// StartFlow implements Net.
func (m *MPTCPNet) StartFlow(src, dst int, size int64, opts StartOpts) Flow {
	var onDone func(*mptcp.Flow)
	if opts.OnDone != nil {
		done := opts.OnDone
		onDone = func(f *mptcp.Flow) { done(f.CompletedAt) }
	}
	f := m.MPTCPFlow(src, dst, size, m.Cfg, onDone)
	if opts.OnData != nil {
		for _, r := range f.Receivers {
			// mptcp wires its own OnData for completion accounting;
			// chain the observer rather than replacing it.
			inner, obs := r.OnData, opts.OnData
			r.OnData = func(n int64) {
				if inner != nil {
					inner(n)
				}
				obs(n)
			}
		}
	}
	return f
}

// ---------------------------------------------------------------- DCQCN ----

// DCQCNTransport builds lossless RoCE networks: PFC ingress gating, ECN
// marking queues, and the DCQCN rate machine on every host.
type DCQCNTransport struct {
	MTU int
}

// Name implements Transport.
func (t DCQCNTransport) Name() string { return "dcqcn" }

// Build implements Transport.
func (t DCQCNTransport) Build(build BuildFunc, base topo.Config) Net {
	mtu := t.MTU
	if mtu == 0 {
		mtu = 9000
	}
	base.Lossless = true
	base.SwitchQueue = dcqcn.QueueFactory(mtu)
	if base.LosslessLimit == 0 {
		base.LosslessLimit = 200 * mtu
	}
	if base.PFCXoff == 0 {
		base.PFCXoff = 2 * mtu
	}
	if base.PFCXon == 0 {
		base.PFCXon = mtu
	}
	c := build(base)
	cfg := dcqcn.DefaultConfig()
	cfg.MTU = mtu
	cfg.LineRate = c.LinkRate()
	d := &DCQCNNet{C: c, Cfg: cfg, nextFlow: 1}
	for _, h := range c.HostList() {
		dm := fabric.NewDemux()
		h.Stack = dm
		d.Demux = append(d.Demux, dm)
	}
	return d
}

// Cluster implements Net.
func (d *DCQCNNet) Cluster() topo.Cluster { return d.C }

// Close implements Net: it stops every sender's rate timers.
func (d *DCQCNNet) Close() { d.StopAll() }

// StartFlow implements Net.
func (d *DCQCNNet) StartFlow(src, dst int, size int64, opts StartOpts) Flow {
	var onDone func(*dcqcn.Receiver)
	if opts.OnDone != nil {
		done := opts.OnDone
		onDone = func(r *dcqcn.Receiver) { done(r.CompletedAt) }
	}
	_, rcv := d.Flow(src, dst, size, onDone)
	if opts.OnData != nil {
		rcv.OnData = opts.OnData
	}
	return dcqcnFlow{rcv}
}

// dcqcnFlow adapts a DCQCN receiver to the Flow interface. The fabric is
// lossless, so received bytes are the delivered-goodput counter.
type dcqcnFlow struct{ rcv *dcqcn.Receiver }

func (f dcqcnFlow) AckedBytes() int64 { return f.rcv.Bytes }

// ---------------------------------------------------------------- pHost ----

// PHostTransport builds pHost networks: shallow drop-tail queues, per-
// packet ECMP spraying, and a token-pacing pHost agent per host.
type PHostTransport struct {
	Cfg phost.Config
}

// Name implements Transport.
func (t PHostTransport) Name() string { return "phost" }

// Build implements Transport.
func (t PHostTransport) Build(build BuildFunc, base topo.Config) Net {
	cfg := t.Cfg
	mtu := cfg.MTU
	if mtu == 0 {
		mtu = 9000
	}
	base.SwitchQueue = dropTail(8 * mtu)
	c := build(base)
	p := &PHostNet{C: c, nextFlow: 1}
	for _, h := range c.HostList() {
		ph := phost.NewHost(h, cfg)
		ph.Listen(nil)
		p.Hosts = append(p.Hosts, ph)
	}
	return p
}

// Cluster implements Net.
func (p *PHostNet) Cluster() topo.Cluster { return p.C }

// Close implements Net.
func (p *PHostNet) Close() {}

// StartFlow implements Net. pHost has no per-byte goodput observer, so
// StartOpts.OnData is ignored; AckedBytes meters progress instead.
func (p *PHostNet) StartFlow(src, dst int, size int64, opts StartOpts) Flow {
	flow := p.nextFlow
	p.nextFlow++
	if size < 0 {
		size = 1 << 40 // effectively unbounded
	}
	var onDone func(*phost.Sender)
	if opts.OnDone != nil {
		done := opts.OnDone
		onDone = func(s *phost.Sender) { done(s.CompletedAt) }
	}
	return p.Hosts[src].Connect(p.C.HostList()[dst].ID, flow, size, onDone)
}

// dropTail returns a FIFO drop-tail switch queue factory of the given
// byte capacity (shared with the fig runners).
func dropTail(maxBytes int) topo.QueueFactory {
	return func(string) fabric.Queue { return fabric.NewFIFOQueue(maxBytes) }
}
