package harness

import (
	"ndp/internal/core"
	"ndp/internal/dcqcn"
	"ndp/internal/dctcp"
	"ndp/internal/fabric"
	"ndp/internal/mptcp"
	"ndp/internal/phost"
	"ndp/internal/sim"
	"ndp/internal/tcp"
	"ndp/internal/topo"
)

// This file defines the uniform transport abstraction the harness and the
// public scenario package build on. Each of the simulator's transports —
// NDP and its baselines — is a Transport: a named recipe that wires its
// switch queue discipline and per-host endpoints onto any topology and
// returns a Net, a uniform handle that can start flows and report their
// progress. The per-figure runners and the scenario engine both construct
// networks exclusively through Transports (the Build* functions in
// builders.go are thin compatibility wrappers), so every transport x
// topology x workload combination is reachable from one surface.

// Flow is the uniform handle for one transfer started via Net.StartFlow.
type Flow interface {
	// AckedBytes reports payload bytes delivered so far (sender-acked or
	// receiver-counted, whichever the transport measures goodput by).
	AckedBytes() int64
}

// StartOpts tunes one StartFlow call. All fields are optional; transports
// ignore the ones they cannot honour (only NDP implements Priority, and
// pHost has no per-byte goodput observer).
type StartOpts struct {
	// Priority asks the receiver to serve this flow strictly first
	// (NDP's pull-queue prioritization; ignored elsewhere).
	Priority bool
	// OnDone fires once when the flow completes, with the simulation
	// time of completion. Never fires for unbounded flows.
	OnDone func(at sim.Time)
	// OnData observes every newly delivered payload byte count.
	OnData func(bytes int64)
}

// Net is the uniform surface of a built network: a topology with one
// transport's endpoints installed on every host. It is what workloads
// drive, regardless of protocol.
type Net interface {
	// EL returns the simulation scheduler (shard 0's list when sharded;
	// drivers of sharded networks must use Runner instead).
	EL() *sim.EventList
	// Runner returns the engine driver: the event list itself for
	// single-list networks, the windowed multi-list runner when sharded.
	Runner() sim.Runner
	// Cluster returns the underlying topology.
	Cluster() topo.Cluster
	// StartFlow begins a transfer of size bytes from host src to host
	// dst; size < 0 runs an unbounded (permutation-style) flow.
	//
	// StartFlow is shard-safe for every transport: called mid-run in
	// the source host's scheduling domain, it touches only source-shard
	// state inline and delivers receiver-side setup through the
	// cluster's deferred command channel, so closed-loop workloads run
	// bit-identically on any shard layout.
	StartFlow(src, dst int, size int64, opts StartOpts) Flow
	// DoneHost reports the host (src or dst) in whose scheduling domain
	// StartOpts.OnDone runs for a src->dst flow: the receiver for
	// transports that detect completion on arrival (NDP, TCP family,
	// DCQCN), the sender for ack-counting ones (pHost). Sharded workload
	// drivers route per-completion bookkeeping through this host's shard.
	DoneHost(src, dst int) int
	// Close releases transport timers (needed after unbounded DCQCN
	// flows) and the cluster's engine resources (sharded-runner workers).
	Close()
}

// Transport builds a Net from a topology recipe. Implementations carry the
// per-protocol configuration (switch queues, endpoint parameters) so that
// the same Transport value can be applied to any topology.
type Transport interface {
	// Name is the stable lower-case identifier ("ndp", "dctcp", ...).
	Name() string
	// Build constructs the topology with this transport's switch queues
	// and installs endpoints on every host.
	Build(build BuildFunc, base topo.Config) Net
}

// ------------------------------------------------------------------ NDP ----

// NDPTransport builds NDP networks: trimming switch queues, return-to-
// sender wiring, and a listening NDP stack per host.
type NDPTransport struct {
	Switch core.SwitchConfig
	Host   core.Config
}

// Name implements Transport.
func (t NDPTransport) Name() string { return "ndp" }

// Build implements Transport.
func (t NDPTransport) Build(build BuildFunc, base topo.Config) Net {
	base.SwitchQueue = core.QueueFactory(t.Switch, base.Seed*2654435761+17)
	c := build(base)
	core.WireBounce(c.SwitchList())
	n := &NDPNet{C: c}
	for i, h := range c.HostList() {
		h := h
		cfg := t.Host
		cfg.Seed = base.Seed + uint64(i)*7919
		st := core.NewStack(h, func(dst int32) [][]int16 { return c.Paths(h.ID, dst) }, cfg)
		st.Listen(nil)
		n.Stacks = append(n.Stacks, st)
	}
	return n
}

// Cluster implements Net.
func (n *NDPNet) Cluster() topo.Cluster { return n.C }

// Close implements Net: releases packets parked in the stacks' RxDelay
// windows, then the cluster's fabric and engine resources.
func (n *NDPNet) Close() {
	for _, st := range n.Stacks {
		st.Close()
	}
	n.C.Close()
}

// DoneHost implements Net: NDP completion fires at the receiver.
func (n *NDPNet) DoneHost(src, dst int) int { return dst }

// StartFlow implements Net. The sender half starts immediately on the
// source host; the receiver-side observers (pull priority, completion and
// goodput hooks) are delivered to the destination stack the minimum
// src->dst path delay later via the cluster's command channel. That
// deferral is what lets a mid-run flow start (closed-loop RPC) work when
// source and destination live on different shards — and it runs
// identically when they don't, so results never depend on the shard
// layout. The offset must be the pairwise MinPathDelay, not one link
// delay: the command channel's lookahead contract is per shard pair, and
// non-adjacent shards can be several cut crossings apart. The
// registration still lands before the first SYN, which trails it by at
// least a serialization time (same minimum path, plus transmission).
func (n *NDPNet) StartFlow(src, dst int, size int64, opts StartOpts) Flow {
	fo := core.FlowOpts{Flow: core.NextFlowID(), Priority: opts.Priority, OnReceiverDoneAt: opts.OnDone, OnReceiverData: opts.OnData}
	c := n.C
	dstStack := n.Stacks[dst]
	flow, prio, onDoneAt, onData := fo.Flow, fo.Priority, fo.OnReceiverDoneAt, fo.OnReceiverData
	at := n.Stacks[src].Host.EventList().Now() + c.MinPathDelay(src, dst)
	c.Defer(src, dst, at, func() { //simlint:allow defercmd — one registration closure per flow start, not per packet; the value-shaped wire encoding that replaces these is the ROADMAP's distributed-shard prerequisite
		dstStack.PreRegister(flow, prio, nil, onDoneAt, onData)
	})
	return n.Stacks[src].ConnectLocal(dstStack.Host.ID, size, fo)
}

// ----------------------------------------------------------- TCP / DCTCP ----

// TCPTransport builds single-path TCP-family networks: the given switch
// queue discipline, a demux per host, and Cfg applied to every flow started
// through the Net surface. With Cfg.DCTCP set it is the DCTCP baseline.
type TCPTransport struct {
	Cfg   tcp.Config
	Queue topo.QueueFactory
}

// Name implements Transport.
func (t TCPTransport) Name() string {
	if t.Cfg.DCTCP {
		return "dctcp"
	}
	return "tcp"
}

// Build implements Transport.
func (t TCPTransport) Build(build BuildFunc, base topo.Config) Net {
	base.SwitchQueue = t.Queue
	c := build(base)
	return newTCPNet(c, t.Cfg, base.Seed)
}

// DCTCPTransport returns the paper's DCTCP baseline for the given MTU:
// ECN-marking queues with the recommended 200-packet buffers and the
// ECN-fraction sender.
func DCTCPTransport(mtu int) TCPTransport {
	return TCPTransport{Cfg: dctcp.SenderConfig(mtu), Queue: dctcp.QueueFactory(mtu)}
}

// PlainTCPTransport returns the Linux-like TCP baseline for the given MTU:
// small drop-tail buffers and a 200ms MinRTO.
func PlainTCPTransport(mtu int) TCPTransport {
	cfg := tcp.DefaultConfig()
	cfg.MSS = mtu
	return TCPTransport{Cfg: cfg, Queue: dropTail(8 * mtu)}
}

// Cluster implements Net.
func (t *TCPNet) Cluster() topo.Cluster { return t.C }

// Close implements Net.
func (t *TCPNet) Close() { t.C.Close() }

// DoneHost implements Net: TCP-family completion fires at the receiver
// (FIN acknowledged, stream fully received).
func (t *TCPNet) DoneHost(src, dst int) int { return dst }

// StartFlow implements Net. The sender half starts immediately on the
// source host, drawing its flow id and both path choices from the source's
// private stream; the receiver half (state, reverse route, observers) is
// created on the destination's scheduling domain the minimum src->dst
// path delay later via the cluster's command channel — always before the
// first SYN, which trails by at least a serialization time. The offset is
// the pairwise MinPathDelay because the command channel's lookahead
// contract is per shard pair (one link delay is not enough between
// non-adjacent shards). The reverse route is fixed by a raw value drawn
// at the source and reduced modulo the destination's path count inside
// the deferred command, because the path enumeration cache is per
// source-host shard and must only be touched from its own domain.
func (t *TCPNet) StartFlow(src, dst int, size int64, opts StartOpts) Flow {
	flow := t.srcFlowID(src, 1)
	hs, hd := t.C.HostList()[src], t.C.HostList()[dst]
	var source tcp.DataSource
	if size < 0 {
		source = unboundedSource{mss: t.Cfg.MSS}
	} else {
		source = tcp.NewFixedSource(size, t.Cfg.MSS)
	}
	r := t.srcRand[src]
	fwd := t.C.Paths(hs.ID, hd.ID)
	snd := t.pool(hs.EventList()).NewSender(hs, t.Demux[src], hd.ID, flow, fwd[r.Intn(len(fwd))], source, t.Cfg)
	revPick := r.Uint64()
	onDone, onData := opts.OnDone, opts.OnData
	c := t.C
	c.Defer(src, dst, hs.EventList().Now()+c.MinPathDelay(src, dst), func() { //simlint:allow defercmd — one receiver-attach closure per flow start, not per packet; converts to the value-shaped wire encoding tracked in the ROADMAP
		revs := c.Paths(hd.ID, hs.ID)
		rcv := t.pool(hd.EventList()).NewReceiver(hd, t.Demux[dst], hs.ID, flow, revs[revPick%uint64(len(revs))])
		rcv.OnData = onData
		if onDone != nil {
			rcv.OnComplete = func(r *tcp.Receiver) { onDone(r.CompletedAt) }
		}
	})
	snd.Start()
	return tcpFlow{snd}
}

// tcpFlow adapts a TCP sender to the Flow interface.
type tcpFlow struct{ snd *tcp.Sender }

func (f tcpFlow) AckedBytes() int64 { return f.snd.AckedBytes }

// ---------------------------------------------------------------- MPTCP ----

// MPTCPTransport builds multipath-TCP networks: drop-tail queues and
// Cfg.Subflows subflows per flow, pinned to distinct source routes.
type MPTCPTransport struct {
	Cfg   mptcp.Config
	Queue topo.QueueFactory
}

// DefaultMPTCPTransport returns the paper's MPTCP setup: 8 subflows over
// 200-packet drop-tail buffers.
func DefaultMPTCPTransport(mtu int) MPTCPTransport {
	cfg := mptcp.DefaultConfig()
	cfg.TCP.MSS = mtu
	return MPTCPTransport{Cfg: cfg, Queue: dropTail(200 * mtu)}
}

// Name implements Transport.
func (t MPTCPTransport) Name() string { return "mptcp" }

// Build implements Transport.
func (t MPTCPTransport) Build(build BuildFunc, base topo.Config) Net {
	tn := TCPTransport{Cfg: t.Cfg.TCP, Queue: t.Queue}.Build(build, base).(*TCPNet)
	return &MPTCPNet{TCPNet: tn, Cfg: t.Cfg}
}

// MPTCPNet is a TCP-family network whose uniform flow surface opens MPTCP
// connections instead of single-path flows.
type MPTCPNet struct {
	*TCPNet
	Cfg mptcp.Config
}

// StartFlow implements Net. Construction is split across the shard cut:
// the subflow senders (forward-path permutation from the source's stream)
// start on the source host's domain, and the receivers attach on the
// destination's domain the minimum src->dst path delay later (the
// per-pair lookahead bound; see TCPNet.StartFlow) — before any subflow's
// SYN arrives — permuting reverse paths with a generator seeded from a
// value drawn at the source, so the choice is deterministic without
// sharing a stream across shards.
func (m *MPTCPNet) StartFlow(src, dst int, size int64, opts StartOpts) Flow {
	// Reserve the same stride NewSenderHalf will register: a zero-value
	// Config defaults to 8 subflows there, and under-reserving would let
	// the next flow's ids collide with this one's live subflows.
	subflows := m.Cfg.Subflows
	if subflows <= 0 {
		subflows = 8
	}
	flow := m.srcFlowID(src, uint64(subflows)+1)
	hs, hd := m.C.HostList()[src], m.C.HostList()[dst]
	r := m.srcRand[src]
	f := mptcp.NewSenderHalf(hs, hd.ID, m.Demux[src], flow, size, m.C.Paths(hs.ID, hd.ID), r, m.Cfg, m.pool(hs.EventList()))
	if opts.OnDone != nil {
		done := opts.OnDone
		f.OnComplete = func(fl *mptcp.Flow) { done(fl.CompletedAt) }
	}
	revSeed := r.Uint64()
	onData := opts.OnData
	c := m.C
	c.Defer(src, dst, hs.EventList().Now()+c.MinPathDelay(src, dst), func() { //simlint:allow defercmd — one receiver-attach closure per flow start, not per packet; converts to the value-shaped wire encoding tracked in the ROADMAP
		f.AttachReceivers(hd, m.Demux[dst], c.Paths(hd.ID, hs.ID), sim.NewRand(revSeed), onData, m.pool(hd.EventList()))
	})
	f.Start()
	return f
}

// ---------------------------------------------------------------- DCQCN ----

// DCQCNTransport builds lossless RoCE networks: PFC ingress gating, ECN
// marking queues, and the DCQCN rate machine on every host.
type DCQCNTransport struct {
	MTU int
}

// Name implements Transport.
func (t DCQCNTransport) Name() string { return "dcqcn" }

// Build implements Transport.
func (t DCQCNTransport) Build(build BuildFunc, base topo.Config) Net {
	mtu := t.MTU
	if mtu == 0 {
		mtu = 9000
	}
	base.Lossless = true
	base.SwitchQueue = dcqcn.QueueFactory(mtu)
	if base.LosslessLimit == 0 {
		base.LosslessLimit = 200 * mtu
	}
	if base.PFCXoff == 0 {
		base.PFCXoff = 2 * mtu
	}
	if base.PFCXon == 0 {
		base.PFCXon = mtu
	}
	c := build(base)
	cfg := dcqcn.DefaultConfig()
	cfg.MTU = mtu
	cfg.LineRate = c.LinkRate()
	d := &DCQCNNet{C: c, Cfg: cfg, nextFlow: 1}
	d.srcSeq = make([]uint64, c.NumHosts())
	d.srcRand = make([]*sim.Rand, c.NumHosts())
	for i := range d.srcRand {
		// One connect-time stream per source host, created up front
		// (mid-run creation would race across shard goroutines).
		d.srcRand[i] = sim.NewRand(base.Seed*48271 + 5 + (uint64(i)+1)*0x9e3779b97f4a7c15)
	}
	d.srcSenders = make([][]*dcqcn.Sender, c.NumHosts())
	for _, h := range c.HostList() {
		dm := fabric.NewDemux()
		h.Stack = dm
		d.Demux = append(d.Demux, dm)
	}
	d.pools = make(map[*sim.EventList]*dcqcn.Pool)
	for _, h := range c.HostList() {
		if _, ok := d.pools[h.EventList()]; !ok {
			d.pools[h.EventList()] = dcqcn.NewPool()
		}
	}
	return d
}

// Cluster implements Net.
func (d *DCQCNNet) Cluster() topo.Cluster { return d.C }

// Close implements Net: it stops every sender's rate timers.
func (d *DCQCNNet) Close() {
	d.StopAll()
	d.C.Close()
}

// DoneHost implements Net: DCQCN completion fires at the receiver (the
// FIN's arrival over the lossless fabric is the last byte delivered).
func (d *DCQCNNet) DoneHost(src, dst int) int { return dst }

// StartFlow implements Net. Like the TCP family, construction is split
// across the shard cut: the sender starts immediately on the source
// host's domain (flow id and path picks drawn from the source's private
// stream) and the receiver attaches on the destination's domain the
// minimum src->dst path delay later — before the first data packet,
// which trails by at least a serialization time. Teardown crosses back
// the other way: the receiver retires at completion in its own domain
// and defers the sender's rate-timer stop to the source's, so neither
// endpoint's state is ever touched from a foreign shard. The same path
// runs at every shard count, so results never depend on the layout.
func (d *DCQCNNet) StartFlow(src, dst int, size int64, opts StartOpts) Flow {
	d.srcSeq[src]++
	flow := uint64(src+1)<<32 | d.srcSeq[src]
	c := d.C
	hs, hd := c.HostList()[src], c.HostList()[dst]
	r := d.srcRand[src]
	fwd := c.Paths(hs.ID, hd.ID)
	s := d.pool(hs.EventList()).NewSender(hs, hd.ID, flow, fwd[r.Intn(len(fwd))], size, d.Cfg)
	revPick := r.Uint64()
	d.Demux[src].Register(flow, s)
	d.srcSenders[src] = append(d.srcSenders[src], s)
	f := &dcqcnFlow{}
	onDone, onData := opts.OnDone, opts.OnData
	c.Defer(src, dst, hs.EventList().Now()+c.MinPathDelay(src, dst), func() { //simlint:allow defercmd — one receiver-attach closure per flow start, not per packet; converts to the value-shaped wire encoding tracked in the ROADMAP
		revs := c.Paths(hd.ID, hs.ID)
		rc := d.pool(hd.EventList()).NewReceiver(hd, hs.ID, flow, revs[revPick%uint64(len(revs))], d.Cfg)
		rc.OnData = onData
		// The fabric is lossless and the path fixed, so nothing
		// addressed to this flow reaches the receiver after the FIN:
		// it retires immediately. The sender may still see a stale CNP
		// until its deferred stop lands; after the unregister the demux
		// drops it, and flow ids are never reused.
		rc.OnComplete = func(rc *dcqcn.Receiver) {
			if onDone != nil {
				onDone(rc.CompletedAt)
			}
			d.Demux[dst].Unregister(flow)
			d.pool(hd.EventList()).RetireReceiver(rc)
			at := hd.EventList().Now() + c.MinPathDelay(dst, src)
			c.Defer(dst, src, at, func() { //simlint:allow defercmd — one teardown closure per flow completion, not per packet; converts to the value-shaped wire encoding tracked in the ROADMAP
				d.Demux[src].Unregister(flow)
				s.Stop()
				d.pool(hs.EventList()).RetireSender(s)
			})
		}
		f.rcv = rc
		d.Demux[dst].Register(flow, rc)
	})
	s.Start()
	return f
}

// dcqcnFlow adapts a DCQCN receiver to the Flow interface. The fabric is
// lossless, so received bytes are the delivered-goodput counter. The
// receiver only attaches on the destination's domain shortly after
// StartFlow returns; until then no byte has been delivered and
// AckedBytes reports 0. Sharded drivers read it only at window barriers,
// after the attach has been published.
type dcqcnFlow struct{ rcv *dcqcn.Receiver }

func (f *dcqcnFlow) AckedBytes() int64 {
	if f.rcv == nil {
		return 0
	}
	return f.rcv.Bytes
}

// ---------------------------------------------------------------- pHost ----

// PHostTransport builds pHost networks: shallow drop-tail queues, per-
// packet ECMP spraying, and a token-pacing pHost agent per host.
type PHostTransport struct {
	Cfg phost.Config
}

// Name implements Transport.
func (t PHostTransport) Name() string { return "phost" }

// Build implements Transport.
func (t PHostTransport) Build(build BuildFunc, base topo.Config) Net {
	cfg := t.Cfg
	mtu := cfg.MTU
	if mtu == 0 {
		mtu = 9000
	}
	base.SwitchQueue = dropTail(8 * mtu)
	c := build(base)
	p := &PHostNet{C: c, srcSeq: make([]uint64, c.NumHosts())}
	for _, h := range c.HostList() {
		ph := phost.NewHost(h, cfg)
		ph.Listen(nil)
		p.Hosts = append(p.Hosts, ph)
	}
	return p
}

// Cluster implements Net.
func (p *PHostNet) Cluster() topo.Cluster { return p.C }

// Close implements Net.
func (p *PHostNet) Close() { p.C.Close() }

// DoneHost implements Net: pHost completion fires at the *sender* (it
// learns completion by counting acks; the receiver cannot tell a dropped
// packet from one not yet arrived).
func (p *PHostNet) DoneHost(src, dst int) int { return src }

// StartFlow implements Net. pHost has no per-byte goodput observer, so
// StartOpts.OnData is ignored; AckedBytes meters progress instead.
// Connect touches only source-host state — the receiver materializes on
// the destination's shard when the first data packet arrives (pHost's
// listen hook) — so the only shard hazard was the flow-id counter, now
// per source host.
func (p *PHostNet) StartFlow(src, dst int, size int64, opts StartOpts) Flow {
	p.srcSeq[src]++
	flow := uint64(src+1)<<32 | p.srcSeq[src]
	if size < 0 {
		size = 1 << 40 // effectively unbounded
	}
	var onDone func(*phost.Sender)
	if opts.OnDone != nil {
		done := opts.OnDone
		onDone = func(s *phost.Sender) { done(s.CompletedAt) }
	}
	return p.Hosts[src].Connect(p.C.HostList()[dst].ID, flow, size, onDone)
}

// dropTail returns a FIFO drop-tail switch queue factory of the given
// byte capacity (shared with the fig runners).
func dropTail(maxBytes int) topo.QueueFactory {
	return func(string) fabric.Queue { return fabric.NewFIFOQueue(maxBytes) }
}
