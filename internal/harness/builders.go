package harness

import (
	"ndp/internal/core"
	"ndp/internal/dcqcn"
	"ndp/internal/fabric"
	"ndp/internal/mptcp"
	"ndp/internal/phost"
	"ndp/internal/sim"
	"ndp/internal/stats"
	"ndp/internal/tcp"
	"ndp/internal/topo"
)

// BuildFunc constructs a topology from a base config (queue factory and
// seed already filled in by the per-protocol builder).
type BuildFunc func(topo.Config) topo.Cluster

// FatTreeBuilder returns a BuildFunc for a k-ary FatTree.
func FatTreeBuilder(k int) BuildFunc {
	return func(c topo.Config) topo.Cluster { return topo.NewFatTree(k, c) }
}

// OversubFatTreeBuilder returns a BuildFunc for an oversubscribed FatTree.
func OversubFatTreeBuilder(k, oversub int) BuildFunc {
	return func(c topo.Config) topo.Cluster { return topo.NewFatTreeOversub(k, oversub, c) }
}

// TwoTierBuilder returns a BuildFunc for a leaf/spine network.
func TwoTierBuilder(tors, hostsPerTor, spines int) BuildFunc {
	return func(c topo.Config) topo.Cluster { return topo.NewTwoTier(tors, hostsPerTor, spines, c) }
}

// BackToBackBuilder returns a BuildFunc for two directly-wired hosts.
func BackToBackBuilder() BuildFunc {
	return func(c topo.Config) topo.Cluster { return topo.NewBackToBack(c) }
}

// ---------------------------------------------------------------- NDP ----

// NDPNet bundles an NDP-enabled cluster with its per-host stacks.
type NDPNet struct {
	C      topo.Cluster
	Stacks []*core.Stack
}

// BuildNDP constructs a topology with NDP switch queues and a listening NDP
// stack on every host. It is a thin wrapper over NDPTransport, the single
// construction path (transport.go).
func BuildNDP(build BuildFunc, base topo.Config, scfg core.SwitchConfig, hcfg core.Config) *NDPNet {
	return NDPTransport{Switch: scfg, Host: hcfg}.Build(build, base).(*NDPNet)
}

// EL returns the cluster's scheduler.
func (n *NDPNet) EL() *sim.EventList { return n.C.EventList() }

// Runner returns the cluster's engine driver.
func (n *NDPNet) Runner() sim.Runner { return n.C.Runner() }

// Transfer starts one NDP flow.
func (n *NDPNet) Transfer(src, dst int, size int64, opts core.FlowOpts) *core.Sender {
	return n.Stacks[src].Connect(n.Stacks[dst], size, opts)
}

// Incast launches len(senders) flows of size bytes at the receiver,
// recording each flow's FCT into fcts (microseconds) and returning a
// pointer to the running maximum (last-flow completion).
func (n *NDPNet) Incast(receiver int, senders []int, size int64, fcts *stats.Dist) *sim.Time {
	last := new(sim.Time)
	for _, s := range senders {
		start := n.EL().Now()
		n.Transfer(s, receiver, size, core.FlowOpts{OnReceiverDone: func(r *core.Receiver) {
			fct := r.CompletedAt - start
			if fcts != nil {
				fcts.AddTime(fct)
			}
			if r.CompletedAt > *last {
				*last = r.CompletedAt
			}
		}})
	}
	return last
}

// Permutation starts one unbounded flow per host following the dst matrix
// and returns the senders for goodput metering.
func (n *NDPNet) Permutation(dst []int) []*core.Sender {
	out := make([]*core.Sender, 0, len(dst))
	for src, d := range dst {
		out = append(out, n.Transfer(src, d, -1, core.FlowOpts{}))
	}
	return out
}

// ------------------------------------------------------------ TCP-family ----

// TCPNet bundles a cluster with per-host demuxes for the TCP/DCTCP/MPTCP
// baselines. Cfg is the flow configuration StartFlow applies; the Flow and
// MPTCPFlow methods take explicit configs instead.
type TCPNet struct {
	C     topo.Cluster
	Demux []*fabric.Demux
	Rand  *sim.Rand
	Cfg   tcp.Config

	nextFlow uint64

	// Per-source-host flow-id counters and connect-time RNG streams for
	// the uniform StartFlow surface. Flows may start mid-run from any
	// shard (closed-loop restarts), so this state must be owned by the
	// source host's shard: a net-wide counter or stream would be both a
	// data race and an ordering entanglement — its values would depend on
	// which shard's flow start happened to execute first. The legacy
	// Flow/MPTCPFlow methods (single-domain figure runners) still use the
	// shared Rand/nextFlow.
	srcSeq  []uint64
	srcRand []*sim.Rand

	// pools recycles completed flow state, one pool per scheduling domain.
	// The map is built up front and read-only at runtime: flows may start
	// from any shard's goroutine, and each shard only ever touches the pool
	// of its own event list.
	pools map[*sim.EventList]*tcp.Pool
}

// srcFlowID allocates `stride` consecutive flow ids from the source host's
// private counter; ids are globally unique because the host index occupies
// the high word.
func (t *TCPNet) srcFlowID(src int, stride uint64) uint64 {
	id := uint64(src+1)<<32 | (t.srcSeq[src] + 1)
	t.srcSeq[src] += stride
	return id
}

// newTCPNet wires the shared TCP-family state onto a built cluster: a
// demux per host, the legacy net-wide stream, and the per-source-host
// counters and streams that the uniform StartFlow surface requires. Every
// TCPNet construction site must go through here — a literal &TCPNet{...}
// would leave srcSeq/srcRand nil and StartFlow would panic.
func newTCPNet(c topo.Cluster, cfg tcp.Config, seed uint64) *TCPNet {
	n := &TCPNet{C: c, Cfg: cfg, Rand: sim.NewRand(seed*48271 + 5), nextFlow: 1}
	n.srcSeq = make([]uint64, c.NumHosts())
	n.srcRand = make([]*sim.Rand, c.NumHosts())
	for i := range n.srcRand {
		// One connect-time stream per source host, created up front
		// (mid-run creation would race across shard goroutines).
		n.srcRand[i] = sim.NewRand(seed*48271 + 5 + (uint64(i)+1)*0x9e3779b97f4a7c15)
	}
	for _, h := range c.HostList() {
		d := fabric.NewDemux()
		h.Stack = d
		n.Demux = append(n.Demux, d)
	}
	n.pools = make(map[*sim.EventList]*tcp.Pool)
	for _, h := range c.HostList() {
		if _, ok := n.pools[h.EventList()]; !ok {
			n.pools[h.EventList()] = tcp.NewPool()
		}
	}
	return n
}

// pool returns the flow-state recycling pool of one scheduling domain.
func (t *TCPNet) pool(el *sim.EventList) *tcp.Pool { return t.pools[el] }

// BuildTCPFamily constructs a topology with the given switch queues and a
// demux on every host; cfg is the flow configuration the uniform StartFlow
// surface applies (it must match the queue discipline — e.g. DCTCP flows
// over ECN queues). It is a thin wrapper over TCPTransport, the single
// construction path (transport.go). The Flow/MPTCPFlow methods take
// explicit per-flow configs instead.
func BuildTCPFamily(build BuildFunc, base topo.Config, queue topo.QueueFactory, cfg tcp.Config) *TCPNet {
	return TCPTransport{Cfg: cfg, Queue: queue}.Build(build, base).(*TCPNet)
}

// EL returns the cluster's scheduler.
func (t *TCPNet) EL() *sim.EventList { return t.C.EventList() }

// Runner returns the cluster's engine driver.
func (t *TCPNet) Runner() sim.Runner { return t.C.Runner() }

func (t *TCPNet) flowID(stride uint64) uint64 {
	id := t.nextFlow
	t.nextFlow += stride
	return id
}

// randPath picks one fixed source route — the per-flow ECMP stand-in.
func (t *TCPNet) randPath(src, dst int32) []int16 {
	paths := t.C.Paths(src, dst)
	return paths[t.Rand.Intn(len(paths))]
}

// Flow starts a single-path TCP (or DCTCP, via cfg.DCTCP) transfer.
// size < 0 runs an unbounded flow.
func (t *TCPNet) Flow(src, dst int, size int64, cfg tcp.Config, onDone func(*tcp.Receiver)) (*tcp.Sender, *tcp.Receiver) {
	flow := t.flowID(1)
	hs, hd := t.C.HostList()[src], t.C.HostList()[dst]
	var source tcp.DataSource
	if size < 0 {
		source = unboundedSource{mss: cfg.MSS}
	} else {
		source = tcp.NewFixedSource(size, cfg.MSS)
	}
	snd := t.pool(hs.EventList()).NewSender(hs, t.Demux[src], hd.ID, flow, t.randPath(hs.ID, hd.ID), source, cfg)
	rcv := t.pool(hd.EventList()).NewReceiver(hd, t.Demux[dst], hs.ID, flow, t.randPath(hd.ID, hs.ID))
	rcv.OnComplete = onDone
	snd.Start()
	return snd, rcv
}

type unboundedSource struct{ mss int }

func (u unboundedSource) Claim() int      { return u.mss }
func (u unboundedSource) Exhausted() bool { return false }

// MPTCPFlow starts a multipath transfer with the given config.
func (t *TCPNet) MPTCPFlow(src, dst int, size int64, cfg mptcp.Config, onDone func(*mptcp.Flow)) *mptcp.Flow {
	flow := t.flowID(uint64(cfg.Subflows) + 1)
	hs, hd := t.C.HostList()[src], t.C.HostList()[dst]
	f := mptcp.New(hs, hd, t.Demux[src], t.Demux[dst], flow, size,
		t.C.Paths(hs.ID, hd.ID), t.C.Paths(hd.ID, hs.ID), t.Rand, cfg)
	f.OnComplete = onDone
	f.Start()
	return f
}

// --------------------------------------------------------------- DCQCN ----

// DCQCNNet bundles a lossless cluster with demuxes and the DCQCN config.
type DCQCNNet struct {
	C     topo.Cluster
	Demux []*fabric.Demux
	Cfg   dcqcn.Config

	// Legacy single-domain surface (the Flow method used by the figure
	// runners): a net-wide flow-id counter and synchronous two-sided
	// registration.
	nextFlow uint64
	senders  []*dcqcn.Sender

	// Shard-safe StartFlow state, owned per source host / per scheduling
	// domain exactly like TCPNet's (see TCPNet.srcSeq for the hazard a
	// net-wide counter or stream would reintroduce).
	srcSeq  []uint64
	srcRand []*sim.Rand
	// srcSenders[src] lists every sender started from src, for StopAll:
	// per-source slices so mid-run appends stay within one shard.
	srcSenders [][]*dcqcn.Sender

	// pools recycles completed flow state, one pool per scheduling domain
	// (map built up front, read-only at runtime).
	pools map[*sim.EventList]*dcqcn.Pool
}

// BuildDCQCN constructs a PFC-enabled topology with DCQCN ECN queues. It is
// a thin wrapper over DCQCNTransport, the single construction path
// (transport.go).
func BuildDCQCN(build BuildFunc, base topo.Config, mtu int) *DCQCNNet {
	return DCQCNTransport{MTU: mtu}.Build(build, base).(*DCQCNNet)
}

// EL returns the cluster's scheduler.
func (d *DCQCNNet) EL() *sim.EventList { return d.C.EventList() }

// Runner returns the cluster's engine driver.
func (d *DCQCNNet) Runner() sim.Runner { return d.C.Runner() }

// pool returns the flow-state recycling pool of one scheduling domain.
func (d *DCQCNNet) pool(el *sim.EventList) *dcqcn.Pool { return d.pools[el] }

// Flow starts a DCQCN transfer on a fixed path (RoCE is single-path). It
// is the legacy single-domain surface: both endpoints register
// synchronously, so it must only be used on unsharded networks (the
// figure runners); sharded drivers go through StartFlow.
func (d *DCQCNNet) Flow(src, dst int, size int64, onDone func(*dcqcn.Receiver)) (*dcqcn.Sender, *dcqcn.Receiver) {
	flow := d.nextFlow
	d.nextFlow++
	hs, hd := d.C.HostList()[src], d.C.HostList()[dst]
	fwd := d.C.Paths(hs.ID, hd.ID)
	rev := d.C.Paths(hd.ID, hs.ID)
	r := sim.NewRand(flow * 2654435761)
	s := d.pool(hs.EventList()).NewSender(hs, hd.ID, flow, fwd[r.Intn(len(fwd))], size, d.Cfg)
	rc := d.pool(hd.EventList()).NewReceiver(hd, hs.ID, flow, rev[r.Intn(len(rev))], d.Cfg)
	// On a lossless fixed path nothing arrives after the FIN, so both
	// endpoints retire as soon as the receiver completes — after stopping
	// the sender's rate timers, which otherwise tick forever.
	rc.OnComplete = func(rc *dcqcn.Receiver) {
		if onDone != nil {
			onDone(rc)
		}
		d.Demux[src].Unregister(flow)
		d.Demux[dst].Unregister(flow)
		s.Stop()
		d.pool(hs.EventList()).RetireSender(s)
		d.pool(hd.EventList()).RetireReceiver(rc)
	}
	d.Demux[src].Register(flow, s)
	d.Demux[dst].Register(flow, rc)
	d.senders = append(d.senders, s)
	s.Start()
	return s, rc
}

// StopAll halts every sender's timers (cleanup for unbounded flows).
// Stopping an already-retired sender is a harmless no-op; it runs after
// the simulation, so cross-shard reads are barrier-published.
func (d *DCQCNNet) StopAll() {
	for _, s := range d.senders {
		s.Stop()
	}
	for _, list := range d.srcSenders {
		for _, s := range list {
			s.Stop()
		}
	}
}

// --------------------------------------------------------------- pHost ----

// PHostNet bundles a drop-tail cluster with pHost agents.
type PHostNet struct {
	C     topo.Cluster
	Hosts []*phost.Host

	// srcSeq holds per-source-host flow-id counters (see TCPNet.srcSeq for
	// why a net-wide counter cannot survive sharding).
	srcSeq []uint64
}

// BuildPHost constructs the §6.2 comparison network: 8-packet drop-tail
// queues, per-packet ECMP spraying, pHost endpoints. It is a thin wrapper
// over PHostTransport, the single construction path (transport.go).
func BuildPHost(build BuildFunc, base topo.Config, cfg phost.Config) *PHostNet {
	return PHostTransport{Cfg: cfg}.Build(build, base).(*PHostNet)
}

// EL returns the cluster's scheduler.
func (p *PHostNet) EL() *sim.EventList { return p.C.EventList() }

// Runner returns the cluster's engine driver.
func (p *PHostNet) Runner() sim.Runner { return p.C.Runner() }

// ------------------------------------------------------------- metering ----

// meter snapshots sender-side goodput counters so throughput can be
// measured over a warm interval.
type meter struct {
	read func() int64
	at0  int64
}

func newMeter(read func() int64) *meter { return &meter{read: read} }

func (m *meter) start()       { m.at0 = m.read() }
func (m *meter) bytes() int64 { return m.read() - m.at0 }

// senderMeters wraps NDP senders' acked-byte counters for goodput
// measurement with runWarmMeasure.
func senderMeters(senders []*core.Sender) []*meter {
	meters := make([]*meter, len(senders))
	for i, s := range senders {
		s := s
		meters[i] = newMeter(func() int64 { return s.AckedBytes() })
	}
	return meters
}

// runWarmMeasure runs the event list through a warmup, snapshots the
// meters, runs the measurement window, and returns per-meter Gb/s.
func runWarmMeasure(el *sim.EventList, warm, window sim.Time, meters []*meter) []float64 {
	el.RunUntil(warm)
	for _, m := range meters {
		m.start()
	}
	el.RunUntil(warm + window)
	out := make([]float64, len(meters))
	for i, m := range meters {
		out[i] = stats.Gbps(m.bytes(), window)
	}
	return out
}

// utilization converts per-flow Gb/s into fraction of aggregate host
// capacity.
func utilization(gbps []float64, linkRate int64) float64 {
	var sum float64
	for _, g := range gbps {
		sum += g
	}
	return sum / (float64(len(gbps)) * float64(linkRate) / 1e9)
}

// Blaster is an unresponsive line-rate data source used by the Figure 2
// switch-service-model experiment: it emits MTU-sized packets on a fixed
// one-hop route forever, ignoring all feedback.
type Blaster struct {
	host  *fabric.Host
	arena *fabric.Arena
	dst   int32
	flow  uint64
	path  []int16
	mtu   int
	gap   sim.Time
	el    *sim.EventList
	stop  bool
}

// StartBlast begins blasting from src toward dst on the first enumerated
// path, with the given static phase offset for the first packet. Real
// senders are never synchronized to the picosecond, but their relative
// phases are stable at identical rates — exactly the regularity that
// produces CP's phase effects (and that NDP's trim coin must break).
func StartBlast(c topo.Cluster, src, dst int, flow uint64, mtu int, offset sim.Time) *Blaster {
	h := c.HostList()[src]
	b := &Blaster{
		host:  h,
		arena: fabric.AttachArena(h.EventList()),
		dst:   c.HostList()[dst].ID,
		flow:  flow,
		path:  c.Paths(h.ID, c.HostList()[dst].ID)[0],
		mtu:   mtu,
		gap:   sim.TransmissionTime(mtu, c.LinkRate()),
		el:    c.EventList(),
	}
	b.el.After(offset, b.tick)
	return b
}

func (b *Blaster) tick() {
	if b.stop {
		return
	}
	seq := int64(0)
	p := b.arena.NewData(b.flow, b.host.ID, b.dst, seq, int32(b.mtu))
	p.Path = b.path
	b.host.Send(p)
	b.el.After(b.gap, b.tick)
}

// Stop halts the blaster.
func (b *Blaster) Stop() { b.stop = true }
