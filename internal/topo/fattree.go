package topo

import (
	"fmt"

	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// FatTree is a k-ary three-tier folded-Clos network (Al-Fares et al.).
// With Oversub == 1 it is the fully-provisioned FatTree of the paper's
// evaluation: k pods, each with k/2 ToR and k/2 aggregation switches,
// (k/2)^2 core switches, and k/2 hosts per ToR, giving k^3/4 hosts.
//
// With Oversub == f each ToR serves f*k/2 hosts over the same k/2 uplinks,
// the 4:1 oversubscribed configuration of the Facebook-workload experiment
// (§6.3).
type FatTree struct {
	Network

	K           int
	Oversub     int
	HostsPerTor int

	Tors, Aggs, Cores []*fabric.Switch

	// Port maps for fault injection and telemetry.
	HostNIC  []*fabric.Port   // [host] host->ToR uplink
	TorDown  [][]*fabric.Port // [tor][hostOff]
	TorUp    [][]*fabric.Port // [tor][agg]
	AggDown  [][]*fabric.Port // [agg][tor]
	AggUp    [][]*fabric.Port // [agg][coreOff]
	CoreDown [][]*fabric.Port // [core][pod]

	level []int // per switch ID: 0 tor, 1 agg, 2 core
	pod   []int // per switch ID
	idx   []int // per switch ID: position within pod (or core index)
}

const (
	levelTor = iota
	levelAgg
	levelCore
)

// NewFatTree builds a fully-provisioned k-ary FatTree.
func NewFatTree(k int, cfg Config) *FatTree { return NewFatTreeOversub(k, 1, cfg) }

// NewFatTreeOversub builds a k-ary FatTree whose ToRs serve oversub times
// more hosts than a fully-provisioned tree. k must be even, oversub >= 1.
//
// With cfg.Shards > 1 the tree is partitioned by pod (pods are contiguous
// runs of hosts, ToRs and aggs; core switches spread round-robin), each
// shard owning its own event list. Only agg<->core links cross the cut, so
// the conservative lookahead is the link propagation delay. Shards is
// clamped to the pod count.
func NewFatTreeOversub(k, oversub int, cfg Config) *FatTree {
	if k < 2 || k%2 != 0 {
		panic(fmt.Sprintf("topo: FatTree k must be even and >= 2, got %d", k))
	}
	if oversub < 1 {
		panic("topo: oversub must be >= 1")
	}
	cfg = cfg.withDefaults()
	ft := &FatTree{K: k, Oversub: oversub, HostsPerTor: oversub * k / 2}
	shards := cfg.Shards
	if shards > k {
		shards = k // at most one shard per pod
	}
	ft.initShards(cfg, shards)
	shardOfPod := func(pod int) int { return groupShard(pod, k, ft.Shards()) }

	half := k / 2
	nPods := k
	nTorsPerPod := half
	nAggsPerPod := half
	nCores := half * half
	nHosts := nPods * nTorsPerPod * ft.HostsPerTor

	// Create switches. IDs are dense across all levels for the meta arrays.
	// Every switch gets its private ECMP stream up front (mid-run creation
	// would race across shard goroutines).
	newSwitch := func(level, pod, idx, shard int, name string) *fabric.Switch {
		id := len(ft.Switches)
		sw := fabric.NewSwitch(ft.ShardEventList(shard), id, name)
		sw.Route = ft.route
		ft.Switches = append(ft.Switches, sw)
		ft.level = append(ft.level, level)
		ft.pod = append(ft.pod, pod)
		ft.idx = append(ft.idx, idx)
		ft.swShard = append(ft.swShard, shard)
		ft.switchRand(id)
		if cfg.Lossless {
			sw.EnableLossless(cfg.LosslessLimit, cfg.PFCXoff, cfg.PFCXon)
		}
		return sw
	}
	for p := 0; p < nPods; p++ {
		for t := 0; t < nTorsPerPod; t++ {
			ft.Tors = append(ft.Tors, newSwitch(levelTor, p, t, shardOfPod(p), fmt.Sprintf("tor%d.%d", p, t)))
		}
	}
	for p := 0; p < nPods; p++ {
		for a := 0; a < nAggsPerPod; a++ {
			ft.Aggs = append(ft.Aggs, newSwitch(levelAgg, p, a, shardOfPod(p), fmt.Sprintf("agg%d.%d", p, a)))
		}
	}
	for c := 0; c < nCores; c++ {
		// Cores belong to no pod; spread them across shards so the core
		// layer's work parallelizes too.
		ft.Cores = append(ft.Cores, newSwitch(levelCore, -1, c, groupShard(c, nCores, ft.Shards()), fmt.Sprintf("core%d", c)))
	}

	// Hosts live with their pod's shard.
	for h := 0; h < nHosts; h++ {
		pod, _, _ := ft.locate(int32(h))
		shard := shardOfPod(pod)
		ft.hostShard = append(ft.hostShard, shard)
		host := fabric.NewHost(ft.ShardEventList(shard), int32(h), fmt.Sprintf("h%d", h))
		ft.Hosts = append(ft.Hosts, host)
	}

	ft.TorDown = make([][]*fabric.Port, len(ft.Tors))
	ft.TorUp = make([][]*fabric.Port, len(ft.Tors))
	ft.AggDown = make([][]*fabric.Port, len(ft.Aggs))
	ft.AggUp = make([][]*fabric.Port, len(ft.Aggs))
	ft.CoreDown = make([][]*fabric.Port, len(ft.Cores))
	ft.HostNIC = make([]*fabric.Port, nHosts)

	// Each port lives on its owning node's shard list; a port whose peer is
	// in another shard routes deliveries through that pair's mailbox.
	newPort := func(shard int, name string, q fabric.Queue) *fabric.Port {
		p := fabric.NewPort(ft.ShardEventList(shard), name, q, cfg.LinkRateBps, cfg.LinkDelay)
		p.UID = ft.allocPortUID()
		return p
	}
	wire := func(p *fabric.Port, from, to int, dst fabric.Sink) {
		iq := link(p, dst)
		if from != to {
			p.Cross = ft.noteCrossLink(from, to, p.Delay)
			if iq != nil {
				// The PFC reverse channel: pause/resume signals travel
				// from the lossless switch (shard to) back to the upstream
				// transmitter (shard from) at the same link delay, so the
				// reverse direction is a cut edge of its own.
				iq.Cross = ft.noteCrossLink(to, from, p.Delay)
			}
		}
	}

	// Wire hosts <-> ToRs. ToR egress ports [0, HostsPerTor) go down.
	for ti, tor := range ft.Tors {
		ts := ft.swShard[tor.ID]
		ft.TorDown[ti] = make([]*fabric.Port, ft.HostsPerTor)
		for off := 0; off < ft.HostsPerTor; off++ {
			h := ft.hostID(ft.pod[tor.ID], ft.idx[tor.ID], off)
			host := ft.Hosts[h]
			down := newPort(ts, portName("tor", ti, int(h)), cfg.SwitchQueue(fmt.Sprintf("%s->h%d", tor.Name, h)))
			wire(down, ts, ft.hostShard[h], host)
			tor.AddPort(down)
			ft.TorDown[ti][off] = down

			up := newPort(ft.hostShard[h], portName("h", int(h), ti), cfg.HostQueue(fmt.Sprintf("h%d", h)))
			wire(up, ft.hostShard[h], ts, tor)
			host.NIC = up
			ft.HostNIC[h] = up
		}
	}
	// Wire ToRs <-> Aggs. ToR egress ports [HostsPerTor, HostsPerTor+half).
	// Agg egress ports [0, half) go down to ToRs.
	for ti, tor := range ft.Tors {
		p := ft.pod[tor.ID]
		ts := ft.swShard[tor.ID]
		ft.TorUp[ti] = make([]*fabric.Port, half)
		for a := 0; a < half; a++ {
			agg := ft.Aggs[p*half+a]
			up := newPort(ts, portName("torUp", ti, a), cfg.SwitchQueue(fmt.Sprintf("%s->%s", tor.Name, agg.Name)))
			wire(up, ts, ft.swShard[agg.ID], agg)
			tor.AddPort(up)
			ft.TorUp[ti][a] = up
		}
	}
	for ai, agg := range ft.Aggs {
		p := ft.pod[agg.ID]
		as := ft.swShard[agg.ID]
		ft.AggDown[ai] = make([]*fabric.Port, half)
		for t := 0; t < half; t++ {
			tor := ft.Tors[p*half+t]
			down := newPort(as, portName("aggDown", ai, t), cfg.SwitchQueue(fmt.Sprintf("%s->%s", agg.Name, tor.Name)))
			wire(down, as, ft.swShard[tor.ID], tor)
			agg.AddPort(down)
			ft.AggDown[ai][t] = down
		}
	}
	// Wire Aggs <-> Cores. Agg a connects to cores [a*half, (a+1)*half).
	// Agg egress ports [half, k) go up; core egress port p goes to pod p.
	// These are the only links that can cross the pod partition.
	for ai, agg := range ft.Aggs {
		a := ft.idx[agg.ID]
		as := ft.swShard[agg.ID]
		ft.AggUp[ai] = make([]*fabric.Port, half)
		for j := 0; j < half; j++ {
			core := ft.Cores[a*half+j]
			up := newPort(as, portName("aggUp", ai, j), cfg.SwitchQueue(fmt.Sprintf("%s->%s", agg.Name, core.Name)))
			wire(up, as, ft.swShard[core.ID], core)
			agg.AddPort(up)
			ft.AggUp[ai][j] = up
		}
	}
	for ci, core := range ft.Cores {
		a := ci / half // which agg position this core group serves
		cs := ft.swShard[core.ID]
		ft.CoreDown[ci] = make([]*fabric.Port, nPods)
		for p := 0; p < nPods; p++ {
			agg := ft.Aggs[p*half+a]
			down := newPort(cs, portName("coreDown", ci, p), cfg.SwitchQueue(fmt.Sprintf("%s->%s", core.Name, agg.Name)))
			wire(down, cs, ft.swShard[agg.ID], agg)
			core.AddPort(down)
			ft.CoreDown[ci][p] = down
		}
	}
	ft.finishShards()
	return ft
}

// hostID maps (pod, torInPod, offset) to a host id.
func (ft *FatTree) hostID(pod, tor, off int) int32 {
	half := ft.K / 2
	return int32((pod*half+tor)*ft.HostsPerTor + off)
}

// locate maps a host id to (pod, torInPod, offset).
func (ft *FatTree) locate(h int32) (pod, tor, off int) {
	half := ft.K / 2
	off = int(h) % ft.HostsPerTor
	t := int(h) / ft.HostsPerTor
	return t / half, t % half, off
}

// route is the FatTree RouteFunc: source routes are followed verbatim;
// destination-routed packets (baselines and bounced NDP headers) use
// up/down routing with ECMP on the up segments.
func (ft *FatTree) route(sw *fabric.Switch, p *fabric.Packet) int {
	if out, ok := sourceRouteHop(p); ok {
		return out
	}
	half := ft.K / 2
	dpod, dtor, doff := ft.locate(p.Dst)
	switch ft.level[sw.ID] {
	case levelTor:
		if ft.pod[sw.ID] == dpod && ft.idx[sw.ID] == dtor {
			return doff
		}
		return ft.HostsPerTor + ft.pickUp(sw, p, half)
	case levelAgg:
		if ft.pod[sw.ID] == dpod {
			return dtor
		}
		return half + ft.pickUp(sw, p, half)
	default: // core
		return dpod
	}
}

func (ft *FatTree) pickUp(sw *fabric.Switch, p *fabric.Packet, n int) int {
	if ft.cfg.ECMPPerFlow {
		return int(hash64(p.Flow^(uint64(sw.ID)<<32|0x5bd1e995)) % uint64(n))
	}
	// Per-switch stream: draw order is the packet sequence through this
	// one switch, which is shard-local and shard-count-independent.
	return ft.swRand[sw.ID].Intn(n)
}

// Paths enumerates the source routes from src to dst: one route per core
// switch for inter-pod pairs ((k/2)^2 routes), one per aggregation switch
// within a pod (k/2 routes), and the single ToR hop within a rack. The
// result is cached and shared; callers must not mutate the slices.
func (ft *FatTree) Paths(src, dst int32) [][]int16 {
	if src == dst {
		return nil
	}
	// The cache is per source-host shard: enumeration happens mid-run
	// (control-packet routing), and shards must never share a mutable map.
	cache := ft.pathCache[ft.hostShard[src]]
	key := pairKey{src, dst}
	if p, ok := cache[key]; ok {
		return p
	}
	spod, stor, _ := ft.locate(src)
	dpod, dtor, doff := ft.locate(dst)
	half := ft.K / 2
	slab := &ft.pathSlab[ft.hostShard[src]]
	var paths [][]int16
	switch {
	case spod == dpod && stor == dtor:
		paths = slab.alloc(1, 1)
		paths[0][0] = int16(doff)
	case spod == dpod:
		paths = slab.alloc(half, 3)
		for a := 0; a < half; a++ {
			p := paths[a]
			p[0] = int16(ft.HostsPerTor + a) // ToR up to agg a
			p[1] = int16(dtor)               // agg down to dst ToR
			p[2] = int16(doff)               // ToR down to host
		}
	default:
		paths = slab.alloc(half*half, 5)
		for a := 0; a < half; a++ {
			for j := 0; j < half; j++ {
				p := paths[a*half+j]
				p[0] = int16(ft.HostsPerTor + a) // ToR up to agg a
				p[1] = int16(half + j)           // agg up to its j-th core
				p[2] = int16(dpod)               // core down to dst pod
				p[3] = int16(dtor)               // agg down to dst ToR
				p[4] = int16(doff)               // ToR down to host
			}
		}
	}
	cache[key] = paths
	return paths
}

// NumHosts returns the number of hosts in the tree.
func (ft *FatTree) NumHosts() int { return len(ft.Hosts) }

// MinPathDelay implements Cluster: the shortest src->dst route is 2 links
// within a rack, 4 via an aggregation switch within a pod, 6 via the core
// between pods, all at the uniform per-link propagation delay (DegradeLink
// only changes rates, never delays).
func (ft *FatTree) MinPathDelay(src, dst int) sim.Time {
	if src == dst {
		return 0
	}
	spod, stor, _ := ft.locate(int32(src))
	dpod, dtor, _ := ft.locate(int32(dst))
	links := sim.Time(6)
	switch {
	case spod == dpod && stor == dtor:
		links = 2
	case spod == dpod:
		links = 4
	}
	return links * ft.cfg.LinkDelay
}

// DegradeLink reduces the line rate of the bidirectional link between agg
// switch aggIdx (global index) and its coreOff-th core to newRate — the
// failure scenario of Figure 22.
func (ft *FatTree) DegradeLink(aggIdx, coreOff int, newRate int64) {
	up := ft.AggUp[aggIdx][coreOff]
	up.RateBps = newRate
	a := ft.idx[ft.Aggs[aggIdx].ID]
	pod := ft.pod[ft.Aggs[aggIdx].ID]
	core := a*(ft.K/2) + coreOff
	ft.CoreDown[core][pod].RateBps = newRate
}

// UplinkTrims sums payload trims on ToR->Agg and Agg->Core ports (the
// "uplink trimming" statistic of §3.2.4's congestion-collapse discussion).
func (ft *FatTree) UplinkTrims() int64 {
	var n int64
	for _, ports := range ft.TorUp {
		for _, p := range ports {
			n += p.Q.Stats().Trims
		}
	}
	for _, ports := range ft.AggUp {
		for _, p := range ports {
			n += p.Q.Stats().Trims
		}
	}
	return n
}

// TotalTrims sums payload trims across every switch port.
func (ft *FatTree) TotalTrims() int64 {
	var n int64
	for _, sw := range ft.Switches {
		for _, p := range sw.Ports {
			n += p.Q.Stats().Trims
		}
	}
	return n
}
