package topo

// This file is the topology partitioner behind cfg.Shards: deterministic
// helpers that split a topology's components across per-core event-list
// domains so the conservative windowed runner (sim.MultiRunner) can advance
// them in parallel. Partitions only affect *which goroutine* simulates a
// component — results are bit-identical for every layout — so the only
// quality metric is the edge cut (fewer crossing links means less mailbox
// traffic per window) and balance (even event load per shard).
//
// FatTree partitions by pod and TwoTier by ToR group via groupShard: the
// natural unit of locality is a contiguous index range, and only the
// upper-layer mesh crosses the cut. Jellyfish has no such structure, so it
// uses greedyEdgeCutParts: BFS-grown balanced regions over the random
// switch graph, refined by a greedy boundary pass that shrinks the cut.

// groupShard maps contiguous group index ranges onto shards: group g of
// nGroups lands on shard g*shards/nGroups, so every shard owns a contiguous
// run of groups and the runs differ in size by at most one group.
func groupShard(group, nGroups, shards int) int {
	return group * shards / nGroups
}

// greedyEdgeCutParts splits a connected graph (adjacency lists, node ids
// dense in [0, n)) into parts balanced groups with a small edge cut. The
// algorithm is deterministic in (adj, parts): BFS regions grow round-robin
// from seeds spread across the id space until every node is claimed, then a
// few greedy refinement passes move boundary nodes to the neighboring part
// holding more of their edges, when that strictly reduces the cut without
// unbalancing the sizes. Returns the part id per node.
func greedyEdgeCutParts(adj [][]int, parts int) []int {
	n := len(adj)
	if parts > n {
		parts = n
	}
	part := make([]int, n)
	if parts <= 1 {
		return part
	}
	for i := range part {
		part[i] = -1
	}
	// Balanced quotas: the first n%parts parts hold one extra node.
	floor, ceil := n/parts, n/parts
	if n%parts != 0 {
		ceil++
	}
	quota := make([]int, parts)
	for p := range quota {
		quota[p] = floor
		if p < n%parts {
			quota[p] = ceil
		}
	}
	size := make([]int, parts)
	frontier := make([][]int, parts)
	assigned := 0
	assign := func(v, p int) {
		part[v] = p
		size[p]++
		assigned++
		frontier[p] = append(frontier[p], v)
	}
	for p := 0; p < parts; p++ {
		seed := p * n / parts
		for part[seed] != -1 {
			seed = (seed + 1) % n
		}
		assign(seed, p)
	}
	// BFS growth: parts take turns claiming one unassigned neighbor of
	// their frontier; a part whose frontier is exhausted (its region is
	// walled in) grabs the lowest unassigned node and keeps growing there.
	for assigned < n {
		for p := 0; p < parts && assigned < n; p++ {
			if size[p] >= quota[p] {
				continue
			}
			v := -1
			for v < 0 && len(frontier[p]) > 0 {
				u := frontier[p][0]
				for _, nb := range adj[u] {
					if part[nb] == -1 {
						v = nb
						break
					}
				}
				if v < 0 {
					frontier[p] = frontier[p][1:]
				}
			}
			if v < 0 {
				for u := 0; u < n; u++ {
					if part[u] == -1 {
						v = u
						break
					}
				}
			}
			assign(v, p)
		}
	}
	// Greedy refinement: move a node to the adjacent part that holds more
	// of its edges when the move strictly shrinks the cut and both sizes
	// stay within one node of the balanced quota.
	cnt := make([]int, parts)
	for pass := 0; pass < 4; pass++ {
		moved := false
		for v := 0; v < n; v++ {
			for p := range cnt {
				cnt[p] = 0
			}
			for _, nb := range adj[v] {
				cnt[part[nb]]++
			}
			cur, best := part[v], part[v]
			for p := 0; p < parts; p++ {
				if cnt[p] > cnt[best] {
					best = p
				}
			}
			if best == cur || cnt[best] <= cnt[cur] {
				continue
			}
			if size[cur]-1 < floor-1 || size[cur] <= 1 || size[best]+1 > ceil+1 {
				continue
			}
			size[cur]--
			size[best]++
			part[v] = best
			moved = true
		}
		if !moved {
			break
		}
	}
	return part
}
