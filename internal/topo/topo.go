// Package topo builds the Clos topologies the paper evaluates on: k-ary
// 3-tier FatTrees (optionally oversubscribed), 2-tier leaf/spine networks,
// and degenerate test topologies (back-to-back hosts, single switch). It
// also provides path enumeration for source routing and destination-based
// ECMP routing (per-packet random or per-flow hashed) for the baselines and
// for NDP's return-to-sender headers.
package topo

import (
	"fmt"

	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// QueueFactory builds a queue discipline for a named port. Experiments pick
// the discipline per protocol: NDP switch queues, ECN queues for DCTCP,
// plain drop-tail for TCP.
type QueueFactory func(name string) fabric.Queue

// Config carries the physical parameters shared by all topology builders.
type Config struct {
	// LinkRateBps is the line rate of every link (default 10Gb/s).
	LinkRateBps int64
	// LinkDelay is the one-way propagation delay per link (default 500ns).
	LinkDelay sim.Time
	// SwitchQueue builds each switch egress queue (default: drop-tail FIFO
	// of 8 jumbograms).
	SwitchQueue QueueFactory
	// HostQueue builds each host NIC queue (default: unbounded control-
	// priority queue, the NDP host discipline; harmless for others).
	HostQueue QueueFactory
	// ECMPPerFlow selects hashed per-flow ECMP for destination-routed
	// packets instead of per-packet random spraying.
	ECMPPerFlow bool
	// Lossless enables PFC at every switch.
	Lossless bool
	// LosslessLimit, PFCXoff, PFCXon configure PFC byte budgets; zero
	// values take defaults sized in MTUs.
	LosslessLimit, PFCXoff, PFCXon int
	// Seed seeds the topology's private RNG (per-packet ECMP choices).
	Seed uint64
	// Shards partitions the topology into this many per-core shards, each
	// with its own event list, advanced in conservative windows
	// (sim.MultiRunner) bounded by a per-shard-pair lookahead matrix (the
	// minimum total path delay across the cut edges between each pair).
	// 0 or 1 keeps the proven single-list engine. Results are
	// bit-identical for every value. FatTree partitions by pod (the cut
	// runs through the agg<->core layer), TwoTier by ToR group (spines
	// spread across shards), Jellyfish by BFS-grown balanced switch
	// regions (greedy edge-cut). BackToBack supports only 1. Lossless
	// (PFC) fabrics shard too: pause/resume transitions crossing a cut
	// travel as keyed cross-shard entries over the reverse channel, whose
	// link delay is part of the lookahead matrix.
	Shards int
}

func (c Config) withDefaults() Config {
	if c.LinkRateBps == 0 {
		c.LinkRateBps = 10e9
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = 500 * sim.Nanosecond
	}
	if c.SwitchQueue == nil {
		c.SwitchQueue = func(string) fabric.Queue { return fabric.NewFIFOQueue(8 * 9000) }
	}
	if c.HostQueue == nil {
		c.HostQueue = func(string) fabric.Queue { return fabric.NewCtrlPrioQueue() }
	}
	if c.LosslessLimit == 0 {
		c.LosslessLimit = 200 * 9000
	}
	if c.PFCXoff == 0 {
		c.PFCXoff = 2 * 9000
	}
	if c.PFCXon == 0 {
		c.PFCXon = 9000
	}
	return c
}

// Cluster is the view of a topology that transport harnesses need: the
// scheduler (single-list or sharded), the hosts, source-route enumeration
// and telemetry. All concrete topologies (*FatTree, *TwoTier, *BackToBack)
// implement it.
type Cluster interface {
	EventList() *sim.EventList
	Runner() sim.Runner
	Shards() int
	ShardOfHost(h int) int
	Defer(from, to int, at sim.Time, fn func())
	LinkDelay() sim.Time
	// MinPathDelay returns the minimum total propagation delay of any
	// physical path from host src to host dst — the earliest a causal
	// effect of an event at src can reach dst. Cross-shard deferred
	// commands (Defer) and receiver registrations use it as their delivery
	// offset: it is at least the pair lookahead L[shard(src)][shard(dst)]
	// (every src->dst path crosses the same cuts the matrix is built
	// from), yet depends only on the topology, never on the shard layout —
	// which keeps N-shard runs bit-identical to 1-shard runs.
	MinPathDelay(src, dst int) sim.Time
	HostList() []*fabric.Host
	SwitchList() []*fabric.Switch
	Paths(src, dst int32) [][]int16
	NumHosts() int
	LinkRate() int64
	CollectStats() SwitchStats
	PacketHops() int64
	// PacketsInUse sums the outstanding packets of every shard arena: the
	// leak counter the golden suite asserts returns to zero after Close.
	PacketsInUse() int64
	// Close releases engine resources (the sharded runner's persistent
	// shard workers) and frees every packet the fabric still holds, so the
	// arena leak counters settle. Idempotent.
	Close()
}

// Network is the common state every topology exposes: the per-shard event
// lists and their runner, the hosts and switches, and cached source-route
// path lists.
type Network struct {
	EL       *sim.EventList // shard 0's list (the only list when unsharded)
	Rand     *sim.Rand      // construction-time randomness (graph wiring)
	Hosts    []*fabric.Host
	Switches []*fabric.Switch

	cfg    Config
	els    []*sim.EventList
	runner sim.Runner
	// boxes[src][dst] is the cross-shard mailbox for each directed shard
	// pair; inboxes[dst] is the receiving slot arena. Both nil when
	// unsharded.
	boxes     [][]fabric.CrossBox
	inboxes   []*fabric.Inbox
	lookahead sim.Time
	// crossDelay[src][dst] is the minimum delay of any single cut edge
	// from shard src to shard dst reported via noteCrossLink (Infinity
	// when none). finishShards closes it into the all-pairs lookahead
	// matrix handed to the runner.
	crossDelay [][]sim.Time
	hostShard  []int
	swShard    []int
	released   bool        // Close already freed the fabric's held packets
	swRand     []*sim.Rand // per-switch ECMP stream, index = switch ID
	portUID    uint32
	cmdSeq     []uint64 // per-host command emission counters (Defer ord)
	// pathCache is per source-host shard so concurrent shards never share
	// a map; the cached route slices themselves are identical read-only
	// values in every shard.
	pathCache []map[pairKey][][]int16
	// pathSlab backs the cached routes: hop arrays and route headers are
	// carved from large shared chunks, so a cold cache entry costs
	// amortized-zero allocations instead of one per route (or per pair).
	// Sharded like pathCache — a slab is only ever appended to by its own
	// shard.
	pathSlab []pathSlab
}

type pairKey struct{ src, dst int32 }

// pathSlab carves route storage out of chunked arrays. Entries are written
// once when a (src,dst) pair is first enumerated and are immutable after
// publication in the path cache; a chunk's unused tail is abandoned (not
// reused) when a request does not fit, so published slices never alias new
// ones.
type pathSlab struct {
	hops []int16
	hdrs [][]int16
}

// alloc returns n route headers of hopLen hops each, zeroed, as one
// contiguous capacity-clamped slice. The caller fills in the hops.
func (s *pathSlab) alloc(n, hopLen int) [][]int16 {
	need := n * hopLen
	if cap(s.hops)-len(s.hops) < need {
		c := 4096
		if c < need {
			c = need
		}
		s.hops = make([]int16, 0, c)
	}
	if cap(s.hdrs)-len(s.hdrs) < n {
		c := 512
		if c < n {
			c = n
		}
		s.hdrs = make([][]int16, 0, c)
	}
	base := len(s.hdrs)
	for i := 0; i < n; i++ {
		h := len(s.hops)
		s.hops = s.hops[:h+hopLen]
		s.hdrs = append(s.hdrs, s.hops[h:h+hopLen:h+hopLen])
	}
	return s.hdrs[base : base+n : base+n]
}

// EventList returns shard 0's scheduler — the simulation scheduler for
// unsharded topologies. Pre-run setup code may use it; mid-run components
// must schedule on their own host's list.
func (n *Network) EventList() *sim.EventList { return n.EL }

// Runner returns the engine driver: the event list itself when unsharded,
// or the conservative windowed multi-list runner.
func (n *Network) Runner() sim.Runner { return n.runner }

// Shards returns the number of partitions the topology runs as.
func (n *Network) Shards() int { return len(n.els) }

// ShardOfHost returns the shard owning host h.
func (n *Network) ShardOfHost(h int) int { return n.hostShard[h] }

// ShardEventList returns the scheduler of one shard.
func (n *Network) ShardEventList(shard int) *sim.EventList { return n.els[shard] }

// Lookahead returns the conservative window bound: the minimum latency of
// any cross-shard interaction (Infinity when nothing crosses).
func (n *Network) Lookahead() sim.Time { return n.lookahead }

// HostList returns the hosts in id order.
func (n *Network) HostList() []*fabric.Host { return n.Hosts }

// SwitchList returns all switches.
func (n *Network) SwitchList() []*fabric.Switch { return n.Switches }

// LinkRate returns the line rate in bits per second.
func (n *Network) LinkRate() int64 { return n.cfg.LinkRateBps }

// LinkDelay returns the per-link one-way propagation delay.
func (n *Network) LinkDelay() sim.Time { return n.cfg.LinkDelay }

// Config returns the configuration the network was built with.
func (n *Network) Config() Config { return n.cfg }

func (n *Network) init(cfg Config) {
	if cfg.Shards > 1 {
		panic("topo: this topology does not partition (sharding is supported for FatTree, TwoTier and Jellyfish)")
	}
	n.initShards(cfg, 1)
}

// Close stops the sharded runner's persistent shard workers and frees every
// packet the fabric still holds (port pipelines, queues, lossless ingress
// backlogs, cross-shard mailboxes) back into the shard arenas. A run that
// hits its deadline mid-traffic still ends with PacketsInUse() == 0 unless
// something truly leaked. Idempotent.
func (n *Network) Close() {
	if mr, ok := n.runner.(*sim.MultiRunner); ok {
		mr.Close()
	}
	if n.released {
		return
	}
	n.released = true
	for _, h := range n.Hosts {
		if h.NIC != nil {
			h.NIC.ReleasePackets()
		}
	}
	for _, sw := range n.Switches {
		sw.ReleasePackets()
	}
	for i := range n.boxes {
		for j := range n.boxes[i] {
			n.boxes[i][j].ReleasePackets()
		}
	}
	for _, ib := range n.inboxes {
		ib.ReleasePackets()
	}
}

// PacketsInUse implements Cluster: outstanding packets across shard arenas.
func (n *Network) PacketsInUse() int64 {
	var total int64
	for _, el := range n.els {
		if a, ok := el.Allocator().(*fabric.Arena); ok {
			total += a.InUse()
		}
	}
	return total
}

// initShards sets up the common state for a topology split into shards
// event-list domains. Builders that support partitioning call it with
// their clamped shard count; everyone else goes through init.
func (n *Network) initShards(cfg Config, shards int) {
	if shards < 1 {
		shards = 1
	}
	n.cfg = cfg
	n.els = make([]*sim.EventList, shards)
	for i := range n.els {
		n.els[i] = sim.NewEventList()
		// Every shard owns one packet arena; components scheduled on this
		// list allocate from it and free into it.
		fabric.AttachArena(n.els[i])
	}
	n.EL = n.els[0]
	n.Rand = sim.NewRand(cfg.Seed ^ 0x9e3779b97f4a7c15)
	n.pathCache = make([]map[pairKey][][]int16, shards)
	for i := range n.pathCache {
		n.pathCache[i] = make(map[pairKey][][]int16)
	}
	n.pathSlab = make([]pathSlab, shards)
	n.lookahead = sim.Infinity
	if shards > 1 {
		n.boxes = make([][]fabric.CrossBox, shards)
		n.inboxes = make([]*fabric.Inbox, shards)
		n.crossDelay = make([][]sim.Time, shards)
		for i := range n.boxes {
			n.boxes[i] = make([]fabric.CrossBox, shards)
			n.inboxes[i] = fabric.NewInbox(n.els[i])
			n.crossDelay[i] = make([]sim.Time, shards)
			for j := range n.crossDelay[i] {
				if i != j {
					n.crossDelay[i][j] = sim.Infinity
				}
			}
		}
		n.runner = sim.NewMultiRunner(n.els, cfg.LinkDelay, n.exchange)
	} else {
		n.runner = n.els[0]
	}
}

// finishShards computes the runner's lookahead once the builder has
// reported every cross-shard link via noteCrossLink: the scalar minimum
// (the classic window bound, still the Lookahead() summary) and the
// per-shard-pair matrix L[i][j] — the minimum total path delay across the
// actual cut edges from shard i to shard j, the metric closure of the
// per-pair single-edge minima under Floyd-Warshall. Non-adjacent shard
// pairs get multi-hop sums (wider windows than the scalar), pairs no path
// connects stay at Infinity (no constraint at all).
func (n *Network) finishShards() {
	n.cmdSeq = make([]uint64, len(n.Hosts))
	mr, ok := n.runner.(*sim.MultiRunner)
	if !ok {
		return
	}
	if n.lookahead == sim.Infinity {
		// No link crosses the partition: windows can be arbitrarily
		// wide, but link delay is a safe, simple bound.
		n.lookahead = n.cfg.LinkDelay
	}
	mr.Lookahead = n.lookahead
	shards := len(n.els)
	L := make([][]sim.Time, shards)
	for i := range L {
		L[i] = append([]sim.Time(nil), n.crossDelay[i]...)
	}
	for k := 0; k < shards; k++ {
		for i := 0; i < shards; i++ {
			if i == k {
				continue
			}
			for j := 0; j < shards; j++ {
				if j == i || j == k {
					continue
				}
				if via := satAddTime(L[i][k], L[k][j]); via < L[i][j] {
					L[i][j] = via
				}
			}
		}
	}
	mr.SetLookaheadMatrix(L)
}

// satAddTime adds two delays without overflowing past Infinity.
func satAddTime(a, b sim.Time) sim.Time {
	if a >= sim.Infinity-b {
		return sim.Infinity
	}
	return a + b
}

// noteCrossLink registers a shard-crossing link's latency for the
// lookahead computation and returns the mailbox its traffic must use.
func (n *Network) noteCrossLink(from, to int, delay sim.Time) *fabric.CrossBox {
	if delay < n.lookahead {
		n.lookahead = delay
	}
	if delay < n.crossDelay[from][to] {
		n.crossDelay[from][to] = delay
	}
	return &n.boxes[from][to]
}

// exchange drains every cross-shard mailbox into its destination list; the
// windowed runner calls it single-threaded at each window boundary.
func (n *Network) exchange() {
	for src := range n.boxes {
		for dst := range n.boxes[src] {
			if n.boxes[src][dst].Len() > 0 {
				n.boxes[src][dst].Drain(n.inboxes[dst])
			}
		}
	}
}

// Defer runs fn at absolute time at in host to's event domain, emitted by
// host from (whose identity and emission order form the deterministic
// equal-time key). It is the cross-shard command path for interactions
// that are not packets: receiver-side flow registration and closed-loop
// workload restarts. Cross-shard deferrals must satisfy the conservative
// bound at >= now(from) + L[shard(from)][shard(to)] — MinPathDelay(from,
// to) always does; same-shard deferrals have no bound.
func (n *Network) Defer(from, to int, at sim.Time, fn func()) {
	n.cmdSeq[from]++
	ord := sim.CommandOrd(uint32(from), n.cmdSeq[from])
	sf, st := n.hostShard[from], n.hostShard[to]
	if sf == st {
		n.els[st].AtKeyed(at, ord, fn)
		return
	}
	n.boxes[sf][st].AddCommand(at, ord, fn)
}

// allocPortUID hands out canonical port identities in construction order.
func (n *Network) allocPortUID() uint32 {
	n.portUID++
	return n.portUID
}

// switchRand returns switch id's private ECMP stream, creating per-switch
// generators on first use. Per-switch streams make destination-routed path
// choices depend only on the packet sequence through that one switch, so
// they survive sharding; a topology-wide stream would entangle draw order
// across shards.
func (n *Network) switchRand(id int) *sim.Rand {
	for len(n.swRand) <= id {
		n.swRand = append(n.swRand,
			sim.NewRand(n.cfg.Seed^(uint64(len(n.swRand))+1)*0x9e3779b97f4a7c15^0xc2b2ae3d27d4eb4f))
	}
	return n.swRand[id]
}

// hash64 mixes a flow id with a per-switch salt for per-flow ECMP.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// sourceRouteHop consumes one hop of a packet's source route, or returns
// false if the packet is destination-routed.
func sourceRouteHop(p *fabric.Packet) (int, bool) {
	if p.Path == nil {
		return 0, false
	}
	if int(p.Hop) >= len(p.Path) {
		return -1, true // malformed: off the end of the route
	}
	out := int(p.Path[p.Hop])
	p.Hop++
	return out, true
}

// link wires a unidirectional link from the given port to a destination
// node, inserting a PFC ingress queue when dst is a lossless switch (and
// returning it, so shard-aware callers can wire the ingress's reverse
// pause channel when the link crosses a shard cut).
func link(from *fabric.Port, dst fabric.Sink) *fabric.IngressQueue {
	if sw, ok := dst.(*fabric.Switch); ok && sw.Lossless() {
		return sw.NewIngress(from)
	}
	from.Connect(dst)
	return nil
}

// SwitchStats aggregates queue counters across a set of switches.
type SwitchStats struct {
	Drops, Trims, Marks, Bounces int64
}

// CollectStats sums queue counters over every switch port in the network.
func (n *Network) CollectStats() SwitchStats {
	var s SwitchStats
	for _, sw := range n.Switches {
		for _, p := range sw.Ports {
			qs := p.Q.Stats()
			s.Drops += qs.Drops
			s.Trims += qs.Trims
			s.Marks += qs.Marks
			s.Bounces += qs.Bounces
		}
	}
	return s
}

// PacketHops sums transmitted packets over every port in the network —
// host NICs and switch egresses alike. One wire traversal counts once, so
// the total is the simulation's packet-hop volume, the workload-independent
// denominator the bench harness reports throughput against.
func (n *Network) PacketHops() int64 {
	var hops int64
	for _, h := range n.Hosts {
		hops += h.NIC.PacketsSent
	}
	for _, sw := range n.Switches {
		for _, p := range sw.Ports {
			hops += p.PacketsSent
		}
	}
	return hops
}

// portName builds a stable debug name for a link endpoint.
func portName(kind string, a, b int) string { return fmt.Sprintf("%s%d->%d", kind, a, b) }
