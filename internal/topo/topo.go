// Package topo builds the Clos topologies the paper evaluates on: k-ary
// 3-tier FatTrees (optionally oversubscribed), 2-tier leaf/spine networks,
// and degenerate test topologies (back-to-back hosts, single switch). It
// also provides path enumeration for source routing and destination-based
// ECMP routing (per-packet random or per-flow hashed) for the baselines and
// for NDP's return-to-sender headers.
package topo

import (
	"fmt"

	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// QueueFactory builds a queue discipline for a named port. Experiments pick
// the discipline per protocol: NDP switch queues, ECN queues for DCTCP,
// plain drop-tail for TCP.
type QueueFactory func(name string) fabric.Queue

// Config carries the physical parameters shared by all topology builders.
type Config struct {
	// LinkRateBps is the line rate of every link (default 10Gb/s).
	LinkRateBps int64
	// LinkDelay is the one-way propagation delay per link (default 500ns).
	LinkDelay sim.Time
	// SwitchQueue builds each switch egress queue (default: drop-tail FIFO
	// of 8 jumbograms).
	SwitchQueue QueueFactory
	// HostQueue builds each host NIC queue (default: unbounded control-
	// priority queue, the NDP host discipline; harmless for others).
	HostQueue QueueFactory
	// ECMPPerFlow selects hashed per-flow ECMP for destination-routed
	// packets instead of per-packet random spraying.
	ECMPPerFlow bool
	// Lossless enables PFC at every switch.
	Lossless bool
	// LosslessLimit, PFCXoff, PFCXon configure PFC byte budgets; zero
	// values take defaults sized in MTUs.
	LosslessLimit, PFCXoff, PFCXon int
	// Seed seeds the topology's private RNG (per-packet ECMP choices).
	Seed uint64
}

func (c Config) withDefaults() Config {
	if c.LinkRateBps == 0 {
		c.LinkRateBps = 10e9
	}
	if c.LinkDelay == 0 {
		c.LinkDelay = 500 * sim.Nanosecond
	}
	if c.SwitchQueue == nil {
		c.SwitchQueue = func(string) fabric.Queue { return fabric.NewFIFOQueue(8 * 9000) }
	}
	if c.HostQueue == nil {
		c.HostQueue = func(string) fabric.Queue { return fabric.NewCtrlPrioQueue() }
	}
	if c.LosslessLimit == 0 {
		c.LosslessLimit = 200 * 9000
	}
	if c.PFCXoff == 0 {
		c.PFCXoff = 2 * 9000
	}
	if c.PFCXon == 0 {
		c.PFCXon = 9000
	}
	return c
}

// Cluster is the view of a topology that transport harnesses need: the
// scheduler, the hosts, source-route enumeration and telemetry. All
// concrete topologies (*FatTree, *TwoTier, *BackToBack) implement it.
type Cluster interface {
	EventList() *sim.EventList
	HostList() []*fabric.Host
	SwitchList() []*fabric.Switch
	Paths(src, dst int32) [][]int16
	NumHosts() int
	LinkRate() int64
	CollectStats() SwitchStats
	PacketHops() int64
}

// Network is the common state every topology exposes: the event list, the
// hosts and switches, and cached source-route path lists.
type Network struct {
	EL       *sim.EventList
	Rand     *sim.Rand
	Hosts    []*fabric.Host
	Switches []*fabric.Switch

	cfg       Config
	pathCache map[pairKey][][]int16
}

type pairKey struct{ src, dst int32 }

// EventList returns the simulation scheduler.
func (n *Network) EventList() *sim.EventList { return n.EL }

// HostList returns the hosts in id order.
func (n *Network) HostList() []*fabric.Host { return n.Hosts }

// SwitchList returns all switches.
func (n *Network) SwitchList() []*fabric.Switch { return n.Switches }

// LinkRate returns the line rate in bits per second.
func (n *Network) LinkRate() int64 { return n.cfg.LinkRateBps }

// LinkDelay returns the per-link one-way propagation delay.
func (n *Network) LinkDelay() sim.Time { return n.cfg.LinkDelay }

// Config returns the configuration the network was built with.
func (n *Network) Config() Config { return n.cfg }

func (n *Network) init(cfg Config) {
	n.cfg = cfg
	n.EL = sim.NewEventList()
	n.Rand = sim.NewRand(cfg.Seed ^ 0x9e3779b97f4a7c15)
	n.pathCache = make(map[pairKey][][]int16)
}

// hash64 mixes a flow id with a per-switch salt for per-flow ECMP.
func hash64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// sourceRouteHop consumes one hop of a packet's source route, or returns
// false if the packet is destination-routed.
func sourceRouteHop(p *fabric.Packet) (int, bool) {
	if p.Path == nil {
		return 0, false
	}
	if int(p.Hop) >= len(p.Path) {
		return -1, true // malformed: off the end of the route
	}
	out := int(p.Path[p.Hop])
	p.Hop++
	return out, true
}

// link wires a unidirectional link from the given port to a destination
// node, inserting a PFC ingress queue when dst is a lossless switch.
func link(from *fabric.Port, dst fabric.Sink) {
	if sw, ok := dst.(*fabric.Switch); ok && sw.Lossless() {
		sw.NewIngress(from)
		return
	}
	from.Connect(dst)
}

// SwitchStats aggregates queue counters across a set of switches.
type SwitchStats struct {
	Drops, Trims, Marks, Bounces int64
}

// CollectStats sums queue counters over every switch port in the network.
func (n *Network) CollectStats() SwitchStats {
	var s SwitchStats
	for _, sw := range n.Switches {
		for _, p := range sw.Ports {
			qs := p.Q.Stats()
			s.Drops += qs.Drops
			s.Trims += qs.Trims
			s.Marks += qs.Marks
			s.Bounces += qs.Bounces
		}
	}
	return s
}

// PacketHops sums transmitted packets over every port in the network —
// host NICs and switch egresses alike. One wire traversal counts once, so
// the total is the simulation's packet-hop volume, the workload-independent
// denominator the bench harness reports throughput against.
func (n *Network) PacketHops() int64 {
	var hops int64
	for _, h := range n.Hosts {
		hops += h.NIC.PacketsSent
	}
	for _, sw := range n.Switches {
		for _, p := range sw.Ports {
			hops += p.PacketsSent
		}
	}
	return hops
}

// portName builds a stable debug name for a link endpoint.
func portName(kind string, a, b int) string { return fmt.Sprintf("%s%d->%d", kind, a, b) }
