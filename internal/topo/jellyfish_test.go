package topo

import (
	"testing"
	"testing/quick"

	"ndp/internal/sim"
)

func TestJellyfishConstruction(t *testing.T) {
	j := NewJellyfish(16, 4, 4, 8, Config{Seed: 3})
	if j.NumHosts() != 64 {
		t.Fatalf("hosts = %d, want 64", j.NumHosts())
	}
	if len(j.Switches) != 16 {
		t.Fatalf("switches = %d", len(j.Switches))
	}
	// Degree-regular (the builder may fall slightly short only on
	// pathological seeds; this seed must be exact).
	for s, nbs := range j.adj {
		if len(nbs) != 4 {
			t.Errorf("switch %d degree %d, want 4", s, len(nbs))
		}
		for _, nb := range nbs {
			if nb == s {
				t.Errorf("switch %d has a self-loop", s)
			}
		}
	}
}

func TestJellyfishPathsDeliver(t *testing.T) {
	j := NewJellyfish(12, 2, 4, 8, Config{Seed: 7})
	for _, pair := range [][2]int32{{0, 23}, {5, 18}, {1, 2}, {22, 3}} {
		src, dst := pair[0], pair[1]
		paths := j.Paths(src, dst)
		if len(paths) == 0 {
			t.Fatalf("no paths %d->%d", src, dst)
		}
		for _, path := range paths {
			if got := deliver(t, &j.Network, j.Hosts, src, dst, path); got != dst {
				t.Errorf("path %v from %d delivered to %d, want %d", path, src, got, dst)
			}
		}
		// Destination routing too (bounced headers).
		if got := deliver(t, &j.Network, j.Hosts, src, dst, nil); got != dst {
			t.Errorf("destination-routed %d->%d arrived at %d", src, dst, got)
		}
	}
}

func TestJellyfishPathAsymmetry(t *testing.T) {
	// The point of the topology: enumerated path sets mix lengths.
	j := NewJellyfish(20, 2, 3, 8, Config{Seed: 11})
	min, max := j.PathLengthSpread(200, sim.NewRand(5))
	if max <= min {
		t.Errorf("path lengths uniform (min=%d max=%d); Jellyfish sets should be asymmetric", min, max)
	}
}

// Property: every enumerated path for random pairs delivers correctly.
func TestJellyfishPathsProperty(t *testing.T) {
	j := NewJellyfish(10, 2, 4, 6, Config{Seed: 23})
	n := int32(j.NumHosts())
	prop := func(a, b uint8) bool {
		src, dst := int32(a)%n, int32(b)%n
		if src == dst {
			return true
		}
		for _, path := range j.Paths(src, dst) {
			if got := deliver(t, &j.Network, j.Hosts, src, dst, path); got != dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestRandomRegularGraphConnected(t *testing.T) {
	for seed := uint64(1); seed < 20; seed++ {
		adj := randomRegularGraph(14, 3, sim.NewRand(seed))
		// BFS from 0 must reach everything (ring guarantees it).
		seen := make([]bool, 14)
		seen[0] = true
		queue := []int{0}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range adj[cur] {
				if !seen[nb] {
					seen[nb] = true
					queue = append(queue, nb)
				}
			}
		}
		for i, ok := range seen {
			if !ok {
				t.Fatalf("seed %d: switch %d unreachable", seed, i)
			}
		}
	}
}
