package topo

import (
	"testing"
	"testing/quick"

	"ndp/internal/fabric"
	"ndp/internal/sim"
)

func TestFatTreeDimensions(t *testing.T) {
	tests := []struct {
		k, oversub          int
		hosts, tors, aggs   int
		cores, pathsPerPair int
	}{
		{4, 1, 16, 8, 8, 4, 4},
		{8, 1, 128, 32, 32, 16, 16},
		{12, 1, 432, 72, 72, 36, 36},
		{8, 4, 512, 32, 32, 16, 16},
	}
	for _, tt := range tests {
		ft := NewFatTreeOversub(tt.k, tt.oversub, Config{})
		if got := ft.NumHosts(); got != tt.hosts {
			t.Errorf("k=%d oversub=%d: hosts=%d want %d", tt.k, tt.oversub, got, tt.hosts)
		}
		if len(ft.Tors) != tt.tors || len(ft.Aggs) != tt.aggs || len(ft.Cores) != tt.cores {
			t.Errorf("k=%d: switches %d/%d/%d want %d/%d/%d", tt.k,
				len(ft.Tors), len(ft.Aggs), len(ft.Cores), tt.tors, tt.aggs, tt.cores)
		}
		// Inter-pod pair: host 0 and the last host are in different pods.
		paths := ft.Paths(0, int32(tt.hosts-1))
		if len(paths) != tt.pathsPerPair {
			t.Errorf("k=%d: inter-pod paths=%d want %d", tt.k, len(paths), tt.pathsPerPair)
		}
	}
}

func TestFatTreePathCounts(t *testing.T) {
	ft := NewFatTree(4, Config{})
	// k=4: 2 hosts/ToR, 2 ToRs/pod, 4 hosts/pod.
	if got := len(ft.Paths(0, 1)); got != 1 {
		t.Errorf("same-ToR paths = %d, want 1", got)
	}
	if got := len(ft.Paths(0, 2)); got != 2 {
		t.Errorf("same-pod paths = %d, want k/2 = 2", got)
	}
	if got := len(ft.Paths(0, 4)); got != 4 {
		t.Errorf("inter-pod paths = %d, want (k/2)^2 = 4", got)
	}
	if ft.Paths(3, 3) != nil {
		t.Error("self paths should be nil")
	}
}

// deliver injects a data packet at src with the given source route and runs
// the simulation; it returns the host the packet arrived at (or -1).
func deliver(t *testing.T, n *Network, hosts []*fabric.Host, src, dst int32, path []int16) int32 {
	t.Helper()
	arrived := int32(-1)
	for _, h := range hosts {
		h := h
		h.Stack = fabric.SinkFunc(func(p *fabric.Packet) {
			arrived = h.ID
			fabric.Free(p)
		})
	}
	p := fabric.NewData(uint64(src)<<32|uint64(dst), src, dst, 0, 1500)
	p.Path = path
	hosts[src].Send(p)
	n.EL.Run()
	return arrived
}

// Property: every enumerated FatTree path physically delivers the packet to
// its destination.
func TestFatTreePathsDeliverProperty(t *testing.T) {
	prop := func(srcRaw, dstRaw uint8) bool {
		ft := NewFatTree(4, Config{})
		src := int32(srcRaw) % 16
		dst := int32(dstRaw) % 16
		if src == dst {
			return true
		}
		for _, path := range ft.Paths(src, dst) {
			if got := deliver(t, &ft.Network, ft.Hosts, src, dst, path); got != dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFatTreeDestinationRouting(t *testing.T) {
	// Per-packet random ECMP (Path == nil) must still deliver correctly.
	for _, perFlow := range []bool{false, true} {
		ft := NewFatTree(4, Config{ECMPPerFlow: perFlow})
		for dst := int32(1); dst < 16; dst += 3 {
			if got := deliver(t, &ft.Network, ft.Hosts, 0, dst, nil); got != dst {
				t.Errorf("perFlow=%v: destination-routed packet to %d arrived at %d", perFlow, dst, got)
			}
		}
	}
}

func TestFatTreeLocateRoundTrip(t *testing.T) {
	ft := NewFatTreeOversub(8, 4, Config{})
	for h := int32(0); h < int32(ft.NumHosts()); h++ {
		pod, tor, off := ft.locate(h)
		if got := ft.hostID(pod, tor, off); got != h {
			t.Fatalf("locate/hostID mismatch: %d -> (%d,%d,%d) -> %d", h, pod, tor, off, got)
		}
	}
}

func TestTwoTierPathsAndRouting(t *testing.T) {
	tt := NewTwoTier(4, 2, 2, Config{})
	if tt.NumHosts() != 8 {
		t.Fatalf("hosts = %d, want 8", tt.NumHosts())
	}
	if got := len(tt.Paths(0, 1)); got != 1 {
		t.Errorf("same-rack paths = %d, want 1", got)
	}
	if got := len(tt.Paths(0, 7)); got != 2 {
		t.Errorf("cross-rack paths = %d, want #spines = 2", got)
	}
	for dst := int32(1); dst < 8; dst++ {
		for _, path := range tt.Paths(0, dst) {
			if got := deliver(t, &tt.Network, tt.Hosts, 0, dst, path); got != dst {
				t.Errorf("path to %d delivered to %d", dst, got)
			}
		}
		if got := deliver(t, &tt.Network, tt.Hosts, 0, dst, nil); got != dst {
			t.Errorf("ECMP to %d delivered to %d", dst, got)
		}
	}
}

func TestSingleLeafTwoTier(t *testing.T) {
	tt := NewTwoTier(1, 6, 0, Config{})
	if got := len(tt.Paths(0, 5)); got != 1 {
		t.Fatalf("single-leaf paths = %d, want 1", got)
	}
	if got := deliver(t, &tt.Network, tt.Hosts, 0, 5, tt.Paths(0, 5)[0]); got != 5 {
		t.Errorf("delivered to %d, want 5", got)
	}
}

func TestBackToBack(t *testing.T) {
	b := NewBackToBack(Config{})
	got := int32(-1)
	b.Hosts[1].Stack = fabric.SinkFunc(func(p *fabric.Packet) {
		got = 1
		fabric.Free(p)
	})
	p := fabric.NewData(1, 0, 1, 0, 9000)
	b.Hosts[0].Send(p)
	b.EL.Run()
	if got != 1 {
		t.Fatal("packet not delivered host0 -> host1")
	}
	// One hop: 7.2us + 500ns.
	if want := sim.Time(7700) * sim.Nanosecond; b.EL.Now() != want {
		t.Errorf("delivery at %v, want %v", b.EL.Now(), want)
	}
}

func TestDegradeLink(t *testing.T) {
	ft := NewFatTree(4, Config{})
	before := ft.AggUp[0][0].RateBps
	ft.DegradeLink(0, 0, 1e9)
	if ft.AggUp[0][0].RateBps != 1e9 {
		t.Errorf("uplink rate = %d, want 1e9 (was %d)", ft.AggUp[0][0].RateBps, before)
	}
	// Reverse direction: core 0 serves agg position 0; pod of agg 0 is 0.
	if ft.CoreDown[0][0].RateBps != 1e9 {
		t.Errorf("reverse core->agg rate = %d, want 1e9", ft.CoreDown[0][0].RateBps)
	}
	// Other links untouched.
	if ft.AggUp[0][1].RateBps != 10e9 {
		t.Errorf("unrelated link degraded")
	}
}

func TestLosslessFatTreeWiring(t *testing.T) {
	ft := NewFatTree(4, Config{Lossless: true, LosslessLimit: 12000, PFCXoff: 3000, PFCXon: 1500})
	for _, sw := range ft.Switches {
		if !sw.Lossless() {
			t.Fatalf("switch %s not lossless", sw.Name)
		}
	}
	// Destination routing must still work through ingress queues.
	if got := deliver(t, &ft.Network, ft.Hosts, 0, 9, nil); got != 9 {
		t.Errorf("lossless delivery to 9 arrived at %d", got)
	}
}

func TestPathCacheSharing(t *testing.T) {
	ft := NewFatTree(4, Config{})
	a := ft.Paths(0, 5)
	b := ft.Paths(0, 5)
	if &a[0] != &b[0] {
		t.Error("paths should be cached and shared")
	}
}
