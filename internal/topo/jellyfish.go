package topo

import (
	"fmt"

	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// Jellyfish is a random regular graph of switches (Singla et al., NSDI
// 2012), the asymmetric topology the paper's "Limitations of NDP" section
// (§3) calls out: paths between hosts have different lengths, so NDP's
// uniform per-packet spraying wastes capacity on long paths under load,
// whereas per-path congestion control (MPTCP) adapts.
//
// Each of N switches has H host ports and R inter-switch ports wired as a
// connected random R-regular graph. Path enumeration returns up to MaxPaths
// routes per pair: all shortest paths plus paths one hop longer (the ECMP
// set a Jellyfish deployment would use), so the set is intentionally
// length-asymmetric.
type Jellyfish struct {
	Network

	NSwitches, HostsPerSwitch, Degree int
	MaxPaths                          int

	adj [][]int // adjacency: switch -> neighbor switch ids

	// port layout per switch: [0,H) host ports, then one port per adj entry.
	// dists[d] holds BFS distances from every switch to switch d. It is
	// precomputed at build time and read-only afterwards: routing consults
	// it per packet from every shard, so a lazily-filled cache would be a
	// cross-shard data race.
	dists [][]int
}

// NewJellyfish builds a connected random regular topology. n*degree must be
// even; degree >= 2. maxPaths bounds the per-pair path enumeration
// (default 8).
//
// With cfg.Shards > 1 the random graph is split by greedyEdgeCutParts into
// balanced BFS-grown switch regions, each owning its own event list; hosts
// live with their switch. Any inter-switch link whose endpoints land in
// different regions crosses the cut, so the conservative lookahead is the
// link propagation delay. Shards is clamped to the switch count.
func NewJellyfish(n, hostsPerSwitch, degree, maxPaths int, cfg Config) *Jellyfish {
	if n < 3 || degree < 2 || n*degree%2 != 0 {
		panic(fmt.Sprintf("topo: invalid Jellyfish n=%d degree=%d", n, degree))
	}
	if maxPaths <= 0 {
		maxPaths = 8
	}
	cfg = cfg.withDefaults()
	j := &Jellyfish{NSwitches: n, HostsPerSwitch: hostsPerSwitch, Degree: degree, MaxPaths: maxPaths}
	shards := cfg.Shards
	if shards > n {
		shards = n // at most one shard per switch
	}
	j.initShards(cfg, shards)

	j.adj = randomRegularGraph(n, degree, j.Rand)
	j.swShard = greedyEdgeCutParts(j.adj, j.Shards())
	j.precomputeDists()

	for s := 0; s < n; s++ {
		sw := fabric.NewSwitch(j.ShardEventList(j.swShard[s]), s, fmt.Sprintf("jf%d", s))
		sw.Route = j.route
		j.Switches = append(j.Switches, sw)
		j.switchRand(s)
		if cfg.Lossless {
			sw.EnableLossless(cfg.LosslessLimit, cfg.PFCXoff, cfg.PFCXon)
		}
	}
	newPort := func(shard int, name string, q fabric.Queue) *fabric.Port {
		p := fabric.NewPort(j.ShardEventList(shard), name, q, cfg.LinkRateBps, cfg.LinkDelay)
		p.UID = j.allocPortUID()
		return p
	}
	wire := func(p *fabric.Port, from, to int, dst fabric.Sink) {
		iq := link(p, dst)
		if from != to {
			p.Cross = j.noteCrossLink(from, to, p.Delay)
			if iq != nil {
				// PFC reverse channel: pause signals toward the upstream
				// transmitter cross back over the same cut.
				iq.Cross = j.noteCrossLink(to, from, p.Delay)
			}
		}
	}
	// Hosts and host ports: hosts always share their switch's shard, so
	// these links never cross the cut.
	for s := 0; s < n; s++ {
		for o := 0; o < hostsPerSwitch; o++ {
			id := int32(s*hostsPerSwitch + o)
			shard := j.swShard[s]
			host := fabric.NewHost(j.ShardEventList(shard), id, fmt.Sprintf("h%d", id))
			j.Hosts = append(j.Hosts, host)
			j.hostShard = append(j.hostShard, shard)
			down := newPort(shard, portName("jf", s, int(id)), cfg.SwitchQueue(fmt.Sprintf("jf%d->h%d", s, id)))
			link(down, host)
			j.Switches[s].AddPort(down)
			up := newPort(shard, portName("h", int(id), s), cfg.HostQueue(fmt.Sprintf("h%d", id)))
			link(up, j.Switches[s])
			host.NIC = up
		}
	}
	// Inter-switch ports, in adjacency order.
	for s := 0; s < n; s++ {
		for _, nb := range j.adj[s] {
			p := newPort(j.swShard[s], portName("jfUp", s, nb), cfg.SwitchQueue(fmt.Sprintf("jf%d->jf%d", s, nb)))
			wire(p, j.swShard[s], j.swShard[nb], j.Switches[nb])
			j.Switches[s].AddPort(p)
		}
	}
	j.finishShards()
	return j
}

// randomRegularGraph wires a connected degree-regular graph: a Hamiltonian
// ring guarantees connectivity and degree 2; remaining stubs are matched
// randomly with rejection of self-loops and duplicate edges.
func randomRegularGraph(n, degree int, r *sim.Rand) [][]int {
	adj := make([][]int, n)
	has := func(a, b int) bool {
		for _, x := range adj[a] {
			if x == b {
				return true
			}
		}
		return false
	}
	addEdge := func(a, b int) {
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	perm := r.Perm(n) // random ring order
	for i := 0; i < n; i++ {
		addEdge(perm[i], perm[(i+1)%n])
	}
	removeEdge := func(a, b int) {
		for i, x := range adj[a] {
			if x == b {
				adj[a] = append(adj[a][:i], adj[a][i+1:]...)
				break
			}
		}
		for i, x := range adj[b] {
			if x == a {
				adj[b] = append(adj[b][:i], adj[b][i+1:]...)
				break
			}
		}
	}
	// Match remaining stubs; when the random matching gets stuck (the
	// leftover stubs are mutual neighbors or identical), break an existing
	// edge (c,d) and rewire a-c, b-d — the standard Jellyfish fix-up.
	for attempt := 0; attempt < 500; attempt++ {
		var stubs []int
		for s := 0; s < n; s++ {
			for d := len(adj[s]); d < degree; d++ {
				stubs = append(stubs, s)
			}
		}
		if len(stubs) == 0 {
			return adj
		}
		r.ShuffleInts(stubs)
		progress := false
		for i := 0; i+1 < len(stubs); i += 2 {
			a, b := stubs[i], stubs[i+1]
			if a != b && !has(a, b) && len(adj[a]) < degree && len(adj[b]) < degree {
				addEdge(a, b)
				progress = true
			}
		}
		if !progress && attempt > 20 && len(stubs) >= 2 {
			// Swap: break a random existing edge (c,d) disjoint from the
			// stuck stubs a,b and rewire. If both stubs belong to one node
			// (a==b), splice it into the middle of the edge (a-c, a-d);
			// otherwise cross-wire (a-c, b-d).
			a, b := stubs[0], stubs[1]
			for try := 0; try < 200; try++ {
				c := r.Intn(n)
				if c == a || c == b || len(adj[c]) == 0 {
					continue
				}
				d := adj[c][r.Intn(len(adj[c]))]
				if d == a || d == b {
					continue
				}
				if a == b {
					if has(a, c) || has(a, d) {
						continue
					}
					removeEdge(c, d)
					addEdge(a, c)
					addEdge(a, d)
				} else {
					if has(a, c) || has(b, d) {
						continue
					}
					removeEdge(c, d)
					addEdge(a, c)
					addEdge(b, d)
				}
				break
			}
		}
	}
	return adj
}

func (j *Jellyfish) locate(h int32) (sw, off int) {
	return int(h) / j.HostsPerSwitch, int(h) % j.HostsPerSwitch
}

// precomputeDists fills dists with BFS distances toward every switch.
func (j *Jellyfish) precomputeDists() {
	j.dists = make([][]int, j.NSwitches)
	for dst := range j.dists {
		d := make([]int, j.NSwitches)
		for i := range d {
			d[i] = -1
		}
		d[dst] = 0
		queue := []int{dst}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range j.adj[cur] {
				if d[nb] < 0 {
					d[nb] = d[cur] + 1
					queue = append(queue, nb)
				}
			}
		}
		j.dists[dst] = d
	}
}

// dist returns the precomputed BFS distances toward the destination switch.
func (j *Jellyfish) dist(dstSwitch int) []int { return j.dists[dstSwitch] }

// route follows source routes; destination-routed packets walk downhill on
// BFS distance (random tie-break among equally-good neighbors).
func (j *Jellyfish) route(sw *fabric.Switch, p *fabric.Packet) int {
	if out, ok := sourceRouteHop(p); ok {
		return out
	}
	dsw, doff := j.locate(p.Dst)
	if sw.ID == dsw {
		return doff
	}
	d := j.dist(dsw)
	var best []int
	bestD := d[sw.ID]
	for i, nb := range j.adj[sw.ID] {
		if d[nb] >= 0 && d[nb] < bestD {
			bestD = d[nb]
			best = best[:0]
			best = append(best, i)
		} else if d[nb] == bestD && bestD < d[sw.ID] {
			best = append(best, i)
		}
	}
	if len(best) == 0 {
		return -1
	}
	return j.HostsPerSwitch + best[j.swRand[sw.ID].Intn(len(best))]
}

// Paths enumerates up to MaxPaths source routes: all shortest switch paths
// plus paths allowing one sideways (equal-distance) hop — a deliberately
// length-mixed set reflecting Jellyfish ECMP.
func (j *Jellyfish) Paths(src, dst int32) [][]int16 {
	if src == dst {
		return nil
	}
	cache := j.pathCache[j.hostShard[src]]
	key := pairKey{src, dst}
	if p, ok := cache[key]; ok {
		return p
	}
	ssw, _ := j.locate(src)
	dsw, doff := j.locate(dst)
	var paths [][]int16
	if ssw == dsw {
		paths = [][]int16{{int16(doff)}}
		cache[key] = paths
		return paths
	}
	d := j.dist(dsw)

	var walk func(cur int, route []int16, sidewaysUsed bool)
	walk = func(cur int, route []int16, sidewaysUsed bool) {
		if len(paths) >= j.MaxPaths {
			return
		}
		if cur == dsw {
			full := make([]int16, len(route)+1)
			copy(full, route)
			full[len(route)] = int16(doff)
			paths = append(paths, full)
			return
		}
		for i, nb := range j.adj[cur] {
			if d[nb] < 0 {
				continue
			}
			step := int16(j.HostsPerSwitch + i)
			// Copy the prefix: sibling branches must not share backing
			// arrays.
			next := append(append([]int16(nil), route...), step)
			switch {
			case d[nb] < d[cur]:
				walk(nb, next, sidewaysUsed)
			case d[nb] == d[cur] && !sidewaysUsed:
				walk(nb, next, true)
			}
		}
	}
	walk(ssw, nil, false)
	cache[key] = paths
	return paths
}

// NumHosts returns the host count.
func (j *Jellyfish) NumHosts() int { return len(j.Hosts) }

// MinPathDelay implements Cluster: two host links plus the BFS distance
// between the attachment switches, at the uniform per-link delay.
func (j *Jellyfish) MinPathDelay(src, dst int) sim.Time {
	if src == dst {
		return 0
	}
	ssw, _ := j.locate(int32(src))
	dsw, _ := j.locate(int32(dst))
	if ssw == dsw {
		return 2 * j.cfg.LinkDelay
	}
	return sim.Time(j.dist(dsw)[ssw]+2) * j.cfg.LinkDelay
}

// PathLengthSpread returns the min and max path lengths (switch hops) over
// a sample of host pairs — the asymmetry measure.
func (j *Jellyfish) PathLengthSpread(samples int, r *sim.Rand) (min, max int) {
	min, max = 1<<30, 0
	n := j.NumHosts()
	for i := 0; i < samples; i++ {
		a, b := int32(r.Intn(n)), int32(r.Intn(n))
		if a == b {
			continue
		}
		for _, p := range j.Paths(a, b) {
			if len(p) < min {
				min = len(p)
			}
			if len(p) > max {
				max = len(p)
			}
		}
	}
	return min, max
}
