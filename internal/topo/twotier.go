package topo

import (
	"fmt"

	"ndp/internal/fabric"
	"ndp/internal/sim"
)

// TwoTier is a leaf/spine Clos: Tors leaf switches each serving
// HostsPerTor hosts, fully meshed to Spines spine switches. The paper's
// 8-server NetFPGA testbed is TwoTier{Tors: 4, HostsPerTor: 2, Spines: 2}
// (six 4-port switches); the sender-limited scenario of Figure 21 is a
// single leaf.
type TwoTier struct {
	Network

	NTors, HostsPerTor, NSpines int

	Tors, Spines []*fabric.Switch

	HostNIC  []*fabric.Port
	TorDown  [][]*fabric.Port // [tor][hostOff]
	TorUp    [][]*fabric.Port // [tor][spine]
	SpineDwn [][]*fabric.Port // [spine][tor]

	level []int // 0 tor, 1 spine
	idx   []int
}

// NewTwoTier builds a leaf/spine network. spines may be zero when tors==1.
//
// With cfg.Shards > 1 the network is partitioned by ToR group: each shard
// owns a contiguous run of ToRs with their hosts, and the spine switches
// spread across shards. Every ToR<->spine link whose endpoints land in
// different shards crosses the cut, so the conservative lookahead is the
// link propagation delay. Shards is clamped to the ToR count.
func NewTwoTier(tors, hostsPerTor, spines int, cfg Config) *TwoTier {
	if tors < 1 || hostsPerTor < 1 || (tors > 1 && spines < 1) {
		panic(fmt.Sprintf("topo: invalid TwoTier %d/%d/%d", tors, hostsPerTor, spines))
	}
	cfg = cfg.withDefaults()
	tt := &TwoTier{NTors: tors, HostsPerTor: hostsPerTor, NSpines: spines}
	shards := cfg.Shards
	if shards > tors {
		shards = tors // at most one shard per ToR group
	}
	tt.initShards(cfg, shards)
	shardOfTor := func(t int) int { return groupShard(t, tors, tt.Shards()) }

	newSwitch := func(level, idx, shard int, name string) *fabric.Switch {
		id := len(tt.Switches)
		sw := fabric.NewSwitch(tt.ShardEventList(shard), id, name)
		sw.Route = tt.route
		tt.Switches = append(tt.Switches, sw)
		tt.level = append(tt.level, level)
		tt.idx = append(tt.idx, idx)
		tt.swShard = append(tt.swShard, shard)
		tt.switchRand(id)
		if cfg.Lossless {
			sw.EnableLossless(cfg.LosslessLimit, cfg.PFCXoff, cfg.PFCXon)
		}
		return sw
	}
	for t := 0; t < tors; t++ {
		tt.Tors = append(tt.Tors, newSwitch(0, t, shardOfTor(t), fmt.Sprintf("tor%d", t)))
	}
	for s := 0; s < spines; s++ {
		// Spines belong to no ToR group; spread them so the spine layer's
		// work parallelizes too.
		tt.Spines = append(tt.Spines, newSwitch(1, s, groupShard(s, spines, tt.Shards()), fmt.Sprintf("spine%d", s)))
	}
	nHosts := tors * hostsPerTor
	for h := 0; h < nHosts; h++ {
		shard := shardOfTor(h / hostsPerTor)
		tt.Hosts = append(tt.Hosts, fabric.NewHost(tt.ShardEventList(shard), int32(h), fmt.Sprintf("h%d", h)))
		tt.hostShard = append(tt.hostShard, shard)
	}

	newPort := func(shard int, name string, q fabric.Queue) *fabric.Port {
		p := fabric.NewPort(tt.ShardEventList(shard), name, q, cfg.LinkRateBps, cfg.LinkDelay)
		p.UID = tt.allocPortUID()
		return p
	}
	wire := func(p *fabric.Port, from, to int, dst fabric.Sink) {
		iq := link(p, dst)
		if from != to {
			p.Cross = tt.noteCrossLink(from, to, p.Delay)
			if iq != nil {
				// PFC reverse channel: pause signals toward the upstream
				// transmitter cross back over the same cut.
				iq.Cross = tt.noteCrossLink(to, from, p.Delay)
			}
		}
	}

	tt.HostNIC = make([]*fabric.Port, nHosts)
	tt.TorDown = make([][]*fabric.Port, tors)
	tt.TorUp = make([][]*fabric.Port, tors)
	tt.SpineDwn = make([][]*fabric.Port, spines)

	for t, tor := range tt.Tors {
		ts := tt.swShard[tor.ID]
		tt.TorDown[t] = make([]*fabric.Port, hostsPerTor)
		for off := 0; off < hostsPerTor; off++ {
			h := int32(t*hostsPerTor + off)
			host := tt.Hosts[h]
			down := newPort(ts, portName("tor", t, int(h)), cfg.SwitchQueue(fmt.Sprintf("%s->h%d", tor.Name, h)))
			wire(down, ts, tt.hostShard[h], host)
			tor.AddPort(down)
			tt.TorDown[t][off] = down

			up := newPort(tt.hostShard[h], portName("h", int(h), t), cfg.HostQueue(fmt.Sprintf("h%d", h)))
			wire(up, tt.hostShard[h], ts, tor)
			host.NIC = up
			tt.HostNIC[h] = up
		}
		tt.TorUp[t] = make([]*fabric.Port, spines)
		for s := 0; s < spines; s++ {
			spine := tt.Spines[s]
			up := newPort(ts, portName("torUp", t, s), cfg.SwitchQueue(fmt.Sprintf("%s->%s", tor.Name, spine.Name)))
			wire(up, ts, tt.swShard[spine.ID], spine)
			tor.AddPort(up)
			tt.TorUp[t][s] = up
		}
	}
	for s, spine := range tt.Spines {
		ss := tt.swShard[spine.ID]
		tt.SpineDwn[s] = make([]*fabric.Port, tors)
		for t, tor := range tt.Tors {
			down := newPort(ss, portName("spineDown", s, t), cfg.SwitchQueue(fmt.Sprintf("%s->%s", spine.Name, tor.Name)))
			wire(down, ss, tt.swShard[tor.ID], tor)
			spine.AddPort(down)
			tt.SpineDwn[s][t] = down
		}
	}
	tt.finishShards()
	return tt
}

func (tt *TwoTier) locate(h int32) (tor, off int) {
	return int(h) / tt.HostsPerTor, int(h) % tt.HostsPerTor
}

func (tt *TwoTier) route(sw *fabric.Switch, p *fabric.Packet) int {
	if out, ok := sourceRouteHop(p); ok {
		return out
	}
	dtor, doff := tt.locate(p.Dst)
	if tt.level[sw.ID] == 1 { // spine
		return dtor
	}
	if tt.idx[sw.ID] == dtor {
		return doff
	}
	if tt.cfg.ECMPPerFlow {
		return tt.HostsPerTor + int(hash64(p.Flow^(uint64(sw.ID)<<32|0x5bd1e995))%uint64(tt.NSpines))
	}
	return tt.HostsPerTor + tt.swRand[sw.ID].Intn(tt.NSpines)
}

// Paths enumerates source routes: one per spine between racks, the single
// ToR hop within a rack.
func (tt *TwoTier) Paths(src, dst int32) [][]int16 {
	if src == dst {
		return nil
	}
	cache := tt.pathCache[tt.hostShard[src]]
	key := pairKey{src, dst}
	if p, ok := cache[key]; ok {
		return p
	}
	stor, _ := tt.locate(src)
	dtor, doff := tt.locate(dst)
	slab := &tt.pathSlab[tt.hostShard[src]]
	var paths [][]int16
	if stor == dtor {
		paths = slab.alloc(1, 1)
		paths[0][0] = int16(doff)
	} else {
		paths = slab.alloc(tt.NSpines, 3)
		for s := 0; s < tt.NSpines; s++ {
			p := paths[s]
			p[0] = int16(tt.HostsPerTor + s)
			p[1] = int16(dtor)
			p[2] = int16(doff)
		}
	}
	cache[key] = paths
	return paths
}

// NumHosts returns the number of hosts.
func (tt *TwoTier) NumHosts() int { return len(tt.Hosts) }

// MinPathDelay implements Cluster: 2 links within a rack, 4 via a spine
// between racks, at the uniform per-link propagation delay.
func (tt *TwoTier) MinPathDelay(src, dst int) sim.Time {
	if src == dst {
		return 0
	}
	stor, _ := tt.locate(int32(src))
	dtor, _ := tt.locate(int32(dst))
	links := sim.Time(4)
	if stor == dtor {
		links = 2
	}
	return links * tt.cfg.LinkDelay
}

// BackToBack is two hosts wired NIC-to-NIC with no switch: the paper's
// RPC-latency and initial-window testbed configuration.
type BackToBack struct {
	Network
}

// NewBackToBack builds the two-host topology.
func NewBackToBack(cfg Config) *BackToBack {
	cfg = cfg.withDefaults()
	b := &BackToBack{}
	b.init(cfg)
	h0 := fabric.NewHost(b.EL, 0, "h0")
	h1 := fabric.NewHost(b.EL, 1, "h1")
	b.Hosts = []*fabric.Host{h0, h1}
	b.hostShard = []int{0, 0}
	p0 := fabric.NewPort(b.EL, "h0->h1", cfg.HostQueue("h0"), cfg.LinkRateBps, cfg.LinkDelay)
	p1 := fabric.NewPort(b.EL, "h1->h0", cfg.HostQueue("h1"), cfg.LinkRateBps, cfg.LinkDelay)
	p0.UID = b.allocPortUID()
	p1.UID = b.allocPortUID()
	p0.Connect(h1)
	p1.Connect(h0)
	h0.NIC = p0
	h1.NIC = p1
	b.finishShards()
	return b
}

// Paths returns a single zero-hop route (there are no switches).
func (b *BackToBack) Paths(src, dst int32) [][]int16 {
	if src == dst {
		return nil
	}
	return [][]int16{{}}
}

// NumHosts returns 2.
func (b *BackToBack) NumHosts() int { return 2 }

// MinPathDelay implements Cluster: the hosts are wired NIC-to-NIC, one
// link apart.
func (b *BackToBack) MinPathDelay(src, dst int) sim.Time {
	if src == dst {
		return 0
	}
	return b.cfg.LinkDelay
}
