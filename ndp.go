// Package ndp is the public facade of the NDP reproduction (Handley et al.,
// "Re-architecting datacenter networks and stacks for low latency and high
// performance", SIGCOMM 2017).
//
// The implementation lives in internal packages:
//
//   - internal/sim     — discrete-event engine (picosecond clock, RNG)
//   - internal/fabric  — packets, ports, queues, switches, PFC
//   - internal/topo    — FatTree / leaf-spine topologies and source routes
//   - internal/core    — the NDP switch service model and transport
//   - internal/tcp, dctcp, mptcp, dcqcn, cp, phost — baselines
//   - internal/workload, stats, hostmodel — evaluation substrate
//   - internal/harness — one runner per paper table/figure, plus the
//     Transport abstraction and sweep-job pool everything runs on
//
// This package re-exports the experiment runner so the whole evaluation can
// be driven from benchmarks, tests, or the cmd/ndpsim CLI:
//
//	res, err := ndp.Run("fig14", ndp.Options{Scale: 1})
//	fmt.Print(res)
//
// To compose custom experiments — any transport x topology x workload
// cross-product rather than the paper's canned figures — use the public
// scenario package (ndp/scenario) or `ndpsim -scenario`.
package ndp

import (
	"fmt"
	"sort"

	"ndp/internal/harness"
)

// Options mirrors harness.Options: Scale in (0,1] shrinks topologies and
// durations (1.0 = paper scale), Seed fixes all randomness, Full unlocks
// the extreme sizes (8192-host FatTree), and Workers sizes the sweep-job
// pool (0 = all cores, 1 = serial; results are bit-identical either way).
type Options = harness.Options

// Result is a rendered experiment outcome; its String method prints the
// same rows/series the paper's figure plots.
type Result = harness.Result

// Run executes the experiment with the given id. The registered ids —
// kept in lockstep with the registry by TestExperimentsMatchDocumented —
// are:
//
//	fig2, fig4, fig8, fig9, fig10, fig11, fig12, fig13, fig14, fig15,
//	fig16, fig17, fig19, fig20, fig21, fig22, fig23,
//	t-ablate, t-limits, t-phost, t-scale, t-trim
func Run(id string, o Options) (*Result, error) {
	e := harness.Get(id)
	if e == nil {
		return nil, fmt.Errorf("ndp: unknown experiment %q (known: %v)", id, Experiments())
	}
	return e.Run(o), nil
}

// Experiments lists the available experiment ids in order.
func Experiments() []string {
	var ids []string
	for _, e := range harness.All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return ids
}

// Describe returns the one-line title of an experiment, or "".
func Describe(id string) string {
	if e := harness.Get(id); e != nil {
		return e.Title
	}
	return ""
}
