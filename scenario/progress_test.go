package scenario

import (
	"reflect"
	"sync"
	"testing"
)

// TestProgressDoesNotPerturb is the determinism story of the progress
// hook: installing one slices the engine's RunUntil advance into segments,
// and that slicing must be invisible — Metrics AND engine event counts
// bit-identical to an unhooked run — for the single-list engine, the
// sharded runner, and multi-repeat runs on a parallel job pool.
func TestProgressDoesNotPerturb(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	base := []Spec{
		mustBuild(t, "incast", Params{Hosts: 16, Degree: 8, FlowSize: 45_000}),
		mustBuild(t, "permutation", Params{Hosts: 16}).With(WithShards(2)),
		mustBuild(t, "rpc", Params{Hosts: 16, Degree: 2}).With(WithRepeats(2), WithWorkers(2)),
	}
	for _, spec := range base {
		spec := spec
		t.Run(spec.Name()+"/"+spec.Workload.Kind, func(t *testing.T) {
			plain, plainStats, err := RunWithStats(spec)
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			var events []Progress
			hooked, hookedStats, err := RunWithStats(spec.With(WithProgress(func(p Progress) {
				mu.Lock()
				events = append(events, p)
				mu.Unlock()
			})))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(plain, hooked) {
				t.Errorf("progress hook perturbed Metrics:\nplain  %+v\nhooked %+v", plain, hooked)
			}
			if plainStats != hookedStats {
				t.Errorf("progress hook perturbed engine stats: plain %+v hooked %+v", plainStats, hookedStats)
			}
			if len(events) < progressSlices {
				t.Fatalf("hook observed %d events, want >= %d", len(events), progressSlices)
			}
			repeats := spec.Repeats
			if repeats == 0 {
				repeats = 1
			}
			var poolDone int
			for _, p := range events {
				if p.Repeats != repeats {
					t.Fatalf("event reports %d repeats, spec has %d", p.Repeats, repeats)
				}
				if p.Repeat == -1 {
					if p.Done > poolDone {
						poolDone = p.Done
					}
				} else if p.Frac < 0 || p.Frac > 1.0000001 {
					t.Fatalf("per-repeat frac out of range: %+v", p)
				}
				if o := p.Overall(); o < 0 || o > 1.0000001 {
					t.Fatalf("Overall out of range: %+v -> %g", p, o)
				}
			}
			if poolDone != repeats {
				t.Errorf("pool-level completions reached %d, want %d", poolDone, repeats)
			}
			final := events[len(events)-1]
			if final.Repeat != -1 || final.Done != repeats {
				t.Errorf("last observation is not the pool completing: %+v", final)
			}
		})
	}
}

func mustBuild(t *testing.T, name string, p Params) Spec {
	t.Helper()
	spec, err := Build(name, p)
	if err != nil {
		t.Fatal(err)
	}
	return spec
}
