package scenario

import (
	"encoding/json"
	"sort"
	"testing"
	"time"
)

// TestHashStability pins the canonicalization contract of Spec.Hash: the
// hash depends only on what the simulation would do, never on how the Spec
// was assembled, which execution knobs ride along, or whether it crossed a
// JSON boundary on the way.
func TestHashStability(t *testing.T) {
	a := New(WithTransport(TCP), WithMTU(1500), WithRepeats(3), WithWindow(5*time.Millisecond))
	b := New(WithWindow(5*time.Millisecond), WithRepeats(3), WithMTU(1500), WithTransport(TCP))
	if a.Hash() != b.Hash() {
		t.Errorf("option order changed the hash:\n%s\n%s", a.Hash(), b.Hash())
	}
	if len(a.Hash()) != 64 {
		t.Errorf("hash is not hex SHA-256: %q", a.Hash())
	}

	// Default filling: a hand-assembled partial Spec hashes like its
	// fully-defaulted twin. New's only extra over withDefaults is the 3ms
	// warmup and seed 1 — and seeds are outside the hash.
	partial := Spec{Warmup: 3 * time.Millisecond}
	if partial.Hash() != New().Hash() {
		t.Errorf("default filling changed the hash:\npartial %s\nNew()   %s", partial.Hash(), New().Hash())
	}

	// Execution knobs (Seed, Workers, Shards) are keyed separately or
	// proven not to perturb Metrics; they must not split the cache.
	knobs := New(WithSeed(99), WithWorkers(8), WithShards(4))
	if knobs.Hash() != New().Hash() {
		t.Error("seed/workers/shards changed the hash")
	}

	// JSON round-trip: the daemon decodes Specs off the wire; the decoded
	// Spec must address the same cache entry. The registry name is
	// unexported (lost in transit) and is excluded from the hash for
	// exactly this reason.
	spec, err := Build("incast", Params{Hosts: 16, Degree: 8, FlowSize: 45_000})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	var back Spec
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Hash() != spec.Hash() {
		t.Errorf("JSON round-trip changed the hash:\nbefore %s\nafter  %s", spec.Hash(), back.Hash())
	}
	if spec.Name() != "incast" || back.Name() != "" {
		t.Errorf("Name should survive Build (%q) and not the wire (%q)", spec.Name(), back.Name())
	}
	if named("renamed", spec).Hash() != spec.Hash() {
		t.Error("registry name leaked into the hash")
	}

	// And the hash must actually separate different scenarios.
	if New(WithWorkload(Incast(8, 45_000))).Hash() == New().Hash() {
		t.Error("different workloads hash equal")
	}
	if New(WithMTU(1500)).Hash() == New().Hash() {
		t.Error("different MTUs hash equal")
	}
}

// TestValidateFunction pins the exported package-level gate the CLI and
// the ndpsimd daemon share: defaults are filled before judging, and the
// refusal messages match the method's.
func TestValidateFunction(t *testing.T) {
	if err := Validate(Spec{}); err != nil {
		t.Errorf("zero Spec should validate after default filling: %v", err)
	}
	refusals := []struct {
		label string
		spec  Spec
	}{
		{"backtoback+shards", New(WithTopology(BackToBack()), WithShards(2))},
		{"hosts<2", New(WithTopology(TwoTier(1, 1, 1)))},
		{"shards<1", New(WithShards(-1))},
	}
	for _, r := range refusals {
		err := Validate(r.spec)
		if err == nil {
			t.Errorf("%s: not refused", r.label)
			continue
		}
		if method := r.spec.withDefaults().Validate(); method == nil || method.Error() != err.Error() {
			t.Errorf("%s: function and method disagree:\nfunc   %v\nmethod %v", r.label, err, method)
		}
	}
}

// TestCatalogSorted pins Catalog (and CatalogEntries) to sorted name
// order — the CLI listing, the JSON listing and /api/catalog all promise
// a stable enumeration.
func TestCatalogSorted(t *testing.T) {
	var names []string
	for _, n := range Catalog() {
		names = append(names, n.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("Catalog not sorted: %v", names)
	}
	want := []string{"failure", "incast", "permutation", "random", "rpc"}
	if len(names) != len(want) {
		t.Fatalf("catalog is %v, want %v", names, want)
	}
	for i, w := range want {
		if names[i] != w {
			t.Fatalf("catalog is %v, want %v", names, want)
		}
	}
	entries := CatalogEntries()
	for i, e := range entries {
		if e.Name != names[i] {
			t.Errorf("CatalogEntries order diverges at %d: %q vs %q", i, e.Name, names[i])
		}
		if err := Validate(e.Defaults); err != nil {
			t.Errorf("%s: default Spec invalid: %v", e.Name, err)
		}
		if e.SpecHash != e.Defaults.Hash() {
			t.Errorf("%s: SpecHash does not address Defaults", e.Name)
		}
		if len(e.Params) == 0 || e.Description == "" {
			t.Errorf("%s: entry missing params/description: %+v", e.Name, e)
		}
	}
}
