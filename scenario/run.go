package scenario

import (
	"fmt"
	"sort"
	"time"

	"ndp/internal/core"
	"ndp/internal/harness"
	"ndp/internal/phost"
	"ndp/internal/sim"
	"ndp/internal/stats"
	"ndp/internal/topo"
	"ndp/internal/workload"
)

// Run executes the Spec and returns aggregated Metrics. The run decomposes
// into Spec.Repeats independent sweep jobs (one simulation per derived
// seed) executed on a Workers-sized pool; Metrics are bit-identical for
// any worker count. Simulation failures surface as errors, never panics.
func Run(spec Spec) (*Metrics, error) {
	m, _, err := RunWithStats(spec)
	return m, err
}

// RunStats are engine-level observables of one Run: how much simulation
// machinery turned to produce the Metrics. They are deliberately not part
// of Metrics — event counts change whenever the scheduler changes, while
// Metrics are pinned bit-for-bit by the golden regression suite.
type RunStats struct {
	// Events is the total scheduler events executed across repeats.
	Events int64
	// PacketHops is the total packet wire-traversals across repeats.
	PacketHops int64
	// PacketsLeaked is the arena leak counter summed across repeats: packets
	// still outstanding after each network's Close released everything the
	// fabric and endpoints held. Always zero unless a component lost track
	// of a packet; the golden suite asserts it.
	PacketsLeaked int64
}

// RunWithStats is Run plus the engine observables the bench harness
// reports throughput against.
func RunWithStats(spec Spec) (m *Metrics, stats RunStats, err error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, RunStats{}, err
	}
	name := spec.name
	if name == "" {
		name = spec.Workload.Kind
	}
	// The job pool re-raises simulation panics (with job attribution) on
	// this goroutine; convert them to the error return the public API
	// promises.
	defer func() {
		if p := recover(); p != nil {
			m, stats, err = nil, RunStats{}, fmt.Errorf("scenario: run failed: %v", p)
		}
	}()
	seeds := harness.SweepSeeds(spec.Seed, spec.Repeats)
	jobs := make([]harness.Job[*runOut], spec.Repeats)
	for i := range jobs {
		i := i
		jobs[i] = harness.NewJob(
			fmt.Sprintf("scenario/%s/%s/rep%d", name, spec.Transport, i),
			seeds[i],
			func(seed uint64) *runOut { return runOnce(spec, seed, i) })
	}
	opts := harness.Options{Workers: spec.Workers}
	if hook := spec.progress; hook != nil {
		repeats := spec.Repeats
		opts.Progress = func(done, total int) {
			hook(Progress{Repeat: -1, Repeats: repeats, Done: done})
		}
	}
	outs := harness.RunJobs(opts, jobs)
	for _, o := range outs {
		stats.Events += o.events
		stats.PacketHops += o.hops
		stats.PacketsLeaked += o.leaked
	}
	return merge(spec, outs), stats, nil
}

// runOut is one repetition's raw contribution to the Metrics.
type runOut struct {
	fcts      []float64 // microseconds, flow order
	goodput   []float64 // Gb/s, flow order
	launched  int
	completed int
	excluded  int // paths excluded by NDP's scoreboard
	last      sim.Time
	counters  topo.SwitchStats
	linkRate  int64
	events    int64 // scheduler events executed
	hops      int64 // packet wire-traversals
	leaked    int64 // arena packets still outstanding after Close
}

// runOnce builds the network for one derived seed and drives the workload.
// Everything inside derives from the seed alone, which is what lets the
// job pool schedule repetitions on any worker without perturbing results —
// and, with Shards > 1, lets the windowed multi-list runner advance the
// partitions in parallel without perturbing them either.
func runOnce(spec Spec, seed uint64, rep int) *runOut {
	net := spec.harnessTransport().Build(spec.Topology.builder(), topo.Config{Seed: seed, Shards: spec.Shards})
	// Close is idempotent; the deferred call only matters if a panic
	// unwinds past the explicit one below.
	defer net.Close()
	for _, f := range spec.Failures {
		net.Cluster().(*topo.FatTree).DegradeLink(f.Agg, f.CoreOff, f.RateBps)
	}
	out := &runOut{linkRate: net.Cluster().LinkRate()}
	switch spec.Workload.Kind {
	case "incast":
		runIncast(spec, rep, net, out)
	case "rpc":
		runRPC(spec, seed, rep, net, out)
	default: // permutation, random
		runMatrix(spec, seed, rep, net, out)
	}
	out.counters = net.Cluster().CollectStats()
	out.events = int64(net.Runner().Executed())
	out.hops = net.Cluster().PacketHops()
	// Close releases every packet the fabric and endpoints still hold;
	// whatever the arenas then report outstanding has truly been lost.
	net.Close()
	out.leaked = net.Cluster().PacketsInUse()
	return out
}

// runIncast fans Degree flows into the receiver and records each FCT.
// Validate already bounded the degree by the host count, so the launched
// flow count always matches the Spec. Completions write into per-flow
// slots (never a shared counter), so shards may finish flows concurrently.
func runIncast(spec Spec, rep int, net harness.Net, out *runOut) {
	w := spec.Workload
	hosts := net.Cluster().NumHosts()
	degree := w.Degree
	senders := workload.IncastSenders(w.Receiver, degree, hosts)
	done := make([]sim.Time, len(senders))
	flows := make([]harness.Flow, len(senders))
	for i, s := range senders {
		i := i
		flows[i] = net.StartFlow(s, w.Receiver, w.FlowSize, harness.StartOpts{
			Priority: w.PrioritizeLast && i == len(senders)-1,
			OnDone:   func(at sim.Time) { done[i] = at },
		})
	}
	out.launched = len(senders)
	optimal := sim.FromSeconds(float64(degree) * float64(w.FlowSize) * 8 / float64(out.linkRate))
	deadline := fctDeadline(spec.Deadline, optimal)
	runTo(spec, rep, net.Runner(), deadline, deadline)
	collectFCTs(out, done)
	out.excluded = countExcludedPaths(flows)
}

// runMatrix drives a permutation or random traffic matrix: unbounded flows
// are metered for goodput over Warmup/Window; sized flows are measured by
// completion time.
func runMatrix(spec Spec, seed uint64, rep int, net harness.Net, out *runOut) {
	w := spec.Workload
	hosts := net.Cluster().NumHosts()
	var dst []int
	if w.Kind == "random" {
		dst = workload.RandomMatrix(hosts, sim.NewRand(seed))
	} else {
		dst = workload.Permutation(hosts, sim.NewRand(seed))
	}
	out.launched = len(dst)

	if w.unbounded() {
		flows := make([]harness.Flow, len(dst))
		for src, d := range dst {
			flows[src] = net.StartFlow(src, d, -1, harness.StartOpts{})
		}
		warm, window := simDur(spec.Warmup), simDur(spec.Window)
		runner := net.Runner()
		runTo(spec, rep, runner, warm, warm+window)
		base := make([]int64, len(flows))
		for i, f := range flows {
			base[i] = f.AckedBytes()
		}
		runTo(spec, rep, runner, warm+window, warm+window)
		out.goodput = make([]float64, len(flows))
		for i, f := range flows {
			out.goodput[i] = stats.Gbps(f.AckedBytes()-base[i], window)
		}
		out.excluded = countExcludedPaths(flows)
		return
	}

	done := make([]sim.Time, len(dst))
	flows := make([]harness.Flow, len(dst))
	for src, d := range dst {
		src := src
		flows[src] = net.StartFlow(src, d, w.FlowSize, harness.StartOpts{
			OnDone: func(at sim.Time) { done[src] = at },
		})
	}
	optimal := sim.FromSeconds(float64(w.FlowSize) * 8 / float64(out.linkRate))
	deadline := fctDeadline(spec.Deadline, optimal*100)
	runTo(spec, rep, net.Runner(), deadline, deadline)
	collectFCTs(out, done)
	out.excluded = countExcludedPaths(flows)
}

// rpcDone is one closed-loop completion record. Completions land on the
// shard of the transport's DoneHost (the receiver for NDP and the TCP
// family, the sender for pHost); records are buffered per shard and merged
// into one deterministic order afterwards, so concurrent shards never
// contend and the merged result is independent of the shard layout.
type rpcDone struct {
	at       sim.Time
	us       float64
	src, dst int
}

// runRPC keeps Degree closed-loop request flows per host in flight until
// the deadline, recording every completion.
func runRPC(spec Spec, seed uint64, rep int, net harness.Net, out *runOut) {
	w := spec.Workload
	sizes := workload.FacebookWeb()
	if w.FlowSize > 0 {
		sizes = workload.NewSizeDist(map[int64]float64{w.FlowSize: 1})
	}
	gap := w.Gap
	if gap == 0 {
		gap = time.Millisecond
	}
	c := net.Cluster()
	recs := make([][]rpcDone, c.Shards())
	// Completion callbacks run in the transport's DoneHost domain (receiver
	// for NDP/TCP-family, sender for pHost); buffer each record on that
	// host's shard so concurrent shards never share a slice. The recording
	// wrapper and its state live per connection slot, not per flow: a
	// slot's flows are strictly sequential (ClosedLoop.Start's contract),
	// so the fields are dead by the time the slot relaunches.
	type rpcSlot struct {
		start    sim.Time
		shard    int
		src, dst int
		inner    func(at sim.Time)
		onDone   func(at sim.Time)
	}
	var slots []rpcSlot
	cl := &workload.ClosedLoop{
		Hosts:         c.NumHosts(),
		Conns:         w.Degree,
		Gap:           simDur(gap),
		Sizes:         sizes,
		Seed:          seed + 7,
		NotifyLatency: c.MinPathDelay,
		Defer:         c.Defer,
		DoneHost:      net.DoneHost,
		Start: func(slot, src, dst int, size int64, done func(at sim.Time)) {
			sl := &slots[slot]
			if sl.onDone == nil {
				sl.onDone = func(at sim.Time) {
					recs[sl.shard] = append(recs[sl.shard], rpcDone{at: at, us: (at - sl.start).Micros(), src: sl.src, dst: sl.dst})
					sl.inner(at)
				}
			}
			sl.start = c.HostList()[src].EventList().Now()
			sl.shard = c.ShardOfHost(net.DoneHost(src, dst))
			sl.src, sl.dst = src, dst
			sl.inner = done
			net.StartFlow(src, dst, size, harness.StartOpts{OnDone: sl.onDone})
		},
	}
	slots = make([]rpcSlot, c.NumHosts()*w.Degree)
	cl.Run()
	deadline := spec.Deadline
	if deadline == 0 {
		deadline = 20 * time.Millisecond
	}
	runTo(spec, rep, net.Runner(), simDur(deadline), simDur(deadline))
	out.launched = int(cl.Launched())

	// Merge the per-shard completion buffers into one canonical order:
	// completion time, then receiver, then sender — a key identical for
	// every shard count (per-shard buffer order is only per-receiver-shard
	// FIFO, which a different partition would interleave differently).
	var all []rpcDone
	for _, r := range recs {
		all = append(all, r...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		if all[i].dst != all[j].dst {
			return all[i].dst < all[j].dst
		}
		return all[i].src < all[j].src
	})
	for _, r := range all {
		out.fcts = append(out.fcts, r.us)
		out.completed++
		if r.at > out.last {
			out.last = r.at
		}
	}
}

// pathExcluder is the optional sender capability behind
// Metrics.PathsExcluded: NDP senders report how many paths their
// scoreboard (§3.2.3) currently excludes; other transports don't have one.
type pathExcluder interface {
	ExcludedPaths() int
}

// countExcludedPaths sums scoreboard exclusions over the flows that
// support them.
func countExcludedPaths(flows []harness.Flow) int {
	total := 0
	for _, f := range flows {
		if pe, ok := f.(pathExcluder); ok {
			total += pe.ExcludedPaths()
		}
	}
	return total
}

// fctDeadline returns the explicit deadline, or a generous multiple of the
// workload's ideal completion time.
func fctDeadline(explicit time.Duration, optimal sim.Time) sim.Time {
	if explicit > 0 {
		return simDur(explicit)
	}
	return optimal*20 + 500*sim.Millisecond
}

// collectFCTs folds per-flow completion times (zero = never finished) into
// the runOut in flow order, counting completions as it goes (callbacks
// write only their own flow's slot, so shards never share a counter).
func collectFCTs(out *runOut, done []sim.Time) {
	for _, at := range done {
		if at > 0 {
			out.fcts = append(out.fcts, at.Micros())
			out.completed++
			if at > out.last {
				out.last = at
			}
		}
	}
}

// merge folds the per-repetition outputs, in job order, into one Metrics.
func merge(spec Spec, outs []*runOut) *Metrics {
	m := &Metrics{
		Scenario:  spec.name,
		Transport: string(spec.Transport),
		Topology:  spec.Topology.String(),
		Workload:  spec.Workload.String(),
		Hosts:     spec.Topology.Hosts(),
		Seed:      spec.Seed,
		Repeats:   spec.Repeats,
	}
	var fcts, goodput stats.Dist
	var linkRate int64
	for _, o := range outs {
		m.FlowsLaunched += o.launched
		m.FlowsCompleted += o.completed
		m.PathsExcluded += o.excluded
		m.Switch.Trims += o.counters.Trims
		m.Switch.Bounces += o.counters.Bounces
		m.Switch.Drops += o.counters.Drops
		m.Switch.Marks += o.counters.Marks
		m.FCTsUs = append(m.FCTsUs, o.fcts...)
		for _, v := range o.fcts {
			fcts.Add(v)
		}
		m.GoodputGbps = append(m.GoodputGbps, o.goodput...)
		for _, v := range o.goodput {
			goodput.Add(v)
		}
		if o.last.Millis() > m.LastCompletionMs {
			m.LastCompletionMs = o.last.Millis()
		}
		linkRate = o.linkRate
	}
	m.FCT = summarize(&fcts)
	if len(m.GoodputGbps) > 0 {
		m.Goodput = summarize(&goodput)
		var sum float64
		for _, g := range m.GoodputGbps {
			sum += g
		}
		m.UtilizationPct = 100 * sum / (float64(len(m.GoodputGbps)) * float64(linkRate) / 1e9)
		m.JainIndex = stats.JainIndex(m.GoodputGbps)
	}
	return m
}

// harnessTransport maps the Spec's transport and tuning knobs onto the
// internal Transport recipe.
func (s Spec) harnessTransport() harness.Transport {
	switch s.Transport {
	case TCP:
		return harness.PlainTCPTransport(s.MTU)
	case DCTCP:
		return harness.DCTCPTransport(s.MTU)
	case MPTCP:
		return harness.DefaultMPTCPTransport(s.MTU)
	case DCQCN:
		return harness.DCQCNTransport{MTU: s.MTU}
	case PHost:
		cfg := phost.DefaultConfig()
		cfg.MTU = s.MTU
		return harness.PHostTransport{Cfg: cfg}
	default: // NDP; Validate rejected anything else
		hcfg := core.DefaultConfig()
		hcfg.MTU = s.MTU
		hcfg.DisablePathPenalty = s.DisablePathPenalty
		return harness.NDPTransport{Switch: core.DefaultSwitchConfig(s.MTU), Host: hcfg}
	}
}

// runTo advances the runner to deadline. With a progress hook installed
// the advance is cut into progressSlices RunUntil segments, reporting the
// covered fraction of horizon (the run's final deadline) after each.
// Slicing is invisible to the simulation: event execution order is a pure
// function of timestamps and ord keys, never of RunUntil call boundaries
// — the clock merely parks at intermediate deadlines with no events in
// between, and the sharded runner's window horizons derive from pending
// event times, not from the requested deadline. Hooked and unhooked runs
// are therefore bit-identical, Metrics and engine stats both (pinned by
// TestProgressDoesNotPerturb).
func runTo(spec Spec, rep int, r sim.Runner, deadline, horizon sim.Time) {
	from := r.Now()
	if spec.progress == nil || deadline <= from {
		r.RunUntil(deadline)
		return
	}
	span := deadline - from
	for i := sim.Time(1); i <= progressSlices; i++ {
		t := from + span*i/progressSlices
		r.RunUntil(t)
		spec.progress(Progress{Repeat: rep, Repeats: spec.Repeats, Frac: float64(t) / float64(horizon)})
	}
}

// simDur converts a wall-clock duration to simulated time.
func simDur(d time.Duration) sim.Time {
	return sim.Time(d.Nanoseconds()) * sim.Nanosecond
}
