package scenario

import (
	"encoding/json"
	"testing"
)

// TestBenchSuite checks the pinned suite's invariants: every case builds a
// valid Spec, names are unique (they are the comparison key across
// BENCH_*.json files), the CI subset is nonempty, and a representative case
// actually produces engine counts.
func TestBenchSuite(t *testing.T) {
	cases := BenchSuite()
	if len(cases) == 0 {
		t.Fatal("empty bench suite")
	}
	seen := map[string]bool{}
	tiny := 0
	for _, c := range cases {
		if c.Name == "" || c.Run == nil {
			t.Fatalf("malformed case: %+v", c)
		}
		if seen[c.Name] {
			t.Errorf("duplicate bench case name %q", c.Name)
		}
		seen[c.Name] = true
		if c.Tiny {
			tiny++
		}
	}
	if tiny == 0 {
		t.Error("no -tiny cases: the CI gate would run nothing")
	}
	if testing.Short() {
		return
	}
	for _, c := range cases {
		if c.Name != "random-tiny" {
			continue
		}
		counts := c.Run()
		if counts.Events <= 0 || counts.PacketHops <= 0 {
			t.Errorf("case %s produced no engine counts: %+v", c.Name, counts)
		}
	}
}

// TestBenchSuiteDeterminism extends the public determinism guarantee to a
// bench-suite scenario on the rewritten scheduler: the same pinned spec run
// with Workers=1 and Workers=8 (multiple repeats in flight) must produce
// bit-identical Metrics AND identical engine stats. Run under `go test
// -race` in CI, this also proves the parallel pool shares no scheduler
// state across simulations.
func TestBenchSuiteDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := benchSpec("incast", Params{Hosts: 16, Degree: 8, FlowSize: 90_000}).
		With(WithRepeats(6))
	serial, sstats, err := RunWithStats(spec.With(WithWorkers(1)))
	if err != nil {
		t.Fatal(err)
	}
	parallel, pstats, err := RunWithStats(spec.With(WithWorkers(8)))
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := json.Marshal(serial)
	pj, _ := json.Marshal(parallel)
	if string(sj) != string(pj) {
		t.Errorf("bench scenario metrics differ between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", sj, pj)
	}
	if sstats != pstats {
		t.Errorf("engine stats differ between 1 and 8 workers: serial %+v, parallel %+v", sstats, pstats)
	}
	if sstats.Events <= 0 || sstats.PacketHops <= 0 {
		t.Errorf("engine stats empty: %+v", sstats)
	}
	// The sharded engine must agree too — a bench-suite spec run with two
	// shards (windowed multi-list runner, repeats still on the job pool)
	// reproduces the single-list result bit for bit. Under -race in CI
	// this doubles as the shard data-race gate on a pinned workload.
	sharded, shstats, err := RunWithStats(spec.With(WithWorkers(2), WithShards(2)))
	if err != nil {
		t.Fatal(err)
	}
	hj, _ := json.Marshal(sharded)
	if string(sj) != string(hj) {
		t.Errorf("bench scenario metrics differ between shards=1 and shards=2:\n--- single ---\n%s\n--- sharded ---\n%s", sj, hj)
	}
	if shstats != sstats {
		t.Errorf("engine stats differ between shards=1 and shards=2: %+v vs %+v", sstats, shstats)
	}
}
