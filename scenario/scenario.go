// Package scenario is the public, composable face of the NDP simulator: it
// lets any transport x topology x workload cross-product be described as a
// declarative Spec and executed with Run, without touching the internal
// packages.
//
// A Spec is assembled from functional options:
//
//	spec := scenario.New(
//		scenario.WithTopology(scenario.FatTree(8)),        // 128 hosts
//		scenario.WithTransport(scenario.DCQCN),
//		scenario.WithWorkload(scenario.Incast(100, 135_000)),
//		scenario.WithSeed(7),
//	)
//	m, err := scenario.Run(spec)
//	fmt.Print(m)
//
// Topologies: FatTree, OversubFatTree, TwoTier, Jellyfish, BackToBack.
// Transports: NDP, TCP, DCTCP, MPTCP, DCQCN, PHost.
// Workloads: Incast, Permutation, Random, RPC — plus link failures via
// WithLinkFailure.
//
// Run returns structured Metrics: the flow-completion-time distribution,
// per-flow goodput, utilization and fairness, and the switch trim / bounce
// / drop / mark counters. Metrics marshal to JSON.
//
// Commonly useful combinations are registered as named scenarios (incast,
// permutation, random, rpc, failure — see Catalog) so they can be launched
// from the CLI: `ndpsim -scenario incast -transport dcqcn -hosts 128`.
//
// Runs are deterministic: the same Spec produces bit-identical Metrics for
// any Workers count, because repeats decompose into seed-derived sweep
// jobs on the internal/harness job pool.
package scenario

import (
	"fmt"
	"time"
)

// Transport selects the protocol stack installed on every host.
type Transport string

// The transports of the paper's evaluation: NDP and its five baselines.
const (
	NDP   Transport = "ndp"   // trimming switches, receiver-driven pulls
	TCP   Transport = "tcp"   // NewReno, drop-tail, Linux-like 200ms MinRTO
	DCTCP Transport = "dctcp" // ECN-fraction control, 200-packet ECN queues
	MPTCP Transport = "mptcp" // 8 linked-increases subflows on distinct paths
	DCQCN Transport = "dcqcn" // RoCE rate control over lossless PFC Ethernet
	PHost Transport = "phost" // receiver tokens over shallow drop-tail queues
)

// Transports lists every supported transport.
func Transports() []Transport {
	return []Transport{NDP, TCP, DCTCP, MPTCP, DCQCN, PHost}
}

// LinkFailure degrades one agg->core link of a FatTree to RateBps — the
// silently-renegotiated 1Gb/s link of the paper's Figure 22.
type LinkFailure struct {
	Agg     int   `json:"agg"`      // aggregation switch index
	CoreOff int   `json:"core_off"` // which of its core uplinks
	RateBps int64 `json:"rate_bps"` // new line rate
}

// Spec is a declarative scenario: what network to build, which transport
// to install, what traffic to drive, and how to measure it. Build Specs
// with New and the With* options; the zero value is not runnable.
type Spec struct {
	Topology  Topology      `json:"topology"`
	Transport Transport     `json:"transport"`
	Workload  Workload      `json:"workload"`
	Failures  []LinkFailure `json:"failures,omitempty"`

	// Warmup and Window bound goodput measurement for unbounded
	// workloads: meters start after Warmup and read after Window more.
	Warmup time.Duration `json:"warmup"`
	Window time.Duration `json:"window"`
	// Deadline caps flow-completion workloads; zero derives a generous
	// bound from the workload's ideal completion time.
	Deadline time.Duration `json:"deadline,omitempty"`

	// MTU is the data-packet size in bytes (default 9000).
	MTU int `json:"mtu"`
	// Seed fixes every RNG in the run.
	Seed uint64 `json:"seed"`
	// Workers sizes the sweep-job pool for multi-point runs: 0 means all
	// cores, 1 runs serially. Metrics are bit-identical for any value.
	Workers int `json:"workers,omitempty"`
	// Shards splits each single simulation into this many per-core
	// partitions advanced in conservative time windows (one event list per
	// shard, windows bounded by the per-shard-pair lookahead matrix). 0/1
	// keeps the proven single-list engine. Metrics are bit-identical for
	// any value. Supported for every transport — including dcqcn, whose
	// PFC pause signals cross shard cuts as keyed mailbox entries with the
	// link's propagation delay as lookahead — on the fattree, twotier and
	// jellyfish topologies; backtoback has nothing to partition. Workers
	// parallelizes across repeats while Shards parallelizes within one
	// simulation, and the two compose.
	Shards int `json:"shards,omitempty"`
	// Repeats runs the scenario at Repeats derived seeds (one sweep job
	// each) and aggregates the Metrics (default 1).
	Repeats int `json:"repeats"`
	// DisablePathPenalty turns off NDP's path scoreboard (§3.2.3), the
	// "NDP without path penalty" ablation. NDP only.
	DisablePathPenalty bool `json:"disable_path_penalty,omitempty"`

	// name is set when the Spec came from the named-scenario registry.
	name string
	// progress is the optional coarse progress hook installed by
	// WithProgress. Being unexported it never marshals, so it is invisible
	// to Hash and to the daemon's wire encoding.
	progress func(Progress)
}

// Name returns the registry name the Spec was built from ("" for
// hand-assembled Specs). It rides into Metrics.Scenario, so two otherwise
// identical Specs with different names produce different Metrics — cache
// keys must include it alongside Hash.
func (s Spec) Name() string { return s.name }

// Option mutates a Spec under construction.
type Option func(*Spec)

// New assembles a Spec from options on top of runnable defaults: a k=4
// FatTree, the NDP transport, an unbounded permutation workload, 3ms
// warmup, 10ms measurement window, MTU 9000, seed 1, one repeat.
func New(opts ...Option) Spec {
	s := Spec{
		Topology:  FatTree(4),
		Transport: NDP,
		Workload:  Permutation(),
		Warmup:    3 * time.Millisecond,
		Window:    10 * time.Millisecond,
		MTU:       9000,
		Seed:      1,
		Repeats:   1,
	}
	return s.With(opts...)
}

// With returns a copy of the Spec with the options applied — Specs compose
// by value, so a base Spec can fan out into variants. The Failures slice
// is cloned so variants never share a backing array.
func (s Spec) With(opts ...Option) Spec {
	s.Failures = append([]LinkFailure(nil), s.Failures...)
	for _, o := range opts {
		o(&s)
	}
	return s
}

// WithTopology sets the network to build.
func WithTopology(t Topology) Option { return func(s *Spec) { s.Topology = t } }

// WithTransport sets the protocol stack.
func WithTransport(t Transport) Option { return func(s *Spec) { s.Transport = t } }

// WithWorkload sets the traffic pattern.
func WithWorkload(w Workload) Option { return func(s *Spec) { s.Workload = w } }

// WithLinkFailure degrades one agg->core FatTree link to rateBps.
func WithLinkFailure(agg, coreOff int, rateBps int64) Option {
	return func(s *Spec) {
		s.Failures = append(s.Failures, LinkFailure{Agg: agg, CoreOff: coreOff, RateBps: rateBps})
	}
}

// WithWarmup sets the goodput warmup interval.
func WithWarmup(d time.Duration) Option { return func(s *Spec) { s.Warmup = d } }

// WithWindow sets the goodput measurement window.
func WithWindow(d time.Duration) Option { return func(s *Spec) { s.Window = d } }

// WithDeadline caps flow-completion workloads.
func WithDeadline(d time.Duration) Option { return func(s *Spec) { s.Deadline = d } }

// WithMTU sets the data-packet size in bytes.
func WithMTU(mtu int) Option { return func(s *Spec) { s.MTU = mtu } }

// WithSeed fixes all randomness.
func WithSeed(seed uint64) Option { return func(s *Spec) { s.Seed = seed } }

// WithWorkers sizes the sweep-job pool (0 = all cores; results are
// identical for any value).
func WithWorkers(n int) Option { return func(s *Spec) { s.Workers = n } }

// WithShards splits each simulation into n conservative time-window
// shards. Results are identical for any value. Supported for every
// transport on the fattree, twotier and jellyfish topologies.
func WithShards(n int) Option { return func(s *Spec) { s.Shards = n } }

// WithRepeats aggregates the scenario over n derived seeds.
func WithRepeats(n int) Option { return func(s *Spec) { s.Repeats = n } }

// WithPathPenalty enables or disables NDP's path scoreboard (on by
// default; only meaningful with the NDP transport).
func WithPathPenalty(on bool) Option { return func(s *Spec) { s.DisablePathPenalty = !on } }

// withDefaults fills unset structural values so hand-built Specs behave
// like New ones. Warmup 0 (meter from t=0) and Seed 0 are meaningful
// explicit values and are honoured, not rewritten — New is where the
// friendly defaults live.
func (s Spec) withDefaults() Spec {
	if s.Topology.Kind == "" {
		s.Topology = FatTree(4)
	}
	if s.Transport == "" {
		s.Transport = NDP
	}
	if s.Workload.Kind == "" {
		s.Workload = Permutation()
	}
	if s.Window == 0 {
		s.Window = 10 * time.Millisecond
	}
	if s.MTU == 0 {
		s.MTU = 9000
	}
	if s.Repeats <= 0 {
		s.Repeats = 1
	}
	return s
}

// Validate reports why the Spec cannot run, or nil. It fills defaults
// first, so a partially-specified Spec (e.g. one decoded from JSON) is
// judged exactly as Run would judge it. The CLI and the ndpsimd daemon
// both reject unsupported Specs through this single gate, so an HTTP 400
// carries the same supported-matrix message as a CLI exit 2.
func Validate(s Spec) error { return s.withDefaults().Validate() }

// Validate reports why the Spec cannot run, or nil.
func (s Spec) Validate() error {
	if err := s.Topology.validate(); err != nil {
		return err
	}
	switch s.Transport {
	case NDP, TCP, DCTCP, MPTCP, DCQCN, PHost:
	default:
		return fmt.Errorf("scenario: unknown transport %q (known: %v)", s.Transport, Transports())
	}
	if err := s.Workload.validate(s.Topology.Hosts()); err != nil {
		return err
	}
	if len(s.Failures) > 0 && s.Topology.Kind != "fattree" {
		return fmt.Errorf("scenario: link failures require a fattree topology, not %q", s.Topology.Kind)
	}
	for _, f := range s.Failures {
		if f.RateBps <= 0 {
			return fmt.Errorf("scenario: link failure rate must be positive, got %d", f.RateBps)
		}
		// A k-ary FatTree has k*k/2 aggregation switches with k/2 core
		// uplinks each.
		aggs, ups := s.Topology.K*s.Topology.K/2, s.Topology.K/2
		if f.Agg < 0 || f.Agg >= aggs || f.CoreOff < 0 || f.CoreOff >= ups {
			return fmt.Errorf("scenario: link failure agg=%d core_off=%d out of range for k=%d (agg < %d, core_off < %d)",
				f.Agg, f.CoreOff, s.Topology.K, aggs, ups)
		}
	}
	if s.DisablePathPenalty && s.Transport != NDP {
		return fmt.Errorf("scenario: path penalty is an NDP knob; transport is %q", s.Transport)
	}
	if s.Warmup < 0 || s.Window <= 0 {
		return fmt.Errorf("scenario: warmup/window must be positive (warmup=%v window=%v)", s.Warmup, s.Window)
	}
	if s.MTU < 64 {
		return fmt.Errorf("scenario: MTU %d too small", s.MTU)
	}
	if s.Shards < 0 {
		return fmt.Errorf("scenario: shards must be >= 0, got %d", s.Shards)
	}
	if s.Shards > 1 {
		switch s.Topology.Kind {
		case "fattree", "twotier", "jellyfish":
		default:
			return fmt.Errorf("scenario: sharded execution supports the fattree, twotier and jellyfish topologies, not %q", s.Topology.Kind)
		}
	}
	return nil
}
