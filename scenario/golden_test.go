package scenario

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden metrics testdata")

// goldenSpecs pins every registry scenario at small scale and fixed seed.
// The resulting Metrics JSON is the behavioral contract of the whole
// simulator: topology construction, transport logic, scheduler pop order
// (including equal-timestamp FIFO ties) all feed into it, so any engine
// change that perturbs a single event is caught here. Repeats=2 also
// exercises the merge path; Workers is deliberately >1 because results
// must be bit-identical for any worker count.
func goldenSpecs(t *testing.T) map[string]Spec {
	t.Helper()
	build := func(name string, p Params, opts ...Option) Spec {
		spec, err := Build(name, p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return spec.With(
			WithSeed(3),
			WithRepeats(2),
			WithWorkers(2),
		)
	}
	return map[string]Spec{
		"incast": build("incast", Params{Hosts: 16, Degree: 8, FlowSize: 45_000},
			WithDeadline(100*time.Millisecond)),
		"permutation": build("permutation", Params{Hosts: 16},
			WithWarmup(time.Millisecond), WithWindow(3*time.Millisecond)),
		"random": build("random", Params{Hosts: 16},
			WithWarmup(time.Millisecond), WithWindow(2*time.Millisecond)),
		"rpc": build("rpc", Params{Hosts: 16, Degree: 2},
			WithDeadline(5*time.Millisecond)),
		"failure": build("failure", Params{Hosts: 16},
			WithWarmup(time.Millisecond), WithWindow(3*time.Millisecond)),
	}
}

// TestGoldenMetrics locks scenario.Run output bit-for-bit against testdata.
// Regenerate with `go test ./scenario -run TestGoldenMetrics -update` and
// review the diff: a golden change means simulated behavior changed.
func TestGoldenMetrics(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	for name, spec := range goldenSpecs(t) {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			m, rs, err := RunWithStats(spec)
			if err != nil {
				t.Fatal(err)
			}
			// Every packet allocated from a shard arena must have been freed
			// by the time the network closed: a nonzero count means some
			// component lost track of a packet (the allocator would never
			// reclaim it).
			if rs.PacketsLeaked != 0 {
				t.Errorf("%s leaked %d packets (arena InUse != 0 after Close)", name, rs.PacketsLeaked)
			}
			got, err := json.MarshalIndent(m, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')
			path := filepath.Join("testdata", "golden", name+".json")
			if *update {
				if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden (run with -update to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("metrics diverged from golden %s.\nThis means simulated behavior changed; if intended, regenerate with -update and justify in the PR.\n--- got ---\n%s\n--- want ---\n%s",
					name, got, want)
			}
		})
	}
}
