package scenario

import (
	"fmt"
	"strings"

	"ndp/internal/stats"
)

// Summary is the quantile digest of a sample distribution.
type Summary struct {
	N    int     `json:"n"`
	Min  float64 `json:"min"`
	P10  float64 `json:"p10"`
	P50  float64 `json:"p50"`
	P90  float64 `json:"p90"`
	P99  float64 `json:"p99"`
	Max  float64 `json:"max"`
	Mean float64 `json:"mean"`
}

func summarize(d *stats.Dist) *Summary {
	if d.N() == 0 {
		return nil
	}
	return &Summary{
		N:    d.N(),
		Min:  d.Min(),
		P10:  d.Quantile(0.1),
		P50:  d.Median(),
		P90:  d.Quantile(0.9),
		P99:  d.Quantile(0.99),
		Max:  d.Max(),
		Mean: d.Mean(),
	}
}

// Counters aggregates switch queue events over the whole run.
type Counters struct {
	Trims   int64 `json:"trims"`
	Bounces int64 `json:"bounces"`
	Drops   int64 `json:"drops"`
	Marks   int64 `json:"marks"`
}

// Metrics is the structured result of one scenario run, aggregated over
// Spec.Repeats repetitions. It marshals to stable JSON.
type Metrics struct {
	// Scenario is the registry name when the Spec came from Lookup.
	Scenario  string `json:"scenario,omitempty"`
	Transport string `json:"transport"`
	Topology  string `json:"topology"`
	Workload  string `json:"workload"`
	Hosts     int    `json:"hosts"`
	Seed      uint64 `json:"seed"`
	Repeats   int    `json:"repeats"`

	FlowsLaunched  int `json:"flows_launched"`
	FlowsCompleted int `json:"flows_completed"`

	// FCT is the flow-completion-time distribution in microseconds
	// (flow-completion workloads only).
	FCT *Summary `json:"fct_us,omitempty"`
	// FCTsUs holds the raw per-flow completion times in microseconds,
	// completed flows only — enough to plot CDFs. For incast and sized
	// matrix workloads entries follow flow-start order within each
	// repeat (so the prioritized straggler of IncastPrioritized is the
	// last incast entry when every flow finished); the closed-loop rpc
	// workload records them in completion order.
	FCTsUs []float64 `json:"fcts_us,omitempty"`
	// LastCompletionMs is the time the last flow finished, in
	// milliseconds (flow-completion workloads only).
	LastCompletionMs float64 `json:"last_completion_ms,omitempty"`

	// GoodputGbps is per-flow goodput over the measurement window, in
	// flow order across repeats (goodput workloads only).
	GoodputGbps []float64 `json:"goodput_gbps,omitempty"`
	// Goodput summarizes GoodputGbps.
	Goodput *Summary `json:"goodput_summary,omitempty"`
	// UtilizationPct is aggregate goodput as a percentage of host link
	// capacity; JainIndex is fairness across flows (1 = perfectly fair).
	UtilizationPct float64 `json:"utilization_pct,omitempty"`
	JainIndex      float64 `json:"jain_index,omitempty"`

	// PathsExcluded counts the source routes NDP's path scoreboard
	// (§3.2.3) had excluded by the end of the run — the observable that
	// shows the failure-detection machinery engaging (0 for other
	// transports or with WithPathPenalty(false)).
	PathsExcluded int `json:"paths_excluded,omitempty"`

	Switch Counters `json:"switch"`
}

// String renders the Metrics for terminals.
func (m *Metrics) String() string {
	var b strings.Builder
	name := m.Workload
	if m.Scenario != "" {
		name = m.Scenario
	}
	fmt.Fprintf(&b, "== scenario %s: transport=%s topology=%s workload=%s hosts=%d seed=%d repeats=%d ==\n",
		name, m.Transport, m.Topology, m.Workload, m.Hosts, m.Seed, m.Repeats)
	fmt.Fprintf(&b, "flows: %d launched, %d completed", m.FlowsLaunched, m.FlowsCompleted)
	if m.LastCompletionMs > 0 {
		fmt.Fprintf(&b, ", last at %.4g ms", m.LastCompletionMs)
	}
	b.WriteByte('\n')
	if m.FCT != nil {
		t := &stats.Table{Header: []string{"fct_us", "n", "min", "p10", "p50", "p90", "p99", "max", "mean"}}
		t.AddFloats("", float64(m.FCT.N), m.FCT.Min, m.FCT.P10, m.FCT.P50, m.FCT.P90, m.FCT.P99, m.FCT.Max, m.FCT.Mean)
		b.WriteString(t.String())
	}
	if m.Goodput != nil {
		t := &stats.Table{Header: []string{"goodput_gbps", "flows", "min", "p10", "p50", "p90", "max", "mean"}}
		t.AddFloats("", float64(m.Goodput.N), m.Goodput.Min, m.Goodput.P10, m.Goodput.P50, m.Goodput.P90, m.Goodput.Max, m.Goodput.Mean)
		b.WriteString(t.String())
		fmt.Fprintf(&b, "utilization %.1f%%  Jain fairness %.3f\n", m.UtilizationPct, m.JainIndex)
	}
	fmt.Fprintf(&b, "switch: %d trims, %d bounces, %d drops, %d marks\n",
		m.Switch.Trims, m.Switch.Bounces, m.Switch.Drops, m.Switch.Marks)
	if m.PathsExcluded > 0 {
		fmt.Fprintf(&b, "paths excluded by the NDP scoreboard: %d\n", m.PathsExcluded)
	}
	return b.String()
}
