package scenario

import (
	"encoding/json"
	"reflect"
	"testing"
	"time"
)

// tinyIncast is a fast cross-transport scenario: 7:1 incast of 90KB on the
// 8-host NetFPGA-testbed topology.
func tinyIncast() Spec {
	return New(
		WithTopology(TwoTier(4, 2, 2)),
		WithWorkload(Incast(7, 90_000)),
		WithSeed(3),
		WithDeadline(600*time.Millisecond),
	)
}

// TestAllTransportsIncast drives the same incast through every transport
// via the uniform StartFlow surface and checks each produces a sane FCT
// distribution.
func TestAllTransportsIncast(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	for _, tr := range Transports() {
		tr := tr
		t.Run(string(tr), func(t *testing.T) {
			m, err := Run(tinyIncast().With(WithTransport(tr)))
			if err != nil {
				t.Fatal(err)
			}
			if m.FlowsLaunched != 7 {
				t.Fatalf("launched %d flows, want 7", m.FlowsLaunched)
			}
			if m.FlowsCompleted == 0 || m.FCT == nil || m.FCT.N != m.FlowsCompleted {
				t.Fatalf("no completions recorded: %+v", m)
			}
			if m.FCT.Min <= 0 || m.FCT.Max < m.FCT.Min {
				t.Errorf("%s: implausible FCTs: %+v", tr, m.FCT)
			}
			if m.Transport != string(tr) {
				t.Errorf("metrics transport %q, want %q", m.Transport, tr)
			}
		})
	}
}

// TestTopologiesPermutation runs the NDP permutation workload over every
// topology kind and expects nonzero utilization.
func TestTopologiesPermutation(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	topos := []Topology{
		FatTree(4),
		OversubFatTree(4, 2),
		TwoTier(4, 4, 4),
		Jellyfish(8, 2, 3),
	}
	for _, tp := range topos {
		tp := tp
		t.Run(tp.String(), func(t *testing.T) {
			m, err := Run(New(
				WithTopology(tp),
				WithWorkload(Permutation()),
				WithSeed(5),
				WithWarmup(time.Millisecond),
				WithWindow(3*time.Millisecond),
			))
			if err != nil {
				t.Fatal(err)
			}
			if len(m.GoodputGbps) != tp.Hosts() {
				t.Fatalf("%d goodput samples, want %d", len(m.GoodputGbps), tp.Hosts())
			}
			if m.UtilizationPct <= 0 || m.UtilizationPct > 100.5 {
				t.Errorf("utilization %.2f%% implausible", m.UtilizationPct)
			}
		})
	}
}

// TestRPCAndRandomWorkloads exercises the remaining workload kinds.
func TestRPCAndRandomWorkloads(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	m, err := Run(New(
		WithTopology(FatTree(4)),
		WithWorkload(RPC(2)),
		WithDeadline(5*time.Millisecond),
		WithSeed(7),
	))
	if err != nil {
		t.Fatal(err)
	}
	if m.FCT == nil || m.FCT.N == 0 || m.FlowsLaunched < m.FlowsCompleted {
		t.Fatalf("rpc produced no FCTs: %+v", m)
	}

	m, err = Run(New(
		WithTopology(FatTree(4)),
		WithWorkload(Random()),
		WithWarmup(time.Millisecond),
		WithWindow(2*time.Millisecond),
	))
	if err != nil {
		t.Fatal(err)
	}
	if len(m.GoodputGbps) != 16 {
		t.Fatalf("random: %d goodput samples, want 16", len(m.GoodputGbps))
	}
}

// TestLinkFailurePenalty reproduces the Figure 22 shape through the public
// API: disabling NDP's path penalty must not help on a degraded fabric.
func TestLinkFailurePenalty(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	// k=8: the scoreboard needs enough per-path NACK samples to spot the
	// asymmetry; at k=4 the degraded link never crosses the exclusion
	// threshold within a short window.
	base := New(
		WithTopology(FatTree(8)),
		WithWorkload(Permutation()),
		WithLinkFailure(0, 0, 1e9),
		WithSeed(21),
		WithWarmup(3*time.Millisecond),
		WithWindow(10*time.Millisecond),
	)
	with, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	without, err := Run(base.With(WithPathPenalty(false)))
	if err != nil {
		t.Fatal(err)
	}
	if with.UtilizationPct <= 0 || without.UtilizationPct <= 0 {
		t.Fatalf("degraded runs produced no goodput: with=%v without=%v",
			with.UtilizationPct, without.UtilizationPct)
	}
	// The observable that proves the knob is wired: the scoreboard
	// excludes paths when enabled and never when disabled.
	if with.PathsExcluded == 0 {
		t.Errorf("path penalty enabled but no paths were excluded on a degraded fabric")
	}
	if without.PathsExcluded != 0 {
		t.Errorf("path penalty disabled yet %d paths excluded", without.PathsExcluded)
	}
}

// TestDeterminismAcrossWorkers is the core public-API guarantee: the same
// Spec produces bit-identical Metrics at Workers=1 and Workers=8, even
// with multiple repeats in flight.
func TestDeterminismAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := New(
		WithTopology(FatTree(4)),
		WithTransport(NDP),
		WithWorkload(Incast(10, 45_000)),
		WithSeed(11),
		WithRepeats(6),
		WithDeadline(100*time.Millisecond),
	)
	serial, err := Run(spec.With(WithWorkers(1)))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Run(spec.With(WithWorkers(8)))
	if err != nil {
		t.Fatal(err)
	}
	sj, _ := json.Marshal(serial)
	pj, _ := json.Marshal(parallel)
	if string(sj) != string(pj) {
		t.Errorf("metrics differ between 1 and 8 workers:\n--- serial ---\n%s\n--- parallel ---\n%s", sj, pj)
	}
}

// TestMetricsJSONRoundTrip checks Metrics survive marshal/unmarshal.
func TestMetricsJSONRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	m, err := Run(tinyIncast())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	var back Metrics
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*m, back) {
		t.Errorf("metrics changed over JSON round-trip:\nbefore %+v\nafter  %+v", *m, back)
	}
}

// TestCatalog checks the named-scenario registry contents and Build.
func TestCatalog(t *testing.T) {
	want := map[string]bool{"incast": true, "permutation": true, "random": true, "rpc": true, "failure": true}
	for _, n := range Catalog() {
		delete(want, n.Name)
		if n.Description == "" {
			t.Errorf("scenario %q has no description", n.Name)
		}
		spec := n.Spec(Params{Hosts: 16, Degree: 3, FlowSize: 9000})
		if err := spec.withDefaults().Validate(); err != nil {
			t.Errorf("scenario %q builds an invalid spec: %v", n.Name, err)
		}
	}
	for name := range want {
		t.Errorf("scenario %q missing from catalog", name)
	}
	if _, err := Build("nope", Params{}); err == nil {
		t.Error("Build should reject unknown scenario names")
	}
	if spec, err := Build("incast", Params{Hosts: 16, Degree: 3, FlowSize: 9000}, WithTransport(DCQCN)); err != nil {
		t.Error(err)
	} else if spec.Transport != DCQCN || spec.name != "incast" {
		t.Errorf("Build did not apply options/name: %+v", spec)
	}
}

// TestIncastPrioritizedStraggler checks the §5 prioritization path: the
// last flow of a prioritized incast must finish far earlier than the
// incast as a whole, and FCTsUs must expose it in flow-start order.
func TestIncastPrioritizedStraggler(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := New(
		WithTopology(FatTree(4)),
		WithWorkload(IncastPrioritized(10, 135_000)),
		WithSeed(11),
	)
	m, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if m.FlowsCompleted != 10 || len(m.FCTsUs) != 10 {
		t.Fatalf("expected 10 completed flows, got %d (%d FCT samples)", m.FlowsCompleted, len(m.FCTsUs))
	}
	straggler := m.FCTsUs[len(m.FCTsUs)-1]
	lastUs := m.LastCompletionMs * 1e3
	if straggler > lastUs/2 {
		t.Errorf("prioritized straggler (%.4g us) not served ahead of the incast (last %.4g us)", straggler, lastUs)
	}
}

// TestWithDoesNotAliasFailures checks that fanning a base Spec into
// variants never shares the Failures backing array.
func TestWithDoesNotAliasFailures(t *testing.T) {
	base := New(
		WithTopology(FatTree(4)),
		WithLinkFailure(0, 0, 1e9),
		WithLinkFailure(1, 0, 1e9),
		WithLinkFailure(2, 0, 1e9),
	)
	a := base.With(WithLinkFailure(3, 0, 111e6))
	b := base.With(WithLinkFailure(3, 1, 222e6))
	if a.Failures[3].RateBps != 111e6 || b.Failures[3].RateBps != 222e6 {
		t.Errorf("variants share failure storage: a=%+v b=%+v", a.Failures[3], b.Failures[3])
	}
	if len(base.Failures) != 3 {
		t.Errorf("base spec mutated: %+v", base.Failures)
	}
}

// TestValidate rejects malformed specs with useful errors.
func TestValidate(t *testing.T) {
	bad := []Spec{
		New(WithTransport("carrier-pigeon")),
		New(WithTopology(Topology{Kind: "moebius"})),
		New(WithTopology(FatTree(5))),
		New(WithWorkload(Incast(0, 9000))),
		New(WithWorkload(Incast(5, -3))),
		New(WithTopology(FatTree(4)), WithWorkload(Incast(16, 9000))), // only 15 senders exist
		New(WithWorkload(Workload{Kind: "yodeling"})),
		New(WithTopology(TwoTier(2, 2, 2)), WithLinkFailure(0, 0, 1e9)),
		New(WithTopology(FatTree(4)), WithLinkFailure(99, 0, 1e9)), // only 8 aggs on k=4
		New(WithTopology(FatTree(4)), WithLinkFailure(0, 2, 1e9)),  // only 2 uplinks per agg
		New(WithTransport(DCTCP), WithPathPenalty(false)),
		New(WithMTU(5)),
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad spec %d validated: %+v", i, s)
		}
	}
	if err := New().Validate(); err != nil {
		t.Errorf("default spec should validate: %v", err)
	}
}
