package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
)

// Hash returns the canonical content address of the simulation the Spec
// describes: the hex SHA-256 of a normalized JSON encoding. Normalization
// fills defaults (so a hand-assembled partial Spec and its fully-defaulted
// twin hash equal) and zeroes the knobs that provably do not perturb
// Metrics or are keyed separately:
//
//   - Workers and Shards only choose how the same events execute — the
//     determinism suites pin Metrics bit-identical for every value — so
//     two Specs differing only there are the same scenario;
//   - Seed is excluded so caches can key by (Hash, Seed) and enumerate
//     seeds under one scenario identity, as the ndpsimd result cache does.
//
// The registry name is unexported and therefore also outside the hash
// (it survives neither a JSON round-trip nor re-assembly by hand); it does
// flow into Metrics.Scenario, so cache keys must append Name alongside
// the seed. Hash is stable across option order, default filling, and a
// JSON round-trip of the Spec.
func (s Spec) Hash() string {
	n := s.withDefaults()
	n.Seed = 0
	n.Workers = 0
	n.Shards = 0
	n.name = ""
	n.progress = nil
	// encoding/json emits struct fields in declaration order and the Spec
	// tree is plain data (no maps, no floats), so the encoding — and hence
	// the hash — is canonical.
	b, err := json.Marshal(n)
	if err != nil {
		panic(fmt.Sprintf("scenario: Spec not marshalable: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}
