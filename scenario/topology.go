package scenario

import (
	"fmt"

	"ndp/internal/harness"
	"ndp/internal/topo"
)

// Topology describes the network to build: a kind plus its dimensions.
// Use the constructors (FatTree, TwoTier, Jellyfish, BackToBack) rather
// than filling the struct by hand.
type Topology struct {
	Kind string `json:"kind"`

	// FatTree dimensions.
	K       int `json:"k,omitempty"`
	Oversub int `json:"oversub,omitempty"`

	// TwoTier dimensions.
	ToRs        int `json:"tors,omitempty"`
	HostsPerToR int `json:"hosts_per_tor,omitempty"`
	Spines      int `json:"spines,omitempty"`

	// Jellyfish dimensions.
	Switches       int `json:"switches,omitempty"`
	HostsPerSwitch int `json:"hosts_per_switch,omitempty"`
	Degree         int `json:"degree,omitempty"`
}

// FatTree is a fully-provisioned k-ary 3-tier Clos (k even): k^3/4 hosts.
func FatTree(k int) Topology { return Topology{Kind: "fattree", K: k, Oversub: 1} }

// OversubFatTree is a k-ary FatTree whose ToRs serve oversub times more
// hosts than the fully-provisioned tree (the paper's 4:1 core).
func OversubFatTree(k, oversub int) Topology {
	return Topology{Kind: "fattree", K: k, Oversub: oversub}
}

// TwoTier is a leaf/spine network: tors ToRs of hostsPerTor hosts each,
// fully meshed to spines spine switches.
func TwoTier(tors, hostsPerTor, spines int) Topology {
	return Topology{Kind: "twotier", ToRs: tors, HostsPerToR: hostsPerTor, Spines: spines}
}

// Jellyfish is a connected random degree-regular switch graph (Singla et
// al.) with hostsPerSwitch hosts per switch — the asymmetric topology of
// the paper's Limitations section.
func Jellyfish(switches, hostsPerSwitch, degree int) Topology {
	return Topology{Kind: "jellyfish", Switches: switches, HostsPerSwitch: hostsPerSwitch, Degree: degree}
}

// BackToBack is two directly-wired hosts (protocol microbenchmarks).
func BackToBack() Topology { return Topology{Kind: "backtoback"} }

// FatTreeForHosts returns the smallest fully-provisioned FatTree with at
// least n hosts (k=4 carries 16, k=8 128, k=12 432, ...).
func FatTreeForHosts(n int) Topology {
	k := 4
	for k*k*k/4 < n {
		k += 2
	}
	return FatTree(k)
}

// Hosts returns the number of hosts the topology will have.
func (t Topology) Hosts() int {
	switch t.Kind {
	case "fattree":
		oversub := t.Oversub
		if oversub < 1 {
			oversub = 1
		}
		return oversub * t.K * t.K * t.K / 4
	case "twotier":
		return t.ToRs * t.HostsPerToR
	case "jellyfish":
		return t.Switches * t.HostsPerSwitch
	case "backtoback":
		return 2
	}
	return 0
}

// String renders the topology compactly ("fattree(k=8)").
func (t Topology) String() string {
	switch t.Kind {
	case "fattree":
		if t.Oversub > 1 {
			return fmt.Sprintf("fattree(k=%d,oversub=%d)", t.K, t.Oversub)
		}
		return fmt.Sprintf("fattree(k=%d)", t.K)
	case "twotier":
		return fmt.Sprintf("twotier(%dx%d,spines=%d)", t.ToRs, t.HostsPerToR, t.Spines)
	case "jellyfish":
		return fmt.Sprintf("jellyfish(%dx%d,deg=%d)", t.Switches, t.HostsPerSwitch, t.Degree)
	case "backtoback":
		return "backtoback"
	}
	return "invalid"
}

func (t Topology) validate() error {
	switch t.Kind {
	case "fattree":
		if t.K < 2 || t.K%2 != 0 {
			return fmt.Errorf("scenario: fattree k must be even and >= 2, got %d", t.K)
		}
		if t.Oversub < 1 {
			return fmt.Errorf("scenario: fattree oversub must be >= 1, got %d", t.Oversub)
		}
	case "twotier":
		if t.ToRs < 1 || t.HostsPerToR < 1 || t.Spines < 0 {
			return fmt.Errorf("scenario: invalid twotier %dx%d spines=%d", t.ToRs, t.HostsPerToR, t.Spines)
		}
	case "jellyfish":
		if t.Switches < 3 || t.Degree < 2 || t.Switches*t.Degree%2 != 0 ||
			t.HostsPerSwitch < 1 {
			return fmt.Errorf("scenario: invalid jellyfish %dx%d deg=%d", t.Switches, t.HostsPerSwitch, t.Degree)
		}
	case "backtoback":
	case "":
		return fmt.Errorf("scenario: no topology set")
	default:
		return fmt.Errorf("scenario: unknown topology kind %q", t.Kind)
	}
	return nil
}

// builder maps the Topology onto the harness construction recipe.
func (t Topology) builder() harness.BuildFunc {
	switch t.Kind {
	case "fattree":
		if t.Oversub > 1 {
			return harness.OversubFatTreeBuilder(t.K, t.Oversub)
		}
		return harness.FatTreeBuilder(t.K)
	case "twotier":
		return harness.TwoTierBuilder(t.ToRs, t.HostsPerToR, t.Spines)
	case "jellyfish":
		sw, hps, deg := t.Switches, t.HostsPerSwitch, t.Degree
		return func(c topo.Config) topo.Cluster { return topo.NewJellyfish(sw, hps, deg, 8, c) }
	case "backtoback":
		return harness.BackToBackBuilder()
	}
	panic("scenario: builder on invalid topology " + t.Kind)
}
