package scenario

import (
	"fmt"
	"maps"
	"slices"
	"time"
)

// Params are the tunables a named scenario understands; zero values take
// the scenario's defaults. They map one-to-one onto the ndpsim CLI flags
// (-hosts, -degree, -flowsize).
type Params struct {
	// Hosts sizes the topology: the smallest FatTree with at least this
	// many hosts is used (default 128).
	Hosts int `json:"hosts,omitempty"`
	// Degree is the incast fan-in or RPC connections per host.
	Degree int `json:"degree,omitempty"`
	// FlowSize is the per-flow transfer size in bytes.
	FlowSize int64 `json:"flowsize,omitempty"`
}

func (p Params) withDefaults(degree int, flowSize int64) Params {
	if p.Hosts <= 0 {
		p.Hosts = 128
	}
	if p.Degree <= 0 {
		p.Degree = degree
	}
	if p.FlowSize <= 0 {
		p.FlowSize = flowSize
	}
	return p
}

// Named is a registered scenario template: a name, a one-line description,
// and a Spec builder parameterized by Params. The returned Spec is a plain
// value — compose further options with Spec.With.
type Named struct {
	Name        string
	Description string
	// Uses lists the Params fields the scenario consumes ("hosts",
	// "degree", "flowsize"); callers (the CLI) reject explicitly-set
	// params outside this list instead of silently ignoring them.
	Uses []string
	Spec func(p Params) Spec
}

// UsesParam reports whether the scenario consumes the named param.
func (n Named) UsesParam(name string) bool {
	for _, u := range n.Uses {
		if u == name {
			return true
		}
	}
	return false
}

var registry = map[string]Named{}

// Register adds a named scenario; it panics on duplicate or empty names
// (programmer error at init time), mirroring the experiment registry in
// internal/harness.
func Register(n Named) {
	if n.Name == "" || n.Spec == nil {
		panic("scenario: Register needs a name and a Spec builder")
	}
	if _, dup := registry[n.Name]; dup {
		panic("scenario: duplicate scenario name " + n.Name)
	}
	registry[n.Name] = n
}

// Lookup returns a named scenario by name.
func Lookup(name string) (Named, bool) {
	n, ok := registry[name]
	return n, ok
}

// Catalog returns every named scenario sorted by name. Sorted-key
// iteration keeps the traversal deterministic (maporder): the catalog
// order is API surface (ndpsim -list, /api/catalog), so map order must not
// pick it.
func Catalog() []Named {
	out := make([]Named, 0, len(registry))
	for _, name := range slices.Sorted(maps.Keys(registry)) {
		out = append(out, registry[name])
	}
	return out
}

// CatalogEntry is the machine-readable view of one registered scenario:
// its name, the Params it consumes, and the fully-defaulted Spec it builds
// from zero Params — what `ndpsim -list -json` prints and the ndpsimd
// daemon serves at /api/catalog.
type CatalogEntry struct {
	Name        string   `json:"name"`
	Description string   `json:"description"`
	Params      []string `json:"params"`
	Defaults    Spec     `json:"defaults"`
	// SpecHash is the canonical content address of Defaults — the cache
	// key prefix a zero-Params submission of this scenario would use.
	SpecHash string `json:"spec_hash"`
}

// CatalogEntries renders the registry as JSON-marshalable entries, in
// Catalog's sorted order.
func CatalogEntries() []CatalogEntry {
	cat := Catalog()
	out := make([]CatalogEntry, 0, len(cat))
	for _, n := range cat {
		def := n.Spec(Params{}).withDefaults()
		out = append(out, CatalogEntry{
			Name:        n.Name,
			Description: n.Description,
			Params:      n.Uses,
			Defaults:    def,
			SpecHash:    def.Hash(),
		})
	}
	return out
}

// Build instantiates a named scenario with the given params and extra
// options; it errors on unknown names (listing what exists).
func Build(name string, p Params, opts ...Option) (Spec, error) {
	n, ok := Lookup(name)
	if !ok {
		known := make([]string, 0, len(registry))
		for _, c := range Catalog() {
			known = append(known, c.Name)
		}
		return Spec{}, fmt.Errorf("scenario: unknown scenario %q (known: %v)", name, known)
	}
	return n.Spec(p).With(opts...), nil
}

// named tags a Spec with its registry name so Metrics carry it.
func named(name string, s Spec) Spec {
	s.name = name
	return s
}

func init() {
	Register(Named{
		Name:        "incast",
		Uses:        []string{"hosts", "degree", "flowsize"},
		Description: "N-to-1 incast of fixed-size responses into host 0 (FCT distribution)",
		Spec: func(p Params) Spec {
			p = p.withDefaults(0, 135_000)
			t := FatTreeForHosts(p.Hosts)
			if p.Degree <= 0 {
				// Default to the paper's 100:1, shrunk to fit small
				// topologies; an explicit oversized degree is rejected
				// by Validate instead of being silently clamped.
				p.Degree = 100
				if p.Degree > t.Hosts()-1 {
					p.Degree = t.Hosts() - 1
				}
			}
			return named("incast", New(
				WithTopology(t),
				WithWorkload(Incast(p.Degree, p.FlowSize)),
			))
		},
	})
	Register(Named{
		Name:        "permutation",
		Uses:        []string{"hosts", "flowsize"},
		Description: "worst-case full-load permutation matrix, per-flow goodput over a warm window",
		Spec: func(p Params) Spec {
			p = p.withDefaults(0, 0)
			w := Permutation()
			if p.FlowSize > 0 {
				w = PermutationSized(p.FlowSize)
			}
			return named("permutation", New(
				WithTopology(FatTreeForHosts(p.Hosts)),
				WithWorkload(w),
			))
		},
	})
	Register(Named{
		Name:        "random",
		Uses:        []string{"hosts"},
		Description: "uniform random traffic matrix (shared receivers), per-flow goodput",
		Spec: func(p Params) Spec {
			p = p.withDefaults(0, 0)
			return named("random", New(
				WithTopology(FatTreeForHosts(p.Hosts)),
				WithWorkload(Random()),
			))
		},
	})
	Register(Named{
		Name:        "rpc",
		Uses:        []string{"hosts", "degree", "flowsize"},
		Description: "closed-loop RPC workload (Facebook web sizes) on a 4:1 oversubscribed FatTree",
		Spec: func(p Params) Spec {
			p = p.withDefaults(5, 0)
			ft := FatTreeForHosts((p.Hosts + 3) / 4) // 4:1 oversub quadruples hosts
			return named("rpc", New(
				WithTopology(OversubFatTree(ft.K, 4)),
				WithWorkload(Workload{Kind: "rpc", Degree: p.Degree, FlowSize: p.FlowSize}),
				WithMTU(1500),
				WithDeadline(20*time.Millisecond),
			))
		},
	})
	Register(Named{
		Name:        "failure",
		Uses:        []string{"hosts"},
		Description: "permutation with one agg->core link silently degraded to 1Gb/s",
		Spec: func(p Params) Spec {
			p = p.withDefaults(0, 0)
			return named("failure", New(
				WithTopology(FatTreeForHosts(p.Hosts)),
				WithWorkload(Permutation()),
				WithLinkFailure(0, 0, 1e9),
			))
		},
	})
}
