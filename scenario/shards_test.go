package scenario

import (
	"encoding/json"
	"testing"
	"time"
)

// TestShardDeterminism is the acceptance gate of the sharded engine: every
// registry scenario, run with the single-list engine (Shards=1) and with
// the conservative windowed multi-list engine at two different partition
// widths, must produce bit-identical Metrics AND identical engine event
// counts. The guarantee is structural — equal-timestamp ordering comes
// from canonical (emitter, sequence) keys and every RNG stream is owned by
// exactly one shard-local component — so any divergence here is a bug, not
// noise. Run under -race in CI, this also proves shards share no state.
func TestShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	for name, spec := range goldenSpecs(t) {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var ref []byte
			var refStats RunStats
			for _, shards := range []int{1, 2, 4} {
				m, stats, err := RunWithStats(spec.With(WithShards(shards)))
				if err != nil {
					t.Fatalf("shards=%d: %v", shards, err)
				}
				blob, err := json.Marshal(m)
				if err != nil {
					t.Fatal(err)
				}
				if shards == 1 {
					ref, refStats = blob, stats
					continue
				}
				if string(blob) != string(ref) {
					t.Errorf("metrics diverge between shards=1 and shards=%d:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
						shards, ref, shards, blob)
				}
				if stats != refStats {
					t.Errorf("engine stats diverge between shards=1 and shards=%d: %+v vs %+v",
						shards, refStats, stats)
				}
			}
		})
	}
}

// TestShardedValidation pins the guard rails: sharding is an NDP-on-FatTree
// mode, and misuse is a Validate error rather than a wrong answer.
func TestShardedValidation(t *testing.T) {
	base := New(WithShards(2))
	if err := base.Validate(); err != nil {
		t.Errorf("ndp+fattree+shards=2 should validate, got %v", err)
	}
	if err := New(WithShards(-1)).Validate(); err == nil {
		t.Error("negative shards validated")
	}
	if err := New(WithShards(2), WithTransport(DCQCN)).Validate(); err == nil {
		t.Error("dcqcn+shards validated; PFC pause has zero lookahead")
	}
	if err := New(WithShards(2), WithTopology(TwoTier(4, 2, 2))).Validate(); err == nil {
		t.Error("twotier+shards validated; only fattree partitions")
	}
}

// TestShardsClampToPods checks that an oversized shard count degrades to
// the pod count instead of failing: a k=4 tree has at most 4 shards, and
// the result is still identical.
func TestShardsClampToPods(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := New(
		WithTopology(FatTree(4)),
		WithWorkload(Incast(4, 90_000)),
		WithSeed(5),
		WithDeadline(50*time.Millisecond),
	)
	a, err := Run(spec.With(WithShards(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec.With(WithShards(64)))
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("metrics diverge between shards=1 and clamped shards=64:\n%s\n%s", aj, bj)
	}
}
