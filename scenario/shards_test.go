package scenario

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestShardDeterminism is the acceptance gate of the sharded engine: every
// registry scenario, run with the single-list engine (Shards=1) and with
// the conservative windowed multi-list engine at two different partition
// widths, must produce bit-identical Metrics AND identical engine event
// counts. The guarantee is structural — equal-timestamp ordering comes
// from canonical (emitter, sequence) keys and every RNG stream is owned by
// exactly one shard-local component — so any divergence here is a bug, not
// noise. Run under -race in CI, this also proves shards share no state.
//
// The golden specs (NDP on FatTree, Workers=2, Repeats=2) keep their
// original gate; TestShardDeterminismMatrix below sweeps the full
// transport x topology support matrix.
func TestShardDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	for name, spec := range goldenSpecs(t) {
		name, spec := name, spec
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			assertShardInvariant(t, spec)
		})
	}
}

// assertShardInvariant runs spec at shards 1, 2 and 4 and requires
// bit-identical Metrics and engine stats, plus fully-released packet
// arenas at every shard count (PacketsInUse()==0 after Close — the leak
// counter matters most for the lossless fabric, whose held packets
// migrate between ingress gates and cross-shard mailboxes).
func assertShardInvariant(t *testing.T, spec Spec) {
	t.Helper()
	var ref []byte
	var refStats RunStats
	for _, shards := range []int{1, 2, 4} {
		m, stats, err := RunWithStats(spec.With(WithShards(shards)))
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if stats.PacketsLeaked != 0 {
			t.Errorf("shards=%d: %d arena packets still in use after Close", shards, stats.PacketsLeaked)
		}
		blob, err := json.Marshal(m)
		if err != nil {
			t.Fatal(err)
		}
		if shards == 1 {
			ref, refStats = blob, stats
			continue
		}
		if string(blob) != string(ref) {
			t.Errorf("metrics diverge between shards=1 and shards=%d:\n--- shards=1 ---\n%s\n--- shards=%d ---\n%s",
				shards, ref, shards, blob)
		}
		if stats != refStats {
			t.Errorf("engine stats diverge between shards=1 and shards=%d: %+v vs %+v",
				shards, refStats, stats)
		}
	}
}

// TestShardDeterminismMatrix sweeps the full supported matrix: every
// registry scenario x every shardable transport x every shardable
// topology, at shards 1/2/4, each combination bit-identical across shard
// counts. The topologies are sized to 16 hosts so the whole matrix stays
// CI-fast; the failure scenario runs on FatTree only (link failures are a
// FatTree feature, enforced by Validate). CI runs this under -race with
// GOMAXPROCS > 1, which additionally proves the shard goroutines share no
// state for any transport or topology.
func TestShardDeterminismMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	topologies := []struct {
		name string
		topo Topology
	}{
		{"fattree", FatTree(4)},           // 16 hosts, partitioned by pod
		{"twotier", TwoTier(4, 4, 4)},     // 16 hosts, partitioned by ToR group
		{"jellyfish", Jellyfish(8, 2, 3)}, // 16 hosts, BFS-grown parts
	}
	transports := []Transport{NDP, TCP, DCTCP, MPTCP, DCQCN, PHost}
	for name, spec := range matrixSpecs(t) {
		for _, tp := range topologies {
			if name == "failure" && tp.name != "fattree" {
				continue // Validate: link failures are FatTree-only
			}
			for _, tr := range transports {
				spec, tp, tr := spec, tp, tr
				t.Run(name+"/"+tp.name+"/"+string(tr), func(t *testing.T) {
					t.Parallel()
					assertShardInvariant(t, spec.With(
						WithTopology(tp.topo),
						WithTransport(tr),
					))
				})
			}
		}
	}
}

// matrixSpecs pins every registry scenario at matrix scale: one repeat,
// serial workers (shard parallelism is what is under test), small windows.
func matrixSpecs(t *testing.T) map[string]Spec {
	t.Helper()
	build := func(name string, p Params, opts ...Option) Spec {
		spec, err := Build(name, p, opts...)
		if err != nil {
			t.Fatal(err)
		}
		return spec.With(WithSeed(11), WithRepeats(1), WithWorkers(1))
	}
	return map[string]Spec{
		"incast": build("incast", Params{Hosts: 16, Degree: 8, FlowSize: 45_000},
			WithDeadline(100*time.Millisecond)),
		"permutation": build("permutation", Params{Hosts: 16},
			WithWarmup(time.Millisecond), WithWindow(2*time.Millisecond)),
		"random": build("random", Params{Hosts: 16},
			WithWarmup(time.Millisecond), WithWindow(2*time.Millisecond)),
		"rpc": build("rpc", Params{Hosts: 16, Degree: 2},
			WithDeadline(4*time.Millisecond)),
		"failure": build("failure", Params{Hosts: 16},
			WithWarmup(time.Millisecond), WithWindow(2*time.Millisecond)),
	}
}

// TestShardedValidation pins the guard rails: the supported matrix is
// every transport — dcqcn included, now that PFC pause crosses shard cuts
// as a keyed mailbox entry — on fattree/twotier/jellyfish, and misuse is
// a Validate error whose message names the supported matrix, rather than
// a wrong answer.
func TestShardedValidation(t *testing.T) {
	for _, tr := range Transports() {
		for _, tp := range []Topology{FatTree(4), TwoTier(4, 4, 4), Jellyfish(8, 2, 3)} {
			if err := New(WithShards(2), WithTransport(tr), WithTopology(tp)).Validate(); err != nil {
				t.Errorf("%s on %s with shards=2 should validate, got %v", tr, tp, err)
			}
		}
	}
	if err := New(WithShards(-1)).Validate(); err == nil {
		t.Error("negative shards validated")
	}

	const topoMsg = `scenario: sharded execution supports the fattree, twotier and jellyfish topologies, not "backtoback"`
	if err := New(WithShards(2), WithTopology(BackToBack())).Validate(); err == nil {
		t.Error("backtoback+shards validated; nothing to partition")
	} else if err.Error() != topoMsg {
		t.Errorf("backtoback+shards message drifted:\n got: %s\nwant: %s", err, topoMsg)
	}
}

// TestShardsHelpTextMatrix pins the user-facing descriptions of the
// supported matrix: the WithShards doc comment and the CLI -shards help
// text changed twice (when the NDP-on-FatTree-only restriction was
// lifted, and again when the dcqcn refusal was), and this guards against
// the docs regressing to either old claim.
func TestShardsHelpTextMatrix(t *testing.T) {
	for _, tr := range Transports() {
		spec := New(WithShards(4), WithTransport(tr))
		if err := spec.Validate(); err != nil {
			t.Errorf("supported transport %s rejected: %v", tr, err)
		}
	}
	// The topology error string is the machine-checkable face of the
	// matrix; make sure it enumerates every supported member (a partial
	// list would mislead exactly the users who hit the error).
	err := New(WithShards(2), WithTopology(BackToBack())).Validate()
	for _, want := range []string{"fattree", "twotier", "jellyfish"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("topology message does not name supported topology %q: %s", want, err)
		}
	}
}

// TestShardsClampToPods checks that an oversized shard count degrades to
// the partition-unit count instead of failing: a k=4 tree has at most 4
// shards, and the result is still identical.
func TestShardsClampToPods(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real simulations")
	}
	spec := New(
		WithTopology(FatTree(4)),
		WithWorkload(Incast(4, 90_000)),
		WithSeed(5),
		WithDeadline(50*time.Millisecond),
	)
	a, err := Run(spec.With(WithShards(1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(spec.With(WithShards(64)))
	if err != nil {
		t.Fatal(err)
	}
	aj, _ := json.Marshal(a)
	bj, _ := json.Marshal(b)
	if string(aj) != string(bj) {
		t.Errorf("metrics diverge between shards=1 and clamped shards=64:\n%s\n%s", aj, bj)
	}
}
