package scenario

// Progress is one coarse observation of a running Spec, delivered to the
// hook installed with WithProgress. Two kinds of observations arrive:
//
//   - per-repetition advances (Repeat >= 0): the repetition has covered
//     Frac of its simulated-time horizon;
//   - pool-level completions (Repeat == -1): Done of Repeats repetitions
//     have fully finished on the sweep-job pool.
//
// Observations are deliberately coarse — a handful per repetition — so a
// hook can forward them over a network stream without throttling.
type Progress struct {
	// Repeat is the 0-based repetition the observation came from, or -1
	// for a pool-level completion event.
	Repeat int
	// Repeats is Spec.Repeats after default filling.
	Repeats int
	// Done counts fully completed repetitions (pool-level events only).
	Done int
	// Frac is the fraction of the repetition's simulated horizon covered,
	// in [0, 1] (per-repetition events only).
	Frac float64
}

// Overall folds the observation into a single monotonic-ish fraction of
// the whole run: completed repetitions plus the current repetition's
// fraction, over Repeats. With concurrent repetitions observations from
// different workers interleave, so callers wanting a strictly monotonic
// gauge should keep a running max.
func (p Progress) Overall() float64 {
	if p.Repeats <= 0 {
		return 0
	}
	if p.Repeat < 0 {
		return float64(p.Done) / float64(p.Repeats)
	}
	return (float64(p.Done) + p.Frac) / float64(p.Repeats)
}

// WithProgress installs a coarse progress hook on the Spec. The hook is
// called from the sweep-job worker goroutines — concurrently when Workers
// > 1 — so it must be safe for concurrent use and must return quickly (it
// runs on the simulation's critical path). The hook observes the run; it
// cannot perturb it: Metrics and engine event counts are bit-identical
// with and without a hook installed (pinned by TestProgressDoesNotPerturb).
// The hook never marshals: it is invisible to JSON, Hash and the daemon.
func WithProgress(fn func(Progress)) Option {
	return func(s *Spec) { s.progress = fn }
}

// progressSlices is how many RunUntil segments a hooked run is cut into
// per workload phase: enough for a live gauge, few enough to be free.
const progressSlices = 16
