package scenario

import (
	"fmt"
	"time"
)

// Workload describes the traffic a scenario drives. Use the constructors;
// the Kind strings also name the workload in Metrics and the CLI.
type Workload struct {
	Kind string `json:"kind"`

	// Degree is the incast fan-in, or the RPC connections per host.
	Degree int `json:"degree,omitempty"`
	// FlowSize is the per-flow transfer size in bytes; < 0 runs
	// unbounded flows measured by goodput over Warmup/Window. For RPC a
	// zero FlowSize samples the Facebook web-server size distribution.
	FlowSize int64 `json:"flow_size,omitempty"`
	// Receiver is the incast sink host (default 0).
	Receiver int `json:"receiver,omitempty"`
	// Gap is the RPC closed-loop median inter-flow gap (default 1ms).
	Gap time.Duration `json:"gap,omitempty"`
	// PrioritizeLast asks the receiver to pull the last incast flow
	// strictly first — the straggler-prioritization demo of §5 (NDP
	// honours it; other transports have no receiver priority and ignore
	// it). Its FCT is the last entry of Metrics.FCTsUs.
	PrioritizeLast bool `json:"prioritize_last,omitempty"`
}

// Incast fans degree flows of size bytes into one receiver at t=0 — the
// paper's hardest traffic pattern. Metrics report the FCT distribution and
// last-flow completion.
func Incast(degree int, size int64) Workload {
	return Workload{Kind: "incast", Degree: degree, FlowSize: size}
}

// IncastPrioritized is Incast with the final flow marked as a straggler
// the receiver pulls with strict priority (§5, "Benefits of
// prioritization").
func IncastPrioritized(degree int, size int64) Workload {
	w := Incast(degree, size)
	w.PrioritizeLast = true
	return w
}

// Permutation runs the paper's worst-case full-load matrix: every host
// sends to exactly one host and receives from exactly one. Flows are
// unbounded; Metrics report per-flow goodput over the measurement window.
func Permutation() Workload { return Workload{Kind: "permutation", FlowSize: -1} }

// PermutationSized is Permutation with size-bounded flows, measured by
// completion time instead of goodput.
func PermutationSized(size int64) Workload {
	return Workload{Kind: "permutation", FlowSize: size}
}

// Random sends one unbounded flow per host to a uniformly random other
// host (receivers may be shared), measured by goodput.
func Random() Workload { return Workload{Kind: "random", FlowSize: -1} }

// RPC runs a closed loop: every host keeps connsPerHost request flows in
// flight to random destinations, drawing sizes from the Facebook
// web-server distribution, restarting after a ~1ms think gap. Metrics
// report the FCT distribution.
func RPC(connsPerHost int) Workload {
	return Workload{Kind: "rpc", Degree: connsPerHost}
}

// String renders the workload compactly ("incast(100x135000B)").
func (w Workload) String() string {
	switch w.Kind {
	case "incast":
		if w.PrioritizeLast {
			return fmt.Sprintf("incast(%dx%dB,prio-last)", w.Degree, w.FlowSize)
		}
		return fmt.Sprintf("incast(%dx%dB)", w.Degree, w.FlowSize)
	case "permutation", "random":
		if w.FlowSize < 0 {
			return w.Kind
		}
		return fmt.Sprintf("%s(%dB)", w.Kind, w.FlowSize)
	case "rpc":
		return fmt.Sprintf("rpc(conns=%d)", w.Degree)
	}
	return "invalid"
}

func (w Workload) validate(hosts int) error {
	switch w.Kind {
	case "incast":
		if w.Degree < 1 {
			return fmt.Errorf("scenario: incast degree must be >= 1, got %d", w.Degree)
		}
		if w.Degree > hosts-1 {
			return fmt.Errorf("scenario: incast degree %d exceeds the %d available senders (%d hosts)",
				w.Degree, hosts-1, hosts)
		}
		if w.FlowSize <= 0 {
			return fmt.Errorf("scenario: incast flow size must be positive, got %d", w.FlowSize)
		}
		if w.Receiver < 0 || w.Receiver >= hosts {
			return fmt.Errorf("scenario: incast receiver %d out of range [0,%d)", w.Receiver, hosts)
		}
	case "permutation", "random":
		if hosts < 2 {
			return fmt.Errorf("scenario: %s needs at least 2 hosts", w.Kind)
		}
		if w.FlowSize == 0 {
			return fmt.Errorf("scenario: %s flow size must be nonzero (-1 = unbounded)", w.Kind)
		}
	case "rpc":
		if w.Degree < 1 {
			return fmt.Errorf("scenario: rpc conns per host must be >= 1, got %d", w.Degree)
		}
		if hosts < 2 {
			return fmt.Errorf("scenario: rpc needs at least 2 hosts")
		}
	case "":
		return fmt.Errorf("scenario: no workload set")
	default:
		return fmt.Errorf("scenario: unknown workload kind %q", w.Kind)
	}
	return nil
}

// unbounded reports whether the workload is goodput-measured (no flow
// completion).
func (w Workload) unbounded() bool {
	return (w.Kind == "permutation" || w.Kind == "random") && w.FlowSize < 0
}
