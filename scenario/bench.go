package scenario

import (
	"fmt"
	"time"

	"ndp/internal/harness"
)

// BenchSuite is the pinned benchmark trajectory behind `ndpsim -bench`:
// named scenarios at fixed seeds and sizes, run serially (Workers=1) so
// wall time measures single-simulation speed and allocation counts are
// exact. Case names are the unit of comparison across the committed
// BENCH_*.json files — never rename one without a migration note; add new
// cases instead.
//
// Every registry scenario contributes a "-tiny" case (seconds-fast, the CI
// regression-gate subset) and the two workloads that dominate the paper's
// evaluation — large incast and full-load permutation — also run at
// figure scale for a signal on real experiment cost.
func BenchSuite() []harness.BenchCase {
	cases := []struct {
		name string
		tiny bool
		spec Spec
	}{
		// 15:1 is the largest fan-in a 16-host FatTree offers; the 1.35MB
		// responses keep the case in the tens-of-milliseconds range where
		// events/sec is stable enough to gate on.
		{"incast-tiny", true, benchSpec("incast", Params{Hosts: 16, Degree: 15, FlowSize: 1_350_000},
			WithDeadline(200*time.Millisecond))},
		{"permutation-tiny", true, benchSpec("permutation", Params{Hosts: 16},
			WithWarmup(time.Millisecond), WithWindow(3*time.Millisecond))},
		{"random-tiny", true, benchSpec("random", Params{Hosts: 16},
			WithWarmup(time.Millisecond), WithWindow(2*time.Millisecond))},
		{"rpc-tiny", true, benchSpec("rpc", Params{Hosts: 16, Degree: 2},
			WithDeadline(5*time.Millisecond))},
		{"failure-tiny", true, benchSpec("failure", Params{Hosts: 16},
			WithWarmup(time.Millisecond), WithWindow(3*time.Millisecond))},
		// Lossless/DCQCN: the PFC+ECN machinery (ingress gating, pause
		// cascades, rate timers) has a very different event profile from
		// the trimming fabrics, so it gets its own trajectory point.
		{"lossless-tiny", true, benchSpec("incast", Params{Hosts: 16, Degree: 8, FlowSize: 90_000},
			WithTransport(DCQCN), WithDeadline(20*time.Millisecond))},
		// Figure-scale: the paper's 100:1 incast (Fig 17 class) and a
		// full-load permutation on a 128-host FatTree.
		{"incast-large", false, benchSpec("incast", Params{Hosts: 128, Degree: 100, FlowSize: 135_000},
			WithDeadline(200*time.Millisecond))},
		{"permutation-large", false, benchSpec("permutation", Params{Hosts: 128},
			WithWarmup(time.Millisecond), WithWindow(5*time.Millisecond))},
		// The same figure-scale cases under the sharded engine: identical
		// Metrics by construction (TestShardDeterminism), so events/sec
		// against the unsharded twin is a pure engine-speedup readout.
		// Wall time only improves with real cores (GOMAXPROCS > 1); on a
		// single-CPU runner these measure the windowing overhead instead.
		{"incast-large-shards4", false, benchSpec("incast", Params{Hosts: 128, Degree: 100, FlowSize: 135_000},
			WithDeadline(200*time.Millisecond), WithShards(4))},
		{"permutation-large-shards4", false, benchSpec("permutation", Params{Hosts: 128},
			WithWarmup(time.Millisecond), WithWindow(5*time.Millisecond), WithShards(4))},
		// Figure-scale baseline transports under the sharded engine, added
		// when universal sharding lifted the NDP-only restriction: the
		// paper's headline NDP-vs-baseline comparisons run sharded, so
		// their engine cost gets trajectory points too (identical Metrics
		// to the unsharded twin, by TestShardDeterminismMatrix).
		{"tcp-large", false, benchSpec("permutation", Params{Hosts: 128},
			WithTransport(TCP), WithWarmup(time.Millisecond), WithWindow(5*time.Millisecond))},
		{"tcp-large-shards4", false, benchSpec("permutation", Params{Hosts: 128},
			WithTransport(TCP), WithWarmup(time.Millisecond), WithWindow(5*time.Millisecond), WithShards(4))},
		{"phost-large", false, benchSpec("incast", Params{Hosts: 128, Degree: 100, FlowSize: 135_000},
			WithTransport(PHost), WithDeadline(200*time.Millisecond))},
		{"phost-large-shards4", false, benchSpec("incast", Params{Hosts: 128, Degree: 100, FlowSize: 135_000},
			WithTransport(PHost), WithDeadline(200*time.Millisecond), WithShards(4))},
	}
	out := make([]harness.BenchCase, 0, len(cases))
	for _, c := range cases {
		spec := c.spec
		out = append(out, harness.BenchCase{
			Name: c.name,
			Tiny: c.tiny,
			Run: func() harness.BenchCounts {
				m, stats, err := RunWithStats(spec)
				if err != nil {
					panic(fmt.Sprintf("bench case: %v", err))
				}
				if m.FlowsLaunched == 0 {
					panic("bench case launched no flows")
				}
				return harness.BenchCounts{Events: stats.Events, PacketHops: stats.PacketHops}
			},
		})
	}
	return out
}

// benchScalingProcs pins GOMAXPROCS for the scaling curves: the 8-shard
// point needs 8 schedulable workers to mean anything, and pinning makes
// the curve shape comparable across reports regardless of the recording
// machine's core count (small machines oversubscribe, which the per-point
// cpu label in the report already caveats).
const benchScalingProcs = 8

// BenchScalingSuite is the shard-scaling trajectory behind
// `ndpsim -bench -scaling`: two event-profile extremes — the lossless
// DCQCN fabric (PFC gating, pause mailboxes, rate timers) and the
// trimming NDP fabric at figure-scale incast — each run at 1, 2, 4 and 8
// shards under a pinned GOMAXPROCS. Metrics are bit-identical across the
// curve (TestShardDeterminismMatrix), so events/sec versus the
// shards1 point is a pure engine-speedup readout. Case names follow
// scaling-<family>-shards<n> and are trajectory-stable like the main
// suite's.
func BenchScalingSuite() []harness.BenchCase {
	families := []struct {
		name string
		spec Spec
	}{
		// 128 hosts = a k=8 FatTree with 8 pods, so all four shard counts
		// are real partitions (16 hosts would clamp 8 shards to 4 pods).
		{"scaling-lossless", benchSpec("incast", Params{Hosts: 128, Degree: 64, FlowSize: 90_000},
			WithTransport(DCQCN), WithDeadline(100*time.Millisecond))},
		{"scaling-incast", benchSpec("incast", Params{Hosts: 128, Degree: 100, FlowSize: 135_000},
			WithDeadline(200*time.Millisecond))},
	}
	var out []harness.BenchCase
	for _, f := range families {
		for _, shards := range []int{1, 2, 4, 8} {
			spec := f.spec.With(WithShards(shards))
			out = append(out, harness.BenchCase{
				Name:  fmt.Sprintf("%s-shards%d", f.name, shards),
				Tiny:  false,
				Procs: benchScalingProcs,
				Run: func() harness.BenchCounts {
					m, stats, err := RunWithStats(spec)
					if err != nil {
						panic(fmt.Sprintf("bench scaling case: %v", err))
					}
					if m.FlowsLaunched == 0 {
						panic("bench scaling case launched no flows")
					}
					return harness.BenchCounts{Events: stats.Events, PacketHops: stats.PacketHops}
				},
			})
		}
	}
	return out
}

// benchSpec builds one pinned suite member; registry names are known good
// (TestBenchSuite covers every case), so lookup failure is a programmer
// error.
func benchSpec(name string, p Params, opts ...Option) Spec {
	spec, err := Build(name, p, opts...)
	if err != nil {
		panic(err)
	}
	return spec.With(WithSeed(1), WithWorkers(1), WithRepeats(1))
}
