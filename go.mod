module ndp

go 1.24
